// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation section, plus the ablations of DESIGN.md. Each bench
// drives the same experiment code cmd/jurybench runs at paper scale, shrunk
// via experiments.QuickConfig so a full -bench=. pass stays fast.
//
// The correspondence is:
//
//	BenchmarkTable2 — Table 2 (motivation example JERs)
//	BenchmarkFig3a  — Figure 3(a) jury size vs mean individual error rate
//	BenchmarkFig3b  — Figure 3(b) AltrALG efficiency ± lower bound
//	BenchmarkFig3c  — Figure 3(c) budget vs total cost (PayALG)
//	BenchmarkFig3d  — Figure 3(d) budget vs JER (PayALG)
//	BenchmarkFig3e  — Figure 3(e) APPX vs OPT total cost
//	BenchmarkFig3f  — Figure 3(f) APPX vs OPT JER
//	BenchmarkFig3g  — Figure 3(g) efficiency on micro-blog data
//	BenchmarkFig3h  — Figure 3(h) precision & recall vs OPT
//	BenchmarkFig3i  — Figure 3(i) jury sizes vs OPT
//
// plus BenchmarkJERAlgorithms, BenchmarkIncrementalSweep,
// BenchmarkMonteCarloJER and BenchmarkBaselines for the ablation rows, and
// micro-benchmarks of the two JER evaluators and three solvers.
package juryselect_test

import (
	"context"
	"fmt"
	"testing"

	"juryselect/internal/core"
	"juryselect/internal/engine"
	"juryselect/internal/experiments"
	"juryselect/internal/jer"
	"juryselect/internal/randx"
)

func benchExperiment(b *testing.B, id string) {
	cfg := experiments.QuickConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig3a(b *testing.B)  { benchExperiment(b, "fig3a") }
func BenchmarkFig3b(b *testing.B)  { benchExperiment(b, "fig3b") }
func BenchmarkFig3c(b *testing.B)  { benchExperiment(b, "fig3c") }
func BenchmarkFig3d(b *testing.B)  { benchExperiment(b, "fig3d") }
func BenchmarkFig3e(b *testing.B)  { benchExperiment(b, "fig3e") }
func BenchmarkFig3f(b *testing.B)  { benchExperiment(b, "fig3f") }
func BenchmarkFig3g(b *testing.B)  { benchExperiment(b, "fig3g") }
func BenchmarkFig3h(b *testing.B)  { benchExperiment(b, "fig3h") }
func BenchmarkFig3i(b *testing.B)  { benchExperiment(b, "fig3i") }

func BenchmarkJERAlgorithms(b *testing.B)    { benchExperiment(b, "ablation-jer") }
func BenchmarkIncrementalSweep(b *testing.B) { benchExperiment(b, "ablation-inc") }
func BenchmarkMonteCarloJER(b *testing.B)    { benchExperiment(b, "ablation-mc") }
func BenchmarkBaselines(b *testing.B)        { benchExperiment(b, "ablation-baselines") }

// Micro-benchmarks: raw evaluator and solver cost at representative sizes,
// independent of the experiment harness.

func randomRates(n int) []float64 {
	return randx.New(7).ErrorRates(n, 0.3, 0.15)
}

// The JER_DP/JER_CBA benchmarks exercise the pooled-kernel path behind
// jer.Compute; 0 allocs/op in steady state is the PR 2 tentpole invariant
// and is guarded in CI (bench-smoke job). JERKernel_* holds one Evaluator
// directly — the shape hot loops (engine workers, solver scans) use —
// which additionally skips the sync.Pool round-trip.
func BenchmarkJER_DP_n101(b *testing.B)   { benchJER(b, jer.DPAlgo, 101) }
func BenchmarkJER_DP_n1001(b *testing.B)  { benchJER(b, jer.DPAlgo, 1001) }
func BenchmarkJER_CBA_n101(b *testing.B)  { benchJER(b, jer.CBAAlgo, 101) }
func BenchmarkJER_CBA_n1001(b *testing.B) { benchJER(b, jer.CBAAlgo, 1001) }
func BenchmarkJER_CBA_n8191(b *testing.B) { benchJER(b, jer.CBAAlgo, 8191) }
func BenchmarkJER_Enum_n15(b *testing.B)  { benchJER(b, jer.EnumAlgo, 15) }
func BenchmarkJER_Enum_n21(b *testing.B)  { benchJER(b, jer.EnumAlgo, 21) }

func BenchmarkJERKernel_DP_n101(b *testing.B)   { benchJERKernel(b, jer.DPAlgo, 101) }
func BenchmarkJERKernel_CBA_n1001(b *testing.B) { benchJERKernel(b, jer.CBAAlgo, 1001) }

func benchJER(b *testing.B, algo jer.Algorithm, n int) {
	rates := randomRates(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := jer.Compute(rates, algo); err != nil {
			b.Fatal(err)
		}
	}
}

func benchJERKernel(b *testing.B, algo jer.Algorithm, n int) {
	rates := randomRates(n)
	ev := jer.NewEvaluator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Compute(rates, algo); err != nil {
			b.Fatal(err)
		}
	}
}

func randomJurors(n int) []core.Juror {
	src := randx.New(11)
	rates := src.ErrorRates(n, 0.3, 0.15)
	costs := src.Requirements(n, 0.1, 0.1)
	out := make([]core.Juror, n)
	for i := range out {
		out[i] = core.Juror{ErrorRate: rates[i], Cost: costs[i]}
	}
	return out
}

func BenchmarkSelectAltrFaithful_n501(b *testing.B) {
	cands := randomJurors(501)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SelectAltr(cands, core.AltrOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectAltrIncremental_n501(b *testing.B) {
	cands := randomJurors(501)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SelectAltr(cands, core.AltrOptions{Incremental: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectPay_n501(b *testing.B) {
	cands := randomJurors(501)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SelectPay(cands, core.PayOptions{Budget: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectOpt_n18(b *testing.B) {
	cands := randomJurors(18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SelectOpt(cands, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectOptParallel_n18(b *testing.B) {
	cands := randomJurors(18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SelectOptParallel(cands, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// Batch JER engine benchmarks: the serial loop the engine replaces versus
// the worker-pool and warm-memo paths, on the same workload. The parallel
// figure scales with cores (values stay byte-identical — see
// TestEvaluateAllByteIdenticalToSerial in jury); the cached figure shows
// what multiset memoization buys when juries repeat. At n=11 the cached
// run matches serial by design: juries below the engine's
// CacheMinJurySize threshold bypass the memo because recomputing the DP
// is cheaper than the key build + lookup; at n=101 the memo wins.
//
//	go test -bench=BenchmarkEvaluateAll -cpu 1,8
func benchmarkJuries(count, size int) [][]float64 {
	src := randx.New(17)
	juries := make([][]float64, count)
	for i := range juries {
		juries[i] = src.ErrorRates(size, 0.3, 0.15)
	}
	return juries
}

func BenchmarkEvaluateAll(b *testing.B) {
	for _, size := range []int{11, 101} {
		juries := benchmarkJuries(1000, size)
		b.Run(fmt.Sprintf("serial/n%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, rates := range juries {
					if _, err := jer.Compute(rates, jer.Auto); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("parallel/n%d", size), func(b *testing.B) {
			eng := engine.New(engine.Options{CacheSize: -1})
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range eng.EvaluateAll(ctx, juries) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("cached/n%d", size), func(b *testing.B) {
			eng := engine.New(engine.Options{})
			ctx := context.Background()
			eng.EvaluateAll(ctx, juries) // warm the memo
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range eng.EvaluateAll(ctx, juries) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

func BenchmarkEngineAblation(b *testing.B) { benchExperiment(b, "ablation-engine") }
