package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"juryselect/internal/core"
	"juryselect/internal/engine"
	"juryselect/internal/experiments"
	"juryselect/internal/insight"
	"juryselect/internal/jer"
	"juryselect/internal/lifecycle"
	"juryselect/internal/obs"
	"juryselect/internal/randx"
	"juryselect/internal/server"
	"juryselect/internal/simul"
	"juryselect/internal/tasks"
	"juryselect/jury"
)

// benchEntry is one benchmark's measurement in the machine-readable
// snapshot: the same three axes `go test -bench` reports, plus any
// custom metrics the benchmark emitted via b.ReportMetric (e.g. the
// simulator's steps/s and the sustained-HTTP p99 latency).
type benchEntry struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// benchSnapshot is the file -bench-json writes. Snapshots are committed as
// BENCH_PR<n>.json so the performance trajectory of the hot path is
// tracked in-tree, PR over PR, with enough environment detail to judge
// comparability.
type benchSnapshot struct {
	Schema     string       `json:"schema"`
	Generated  string       `json:"generated"`
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Note       string       `json:"note"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

// namedBench pairs a stable snapshot name with a testing.B target. Names
// mirror the bench_test.go benchmarks they correspond to, so in-tree
// snapshots and `go test -bench` output line up.
type namedBench struct {
	name string
	fn   func(b *testing.B)
}

func benchRates(seed int64, n int) []float64 {
	return randx.New(seed).ErrorRates(n, 0.3, 0.15)
}

func benchJurors(n int) []core.Juror {
	src := randx.New(11)
	rates := src.ErrorRates(n, 0.3, 0.15)
	costs := src.Requirements(n, 0.1, 0.1)
	out := make([]core.Juror, n)
	for i := range out {
		out[i] = core.Juror{ErrorRate: rates[i], Cost: costs[i]}
	}
	return out
}

func benchJuries(count, size int) [][]float64 {
	src := randx.New(17)
	juries := make([][]float64, count)
	for i := range juries {
		juries[i] = src.ErrorRates(size, 0.3, 0.15)
	}
	return juries
}

func jerBench(algo jer.Algorithm, n int) func(b *testing.B) {
	return func(b *testing.B) {
		rates := benchRates(7, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := jer.Compute(rates, algo); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func experimentBench(id string) func(b *testing.B) {
	return func(b *testing.B) {
		cfg := experiments.QuickConfig()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Run(id, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchRegistry is the tracked benchmark set: the JER evaluator kernels,
// the batch engine's three EvaluateAll modes, the solvers, and the paper's
// figure/ablation experiments at QuickConfig scale.
func benchRegistry() []namedBench {
	benches := []namedBench{
		{"JER_DP_n101", jerBench(jer.DPAlgo, 101)},
		{"JER_DP_n1001", jerBench(jer.DPAlgo, 1001)},
		{"JER_CBA_n101", jerBench(jer.CBAAlgo, 101)},
		{"JER_CBA_n1001", jerBench(jer.CBAAlgo, 1001)},
		{"JER_CBA_n8191", jerBench(jer.CBAAlgo, 8191)},
		{"JER_Enum_n21", jerBench(jer.EnumAlgo, 21)},
	}
	for _, size := range []int{11, 101} {
		size := size
		benches = append(benches,
			namedBench{fmt.Sprintf("EvaluateAll/serial/n%d", size), func(b *testing.B) {
				juries := benchJuries(1000, size)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, rates := range juries {
						if _, err := jer.Compute(rates, jer.Auto); err != nil {
							b.Fatal(err)
						}
					}
				}
			}},
			namedBench{fmt.Sprintf("EvaluateAll/parallel/n%d", size), func(b *testing.B) {
				juries := benchJuries(1000, size)
				eng := engine.New(engine.Options{CacheSize: -1})
				ctx := context.Background()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, r := range eng.EvaluateAll(ctx, juries) {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
				}
			}},
			namedBench{fmt.Sprintf("EvaluateAll/cached/n%d", size), func(b *testing.B) {
				juries := benchJuries(1000, size)
				eng := engine.New(engine.Options{})
				ctx := context.Background()
				eng.EvaluateAll(ctx, juries) // warm the memo
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, r := range eng.EvaluateAll(ctx, juries) {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
				}
			}},
		)
	}
	benches = append(benches,
		namedBench{"SelectAltrFaithful_n501", func(b *testing.B) {
			cands := benchJurors(501)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.SelectAltr(cands, core.AltrOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		namedBench{"SelectAltrIncremental_n501", func(b *testing.B) {
			cands := benchJurors(501)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.SelectAltr(cands, core.AltrOptions{Incremental: true}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		namedBench{"SelectPay_n501", func(b *testing.B) {
			cands := benchJurors(501)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.SelectPay(cands, core.PayOptions{Budget: 5}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		namedBench{"SelectOpt_n18", func(b *testing.B) {
			cands := benchJurors(18)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.SelectOpt(cands, 1); err != nil {
					b.Fatal(err)
				}
			}
		}},
		namedBench{"SelectOptParallel_n18", func(b *testing.B) {
			cands := benchJurors(18)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.SelectOptParallel(cands, 1, 0); err != nil {
					b.Fatal(err)
				}
			}
		}},
	)
	benches = append(benches, serverBenches()...)
	benches = append(benches, taskBenches()...)
	benches = append(benches, simulBenches()...)
	for _, id := range experiments.List() {
		benches = append(benches, namedBench{"experiment/" + id, experimentBench(id)})
	}
	return benches
}

// simulBenches measures the closed-loop simulator (internal/simul) and
// the sustained HTTP select path it drives: one op is a whole scenario
// run (steps/s reported as an extra metric), and the sustained-HTTP
// bench is a multi-client closed loop against a live pool, reporting
// p50/p99 latency alongside throughput.
func simulBenches() []namedBench {
	simBench := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			sc := simul.Scenario{
				Name: "bench", Seed: 23, Steps: 100, Population: 40,
				RateMean: 0.4, RateStddev: 0.1,
				Drift:        simul.DriftSpec{Model: simul.DriftWalk},
				ChurnPerStep: 0.5,
				Replications: 4,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := simul.Run(context.Background(), sc, simul.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
			steps := float64(sc.Steps * sc.Replications * b.N)
			b.ReportMetric(steps/b.Elapsed().Seconds(), "steps/s")
		}
	}
	return []namedBench{
		{"Simul/inprocess/serial", simBench(1)},
		{"Simul/inprocess/parallel", simBench(0)},
		{"JuryloadHTTP/select/n1001", func(b *testing.B) {
			srv := server.New(server.Config{})
			if _, err := srv.Store().Put("crowd", benchPoolJurors(1001)); err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			const clients = 4
			body := []byte(`{"pool":"crowd"}`)
			var next atomic.Int64
			// One shared atomic histogram replaces the per-client sample
			// slices: concurrent writers need no partitioning, and the
			// percentile extras come straight from the snapshot.
			var lat obs.Histogram
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for int(next.Add(1)) <= b.N {
						start := time.Now()
						resp, err := http.Post(ts.URL+"/v1/select", "application/json", bytes.NewReader(body))
						if err != nil {
							b.Error(err)
							return
						}
						io.Copy(io.Discard, resp.Body) //nolint:errcheck
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							b.Errorf("status %d", resp.StatusCode)
							return
						}
						lat.Observe(time.Since(start).Nanoseconds())
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			snap := lat.Snapshot()
			if snap.Count == 0 {
				return
			}
			b.ReportMetric(float64(snap.Quantile(0.50)), "p50-ns")
			b.ReportMetric(float64(snap.Quantile(0.90)), "p90-ns")
			b.ReportMetric(float64(snap.Quantile(0.99)), "p99-ns")
			b.ReportMetric(float64(snap.Quantile(0.999)), "p999-ns")
		}},
	}
}

// taskBenches measures the durable task subsystem: full HTTP round trips
// for task creation (selection + journal) and the vote hot path
// (posterior update + journal per call), the raw WAL append (framing +
// CRC + buffered write; the "off" variant is the alloc-guarded kernel,
// "batch" adds the group-commit fsync wait), and recovery replay
// throughput (records/s as an extra metric).
func taskBenches() []namedBench {
	taskServer := func(b *testing.B, dir string) *httptest.Server {
		// Auto-compaction is off: these benchmarks isolate per-op write
		// cost, and the 8192-record threshold sits inside the iteration
		// counts testing.Benchmark picks here — a run that happens to
		// cross it pays one whole-store snapshot marshal and reads ~2×
		// slower than one that doesn't (the historical numbers, PR 6
		// included, all landed below the cliff).
		store, err := tasks.Open(tasks.Config{Dir: dir, Sync: tasks.SyncOff, CompactEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := store.PutPool("crowd", benchPoolJurors(101)); err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(server.New(server.Config{Tasks: store}).Handler())
		b.Cleanup(func() {
			ts.Close()
			store.Close() //nolint:errcheck
		})
		return ts
	}
	post := func(b *testing.B, url string, body []byte, want int) []byte {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != want {
			b.Fatalf("%s: status %d: %s", url, resp.StatusCode, raw)
		}
		return raw
	}
	return []namedBench{
		{"ServerTaskCreate/n101", func(b *testing.B) {
			ts := taskServer(b, b.TempDir())
			body := []byte(`{"pool":"crowd"}`)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				post(b, ts.URL+"/v1/tasks", body, http.StatusCreated)
			}
		}},
		{"ServerTaskVote/n101", func(b *testing.B) {
			// One vote per op against always-fresh fixed-jury tasks: a
			// task is created (untimed) every jurySize votes.
			ts := taskServer(b, b.TempDir())
			created := post(b, ts.URL+"/v1/tasks", []byte(`{"pool":"crowd","target_confidence":1}`), http.StatusCreated)
			var cr struct {
				Task struct {
					ID     string `json:"id"`
					Jurors []struct {
						ID string `json:"id"`
					} `json:"jurors"`
				} `json:"task"`
			}
			if err := json.Unmarshal(created, &cr); err != nil {
				b.Fatal(err)
			}
			id, jurors, next := cr.Task.ID, cr.Task.Jurors, 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if next == len(jurors) {
					b.StopTimer()
					created = post(b, ts.URL+"/v1/tasks", []byte(`{"pool":"crowd","target_confidence":1}`), http.StatusCreated)
					if err := json.Unmarshal(created, &cr); err != nil {
						b.Fatal(err)
					}
					id, jurors, next = cr.Task.ID, cr.Task.Jurors, 0
					b.StartTimer()
				}
				body := []byte(fmt.Sprintf(`{"juror_id":%q,"vote":true}`, jurors[next].ID))
				post(b, ts.URL+"/v1/tasks/"+id+"/votes", body, http.StatusOK)
				next++
			}
		}},
		{"ServerTaskVoteBatch/n101", func(b *testing.B) {
			// One op = one batch round trip voting a fresh fixed-jury task
			// to completion (creation untimed): ServerTaskVote's per-vote
			// journal and posterior work amortized into a single
			// decode/encode. Divide ns/op by the jury size ("votes" extra
			// metric) to compare per-vote cost with ServerTaskVote.
			ts := taskServer(b, b.TempDir())
			createBody := []byte(`{"pool":"crowd","target_confidence":1}`)
			votes := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				created := post(b, ts.URL+"/v1/tasks", createBody, http.StatusCreated)
				var cr struct {
					Task struct {
						ID     string `json:"id"`
						Jurors []struct {
							ID string `json:"id"`
						} `json:"jurors"`
					} `json:"task"`
				}
				if err := json.Unmarshal(created, &cr); err != nil {
					b.Fatal(err)
				}
				var body bytes.Buffer
				body.WriteString(`{"votes":[`)
				for k, j := range cr.Task.Jurors {
					if k > 0 {
						body.WriteByte(',')
					}
					fmt.Fprintf(&body, `{"juror_id":%q,"vote":true}`, j.ID)
				}
				body.WriteString(`]}`)
				votes += len(cr.Task.Jurors)
				b.StartTimer()
				post(b, ts.URL+"/v1/tasks/"+cr.Task.ID+"/votes/batch", body.Bytes(), http.StatusOK)
			}
			b.ReportMetric(float64(votes)/float64(b.N), "votes")
		}},
		{"ServerTaskGet/n101", func(b *testing.B) {
			// The lock-free read path: GET of a voted-on task serves the
			// published COW snapshot — no shard lock, no view render.
			ts := taskServer(b, b.TempDir())
			created := post(b, ts.URL+"/v1/tasks", []byte(`{"pool":"crowd","target_confidence":1}`), http.StatusCreated)
			var cr struct {
				Task struct {
					ID     string `json:"id"`
					Jurors []struct {
						ID string `json:"id"`
					} `json:"jurors"`
				} `json:"task"`
			}
			if err := json.Unmarshal(created, &cr); err != nil {
				b.Fatal(err)
			}
			for _, j := range cr.Task.Jurors[:3] {
				post(b, ts.URL+"/v1/tasks/"+cr.Task.ID+"/votes",
					[]byte(fmt.Sprintf(`{"juror_id":%q,"vote":true}`, j.ID)), http.StatusOK)
			}
			url := ts.URL + "/v1/tasks/" + cr.Task.ID
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := http.Get(url)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
			}
		}},
		{"TaskHammer/global/g8", taskHammer(func(dir string) tasks.Config {
			// PR 6's concurrency model: one shard (a single store-wide
			// mutex) and the timer-driven group commit. Compaction is
			// off in both variants — its stop-the-world snapshot marshal
			// would otherwise dominate and mask the write-path contrast.
			return tasks.Config{Dir: dir, Sync: tasks.SyncBatch, Shards: 1, TimerCommit: true,
				CompactEvery: -1}
		})},
		{"TaskHammer/sharded/g8", taskHammer(func(dir string) tasks.Config {
			// PR 7 defaults: sharded store, pipelined group commit.
			return tasks.Config{Dir: dir, Sync: tasks.SyncBatch, CompactEvery: -1}
		})},
		{"WALAppend/off", func(b *testing.B) {
			w, _, err := tasks.OpenWAL(filepath.Join(b.TempDir(), "wal.log"), tasks.WALOptions{Sync: tasks.SyncOff})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close() //nolint:errcheck
			payload := []byte(`{"t":"vote","task":"t00000001","juror":"j00042","vote":true}`)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"WALAppend/batch", func(b *testing.B) {
			// Group commit only pays off under fan-in: a serial loop
			// would measure one full fsync wait per append — SyncAlways'
			// cost profile wearing batch's name (the pre-PR 7 shape of
			// this benchmark, which read as a misleading ~1.3ms/op).
			// Eight concurrent appenders share each fsync, so ns/op is
			// the amortized durable-append cost at realistic fan-in.
			w, _, err := tasks.OpenWAL(filepath.Join(b.TempDir(), "wal.log"), tasks.WALOptions{
				Sync: tasks.SyncBatch, BatchInterval: 500 * time.Microsecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close() //nolint:errcheck
			payload := []byte(`{"t":"vote","task":"t00000001","juror":"j00042","vote":true}`)
			b.ReportAllocs()
			b.SetParallelism(8) // 8×GOMAXPROCS appender goroutines
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := w.Append(payload); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "appends/s")
		}},
		{"WALReplay/votes", func(b *testing.B) {
			// A vote-heavy log: 100 fixed-jury tasks fully voted through
			// the store, then each op recovers the whole directory.
			dir := b.TempDir()
			store, err := tasks.Open(tasks.Config{Dir: dir, Sync: tasks.SyncOff, CompactEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := store.PutPool("crowd", benchPoolJurors(101)); err != nil {
				b.Fatal(err)
			}
			records := int64(1)
			for i := 0; i < 100; i++ {
				v, err := store.Create(context.Background(), tasks.Spec{Pool: "crowd", TargetConfidence: 1})
				if err != nil {
					b.Fatal(err)
				}
				records++
				for _, j := range v.Jurors {
					if _, err := store.Vote(context.Background(), v.ID, j.ID, i%2 == 0); err != nil {
						b.Fatal(err)
					}
					records++
				}
			}
			if err := store.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s2, err := tasks.Open(tasks.Config{Dir: dir, Sync: tasks.SyncOff, CompactEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				if s2.Recovery().Records != records {
					b.Fatalf("replayed %d records, want %d", s2.Recovery().Records, records)
				}
				b.StopTimer()
				s2.Close() //nolint:errcheck
				b.StartTimer()
			}
			b.ReportMetric(float64(records*int64(b.N))/b.Elapsed().Seconds(), "records/s")
		}},
	}
}

// taskHammer is the mixed concurrent write workload behind the
// TaskHammer benchmarks: 8 goroutines (regardless of a 1-core
// GOMAXPROCS — the workload is fsync-bound, not CPU-bound), each
// creating its own fixed-jury tasks and voting them through, every
// mutation durable at fsync=batch. One op is one mutation (create or
// vote); the votes/s extra metric is the ISSUE's acceptance axis. The
// two variants differ only in store configuration, so their ratio
// isolates the concurrency model: global mutex + timer commit versus
// sharded store + pipelined commit.
func taskHammer(conf func(dir string) tasks.Config) func(b *testing.B) {
	return func(b *testing.B) {
		store, err := tasks.Open(conf(b.TempDir()))
		if err != nil {
			b.Fatal(err)
		}
		defer store.Close() //nolint:errcheck
		if _, err := store.PutPool("crowd", benchPoolJurors(101)); err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		var votes atomic.Int64
		b.ReportAllocs()
		b.SetParallelism(8) // 8×GOMAXPROCS hammer goroutines
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var id string
			var jurors []tasks.JurorView
			next := 0
			for pb.Next() {
				if next == len(jurors) {
					v, err := store.Create(ctx, tasks.Spec{Pool: "crowd", TargetConfidence: 1})
					if err != nil {
						b.Error(err)
						return
					}
					id, jurors, next = v.ID, v.Jurors, 0
					continue
				}
				if _, err := store.Vote(context.Background(), id, jurors[next].ID, next%2 == 0); err != nil {
					b.Error(err)
					return
				}
				next++
				votes.Add(1)
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(votes.Load())/b.Elapsed().Seconds(), "votes/s")
	}
}

// benchPoolJurors converts the shared juror generator to the public type
// with stable IDs, as the pool store requires.
func benchPoolJurors(n int) []jury.Juror {
	raw := benchJurors(n)
	out := make([]jury.Juror, n)
	for i, j := range raw {
		out[i] = jury.Juror{ID: fmt.Sprintf("j%04d", i), ErrorRate: j.ErrorRate, Cost: j.Cost}
	}
	return out
}

// nullWriter is a minimal http.ResponseWriter for the handler-level
// select benchmarks: the full-HTTP entries measure the wire, these
// measure the server path itself (decode, snapshot read, cache probe or
// engine run, response write) without httptest scaffolding dominating.
type nullWriter struct {
	h      http.Header
	status int
}

func (w *nullWriter) Header() http.Header         { return w.h }
func (w *nullWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullWriter) WriteHeader(status int)      { w.status = status }

// handlerSelectBench measures POST /v1/select at the handler level
// against a 101-juror pool: cacheEntries 0 keeps the default
// version-keyed response cache (every op after the first is a warm
// hit), -1 disables it (every op recomputes the selection — the miss
// cost the cache saves).
func handlerSelectBench(cacheEntries int) func(b *testing.B) {
	return func(b *testing.B) {
		srv := server.New(server.Config{SelectCacheEntries: cacheEntries})
		if _, err := srv.Store().Put("crowd", benchPoolJurors(101)); err != nil {
			b.Fatal(err)
		}
		h := srv.Handler()
		body := []byte(`{"pool":"crowd"}`)
		rdr := bytes.NewReader(body)
		req := httptest.NewRequest(http.MethodPost, "/v1/select", rdr)
		w := &nullWriter{h: make(http.Header)}
		run := func() {
			rdr.Reset(body)
			req.Body = io.NopCloser(rdr)
			req.ContentLength = int64(len(body))
			w.status = 0
			h.ServeHTTP(w, req)
			if w.status != http.StatusOK {
				b.Fatalf("status %d", w.status)
			}
		}
		run() // prime the cache (warm variant) and lazy pool state
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	}
}

// handlerSelectInsightBench is the warm select with the full
// observability stack installed the way cmd/juryd installs it: an
// ephemeral task store with the insight AND lifecycle engines hooked
// on its event stream, and both attached to the server. The select
// path never touches either — the absolute allocation guard in
// regressionGuards proves the hooks keep the warm select on its
// 16-alloc diet.
func handlerSelectInsightBench() func(b *testing.B) {
	return func(b *testing.B) {
		ins := insight.New(0)
		lce := lifecycle.New(0)
		store, err := tasks.Open(tasks.Config{Events: tasks.Sinks(ins, lce)})
		if err != nil {
			b.Fatal(err)
		}
		defer store.Close() //nolint:errcheck
		srv := server.New(server.Config{Tasks: store, Insight: ins, Lifecycle: lce})
		if _, err := srv.Store().Put("crowd", benchPoolJurors(101)); err != nil {
			b.Fatal(err)
		}
		h := srv.Handler()
		body := []byte(`{"pool":"crowd"}`)
		rdr := bytes.NewReader(body)
		req := httptest.NewRequest(http.MethodPost, "/v1/select", rdr)
		w := &nullWriter{h: make(http.Header)}
		run := func() {
			rdr.Reset(body)
			req.Body = io.NopCloser(rdr)
			req.ContentLength = int64(len(body))
			w.status = 0
			h.ServeHTTP(w, req)
			if w.status != http.StatusOK {
				b.Fatalf("status %d", w.status)
			}
		}
		run() // prime the cache and lazy pool state
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	}
}

// handlerTaskTimelineBench measures GET /v1/tasks/{id}/timeline at the
// handler level: one decided task's reconstruction — snapshot under
// the engine lock, span assembly, fingerprint, JSON encode — which is
// the read an operator's dashboard polls. The task is driven to an
// early-stop verdict once during setup; every op re-serves the same
// closed timeline.
func handlerTaskTimelineBench() func(b *testing.B) {
	return func(b *testing.B) {
		lce := lifecycle.New(0)
		store, err := tasks.Open(tasks.Config{Events: lce})
		if err != nil {
			b.Fatal(err)
		}
		defer store.Close() //nolint:errcheck
		if _, err := store.PutPool("crowd", benchPoolJurors(101)); err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		v, err := store.Create(ctx, tasks.Spec{Pool: "crowd", TargetConfidence: 0.95})
		if err != nil {
			b.Fatal(err)
		}
		for _, j := range v.Jurors {
			out, err := store.Vote(ctx, v.ID, j.ID, true)
			if err != nil {
				b.Fatal(err)
			}
			if out.Status != tasks.StatusOpen && out.Status != tasks.StatusAwaitingVotes {
				break
			}
		}
		srv := server.New(server.Config{Tasks: store, Lifecycle: lce})
		h := srv.Handler()
		req := httptest.NewRequest(http.MethodGet, "/v1/tasks/"+v.ID+"/timeline", nil)
		w := &nullWriter{h: make(http.Header)}
		run := func() {
			w.status = 0
			h.ServeHTTP(w, req)
			if w.status != http.StatusOK {
				b.Fatalf("status %d", w.status)
			}
		}
		run()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	}
}

// serverBenches measures the serving path of cmd/juryd: full HTTP round
// trips through internal/server (mirroring BenchmarkServerSelect and
// BenchmarkServerJER in that package), the handler-level warm/miss
// select split (the PR 6 response cache's effect), the batch endpoints,
// and the pool store's snapshot read and patch publication
// (BenchmarkPoolSnapshot, BenchmarkPoolPatch).
func serverBenches() []namedBench {
	httpBench := func(path, body string, setup func(*server.Server)) func(b *testing.B) {
		return func(b *testing.B) {
			srv := server.New(server.Config{})
			if setup != nil {
				setup(srv)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			raw := []byte(body)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("%s: status %d", path, resp.StatusCode)
				}
			}
		}
	}
	withPool := func(n int) func(*server.Server) {
		return func(s *server.Server) {
			if _, err := s.Store().Put("crowd", benchPoolJurors(n)); err != nil {
				panic(err)
			}
		}
	}
	jerBody, err := json.Marshal(map[string]any{"error_rates": benchRates(7, 101)})
	if err != nil {
		panic(err)
	}
	batchBody := func(items int) string {
		var sb bytes.Buffer
		sb.WriteString(`{"selects":[`)
		for i := 0; i < items; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			// Distinct budgets make distinct cache keys: the batch probes
			// (and, on the first op, fills) `items` separate entries.
			fmt.Fprintf(&sb, `{"pool":"crowd","model":"pay","budget":%d}`, i+1)
		}
		sb.WriteString(`]}`)
		return sb.String()
	}
	return []namedBench{
		{"ServerSelect/altr/n101", httpBench("/v1/select", `{"pool":"crowd"}`, withPool(101))},
		{"ServerSelect/pay/n101", httpBench("/v1/select", `{"pool":"crowd","model":"pay","budget":5}`, withPool(101))},
		{"ServerSelect/warm/n101", handlerSelectBench(0)},
		{"ServerSelect/warm-insight/n101", handlerSelectInsightBench()},
		{"ServerSelect/miss/n101", handlerSelectBench(-1)},
		{"ServerTaskTimeline/n101", handlerTaskTimelineBench()},
		{"ServerSelectBatch/http/n101x16", httpBench("/v1/select/batch", batchBody(16), withPool(101))},
		{"ServerJER/n101", httpBench("/v1/jer", string(jerBody), nil)},
		{"PoolSnapshot/n1001", func(b *testing.B) {
			store := server.NewStore()
			if _, err := store.Put("crowd", benchPoolJurors(1001)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, ok := store.Get("crowd")
				if !ok || p.Size() != 1001 {
					b.Fatal("bad snapshot")
				}
			}
		}},
		{"PoolPatch/n101", func(b *testing.B) {
			store := server.NewStore()
			if _, err := store.Put("crowd", benchPoolJurors(101)); err != nil {
				b.Fatal(err)
			}
			up := []server.JurorUpdate{{ID: "j0050", Votes: &server.VoteObservation{Wrong: 1, Total: 4}}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.Patch("crowd", up); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}

// writeBenchJSON runs the tracked benchmark set in-process via
// testing.Benchmark and writes the snapshot to path. Progress goes to
// progress (one line per benchmark) so long runs are observable.
func writeBenchJSON(path string, progress io.Writer) error {
	return writeBenchSnapshot(path, benchRegistry(), progress)
}

// benchGuard pins one benchmark axis against the committed snapshot:
// the fast-path promises PR 6 makes (a warm select is a cache probe; a
// batch vote stays on its allocation diet) regress loudly, not silently.
type benchGuard struct {
	name string
	axis string // "ns_per_op" | "allocs_per_op"
	// limit, when non-zero, makes the guard an absolute cap: the axis
	// must not exceed it, no snapshot entry required and no tolerance
	// applied. Only machine-independent axes (allocation counts) should
	// use it — an absolute nanosecond cap would encode one machine.
	limit float64
}

// regressionGuards is the -bench-check set. Warm-select guards time
// (the cache's whole point); the vote paths guard allocations, which
// are machine-independent and therefore tight. PR 7 adds the write-path
// fast-lane promises: single-op create/vote latency must not regress
// while the throughput work lands, and replay stays on its diet.
var regressionGuards = []benchGuard{
	{name: "ServerSelect/warm/n101", axis: "ns_per_op"},
	// PR 8's overhead guard: the instrumented warm select (per-endpoint
	// histogram + stage marks, tracing disabled) must add zero
	// allocations over the PR 7 baseline.
	{name: "ServerSelect/warm/n101", axis: "allocs_per_op"},
	// PR 9's overhead guard: with the insight engine hooked on the task
	// event stream and serving /v1/insight, the warm select must hold
	// its absolute 16-alloc diet — an absolute cap, so the promise holds
	// even before the snapshot is regenerated on a new machine.
	{name: "ServerSelect/warm-insight/n101", axis: "allocs_per_op", limit: 16},
	// PR 10's read-path guard: a timeline reconstruction is bounded work
	// (spans of one task + fingerprint + encode); its allocation count is
	// machine-independent, so a relative guard keeps it from quietly
	// growing a per-span allocation.
	{name: "ServerTaskTimeline/n101", axis: "allocs_per_op"},
	{name: "ServerTaskCreate/n101", axis: "ns_per_op"},
	{name: "ServerTaskVote/n101", axis: "ns_per_op"},
	{name: "ServerTaskVote/n101", axis: "allocs_per_op"},
	{name: "ServerTaskVoteBatch/n101", axis: "allocs_per_op"},
	{name: "WALReplay/votes", axis: "allocs_per_op"},
}

// checkBenchJSON re-runs the guarded benchmarks and fails if any
// guarded axis regressed more than tolerance (relative) against the
// snapshot at path. One line per guard goes to out either way.
func checkBenchJSON(path string, tolerance float64, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	baseline := make(map[string]benchEntry, len(snap.Benchmarks))
	for _, e := range snap.Benchmarks {
		baseline[e.Name] = e
	}
	registry := make(map[string]func(*testing.B))
	for _, nb := range benchRegistry() {
		registry[nb.name] = nb.fn
	}
	var failures []string
	results := make(map[string]testing.BenchmarkResult) // guards sharing a benchmark share one run
	for _, g := range regressionGuards {
		var base benchEntry
		if g.limit == 0 {
			var ok bool
			base, ok = baseline[g.name]
			if !ok {
				return fmt.Errorf("snapshot %s has no entry %q", path, g.name)
			}
		}
		res, ran := results[g.name]
		if !ran {
			fn, ok := registry[g.name]
			if !ok {
				return fmt.Errorf("no benchmark named %q in the registry", g.name)
			}
			res = testing.Benchmark(fn)
			results[g.name] = res
		}
		if res.N == 0 {
			return fmt.Errorf("benchmark %s failed", g.name)
		}
		var got, want float64
		switch g.axis {
		case "ns_per_op":
			got = float64(res.T.Nanoseconds()) / float64(res.N)
			want = base.NsPerOp
		case "allocs_per_op":
			got = float64(res.AllocsPerOp())
			want = float64(base.AllocsPerOp)
		default:
			return fmt.Errorf("unknown guard axis %q", g.axis)
		}
		limit := want * (1 + tolerance)
		ref := "baseline"
		if g.limit > 0 {
			limit, want, ref = g.limit, g.limit, "cap"
		}
		verdict := "ok"
		if got > limit {
			verdict = "REGRESSED"
			if g.limit > 0 {
				failures = append(failures,
					fmt.Sprintf("%s %s: %.1f exceeds the absolute cap %.1f",
						g.name, g.axis, got, limit))
			} else {
				failures = append(failures,
					fmt.Sprintf("%s %s: %.1f exceeds %.1f (+%.0f%% over baseline %.1f)",
						g.name, g.axis, got, limit, 100*tolerance, want))
			}
		}
		fmt.Fprintf(out, "%-32s %-13s %12.1f %-8s %12.1f  %s\n", g.name, g.axis, got, ref, want, verdict)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

// writeBenchSnapshot is writeBenchJSON over an explicit benchmark set.
// Results accumulate in a same-directory temp file that is renamed over
// path only on success: an unwritable path fails immediately instead of
// after minutes of measurement, and a mid-run failure or interrupt leaves
// any existing snapshot at path untouched.
func writeBenchSnapshot(path string, benches []namedBench, progress io.Writer) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name()) // no-op after the success rename
	snap := benchSnapshot{
		Schema:     "juryselect-bench/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note:       "experiment/* entries run at experiments.QuickConfig scale",
	}
	for _, nb := range benches {
		res := testing.Benchmark(nb.fn)
		if res.N == 0 {
			// testing.Benchmark returns a zero result when the target
			// b.Fatal'ed; fail fast with the name instead of emitting NaN.
			f.Close()
			return fmt.Errorf("benchmark %s failed", nb.name)
		}
		entry := benchEntry{
			Name:        nb.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if len(res.Extra) > 0 {
			entry.Extra = make(map[string]float64, len(res.Extra))
			for unit, v := range res.Extra {
				entry.Extra[unit] = v
			}
		}
		snap.Benchmarks = append(snap.Benchmarks, entry)
		fmt.Fprintf(progress, "%-28s %12.0f ns/op %8d B/op %6d allocs/op\n",
			entry.Name, entry.NsPerOp, entry.BytesPerOp, entry.AllocsPerOp)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		f.Close()
		return err
	}
	data = append(data, '\n')
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path)
}
