// Command jurybench regenerates the paper's tables and figures.
//
// Usage:
//
//	jurybench [-exp table2,fig3a,...|all] [-quick] [-seed N] [-workers N] [-list]
//	jurybench -bench-json BENCH_PR2.json
//	jurybench -bench-check BENCH_PR6.json [-bench-tolerance 0.2]
//
// Each experiment prints the rows/series the corresponding paper artifact
// reports (Table 2 and Figures 3(a)–3(i)) plus the ablation studies from
// DESIGN.md. -quick shrinks the workloads to CI scale; the default runs at
// paper scale and can take minutes for the efficiency figures.
//
// -bench-json runs the tracked benchmark set (JER kernels, batch engine,
// solvers, and every experiment at quick scale) in-process and writes a
// machine-readable snapshot — ns/op, allocs/op, B/op per benchmark — to
// the given path. Snapshots are committed as BENCH_PR<n>.json so the hot
// path's performance trajectory is recorded PR over PR.
//
// -bench-check re-runs the guarded fast-path benchmarks (warm select
// ns/op, vote-path allocs/op) and exits non-zero if any regressed more
// than -bench-tolerance (default +20%) against the given snapshot. CI
// runs it against the latest committed BENCH_PR<n>.json.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"juryselect/internal/experiments"
)

func main() {
	var cfg benchConfig
	flag.StringVar(&cfg.exp, "exp", "all", "comma-separated experiment ids, or 'all'")
	flag.BoolVar(&cfg.quick, "quick", false, "run shrunk workloads (CI scale)")
	flag.Int64Var(&cfg.seed, "seed", 1, "random seed for synthetic workloads")
	flag.IntVar(&cfg.workers, "workers", 0, "engine worker pool size (0 = all cores); results are identical for every value")
	flag.BoolVar(&cfg.list, "list", false, "list experiment ids and exit")
	flag.StringVar(&cfg.benchJSON, "bench-json", "", "run the tracked benchmark set and write a JSON snapshot to this path")
	flag.StringVar(&cfg.benchCheck, "bench-check", "", "re-run the guarded benchmarks and fail on regression against this snapshot")
	flag.Float64Var(&cfg.benchTolerance, "bench-tolerance", 0.2, "allowed relative regression for -bench-check (0.2 = +20%)")
	flag.Parse()
	os.Exit(runBench(cfg, os.Stdout, os.Stderr))
}

type benchConfig struct {
	exp            string
	quick          bool
	seed           int64
	workers        int
	list           bool
	benchJSON      string
	benchCheck     string
	benchTolerance float64
}

func runBench(cfg benchConfig, out, errOut io.Writer) int {
	if cfg.list {
		for _, id := range experiments.List() {
			fmt.Fprintln(out, id)
		}
		return 0
	}
	if cfg.benchJSON != "" {
		if err := writeBenchJSON(cfg.benchJSON, out); err != nil {
			fmt.Fprintf(errOut, "jurybench: %v\n", err)
			return 1
		}
		return 0
	}
	if cfg.benchCheck != "" {
		tol := cfg.benchTolerance
		if tol == 0 {
			tol = 0.2
		}
		if err := checkBenchJSON(cfg.benchCheck, tol, out); err != nil {
			fmt.Fprintf(errOut, "jurybench: %v\n", err)
			return 1
		}
		return 0
	}

	ecfg := experiments.DefaultConfig()
	if cfg.quick {
		ecfg = experiments.QuickConfig()
	}
	ecfg.Seed = cfg.seed
	ecfg.Workers = cfg.workers

	ids := experiments.List()
	if cfg.exp != "all" {
		ids = strings.Split(cfg.exp, ",")
	}
	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		res, err := experiments.Run(id, ecfg)
		if err != nil {
			fmt.Fprintf(errOut, "jurybench: %v\n", err)
			failed++
			continue
		}
		fmt.Fprintf(out, "# %s — %s (took %v)\n", res.ID, res.Title, res.Elapsed.Round(time.Millisecond))
		if res.Table != nil {
			if err := res.Table.Render(out); err != nil {
				fmt.Fprintf(errOut, "jurybench: rendering %s: %v\n", id, err)
				failed++
			}
		}
		for _, n := range res.Notes {
			fmt.Fprintf(out, "note: %s\n", n)
		}
		fmt.Fprintln(out)
	}
	if failed > 0 {
		return 1
	}
	return 0
}
