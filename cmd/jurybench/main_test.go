package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"juryselect/internal/experiments"
	"juryselect/internal/jer"
)

func TestRunBenchTable2(t *testing.T) {
	var out, errOut bytes.Buffer
	code := runBench(benchConfig{exp: "table2", quick: true, seed: 1}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"table2", "0.1740", "0.0704"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunBenchList(t *testing.T) {
	var out, errOut bytes.Buffer
	code := runBench(benchConfig{list: true}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, id := range experiments.List() {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunBenchUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	code := runBench(benchConfig{exp: "figZZ", quick: true, seed: 1}, &out, &errOut)
	if code == 0 {
		t.Fatal("expected non-zero exit for unknown experiment")
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr: %s", errOut.String())
	}
}

func TestRunBenchMultipleExperiments(t *testing.T) {
	var out, errOut bytes.Buffer
	code := runBench(benchConfig{exp: "table2, fig3e", quick: true, seed: 1}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "fig3e") {
		t.Errorf("missing fig3e section:\n%s", out.String())
	}
}

func TestWriteBenchSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var progress bytes.Buffer
	benches := []namedBench{{"tiny/jer_dp_n11", jerBench(jer.DPAlgo, 11)}}
	if err := writeBenchSnapshot(path, benches, &progress); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Schema != "juryselect-bench/v1" || snap.GOMAXPROCS < 1 {
		t.Fatalf("bad snapshot header: %+v", snap)
	}
	if len(snap.Benchmarks) != 1 {
		t.Fatalf("got %d benchmarks, want 1", len(snap.Benchmarks))
	}
	e := snap.Benchmarks[0]
	if e.Name != "tiny/jer_dp_n11" || e.NsPerOp <= 0 || e.Iterations <= 0 {
		t.Fatalf("bad entry: %+v", e)
	}
	// The pooled DP kernel must stay allocation-free in steady state; the
	// committed BENCH_PR2.json trajectory relies on this holding.
	if e.AllocsPerOp != 0 {
		t.Fatalf("DP path allocates %d allocs/op, want 0", e.AllocsPerOp)
	}
	if !strings.Contains(progress.String(), "tiny/jer_dp_n11") {
		t.Fatalf("no progress line: %q", progress.String())
	}
}

func TestBenchCheck(t *testing.T) {
	// Swap in a cheap guard so the test exercises the check mechanism,
	// not the real (expensive) server benchmarks.
	saved := regressionGuards
	regressionGuards = []benchGuard{{name: "JER_DP_n101", axis: "ns_per_op"}}
	defer func() { regressionGuards = saved }()

	path := filepath.Join(t.TempDir(), "bench.json")
	benches := []namedBench{{"JER_DP_n101", jerBench(jer.DPAlgo, 101)}}
	if err := writeBenchSnapshot(path, benches, io.Discard); err != nil {
		t.Fatal(err)
	}
	// Against its own fresh snapshot the guard must pass comfortably.
	var out bytes.Buffer
	if err := checkBenchJSON(path, 2.0, &out); err != nil {
		t.Fatalf("self-check failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "JER_DP_n101") || !strings.Contains(out.String(), "ok") {
		t.Fatalf("check output missing guard line: %q", out.String())
	}

	// Shrink the committed baseline to force a regression verdict.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	snap.Benchmarks[0].NsPerOp /= 1000
	shrunk, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, shrunk, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = checkBenchJSON(path, 0.2, &out)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("want regression failure, got %v\n%s", err, out.String())
	}

	// A snapshot missing a guarded entry is a configuration error.
	snap.Benchmarks[0].Name = "renamed"
	renamed, _ := json.Marshal(snap)
	if err := os.WriteFile(path, renamed, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkBenchJSON(path, 0.2, io.Discard); err == nil {
		t.Fatal("want error for snapshot missing the guarded entry")
	}
}

func TestRunBenchJSONFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "missing-dir")
	var out, errOut bytes.Buffer
	// An unwritable path must surface as a non-zero exit, not a panic.
	code := runBench(benchConfig{benchJSON: filepath.Join(path, "x", "y.json")}, &out, &errOut)
	if code == 0 {
		t.Fatal("expected failure for unwritable snapshot path")
	}
}
