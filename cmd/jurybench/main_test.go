package main

import (
	"bytes"
	"strings"
	"testing"

	"juryselect/internal/experiments"
)

func TestRunBenchTable2(t *testing.T) {
	var out, errOut bytes.Buffer
	code := runBench(benchConfig{exp: "table2", quick: true, seed: 1}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"table2", "0.1740", "0.0704"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunBenchList(t *testing.T) {
	var out, errOut bytes.Buffer
	code := runBench(benchConfig{list: true}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, id := range experiments.List() {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %s", id)
		}
	}
}

func TestRunBenchUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	code := runBench(benchConfig{exp: "figZZ", quick: true, seed: 1}, &out, &errOut)
	if code == 0 {
		t.Fatal("expected non-zero exit for unknown experiment")
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr: %s", errOut.String())
	}
}

func TestRunBenchMultipleExperiments(t *testing.T) {
	var out, errOut bytes.Buffer
	code := runBench(benchConfig{exp: "table2, fig3e", quick: true, seed: 1}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "fig3e") {
		t.Errorf("missing fig3e section:\n%s", out.String())
	}
}
