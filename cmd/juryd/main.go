// Command juryd serves jury selection over HTTP/JSON: the paper's
// decision-making primitive as an online service backed by a versioned
// live juror-pool store.
//
// Usage:
//
//	juryd [-addr :8080] [-pool name=jurors.csv ...] [-workers N]
//	      [-cache N] [-max-inflight N] [-max-queue N]
//	      [-timeout 5s] [-max-timeout 30s] [-drain 10s] [-drain-delay 0s]
//
// Endpoints:
//
//	POST   /v1/jer                   exact JER of one jury
//	POST   /v1/select                minimum-JER jury from a pool or inline
//	GET    /v1/pools                 list pools
//	GET    /v1/pools/{name}          one pool snapshot (with jurors)
//	PUT    /v1/pools/{name}/jurors   replace the pool
//	PATCH  /v1/pools/{name}/jurors   incremental updates / observed votes
//	DELETE /v1/pools/{name}          drop the pool
//	GET    /healthz                  200 serving / 503 draining
//	GET    /metrics                  request, shed and engine counters
//
// Each -pool flag preloads a pool from a CSV (id,error_rate[,cost]) or
// JSON file, by extension. On SIGTERM or SIGINT the server flips
// /healthz to 503 and — when -drain-delay is set — keeps serving for
// that window so load balancers observe the drain and deregister, then
// stops accepting connections, drains in-flight requests for at most
// -drain, and exits 0. Behind a load balancer set -drain-delay to at
// least one health-check interval; the default 0 shuts down
// immediately.
//
// Example:
//
//	$ juryd -addr :8080 -pool crowd=jurors.csv &
//	$ curl -s localhost:8080/v1/select -d '{"pool":"crowd"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"juryselect/internal/dataio"
	"juryselect/internal/server"
	"juryselect/jury"
)

// poolFlags collects repeated -pool name=path flags.
type poolFlags []string

func (p *poolFlags) String() string { return strings.Join(*p, ",") }
func (p *poolFlags) Set(v string) error {
	*p = append(*p, v)
	return nil
}

type config struct {
	addr        string
	pools       poolFlags
	workers     int
	cacheSize   int
	maxInflight int
	maxQueue    int
	timeout     time.Duration
	maxTimeout  time.Duration
	drain       time.Duration
	drainDelay  time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.Var(&cfg.pools, "pool", "preload a pool: name=jurors.csv or name=jurors.json (repeatable)")
	flag.IntVar(&cfg.workers, "workers", 0, "engine worker pool (0 = all cores)")
	flag.IntVar(&cfg.cacheSize, "cache", 0, "JER memo entries (0 = default, negative = disabled)")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 0, "concurrent evaluation requests (0 = all cores)")
	flag.IntVar(&cfg.maxQueue, "max-queue", 0, "queued evaluation requests before 429 shedding (0 = default, negative = no queue)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "default per-request deadline (0 = 5s)")
	flag.DurationVar(&cfg.maxTimeout, "max-timeout", 0, "cap on request-supplied deadlines (0 = 30s)")
	flag.DurationVar(&cfg.drain, "drain", 10*time.Second, "grace period for in-flight requests on shutdown")
	flag.DurationVar(&cfg.drainDelay, "drain-delay", 0, "serve 503 on /healthz for this long before closing listeners, so load balancers observe the drain and deregister (0 = shut down immediately)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// A second signal during the -drain-delay window skips the rest of
	// the deregistration wait (NotifyContext's context is already
	// cancelled by then, so it cannot carry the escalation).
	hurry := make(chan os.Signal, 1)
	signal.Notify(hurry, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(hurry)
	logger := log.New(os.Stderr, "juryd: ", log.LstdFlags)
	if err := run(ctx, cfg, logger, nil, hurry); err != nil {
		logger.Fatal(err)
	}
}

// run builds the server, serves until ctx is cancelled, then drains.
// When ready is non-nil it receives the bound address once the listener
// is up (used by the tests to serve on a kernel-picked port). A receive
// on hurry (a second shutdown signal) cuts the -drain-delay window
// short; nil disables that escalation.
func run(ctx context.Context, cfg config, logger *log.Logger, ready chan<- string, hurry <-chan os.Signal) error {
	srv := server.New(server.Config{
		Engine:         jury.NewEngine(jury.BatchOptions{Workers: cfg.workers, CacheSize: cfg.cacheSize}),
		MaxInflight:    cfg.maxInflight,
		MaxQueue:       cfg.maxQueue,
		DefaultTimeout: cfg.timeout,
		MaxTimeout:     cfg.maxTimeout,
	})
	for _, spec := range cfg.pools {
		name, size, err := loadPool(srv.Store(), spec)
		if err != nil {
			return err
		}
		logger.Printf("loaded pool %q (%d jurors)", name, size)
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	logger.Printf("serving on %s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: flip the health signal, keep the listener open for
	// -drain-delay so load balancers actually observe the 503 and stop
	// routing here (Shutdown closes listeners immediately, which a
	// health prober would see as ECONNREFUSED, not a drain), then let
	// in-flight and queued requests finish.
	logger.Printf("draining (up to %s)", cfg.drain)
	srv.SetDraining(true)
	if cfg.drainDelay > 0 {
		logger.Printf("healthz now 503; deregistration window %s", cfg.drainDelay)
		select {
		case <-time.After(cfg.drainDelay):
		case <-hurry:
			logger.Printf("second signal: skipping the rest of the deregistration window")
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("drained cleanly")
	return nil
}

// loadPool parses one -pool flag ("name=path") and loads the file into
// the store, choosing the reader by extension.
func loadPool(store *server.Store, spec string) (name string, size int, err error) {
	name, path, ok := strings.Cut(spec, "=")
	if !ok || name == "" || path == "" {
		return "", 0, fmt.Errorf("bad -pool %q (want name=path)", spec)
	}
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	var jurors []jury.Juror
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".csv":
		jurors, err = dataio.ReadCSV(f)
	case ".json":
		jurors, err = dataio.ReadJSON(f)
	default:
		return "", 0, fmt.Errorf("pool %q: unknown extension %q (want .csv or .json)", name, ext)
	}
	if err != nil {
		return "", 0, fmt.Errorf("pool %q: %w", name, err)
	}
	if _, err := store.Put(name, jurors); err != nil {
		return "", 0, fmt.Errorf("pool %q: %w", name, err)
	}
	return name, len(jurors), nil
}
