// Command juryd serves jury selection over HTTP/JSON: the paper's
// decision-making primitive as an online service backed by a versioned
// live juror-pool store and a durable decision-task store.
//
// Usage:
//
//	juryd [-addr :8080] [-pool name=jurors.csv ...] [-workers N]
//	      [-cache N] [-max-inflight N] [-max-queue N]
//	      [-timeout 5s] [-max-timeout 30s] [-drain 10s] [-drain-delay 0s]
//	      [-wal-dir DIR] [-fsync batch] [-compact-every N] [-task-shards N]
//	      [-sweep 1s] [-juror-timeout 60s] [-task-expiry 1h]
//	      [-slow-ms N] [-trace-every N] [-trace-ring N] [-pprof-addr ADDR]
//	      [-insight] [-insight-pairs N]
//	      [-lifecycle] [-lifecycle-timelines N]
//	      [-slo] [-slo-eval 10s] [-slo-compress N] [-stall-grace D]
//	      [-slo-verdict-threshold 60s] [-slo-verdict-target 0.99]
//	      [-slo-expired-target 0.99] [-slo-http-target 0.999]
//	      [-slo-fsync-threshold 50ms] [-slo-fsync-target 0.999]
//
// Endpoints:
//
//	POST   /v1/jer                   exact JER of one jury
//	POST   /v1/select                minimum-JER jury from a pool or inline
//	POST   /v1/tasks                 open a decision task (select its jury)
//	GET    /v1/tasks                 list tasks (?status=open|awaiting_votes|decided|expired)
//	GET    /v1/tasks/{id}            one task with jurors, votes and verdict
//	POST   /v1/tasks/{id}/votes      record a juror's vote or decline
//	GET    /v1/pools                 list pools
//	GET    /v1/pools/{name}          one pool snapshot (with jurors)
//	PUT    /v1/pools/{name}/jurors   replace the pool
//	PATCH  /v1/pools/{name}/jurors   incremental updates / observed votes
//	DELETE /v1/pools/{name}          drop the pool
//	GET    /v1/insight/jurors       per-juror profiles: response rates, realized error, latency
//	GET    /v1/insight/calibration  predicted-JER reliability diagram and Brier score
//	GET    /v1/insight/agreement    co-vote pair agreement with above-chance z-scores
//	GET    /v1/tasks/{id}/timeline   one task's reconstructed life as ordered spans
//	GET    /v1/lifecycle             aggregate time-to-verdict/first-vote distributions
//	GET    /v1/slo                   error-budget burn rates and alert state per objective
//	GET    /healthz                  200 serving / 503 draining (plus WAL queue depth and sweep-stall watchdog)
//	GET    /metrics                  request, shed, engine, task and WAL counters (JSON)
//	GET    /metrics/prometheus       the same counters in Prometheus text format
//	GET    /debug/traces             recent request traces with per-stage timing
//
// Observability: every endpoint keeps an always-on latency histogram
// (JSON summaries under /metrics, full buckets under
// /metrics/prometheus). -trace-every N samples every Nth request into
// the /debug/traces ring; -slow-ms N logs (and always traces) requests
// at least that slow. -pprof-addr serves net/http/pprof on a separate
// listener, kept off the service port so profiling is never exposed
// through the load balancer.
//
// Lifecycle and SLOs: -lifecycle (default on) reconstructs every
// task's timeline from the same event stream that feeds -insight —
// attached before WAL replay, so a restarted juryd serves byte-identical
// timelines. -slo (default on) tracks four declarative objectives as
// error budgets — verdict latency, undecided/expired rate, HTTP 5xx
// rate, and WAL fsync latency — with multi-window burn-rate alerting
// (fast 5m/1h pair at 14.4×, slow 6h/3d pair at 1×); trips are logged
// and exported as juryd_slo_* series. -slo-compress N divides every
// window by N (CI smokes compress 1000× to trip alerts in seconds).
// The sweep watchdog flags tasks stuck past their juror timeout with
// no sweeper progress into /healthz ("degraded" + stall block).
//
// Durability: with -wal-dir set, every pool and task mutation is
// journaled to a CRC-framed write-ahead log (fsync policy per -fsync:
// "always" = fsync before acknowledging each write, "batch" = group
// commit on a short timer, "off" = kernel-paced) and periodically folded
// into a snapshot (-compact-every records). On boot juryd replays
// snapshot + log — truncating a torn tail from a crash mid-write — to
// the exact pre-crash state, so a kill -9 loses nothing acknowledged
// under -fsync always. Without -wal-dir the task store is ephemeral.
//
// A background sweeper (period -sweep) releases invited jurors who have
// not answered within -juror-timeout — inviting the next-best candidate
// under the remaining budget — and expires tasks older than
// -task-expiry.
//
// Each -pool flag preloads a pool from a CSV (id,error_rate[,cost]) or
// JSON file, by extension; a pool already recovered from the WAL is NOT
// overwritten by its preload file (the journal is authoritative). On
// SIGTERM or SIGINT the server flips /healthz to 503 and — when
// -drain-delay is set — keeps serving for that window so load balancers
// observe the drain and deregister, then stops accepting connections,
// drains in-flight requests for at most -drain, flushes the WAL, and
// exits 0.
//
// Example:
//
//	$ juryd -addr :8080 -pool crowd=jurors.csv -wal-dir /var/lib/juryd &
//	$ curl -s localhost:8080/v1/tasks -d '{"pool":"crowd","question":"is it true?"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"juryselect/internal/dataio"
	"juryselect/internal/insight"
	"juryselect/internal/lifecycle"
	"juryselect/internal/server"
	"juryselect/internal/tasks"
	"juryselect/jury"
)

// poolFlags collects repeated -pool name=path flags.
type poolFlags []string

func (p *poolFlags) String() string { return strings.Join(*p, ",") }
func (p *poolFlags) Set(v string) error {
	*p = append(*p, v)
	return nil
}

type config struct {
	addr        string
	pools       poolFlags
	workers     int
	cacheSize   int
	maxInflight int
	maxQueue    int
	selectCache int
	timeout     time.Duration
	maxTimeout  time.Duration
	drain       time.Duration
	drainDelay  time.Duration

	walDir       string
	fsync        string
	compactEvery int
	taskShards   int
	sweep        time.Duration
	jurorTimeout time.Duration
	taskExpiry   time.Duration

	slowMS     int
	traceEvery int
	traceRing  int
	pprofAddr  string

	insightOn bool
	pairCap   int

	lifecycleOn bool
	timelineCap int

	sloOn            bool
	sloEval          time.Duration
	sloCompress      int
	stallGrace       time.Duration
	verdictThreshold time.Duration
	verdictTarget    float64
	expiredTarget    float64
	httpTarget       float64
	fsyncThreshold   time.Duration
	fsyncTarget      float64
}

// objectives renders the -slo-* flags as the declarative objective set
// loaded at start. Latency thresholds ≤ 0 drop that objective.
func (c *config) objectives() []lifecycle.Objective {
	var out []lifecycle.Objective
	if c.verdictThreshold > 0 {
		out = append(out, lifecycle.Objective{
			Name: "verdict-latency", SLI: lifecycle.SLIVerdictLatency,
			Target: c.verdictTarget, ThresholdNS: c.verdictThreshold.Nanoseconds(),
		})
	}
	out = append(out,
		lifecycle.Objective{Name: "task-expiry", SLI: lifecycle.SLIExpiredRate, Target: c.expiredTarget},
		lifecycle.Objective{Name: "http-availability", SLI: lifecycle.SLIHTTP5xx, Target: c.httpTarget},
	)
	if c.fsyncThreshold > 0 {
		out = append(out, lifecycle.Objective{
			Name: "wal-fsync", SLI: lifecycle.SLIWALFsync,
			Target: c.fsyncTarget, ThresholdNS: c.fsyncThreshold.Nanoseconds(),
		})
	}
	return out
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.Var(&cfg.pools, "pool", "preload a pool: name=jurors.csv or name=jurors.json (repeatable)")
	flag.IntVar(&cfg.workers, "workers", 0, "engine worker pool (0 = all cores)")
	flag.IntVar(&cfg.cacheSize, "cache", 0, "JER memo entries (0 = default, negative = disabled)")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 0, "concurrent evaluation requests (0 = all cores)")
	flag.IntVar(&cfg.maxQueue, "max-queue", 0, "queued evaluation requests before 429 shedding (0 = default, negative = no queue)")
	flag.IntVar(&cfg.selectCache, "select-cache", 0, "version-keyed select response cache entries (0 = default, negative = disabled)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "default per-request deadline (0 = 5s)")
	flag.DurationVar(&cfg.maxTimeout, "max-timeout", 0, "cap on request-supplied deadlines (0 = 30s)")
	flag.DurationVar(&cfg.drain, "drain", 10*time.Second, "grace period for in-flight requests on shutdown")
	flag.DurationVar(&cfg.drainDelay, "drain-delay", 0, "serve 503 on /healthz for this long before closing listeners, so load balancers observe the drain and deregister (0 = shut down immediately)")
	flag.StringVar(&cfg.walDir, "wal-dir", "", "directory for the task/pool write-ahead log (empty = ephemeral store)")
	flag.StringVar(&cfg.fsync, "fsync", "batch", "WAL durability: always, batch, or off")
	flag.IntVar(&cfg.compactEvery, "compact-every", 0, "WAL records between snapshot compactions (0 = default, negative = never)")
	flag.IntVar(&cfg.taskShards, "task-shards", 0, "task store shard count, rounded up to a power of two (0 = default)")
	flag.DurationVar(&cfg.sweep, "sweep", time.Second, "juror-timeout/expiry sweep period (0 = no sweeper)")
	flag.DurationVar(&cfg.jurorTimeout, "juror-timeout", 0, "default juror response timeout (0 = 60s)")
	flag.DurationVar(&cfg.taskExpiry, "task-expiry", 0, "default task expiry (0 = 1h)")
	flag.IntVar(&cfg.slowMS, "slow-ms", 0, "log and trace requests at least this slow, in milliseconds (0 = off)")
	flag.IntVar(&cfg.traceEvery, "trace-every", 0, "sample every Nth request into /debug/traces (0 = off)")
	flag.IntVar(&cfg.traceRing, "trace-ring", 0, "trace ring capacity (0 = default)")
	flag.StringVar(&cfg.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this separate address (empty = off)")
	flag.BoolVar(&cfg.insightOn, "insight", true, "maintain juror/calibration/agreement analytics from the task event stream (serves /v1/insight/*)")
	flag.IntVar(&cfg.pairCap, "insight-pairs", 0, "co-vote pair tracker capacity (0 = default)")
	flag.BoolVar(&cfg.lifecycleOn, "lifecycle", true, "reconstruct per-task timelines from the task event stream (serves /v1/tasks/{id}/timeline and /v1/lifecycle)")
	flag.IntVar(&cfg.timelineCap, "lifecycle-timelines", 0, "closed timelines retained before lowest-ID eviction (0 = default)")
	flag.BoolVar(&cfg.sloOn, "slo", true, "track SLOs as error budgets with burn-rate alerts (serves /v1/slo, exports juryd_slo_*)")
	flag.DurationVar(&cfg.sloEval, "slo-eval", 10*time.Second, "burn-rate evaluation and HTTP-SLI poll period (0 = evaluate only on scrape)")
	flag.IntVar(&cfg.sloCompress, "slo-compress", 1, "divide every alerting window by N (CI smoke runs compressed policies)")
	flag.DurationVar(&cfg.stallGrace, "stall-grace", 0, "slack past the juror timeout before the watchdog flags a task as stalled (0 = 3 sweep periods)")
	flag.DurationVar(&cfg.verdictThreshold, "slo-verdict-threshold", time.Minute, "verdict-latency objective threshold: creation to verdict (0 = drop the objective)")
	flag.Float64Var(&cfg.verdictTarget, "slo-verdict-target", 0.99, "fraction of verdicts that must land within -slo-verdict-threshold")
	flag.Float64Var(&cfg.expiredTarget, "slo-expired-target", 0.99, "fraction of closed tasks that must decide (not expire undecided)")
	flag.Float64Var(&cfg.httpTarget, "slo-http-target", 0.999, "fraction of non-ops requests that must not 5xx")
	flag.DurationVar(&cfg.fsyncThreshold, "slo-fsync-threshold", 50*time.Millisecond, "WAL fsync latency objective threshold (0 = drop the objective)")
	flag.Float64Var(&cfg.fsyncTarget, "slo-fsync-target", 0.999, "fraction of WAL fsyncs that must land within -slo-fsync-threshold")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// A second signal during the -drain-delay window skips the rest of
	// the deregistration wait (NotifyContext's context is already
	// cancelled by then, so it cannot carry the escalation).
	hurry := make(chan os.Signal, 1)
	signal.Notify(hurry, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(hurry)
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if err := run(ctx, cfg, logger, nil, hurry); err != nil {
		logger.Error("juryd failed", "err", err)
		os.Exit(1)
	}
}

// run builds the server, serves until ctx is cancelled, then drains.
// When ready is non-nil it receives the bound address once the listener
// is up (used by the tests to serve on a kernel-picked port). A receive
// on hurry (a second shutdown signal) cuts the -drain-delay window
// short; nil disables that escalation.
func run(ctx context.Context, cfg config, logger *slog.Logger, ready chan<- string, hurry <-chan os.Signal) error {
	var syncMode tasks.SyncMode
	switch cfg.fsync {
	case "always":
		syncMode = tasks.SyncAlways
	case "batch", "":
		syncMode = tasks.SyncBatch
	case "off":
		syncMode = tasks.SyncOff
	default:
		return fmt.Errorf("bad -fsync %q (want always, batch or off)", cfg.fsync)
	}
	eng := jury.NewEngine(jury.BatchOptions{Workers: cfg.workers, CacheSize: cfg.cacheSize})
	// The insight and lifecycle engines attach before Open so WAL recovery
	// replays the whole task history into them; the live tail then feeds
	// the same sinks, which is what makes /v1/insight fingerprints and
	// /v1/tasks/{id}/timeline bytes restart-stable.
	var ins *insight.Engine
	var sinks []tasks.EventSink
	if cfg.insightOn {
		ins = insight.New(cfg.pairCap)
		sinks = append(sinks, ins)
	}
	var lce *lifecycle.Engine
	if cfg.lifecycleOn {
		lce = lifecycle.New(cfg.timelineCap)
		sinks = append(sinks, lce)
	}
	var slo *lifecycle.SLO
	var fsyncObs func(int64)
	if cfg.sloOn {
		windows := lifecycle.DefaultBurnWindows().Compress(cfg.sloCompress)
		slo = lifecycle.NewSLO(cfg.objectives(), windows, nil, logger)
		fsyncObs = slo.ObserveFsync
		if lce != nil {
			// Verdict-latency and expired-rate events flow through the
			// lifecycle engine with journaled timestamps, so replay
			// backfills the same burn windows a live feed filled.
			lce.AttachSLO(slo)
		}
	}
	store, err := tasks.Open(tasks.Config{
		Dir:                 cfg.walDir,
		Sync:                syncMode,
		Engine:              eng,
		CompactEvery:        cfg.compactEvery,
		Shards:              cfg.taskShards,
		DefaultJurorTimeout: cfg.jurorTimeout,
		DefaultExpiry:       cfg.taskExpiry,
		Events:              tasks.Sinks(sinks...),
		FsyncObserver:       fsyncObs,
	})
	if err != nil {
		return err
	}
	defer store.Close() //nolint:errcheck // re-closed explicitly after drain
	if store.Durable() {
		rec := store.Recovery()
		logger.Info("wal recovered",
			"dir", cfg.walDir,
			"records", rec.Records,
			"duration", rec.Duration.Round(time.Microsecond).String(),
			"pools", rec.Pools,
			"tasks", rec.Tasks,
			"snapshot", rec.SnapshotLoaded)
		if rec.TornBytes > 0 {
			logger.Warn("wal truncated torn tail (crash mid-write)", "bytes", rec.TornBytes)
		}
	}
	var wd *lifecycle.Watchdog
	if cfg.sweep > 0 || cfg.stallGrace > 0 {
		wd = lifecycle.NewWatchdog(store, cfg.stallGrace, cfg.sweep)
	}
	srv := server.New(server.Config{
		Engine:             eng,
		Tasks:              store,
		Insight:            ins,
		Lifecycle:          lce,
		SLO:                slo,
		Watchdog:           wd,
		MaxInflight:        cfg.maxInflight,
		MaxQueue:           cfg.maxQueue,
		SelectCacheEntries: cfg.selectCache,
		DefaultTimeout:     cfg.timeout,
		MaxTimeout:         cfg.maxTimeout,
		SlowRequest:        time.Duration(cfg.slowMS) * time.Millisecond,
		TraceEvery:         cfg.traceEvery,
		TraceRingSize:      cfg.traceRing,
		Logger:             logger,
	})
	for _, spec := range cfg.pools {
		name, size, skipped, err := loadPool(store, spec)
		if err != nil {
			return err
		}
		if skipped {
			logger.Info("pool already recovered from the WAL; skipping preload", "pool", name)
		} else {
			logger.Info("loaded pool", "pool", name, "jurors", size)
		}
	}

	// The sweeper applies wall-clock policy: juror timeouts (with
	// replacement) and task expiry. stopSweeper joins the goroutine —
	// it must have fully stopped before the store's WAL closes, or a
	// final tick would race the close and log a spurious journal error.
	stopSweeper := func() {}
	if cfg.sweep > 0 {
		sweepDone := make(chan struct{})
		sweepExited := make(chan struct{})
		var sweepOnce sync.Once
		stopSweeper = func() {
			sweepOnce.Do(func() {
				close(sweepDone)
				<-sweepExited
			})
		}
		defer stopSweeper()
		go func() {
			defer close(sweepExited)
			ticker := time.NewTicker(cfg.sweep)
			defer ticker.Stop()
			for {
				select {
				case <-sweepDone:
					return
				case <-ticker.C:
					if _, _, err := store.Sweep(time.Now().UTC()); err != nil {
						logger.Error("sweep failed", "err", err)
					}
				}
			}
		}()
	}

	// The SLO ticker polls the HTTP-SLI counters and evaluates burn
	// rates, logging alert transitions even when nobody scrapes. The
	// event-driven SLIs (verdicts, fsyncs) accumulate continuously; this
	// loop only decides when alerts flip.
	stopSLO := func() {}
	if slo != nil && cfg.sloEval > 0 {
		sloDone := make(chan struct{})
		sloExited := make(chan struct{})
		var sloOnce sync.Once
		stopSLO = func() {
			sloOnce.Do(func() {
				close(sloDone)
				<-sloExited
			})
		}
		defer stopSLO()
		go func() {
			defer close(sloExited)
			ticker := time.NewTicker(cfg.sloEval)
			defer ticker.Stop()
			for {
				select {
				case <-sloDone:
					return
				case <-ticker.C:
					srv.PollSLO()
					slo.Evaluate(time.Now().UTC())
				}
			}
		}()
	}

	if cfg.pprofAddr != "" {
		stopPprof, err := servePprof(cfg.pprofAddr, logger)
		if err != nil {
			return err
		}
		defer stopPprof()
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	logger.Info("serving", "addr", ln.Addr().String())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: flip the health signal, keep the listener open for
	// -drain-delay so load balancers actually observe the 503 and stop
	// routing here (Shutdown closes listeners immediately, which a
	// health prober would see as ECONNREFUSED, not a drain), then let
	// in-flight and queued requests finish.
	logger.Info("draining", "grace", cfg.drain.String())
	srv.SetDraining(true)
	if cfg.drainDelay > 0 {
		logger.Info("healthz now 503; deregistration window open", "window", cfg.drainDelay.String())
		select {
		case <-time.After(cfg.drainDelay):
		case <-hurry:
			logger.Info("second signal: skipping the rest of the deregistration window")
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	stopSweeper()
	if err := store.Close(); err != nil {
		return fmt.Errorf("closing task store: %w", err)
	}
	logger.Info("drained cleanly")
	return nil
}

// servePprof starts the opt-in profiling listener on its own mux, so
// /debug/pprof is reachable only through -pprof-addr and never through
// the service port. The returned stop closes the listener.
func servePprof(addr string, logger *slog.Logger) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	psrv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := psrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("pprof server failed", "err", err)
		}
	}()
	logger.Info("pprof serving", "addr", ln.Addr().String())
	return func() { psrv.Close() }, nil //nolint:errcheck
}

// loadPool parses one -pool flag ("name=path") and loads the file
// through the task store's journal, choosing the reader by extension. A
// pool already recovered from the WAL wins over its preload file: the
// journal carries every vote-driven re-estimate the file predates.
func loadPool(store *tasks.Store, spec string) (name string, size int, skipped bool, err error) {
	name, path, ok := strings.Cut(spec, "=")
	if !ok || name == "" || path == "" {
		return "", 0, false, fmt.Errorf("bad -pool %q (want name=path)", spec)
	}
	if _, exists := store.Pools().Get(name); exists {
		return name, 0, true, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return "", 0, false, err
	}
	defer f.Close()
	var jurors []jury.Juror
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".csv":
		jurors, err = dataio.ReadCSV(f)
	case ".json":
		jurors, err = dataio.ReadJSON(f)
	default:
		return "", 0, false, fmt.Errorf("pool %q: unknown extension %q (want .csv or .json)", name, ext)
	}
	if err != nil {
		return "", 0, false, fmt.Errorf("pool %q: %w", name, err)
	}
	if _, err := store.PutPool(name, jurors); err != nil {
		return "", 0, false, fmt.Errorf("pool %q: %w", name, err)
	}
	return name, len(jurors), false, nil
}
