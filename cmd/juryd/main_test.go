package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"juryselect/internal/tasks"
)

const sampleCSV = `id,error_rate,cost
A,0.1,0.15
B,0.2,0.20
C,0.2,0.25
D,0.3,0.40
E,0.3,0.65
`

func writeSample(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadPool(t *testing.T) {
	csvPath := writeSample(t, "crowd.csv", sampleCSV)
	jsonPath := writeSample(t, "crowd.json", `[{"id":"A","error_rate":0.1}]`)

	store, err := tasks.Open(tasks.Config{})
	if err != nil {
		t.Fatal(err)
	}
	name, size, skipped, err := loadPool(store, "crowd="+csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if name != "crowd" || size != 5 || skipped {
		t.Fatalf("loaded %q/%d/%v, want crowd/5/false", name, size, skipped)
	}
	if _, _, _, err := loadPool(store, "tiny="+jsonPath); err != nil {
		t.Fatal(err)
	}
	if store.Pools().Len() != 2 {
		t.Fatalf("store holds %d pools", store.Pools().Len())
	}
	// A pool already in the store (e.g. recovered from the WAL) is not
	// overwritten by its preload file.
	if _, _, skipped, err := loadPool(store, "crowd="+jsonPath); err != nil || !skipped {
		t.Fatalf("re-load = skipped %v err %v, want skip", skipped, err)
	}
	if p, _ := store.Pools().Get("crowd"); p.Size() != 5 {
		t.Fatalf("preload overwrote the recovered pool: %d jurors", p.Size())
	}

	for _, bad := range []string{
		"no-equals",
		"=path.csv",
		"name=",
		"name=" + writeSample(t, "x.xml", "<jurors/>"),
		"name=/nonexistent/file.csv",
	} {
		if _, _, _, err := loadPool(store, bad); err == nil {
			t.Errorf("loadPool(%q) accepted", bad)
		}
	}
}

// TestRunServesAndDrainsCleanly boots the full binary path (run) on a
// kernel-picked port, exercises /healthz and /v1/select, then cancels
// the context — the SIGTERM path — and requires a clean drain.
func TestRunServesAndDrainsCleanly(t *testing.T) {
	csvPath := writeSample(t, "crowd.csv", sampleCSV)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan string, 1)
	done := make(chan error, 1)
	var logBuf strings.Builder
	go func() {
		done <- run(ctx, config{
			addr:  "127.0.0.1:0",
			pools: poolFlags{"crowd=" + csvPath},
			drain: 5 * time.Second,
		}, slog.New(slog.NewTextHandler(&logBuf, nil)), ready, nil)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v\n%s", err, logBuf.String())
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	sel, err := http.Post(base+"/v1/select", "application/json",
		bytes.NewReader([]byte(`{"pool":"crowd"}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Body.Close()
	if sel.StatusCode != http.StatusOK {
		t.Fatalf("select status %d", sel.StatusCode)
	}
	var selResp struct {
		Selection struct {
			Size int     `json:"size"`
			JER  float64 `json:"jury_error_rate"`
		} `json:"selection"`
		PoolVersion uint64 `json:"pool_version"`
	}
	if err := json.NewDecoder(sel.Body).Decode(&selResp); err != nil {
		t.Fatal(err)
	}
	if selResp.Selection.Size%2 != 1 || selResp.PoolVersion != 1 {
		t.Fatalf("selection = %+v", selResp)
	}

	cancel() // the in-process SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v\n%s", err, logBuf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain")
	}
	if !strings.Contains(logBuf.String(), "drained cleanly") {
		t.Errorf("log missing drain line:\n%s", logBuf.String())
	}
}

// TestDrainDelayKeepsHealthzObservable: with -drain-delay set, the 503
// draining signal is served on a still-open listener before shutdown —
// the window a load balancer needs to deregister the instance.
func TestDrainDelayKeepsHealthzObservable(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, config{
			addr:       "127.0.0.1:0",
			drain:      5 * time.Second,
			drainDelay: 1500 * time.Millisecond,
		}, slog.New(slog.NewTextHandler(io.Discard, nil)), ready, nil)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	cancel() // SIGTERM: healthz must answer 503 during the delay window
	deadline := time.Now().Add(time.Second)
	saw503 := false
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			break // listener closed: window over
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			saw503 = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !saw503 {
		t.Error("healthz never answered 503 on an open listener during the drain delay")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit")
	}
}

// TestRunTaskLifecycleSurvivesRestart boots juryd with a WAL, drives a
// task to a verdict plus a second task mid-vote, stops the server, and
// requires a restarted instance (same WAL dir, preload skipped) to serve
// byte-identical task and pool state.
func TestRunTaskLifecycleSurvivesRestart(t *testing.T) {
	csvPath := writeSample(t, "crowd.csv", sampleCSV)
	walDir := filepath.Join(t.TempDir(), "wal")

	boot := func() (addr string, cancel context.CancelFunc, done chan error) {
		ctx, stop := context.WithCancel(context.Background())
		ready := make(chan string, 1)
		done = make(chan error, 1)
		go func() {
			done <- run(ctx, config{
				addr:   "127.0.0.1:0",
				pools:  poolFlags{"crowd=" + csvPath},
				drain:  5 * time.Second,
				walDir: walDir,
				fsync:  "always",
				sweep:  0, // deterministic: no wall-clock sweeps mid-test
			}, slog.New(slog.NewTextHandler(io.Discard, nil)), ready, nil)
		}()
		select {
		case addr = <-ready:
		case err := <-done:
			t.Fatalf("server exited before ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("server never became ready")
		}
		return addr, stop, done
	}
	postJSON := func(base, path, body string) map[string]any {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode/100 != 2 {
			t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, raw)
		}
		var out map[string]any
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	getBody := func(base, path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, raw)
		}
		return string(raw)
	}

	addr, stop, done := boot()
	base := "http://" + addr
	created := postJSON(base, "/v1/tasks", `{"pool":"crowd","question":"q1","target_confidence":0.95}`)
	task1 := created["task"].(map[string]any)
	id1 := task1["id"].(string)
	for _, j := range task1["jurors"].([]any) {
		jid := j.(map[string]any)["id"].(string)
		out := postJSON(base, "/v1/tasks/"+id1+"/votes",
			`{"juror_id":"`+jid+`","vote":true}`)
		if out["task"].(map[string]any)["status"] == "decided" {
			break
		}
	}
	// A high target keeps this task open across the restart (a single
	// reliable juror's vote already reaches 0.9).
	created2 := postJSON(base, "/v1/tasks", `{"pool":"crowd","target_confidence":0.995}`)
	task2 := created2["task"].(map[string]any)
	id2 := task2["id"].(string)
	j0 := task2["jurors"].([]any)[0].(map[string]any)["id"].(string)
	postJSON(base, "/v1/tasks/"+id2+"/votes", `{"juror_id":"`+j0+`","vote":false}`)

	beforeTasks := getBody(base, "/v1/tasks")
	beforePool := getBody(base, "/v1/pools/crowd")
	stop()
	if err := <-done; err != nil {
		t.Fatalf("first instance failed: %v", err)
	}

	addr2, stop2, done2 := boot()
	defer func() {
		stop2()
		<-done2
	}()
	base2 := "http://" + addr2
	if got := getBody(base2, "/v1/tasks"); got != beforeTasks {
		t.Fatalf("recovered tasks diverge:\n%s\nvs\n%s", got, beforeTasks)
	}
	if got := getBody(base2, "/v1/pools/crowd"); got != beforePool {
		t.Fatalf("recovered pool diverges:\n%s\nvs\n%s", got, beforePool)
	}
	// The recovered open task keeps accepting votes.
	j1 := task2["jurors"].([]any)[1].(map[string]any)["id"].(string)
	out := postJSON(base2, "/v1/tasks/"+id2+"/votes", `{"juror_id":"`+j1+`","vote":false}`)
	if spent := out["task"].(map[string]any)["votes_spent"].(float64); spent != 2 {
		t.Fatalf("votes_spent after recovery = %g, want 2", spent)
	}
}

func TestRunFailsOnBadPoolFlag(t *testing.T) {
	err := run(context.Background(), config{
		addr:  "127.0.0.1:0",
		pools: poolFlags{"broken"},
		drain: time.Second,
	}, slog.New(slog.NewTextHandler(io.Discard, nil)), nil, nil)
	if err == nil {
		t.Fatal("bad -pool accepted")
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error does not name the flag: %v", err)
	}
}

func TestRunFailsOnUnbindableAddr(t *testing.T) {
	err := run(context.Background(), config{
		addr:  "256.0.0.1:1",
		drain: time.Second,
	}, slog.New(slog.NewTextHandler(io.Discard, nil)), nil, nil)
	if err == nil {
		t.Fatal("unbindable address accepted")
	}
}
