// Command juryload replays scenario-driven crowd traffic against the
// jury-selection stack: the closed-loop simulator of internal/simul as a
// load generator. A scenario declares the crowd (population, error-rate
// distribution, drift, churn, availability), the selection strategy and
// the estimation policy; juryload runs its replications in parallel and
// writes the metrics JSON the EXPERIMENTS tables are built from.
//
// Usage:
//
//	juryload -preset convergence [-mode inprocess] [-out metrics.json]
//	juryload -scenario scenario.json -mode http -addr http://127.0.0.1:8080
//	juryload -list
//
// Modes:
//
//	inprocess  drive jury.Engine and the versioned pool store directly
//	           (deterministic: same scenario + seed ⇒ bit-identical JSON)
//	http       drive a live juryd over its wire protocol (pool CRUD +
//	           /v1/select per question), recording request latency and
//	           absorbing 429 shedding via Retry-After backoff
//
// The task presets drive the durable decision-task lifecycle instead of
// one-shot selection: per question a task is created (POST /v1/tasks),
// invited jurors vote or decline one at a time under the availability
// draw, non-responders are replaced by the next-best candidate, and the
// task closes by sequential early stop. -lifecycle and
// -target-confidence switch any scenario into (or tune) that mode:
//
//	juryload -preset task -target-confidence 1 -out fixed.json
//	juryload -preset flaky -lifecycle task -mode http -addr http://127.0.0.1:8080
//
// -insight appends the oracle-truth JER calibration table — reliability
// bins of selection-time predicted JER against realized verdict
// correctness, with the Brier score — the ground-truth counterpart of
// juryd's /v1/insight/calibration endpoint:
//
//	juryload -preset drift -insight -quiet -out /dev/null
//
// Override flags (-seed, -steps, -replications, -strategy, -estimator,
// -lifecycle, -target-confidence) tweak the loaded scenario, so one
// preset sweeps into a whole table:
//
//	for s in altr random degree; do
//	  juryload -preset drift -strategy $s -out drift-$s.json
//	done
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"juryselect/internal/simul"
	"juryselect/internal/tablefmt"
)

type config struct {
	preset       string
	scenarioPath string
	mode         string
	addr         string
	out          string
	seed         int64
	steps        int
	replications int
	strategy     string
	estimator    string
	lifecycle    string
	targetConf   float64
	workers      int
	batch        bool
	trace        bool
	quiet        bool
	list         bool
	insight      bool
	shedRetries  int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.preset, "preset", "", "built-in scenario name (see -list)")
	flag.StringVar(&cfg.scenarioPath, "scenario", "", "scenario JSON file ('-' for stdin)")
	flag.StringVar(&cfg.mode, "mode", simul.ModeInProcess, "inprocess or http")
	flag.StringVar(&cfg.addr, "addr", "", "juryd base URL (http mode), e.g. http://127.0.0.1:8080")
	flag.StringVar(&cfg.out, "out", "", "write metrics JSON to this file (default stdout)")
	flag.Int64Var(&cfg.seed, "seed", 0, "override the scenario seed")
	flag.IntVar(&cfg.steps, "steps", 0, "override the scenario step count")
	flag.IntVar(&cfg.replications, "replications", 0, "override the scenario replication count")
	flag.StringVar(&cfg.strategy, "strategy", "", "override the selection strategy (altr|pay|exact|random|degree)")
	flag.StringVar(&cfg.estimator, "estimator", "", "override the estimation policy (oracle|posterior|em)")
	flag.StringVar(&cfg.lifecycle, "lifecycle", "", "override the lifecycle (select|task)")
	flag.Float64Var(&cfg.targetConf, "target-confidence", 0, "override the task early-stop confidence target in (0.5, 1]; 1 = fixed jury")
	flag.IntVar(&cfg.workers, "workers", 0, "parallel replications (0 = all cores)")
	flag.BoolVar(&cfg.batch, "batch", false, "use the batch wire protocol: coalesced /v1/select/batch round trips (http mode) and whole-round /v1/tasks/{id}/votes/batch posts")
	flag.BoolVar(&cfg.trace, "trace", false, "include the per-step trace in the JSON")
	flag.BoolVar(&cfg.quiet, "quiet", false, "suppress the human-readable summary")
	flag.BoolVar(&cfg.list, "list", false, "list built-in presets and exit")
	flag.BoolVar(&cfg.insight, "insight", false, "print the oracle-truth JER calibration table (reliability bins and Brier score)")
	flag.IntVar(&cfg.shedRetries, "shed-retries", 0, "429 retries per select before a step is shed (http mode, 0 = default)")
	flag.Parse()

	if err := run(context.Background(), cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "juryload: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg config, stdout, stderr io.Writer) error {
	if cfg.list {
		return listPresets(stdout)
	}
	sc, err := loadScenario(cfg)
	if err != nil {
		return err
	}
	start := time.Now()
	rep, err := simul.Run(ctx, sc, simul.Options{
		Mode:        cfg.mode,
		Addr:        cfg.addr,
		Workers:     cfg.workers,
		Batch:       cfg.batch,
		Trace:       cfg.trace,
		ShedRetries: cfg.shedRetries,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	raw, err := rep.Marshal()
	if err != nil {
		return err
	}
	if cfg.out == "" {
		if _, err := stdout.Write(raw); err != nil {
			return err
		}
	} else if err := os.WriteFile(cfg.out, raw, 0o644); err != nil {
		return err
	}
	if !cfg.quiet {
		printSummary(stderr, rep, elapsed)
	}
	if cfg.insight {
		if err := printCalibration(stderr, rep); err != nil {
			return err
		}
	}
	return nil
}

// printCalibration renders the merged reliability diagram: how the
// selection-time predicted JER tracked the oracle outcome, bin by bin.
// This is the simlab ground-truth view of the same diagram juryd serves
// from /v1/insight/calibration (where realized error is posterior
// confidence, not latent truth).
func printCalibration(w io.Writer, rep *simul.Report) error {
	cal := rep.Summary.OracleCalibration
	if cal == nil {
		fmt.Fprintln(w, "no calibration samples: no step reached a verdict")
		return nil
	}
	tb := tablefmt.New(
		fmt.Sprintf("JER calibration vs oracle truth (%d verdicts, Brier %.6f)", cal.Total, cal.Brier),
		"bin", "verdicts", "mean predicted", "realized error", "gap")
	for _, b := range cal.Bins {
		tb.AddRow(
			fmt.Sprintf("[%.3f, %.3f)", b.Lo, b.Hi),
			b.Count,
			fmt.Sprintf("%.4f", b.MeanPredicted),
			fmt.Sprintf("%.4f", b.MeanRealized),
			fmt.Sprintf("%+.4f", b.MeanRealized-b.MeanPredicted),
		)
	}
	return tb.Render(w)
}

// loadScenario resolves the preset/file choice and applies overrides.
func loadScenario(cfg config) (simul.Scenario, error) {
	var sc simul.Scenario
	switch {
	case cfg.preset != "" && cfg.scenarioPath != "":
		return sc, fmt.Errorf("-preset and -scenario are mutually exclusive")
	case cfg.preset != "":
		var err error
		if sc, err = simul.Preset(cfg.preset); err != nil {
			return sc, err
		}
	case cfg.scenarioPath != "":
		r := io.Reader(os.Stdin)
		if cfg.scenarioPath != "-" {
			f, err := os.Open(cfg.scenarioPath)
			if err != nil {
				return sc, err
			}
			defer f.Close()
			r = f
		}
		var err error
		if sc, err = simul.ReadScenario(r); err != nil {
			return sc, err
		}
	default:
		return sc, fmt.Errorf("need -preset or -scenario (try -list)")
	}
	if cfg.seed != 0 {
		sc.Seed = cfg.seed
	}
	if cfg.steps != 0 {
		sc.Steps = cfg.steps
		// Re-derive the length-dependent defaults; keeping the old values
		// would mean wrong-width windows and, for shift scenarios, a
		// shift step that may never fire.
		sc.WindowSteps = 0
		sc.Drift.ShiftStep = 0
	}
	if cfg.replications != 0 {
		sc.Replications = cfg.replications
	}
	if cfg.strategy != "" {
		sc.Strategy = cfg.strategy
	}
	if cfg.estimator != "" {
		sc.Estimator = cfg.estimator
	}
	if cfg.lifecycle != "" {
		sc.Lifecycle = cfg.lifecycle
	}
	if cfg.targetConf != 0 {
		sc.TargetConfidence = cfg.targetConf
	}
	sc = sc.Normalize()
	return sc, sc.Validate()
}

func listPresets(w io.Writer) error {
	presets := simul.Presets()
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	tb := tablefmt.New("Built-in scenarios", "name", "steps", "population", "drift", "churn/step", "strategy", "lifecycle", "estimator", "replications")
	for _, name := range names {
		sc := presets[name]
		tb.AddRow(name, sc.Steps, sc.Population, sc.Drift.Model, sc.ChurnPerStep, sc.Strategy, sc.Lifecycle, sc.Estimator, sc.Replications)
	}
	return tb.Render(w)
}

// printSummary renders the human-readable digest of a run.
func printSummary(w io.Writer, rep *simul.Report, elapsed time.Duration) {
	s := rep.Summary
	sc := rep.Scenario
	totalSteps := sc.Steps * sc.Replications
	fmt.Fprintf(w, "scenario %q: %d steps × %d replications (%s mode) in %s (%.0f steps/s)\n",
		sc.Name, sc.Steps, sc.Replications, rep.Mode, elapsed.Round(time.Millisecond),
		float64(totalSteps)/elapsed.Seconds())
	fmt.Fprintf(w, "accuracy %.4f  regret %.6f  calibration %.6f  window accuracy %.4f → %.4f\n",
		s.Accuracy, s.MeanRegret, s.MeanCalibration, s.FirstWindowAccuracy, s.LastWindowAccuracy)
	if sc.Lifecycle == simul.LifecycleTask {
		var declines, replacements int
		for _, r := range rep.Replications {
			declines += r.TotalDeclines
			replacements += r.Replacements
		}
		fmt.Fprintf(w, "votes/task %.2f  early-stop rate %.2f  declines %d  replacements %d\n",
			s.MeanVotesSpent, s.EarlyStopRate, declines, replacements)
		if s.MeanVotesToVerdict > 0 {
			fmt.Fprintf(w, "time-to-verdict %.2f votes (jury %.2f seats, saved %.2f/verdict vs fixed)\n",
				s.MeanVotesToVerdict, s.MeanJurySize, s.MeanVotesSaved)
		}
	}
	if rep.Mode == simul.ModeHTTP {
		fmt.Fprintf(w, "shed %d steps (rate %.4f), %d retries absorbed\n", s.TotalShed, s.ShedRate, s.TotalRetries)
		if lat := rep.Replications[0].Latency; lat != nil {
			fmt.Fprintf(w, "select latency (rep 0): p50 %s  p95 %s  p99 %s  max %s\n",
				time.Duration(lat.P50NS), time.Duration(lat.P95NS), time.Duration(lat.P99NS), time.Duration(lat.MaxNS))
		}
	}
}
