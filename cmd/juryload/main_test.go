package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"juryselect/internal/server"
	"juryselect/internal/simul"
	"juryselect/internal/tasks"
)

func runCLI(t *testing.T, cfg config) (stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	if err := run(context.Background(), cfg, &out, &errw); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errw.String())
	}
	return out.String(), errw.String()
}

func TestPresetInProcessDeterministic(t *testing.T) {
	cfg := config{preset: "smoke", mode: simul.ModeInProcess, quiet: true, trace: true}
	a, _ := runCLI(t, cfg)
	b, _ := runCLI(t, cfg)
	if a != b {
		t.Fatal("two runs of the same preset produced different metrics JSON")
	}
	var rep simul.Report
	if err := json.Unmarshal([]byte(a), &rep); err != nil {
		t.Fatalf("output is not a metrics report: %v", err)
	}
	if rep.Schema != simul.ReportSchema || rep.Mode != simul.ModeInProcess {
		t.Errorf("schema/mode = %q/%q", rep.Schema, rep.Mode)
	}
	if len(rep.Replications) != rep.Scenario.Replications {
		t.Errorf("replications: %d, scenario says %d", len(rep.Replications), rep.Scenario.Replications)
	}
}

func TestScenarioFileAndOverrides(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	if err := os.WriteFile(path, []byte(`{
		"name": "file-scn", "seed": 2, "steps": 20, "population": 10,
		"drift": {"model": "walk"}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "metrics.json")
	_, stderr := runCLI(t, config{
		scenarioPath: path, mode: simul.ModeInProcess, out: outPath,
		steps: 10, replications: 2, strategy: "random", seed: 9,
	})
	if !strings.Contains(stderr, `"file-scn"`) {
		t.Errorf("summary missing scenario name: %s", stderr)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep simul.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	sc := rep.Scenario
	if sc.Steps != 10 || sc.Replications != 2 || sc.Strategy != "random" || sc.Seed != 9 {
		t.Errorf("overrides not applied: %+v", sc)
	}
}

func TestHTTPModeAgainstLiveServer(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	out, stderr := runCLI(t, config{
		preset: "smoke", mode: simul.ModeHTTP, addr: ts.URL,
	})
	var rep simul.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Mode != simul.ModeHTTP {
		t.Errorf("mode = %q", rep.Mode)
	}
	if rep.Replications[0].Latency == nil {
		t.Error("HTTP run missing latency summary")
	}
	if !strings.Contains(stderr, "select latency") {
		t.Errorf("summary missing latency line: %s", stderr)
	}

	// The same scenario in-process must walk the same decision
	// trajectory: accuracy and regret agree exactly (no shedding here).
	local, _ := runCLI(t, config{preset: "smoke", mode: simul.ModeInProcess, quiet: true})
	var lrep simul.Report
	if err := json.Unmarshal([]byte(local), &lrep); err != nil {
		t.Fatal(err)
	}
	if rep.Summary.TotalShed == 0 {
		if lrep.Summary.Accuracy != rep.Summary.Accuracy || lrep.Summary.MeanRegret != rep.Summary.MeanRegret {
			t.Errorf("modes disagree: local %.6f/%.8f http %.6f/%.8f",
				lrep.Summary.Accuracy, lrep.Summary.MeanRegret, rep.Summary.Accuracy, rep.Summary.MeanRegret)
		}
	}
}

// TestTaskModeAgainstLiveServer drives the task preset over HTTP —
// create → sequential votes/declines → verdict per question — and
// checks the summary carries the lifecycle accounting, matching the
// in-process trajectory exactly.
func TestTaskModeAgainstLiveServer(t *testing.T) {
	store, err := tasks.Open(tasks.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(server.Config{Tasks: store}).Handler())
	defer ts.Close()
	out, stderr := runCLI(t, config{
		preset: "task-smoke", mode: simul.ModeHTTP, addr: ts.URL,
	})
	var rep simul.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Scenario.Lifecycle != simul.LifecycleTask {
		t.Fatalf("lifecycle = %q", rep.Scenario.Lifecycle)
	}
	if rep.Summary.MeanVotesSpent <= 0 {
		t.Fatalf("task summary missing vote accounting: %+v", rep.Summary)
	}
	if !strings.Contains(stderr, "votes/task") {
		t.Errorf("summary missing task line: %s", stderr)
	}
	local, _ := runCLI(t, config{preset: "task-smoke", mode: simul.ModeInProcess, quiet: true})
	var lrep simul.Report
	if err := json.Unmarshal([]byte(local), &lrep); err != nil {
		t.Fatal(err)
	}
	if rep.Summary.TotalShed == 0 {
		if lrep.Summary.Accuracy != rep.Summary.Accuracy ||
			lrep.Summary.MeanVotesSpent != rep.Summary.MeanVotesSpent {
			t.Errorf("modes disagree: local %.6f/%.4f http %.6f/%.4f",
				lrep.Summary.Accuracy, lrep.Summary.MeanVotesSpent,
				rep.Summary.Accuracy, rep.Summary.MeanVotesSpent)
		}
	}
}

// TestLifecycleOverride flips a select preset into task mode.
func TestLifecycleOverride(t *testing.T) {
	sc, err := loadScenario(config{preset: "smoke", lifecycle: "task", targetConf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Lifecycle != simul.LifecycleTask || sc.TargetConfidence != 1 {
		t.Fatalf("overrides not applied: %+v", sc)
	}
	if _, err := loadScenario(config{preset: "smoke", lifecycle: "carrier-pigeon"}); err == nil {
		t.Fatal("bad lifecycle accepted")
	}
	if _, err := loadScenario(config{preset: "task", targetConf: 0.2}); err == nil {
		t.Fatal("bad target confidence accepted")
	}
}

func TestStepsOverrideRederivesShiftStep(t *testing.T) {
	// The shift preset bakes in ShiftStep = Steps/2; shortening the run
	// must move the shift with it rather than silently never firing.
	sc, err := loadScenario(config{preset: "shift", steps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Drift.ShiftStep != 50 {
		t.Errorf("ShiftStep = %d after -steps 100, want 50", sc.Drift.ShiftStep)
	}
	if sc.WindowSteps != 10 {
		t.Errorf("WindowSteps = %d after -steps 100, want 10", sc.WindowSteps)
	}
}

func TestListPresets(t *testing.T) {
	out, _ := runCLI(t, config{list: true})
	for _, want := range []string{"convergence", "drift", "churn", "smoke", "task"} {
		if !strings.Contains(out, want) {
			t.Errorf("preset list missing %q:\n%s", want, out)
		}
	}
}

func TestErrors(t *testing.T) {
	for name, cfg := range map[string]config{
		"no scenario":    {},
		"both sources":   {preset: "smoke", scenarioPath: "x.json"},
		"unknown preset": {preset: "no-such"},
		"http no addr":   {preset: "smoke", mode: simul.ModeHTTP},
		"bad mode":       {preset: "smoke", mode: "carrier-pigeon"},
		"bad override":   {preset: "smoke", strategy: "best-effort"},
	} {
		var out, errw bytes.Buffer
		if err := run(context.Background(), cfg, &out, &errw); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}
