// Command juryselect selects a jury from a CSV or JSON file of candidate
// jurors.
//
// Usage:
//
//	juryselect -input jurors.csv [-format csv|json] [-model altr|pay]
//	           [-budget B] [-exact] [-workers N] [-json]
//
// CSV input has a header and rows "id,error_rate[,cost]"; JSON input is an
// array of {"id","error_rate","cost"} objects. Pass "-" to read standard
// input. Under -model altr the exact AltrALG optimum is returned; under
// -model pay the PayALG heuristic is used (or exact enumeration with
// -exact, for at most 26 candidates). -json switches the report to the
// canonical Selection JSON — the same shape cmd/juryd returns under
// "selection" in /v1/select responses, so CLI and service payloads are
// interchangeable.
//
// Example:
//
//	$ cat jurors.csv
//	id,error_rate,cost
//	A,0.1,0.15
//	B,0.2,0.20
//	C,0.2,0.25
//	$ juryselect -input jurors.csv -model pay -budget 0.5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"juryselect/internal/dataio"
	"juryselect/jury"
)

func main() {
	var (
		input   = flag.String("input", "", "file of candidates; '-' for stdin")
		format  = flag.String("format", "csv", "input format: csv or json")
		model   = flag.String("model", "altr", "crowdsourcing model: altr or pay")
		budget  = flag.Float64("budget", 0, "budget for the pay model")
		exact   = flag.Bool("exact", false, "use exact enumeration instead of the greedy (pay model, ≤26 candidates)")
		workers = flag.Int("workers", 0, "worker pool for the exact enumeration (0 = all cores); the result is identical for every value")
		jsonOut = flag.Bool("json", false, "emit the selection report as JSON")
	)
	flag.Parse()
	if err := run(runConfig{
		input: *input, format: *format, model: *model,
		budget: *budget, exact: *exact, workers: *workers, jsonOut: *jsonOut,
	}, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "juryselect: %v\n", err)
		os.Exit(1)
	}
}

type runConfig struct {
	input, format, model string
	budget               float64
	exact                bool
	workers              int
	jsonOut              bool
}

func run(cfg runConfig, stdin io.Reader, out io.Writer) error {
	if cfg.input == "" {
		return fmt.Errorf("missing -input (use '-' for stdin)")
	}
	r := stdin
	if cfg.input != "-" {
		f, err := os.Open(cfg.input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	var cands []jury.Juror
	var err error
	switch cfg.format {
	case "csv":
		cands, err = dataio.ReadCSV(r)
	case "json":
		cands, err = dataio.ReadJSON(r)
	default:
		return fmt.Errorf("unknown format %q (want csv or json)", cfg.format)
	}
	if err != nil {
		return err
	}

	var sel jury.Selection
	switch cfg.model {
	case "altr":
		// The incremental sweep is already the fastest altruistic path on
		// any core count (O(N²) total versus O(N³) for the parallelized
		// per-size evaluations), so -workers does not apply here.
		sel, err = jury.SelectAltruistic(cands)
	case "pay":
		if cfg.exact {
			sel, err = jury.SelectParallelExact(cands, cfg.budget, jury.BatchOptions{Workers: cfg.workers})
		} else {
			sel, err = jury.SelectBudgeted(cands, cfg.budget)
		}
	default:
		return fmt.Errorf("unknown model %q (want altr or pay)", cfg.model)
	}
	if err != nil {
		return err
	}

	if cfg.jsonOut {
		return dataio.WriteSelection(out, cfg.model, cfg.budget, sel)
	}
	fmt.Fprintf(out, "model: %s\n", cfg.model)
	if cfg.model == "pay" {
		fmt.Fprintf(out, "budget: %g\n", cfg.budget)
	}
	fmt.Fprintf(out, "jury size: %d\n", sel.Size())
	fmt.Fprintf(out, "jury error rate: %.6g\n", sel.JER)
	fmt.Fprintf(out, "total cost: %.6g\n", sel.Cost)
	fmt.Fprintf(out, "jurors:\n")
	for _, j := range sel.Jurors {
		fmt.Fprintf(out, "  %s\terror_rate=%.4g\tcost=%.4g\n", j.ID, j.ErrorRate, j.Cost)
	}
	return nil
}
