package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const sampleCSV = `id,error_rate,cost
A,0.1,0.15
B,0.2,0.20
C,0.2,0.25
D,0.3,0.40
E,0.3,0.65
F,0.4,0.05
G,0.4,0.05
`

func TestRunAltrFromStdin(t *testing.T) {
	var out bytes.Buffer
	err := run(runConfig{input: "-", format: "csv", model: "altr"},
		strings.NewReader(sampleCSV), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"jury size: 5", "0.07036", "A\t", "E\t"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunPayWithBudget(t *testing.T) {
	var out bytes.Buffer
	err := run(runConfig{input: "-", format: "csv", model: "pay", budget: 1},
		strings.NewReader(sampleCSV), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "budget: 1") {
		t.Errorf("output missing budget line:\n%s", out.String())
	}
}

func TestRunPayExact(t *testing.T) {
	var out bytes.Buffer
	err := run(runConfig{input: "-", format: "csv", model: "pay", budget: 1, exact: true},
		strings.NewReader(sampleCSV), &out)
	if err != nil {
		t.Fatal(err)
	}
	// Exact optimum under budget 1 is {A,B,C} at 0.072.
	if !strings.Contains(out.String(), "jury size: 3") {
		t.Errorf("exact selection unexpected:\n%s", out.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out bytes.Buffer
	err := run(runConfig{input: "-", format: "csv", model: "altr", jsonOut: true},
		strings.NewReader(sampleCSV), &out)
	if err != nil {
		t.Fatal(err)
	}
	// The report is the canonical dataio.SelectionJSON shape the juryd
	// service returns under "selection": jurors are full objects, not
	// bare IDs, so CLI and service payloads are interchangeable.
	for _, want := range []string{`"model": "altr"`, `"size": 5`, `"jurors"`, `"id": "A"`, `"error_rate": 0.1`, `"evaluations"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("JSON output missing %s:\n%s", want, out.String())
		}
	}
}

func TestRunJSONInput(t *testing.T) {
	in := `[{"id":"A","error_rate":0.1},{"id":"B","error_rate":0.2},{"id":"C","error_rate":0.2}]`
	var out bytes.Buffer
	err := run(runConfig{input: "-", format: "json", model: "altr"},
		strings.NewReader(in), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "jury size: 3") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  runConfig
		in   string
	}{
		{"missing input", runConfig{format: "csv", model: "altr"}, ""},
		{"bad format", runConfig{input: "-", format: "xml", model: "altr"}, sampleCSV},
		{"bad model", runConfig{input: "-", format: "csv", model: "quantum"}, sampleCSV},
		{"empty candidates", runConfig{input: "-", format: "csv", model: "altr"}, "id,error_rate\n"},
		{"infeasible budget", runConfig{input: "-", format: "csv", model: "pay", budget: 0.01}, sampleCSV},
		{"missing file", runConfig{input: "/nonexistent/path.csv", format: "csv", model: "altr"}, ""},
	}
	for _, tc := range cases {
		var out bytes.Buffer
		if err := run(tc.cfg, strings.NewReader(tc.in), &out); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/jurors.csv"
	if err := writeFile(path, sampleCSV); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(runConfig{input: path, format: "csv", model: "altr"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "jury size: 5") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
