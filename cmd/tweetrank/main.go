// Command tweetrank runs the Section 4 estimation pipeline: it reads (or
// synthesizes) a tweet corpus, builds the retweet graph, ranks users with
// HITS or PageRank, and prints each top user's quality score, estimated
// individual error rate, and payment requirement.
//
// Usage:
//
//	tweetrank -synthetic -users 5000 -tweets 25000 [-ranker hits|pagerank] [-top 20]
//	tweetrank -input tweets.tsv [-ranker pagerank] [-top 50]
//
// The input format is one tweet per line: "author<TAB>content". Account
// ages are unknown for file input, so requirements are reported as 0.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"juryselect/internal/tablefmt"
	"juryselect/microblog"
)

func main() {
	var (
		input     = flag.String("input", "", "TSV file of tweets (author<TAB>content); '-' for stdin")
		synthetic = flag.Bool("synthetic", false, "generate a synthetic corpus instead of reading input")
		users     = flag.Int("users", 5000, "synthetic corpus population")
		tweets    = flag.Int("tweets", 25000, "synthetic corpus size")
		seed      = flag.Int64("seed", 1, "synthetic corpus seed")
		ranker    = flag.String("ranker", "hits", "ranking algorithm: hits or pagerank")
		top       = flag.Int("top", 20, "number of top users to report")
	)
	flag.Parse()
	if err := run(*input, *synthetic, *users, *tweets, *seed, *ranker, *top, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tweetrank: %v\n", err)
		os.Exit(1)
	}
}

func run(input string, synthetic bool, users, tweets int, seed int64, ranker string, top int, out io.Writer) error {
	var corpus []microblog.Tweet
	var profiles []microblog.Profile
	switch {
	case synthetic:
		corpus, profiles = microblog.SyntheticCorpus(users, tweets, seed)
	case input != "":
		var r io.Reader = os.Stdin
		if input != "-" {
			f, err := os.Open(input)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		var err error
		corpus, err = readTweets(r)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -input or -synthetic")
	}

	opts := microblog.Options{TopK: top}
	switch ranker {
	case "hits":
		opts.Ranker = microblog.HITS
	case "pagerank":
		opts.Ranker = microblog.PageRank
	default:
		return fmt.Errorf("unknown ranker %q (want hits or pagerank)", ranker)
	}

	res, err := microblog.Candidates(corpus, profiles, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "corpus: %d tweets; graph: %d users, %d retweet pairs (max in-degree %d)\n",
		len(corpus), res.Graph.Nodes, res.Graph.Edges, res.Graph.MaxInDegree)
	tb := tablefmt.New(fmt.Sprintf("Top %d users by %s", len(res.Candidates), ranker),
		"rank", "user", "score", "error_rate", "requirement")
	for i, c := range res.Candidates {
		tb.AddRow(i+1, c.ID, res.Scores[c.ID], c.ErrorRate, c.Cost)
	}
	return tb.Render(out)
}

func readTweets(r io.Reader) ([]microblog.Tweet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var out []microblog.Tweet
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		author, content, ok := strings.Cut(text, "\t")
		if !ok {
			return nil, fmt.Errorf("line %d: want 'author<TAB>content'", line)
		}
		out = append(out, microblog.Tweet{Author: author, Content: content})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tweets in input")
	}
	return out, nil
}
