package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSynthetic(t *testing.T) {
	var out bytes.Buffer
	err := run("", true, 300, 1500, 1, "hits", 10, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Top 10 users by hits", "error_rate", "u1"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunSyntheticPageRank(t *testing.T) {
	var out bytes.Buffer
	if err := run("", true, 300, 1500, 1, "pagerank", 5, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pagerank") {
		t.Errorf("output missing ranker name:\n%s", out.String())
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tweets.tsv")
	content := "alice\tRT @expert: wow\nbob\tRT @expert: indeed\ncarol\tRT @alice: RT @expert: chain\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(path, false, 0, 0, 0, "hits", 3, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "expert") {
		t.Errorf("output missing top user:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run("", false, 0, 0, 0, "hits", 5, &out); err == nil {
		t.Error("expected error without input or -synthetic")
	}
	if err := run("", true, 100, 500, 1, "quantum", 5, &out); err == nil {
		t.Error("expected error for unknown ranker")
	}
	if err := run("/nonexistent.tsv", false, 0, 0, 0, "hits", 5, &out); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestReadTweetsMalformed(t *testing.T) {
	if _, err := readTweets(strings.NewReader("no-tab-here\n")); err == nil {
		t.Error("expected error for line without tab")
	}
	if _, err := readTweets(strings.NewReader("")); err == nil {
		t.Error("expected error for empty input")
	}
	tweets, err := readTweets(strings.NewReader("a\thello\n\n\nb\tworld\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tweets) != 2 {
		t.Errorf("got %d tweets, want 2 (blank lines skipped)", len(tweets))
	}
}
