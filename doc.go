// Package juryselect is the root of a Go reproduction of "Whom to Ask?
// Jury Selection for Decision Making Tasks on Micro-blog Services" (Cao,
// She, Tong, Chen; PVLDB 5(11), 2012).
//
// Import the public API packages:
//
//	juryselect/jury      — JER computation, AltrALG/PayALG/exact selection,
//	                       the concurrent batch engine (EvaluateAll,
//	                       SelectParallel*), majority voting and simulation
//	juryselect/microblog — tweets → retweet graph → HITS/PageRank →
//	                       error-rate/requirement estimation pipeline
//
// The benchmark harness regenerating every table and figure of the paper
// lives in bench_test.go (go test -bench=.) and in cmd/jurybench (full
// paper-scale runs); cmd/juryselect selects juries from CSV/JSON files,
// cmd/juryd serves selection over HTTP/JSON with live, versioned juror
// pools (internal/server), and cmd/juryload replays scenario-driven
// crowd traffic — drifting error rates, churn, partial availability —
// against either the in-process stack or a live juryd, recording
// decision accuracy, regret and calibration over time (internal/simul).
// See README.md for a quick start, DESIGN.md for the system inventory,
// the engine's concurrency model, the service layer (§10) and the
// closed-loop simulator (§11), and EXPERIMENTS.md for paper-vs-measured
// results.
package juryselect
