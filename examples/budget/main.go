// Budgeted crowdsourcing: the Pay-as-you-go model of §2.2.2, where each
// juror demands a payment and the requester holds a fixed budget — the
// motivation example's dilemma ("Should we give up D and E or should we
// take two cheaper but less reliable users F and G?").
//
// This example sweeps the budget and compares three strategies on a small
// marketplace where the exact optimum is computable:
//
//   - PayALG  — the paper's greedy heuristic (Algorithm 4),
//   - OPT     — exact enumeration (the ground truth of Figures 3(e)/(f)),
//   - the motivating trap: spending the whole budget on the cheapest users.
//
// Run with: go run ./examples/budget
package main

import (
	"fmt"
	"log"
	"strings"

	"juryselect/jury"
)

func main() {
	// The Figure 1 marketplace, with the payment requirements the paper
	// names for D ($0.4) and E ($0.65) and plausible ones for the rest.
	market := []jury.Juror{
		{ID: "A", ErrorRate: 0.1, Cost: 0.15},
		{ID: "B", ErrorRate: 0.2, Cost: 0.20},
		{ID: "C", ErrorRate: 0.2, Cost: 0.25},
		{ID: "D", ErrorRate: 0.3, Cost: 0.40},
		{ID: "E", ErrorRate: 0.3, Cost: 0.65},
		{ID: "F", ErrorRate: 0.4, Cost: 0.05},
		{ID: "G", ErrorRate: 0.4, Cost: 0.05},
	}

	fmt.Println("budget | PayALG jury     JER      | OPT jury        JER")
	fmt.Println("-------+--------------------------+-------------------------")
	for _, budget := range []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0} {
		appx, err := jury.SelectBudgeted(market, budget)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := jury.SelectExact(market, budget)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.2f | %-15s %.6f | %-15s %.6f\n",
			budget, strings.Join(appx.IDs(), ","), appx.JER,
			strings.Join(opt.IDs(), ","), opt.JER)
	}
	fmt.Println()
	fmt.Println("PayALG pairs candidates in ε·r order and only admits a pair that does")
	fmt.Println("not worsen the JER; the cheap-but-noisy F blocks the pair slot here,")
	fmt.Println("so the greedy stays at its seed while OPT buys {A,B,C}. This is the")
	fmt.Println("price of tractability — JSP on PayM is NP-hard (Lemma 4).")

	// The dilemma at budget $1: {A,B,C,D,E} costs 1.65 and is out of
	// reach; stretching the money over the cheap F and G is worse than the
	// compact {A,B,C}.
	fmt.Println()
	for _, ids := range [][]string{{"A", "B", "C"}, {"A", "B", "C", "F", "G"}} {
		var rates []float64
		cost := 0.0
		for _, id := range ids {
			for _, j := range market {
				if j.ID == id {
					rates = append(rates, j.ErrorRate)
					cost += j.Cost
				}
			}
		}
		v, err := jury.JER(rates)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hand-picked %v: cost %.2f, JER %.6f\n", ids, cost, v)
	}
}
