// Learning the crowd: calibrate individual error rates from past votings,
// then select the optimal jury for future tasks.
//
// The paper estimates ε from the retweet graph (§4.1); this example shows
// the other estimation route its framework allows — observing how the
// crowd actually voted. A requester has run a batch of past decision
// tasks; the latent truths are unknown. Expectation–maximization recovers
// both the truths and each juror's reliability, and jury selection then
// uses those estimates for the next task.
//
// Run with: go run ./examples/learning
package main

import (
	"fmt"
	"log"
	"math"

	"juryselect/internal/randx"
	"juryselect/jury"
)

const (
	nJurors   = 15
	pastTasks = 800
)

func main() {
	// Hidden ground truth: each juror's real error rate. In production
	// this is unknown; we use it here to generate history and to score the
	// estimates afterwards.
	src := randx.New(99)
	trueRates := make([]float64, nJurors)
	for i := range trueRates {
		trueRates[i] = 0.05 + 0.4*src.Float64()
	}

	// Phase 1: the crowd answers past tasks; we only keep the votes.
	history, err := jury.NewHistory(nJurors)
	if err != nil {
		log.Fatal(err)
	}
	for t := 0; t < pastTasks; t++ {
		truth := t%2 == 0
		row := make([]jury.Vote, nJurors)
		for i, e := range trueRates {
			if src.Bernoulli(0.3) {
				row[i] = jury.Abstain // not every juror answers every task
				continue
			}
			votedYes := truth != src.Bernoulli(e) // wrong with probability e
			if votedYes {
				row[i] = jury.VoteYes
			} else {
				row[i] = jury.VoteNo
			}
		}
		if err := history.Add(row); err != nil {
			log.Fatal(err)
		}
	}

	// Phase 2: learn error rates from the raw votes (no truths revealed).
	res, err := jury.Learn(history)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EM converged in %d iterations (log-likelihood %.1f)\n",
		res.Iterations, res.LogLikelihood)
	fmt.Println("\njuror   true ε   learned ε")
	var mae float64
	for i := range trueRates {
		fmt.Printf("  %2d    %.3f     %.3f\n", i, trueRates[i], res.ErrorRates[i])
		mae += math.Abs(trueRates[i] - res.ErrorRates[i])
	}
	fmt.Printf("mean absolute estimation error: %.4f\n\n", mae/nJurors)

	// Phase 3: select juries with learned vs true rates and compare.
	buildCands := func(rates []float64) []jury.Juror {
		out := make([]jury.Juror, len(rates))
		for i, e := range rates {
			out[i] = jury.Juror{ID: fmt.Sprintf("j%02d", i), ErrorRate: e}
		}
		return out
	}
	learned, err := jury.SelectAltruistic(buildCands(res.ErrorRates))
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := jury.SelectAltruistic(buildCands(trueRates))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jury from learned rates: %v\n", learned.IDs())
	fmt.Printf("jury from true rates:    %v\n", oracle.IDs())

	// Score both selections under the TRUE rates: what actually matters is
	// the real-world JER of the jury the learned estimates picked.
	trueOf := func(sel jury.Selection) float64 {
		var rates []float64
		for _, j := range sel.Jurors {
			for i := range trueRates {
				if j.ID == fmt.Sprintf("j%02d", i) {
					rates = append(rates, trueRates[i])
				}
			}
		}
		v, err := jury.JER(rates)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	fmt.Printf("true JER of learned-rate jury: %.6f\n", trueOf(learned))
	fmt.Printf("true JER of oracle jury:       %.6f\n", trueOf(oracle))
}
