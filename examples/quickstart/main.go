// Quickstart: reproduce the paper's motivation example (Figure 1 /
// Table 2) with the public API.
//
// Seven micro-blog users A–G can answer the question "Is Turkey in Europe
// or in Asia?". Their individual error rates are known. Whom should we ask
// so that the majority answer is most likely correct?
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"juryselect/jury"
)

func main() {
	candidates := []jury.Juror{
		{ID: "A", ErrorRate: 0.1},
		{ID: "B", ErrorRate: 0.2},
		{ID: "C", ErrorRate: 0.2},
		{ID: "D", ErrorRate: 0.3},
		{ID: "E", ErrorRate: 0.3},
		{ID: "F", ErrorRate: 0.4},
		{ID: "G", ErrorRate: 0.4},
	}

	// First: how good are some hand-picked juries? (Table 2.)
	for _, ids := range [][]int{{2}, {0}, {2, 3, 4}, {0, 1, 2}, {0, 1, 2, 3, 4}, {0, 1, 2, 3, 4, 5, 6}} {
		rates := make([]float64, len(ids))
		names := ""
		for i, id := range ids {
			rates[i] = candidates[id].ErrorRate
			if i > 0 {
				names += ","
			}
			names += candidates[id].ID
		}
		v, err := jury.JER(rates)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("jury {%s}: JER = %.6f\n", names, v)
	}

	// Now let the solver pick the optimal jury (AltrALG, exact).
	sel, err := jury.SelectAltruistic(candidates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal jury: %v (size %d)\n", sel.IDs(), sel.Size())
	fmt.Printf("jury error rate: %.6f\n", sel.JER)

	// Sanity-check with simulated majority votings.
	out, err := jury.Simulate(sel.Rates(), 100000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated error rate over %d tasks: %.6f\n", out.Tasks, out.ErrorRate())
}
