// Rumor discernment: the decision-making workload the paper's introduction
// motivates ("To discern such rumors is thus a typical decision making
// problem for online users", §1).
//
// A stream of claims circulates on a micro-blog service; some are true,
// some are rumors. A pool of followers with heterogeneous reliability can
// be asked via the '@' markup. This example
//
//  1. draws a follower pool with truncated-normal error rates,
//  2. selects the optimal jury with AltrALG,
//  3. plays out a season of claims through simulated majority votings, and
//  4. compares the empirical rumor-detection accuracy against the analytic
//     Jury Error Rate and against two weaker strategies.
//
// Run with: go run ./examples/rumor
package main

import (
	"fmt"
	"log"

	"juryselect/jury"
)

// follower pool parameters: a mid-quality crowd where selection matters.
const (
	poolSize = 101
	tasks    = 50000
)

func main() {
	// A deterministic follower pool of middling quality: rumors are hard,
	// so even the best follower misjudges one claim in four, and the tail
	// of the pool is worse than a coin flip. Asking "everyone" is now a
	// real hazard — exactly the regime where jury selection pays off.
	candidates := make([]jury.Juror, poolSize)
	for i := range candidates {
		// Reliability degrades smoothly; the pool spans ε ∈ [0.25, 0.75].
		e := 0.25 + 0.5*float64(i)/float64(poolSize-1)
		candidates[i] = jury.Juror{ID: fmt.Sprintf("follower-%03d", i), ErrorRate: e}
	}

	best, err := jury.SelectAltruistic(candidates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected jury: %d of %d followers, analytic JER = %.6f\n",
		best.Size(), poolSize, best.JER)

	// Strategy comparison: everyone votes, or only the single best user.
	allRates := make([]float64, len(candidates))
	for i, c := range candidates {
		allRates[i] = c.ErrorRate
	}
	jerAll, err := jury.JER(allRates)
	if err != nil {
		log.Fatal(err)
	}
	jerBestOne, err := jury.JER(allRates[:1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ask everyone (%d):  JER = %.6f\n", poolSize, jerAll)
	fmt.Printf("ask the best user:  JER = %.6f\n", jerBestOne)

	// Season of claims: simulate majority votings on binary rumor tasks.
	for _, strat := range []struct {
		name  string
		rates []float64
	}{
		{"optimal jury", best.Rates()},
		{"everyone", allRates},
		{"best single user", allRates[:1]},
	} {
		out, err := jury.Simulate(strat.rates, tasks, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s: %5d/%d claims misjudged (empirical error %.6f)\n",
			strat.name, out.Wrong+out.Ties, out.Tasks, out.ErrorRate())
	}
}
