// Service walkthrough: run the juryd service in-process and drive it as
// a client — the online framing of the paper, where juror error rates
// drift as users act and every selection answers "whom should we ask
// right now?".
//
// The walkthrough:
//
//  1. Start the server on a loopback port.
//  2. PUT the Figure 1 crowd as the live pool "crowd".
//  3. POST /v1/select — the classic {A,B,C,D,E} jury of Table 2.
//  4. PATCH observed votes: G answers 500 resolved tasks almost
//     perfectly, so its error-rate estimate collapses.
//  5. POST /v1/select again — same question, new answer, and the
//     response names the exact pool version it was computed from.
//
// Run with: go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"

	"juryselect/internal/server"
)

func main() {
	// An in-process juryd: the same server cmd/juryd mounts behind flags.
	srv := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln) //nolint:errcheck
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("juryd serving on %s\n\n", base)

	// Step 1: publish the Figure 1 crowd as a live pool.
	call("PUT", base+"/v1/pools/crowd/jurors", `{
		"jurors": [
			{"id": "A", "error_rate": 0.1},
			{"id": "B", "error_rate": 0.2},
			{"id": "C", "error_rate": 0.2},
			{"id": "D", "error_rate": 0.3},
			{"id": "E", "error_rate": 0.3},
			{"id": "F", "error_rate": 0.4},
			{"id": "G", "error_rate": 0.4}
		]
	}`)

	// Step 2: whom to ask right now?
	call("POST", base+"/v1/select", `{"pool": "crowd"}`)

	// Step 3: G votes on 500 resolved tasks and is wrong only 5 times;
	// the service folds the record into its error rate (§4.1.3 estimate
	// drifting under live evidence).
	call("PATCH", base+"/v1/pools/crowd/jurors", `{
		"updates": [{"id": "G", "votes": {"wrong": 5, "total": 500}}]
	}`)

	// Step 4: the same question now selects a different jury, and
	// pool_version pins exactly which snapshot answered.
	call("POST", base+"/v1/select", `{"pool": "crowd"}`)

	// The service's own counters.
	call("GET", base+"/metrics", "")
}

// call issues one request and prints a curl-style transcript line plus
// the indented response body.
func call(method, url, body string) {
	var r io.Reader
	if body != "" {
		r = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, r)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, raw, "  ", "  "); err != nil {
		pretty.Write(raw)
	}
	fmt.Printf("%s %s → %s\n  %s\n\n", method, url, resp.Status, pretty.String())
}
