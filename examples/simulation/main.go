// Simulation walkthrough: the paper's online setting, end to end. A
// drifting crowd answers a stream of questions; the system starts from an
// uninformed prior, folds every observed vote into its Beta-posterior
// error-rate estimates, and re-selects the minimum-JER jury each step.
// The same scenario is replayed under three regimes:
//
//   - oracle:    selection sees the true ε at every step (upper bound)
//   - posterior: selection sees only vote-derived estimates (the system)
//   - random:    a fixed-size random jury (the uninformed floor)
//
// Watch the posterior run converge toward the oracle trajectory while the
// random baseline stays flat — the headline behaviour the EXPERIMENTS
// tables quantify at scale.
//
// Run with: go run ./examples/simulation
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"juryselect/internal/simul"
	"juryselect/internal/tablefmt"
)

func main() {
	base := simul.Scenario{
		Name: "walkthrough", Seed: 42, Steps: 240, Population: 40,
		RateMean: 0.4, RateStddev: 0.1,
		Drift:        simul.DriftSpec{Model: simul.DriftWalk, Sigma: 0.01},
		Replications: 3,
	}

	regimes := []struct {
		label     string
		strategy  string
		estimator string
	}{
		{"oracle", simul.StrategyAltr, simul.EstimatorOracle},
		{"posterior", simul.StrategyAltr, simul.EstimatorPosterior},
		{"random", simul.StrategyRandom, simul.EstimatorPosterior},
	}

	reports := make([]*simul.Report, len(regimes))
	for i, rg := range regimes {
		sc := base
		sc.Name = rg.label
		sc.Strategy, sc.Estimator = rg.strategy, rg.estimator
		rep, err := simul.Run(context.Background(), sc, simul.Options{})
		if err != nil {
			log.Fatal(err)
		}
		reports[i] = rep
	}

	fmt.Printf("drifting crowd, %d jurors, %d questions × %d replications\n\n",
		base.Population, base.Steps, base.Replications)

	tb := tablefmt.New("Decision accuracy per window (convergence under drift)",
		"window", "oracle", "posterior", "random")
	n := len(reports[0].Summary.WindowAccuracy)
	for wi := 0; wi < n; wi++ {
		tb.AddRow(
			fmt.Sprintf("%d–%d", wi*base.Steps/n, (wi+1)*base.Steps/n-1),
			fmt.Sprintf("%.3f", reports[0].Summary.WindowAccuracy[wi]),
			fmt.Sprintf("%.3f", reports[1].Summary.WindowAccuracy[wi]),
			fmt.Sprintf("%.3f", reports[2].Summary.WindowAccuracy[wi]),
		)
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	tb = tablefmt.New("Run summary", "regime", "accuracy", "mean regret", "calibration err")
	for i, rg := range regimes {
		s := reports[i].Summary
		tb.AddRow(rg.label,
			fmt.Sprintf("%.4f", s.Accuracy),
			fmt.Sprintf("%.6f", s.MeanRegret),
			fmt.Sprintf("%.6f", s.MeanCalibration))
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nThe posterior regime's regret shrinks as votes accumulate: the")
	fmt.Println("estimates chase the drifting truth. Replay the same trajectory")
	fmt.Println("against a live service with:")
	fmt.Println("\n  juryd -addr :8080 &")
	fmt.Println("  juryload -preset drift -mode http -addr http://127.0.0.1:8080")
}
