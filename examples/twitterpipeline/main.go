// End-to-end micro-blog pipeline: the complete system of the paper's
// Figure 2, from raw tweets to a selected jury.
//
//	tweets ──(Algorithm 5)──▶ retweet graph ──(HITS/PageRank)──▶ scores
//	       ──(§4.1.3 normalization)──▶ error rates
//	       ──(§4.2 account ages)────▶ requirements
//	       ──(AltrALG / PayALG)─────▶ jury + JER
//
// Run with: go run ./examples/twitterpipeline
package main

import (
	"fmt"
	"log"

	"juryselect/jury"
	"juryselect/microblog"
)

func main() {
	// Stage 0: a corpus. Real deployments would read the micro-blog
	// timeline; here we synthesize one with realistic power-law structure.
	tweets, profiles := microblog.SyntheticCorpus(5000, 30000, 2024)
	fmt.Printf("corpus: %d tweets from %d users\n", len(tweets), len(profiles))
	fmt.Printf("sample tweet: %q\n\n", tweets[0].Content)

	for _, ranker := range []microblog.Ranker{microblog.HITS, microblog.PageRank} {
		// Stages 1–3: graph, ranking, estimation. Keep the 50 best users.
		res, err := microblog.Candidates(tweets, profiles, microblog.Options{
			Ranker: ranker,
			TopK:   50,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] graph: %d users, %d retweet pairs, max in-degree %d\n",
			ranker, res.Graph.Nodes, res.Graph.Edges, res.Graph.MaxInDegree)
		fmt.Printf("[%s] best candidate: %s (score %.4g, ε %.3g)\n",
			ranker, res.Candidates[0].ID,
			res.Scores[res.Candidates[0].ID], res.Candidates[0].ErrorRate)

		// Stage 4a: altruistic crowd — exact optimum.
		altr, err := jury.Select(res.Candidates, jury.Altruism)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] AltrM jury: size %d, JER %.3g\n", ranker, altr.Size(), altr.JER)

		// Stage 4b: paid crowd — greedy under a budget of 20%% of the
		// total requirement mass (the Figure 3(h) convention).
		m := 0.0
		for _, c := range res.Candidates {
			m += c.Cost
		}
		budget := 0.2 * m
		pay, err := jury.Select(res.Candidates, jury.PayAsYouGo(budget))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] PayM jury (B=%.3g): size %d, cost %.3g, JER %.3g\n\n",
			ranker, budget, pay.Size(), pay.Cost, pay.JER)
	}
}
