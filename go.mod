module juryselect

go 1.22
