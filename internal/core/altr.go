package core

import (
	"context"

	"juryselect/internal/jer"
)

// AltrOptions configures AltrALG (Algorithm 3).
type AltrOptions struct {
	// UseLowerBound enables the Lemma 2 pruning of Line 5–6: before an
	// exact JER evaluation, the Paley–Zygmund lower bound is computed and,
	// when it already exceeds the best JER seen, the candidate size is
	// skipped.
	UseLowerBound bool
	// Algorithm selects the exact JER evaluator (Auto, DP, CBA). The paper
	// assumes Algorithm 2 (CBA) is called; Auto is the practical default.
	Algorithm jer.Algorithm
	// Incremental switches from the paper-faithful per-size re-evaluation
	// to a sweep that maintains the wrong-vote distribution across sizes,
	// reducing the whole run from O(N²·polylog) to O(N²) total. Ablation;
	// results are identical.
	Incremental bool
	// MaxSize caps the largest jury size considered (0 = no cap, sweep to
	// N). Useful when the caller knows the optimum is small.
	MaxSize int
	// Presorted declares cands already validated and sorted ascending by
	// error rate (e.g. an immutable pool-store snapshot shared across
	// requests): SelectAltr skips re-validation and re-sorting and scans
	// the slice as-is, without copying it. The caller owns both
	// invariants; a violated one silently yields a suboptimal jury.
	Presorted bool
	// Ctx, when non-nil, is polled between prefix sizes: cancellation
	// aborts the scan with ctx.Err(). A JER kernel already running for
	// the current size completes normally (kernels are not
	// interruptible), matching the engine's EvaluateAll contract.
	Ctx context.Context
}

// SelectAltr solves JSP under the Altruism Jurors Model with Algorithm 3:
// sort candidates ascending by individual error rate, then for every odd
// prefix size evaluate (or prune) the JER and keep the minimum. Lemma 3
// guarantees the optimal jury of each size is a prefix of the sorted order,
// so the returned jury is exactly optimal.
func SelectAltr(cands []Juror, opts AltrOptions) (Selection, error) {
	sorted := cands
	if !opts.Presorted {
		if err := ValidateCandidates(cands); err != nil {
			return Selection{}, err
		}
		sorted = sortByErrorRate(cands)
	} else if len(sorted) == 0 {
		return Selection{}, ErrNoCandidates
	}
	maxN := len(sorted)
	if opts.MaxSize > 0 && opts.MaxSize < maxN {
		maxN = opts.MaxSize
	}
	if opts.Incremental {
		return altrIncremental(sorted, maxN, opts)
	}
	return altrFaithful(sorted, maxN, opts)
}

// altrFaithful re-evaluates JER from scratch at every odd prefix size,
// following Algorithm 3 literally. One JER kernel is held across the whole
// scan (and the prefix rates validated once up front), so the N/2
// evaluations reuse the same buffers instead of allocating per size.
func altrFaithful(sorted []Juror, maxN int, opts AltrOptions) (Selection, error) {
	rates := make([]float64, 0, maxN)
	for _, j := range sorted[:maxN] {
		rates = append(rates, j.ErrorRate)
	}
	ev := jer.NewEvaluator()
	best := Selection{JER: 2} // sentinel above any probability
	bestN := 0
	for n := 1; n <= maxN; n += 2 {
		if err := ctxErr(opts.Ctx); err != nil {
			return Selection{}, err
		}
		prefix := rates[:n]
		if opts.UseLowerBound && bestN > 0 {
			// Lines 5–6 of Algorithm 3: the bound is only applicable when
			// γ < 1; otherwise JER is computed directly.
			if lb, usable := jer.LowerBound(prefix); usable && lb > best.JER {
				best.Pruned++
				continue
			}
		}
		// Candidates were validated by SelectAltr; skip the per-prefix scan.
		v, err := ev.ComputeValidated(prefix, opts.Algorithm)
		if err != nil {
			return Selection{}, err
		}
		best.Evaluations++
		if v < best.JER {
			best.JER = v
			bestN = n
		}
	}
	best.Jurors = append([]Juror(nil), sorted[:bestN]...)
	best.Cost = totalCost(best.Jurors)
	return best, nil
}

// ctxErr reports the cancellation state of an optional context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// altrIncremental maintains the exact wrong-vote distribution across prefix
// sizes with jer.Sweep, so extending the prefix by two jurors costs O(n)
// instead of a fresh O(n²) or O(n log² n) evaluation.
func altrIncremental(sorted []Juror, maxN int, opts AltrOptions) (Selection, error) {
	sweep := jer.NewSweep()
	best := Selection{JER: 2}
	bestN := 0
	for n := 1; n <= maxN; n += 2 {
		if err := ctxErr(opts.Ctx); err != nil {
			return Selection{}, err
		}
		// Extend the distribution to size n (two appends after the first).
		for sweep.N() < n {
			if err := sweep.Extend(sorted[sweep.N()].ErrorRate); err != nil {
				return Selection{}, err
			}
		}
		if opts.UseLowerBound && bestN > 0 {
			if lb, usable := sweep.LowerBound(); usable && lb > best.JER {
				best.Pruned++
				continue
			}
		}
		v, err := sweep.JER()
		if err != nil {
			return Selection{}, err
		}
		best.Evaluations++
		if v < best.JER {
			best.JER = v
			bestN = n
		}
	}
	best.Jurors = append([]Juror(nil), sorted[:bestN]...)
	best.Cost = totalCost(best.Jurors)
	return best, nil
}
