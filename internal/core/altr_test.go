package core

import (
	"errors"
	"testing"
	"testing/quick"

	"juryselect/internal/jer"
	"juryselect/internal/randx"
)

func TestSelectAltrMotivationExample(t *testing.T) {
	// From Table 2 the best jury over A–G is {A,B,C,D,E} with JER 0.07036:
	// size 5 beats size 3 (0.072) and size 7 (0.085248).
	sel, err := SelectAltr(figure1(), AltrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Size() != 5 {
		t.Fatalf("selected size %d (%v), want 5", sel.Size(), sel.IDs())
	}
	if !almostEqual(sel.JER, 0.07036, 1e-9) {
		t.Fatalf("JER = %.6f, want 0.07036", sel.JER)
	}
	ids := map[string]bool{}
	for _, id := range sel.IDs() {
		ids[id] = true
	}
	for _, want := range []string{"A", "B", "C", "D", "E"} {
		if !ids[want] {
			t.Errorf("juror %s missing from %v", want, sel.IDs())
		}
	}
}

func TestSelectAltrVariantsAgree(t *testing.T) {
	src := randx.New(101)
	for trial := 0; trial < 20; trial++ {
		n := 3 + src.Intn(60)
		cands := make([]Juror, n)
		for i := range cands {
			cands[i] = Juror{ID: string(rune('a' + i%26)), ErrorRate: src.TruncNormal(0.4, 0.25, 0, 1)}
		}
		base, err := SelectAltr(cands, AltrOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, opts := range []AltrOptions{
			{UseLowerBound: true},
			{Incremental: true},
			{Incremental: true, UseLowerBound: true},
			{Algorithm: jer.CBAAlgo},
			{Algorithm: jer.DPAlgo, UseLowerBound: true},
		} {
			got, err := SelectAltr(cands, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got.JER, base.JER, 1e-9) {
				t.Fatalf("trial %d opts %+v: JER %.12f != base %.12f", trial, opts, got.JER, base.JER)
			}
			if got.Size() != base.Size() {
				t.Fatalf("trial %d opts %+v: size %d != base %d", trial, opts, got.Size(), base.Size())
			}
		}
	}
}

// SelectAltr must be exactly optimal: verify against brute force over all
// odd subsets for small candidate sets. This is the strongest check of
// Lemma 3 (prefix optimality) end to end.
func TestSelectAltrIsOptimalBruteForce(t *testing.T) {
	src := randx.New(55)
	for trial := 0; trial < 15; trial++ {
		n := 3 + src.Intn(9) // up to 11 candidates: 2^11 subsets
		cands := make([]Juror, n)
		for i := range cands {
			cands[i] = Juror{ID: string(rune('a' + i)), ErrorRate: src.TruncNormal(0.5, 0.3, 0, 1)}
		}
		sel, err := SelectAltr(cands, AltrOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: AltrM is PayM with infinite budget.
		opt, err := SelectOpt(cands, 1e18)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(sel.JER, opt.JER, 1e-9) {
			t.Fatalf("trial %d: AltrALG %.12f vs brute force %.12f (sizes %d vs %d)",
				trial, sel.JER, opt.JER, sel.Size(), opt.Size())
		}
	}
}

func TestSelectAltrSingleCandidate(t *testing.T) {
	sel, err := SelectAltr([]Juror{{ID: "solo", ErrorRate: 0.3}}, AltrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Size() != 1 || !almostEqual(sel.JER, 0.3, 1e-12) {
		t.Fatalf("got size %d JER %g", sel.Size(), sel.JER)
	}
}

func TestSelectAltrOddSizeAlways(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.New(seed)
		n := 1 + src.Intn(40)
		cands := make([]Juror, n)
		for i := range cands {
			cands[i] = Juror{ErrorRate: src.TruncNormal(0.5, 0.3, 0, 1)}
		}
		sel, err := SelectAltr(cands, AltrOptions{Incremental: true})
		return err == nil && sel.Size()%2 == 1 && sel.Size() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectAltrReliableCandsPreferLargeJuries(t *testing.T) {
	// With uniformly reliable candidates (ε < 0.5), adding jurors only
	// helps, so the optimum takes (nearly) everyone. This mirrors the left
	// shoulder of Figure 3(a).
	cands := make([]Juror, 51)
	for i := range cands {
		cands[i] = Juror{ErrorRate: 0.3}
	}
	sel, err := SelectAltr(cands, AltrOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Size() != 51 {
		t.Fatalf("homogeneous reliable candidates: size %d, want 51", sel.Size())
	}
}

func TestSelectAltrErrorProneCandsPreferTinyJuries(t *testing.T) {
	// With uniformly unreliable candidates (ε > 0.5) every extra pair
	// hurts, so the optimum is a single juror: "the hands of the few"
	// regime on the right side of Figure 3(a).
	cands := make([]Juror, 51)
	for i := range cands {
		cands[i] = Juror{ErrorRate: 0.7}
	}
	sel, err := SelectAltr(cands, AltrOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Size() != 1 {
		t.Fatalf("homogeneous unreliable candidates: size %d, want 1", sel.Size())
	}
}

func TestSelectAltrMaxSize(t *testing.T) {
	cands := make([]Juror, 21)
	for i := range cands {
		cands[i] = Juror{ErrorRate: 0.2}
	}
	sel, err := SelectAltr(cands, AltrOptions{MaxSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Size() != 7 {
		t.Fatalf("MaxSize=7 ignored: size %d", sel.Size())
	}
}

func TestSelectAltrEmpty(t *testing.T) {
	if _, err := SelectAltr(nil, AltrOptions{}); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}

func TestSelectAltrPruningCounts(t *testing.T) {
	// With very unreliable candidates the bound becomes usable and should
	// prune at least one size; evaluations + pruned must cover every size.
	src := randx.New(9)
	cands := make([]Juror, 101)
	for i := range cands {
		cands[i] = Juror{ErrorRate: src.TruncNormal(0.8, 0.05, 0, 1)}
	}
	sel, err := SelectAltr(cands, AltrOptions{UseLowerBound: true})
	if err != nil {
		t.Fatal(err)
	}
	sizes := (101 + 1) / 2
	if sel.Evaluations+sel.Pruned != sizes {
		t.Fatalf("evaluations %d + pruned %d != sizes %d", sel.Evaluations, sel.Pruned, sizes)
	}
	if sel.Pruned == 0 {
		t.Error("expected at least one pruned size for unreliable candidates")
	}
}
