package core

import (
	"errors"
	"fmt"
	"sort"

	"juryselect/internal/jer"
	"juryselect/internal/randx"
)

// Baseline selectors. None of these appear in the paper's algorithms; they
// exist so the benchmark harness can quantify how much of AltrALG's and
// PayALG's quality comes from each design decision (size optimization,
// ε·r ordering, improvement check). See the ablation entries in DESIGN.md.

// SelectRandom returns a uniformly random odd-size jury of the requested
// size. Under a positive budget the draw is retried until the jury is
// affordable (up to maxTries), modelling an uninformed requester.
func SelectRandom(cands []Juror, size int, budget float64, src *randx.Source) (Selection, error) {
	if err := ValidateCandidates(cands); err != nil {
		return Selection{}, err
	}
	if size <= 0 || size > len(cands) {
		return Selection{}, fmt.Errorf("core: random jury size %d out of range [1,%d]", size, len(cands))
	}
	if size%2 == 0 {
		return Selection{}, errors.New("core: random jury size must be odd")
	}
	const maxTries = 10000
	for try := 0; try < maxTries; try++ {
		perm := src.Perm(len(cands))
		jury := make([]Juror, size)
		for i := 0; i < size; i++ {
			jury[i] = cands[perm[i]]
		}
		cost := totalCost(jury)
		if budget > 0 && cost > budget {
			continue
		}
		rates := make([]float64, size)
		for i, j := range jury {
			rates[i] = j.ErrorRate
		}
		v, err := jer.Compute(rates, jer.Auto)
		if err != nil {
			return Selection{}, err
		}
		return Selection{Jurors: jury, JER: v, Cost: cost, Evaluations: 1}, nil
	}
	return Selection{}, ErrNoFeasibleJury
}

// SelectTopK returns the k most reliable candidates (smallest ε) as a jury
// without optimizing the size; k must be odd. This isolates the value of
// AltrALG's size sweep: Table 2 shows a fixed size can be strictly worse
// than a neighbouring odd size.
func SelectTopK(cands []Juror, k int) (Selection, error) {
	if err := ValidateCandidates(cands); err != nil {
		return Selection{}, err
	}
	if k <= 0 || k > len(cands) {
		return Selection{}, fmt.Errorf("core: top-k size %d out of range [1,%d]", k, len(cands))
	}
	if k%2 == 0 {
		return Selection{}, errors.New("core: top-k size must be odd")
	}
	sorted := sortByErrorRate(cands)
	jury := append([]Juror(nil), sorted[:k]...)
	rates := make([]float64, k)
	for i, j := range jury {
		rates[i] = j.ErrorRate
	}
	v, err := jer.Compute(rates, jer.Auto)
	if err != nil {
		return Selection{}, err
	}
	return Selection{Jurors: jury, JER: v, Cost: totalCost(jury), Evaluations: 1}, nil
}

// SelectCheapestFirst greedily admits candidates in ascending cost order
// while the budget allows, trimming to the largest odd prefix, with no
// JER-improvement check at all. It is the natural "stretch the budget"
// strategy the paper's motivation example warns against (hiring F and G).
func SelectCheapestFirst(cands []Juror, budget float64) (Selection, error) {
	if err := ValidateCandidates(cands); err != nil {
		return Selection{}, err
	}
	if budget < 0 {
		return Selection{}, errors.New("core: negative budget")
	}
	sorted := make([]Juror, len(cands))
	copy(sorted, cands)
	// Ascending by cost; ties by error rate so equal-cost jurors admit the
	// more reliable one first.
	sort.SliceStable(sorted, func(i, k int) bool {
		a, b := sorted[i], sorted[k]
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		if a.ErrorRate != b.ErrorRate {
			return a.ErrorRate < b.ErrorRate
		}
		return a.ID < b.ID
	})
	var jury []Juror
	spent := 0.0
	for _, j := range sorted {
		if spent+j.Cost > budget {
			break
		}
		jury = append(jury, j)
		spent += j.Cost
	}
	if len(jury)%2 == 0 && len(jury) > 0 {
		spent -= jury[len(jury)-1].Cost
		jury = jury[:len(jury)-1]
	}
	if len(jury) == 0 {
		return Selection{}, ErrNoFeasibleJury
	}
	rates := make([]float64, len(jury))
	for i, j := range jury {
		rates[i] = j.ErrorRate
	}
	v, err := jer.Compute(rates, jer.Auto)
	if err != nil {
		return Selection{}, err
	}
	return Selection{Jurors: jury, JER: v, Cost: spent, Evaluations: 1}, nil
}
