package core

import (
	"errors"
	"testing"

	"juryselect/internal/randx"
)

func TestSelectRandomBasics(t *testing.T) {
	src := randx.New(1)
	cands := figure1()
	sel, err := SelectRandom(cands, 3, 0, src)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Size() != 3 {
		t.Fatalf("size %d, want 3", sel.Size())
	}
	seen := map[string]bool{}
	for _, j := range sel.Jurors {
		if seen[j.ID] {
			t.Fatalf("juror %s selected twice", j.ID)
		}
		seen[j.ID] = true
	}
}

func TestSelectRandomBudget(t *testing.T) {
	src := randx.New(2)
	cands := figure1()
	for i := 0; i < 20; i++ {
		sel, err := SelectRandom(cands, 3, 0.5, src)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Cost > 0.5+1e-12 {
			t.Fatalf("cost %g exceeds budget", sel.Cost)
		}
	}
}

func TestSelectRandomValidation(t *testing.T) {
	src := randx.New(3)
	cands := figure1()
	if _, err := SelectRandom(cands, 2, 0, src); err == nil {
		t.Error("expected error for even size")
	}
	if _, err := SelectRandom(cands, 0, 0, src); err == nil {
		t.Error("expected error for zero size")
	}
	if _, err := SelectRandom(cands, 99, 0, src); err == nil {
		t.Error("expected error for oversized jury")
	}
	if _, err := SelectRandom(nil, 1, 0, src); !errors.Is(err, ErrNoCandidates) {
		t.Error("expected ErrNoCandidates")
	}
}

func TestSelectRandomInfeasibleBudget(t *testing.T) {
	src := randx.New(4)
	cands := []Juror{{ErrorRate: 0.5, Cost: 10}, {ErrorRate: 0.5, Cost: 10}, {ErrorRate: 0.5, Cost: 10}}
	if _, err := SelectRandom(cands, 3, 1, src); !errors.Is(err, ErrNoFeasibleJury) {
		t.Fatalf("err = %v, want ErrNoFeasibleJury", err)
	}
}

func TestSelectTopKMatchesTable2(t *testing.T) {
	cands := figure1()
	sel3, err := SelectTopK(cands, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sel3.JER, 0.072, 1e-9) {
		t.Errorf("top-3 JER %.4f, want 0.072", sel3.JER)
	}
	sel7, err := SelectTopK(cands, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sel7.JER, 0.085248, 1e-9) {
		t.Errorf("top-7 JER %.6f, want 0.085248", sel7.JER)
	}
	// Demonstrates why fixed size is a weaker strategy: AltrALG (size 5,
	// 0.07036) beats both fixed sizes.
	altr, err := SelectAltr(cands, AltrOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !(altr.JER < sel3.JER && altr.JER < sel7.JER) {
		t.Error("size sweep failed to beat fixed sizes on the motivation example")
	}
}

func TestSelectTopKValidation(t *testing.T) {
	cands := figure1()
	if _, err := SelectTopK(cands, 4); err == nil {
		t.Error("expected error for even k")
	}
	if _, err := SelectTopK(cands, 0); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := SelectTopK(cands, 9); err == nil {
		t.Error("expected error for k > N")
	}
	if _, err := SelectTopK(nil, 1); !errors.Is(err, ErrNoCandidates) {
		t.Error("expected ErrNoCandidates")
	}
}

func TestSelectCheapestFirstMotivation(t *testing.T) {
	// Cheapest-first on the motivation example with B = 1: F and G cost
	// 0.05 each and are admitted first despite ε = 0.4; the JER-aware
	// PayALG must do at least as well.
	cands := figure1()
	cheap, err := SelectCheapestFirst(cands, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cheap.Cost > 1+1e-12 {
		t.Fatalf("cheapest-first overshot budget: %g", cheap.Cost)
	}
	pay, err := SelectPay(cands, PayOptions{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pay.JER > cheap.JER+1e-12 {
		t.Errorf("PayALG (%.4f) worse than cheapest-first (%.4f)", pay.JER, cheap.JER)
	}
}

func TestSelectCheapestFirstOddSize(t *testing.T) {
	cands := []Juror{
		{ID: "a", ErrorRate: 0.3, Cost: 0.1},
		{ID: "b", ErrorRate: 0.3, Cost: 0.1},
		{ID: "c", ErrorRate: 0.3, Cost: 0.1},
		{ID: "d", ErrorRate: 0.3, Cost: 0.1},
	}
	sel, err := SelectCheapestFirst(cands, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Size() != 3 {
		t.Fatalf("size %d, want 3 (largest odd prefix)", sel.Size())
	}
}

func TestSelectCheapestFirstValidation(t *testing.T) {
	if _, err := SelectCheapestFirst(nil, 1); !errors.Is(err, ErrNoCandidates) {
		t.Error("expected ErrNoCandidates")
	}
	if _, err := SelectCheapestFirst(figure1(), -1); err == nil {
		t.Error("expected error for negative budget")
	}
	cands := []Juror{{ErrorRate: 0.5, Cost: 10}}
	if _, err := SelectCheapestFirst(cands, 1); !errors.Is(err, ErrNoFeasibleJury) {
		t.Error("expected ErrNoFeasibleJury")
	}
}
