// Package core implements the Jury Selection Problem (JSP) of the paper:
// given a candidate juror set S, a crowdsourcing model (AltrM or PayM) and —
// under PayM — a budget B, select an odd-size jury J ⊆ S minimizing the
// Jury Error Rate JER(J) (Definition 9).
//
// The package contains the paper's two solvers and the ground-truth
// reference:
//
//   - AltrALG (Algorithm 3): exact solver for the altruism model, justified
//     by the prefix-optimality of Lemma 3, with the Paley–Zygmund
//     lower-bound pruning of Lemma 2.
//   - PayALG (Algorithm 4): greedy heuristic for the pay-as-you-go model,
//     where JSP is NP-hard (Lemma 4).
//   - Opt: exact exponential enumeration over allowed juries, used as the
//     ground truth ("OPT") in Figures 3(e), 3(f), 3(h) and 3(i).
//
// Baselines used by the ablation experiments (random jury, fixed-size
// top-k, cheapest-first) live in baselines.go.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"juryselect/internal/pbdist"
)

// Juror is one candidate worker on the micro-blog service.
type Juror struct {
	// ID identifies the juror (e.g. a user name). IDs are opaque to the
	// solvers; duplicates are permitted but make reports ambiguous.
	ID string
	// ErrorRate is the individual error rate ε ∈ (0,1) of Definition 4.
	ErrorRate float64
	// Cost is the payment requirement r ≥ 0 of Definition 8. Ignored by
	// the altruism model.
	Cost float64
}

// Validate checks the juror's fields against the model definitions.
func (j Juror) Validate() error {
	if math.IsNaN(j.ErrorRate) || j.ErrorRate <= 0 || j.ErrorRate >= 1 {
		return fmt.Errorf("core: juror %q: %w: ε = %g", j.ID, pbdist.ErrRateOutOfRange, j.ErrorRate)
	}
	if math.IsNaN(j.Cost) || j.Cost < 0 {
		return fmt.Errorf("core: juror %q: negative or NaN cost %g", j.ID, j.Cost)
	}
	return nil
}

// ErrNoCandidates reports selection over an empty candidate set.
var ErrNoCandidates = errors.New("core: no candidate jurors")

// ErrNoFeasibleJury reports that no allowed jury exists, e.g. every single
// juror already exceeds the PayM budget.
var ErrNoFeasibleJury = errors.New("core: no feasible jury under the budget")

// ValidateCandidates checks every candidate juror.
func ValidateCandidates(cands []Juror) error {
	if len(cands) == 0 {
		return ErrNoCandidates
	}
	for _, j := range cands {
		if err := j.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Selection is the outcome of a jury selection run.
type Selection struct {
	// Jurors is the selected jury, in the order the solver admitted them.
	Jurors []Juror
	// JER is the exact Jury Error Rate of the selected jury.
	JER float64
	// Cost is the total payment requirement Σr of the selected jury.
	Cost float64
	// Evaluations counts exact JER computations the solver performed.
	Evaluations int
	// Pruned counts candidate juries skipped via the Lemma 2 lower bound.
	Pruned int
}

// Size returns the number of selected jurors.
func (s Selection) Size() int { return len(s.Jurors) }

// IDs returns the selected juror IDs in admission order.
func (s Selection) IDs() []string {
	ids := make([]string, len(s.Jurors))
	for i, j := range s.Jurors {
		ids[i] = j.ID
	}
	return ids
}

// Rates returns the selected jurors' error rates in admission order.
func (s Selection) Rates() []float64 {
	rates := make([]float64, len(s.Jurors))
	for i, j := range s.Jurors {
		rates[i] = j.ErrorRate
	}
	return rates
}

// Model is a crowdsourcing model deciding which juries are allowed
// (Definitions 7 and 8).
type Model interface {
	// Allowed reports whether a jury with the given total cost may be
	// formed.
	Allowed(totalCost float64) bool
	// Name returns the model name for reports.
	Name() string
}

// AltrM is the Altruism Jurors Model (Definition 7): every jury is allowed.
type AltrM struct{}

// Allowed always returns true under AltrM.
func (AltrM) Allowed(float64) bool { return true }

// Name returns "AltrM".
func (AltrM) Name() string { return "AltrM" }

// PayM is the Pay-as-you-go Model (Definition 8): a jury is allowed when its
// total payment requirement does not exceed the budget.
type PayM struct {
	// Budget is the non-negative budget B.
	Budget float64
}

// Allowed reports totalCost ≤ B.
func (m PayM) Allowed(totalCost float64) bool { return totalCost <= m.Budget }

// Name returns "PayM".
func (m PayM) Name() string { return "PayM" }

// totalCost sums the cost of a juror slice.
func totalCost(jurors []Juror) float64 {
	sum := 0.0
	for _, j := range jurors {
		sum += j.Cost
	}
	return sum
}

// SortedByErrorRate returns a copy of cands sorted ascending by ε with
// ties broken by ID — the ordering whose prefixes are size-wise optimal
// under AltrM (Lemma 3). Exposed for callers that evaluate the prefix
// juries themselves, e.g. the batch engine's parallel altruistic solver.
func SortedByErrorRate(cands []Juror) []Juror { return sortByErrorRate(cands) }

// sortByErrorRate returns a copy of cands sorted ascending by ε, breaking
// ties by ID for determinism.
func sortByErrorRate(cands []Juror) []Juror {
	out := make([]Juror, len(cands))
	copy(out, cands)
	sort.SliceStable(out, func(i, k int) bool {
		if out[i].ErrorRate != out[k].ErrorRate {
			return out[i].ErrorRate < out[k].ErrorRate
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// sortByCostQuality returns a copy of cands sorted ascending by the ε·r
// product PayALG uses (Algorithm 4, Line 1), breaking ties by cost then ID.
func sortByCostQuality(cands []Juror) []Juror {
	out := make([]Juror, len(cands))
	copy(out, cands)
	sort.SliceStable(out, func(i, k int) bool {
		pi, pk := out[i].ErrorRate*out[i].Cost, out[k].ErrorRate*out[k].Cost
		if pi != pk {
			return pi < pk
		}
		if out[i].Cost != out[k].Cost {
			return out[i].Cost < out[k].Cost
		}
		return out[i].ID < out[k].ID
	})
	return out
}
