package core

import (
	"errors"
	"math"
	"testing"

	"juryselect/internal/pbdist"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// figure1 builds the seven jurors of the paper's motivation example,
// including the payment requirements mentioned for D ($0.4) and E ($0.65).
func figure1() []Juror {
	return []Juror{
		{ID: "A", ErrorRate: 0.1, Cost: 0.15},
		{ID: "B", ErrorRate: 0.2, Cost: 0.2},
		{ID: "C", ErrorRate: 0.2, Cost: 0.25},
		{ID: "D", ErrorRate: 0.3, Cost: 0.4},
		{ID: "E", ErrorRate: 0.3, Cost: 0.65},
		{ID: "F", ErrorRate: 0.4, Cost: 0.05},
		{ID: "G", ErrorRate: 0.4, Cost: 0.05},
	}
}

func TestJurorValidate(t *testing.T) {
	good := Juror{ID: "x", ErrorRate: 0.5, Cost: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid juror rejected: %v", err)
	}
	bad := []Juror{
		{ID: "a", ErrorRate: 0, Cost: 0},
		{ID: "b", ErrorRate: 1, Cost: 0},
		{ID: "c", ErrorRate: -0.5, Cost: 0},
		{ID: "d", ErrorRate: math.NaN(), Cost: 0},
		{ID: "e", ErrorRate: 0.5, Cost: -1},
		{ID: "f", ErrorRate: 0.5, Cost: math.NaN()},
	}
	for _, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("juror %q accepted with ε=%g cost=%g", j.ID, j.ErrorRate, j.Cost)
		}
	}
}

func TestValidateCandidatesEmpty(t *testing.T) {
	if err := ValidateCandidates(nil); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}

func TestValidateCandidatesPropagatesRateError(t *testing.T) {
	err := ValidateCandidates([]Juror{{ID: "x", ErrorRate: 2}})
	if !errors.Is(err, pbdist.ErrRateOutOfRange) {
		t.Fatalf("err = %v, want ErrRateOutOfRange", err)
	}
}

func TestModels(t *testing.T) {
	if !(AltrM{}).Allowed(1e18) {
		t.Error("AltrM must allow any cost")
	}
	if (AltrM{}).Name() != "AltrM" {
		t.Error("AltrM name")
	}
	m := PayM{Budget: 1}
	if !m.Allowed(1) || m.Allowed(1.01) {
		t.Error("PayM budget boundary broken")
	}
	if m.Name() != "PayM" {
		t.Error("PayM name")
	}
}

func TestSelectionAccessors(t *testing.T) {
	s := Selection{Jurors: []Juror{{ID: "a", ErrorRate: 0.1, Cost: 1}, {ID: "b", ErrorRate: 0.2, Cost: 2}}}
	if s.Size() != 2 {
		t.Errorf("Size = %d", s.Size())
	}
	if ids := s.IDs(); ids[0] != "a" || ids[1] != "b" {
		t.Errorf("IDs = %v", ids)
	}
	if r := s.Rates(); r[0] != 0.1 || r[1] != 0.2 {
		t.Errorf("Rates = %v", r)
	}
}

func TestSortByErrorRateStableDeterministic(t *testing.T) {
	cands := figure1()
	sorted := sortByErrorRate(cands)
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].ErrorRate > sorted[i].ErrorRate {
			t.Fatalf("not sorted at %d: %v", i, sorted)
		}
		if sorted[i-1].ErrorRate == sorted[i].ErrorRate && sorted[i-1].ID > sorted[i].ID {
			t.Fatalf("tie not broken by ID at %d: %v", i, sorted)
		}
	}
	// Input must not be mutated.
	if cands[0].ID != "A" {
		t.Fatal("input slice mutated")
	}
}

func TestSortByCostQuality(t *testing.T) {
	cands := []Juror{
		{ID: "x", ErrorRate: 0.5, Cost: 0.4}, // product 0.20
		{ID: "y", ErrorRate: 0.1, Cost: 1.0}, // product 0.10
		{ID: "z", ErrorRate: 0.2, Cost: 0.5}, // product 0.10, cheaper
	}
	sorted := sortByCostQuality(cands)
	wantOrder := []string{"z", "y", "x"}
	for i, id := range wantOrder {
		if sorted[i].ID != id {
			t.Fatalf("order = %v, want %v", sorted, wantOrder)
		}
	}
}
