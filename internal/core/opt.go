package core

import (
	"errors"
	"fmt"

	"juryselect/internal/jer"
	"juryselect/internal/pbdist"
)

// MaxOptCandidates bounds the candidate-set size accepted by SelectOpt.
// The enumeration visits 2^N subsets; 26 keeps worst-case runtime in the
// tens of seconds. The paper's ground-truth runs use N = 22 (Figures 3(e),
// 3(f)) and N = 20 (Figures 3(h), 3(i)).
const MaxOptCandidates = 26

// SelectOpt solves JSP under PayM exactly by depth-first enumeration of all
// subsets, maintaining the exact wrong-vote distribution incrementally
// (O(n) per branch instead of re-deriving it at every leaf). Only odd-size,
// budget-feasible juries are evaluated; branches whose cost already exceeds
// the budget are cut (costs are non-negative, so no descendant can recover).
//
// This is the "OPT"/"TRUE" ground truth of the paper's effectiveness
// experiments. It is exponential in len(cands) and rejects candidate sets
// larger than MaxOptCandidates.
func SelectOpt(cands []Juror, budget float64) (Selection, error) {
	if err := ValidateCandidates(cands); err != nil {
		return Selection{}, err
	}
	if budget < 0 {
		return Selection{}, errors.New("core: negative budget")
	}
	if len(cands) > MaxOptCandidates {
		return Selection{}, fmt.Errorf("core: SelectOpt supports at most %d candidates, got %d",
			MaxOptCandidates, len(cands))
	}

	e := optEnum{
		cands:   cands,
		budget:  budget,
		bestJER: 2,
	}
	e.dfs(0, 0)
	if e.bestMask == 0 {
		return Selection{}, ErrNoFeasibleJury
	}
	sel := Selection{JER: e.bestJER, Evaluations: e.evals}
	for i := range cands {
		if e.bestMask&(1<<uint(i)) != 0 {
			sel.Jurors = append(sel.Jurors, cands[i])
		}
	}
	sel.Cost = totalCost(sel.Jurors)
	return sel, nil
}

type optEnum struct {
	cands    []Juror
	budget   float64
	dist     pbdist.Dist
	mask     uint32
	bestMask uint32
	bestJER  float64
	evals    int
}

// dfs explores include/exclude decisions for candidate i with the running
// subset cost. The wrong-vote distribution for the current subset is kept in
// e.dist via Append/Pop.
func (e *optEnum) dfs(i int, cost float64) {
	if i == len(e.cands) {
		n := e.dist.N()
		if n == 0 || n%2 == 0 {
			return
		}
		e.evals++
		v := e.dist.TailAtLeast(jer.FailThreshold(n))
		// Strict inequality keeps the first (lexicographically smallest
		// mask) optimum, making results deterministic.
		if v < e.bestJER {
			e.bestJER = v
			e.bestMask = e.mask
		}
		return
	}
	// Exclude candidate i.
	e.dfs(i+1, cost)
	// Include candidate i if the budget allows.
	c := e.cands[i].Cost
	if cost+c > e.budget {
		return
	}
	if err := e.dist.Append(e.cands[i].ErrorRate); err != nil {
		// Rates were validated up front; Append cannot fail here.
		panic(err)
	}
	e.mask |= 1 << uint(i)
	e.dfs(i+1, cost+c)
	e.mask &^= 1 << uint(i)
	if err := e.dist.Pop(); err != nil {
		panic(err)
	}
}
