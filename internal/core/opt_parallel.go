package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// SelectOptParallel is SelectOpt sharded across a bounded worker pool: the
// include/exclude decisions for the first k candidates are fixed per shard
// (2^k shards), and each shard runs the incremental depth-first
// enumeration over the remaining candidates with its own wrong-vote
// distribution seeded from the fixed prefix. Shards are independent, so
// the enumeration parallelizes with no shared mutable state beyond the
// work counter.
//
// Determinism: the shard set, each shard's enumeration order, and the
// merge order are all fixed, so the result is bit-for-bit identical for
// every workers value (including 1) and across runs. Shards are merged in
// the serial algorithm's visit order with the same strict-inequality rule,
// so ties resolve to the jury SelectOpt would have kept. (The absolute JER
// at a leaf may differ from SelectOpt's by float round-off in the last
// ulp, because the incremental distribution reaches the leaf through a
// different append/pop history; the selected jury agrees except on
// sub-round-off ties between distinct juries.)
//
// workers ≤ 0 selects runtime.GOMAXPROCS(0).
func SelectOptParallel(cands []Juror, budget float64, workers int) (Selection, error) {
	return SelectOptParallelCtx(nil, cands, budget, workers)
}

// SelectOptParallelCtx is SelectOptParallel with cancellation: workers
// poll ctx between shards (a shard is at most 2^(n-8) leaves, a few
// milliseconds at the 26-candidate cap), so a serving layer's deadline
// bounds the enumeration. A nil ctx never cancels. On cancellation the
// partial result is discarded and ctx.Err() returned.
func SelectOptParallelCtx(ctx context.Context, cands []Juror, budget float64, workers int) (Selection, error) {
	if err := ValidateCandidates(cands); err != nil {
		return Selection{}, err
	}
	if budget < 0 {
		return Selection{}, errors.New("core: negative budget")
	}
	if len(cands) > MaxOptCandidates {
		return Selection{}, fmt.Errorf("core: SelectOptParallel supports at most %d candidates, got %d",
			MaxOptCandidates, len(cands))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	n := len(cands)
	// Fixed shard granularity, independent of the worker count, so the
	// result (including float round-off) never depends on the hardware:
	// 256 shards give good load balance up to MaxOptCandidates while each
	// shard still amortizes its setup over 2^(n-8) leaves.
	k := n / 2
	if n >= 16 {
		k = 8
	}
	shards := 1 << uint(k)
	if workers > shards {
		workers = shards
	}

	results := make([]shardBest, shards)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctxErr(ctx) != nil {
					return
				}
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				results[s] = runOptShard(cands, budget, k, s)
			}
		}()
	}
	wg.Wait()
	if err := ctxErr(ctx); err != nil {
		return Selection{}, err
	}

	// Merge in serial visit order: shard s encodes candidate i's inclusion
	// in bit (k-1-i), so ascending s reproduces the exclude-first DFS
	// order of SelectOpt and the strict < keeps the first-visited optimum.
	best := shardBest{bestJER: 2}
	evals := 0
	for _, r := range results {
		evals += r.evals
		if r.bestMask != 0 && r.bestJER < best.bestJER {
			best.bestJER = r.bestJER
			best.bestMask = r.bestMask
		}
	}
	if best.bestMask == 0 {
		return Selection{}, ErrNoFeasibleJury
	}
	sel := Selection{JER: best.bestJER, Evaluations: evals}
	for i := range cands {
		if best.bestMask&(1<<uint(i)) != 0 {
			sel.Jurors = append(sel.Jurors, cands[i])
		}
	}
	sel.Cost = totalCost(sel.Jurors)
	return sel, nil
}

type shardBest struct {
	bestMask uint32
	bestJER  float64
	evals    int
}

// runOptShard enumerates the juries whose first-k membership matches shard
// id s (candidate i included iff bit k-1-i of s is set). An infeasible
// prefix — its cost alone exceeds the budget — corresponds to a subtree
// the serial algorithm never enters, so the shard contributes nothing.
func runOptShard(cands []Juror, budget float64, k, s int) shardBest {
	e := optEnum{cands: cands, budget: budget, bestJER: 2}
	cost := 0.0
	for i := 0; i < k; i++ {
		if s&(1<<uint(k-1-i)) == 0 {
			continue
		}
		cost += cands[i].Cost
		if cost > budget {
			return shardBest{bestJER: 2}
		}
		if err := e.dist.Append(cands[i].ErrorRate); err != nil {
			// Rates were validated up front; Append cannot fail here.
			panic(err)
		}
		e.mask |= 1 << uint(i)
	}
	e.dfs(k, cost)
	return shardBest{bestMask: e.bestMask, bestJER: e.bestJER, evals: e.evals}
}
