package core

import (
	"errors"
	"math"
	"testing"

	"juryselect/internal/jer"
	"juryselect/internal/randx"
)

func optTestJurors(n int, seed int64) []Juror {
	src := randx.New(seed)
	rates := src.ErrorRates(n, 0.3, 0.15)
	costs := src.Requirements(n, 0.2, 0.15)
	out := make([]Juror, n)
	for i := range out {
		out[i] = Juror{ID: string(rune('a' + i)), ErrorRate: rates[i], Cost: costs[i]}
	}
	return out
}

// TestSelectOptParallelMatchesSerial asserts the sharded enumeration
// selects the same jury as the serial SelectOpt across sizes and budgets.
func TestSelectOptParallelMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 2, 5, 9, 14, 17} {
		for _, budget := range []float64{0.3, 1, 5, 1e18} {
			cands := optTestJurors(n, int64(n))
			serial, errS := SelectOpt(cands, budget)
			par, errP := SelectOptParallel(cands, budget, 4)
			if (errS == nil) != (errP == nil) {
				t.Fatalf("n=%d B=%g: error mismatch %v vs %v", n, budget, errS, errP)
			}
			if errS != nil {
				continue
			}
			if got, want := par.IDs(), serial.IDs(); len(got) != len(want) {
				t.Fatalf("n=%d B=%g: jury size %d vs %d", n, budget, len(got), len(want))
			} else {
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("n=%d B=%g: jury %v vs %v", n, budget, got, want)
					}
				}
			}
			if math.Abs(par.JER-serial.JER) > 1e-12 {
				t.Fatalf("n=%d B=%g: JER %v vs %v", n, budget, par.JER, serial.JER)
			}
			if par.Evaluations != serial.Evaluations {
				t.Fatalf("n=%d B=%g: evaluations %d vs %d", n, budget, par.Evaluations, serial.Evaluations)
			}
		}
	}
}

// TestSelectOptParallelDeterministicAcrossWorkers asserts the result is
// bit-for-bit identical for every worker count, which is the property the
// batch engine's documentation promises.
func TestSelectOptParallelDeterministicAcrossWorkers(t *testing.T) {
	cands := optTestJurors(18, 42)
	base, err := SelectOptParallel(cands, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8, 0} {
		got, err := SelectOptParallel(cands, 2, w)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.JER) != math.Float64bits(base.JER) {
			t.Fatalf("workers=%d: JER %v != %v (not byte-identical)", w, got.JER, base.JER)
		}
		if len(got.Jurors) != len(base.Jurors) {
			t.Fatalf("workers=%d: size %d != %d", w, len(got.Jurors), len(base.Jurors))
		}
		for i := range got.Jurors {
			if got.Jurors[i] != base.Jurors[i] {
				t.Fatalf("workers=%d: juror %d differs", w, i)
			}
		}
	}
}

// TestSelectOptParallelErrors mirrors SelectOpt's failure modes.
func TestSelectOptParallelErrors(t *testing.T) {
	if _, err := SelectOptParallel(nil, 1, 0); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("want ErrNoCandidates, got %v", err)
	}
	if _, err := SelectOptParallel(optTestJurors(3, 1), -1, 0); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := SelectOptParallel(optTestJurors(MaxOptCandidates+1, 1), 1, 0); err == nil {
		t.Fatal("oversized candidate set accepted")
	}
	costly := []Juror{{ID: "x", ErrorRate: 0.2, Cost: 5}}
	if _, err := SelectOptParallel(costly, 1, 0); !errors.Is(err, ErrNoFeasibleJury) {
		t.Fatalf("want ErrNoFeasibleJury, got %v", err)
	}
}

// TestSelectPayEvaluatorOverride asserts the pluggable evaluator is used
// and selects the same jury as the default. The default evaluator is the
// incremental distribution (Append/Pop), whose round-off can differ from a
// from-scratch jer.Compute in the last ulps, so the reported JERs are
// compared to relative 1e-12 rather than bit-for-bit.
func TestSelectPayEvaluatorOverride(t *testing.T) {
	cands := optTestJurors(20, 9)
	def, err := SelectPay(cands, PayOptions{Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	over, err := SelectPay(cands, PayOptions{Budget: 2, Evaluate: func(rates []float64) (float64, error) {
		calls++
		return jer.Compute(rates, jer.Auto)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("override evaluator never called")
	}
	if def.Size() != over.Size() {
		t.Fatalf("override changed the jury: %d jurors vs %d", over.Size(), def.Size())
	}
	for i := range def.Jurors {
		if def.Jurors[i] != over.Jurors[i] {
			t.Fatalf("juror %d differs: %+v vs %+v", i, def.Jurors[i], over.Jurors[i])
		}
	}
	if math.Abs(def.JER-over.JER) > 1e-12*math.Max(def.JER, over.JER) {
		t.Fatalf("override changed result: %v vs %v", over.JER, def.JER)
	}
}
