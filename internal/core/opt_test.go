package core

import (
	"errors"
	"math"
	"testing"

	"juryselect/internal/jer"
	"juryselect/internal/pbdist"
	"juryselect/internal/randx"
)

// bruteForceOpt is an independent reference implementation of SelectOpt:
// plain bitmask enumeration recomputing JER from scratch per subset.
func bruteForceOpt(t *testing.T, cands []Juror, budget float64) (bestJER float64, bestMask int, found bool) {
	t.Helper()
	bestJER = 2
	for mask := 1; mask < 1<<uint(len(cands)); mask++ {
		var rates []float64
		cost := 0.0
		for i := range cands {
			if mask&(1<<uint(i)) != 0 {
				rates = append(rates, cands[i].ErrorRate)
				cost += cands[i].Cost
			}
		}
		if len(rates)%2 == 0 || cost > budget {
			continue
		}
		v, err := jer.DP(rates)
		if err != nil {
			t.Fatal(err)
		}
		if v < bestJER {
			bestJER, bestMask, found = v, mask, true
		}
	}
	return bestJER, bestMask, found
}

func TestSelectOptMatchesBruteForce(t *testing.T) {
	src := randx.New(71)
	for trial := 0; trial < 12; trial++ {
		n := 3 + src.Intn(8)
		cands := make([]Juror, n)
		for i := range cands {
			cands[i] = Juror{
				ID:        string(rune('a' + i)),
				ErrorRate: src.TruncNormal(0.4, 0.25, 0, 1),
				Cost:      src.TruncNormal(0.3, 0.2, 0, 1),
			}
		}
		budget := src.Float64() * 1.5
		want, _, feasible := bruteForceOpt(t, cands, budget)
		got, err := SelectOpt(cands, budget)
		if !feasible {
			if !errors.Is(err, ErrNoFeasibleJury) {
				t.Fatalf("trial %d: want ErrNoFeasibleJury, got %v", trial, err)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got.JER, want, 1e-9) {
			t.Fatalf("trial %d: SelectOpt %.12f vs brute force %.12f", trial, got.JER, want)
		}
		if got.Cost > budget+1e-12 {
			t.Fatalf("trial %d: OPT cost %g exceeds budget %g", trial, got.Cost, budget)
		}
		if got.Size()%2 != 1 {
			t.Fatalf("trial %d: even OPT size %d", trial, got.Size())
		}
	}
}

func TestSelectOptNeverWorseThanPayALG(t *testing.T) {
	// OPT is exact, so JER(OPT) ≤ JER(PayALG) always; this is the defining
	// relation behind Figure 3(f).
	src := randx.New(72)
	for trial := 0; trial < 15; trial++ {
		n := 5 + src.Intn(10)
		cands := make([]Juror, n)
		for i := range cands {
			cands[i] = Juror{
				ErrorRate: src.TruncNormal(0.2, 0.1, 0, 1),
				Cost:      src.TruncNormal(0.05, 0.2, 0, 1),
			}
		}
		budget := 0.3 + src.Float64()
		opt, err1 := SelectOpt(cands, budget)
		pay, err2 := SelectPay(cands, PayOptions{Budget: budget})
		if errors.Is(err1, ErrNoFeasibleJury) && errors.Is(err2, ErrNoFeasibleJury) {
			continue
		}
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: opt err %v, pay err %v", trial, err1, err2)
		}
		if opt.JER > pay.JER+1e-12 {
			t.Fatalf("trial %d: OPT %.12f worse than PayALG %.12f", trial, opt.JER, pay.JER)
		}
	}
}

func TestSelectOptRejectsLargeSets(t *testing.T) {
	cands := make([]Juror, MaxOptCandidates+1)
	for i := range cands {
		cands[i] = Juror{ErrorRate: 0.5}
	}
	if _, err := SelectOpt(cands, 1); err == nil {
		t.Fatal("expected size-limit error")
	}
}

func TestSelectOptValidation(t *testing.T) {
	if _, err := SelectOpt(nil, 1); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("err = %v, want ErrNoCandidates", err)
	}
	if _, err := SelectOpt([]Juror{{ErrorRate: 0.5}}, -1); err == nil {
		t.Error("expected error for negative budget")
	}
	if _, err := SelectOpt([]Juror{{ErrorRate: 1.2}}, 1); !errors.Is(err, pbdist.ErrRateOutOfRange) {
		t.Errorf("err = %v, want ErrRateOutOfRange", err)
	}
}

func TestSelectOptInfeasible(t *testing.T) {
	cands := []Juror{{ErrorRate: 0.5, Cost: 5}, {ErrorRate: 0.4, Cost: 7}}
	if _, err := SelectOpt(cands, 1); !errors.Is(err, ErrNoFeasibleJury) {
		t.Fatalf("err = %v, want ErrNoFeasibleJury", err)
	}
}

func TestSelectOptDeterministic(t *testing.T) {
	cands := []Juror{
		{ID: "a", ErrorRate: 0.3, Cost: 0.1},
		{ID: "b", ErrorRate: 0.3, Cost: 0.1},
		{ID: "c", ErrorRate: 0.3, Cost: 0.1},
	}
	first, err := SelectOpt(cands, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := SelectOpt(cands, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Jurors) != len(first.Jurors) {
			t.Fatal("non-deterministic result size")
		}
		for k := range again.Jurors {
			if again.Jurors[k].ID != first.Jurors[k].ID {
				t.Fatal("non-deterministic juror order")
			}
		}
	}
}

func TestSelectOptZeroBudgetFreeJurors(t *testing.T) {
	cands := []Juror{
		{ID: "f1", ErrorRate: 0.2, Cost: 0},
		{ID: "f2", ErrorRate: 0.3, Cost: 0},
		{ID: "f3", ErrorRate: 0.3, Cost: 0},
	}
	sel, err := SelectOpt(cands, 0)
	if err != nil {
		t.Fatal(err)
	}
	// {f1,f2,f3} has JER 0.174 < 0.2 of f1 alone.
	if sel.Size() != 3 || math.Abs(sel.JER-0.174) > 1e-9 {
		t.Fatalf("size %d JER %g, want 3 / 0.174", sel.Size(), sel.JER)
	}
}
