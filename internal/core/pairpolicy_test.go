package core

import (
	"errors"
	"testing"

	"juryselect/internal/randx"
)

func TestPairSlidingEscapesBlockedPair(t *testing.T) {
	// On the motivation-example market with budget 1, the literal
	// (blocking) greedy gets stuck at the seed {A} because the cheap noisy
	// F occupies the pair slot and every (F, ·) pair worsens the JER. The
	// sliding policy advances past F and finds {A,B,C}.
	market := figure1()
	blocking, err := SelectPay(market, PayOptions{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if blocking.Size() != 1 || blocking.Jurors[0].ID != "A" {
		t.Fatalf("blocking selection changed: %v (JER %.4f) — update this test's premise",
			blocking.IDs(), blocking.JER)
	}
	sliding, err := SelectPay(market, PayOptions{Budget: 1, Pairing: PairSliding})
	if err != nil {
		t.Fatal(err)
	}
	if sliding.Size() != 3 || !almostEqual(sliding.JER, 0.072, 1e-9) {
		t.Fatalf("sliding selection = %v (JER %.4f), want {A,B,C} at 0.072",
			sliding.IDs(), sliding.JER)
	}
	if sliding.Cost > 1+1e-12 {
		t.Fatalf("sliding overshot budget: %g", sliding.Cost)
	}
}

func TestPairPoliciesAreIncomparableHeuristics(t *testing.T) {
	// Neither pair policy dominates: sliding escapes blocked pairs (it
	// wins on the motivation example above) but discards better-ranked
	// pair candidates that blocking would have held on to, so each policy
	// wins on some markets. This test documents that empirical fact and
	// pins the shared invariants: both stay within budget and both match
	// or beat their common seed juror.
	src := randx.New(909)
	var slidingWins, blockingWins int
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		n := 5 + src.Intn(30)
		cands := make([]Juror, n)
		for i := range cands {
			cands[i] = Juror{
				ErrorRate: src.TruncNormal(0.3, 0.2, 0, 1),
				Cost:      src.TruncNormal(0.3, 0.3, 0, 2),
			}
		}
		budget := 0.2 + 2*src.Float64()
		b, errB := SelectPay(cands, PayOptions{Budget: budget})
		s, errS := SelectPay(cands, PayOptions{Budget: budget, Pairing: PairSliding})
		if errors.Is(errB, ErrNoFeasibleJury) || errors.Is(errS, ErrNoFeasibleJury) {
			continue
		}
		if errB != nil || errS != nil {
			t.Fatalf("trial %d: %v / %v", trial, errB, errS)
		}
		for _, sel := range []Selection{b, s} {
			if sel.Cost > budget+1e-12 {
				t.Fatalf("trial %d: selection overshot budget", trial)
			}
			// The first jury element is the seed; admissions only ever
			// improve JER, so the result cannot be worse than the seed.
			if sel.JER > sel.Jurors[0].ErrorRate+1e-12 {
				t.Fatalf("trial %d: JER %g worse than seed ε %g",
					trial, sel.JER, sel.Jurors[0].ErrorRate)
			}
		}
		switch {
		case s.JER < b.JER-1e-12:
			slidingWins++
		case b.JER < s.JER-1e-12:
			blockingWins++
		}
	}
	if slidingWins == 0 {
		t.Error("sliding never beat blocking across 200 markets; expected some wins")
	}
	if blockingWins == 0 {
		t.Error("blocking never beat sliding across 200 markets; expected some wins")
	}
}

func TestPairSlidingRespectsOddSizeAndBudget(t *testing.T) {
	src := randx.New(910)
	for trial := 0; trial < 50; trial++ {
		n := 3 + src.Intn(40)
		cands := make([]Juror, n)
		for i := range cands {
			cands[i] = Juror{
				ErrorRate: src.TruncNormal(0.4, 0.2, 0, 1),
				Cost:      src.TruncNormal(0.2, 0.2, 0, 1),
			}
		}
		budget := src.Float64() * 2
		sel, err := SelectPay(cands, PayOptions{Budget: budget, Pairing: PairSliding})
		if errors.Is(err, ErrNoFeasibleJury) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if sel.Size()%2 != 1 {
			t.Fatalf("even size %d", sel.Size())
		}
		if sel.Cost > budget+1e-12 {
			t.Fatalf("cost %g over budget %g", sel.Cost, budget)
		}
	}
}
