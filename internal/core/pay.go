package core

import (
	"errors"

	"juryselect/internal/jer"
	"juryselect/internal/pbdist"
)

// PairPolicy controls what happens to the buffered "pair" candidate when a
// pair admission fails (Algorithm 4, Lines 9–15).
type PairPolicy int

const (
	// PairBlocking is the literal pseudocode: the buffered pair persists
	// until some later candidate succeeds alongside it. A cheap but noisy
	// candidate can therefore occupy the slot forever and freeze the jury
	// at its seed (see the examples/budget walk-through).
	PairBlocking PairPolicy = iota
	// PairSliding is an extension (not in the paper): when admission
	// fails, the buffered pair advances to the newer candidate if that
	// candidate is itself affordable, so one bad candidate cannot block
	// all of its successors. The result is never worse than the seed and
	// in heterogeneous markets often matches the exact optimum; the
	// ablation harness quantifies the difference.
	PairSliding
)

// PayOptions configures PayALG (Algorithm 4).
type PayOptions struct {
	// Budget is the non-negative budget B of Definition 8.
	Budget float64
	// Algorithm selects the JER evaluator used for the improvement checks.
	// The default (jer.Auto) uses the incremental wrong-vote distribution;
	// an explicit DP/CBA/Enum choice evaluates each trial jury from
	// scratch with that algorithm, exactly as the pre-incremental greedy
	// did.
	Algorithm jer.Algorithm
	// Strict replicates the paper's pseudocode bookkeeping literally: the
	// accumulated requirement r is never increased after the seed juror
	// (the pseudocode omits the update on Line 13). The default (false)
	// applies the obvious fix r += r_pair + r_m, so the budget constraint
	// actually binds. See DESIGN.md §5.
	Strict bool
	// Pairing selects the pair-slot policy; the default PairBlocking is
	// the published pseudocode.
	Pairing PairPolicy
	// Evaluate optionally overrides the exact JER evaluator used for the
	// admission checks — e.g. an engine-cached evaluator, so the repeated
	// sub-juries of a budget sweep are computed once. nil selects the
	// default: an incrementally maintained wrong-vote distribution
	// (pbdist.Dist Append/Pop, as SelectOpt uses), so each admission check
	// costs O(n) instead of a fresh O(n²) evaluation and allocates
	// nothing. The override must be a deterministic exact JER of the rate
	// multiset; it may differ from the default in the last ulp (e.g. the
	// engine evaluates memoized juries in canonical order), which can flip
	// admissions only on sub-round-off ties. The slice passed to Evaluate
	// is reused between calls; the evaluator must not retain it.
	Evaluate func(rates []float64) (float64, error)
}

// SelectPay solves JSP under the Pay-as-you-go Model with the greedy
// heuristic of Algorithm 4:
//
//  1. Sort candidates ascending by ε_i·r_i (quality-for-money).
//  2. Seed the jury with the first affordable candidate.
//  3. Scan the rest, buffering one candidate as the "pair"; when a second
//     affordable candidate appears, admit the pair of them only if doing so
//     does not increase the jury's JER (juries must stay odd, hence growth
//     by two).
//
// JSP on PayM is NP-hard (Lemma 4), so the result is heuristic; SelectOpt
// provides the exponential exact answer for small candidate sets.
func SelectPay(cands []Juror, opts PayOptions) (Selection, error) {
	if err := ValidateCandidates(cands); err != nil {
		return Selection{}, err
	}
	if opts.Budget < 0 {
		return Selection{}, errors.New("core: negative budget")
	}
	sorted := sortByCostQuality(cands)

	// Lines 3–5: find the first candidate whose requirement fits the
	// budget on its own.
	seed := -1
	for i, j := range sorted {
		if j.Cost <= opts.Budget {
			seed = i
			break
		}
	}
	if seed == -1 {
		return Selection{}, ErrNoFeasibleJury
	}

	// The greedy's hot loop is its admission checks. The default evaluator
	// maintains the jury's exact wrong-vote distribution incrementally:
	// trying a pair is two Appends (O(n) each) plus a tail sum, and a
	// rejection two Pops — the same discipline SelectOpt uses — instead of
	// re-deriving the distribution of every trial jury from scratch. An
	// Evaluate hook replaces this entirely (it sees the full trial rate
	// slice, built in a reused buffer), as does an explicit Algorithm
	// choice — including surfacing unknown Algorithm values as errors.
	hook := opts.Evaluate
	if hook == nil && opts.Algorithm != jer.Auto {
		ev := jer.NewEvaluator()
		hook = func(rates []float64) (float64, error) {
			return ev.ComputeValidated(rates, opts.Algorithm)
		}
	}
	var dist payDist
	var trial []float64
	if hook != nil {
		trial = make([]float64, 0, len(sorted))
	}

	sel := Selection{}
	jury := []Juror{sorted[seed]}
	rates := []float64{sorted[seed].ErrorRate}
	spent := sorted[seed].Cost
	var curJER float64
	var err error
	if hook != nil {
		curJER, err = hook(rates)
	} else {
		curJER = dist.extend(sorted[seed].ErrorRate)
	}
	if err != nil {
		return Selection{}, err
	}
	sel.Evaluations++

	// Lines 8–16: grow by pairs.
	havePair := false
	var pair Juror
	for m := seed + 1; m < len(sorted); m++ {
		cand := sorted[m]
		if !havePair {
			if spent+cand.Cost <= opts.Budget {
				pair = cand
				havePair = true
			}
			continue
		}
		if spent+pair.Cost+cand.Cost > opts.Budget {
			slidePair(&pair, cand, spent, opts)
			continue
		}
		var v float64
		if hook != nil {
			trial = append(append(trial[:0], rates...), pair.ErrorRate, cand.ErrorRate)
			v, err = hook(trial)
			if err != nil {
				return Selection{}, err
			}
		} else {
			dist.push(pair.ErrorRate)
			v = dist.extend(cand.ErrorRate)
		}
		sel.Evaluations++
		if v <= curJER {
			jury = append(jury, pair, cand)
			rates = append(rates, pair.ErrorRate, cand.ErrorRate)
			curJER = v
			if !opts.Strict {
				spent += pair.Cost + cand.Cost
			}
			havePair = false
		} else {
			if hook == nil {
				dist.retract(2)
			}
			slidePair(&pair, cand, spent, opts)
		}
	}

	sel.Jurors = jury
	sel.JER = curJER
	sel.Cost = totalCost(jury)
	return sel, nil
}

// payDist wraps the incremental Poisson–Binomial distribution with the
// panic-on-impossible-error convention of the solvers: rates were validated
// up front, so Append/Pop cannot fail.
type payDist struct {
	d pbdist.Dist
}

// push appends one juror's rate.
func (p *payDist) push(rate float64) {
	if err := p.d.Append(rate); err != nil {
		panic(err)
	}
}

// extend is push followed by the JER of the grown jury.
func (p *payDist) extend(rate float64) float64 {
	p.push(rate)
	return p.d.TailAtLeast(jer.FailThreshold(p.d.N()))
}

// retract removes the k most recently appended jurors.
func (p *payDist) retract(k int) {
	for i := 0; i < k; i++ {
		if err := p.d.Pop(); err != nil {
			panic(err)
		}
	}
}

// slidePair advances the buffered pair to cand under PairSliding when cand
// is itself an affordable pair candidate; when cand is unaffordable the old
// pair is kept (it may still combine with a cheaper later candidate). Under
// PairBlocking it is a no-op.
func slidePair(pair *Juror, cand Juror, spent float64, opts PayOptions) {
	if opts.Pairing != PairSliding {
		return
	}
	if spent+cand.Cost <= opts.Budget {
		*pair = cand
	}
}
