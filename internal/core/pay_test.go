package core

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"juryselect/internal/jer"
	"juryselect/internal/randx"
)

func TestSelectPayMotivationExample(t *testing.T) {
	// Paper Section 1: with budget $1 the jury {A,B,C,D,E} (cost of D and
	// E alone is 0.4+0.65 > 1) cannot be formed; the requester must settle
	// for a cheaper jury. The selected jury must respect the budget and
	// not be worse than the best single juror.
	sel, err := SelectPay(figure1(), PayOptions{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Cost > 1+1e-12 {
		t.Fatalf("cost %.3f exceeds budget", sel.Cost)
	}
	if sel.Size()%2 != 1 {
		t.Fatalf("even jury size %d", sel.Size())
	}
	if sel.JER > 0.2+1e-12 {
		t.Fatalf("JER %.4f worse than best affordable single juror", sel.JER)
	}
}

func TestSelectPayRespectsBudgetProperty(t *testing.T) {
	src := randx.New(202)
	for trial := 0; trial < 40; trial++ {
		n := 2 + src.Intn(50)
		cands := make([]Juror, n)
		for i := range cands {
			cands[i] = Juror{
				ErrorRate: src.TruncNormal(0.3, 0.2, 0, 1),
				Cost:      src.TruncNormal(0.4, 0.3, 0, 2),
			}
		}
		budget := src.Float64() * 3
		sel, err := SelectPay(cands, PayOptions{Budget: budget})
		if errors.Is(err, ErrNoFeasibleJury) {
			// Verify infeasibility: every juror alone must exceed budget.
			for _, j := range cands {
				if j.Cost <= budget {
					t.Fatalf("trial %d: feasible juror (cost %g ≤ %g) but ErrNoFeasibleJury", trial, j.Cost, budget)
				}
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if sel.Cost > budget+1e-12 {
			t.Fatalf("trial %d: cost %g exceeds budget %g", trial, sel.Cost, budget)
		}
		if sel.Size()%2 != 1 {
			t.Fatalf("trial %d: even size %d", trial, sel.Size())
		}
	}
}

func TestSelectPayNeverWorseThanSeed(t *testing.T) {
	// The greedy only admits pairs that do not increase JER, so the final
	// JER can never exceed the seed juror's JER.
	src := randx.New(303)
	for trial := 0; trial < 30; trial++ {
		n := 1 + src.Intn(40)
		cands := make([]Juror, n)
		for i := range cands {
			cands[i] = Juror{
				ErrorRate: src.TruncNormal(0.35, 0.2, 0, 1),
				Cost:      src.TruncNormal(0.2, 0.2, 0, 1),
			}
		}
		budget := 0.2 + src.Float64()*2
		sel, err := SelectPay(cands, PayOptions{Budget: budget})
		if errors.Is(err, ErrNoFeasibleJury) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		// Recompute the seed: first affordable in ε·r order.
		sorted := sortByCostQuality(cands)
		var seed *Juror
		for i := range sorted {
			if sorted[i].Cost <= budget {
				seed = &sorted[i]
				break
			}
		}
		if seed == nil {
			t.Fatalf("trial %d: selection succeeded but no affordable seed", trial)
		}
		if sel.JER > seed.ErrorRate+1e-12 {
			t.Fatalf("trial %d: JER %g worse than seed ε %g", trial, sel.JER, seed.ErrorRate)
		}
	}
}

func TestSelectPayZeroBudgetFreeJurors(t *testing.T) {
	cands := []Juror{
		{ID: "free1", ErrorRate: 0.2, Cost: 0},
		{ID: "free2", ErrorRate: 0.3, Cost: 0},
		{ID: "free3", ErrorRate: 0.3, Cost: 0},
		{ID: "paid", ErrorRate: 0.01, Cost: 0.5},
	}
	sel, err := SelectPay(cands, PayOptions{Budget: 0})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Cost != 0 {
		t.Fatalf("cost %g, want 0", sel.Cost)
	}
	// The three free jurors yield JER 0.174 < 0.2 of the seed alone, so
	// the greedy should take all of them.
	if sel.Size() != 3 || !almostEqual(sel.JER, 0.174, 1e-9) {
		t.Fatalf("size %d JER %.4f, want 3 with 0.174", sel.Size(), sel.JER)
	}
}

func TestSelectPayInfeasible(t *testing.T) {
	cands := []Juror{{ID: "x", ErrorRate: 0.5, Cost: 10}}
	if _, err := SelectPay(cands, PayOptions{Budget: 1}); !errors.Is(err, ErrNoFeasibleJury) {
		t.Fatalf("err = %v, want ErrNoFeasibleJury", err)
	}
}

func TestSelectPayNegativeBudget(t *testing.T) {
	cands := []Juror{{ID: "x", ErrorRate: 0.5, Cost: 0}}
	if _, err := SelectPay(cands, PayOptions{Budget: -1}); err == nil {
		t.Fatal("expected error for negative budget")
	}
}

func TestSelectPayStrictModeSpendsMore(t *testing.T) {
	// Strict mode never accumulates the admitted pairs' costs, so it can
	// overshoot the budget — this documents why the fixed bookkeeping is
	// the default. Construct a case where the literal pseudocode admits
	// two pairs whose combined cost exceeds B.
	cands := []Juror{
		{ID: "s", ErrorRate: 0.10, Cost: 0.1}, // seed: product 0.01
		{ID: "a", ErrorRate: 0.20, Cost: 0.4},
		{ID: "b", ErrorRate: 0.20, Cost: 0.4},
		{ID: "c", ErrorRate: 0.21, Cost: 0.4},
		{ID: "d", ErrorRate: 0.21, Cost: 0.4},
	}
	budget := 1.0
	strict, err := SelectPay(cands, PayOptions{Budget: budget, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := SelectPay(cands, PayOptions{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Cost > budget+1e-12 {
		t.Fatalf("fixed mode overshot budget: %g", fixed.Cost)
	}
	if strict.Cost <= budget {
		t.Skipf("strict mode happened to stay within budget (cost %g)", strict.Cost)
	}
	if strict.Size() <= fixed.Size() {
		t.Errorf("expected strict mode to admit more jurors: strict %d fixed %d",
			strict.Size(), fixed.Size())
	}
}

func TestSelectPayNoCandidates(t *testing.T) {
	if _, err := SelectPay(nil, PayOptions{Budget: 1}); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}

func TestSelectPayLargeBudgetMatchesAltrOnUniformCost(t *testing.T) {
	// With uniform costs and an effectively unlimited budget, PayALG's
	// ε·r ordering coincides with the ε ordering and every improving pair
	// is admitted, so the greedy should find the AltrM optimum.
	src := randx.New(404)
	for trial := 0; trial < 10; trial++ {
		n := 5 + 2*src.Intn(10)
		cands := make([]Juror, n)
		for i := range cands {
			cands[i] = Juror{ID: string(rune('a' + i)), ErrorRate: src.TruncNormal(0.3, 0.15, 0, 1), Cost: 0.1}
		}
		pay, err := SelectPay(cands, PayOptions{Budget: 1e9})
		if err != nil {
			t.Fatal(err)
		}
		altr, err := SelectAltr(cands, AltrOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// PayALG admits pairs only while JER does not increase, which is a
		// hill-climbing restriction — it can stop at a local optimum when a
		// temporarily non-improving pair would have unlocked a better
		// larger jury. It must however always reach a JER at least as good
		// as its seed and never beat the true optimum.
		if pay.JER < altr.JER-1e-12 {
			t.Fatalf("trial %d: greedy %.12f beat exact optimum %.12f", trial, pay.JER, altr.JER)
		}
	}
}

// TestSelectPayIncrementalMatchesScratch pins the incremental-distribution
// default against a from-scratch evaluator across random instances: the
// greedy must admit exactly the same jurors in the same order. The
// incremental Append/Pop round-off can differ from a fresh DP evaluation
// in the last ulps, so JER values are compared to relative 1e-10 — an
// admission flip would change the jury itself and fail the ID check.
func TestSelectPayIncrementalMatchesScratch(t *testing.T) {
	src := randx.New(505)
	for trial := 0; trial < 60; trial++ {
		n := 3 + src.Intn(60)
		cands := make([]Juror, n)
		for i := range cands {
			cands[i] = Juror{
				ID:        fmt.Sprintf("j%02d", i),
				ErrorRate: src.TruncNormal(0.3, 0.2, 0, 1),
				Cost:      src.TruncNormal(0.3, 0.3, 0, 2),
			}
		}
		budget := src.Float64() * 4
		opts := PayOptions{Budget: budget, Pairing: PairPolicy(trial % 2), Strict: trial%3 == 0}
		inc, errInc := SelectPay(cands, opts)
		scratch := opts
		scratch.Evaluate = func(rates []float64) (float64, error) {
			return jer.Compute(rates, jer.Auto)
		}
		ref, errRef := SelectPay(cands, scratch)
		if (errInc == nil) != (errRef == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, errInc, errRef)
		}
		if errInc != nil {
			continue
		}
		if len(inc.Jurors) != len(ref.Jurors) {
			t.Fatalf("trial %d: jury size %d vs %d", trial, len(inc.Jurors), len(ref.Jurors))
		}
		for i := range inc.Jurors {
			if inc.Jurors[i].ID != ref.Jurors[i].ID {
				t.Fatalf("trial %d juror %d: %s vs %s", trial, i, inc.Jurors[i].ID, ref.Jurors[i].ID)
			}
		}
		if inc.Evaluations != ref.Evaluations {
			t.Fatalf("trial %d: evaluations %d vs %d", trial, inc.Evaluations, ref.Evaluations)
		}
		if math.Abs(inc.JER-ref.JER) > 1e-10 {
			t.Fatalf("trial %d: JER %v vs %v", trial, inc.JER, ref.JER)
		}
	}
}

// TestSelectPayAlgorithmOption asserts an explicit Algorithm choice is
// honored — trial juries evaluated from scratch with that algorithm, as
// before the incremental default — and that an unknown Algorithm surfaces
// as an error instead of being silently ignored.
func TestSelectPayAlgorithmOption(t *testing.T) {
	cands := []Juror{
		{ID: "s", ErrorRate: 0.10, Cost: 0.1},
		{ID: "a", ErrorRate: 0.20, Cost: 0.2},
		{ID: "b", ErrorRate: 0.20, Cost: 0.2},
	}
	want, err := SelectPay(cands, PayOptions{Budget: 1, Evaluate: func(rates []float64) (float64, error) {
		return jer.Compute(rates, jer.DPAlgo)
	}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SelectPay(cands, PayOptions{Budget: 1, Algorithm: jer.DPAlgo})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.JER) != math.Float64bits(want.JER) || got.Size() != want.Size() {
		t.Fatalf("explicit DPAlgo: %v/%d, want jer.Compute-identical %v/%d",
			got.JER, got.Size(), want.JER, want.Size())
	}
	if _, err := SelectPay(cands, PayOptions{Budget: 1, Algorithm: jer.Algorithm(99)}); err == nil {
		t.Fatal("unknown algorithm accepted silently")
	}
}
