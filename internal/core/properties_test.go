package core

import (
	"errors"
	"testing"
	"testing/quick"

	"juryselect/internal/pbdist"
	"juryselect/internal/randx"
)

// Property battery over the solvers: determinism, budget feasibility, odd
// sizes, and cross-solver dominance relations on randomized markets. These
// complement the targeted tests in altr_test.go / pay_test.go / opt_test.go
// with broader randomized coverage.

func randomMarket(seed int64, maxN int) ([]Juror, float64) {
	src := randx.New(seed)
	n := 1 + src.Intn(maxN)
	cands := make([]Juror, n)
	for i := range cands {
		cands[i] = Juror{
			ID:        string(rune('a'+i%26)) + string(rune('0'+i/26)),
			ErrorRate: src.TruncNormal(0.35, 0.25, 0, 1),
			Cost:      src.TruncNormal(0.3, 0.3, 0, 2),
		}
	}
	return cands, src.Float64() * 2
}

func TestPropertySolversDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		cands, budget := randomMarket(seed, 30)
		a1, e1 := SelectAltr(cands, AltrOptions{Incremental: true})
		a2, e2 := SelectAltr(cands, AltrOptions{Incremental: true})
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		if e1 == nil && (a1.JER != a2.JER || a1.Size() != a2.Size()) {
			return false
		}
		p1, e3 := SelectPay(cands, PayOptions{Budget: budget})
		p2, e4 := SelectPay(cands, PayOptions{Budget: budget})
		if (e3 == nil) != (e4 == nil) {
			return false
		}
		if e3 == nil && (p1.JER != p2.JER || p1.Size() != p2.Size()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAltrIgnoresCosts(t *testing.T) {
	// The altruism model must be cost-blind: scaling every cost leaves the
	// selection unchanged.
	f := func(seed int64) bool {
		cands, _ := randomMarket(seed, 25)
		scaled := make([]Juror, len(cands))
		copy(scaled, cands)
		for i := range scaled {
			scaled[i].Cost *= 100
		}
		a, e1 := SelectAltr(cands, AltrOptions{Incremental: true})
		b, e2 := SelectAltr(scaled, AltrOptions{Incremental: true})
		if e1 != nil || e2 != nil {
			return e1 != nil && e2 != nil
		}
		return a.JER == b.JER && a.Size() == b.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBudgetMonotonicityOfOpt(t *testing.T) {
	// OPT's JER is non-increasing in the budget: a larger budget only
	// widens the feasible set. (Not true for the greedy, which is why the
	// paper's Figure 3(f) curves are only roughly monotone.)
	f := func(seed int64) bool {
		src := randx.New(seed)
		n := 3 + src.Intn(10)
		cands := make([]Juror, n)
		for i := range cands {
			cands[i] = Juror{
				ErrorRate: src.TruncNormal(0.3, 0.2, 0, 1),
				Cost:      src.TruncNormal(0.3, 0.3, 0, 2),
			}
		}
		b1 := src.Float64()
		b2 := b1 + src.Float64()
		o1, e1 := SelectOpt(cands, b1)
		o2, e2 := SelectOpt(cands, b2)
		if errors.Is(e1, ErrNoFeasibleJury) {
			return true // smaller budget infeasible says nothing
		}
		if e1 != nil || e2 != nil {
			return false
		}
		return o2.JER <= o1.JER+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAltrOptimalityAgainstOpt(t *testing.T) {
	// AltrALG must equal OPT-with-infinite-budget on every random market
	// small enough to enumerate.
	f := func(seed int64) bool {
		src := randx.New(seed)
		n := 1 + src.Intn(12)
		cands := make([]Juror, n)
		for i := range cands {
			cands[i] = Juror{ErrorRate: src.TruncNormal(0.4, 0.25, 0, 1)}
		}
		a, e1 := SelectAltr(cands, AltrOptions{Incremental: true})
		o, e2 := SelectOpt(cands, 1e18)
		if e1 != nil || e2 != nil {
			return false
		}
		return a.JER <= o.JER+1e-9 && o.JER <= a.JER+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySelectionJERConsistent(t *testing.T) {
	// The JER reported by any solver must equal an independent evaluation
	// of the selected jurors' rates.
	f := func(seed int64) bool {
		cands, budget := randomMarket(seed, 25)
		for _, sel := range solveAll(cands, budget) {
			if sel == nil {
				continue
			}
			d := pbdist.MustNew(sel.Rates())
			want := d.TailAtLeast((sel.Size() + 2) / 2)
			if diff := sel.JER - want; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// solveAll runs the two main solvers, returning nil entries on infeasible
// markets.
func solveAll(cands []Juror, budget float64) []*Selection {
	out := make([]*Selection, 0, 2)
	if a, err := SelectAltr(cands, AltrOptions{Incremental: true}); err == nil {
		out = append(out, &a)
	} else {
		out = append(out, nil)
	}
	if p, err := SelectPay(cands, PayOptions{Budget: budget}); err == nil {
		out = append(out, &p)
	} else {
		out = append(out, nil)
	}
	return out
}
