// Package dataio reads and writes candidate-juror datasets in CSV and JSON.
// It backs cmd/juryselect and gives downstream users a stable interchange
// format for estimated crowds:
//
//	CSV:  header "id,error_rate,cost" (cost optional), one juror per row.
//	JSON: array of {"id": ..., "error_rate": ..., "cost": ...} objects.
//
// File ingest is stricter than the in-memory model: error rates must be
// finite and lie in (0, 0.5) — a stored candidate whose ε is NaN, ±Inf,
// or at least 0.5 fails the read with ErrRateNotBetterThanChance (or the
// model validation error), so a malformed pool file aborts cmd/juryselect
// and juryd -pool at startup instead of poisoning selections.
package dataio

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"juryselect/internal/core"
)

// ErrNoJurors reports an input containing no juror rows.
var ErrNoJurors = errors.New("dataio: no juror rows in input")

// ErrRateNotBetterThanChance reports an ingested error rate at or above
// 0.5. The model tolerates any ε ∈ (0,1), but a stored candidate file
// whose jurors vote no better than a coin flip is almost always a data
// error (a wrong column, an accuracy instead of an error rate), and such
// jurors silently poison pay-model selections. File ingest therefore
// fails fast; programmatic callers that genuinely want worse-than-chance
// jurors can construct them directly.
var ErrRateNotBetterThanChance = errors.New("dataio: error rate not in (0, 0.5): jurors must be better than chance")

// validateIngestRate enforces the file-ingest contract on one juror's
// error rate: finite, and inside [0, 0.5) — intersected with the model's
// own ε > 0 requirement (Definition 4), the accepted range is (0, 0.5).
func validateIngestRate(j core.Juror) error {
	if err := j.Validate(); err != nil {
		return err
	}
	// Validate already rejected NaN and anything outside (0,1); what is
	// left to enforce is the better-than-chance half of the range.
	if j.ErrorRate >= 0.5 {
		return fmt.Errorf("%w: juror %q has ε = %g", ErrRateNotBetterThanChance, j.ID, j.ErrorRate)
	}
	return nil
}

// ReadCSV parses jurors from CSV. The first row is treated as a header when
// its error_rate column does not parse as a number. Rows must have two or
// three fields: id, error_rate, and optionally cost. Parsed jurors are
// validated against the model constraints (ε ∈ (0,1), cost ≥ 0).
func ReadCSV(r io.Reader) ([]core.Juror, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataio: reading CSV: %w", err)
	}
	var jurors []core.Juror
	for i, row := range rows {
		if len(row) < 2 {
			return nil, fmt.Errorf("dataio: row %d: want at least 2 fields (id,error_rate), got %d", i+1, len(row))
		}
		rate, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			if i == 0 {
				continue // header row
			}
			return nil, fmt.Errorf("dataio: row %d: bad error_rate %q", i+1, row[1])
		}
		j := core.Juror{ID: row[0], ErrorRate: rate}
		if len(row) >= 3 && row[2] != "" {
			cost, err := strconv.ParseFloat(row[2], 64)
			if err != nil {
				return nil, fmt.Errorf("dataio: row %d: bad cost %q", i+1, row[2])
			}
			j.Cost = cost
		}
		if err := validateIngestRate(j); err != nil {
			return nil, fmt.Errorf("dataio: row %d: %w", i+1, err)
		}
		jurors = append(jurors, j)
	}
	if len(jurors) == 0 {
		return nil, ErrNoJurors
	}
	return jurors, nil
}

// WriteCSV writes jurors as CSV with a header.
func WriteCSV(w io.Writer, jurors []core.Juror) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "error_rate", "cost"}); err != nil {
		return fmt.Errorf("dataio: writing CSV: %w", err)
	}
	for _, j := range jurors {
		rec := []string{
			j.ID,
			strconv.FormatFloat(j.ErrorRate, 'g', -1, 64),
			strconv.FormatFloat(j.Cost, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataio: writing CSV: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// JurorJSON is the JSON wire form of a juror, shared by the CSV/JSON file
// formats, cmd/juryselect -json, and the juryd service payloads.
type JurorJSON struct {
	ID        string  `json:"id"`
	ErrorRate float64 `json:"error_rate"`
	Cost      float64 `json:"cost,omitempty"`
}

// Juror converts the wire form back to the model type (unvalidated).
func (j JurorJSON) Juror() core.Juror {
	return core.Juror{ID: j.ID, ErrorRate: j.ErrorRate, Cost: j.Cost}
}

// ReadJSON parses jurors from a JSON array and validates them.
func ReadJSON(r io.Reader) ([]core.Juror, error) {
	var raw []JurorJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("dataio: decoding JSON: %w", err)
	}
	if len(raw) == 0 {
		return nil, ErrNoJurors
	}
	jurors := make([]core.Juror, len(raw))
	for i, rj := range raw {
		jurors[i] = rj.Juror()
		if err := validateIngestRate(jurors[i]); err != nil {
			return nil, fmt.Errorf("dataio: juror %d: %w", i, err)
		}
	}
	return jurors, nil
}

// WriteJSON writes jurors as an indented JSON array.
func WriteJSON(w io.Writer, jurors []core.Juror) error {
	raw := make([]JurorJSON, len(jurors))
	for i, j := range jurors {
		raw[i] = JurorJSON{ID: j.ID, ErrorRate: j.ErrorRate, Cost: j.Cost}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(raw); err != nil {
		return fmt.Errorf("dataio: encoding JSON: %w", err)
	}
	return nil
}

// SelectionJSON is the canonical JSON report form of a selection outcome.
// cmd/juryselect -json emits it and the juryd service nests it under
// "selection" in its /v1/select responses, so CLI and service payloads
// are interchangeable.
type SelectionJSON struct {
	Model       string      `json:"model"`
	Budget      float64     `json:"budget,omitempty"`
	Size        int         `json:"size"`
	JER         float64     `json:"jury_error_rate"`
	Cost        float64     `json:"total_cost"`
	Jurors      []JurorJSON `json:"jurors"`
	Evaluations int         `json:"evaluations,omitempty"`
}

// NewSelectionJSON builds the wire form of a selection outcome.
func NewSelectionJSON(model string, budget float64, sel core.Selection) SelectionJSON {
	rep := SelectionJSON{
		Model:       model,
		Budget:      budget,
		Size:        sel.Size(),
		JER:         sel.JER,
		Cost:        sel.Cost,
		Jurors:      make([]JurorJSON, len(sel.Jurors)),
		Evaluations: sel.Evaluations,
	}
	for i, j := range sel.Jurors {
		rep.Jurors[i] = JurorJSON{ID: j.ID, ErrorRate: j.ErrorRate, Cost: j.Cost}
	}
	return rep
}

// WriteSelection writes a selection report as indented JSON.
func WriteSelection(w io.Writer, model string, budget float64, sel core.Selection) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(NewSelectionJSON(model, budget, sel))
}
