package dataio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"juryselect/internal/core"
)

func TestReadCSVWithHeader(t *testing.T) {
	in := "id,error_rate,cost\nA,0.1,0.15\nB,0.2,0.2\n"
	jurors, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(jurors) != 2 {
		t.Fatalf("got %d jurors", len(jurors))
	}
	if jurors[0].ID != "A" || jurors[0].ErrorRate != 0.1 || jurors[0].Cost != 0.15 {
		t.Fatalf("juror[0] = %+v", jurors[0])
	}
}

func TestReadCSVWithoutHeaderOrCost(t *testing.T) {
	in := "A,0.1\nB,0.2\n"
	jurors, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(jurors) != 2 || jurors[1].Cost != 0 {
		t.Fatalf("jurors = %+v", jurors)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"header only":       "id,error_rate\n",
		"one field":         "A\n",
		"bad rate mid":      "A,0.1\nB,xyz\n",
		"bad cost":          "A,0.1,nope\n",
		"rate out of range": "A,1.5\n",
		"negative cost":     "A,0.4,-1\n",
		"NaN rate":          "A,NaN\n",
		"Inf rate":          "A,Inf\n",
		"rate at chance":    "A,0.5\n",
		"worse than chance": "A,0.7\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error for %q", name, in)
		}
	}
}

func TestIngestRejectsWorseThanChance(t *testing.T) {
	// Rates at or above 0.5 carry the dedicated sentinel so callers can
	// branch on the failure mode.
	if _, err := ReadCSV(strings.NewReader("A,0.55\n")); !errors.Is(err, ErrRateNotBetterThanChance) {
		t.Errorf("CSV err = %v, want ErrRateNotBetterThanChance", err)
	}
	if _, err := ReadJSON(strings.NewReader(`[{"id":"a","error_rate":0.5}]`)); !errors.Is(err, ErrRateNotBetterThanChance) {
		t.Errorf("JSON err = %v, want ErrRateNotBetterThanChance", err)
	}
	// Just under the bound is accepted.
	if _, err := ReadCSV(strings.NewReader("A,0.499\n")); err != nil {
		t.Errorf("ε = 0.499 rejected: %v", err)
	}
}

func TestReadCSVEmptyIsErrNoJurors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("id,error_rate\n")); !errors.Is(err, ErrNoJurors) {
		t.Fatalf("err = %v, want ErrNoJurors", err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	want := []core.Juror{
		{ID: "A", ErrorRate: 0.1, Cost: 0.15},
		{ID: "with,comma", ErrorRate: 0.25, Cost: 0},
		{ID: "tiny", ErrorRate: 1e-10, Cost: 2.5},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d jurors, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("juror %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	want := []core.Juror{
		{ID: "A", ErrorRate: 0.1, Cost: 0.15},
		{ID: "B", ErrorRate: 0.2},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d jurors", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("juror %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	for name, in := range map[string]string{
		"not json":          "nope",
		"empty array":       "[]",
		"unknown field":     `[{"id":"a","error_rate":0.4,"extra":1}]`,
		"invalid rate":      `[{"id":"a","error_rate":2}]`,
		"negative cost":     `[{"id":"a","error_rate":0.4,"cost":-3}]`,
		"worse than chance": `[{"id":"a","error_rate":0.6}]`,
	} {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := ReadJSON(strings.NewReader("[]")); !errors.Is(err, ErrNoJurors) {
		t.Error("empty array should be ErrNoJurors")
	}
}

func TestWriteSelection(t *testing.T) {
	sel := core.Selection{
		Jurors: []core.Juror{{ID: "A", ErrorRate: 0.1, Cost: 0.5}},
		JER:    0.1,
		Cost:   0.5,
	}
	var buf bytes.Buffer
	if err := WriteSelection(&buf, "pay", 1.0, sel); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"model": "pay"`, `"budget": 1`, `"jury_error_rate": 0.1`, `"A"`} {
		if !strings.Contains(out, want) {
			t.Errorf("selection JSON missing %s:\n%s", want, out)
		}
	}
}
