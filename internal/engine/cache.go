package engine

import (
	"container/list"
	"math"
	"slices"
	"sync"

	"juryselect/internal/jer"
)

// evalScratch is the per-worker working set of the engine's hot path: a
// reusable JER kernel plus the buffer the canonical (sorted) rate order is
// built in. One scratch serves one goroutine at a time; EvaluateAll gives
// each worker its own for the worker's whole lifetime, and one-shot
// Evaluate calls borrow one from the pool.
type evalScratch struct {
	ev     *jer.Evaluator
	sorted []float64
}

var scratchPool = sync.Pool{
	New: func() any { return &evalScratch{ev: jer.NewEvaluator()} },
}

// canonicalize copies rates into the scratch buffer sorted ascending — the
// canonical member order — and returns the buffer. Memoized evaluations
// are computed on the canonical order: jer.Compute's floating-point
// rounding is order-sensitive in the last ulp, so evaluating the given
// order would make the cached value depend on which permutation a worker
// happened to compute first. Only cache-miss leaders pay this copy + sort;
// the request path keys the memo with the sort-free hashMultiset (the
// n·log n sort dominated the warm-memo profile at >90% before the
// order-invariant key removed it from hits).
func canonicalize(rates []float64, s *evalScratch) (sorted []float64) {
	s.sorted = append(s.sorted[:0], rates...)
	slices.Sort(s.sorted)
	return s.sorted
}

// hashMultiset returns the memo key of the rates multiset: each rate's
// IEEE-754 bit pattern is avalanche-mixed (the splitmix64 finalizer, so
// near-identical doubles map to uncorrelated words) and the mixed terms
// combine by wrapping addition — a commutative reduction, so every member
// order of the same multiset yields the same key with no sorting, exactly
// the equivalence class under which JER is invariant (Definition 6 depends
// only on the rates). The count folds in before a final avalanche so that
// every output bit — the shard selector uses the top four — depends on
// every input.
//
// The key is a hash, not the full multiset, so two distinct multisets can
// in principle collide; with mixed terms the sum behaves uniformly and the
// birthday probability across even a full default cache (2^16 entries) is
// ~2^-33, far below the solvers' round-off sensitivity, and the key costs
// 8 bytes flat instead of 8·n.
func hashMultiset(rates []float64) uint64 {
	var sum uint64
	for _, r := range rates {
		sum += mix64(math.Float64bits(r))
	}
	return mix64(sum + mix64(uint64(len(rates))))
}

// mix64 is the splitmix64 finalizer: an invertible avalanche in which each
// output bit depends on every input bit.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shardBits sets the shard count of the memo (2^shardBits shards, shard
// selected by the key's top shardBits bits). 16 shards keeps mutex
// contention negligible at the worker counts the engine runs
// (≤ GOMAXPROCS): the single-mutex design this replaces serialized every
// cached hit through one lock, which dominated the warm-memo profile.
const (
	shardBits = 4
	numShards = 1 << shardBits
)

// shardedCache is the engine memo: numShards independent LRU shards, each
// its own mutex + map + intrusive list, with a jury's shard chosen by the
// top bits of its multiset key. The in-flight call registry lives in the
// shard too, so a cached hit costs exactly one shard-lock acquisition.
type shardedCache struct {
	shards [numShards]cacheShard
}

type cacheShard struct {
	mu       sync.Mutex
	cap      int
	items    map[uint64]*list.Element
	order    *list.List // front = most recently used
	inflight map[uint64]*call
}

type lruEntry struct {
	key uint64
	val float64
}

func newShardedCache(capacity int) *shardedCache {
	per := (capacity + numShards - 1) / numShards
	if per < 1 {
		per = 1
	}
	c := &shardedCache{}
	for i := range c.shards {
		c.shards[i].init(per)
	}
	return c
}

func (c *shardedCache) shard(key uint64) *cacheShard {
	return &c.shards[key>>(64-shardBits)]
}

// len reports the number of cached entries across all shards.
func (c *shardedCache) len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.order.Len()
		s.mu.Unlock()
	}
	return total
}

func (s *cacheShard) init(capacity int) {
	s.cap = capacity
	s.items = make(map[uint64]*list.Element, capacity)
	s.order = list.New()
	s.inflight = make(map[uint64]*call)
}

// get returns the cached value for key, marking it most recently used.
func (s *cacheShard) get(key uint64) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return 0, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes key, evicting the least recently used entry
// when the shard is over capacity. Callers must not hold s.mu.
func (s *cacheShard) put(key uint64, val float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*lruEntry).val = val
		s.order.MoveToFront(el)
		return
	}
	s.items[key] = s.order.PushFront(&lruEntry{key: key, val: val})
	if s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*lruEntry).key)
	}
}
