package engine

import (
	"container/list"
	"encoding/binary"
	"math"
	"sort"
	"sync"
)

// canonicalize returns the rates sorted ascending (the canonical member
// order) and their memo key: each sorted rate as its 8-byte IEEE-754
// pattern. Two juries whose members can be paired up with exactly equal
// rates — regardless of member order — share a key, which is exactly the
// equivalence class under which JER is invariant (Definition 6 depends
// only on the rates). Memoized evaluations are computed on the canonical
// order too: jer.Compute's floating-point rounding is order-sensitive in
// the last ulp, so evaluating the given order would make the cached value
// depend on which permutation a worker happened to compute first.
func canonicalize(rates []float64) (sorted []float64, key string) {
	sorted = make([]float64, len(rates))
	copy(sorted, rates)
	sort.Float64s(sorted)
	buf := make([]byte, 8*len(sorted))
	for i, r := range sorted {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(r))
	}
	return sorted, string(buf)
}

// lruCache is a mutex-guarded LRU map from multiset keys to JER values.
// The jury workloads this serves are read-mostly with high hit rates
// (greedy solvers re-evaluate the same sub-juries every round), so a
// single mutex around a map + intrusive list is simple and sufficient;
// shard it if profiles ever show contention.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	items map[string]*list.Element
	order *list.List // front = most recently used
}

type lruEntry struct {
	key string
	val float64
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		items: make(map[string]*list.Element, capacity),
		order: list.New(),
	}
}

func (c *lruCache) get(key string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return 0, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) put(key string, val float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len reports the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
