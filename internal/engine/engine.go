// Package engine is the concurrent batch-evaluation engine for Jury Error
// Rates: given many candidate juries, it shards the exact JER computations
// of Section 3.1 (Algorithm 1 DP and Algorithm 2 FFT convolution) across a
// bounded worker pool and memoizes results in an LRU cache keyed on the
// jury's error-rate multiset, so the same jury — however its members are
// ordered, and however many callers ask — is computed exactly once.
//
// The engine is the batch-scoring substrate the ROADMAP's production
// service needs: selection solvers, the experiment harnesses and the CLI
// binaries all evaluate thousands of candidate juries per request, and
// every one of those evaluations is independent. Workloads like "score
// each candidate answerer set for an incoming task" (cf. Mahmud et al.,
// Optimizing the Selection of Strangers) map directly onto EvaluateAll.
//
// Guarantees:
//
//   - Deterministic ordering: EvaluateAll(ctx, sets)[i] is always the
//     result for sets[i], regardless of worker count or scheduling.
//   - Deterministic values: with the memo disabled (or below its size
//     threshold) every jury is evaluated by the same deterministic
//     jer.Compute on the given member order, so values are byte-identical
//     to a serial loop. Memo-served values are computed on the canonical
//     (sorted) member order instead — jer.Compute's rounding is
//     order-sensitive in the last ulp, and canonicalizing makes the value
//     a pure function of the multiset, byte-stable across member orders,
//     worker counts, schedules and runs (a permuted duplicate would
//     otherwise be served whichever ordering was computed first).
//   - Bounded concurrency: at most Options.Workers JER evaluations run at
//     any moment (default runtime.GOMAXPROCS(0)).
//   - Single computation: concurrent requests for the same multiset are
//     coalesced (an in-flight computation is joined, not repeated), and
//     completed results are served from the LRU cache.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"juryselect/internal/jer"
	"juryselect/internal/pbdist"
)

// Options configures an Engine. The zero value selects sensible defaults.
type Options struct {
	// Workers bounds the number of concurrent JER evaluations. Zero or
	// negative selects runtime.GOMAXPROCS(0).
	Workers int
	// CacheSize bounds the number of memoized JER values. Zero selects
	// DefaultCacheSize; negative disables caching entirely.
	CacheSize int
	// Algorithm selects the JER evaluator (default jer.Auto: DP for small
	// juries, FFT convolution for large ones).
	Algorithm jer.Algorithm
	// CacheMinJurySize is the smallest jury the memo serves. Below it the
	// engine always computes directly: the O(n²) DP on a tiny jury is
	// cheaper than hashing the multiset key and taking the shard lock, so
	// memoizing would slow those juries down. Zero selects
	// DefaultCacheMinJurySize; negative memoizes every size.
	CacheMinJurySize int
}

// DefaultCacheMinJurySize is the memo threshold used when
// Options.CacheMinJurySize is 0. The measured crossover where a memo hit
// (multiset hash + shard-locked LRU lookup) beats recomputation sits near
// 16 jurors on current amd64 hardware.
const DefaultCacheMinJurySize = 16

// DefaultCacheSize is the memo capacity used when Options.CacheSize is 0.
// A cached entry costs ~64 bytes regardless of jury size (the key is a
// 64-bit multiset hash, not the rate vector), so even a fully populated
// default cache stays around 4 MB.
const DefaultCacheSize = 1 << 16

// Result is the outcome of evaluating one jury in a batch. Index is the
// position of the jury in the input slice, preserved so callers can rely
// on result ordering even though evaluation order is nondeterministic.
type Result struct {
	Index int
	JER   float64
	Err   error
}

// Stats reports engine counters since construction.
type Stats struct {
	// Evaluations counts JER computations actually performed.
	Evaluations int64
	// CacheHits counts requests served from the memo (including joins of
	// an in-flight computation).
	CacheHits int64
	// Inflight is the number of evaluation requests (Evaluate calls and
	// EvaluateAll batches) executing at the moment of the snapshot. A
	// serving layer uses it as the engine-side queue-depth signal for
	// load shedding and health reporting.
	Inflight int64
}

// Engine evaluates batches of juries concurrently. It is safe for
// concurrent use by multiple goroutines and is intended to be long-lived:
// construct one per service (or per experiment run) and share it so the
// memo cache accumulates across calls.
type Engine struct {
	workers  int
	algo     jer.Algorithm
	cacheMin int
	cache    *shardedCache // nil when caching is disabled

	evals    atomic.Int64
	hits     atomic.Int64
	inflight atomic.Int64
}

// call is one in-flight JER computation that late arrivals can join.
type call struct {
	done chan struct{}
	jer  float64
	err  error
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	size := opts.CacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	cacheMin := opts.CacheMinJurySize
	if cacheMin == 0 {
		cacheMin = DefaultCacheMinJurySize
	} else if cacheMin < 0 {
		cacheMin = 0
	}
	e := &Engine{
		workers:  w,
		algo:     opts.Algorithm,
		cacheMin: cacheMin,
	}
	if size > 0 {
		e.cache = newShardedCache(size)
	}
	return e
}

// Workers returns the concurrency bound the engine was built with.
func (e *Engine) Workers() int { return e.workers }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Evaluations: e.evals.Load(),
		CacheHits:   e.hits.Load(),
		Inflight:    e.inflight.Load(),
	}
}

// Evaluate returns the exact JER of one jury. Juries below the
// CacheMinJurySize threshold are computed directly on the given member
// order; memo-eligible juries are evaluated on the canonical (sorted)
// order and served from the cache when the multiset has been seen
// before, so their value is identical for every permutation. It never
// blocks on other juries — only on an identical in-flight computation.
func (e *Engine) Evaluate(rates []float64) (float64, error) {
	e.inflight.Add(1)
	defer e.inflight.Add(-1)
	s := scratchPool.Get().(*evalScratch)
	v, err := e.evaluate(rates, s)
	scratchPool.Put(s)
	return v, err
}

// EvaluateContext is Evaluate with the cancellation semantics EvaluateAll
// documents: a context that is already done means the evaluation is never
// started and ctx.Err() is returned; once the kernel is running it
// completes normally (JER kernels are not interruptible mid-computation).
// Single-evaluation callers on a request path — e.g. an HTTP handler with
// a per-request deadline — get the same contract as batch callers.
func (e *Engine) EvaluateContext(ctx context.Context, rates []float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return e.Evaluate(rates)
}

// evaluate is Evaluate on an explicit scratch, so batch workers amortize
// one scratch (kernel buffers + sort buffer) across their whole run.
// Rates are validated here, exactly once per request; every downstream
// computation uses the kernel's validated entry point.
func (e *Engine) evaluate(rates []float64, s *evalScratch) (float64, error) {
	if len(rates) == 0 {
		return 0, jer.ErrEmptyJury
	}
	if err := pbdist.ValidateRates(rates); err != nil {
		return 0, err
	}
	if e.cache == nil || len(rates) < e.cacheMin {
		e.evals.Add(1)
		return s.ev.ComputeValidated(rates, e.algo)
	}
	key := hashMultiset(rates)
	sh := e.cache.shard(key)

	// One shard-lock acquisition serves a cached hit, joins an identical
	// in-flight computation, or registers this call as its leader.
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		sh.order.MoveToFront(el)
		v := el.Value.(*lruEntry).val
		sh.mu.Unlock()
		e.hits.Add(1)
		return v, nil
	}
	if c, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		<-c.done
		if c.err == nil {
			e.hits.Add(1)
		}
		return c.jer, c.err
	}
	c := &call{done: make(chan struct{})}
	sh.inflight[key] = c
	sh.mu.Unlock()

	e.evals.Add(1)
	c.jer, c.err = s.ev.ComputeValidated(canonicalize(rates, s), e.algo)
	if c.err == nil {
		sh.put(key, c.jer)
	}
	sh.mu.Lock()
	delete(sh.inflight, key)
	sh.mu.Unlock()
	close(c.done)
	return c.jer, c.err
}

// maxChunk caps how many consecutive indices a worker claims at once.
// Chunked claiming amortizes work-queue synchronization, which matters
// when the per-jury cost is sub-microsecond (small juries on the DP
// path); chunkFor shrinks the chunk for small or few-item batches so a
// tail of expensive items (e.g. the monotonically growing prefixes of
// SelectParallelAltruistic) is not serialized onto one worker.
const maxChunk = 32

func chunkFor(items, workers int) int {
	c := items / (workers * 8)
	if c < 1 {
		return 1
	}
	if c > maxChunk {
		return maxChunk
	}
	return c
}

// EvaluateAll evaluates every jury in rateSets and returns one Result per
// input, in input order: out[i].Index == i and out[i].JER is the exact
// JER of rateSets[i]. Work is sharded across the engine's worker pool.
//
// Cancellation: when ctx is cancelled, juries not yet claimed by a worker
// are marked with ctx.Err(); juries already in flight complete normally.
// The call always returns a fully populated slice.
func (e *Engine) EvaluateAll(ctx context.Context, rateSets [][]float64) []Result {
	out := make([]Result, len(rateSets))
	if len(rateSets) == 0 {
		return out
	}
	e.inflight.Add(1)
	defer e.inflight.Add(-1)
	workers := e.workers
	if workers > len(rateSets) {
		workers = len(rateSets)
	}
	if workers <= 1 {
		s := scratchPool.Get().(*evalScratch)
		for i, rates := range rateSets {
			if err := ctx.Err(); err != nil {
				out[i] = Result{Index: i, Err: err}
				continue
			}
			v, err := e.evaluate(rates, s)
			out[i] = Result{Index: i, JER: v, Err: err}
		}
		scratchPool.Put(s)
		return out
	}

	chunk := int64(chunkFor(len(rateSets), workers))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Each worker owns one scratch (JER kernel + sort buffer) for
			// its whole lifetime, so the batch's steady-state allocation is
			// bounded by the worker count, not the jury count.
			s := scratchPool.Get().(*evalScratch)
			defer scratchPool.Put(s)
			for {
				lo := int(next.Add(chunk) - chunk)
				if lo >= len(rateSets) {
					return
				}
				hi := lo + int(chunk)
				if hi > len(rateSets) {
					hi = len(rateSets)
				}
				cancelled := ctx.Err()
				for i := lo; i < hi; i++ {
					if cancelled != nil {
						out[i] = Result{Index: i, Err: cancelled}
						continue
					}
					v, err := e.evaluate(rateSets[i], s)
					out[i] = Result{Index: i, JER: v, Err: err}
				}
			}
		}()
	}
	wg.Wait()
	return out
}
