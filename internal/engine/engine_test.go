package engine

import (
	"context"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"juryselect/internal/jer"
	"juryselect/internal/randx"
)

// randomJuries draws n juries of the given size (deterministically).
func randomJuries(n, size int, seed int64) [][]float64 {
	src := randx.New(seed)
	out := make([][]float64, n)
	for i := range out {
		out[i] = src.ErrorRates(size, 0.3, 0.15)
	}
	return out
}

// TestEvaluateAllMatchesSerial asserts the engine's values are
// byte-identical to a serial jer.Compute loop, for every worker count and
// with the cache both on and off.
func TestEvaluateAllMatchesSerial(t *testing.T) {
	juries := randomJuries(500, 11, 3)
	want := make([]float64, len(juries))
	for i, rates := range juries {
		v, err := jer.Compute(rates, jer.Auto)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	for _, workers := range []int{1, 2, 4, 16} {
		for _, cacheSize := range []int{-1, 0} {
			e := New(Options{Workers: workers, CacheSize: cacheSize})
			got := e.EvaluateAll(context.Background(), juries)
			if len(got) != len(juries) {
				t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), len(juries))
			}
			for i, r := range got {
				if r.Err != nil {
					t.Fatalf("workers=%d jury %d: %v", workers, i, r.Err)
				}
				if r.Index != i {
					t.Fatalf("workers=%d: result %d has Index %d", workers, i, r.Index)
				}
				if math.Float64bits(r.JER) != math.Float64bits(want[i]) {
					t.Fatalf("workers=%d cache=%d jury %d: JER %v != serial %v (not byte-identical)",
						workers, cacheSize, i, r.JER, want[i])
				}
			}
		}
	}
}

// TestEvaluateAllDeterministicAcrossRuns asserts two runs with different
// worker counts agree bit-for-bit. Run under -race this also exercises the
// worker pool for data races.
func TestEvaluateAllDeterministicAcrossRuns(t *testing.T) {
	juries := randomJuries(1000, 11, 7)
	a := New(Options{Workers: 8}).EvaluateAll(context.Background(), juries)
	b := New(Options{Workers: 3, CacheSize: -1}).EvaluateAll(context.Background(), juries)
	for i := range a {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("jury %d: errs %v / %v", i, a[i].Err, b[i].Err)
		}
		if math.Float64bits(a[i].JER) != math.Float64bits(b[i].JER) {
			t.Fatalf("jury %d: %v != %v across worker counts", i, a[i].JER, b[i].JER)
		}
	}
}

// TestEvaluateCacheHits asserts the memo collapses duplicate multisets:
// the same jury in any member order is computed once. CacheMinJurySize is
// lowered so the tiny test juries are eligible for the memo.
func TestEvaluateCacheHits(t *testing.T) {
	e := New(Options{Workers: 1, CacheMinJurySize: -1})
	rates := []float64{0.1, 0.2, 0.3}
	perm := []float64{0.3, 0.1, 0.2}
	v1, err := e.Evaluate(rates)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e.Evaluate(perm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(v1) != math.Float64bits(v2) {
		t.Fatalf("permuted jury changed JER: %v vs %v", v1, v2)
	}
	st := e.Stats()
	if st.Evaluations != 1 || st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want 1 evaluation and 1 hit", st)
	}
}

// TestEvaluateAllSharedEngineComputesOnce asserts a batch full of
// duplicates performs only as many evaluations as there are distinct
// multisets, even with many workers racing on the same keys.
func TestEvaluateAllSharedEngineComputesOnce(t *testing.T) {
	distinct := randomJuries(20, 21, 11) // ≥ DefaultCacheMinJurySize
	var juries [][]float64
	for rep := 0; rep < 50; rep++ {
		juries = append(juries, distinct...)
	}
	e := New(Options{Workers: 8})
	res := e.EvaluateAll(context.Background(), juries)
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if st := e.Stats(); st.Evaluations != int64(len(distinct)) {
		t.Fatalf("performed %d evaluations for %d distinct juries", st.Evaluations, len(distinct))
	}
}

// TestEvaluateConcurrentSameKey hammers Evaluate with one key from many
// goroutines; the in-flight coalescing must yield a single computation.
func TestEvaluateConcurrentSameKey(t *testing.T) {
	e := New(Options{Workers: 8, CacheMinJurySize: -1})
	rates := []float64{0.25, 0.35, 0.45}
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Evaluate(rates); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if st := e.Stats(); st.Evaluations != 1 {
		t.Fatalf("%d evaluations for one key, want 1", st.Evaluations)
	}
}

// TestSmallJuryCacheBypass asserts juries below the threshold are
// recomputed rather than memoized: for them the DP is cheaper than the
// lookup, so a repeat evaluation must count as an evaluation, not a hit.
func TestSmallJuryCacheBypass(t *testing.T) {
	e := New(Options{Workers: 1}) // default CacheMinJurySize
	rates := []float64{0.1, 0.2, 0.3}
	for i := 0; i < 2; i++ {
		if _, err := e.Evaluate(rates); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.Evaluations != 2 || st.CacheHits != 0 {
		t.Fatalf("stats = %+v, want 2 direct evaluations for a sub-threshold jury", st)
	}
}

// TestEvaluateAllInvalidRates asserts per-jury errors are reported in
// place without failing the rest of the batch.
func TestEvaluateAllInvalidRates(t *testing.T) {
	juries := [][]float64{{0.1, 0.2, 0.3}, {0.5, 1.5, 0.5}, {}, {0.4}}
	res := New(Options{Workers: 4}).EvaluateAll(context.Background(), juries)
	if res[0].Err != nil || res[3].Err != nil {
		t.Fatalf("valid juries errored: %v / %v", res[0].Err, res[3].Err)
	}
	if res[1].Err == nil {
		t.Fatal("out-of-range rate not reported")
	}
	if res[2].Err == nil {
		t.Fatal("empty jury not reported")
	}
}

// TestEvaluateAllCancellation asserts a cancelled context marks unclaimed
// juries with the context error while the slice stays fully populated.
func TestEvaluateAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	juries := randomJuries(200, 9, 13)
	res := New(Options{Workers: 4}).EvaluateAll(ctx, juries)
	if len(res) != len(juries) {
		t.Fatalf("got %d results, want %d", len(res), len(juries))
	}
	cancelled := 0
	for _, r := range res {
		if r.Err == context.Canceled {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no jury observed the cancelled context")
	}
}

// TestLRUEviction asserts a cache shard respects its capacity bound and
// evicts the least recently used multiset first.
func TestLRUEviction(t *testing.T) {
	var sh cacheShard
	sh.init(2)
	sh.put(1, 1)
	sh.put(2, 2)
	if _, ok := sh.get(1); !ok { // touch 1 → 2 becomes LRU
		t.Fatal("key 1 missing")
	}
	sh.put(3, 3)
	if n := sh.order.Len(); n != 2 {
		t.Fatalf("shard holds %d entries, cap 2", n)
	}
	if _, ok := sh.get(2); ok {
		t.Fatal("key 2 should have been evicted (least recently used)")
	}
	if _, ok := sh.get(1); !ok {
		t.Fatal("key 1 should have survived (recently used)")
	}
	if _, ok := sh.get(3); !ok {
		t.Fatal("key 3 should be present")
	}
}

// TestShardedCacheLen asserts the cross-shard entry count and per-shard
// capacity split: capacity divides across shards, never below one entry.
func TestShardedCacheLen(t *testing.T) {
	c := newShardedCache(numShards * 2)
	for i := range c.shards {
		if c.shards[i].cap != 2 {
			t.Fatalf("shard %d cap = %d, want 2", i, c.shards[i].cap)
		}
	}
	src := randx.New(23)
	for i := 0; i < 100; i++ {
		key := hashMultiset(src.ErrorRates(17, 0.3, 0.1))
		c.shard(key).put(key, float64(i))
	}
	if n := c.len(); n > numShards*2 {
		t.Fatalf("cache holds %d entries, cap %d", n, numShards*2)
	}
	if newShardedCache(1).shards[0].cap != 1 {
		t.Fatal("tiny capacity must still give each shard one entry")
	}
}

// TestCanonicalizeOrderInvariance asserts the memo key depends only on
// the multiset of rates — with no sorting on the request path — and that
// the canonical evaluation order is sorted.
func TestCanonicalizeOrderInvariance(t *testing.T) {
	k1 := hashMultiset([]float64{0.1, 0.2, 0.3})
	k2 := hashMultiset([]float64{0.3, 0.2, 0.1})
	if k1 != k2 {
		t.Fatal("key not order-invariant")
	}
	s1 := append([]float64(nil), canonicalize([]float64{0.3, 0.1, 0.2}, &evalScratch{})...)
	for i, want := range []float64{0.1, 0.2, 0.3} {
		if s1[i] != want {
			t.Fatalf("canonical order = %v, want sorted", s1)
		}
	}
	if hashMultiset([]float64{0.1, 0.2}) == hashMultiset([]float64{0.1, 0.2, 0.2}) {
		t.Fatal("multiset and its extension collided")
	}
	// The commutative reduction must still separate multisets whose plain
	// (unmixed) sums coincide: {a,a,b} vs {a,b,b} vs {a+b split differently}.
	if hashMultiset([]float64{0.1, 0.1, 0.4}) == hashMultiset([]float64{0.2, 0.2, 0.2}) {
		t.Fatal("equal-sum multisets collided")
	}
}

// TestHashMultisetDistribution asserts distinct multisets spread across
// all shards and collide on neither key nor shard in a modest sample — the
// property the sharded memo's contention win rests on.
func TestHashMultisetDistribution(t *testing.T) {
	src := randx.New(31)
	seen := make(map[uint64]bool)
	var perShard [numShards]int
	const samples = 4096
	for i := 0; i < samples; i++ {
		key := hashMultiset(src.ErrorRates(1+src.Intn(40), 0.3, 0.15))
		if seen[key] {
			t.Fatalf("sample %d: 64-bit key collision", i)
		}
		seen[key] = true
		perShard[key>>(64-shardBits)]++
	}
	for sh, n := range perShard {
		// Expected 256 per shard; a 4× imbalance would mean broken mixing.
		if n < samples/numShards/4 || n > samples/numShards*4 {
			t.Fatalf("shard %d got %d of %d keys — top bits poorly mixed", sh, n, samples)
		}
	}
}

// TestMemoValueIsCanonical asserts memo-served values are a pure function
// of the multiset: every permutation of a memo-eligible jury returns
// byte-identically jer.Compute of the sorted rates, no matter which
// permutation was evaluated first.
func TestMemoValueIsCanonical(t *testing.T) {
	rates := randx.New(5).ErrorRates(21, 0.3, 0.15)
	reversed := make([]float64, len(rates))
	for i, r := range rates {
		reversed[len(rates)-1-i] = r
	}
	sorted := canonicalize(rates, &evalScratch{})
	want, err := jer.Compute(sorted, jer.Auto)
	if err != nil {
		t.Fatal(err)
	}
	// Seed the memo with the *reversed* ordering first: the cached value
	// must still be the canonical one.
	e := New(Options{Workers: 4})
	for _, perm := range [][]float64{reversed, rates, sorted} {
		got, err := e.Evaluate(perm)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("permutation returned %v, want canonical %v", got, want)
		}
	}
	if st := e.Stats(); st.Evaluations != 1 || st.CacheHits != 2 {
		t.Fatalf("stats = %+v, want 1 evaluation + 2 hits", st)
	}
}

func TestEvaluateContext(t *testing.T) {
	e := New(Options{})
	rates := randomJuries(1, 9, 5)[0]
	want, err := e.Evaluate(rates)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.EvaluateContext(context.Background(), rates)
	if err != nil || got != want {
		t.Fatalf("EvaluateContext = %g/%v, want %g", got, err, want)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.EvaluateContext(ctx, rates); err != context.Canceled {
		t.Fatalf("cancelled context error = %v, want context.Canceled", err)
	}
}

func TestInflightStat(t *testing.T) {
	e := New(Options{Workers: 2})
	if got := e.Stats().Inflight; got != 0 {
		t.Fatalf("idle inflight = %d", got)
	}
	// Run one long evaluation in the background and poll the gauge up:
	// it must read 1 while the kernel runs and fall back to 0 after.
	// The jury is large enough that the kernel outlives the scheduler's
	// ~10ms preemption quantum, so on a single-CPU machine the polling
	// loop is guaranteed slices of the evaluation window; Gosched (not
	// Sleep) hands the processor over eagerly.
	rates := randomJuries(1, 40001, 7)[0]
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := e.Evaluate(rates); err != nil {
			t.Error(err)
		}
	}()
	sawInflight := false
	deadline := time.Now().Add(30 * time.Second)
	for !sawInflight && time.Now().Before(deadline) {
		sawInflight = e.Stats().Inflight == 1
		runtime.Gosched()
	}
	<-done
	if !sawInflight {
		t.Error("inflight gauge never rose during an evaluation")
	}
	if got := e.Stats().Inflight; got != 0 {
		t.Errorf("inflight after evaluation = %d, want 0", got)
	}
}
