// Package estimate implements the parameter-estimation stage of Section 4:
// turning ranking scores into individual error rates (§4.1.3) and account
// ages into payment requirements (§4.2). The outputs feed the jury
// selection solvers in internal/core.
package estimate

import (
	"errors"
	"math"
)

// DefaultAlpha and DefaultBeta are the normalization factors the paper uses
// in its experiments (§5.2: "normalized according to the equation in
// Section 4.1.3 with parameter α = 10, β = 10").
const (
	DefaultAlpha = 10
	DefaultBeta  = 10
)

// epsClamp keeps estimated error rates strictly inside (0,1) as
// Definition 4 requires: the lowest-scoring user would otherwise receive
// ε = β⁰ = 1 exactly.
const epsClamp = 1e-12

// ErrNoScores reports an empty score vector.
var ErrNoScores = errors.New("estimate: no scores")

// ErrDegenerateScores reports that max(score) == min(score), making the
// normalization denominator zero.
var ErrDegenerateScores = errors.New("estimate: all scores identical")

// ErrorRates maps quality scores to individual error rates with the
// normalization of §4.1.3:
//
//	ε_i = β^(−α·(score_i − min)/(max − min))
//
// High scores yield low error rates: the top scorer gets β^(−α) (1e−10 with
// the defaults) and the bottom scorer gets β⁰ = 1, clamped into (0,1). The
// power-law spread of micro-blog scores makes the exponent cover its full
// range, which §5.2 relies on.
func ErrorRates(scores []float64, alpha, beta float64) ([]float64, error) {
	if len(scores) == 0 {
		return nil, ErrNoScores
	}
	if alpha <= 0 || beta <= 1 {
		return nil, errors.New("estimate: require alpha > 0 and beta > 1")
	}
	lo, hi := scores[0], scores[0]
	for _, s := range scores[1:] {
		if math.IsNaN(s) {
			return nil, errors.New("estimate: NaN score")
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi == lo {
		return nil, ErrDegenerateScores
	}
	out := make([]float64, len(scores))
	for i, s := range scores {
		e := math.Pow(beta, -alpha*(s-lo)/(hi-lo))
		if e <= 0 {
			e = epsClamp
		}
		if e >= 1 {
			e = 1 - epsClamp
		}
		out[i] = e
	}
	return out, nil
}

// Requirements maps account ages to payment requirements with the
// normalization of §4.2:
//
//	r_i = (t_i − min)/(max − min)
//
// so the oldest (most experienced, least interested) account requires 1 and
// the newest requires 0. Identical ages degenerate to all-zero requirements
// (everyone equally, minimally demanding), which keeps the PayM pipeline
// total; the condition is reported via degenerate for callers that care.
func Requirements(ages []float64) (reqs []float64, degenerate bool, err error) {
	if len(ages) == 0 {
		return nil, false, errors.New("estimate: no ages")
	}
	lo, hi := ages[0], ages[0]
	for _, a := range ages[1:] {
		if math.IsNaN(a) {
			return nil, false, errors.New("estimate: NaN age")
		}
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	reqs = make([]float64, len(ages))
	if hi == lo {
		return reqs, true, nil
	}
	for i, a := range ages {
		reqs[i] = (a - lo) / (hi - lo)
	}
	return reqs, false, nil
}
