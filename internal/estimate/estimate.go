// Package estimate implements the parameter-estimation stage of Section 4:
// turning ranking scores into individual error rates (§4.1.3) and account
// ages into payment requirements (§4.2). The outputs feed the jury
// selection solvers in internal/core.
package estimate

import (
	"errors"
	"fmt"
	"math"
)

// DefaultAlpha and DefaultBeta are the normalization factors the paper uses
// in its experiments (§5.2: "normalized according to the equation in
// Section 4.1.3 with parameter α = 10, β = 10").
const (
	DefaultAlpha = 10
	DefaultBeta  = 10
)

// epsClamp keeps estimated error rates strictly inside (0,1) as
// Definition 4 requires: the lowest-scoring user would otherwise receive
// ε = β⁰ = 1 exactly.
const epsClamp = 1e-12

// ErrNoScores reports an empty score vector.
var ErrNoScores = errors.New("estimate: no scores")

// ErrDegenerateScores reports that max(score) == min(score), making the
// normalization denominator zero.
var ErrDegenerateScores = errors.New("estimate: all scores identical")

// ErrorRates maps quality scores to individual error rates with the
// normalization of §4.1.3:
//
//	ε_i = β^(−α·(score_i − min)/(max − min))
//
// High scores yield low error rates: the top scorer gets β^(−α) (1e−10 with
// the defaults) and the bottom scorer gets β⁰ = 1, clamped into (0,1). The
// power-law spread of micro-blog scores makes the exponent cover its full
// range, which §5.2 relies on.
func ErrorRates(scores []float64, alpha, beta float64) ([]float64, error) {
	if len(scores) == 0 {
		return nil, ErrNoScores
	}
	if alpha <= 0 || beta <= 1 {
		return nil, errors.New("estimate: require alpha > 0 and beta > 1")
	}
	lo, hi := scores[0], scores[0]
	for _, s := range scores[1:] {
		if math.IsNaN(s) {
			return nil, errors.New("estimate: NaN score")
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi == lo {
		return nil, ErrDegenerateScores
	}
	out := make([]float64, len(scores))
	for i, s := range scores {
		e := math.Pow(beta, -alpha*(s-lo)/(hi-lo))
		if e <= 0 {
			e = epsClamp
		}
		if e >= 1 {
			e = 1 - epsClamp
		}
		out[i] = e
	}
	return out, nil
}

// DefaultPriorWeight is the pseudo-count the live-update path assigns to a
// juror's current error rate when folding in newly observed votes: the
// prior counts as ten virtual tasks, so a handful of observations nudges
// the estimate while a long voting record dominates it.
const DefaultPriorWeight = 10

// PosteriorRate folds observed voting outcomes into a juror's error rate
// as a Beta–Bernoulli posterior mean:
//
//	ε' = (ε·w + wrong) / (w + total)
//
// where ε is the current (prior) estimate, w its pseudo-count weight, and
// wrong/total the newly observed outcomes (wrong = votes against the
// resolved truth). This is the incremental form of the §4.1.3 pipeline's
// output drifting under live evidence: applying batches one at a time
// with w growing by each batch's total is identical to one application
// over the concatenated record. The result is clamped strictly inside
// (0,1) as Definition 4 requires.
func PosteriorRate(prior, priorWeight float64, wrong, total int64) (float64, error) {
	if math.IsNaN(prior) || prior <= 0 || prior >= 1 {
		return 0, fmt.Errorf("estimate: prior rate %g outside (0,1)", prior)
	}
	if math.IsNaN(priorWeight) || priorWeight <= 0 {
		return 0, fmt.Errorf("estimate: prior weight %g must be positive", priorWeight)
	}
	if wrong < 0 || total < 0 || wrong > total {
		return 0, fmt.Errorf("estimate: invalid vote counts wrong=%d total=%d", wrong, total)
	}
	e := (prior*priorWeight + float64(wrong)) / (priorWeight + float64(total))
	if e <= 0 {
		e = epsClamp
	}
	if e >= 1 {
		e = 1 - epsClamp
	}
	return e, nil
}

// Requirements maps account ages to payment requirements with the
// normalization of §4.2:
//
//	r_i = (t_i − min)/(max − min)
//
// so the oldest (most experienced, least interested) account requires 1 and
// the newest requires 0. Identical ages degenerate to all-zero requirements
// (everyone equally, minimally demanding), which keeps the PayM pipeline
// total; the condition is reported via degenerate for callers that care.
func Requirements(ages []float64) (reqs []float64, degenerate bool, err error) {
	if len(ages) == 0 {
		return nil, false, errors.New("estimate: no ages")
	}
	lo, hi := ages[0], ages[0]
	for _, a := range ages[1:] {
		if math.IsNaN(a) {
			return nil, false, errors.New("estimate: NaN age")
		}
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	reqs = make([]float64, len(ages))
	if hi == lo {
		return reqs, true, nil
	}
	for i, a := range ages {
		reqs[i] = (a - lo) / (hi - lo)
	}
	return reqs, false, nil
}
