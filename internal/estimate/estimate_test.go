package estimate

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestErrorRatesEndpoints(t *testing.T) {
	// Top scorer gets β^(-α) = 1e-10; bottom scorer gets 1 clamped into
	// (0,1).
	rates, err := ErrorRates([]float64{0, 1}, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates[1]-1e-10) > 1e-15 {
		t.Errorf("top scorer ε = %g, want 1e-10", rates[1])
	}
	if rates[0] >= 1 || rates[0] < 0.999 {
		t.Errorf("bottom scorer ε = %g, want just below 1", rates[0])
	}
}

func TestErrorRatesMonotoneDecreasingInScore(t *testing.T) {
	scores := []float64{0.1, 0.5, 0.2, 0.9, 0.3}
	rates, err := ErrorRates(scores, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scores {
		for j := range scores {
			if scores[i] < scores[j] && rates[i] <= rates[j] {
				t.Fatalf("monotonicity violated: score %g→ε %g vs score %g→ε %g",
					scores[i], rates[i], scores[j], rates[j])
			}
		}
	}
}

func TestErrorRatesAlwaysInOpenUnitInterval(t *testing.T) {
	f := func(raw []float64) bool {
		scores := make([]float64, 0, len(raw))
		for _, s := range raw {
			if !math.IsNaN(s) && !math.IsInf(s, 0) {
				scores = append(scores, s)
			}
		}
		if len(scores) < 2 {
			return true
		}
		rates, err := ErrorRates(scores, DefaultAlpha, DefaultBeta)
		if errors.Is(err, ErrDegenerateScores) {
			return true
		}
		if err != nil {
			return false
		}
		for _, e := range rates {
			if e <= 0 || e >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorRatesValidation(t *testing.T) {
	if _, err := ErrorRates(nil, 10, 10); !errors.Is(err, ErrNoScores) {
		t.Errorf("err = %v, want ErrNoScores", err)
	}
	if _, err := ErrorRates([]float64{1, 1, 1}, 10, 10); !errors.Is(err, ErrDegenerateScores) {
		t.Errorf("err = %v, want ErrDegenerateScores", err)
	}
	if _, err := ErrorRates([]float64{0, 1}, -1, 10); err == nil {
		t.Error("expected error for alpha <= 0")
	}
	if _, err := ErrorRates([]float64{0, 1}, 10, 1); err == nil {
		t.Error("expected error for beta <= 1")
	}
	if _, err := ErrorRates([]float64{0, math.NaN()}, 10, 10); err == nil {
		t.Error("expected error for NaN score")
	}
}

func TestErrorRatesScaleInvariance(t *testing.T) {
	// The normalization uses (s-min)/(max-min), so affine rescaling of the
	// scores must not change the output.
	scores := []float64{0.2, 0.4, 0.7, 1.5}
	scaled := make([]float64, len(scores))
	for i, s := range scores {
		scaled[i] = 100*s + 42
	}
	a, err := ErrorRates(scores, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ErrorRates(scaled, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("index %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestRequirementsNormalization(t *testing.T) {
	reqs, degenerate, err := Requirements([]float64{100, 300, 200})
	if err != nil || degenerate {
		t.Fatalf("err=%v degenerate=%v", err, degenerate)
	}
	want := []float64{0, 1, 0.5}
	for i := range want {
		if math.Abs(reqs[i]-want[i]) > 1e-12 {
			t.Fatalf("reqs = %v, want %v", reqs, want)
		}
	}
}

func TestRequirementsDegenerate(t *testing.T) {
	reqs, degenerate, err := Requirements([]float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !degenerate {
		t.Fatal("expected degenerate flag")
	}
	for _, r := range reqs {
		if r != 0 {
			t.Fatalf("degenerate reqs = %v, want zeros", reqs)
		}
	}
}

func TestRequirementsValidation(t *testing.T) {
	if _, _, err := Requirements(nil); err == nil {
		t.Error("expected error for empty ages")
	}
	if _, _, err := Requirements([]float64{1, math.NaN()}); err == nil {
		t.Error("expected error for NaN age")
	}
}

func TestRequirementsRange(t *testing.T) {
	f := func(raw []float64) bool {
		ages := make([]float64, 0, len(raw))
		for _, a := range raw {
			if !math.IsNaN(a) && !math.IsInf(a, 0) {
				ages = append(ages, math.Abs(a))
			}
		}
		if len(ages) == 0 {
			return true
		}
		reqs, _, err := Requirements(ages)
		if err != nil {
			return false
		}
		for _, r := range reqs {
			if r < 0 || r > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
