package estimate

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestErrorRatesEndpoints(t *testing.T) {
	// Top scorer gets β^(-α) = 1e-10; bottom scorer gets 1 clamped into
	// (0,1).
	rates, err := ErrorRates([]float64{0, 1}, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates[1]-1e-10) > 1e-15 {
		t.Errorf("top scorer ε = %g, want 1e-10", rates[1])
	}
	if rates[0] >= 1 || rates[0] < 0.999 {
		t.Errorf("bottom scorer ε = %g, want just below 1", rates[0])
	}
}

func TestErrorRatesMonotoneDecreasingInScore(t *testing.T) {
	scores := []float64{0.1, 0.5, 0.2, 0.9, 0.3}
	rates, err := ErrorRates(scores, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	for i := range scores {
		for j := range scores {
			if scores[i] < scores[j] && rates[i] <= rates[j] {
				t.Fatalf("monotonicity violated: score %g→ε %g vs score %g→ε %g",
					scores[i], rates[i], scores[j], rates[j])
			}
		}
	}
}

func TestErrorRatesAlwaysInOpenUnitInterval(t *testing.T) {
	f := func(raw []float64) bool {
		scores := make([]float64, 0, len(raw))
		for _, s := range raw {
			if !math.IsNaN(s) && !math.IsInf(s, 0) {
				scores = append(scores, s)
			}
		}
		if len(scores) < 2 {
			return true
		}
		rates, err := ErrorRates(scores, DefaultAlpha, DefaultBeta)
		if errors.Is(err, ErrDegenerateScores) {
			return true
		}
		if err != nil {
			return false
		}
		for _, e := range rates {
			if e <= 0 || e >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorRatesValidation(t *testing.T) {
	if _, err := ErrorRates(nil, 10, 10); !errors.Is(err, ErrNoScores) {
		t.Errorf("err = %v, want ErrNoScores", err)
	}
	if _, err := ErrorRates([]float64{1, 1, 1}, 10, 10); !errors.Is(err, ErrDegenerateScores) {
		t.Errorf("err = %v, want ErrDegenerateScores", err)
	}
	if _, err := ErrorRates([]float64{0, 1}, -1, 10); err == nil {
		t.Error("expected error for alpha <= 0")
	}
	if _, err := ErrorRates([]float64{0, 1}, 10, 1); err == nil {
		t.Error("expected error for beta <= 1")
	}
	if _, err := ErrorRates([]float64{0, math.NaN()}, 10, 10); err == nil {
		t.Error("expected error for NaN score")
	}
}

func TestErrorRatesScaleInvariance(t *testing.T) {
	// The normalization uses (s-min)/(max-min), so affine rescaling of the
	// scores must not change the output.
	scores := []float64{0.2, 0.4, 0.7, 1.5}
	scaled := make([]float64, len(scores))
	for i, s := range scores {
		scaled[i] = 100*s + 42
	}
	a, err := ErrorRates(scores, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ErrorRates(scaled, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("index %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestRequirementsNormalization(t *testing.T) {
	reqs, degenerate, err := Requirements([]float64{100, 300, 200})
	if err != nil || degenerate {
		t.Fatalf("err=%v degenerate=%v", err, degenerate)
	}
	want := []float64{0, 1, 0.5}
	for i := range want {
		if math.Abs(reqs[i]-want[i]) > 1e-12 {
			t.Fatalf("reqs = %v, want %v", reqs, want)
		}
	}
}

func TestRequirementsDegenerate(t *testing.T) {
	reqs, degenerate, err := Requirements([]float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !degenerate {
		t.Fatal("expected degenerate flag")
	}
	for _, r := range reqs {
		if r != 0 {
			t.Fatalf("degenerate reqs = %v, want zeros", reqs)
		}
	}
}

func TestRequirementsValidation(t *testing.T) {
	if _, _, err := Requirements(nil); err == nil {
		t.Error("expected error for empty ages")
	}
	if _, _, err := Requirements([]float64{1, math.NaN()}); err == nil {
		t.Error("expected error for NaN age")
	}
}

func TestRequirementsRange(t *testing.T) {
	f := func(raw []float64) bool {
		ages := make([]float64, 0, len(raw))
		for _, a := range raw {
			if !math.IsNaN(a) && !math.IsInf(a, 0) {
				ages = append(ages, math.Abs(a))
			}
		}
		if len(ages) == 0 {
			return true
		}
		reqs, _, err := Requirements(ages)
		if err != nil {
			return false
		}
		for _, r := range reqs {
			if r < 0 || r > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPosteriorRateNoEvidenceKeepsPrior(t *testing.T) {
	got, err := PosteriorRate(0.3, DefaultPriorWeight, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.3 {
		t.Errorf("posterior with no votes = %g, want prior 0.3", got)
	}
}

func TestPosteriorRateMovesTowardEvidence(t *testing.T) {
	// A juror estimated at 0.3 who then answers 100 tasks all correctly
	// must end up well below 0.3 but strictly above 0.
	down, err := PosteriorRate(0.3, DefaultPriorWeight, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if down >= 0.3 || down <= 0 {
		t.Errorf("all-correct posterior = %g, want in (0, 0.3)", down)
	}
	// All wrong: toward 1, never reaching it.
	up, err := PosteriorRate(0.3, DefaultPriorWeight, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if up <= 0.3 || up >= 1 {
		t.Errorf("all-wrong posterior = %g, want in (0.3, 1)", up)
	}
	// Exact value: (0.3*10 + 100) / (10 + 100).
	if want := 103.0 / 110.0; math.Abs(up-want) > 1e-15 {
		t.Errorf("posterior = %g, want %g", up, want)
	}
}

func TestPosteriorRateBatchingIsAssociative(t *testing.T) {
	// Folding two batches sequentially (weight growing by each batch's
	// total) equals folding the concatenated record once.
	const w = DefaultPriorWeight
	step1, err := PosteriorRate(0.25, w, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	step2, err := PosteriorRate(step1, w+10, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	once, err := PosteriorRate(0.25, w, 8, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(step2-once) > 1e-15 {
		t.Errorf("sequential %g vs one-shot %g", step2, once)
	}
}

func TestPosteriorRateValidation(t *testing.T) {
	cases := []struct {
		name         string
		prior, w     float64
		wrong, total int64
	}{
		{"prior zero", 0, 10, 1, 2},
		{"prior one", 1, 10, 1, 2},
		{"prior NaN", math.NaN(), 10, 1, 2},
		{"weight zero", 0.3, 0, 1, 2},
		{"weight NaN", 0.3, math.NaN(), 1, 2},
		{"negative wrong", 0.3, 10, -1, 2},
		{"negative total", 0.3, 10, 0, -2},
		{"wrong exceeds total", 0.3, 10, 3, 2},
	}
	for _, tc := range cases {
		if _, err := PosteriorRate(tc.prior, tc.w, tc.wrong, tc.total); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestPosteriorRateStaysInOpenUnitInterval(t *testing.T) {
	f := func(prior float64, wrong, total uint16) bool {
		p := math.Mod(math.Abs(prior), 1)
		if p == 0 {
			p = 0.5
		}
		w, tot := int64(wrong), int64(total)
		if w > tot {
			w, tot = tot, w
		}
		got, err := PosteriorRate(p, DefaultPriorWeight, w, tot)
		return err == nil && got > 0 && got < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
