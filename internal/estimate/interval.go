package estimate

import (
	"fmt"
	"math"
)

// DefaultCredibleLevel is the credible-interval mass reported alongside
// posterior error rates (pool GET responses, simulator reports).
const DefaultCredibleLevel = 0.95

// CredibleInterval returns the central credible interval of a Beta
// posterior summarized by its mean and pseudo-count weight: the posterior
// after PosteriorRate has mean rate and total weight n (prior weight plus
// observed votes), i.e. Beta(a, b) with a = rate·n and b = (1−rate)·n.
// The interval is [Q((1−level)/2), Q((1+level)/2)] of that distribution,
// so level 0.95 yields the central 95% interval.
//
// The pool store retains only the posterior mean and the accumulated vote
// record, but the pair (mean, weight) determines the Beta parameters
// exactly: applying PosteriorRate batches never changes a+b beyond adding
// each batch's total, so callers can reconstruct the uncertainty of any
// live estimate as CredibleInterval(ε, DefaultPriorWeight + TotalVotes,
// DefaultCredibleLevel).
func CredibleInterval(rate, weight, level float64) (lo, hi float64, err error) {
	if math.IsNaN(rate) || rate <= 0 || rate >= 1 {
		return 0, 0, fmt.Errorf("estimate: rate %g outside (0,1)", rate)
	}
	if math.IsNaN(weight) || weight <= 0 || math.IsInf(weight, 0) {
		return 0, 0, fmt.Errorf("estimate: weight %g must be positive and finite", weight)
	}
	if math.IsNaN(level) || level <= 0 || level >= 1 {
		return 0, 0, fmt.Errorf("estimate: level %g outside (0,1)", level)
	}
	a := rate * weight
	b := (1 - rate) * weight
	tail := (1 - level) / 2
	lo = betaQuantile(a, b, tail)
	hi = betaQuantile(a, b, 1-tail)
	return lo, hi, nil
}

// betaQuantile inverts the regularized incomplete beta function I_x(a,b):
// the unique x in (0,1) with I_x(a,b) = p. It runs safeguarded Newton —
// each step is clamped into the bisection bracket maintained alongside,
// so convergence is unconditional like bisection but quadratic near the
// root (≈6–10 I_x evaluations instead of bisection's ~52, which is what
// keeps first-GET interval computation cheap on large pools). The
// algorithm is a fixed, branch-deterministic float computation: the same
// inputs always produce the same float64, as the deterministic-metrics
// contract of internal/simul requires.
func betaQuantile(a, b, p float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	lnBeta := la + lb - lab
	lo, hi := 0.0, 1.0
	x := a / (a + b) // posterior mean: a good start for central quantiles
	for i := 0; i < 100; i++ {
		f := regIncBeta(a, b, x) - p
		if f == 0 {
			return x
		}
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		// Newton step off the Beta density, safeguarded into the bracket.
		pdf := math.Exp((a-1)*math.Log(x) + (b-1)*math.Log(1-x) - lnBeta)
		next := x - f/pdf
		if !(next > lo && next < hi) || pdf == 0 || math.IsInf(pdf, 0) {
			next = lo + (hi-lo)/2
		}
		if next == x || hi-lo <= math.Nextafter(lo, hi)-lo {
			break
		}
		x = next
	}
	return x
}

// regIncBeta is the regularized incomplete beta function I_x(a,b),
// computed with the continued-fraction expansion (Abramowitz & Stegun
// 26.5.8, evaluated by the modified Lentz method). The symmetry
// I_x(a,b) = 1 − I_{1−x}(b,a) keeps the fraction in its rapidly
// converging region x < (a+1)/(a+b+2).
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// ln B(a,b) via lgamma; sign is +1 for positive arguments.
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	front := math.Exp(lab - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method (cf. Numerical Recipes §6.4).
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 1e-15
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		num := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + num*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		num = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + num*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
