package estimate

import (
	"math"
	"testing"
)

func TestCredibleIntervalBracketsMean(t *testing.T) {
	for _, tc := range []struct{ rate, weight float64 }{
		{0.3, 10},
		{0.1, 10},
		{0.05, 500},
		{0.45, 3},
		{0.5, 2}, // uniform Beta(1,1)
	} {
		lo, hi, err := CredibleInterval(tc.rate, tc.weight, 0.95)
		if err != nil {
			t.Fatalf("rate=%g weight=%g: %v", tc.rate, tc.weight, err)
		}
		if !(0 <= lo && lo < hi && hi <= 1) {
			t.Errorf("rate=%g weight=%g: interval [%g, %g] not ordered inside [0,1]", tc.rate, tc.weight, lo, hi)
		}
		// The central interval of a unimodal-or-uniform Beta contains the
		// mean for every parameterization used by the pool store.
		if lo > tc.rate || hi < tc.rate {
			t.Errorf("rate=%g weight=%g: interval [%g, %g] excludes the mean", tc.rate, tc.weight, lo, hi)
		}
	}
}

func TestCredibleIntervalNarrowsWithEvidence(t *testing.T) {
	// As votes accumulate at a fixed posterior mean, the interval shrinks:
	// that is the uncertainty signal the pool GET response exposes.
	prev := math.Inf(1)
	for _, weight := range []float64{10, 50, 250, 1250} {
		lo, hi, err := CredibleInterval(0.2, weight, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if width := hi - lo; width >= prev {
			t.Errorf("weight %g: width %g did not shrink from %g", weight, hi-lo, prev)
		} else {
			prev = width
		}
	}
}

func TestCredibleIntervalKnownValues(t *testing.T) {
	// Beta(1,1) (rate 0.5, weight 2) is uniform: quantiles are the
	// probabilities themselves.
	lo, hi, err := CredibleInterval(0.5, 2, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-0.05) > 1e-9 || math.Abs(hi-0.95) > 1e-9 {
		t.Errorf("uniform 90%% interval = [%g, %g], want [0.05, 0.95]", lo, hi)
	}
	// Beta(2,2) (rate 0.5, weight 4): CDF is 3x²−2x³; the 2.5% quantile
	// solves 3x²−2x³ = 0.025 → x ≈ 0.094299...; reference value from the
	// closed form.
	lo, hi, err = CredibleInterval(0.5, 4, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	cdf := func(x float64) float64 { return 3*x*x - 2*x*x*x }
	if math.Abs(cdf(lo)-0.025) > 1e-9 || math.Abs(cdf(hi)-0.975) > 1e-9 {
		t.Errorf("Beta(2,2) interval [%g, %g]: CDF at ends = %g, %g", lo, hi, cdf(lo), cdf(hi))
	}
}

func TestCredibleIntervalMatchesPosteriorRateChain(t *testing.T) {
	// Reconstruct the Beta parameters after a PosteriorRate chain: the
	// interval from (mean, prior+total) must equal the interval computed
	// from the directly-updated Beta parameters.
	rate := 0.3
	weight := float64(DefaultPriorWeight)
	var wrong, total int64 = 7, 40
	updated, err := PosteriorRate(rate, weight, wrong, total)
	if err != nil {
		t.Fatal(err)
	}
	lo1, hi1, err := CredibleInterval(updated, weight+float64(total), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// Direct construction: a = ε0·w + wrong, b = (1−ε0)·w + right.
	a := rate*weight + float64(wrong)
	b := (1-rate)*weight + float64(total-wrong)
	lo2 := betaQuantile(a, b, 0.025)
	hi2 := betaQuantile(a, b, 0.975)
	if math.Abs(lo1-lo2) > 1e-12 || math.Abs(hi1-hi2) > 1e-12 {
		t.Errorf("chain interval [%g, %g] != direct interval [%g, %g]", lo1, hi1, lo2, hi2)
	}
}

func TestCredibleIntervalDeterministic(t *testing.T) {
	lo1, hi1, _ := CredibleInterval(0.273, 37.5, 0.95)
	lo2, hi2, _ := CredibleInterval(0.273, 37.5, 0.95)
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatalf("interval not bit-stable: [%v,%v] vs [%v,%v]", lo1, hi1, lo2, hi2)
	}
}

func TestCredibleIntervalRejectsBadInputs(t *testing.T) {
	for _, tc := range []struct{ rate, weight, level float64 }{
		{0, 10, 0.95},
		{1, 10, 0.95},
		{math.NaN(), 10, 0.95},
		{0.3, 0, 0.95},
		{0.3, -1, 0.95},
		{0.3, math.Inf(1), 0.95},
		{0.3, 10, 0},
		{0.3, 10, 1},
	} {
		if _, _, err := CredibleInterval(tc.rate, tc.weight, tc.level); err == nil {
			t.Errorf("CredibleInterval(%g, %g, %g): expected error", tc.rate, tc.weight, tc.level)
		}
	}
}

func TestRegIncBetaAgainstClosedForms(t *testing.T) {
	// I_x(1,1) = x; I_x(2,1) = x²; I_x(1,2) = 1−(1−x)².
	for _, x := range []float64{0.01, 0.2, 0.5, 0.8, 0.99} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%g(1,1) = %g, want %g", x, got, x)
		}
		if got, want := regIncBeta(2, 1, x), x*x; math.Abs(got-want) > 1e-12 {
			t.Errorf("I_%g(2,1) = %g, want %g", x, got, want)
		}
		if got, want := regIncBeta(1, 2, x), 1-(1-x)*(1-x); math.Abs(got-want) > 1e-12 {
			t.Errorf("I_%g(1,2) = %g, want %g", x, got, want)
		}
	}
}
