package estimate

import (
	"errors"
	"fmt"
	"math"
)

// Strategy selects how ranking scores map to individual error rates. The
// paper's §4 frames estimation as pluggable; Exponential is its §4.1.3
// formula, Linear is the simplest alternative measure, included so the
// sensitivity of downstream selection to the normalization choice can be
// studied (the exponential map concentrates reliability in the score head,
// the linear map spreads it evenly).
type Strategy int

const (
	// Exponential is ε = β^(−α(s−min)/(max−min)) — the paper's §4.1.3.
	Exponential Strategy = iota
	// Linear is ε = 1 − (s−min)/(max−min), clamped into (0,1): the top
	// scorer approaches 0, the bottom scorer approaches 1, linearly.
	Linear
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Exponential:
		return "exponential"
	case Linear:
		return "linear"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ErrorRatesWith maps scores to error rates with the chosen strategy.
// Alpha and beta are only used by Exponential; pass the defaults otherwise.
func ErrorRatesWith(strategy Strategy, scores []float64, alpha, beta float64) ([]float64, error) {
	switch strategy {
	case Exponential:
		return ErrorRates(scores, alpha, beta)
	case Linear:
		return linearErrorRates(scores)
	default:
		return nil, fmt.Errorf("estimate: unknown strategy %d", int(strategy))
	}
}

func linearErrorRates(scores []float64) ([]float64, error) {
	if len(scores) == 0 {
		return nil, ErrNoScores
	}
	lo, hi := scores[0], scores[0]
	for _, s := range scores[1:] {
		if math.IsNaN(s) {
			return nil, errors.New("estimate: NaN score")
		}
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if hi == lo {
		return nil, ErrDegenerateScores
	}
	out := make([]float64, len(scores))
	for i, s := range scores {
		e := 1 - (s-lo)/(hi-lo)
		if e <= 0 {
			e = epsClamp
		}
		if e >= 1 {
			e = 1 - epsClamp
		}
		out[i] = e
	}
	return out, nil
}
