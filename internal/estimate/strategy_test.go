package estimate

import (
	"errors"
	"math"
	"testing"
)

func TestLinearEndpoints(t *testing.T) {
	rates, err := ErrorRatesWith(Linear, []float64{0, 0.5, 1}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rates[2] >= 1e-9 || rates[2] <= 0 {
		t.Errorf("top scorer ε = %g, want just above 0", rates[2])
	}
	if math.Abs(rates[1]-0.5) > 1e-12 {
		t.Errorf("mid scorer ε = %g, want 0.5", rates[1])
	}
	if rates[0] <= 0.999 || rates[0] >= 1 {
		t.Errorf("bottom scorer ε = %g, want just below 1", rates[0])
	}
}

func TestLinearVsExponentialOrdering(t *testing.T) {
	// Both strategies must preserve the score ordering; the exponential
	// map must be at least as optimistic on the head (lower ε for the top
	// scorer than linear's) — that is its entire purpose.
	scores := []float64{0.1, 0.3, 0.8, 0.95}
	lin, err := ErrorRatesWith(Linear, scores, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := ErrorRatesWith(Exponential, scores, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(scores); i++ {
		if lin[i] >= lin[i-1] || exp[i] >= exp[i-1] {
			t.Fatalf("ordering broken: lin=%v exp=%v", lin, exp)
		}
	}
	// Second-best scorer: exponential is far more optimistic.
	if exp[2] >= lin[2] {
		t.Errorf("exponential ε %g not below linear ε %g for a head user", exp[2], lin[2])
	}
}

func TestErrorRatesWithValidation(t *testing.T) {
	if _, err := ErrorRatesWith(Strategy(42), []float64{0, 1}, 10, 10); err == nil {
		t.Error("expected error for unknown strategy")
	}
	if _, err := ErrorRatesWith(Linear, nil, 0, 0); !errors.Is(err, ErrNoScores) {
		t.Error("expected ErrNoScores")
	}
	if _, err := ErrorRatesWith(Linear, []float64{3, 3}, 0, 0); !errors.Is(err, ErrDegenerateScores) {
		t.Error("expected ErrDegenerateScores")
	}
	if _, err := ErrorRatesWith(Linear, []float64{0, math.NaN()}, 0, 0); err == nil {
		t.Error("expected error for NaN")
	}
}

func TestStrategyString(t *testing.T) {
	if Exponential.String() != "exponential" || Linear.String() != "linear" {
		t.Error("strategy names")
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Error("unknown strategy name")
	}
}

func TestLinearAlwaysInOpenInterval(t *testing.T) {
	scores := []float64{-5, 0, 2.5, 1e9}
	rates, err := ErrorRatesWith(Linear, scores, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range rates {
		if e <= 0 || e >= 1 {
			t.Errorf("rates[%d] = %g escaped (0,1)", i, e)
		}
	}
}
