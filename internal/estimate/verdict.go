package estimate

import (
	"fmt"
	"math"
)

// DefaultTargetConfidence is the posterior confidence at which a
// decision task closes early when the requester does not specify one.
const DefaultTargetConfidence = 0.9

// VerdictPosterior accumulates juror votes on one binary decision task
// into the exact posterior probability of the positive answer. Under the
// paper's model (Definition 4: juror i votes against the latent truth
// independently with probability ε_i) and a uniform prior over the two
// answers, Bayes' rule gives
//
//	P(yes | votes) ∝ ∏_{i voted yes} (1−ε_i) · ∏_{i voted no} ε_i
//
// which the accumulator maintains in log-odds form: each vote adds
// ±log((1−ε_i)/ε_i), the juror's evidence weight. A reliable juror
// (small ε) moves the posterior a lot; a near-coin-flip juror barely
// moves it. This is the sequential, pay-as-you-go view of the same
// likelihood the JER kernel integrates over all vote patterns: instead
// of pre-paying the whole jury and trusting the majority, the task
// closes as soon as the posterior confidence max(P, 1−P) crosses its
// target — spending only as many votes as the evidence requires.
//
// Observations are folded in O(1) with a fixed floating-point order, so
// a WAL replay that re-observes the same votes reproduces the posterior
// bit for bit. The zero value is ready to use (uniform prior, log-odds
// zero).
type VerdictPosterior struct {
	logOdds float64
	votes   int
}

// RestoreVerdictPosterior rebuilds an accumulator from persisted state
// (a snapshot's log-odds and vote count). Re-observing the same votes in
// the same order would yield the identical value; restoring the raw
// state skips the replay while preserving bit-identity even if the
// caller no longer knows the observation order.
func RestoreVerdictPosterior(logOdds float64, votes int) VerdictPosterior {
	return VerdictPosterior{logOdds: logOdds, votes: votes}
}

// Observe folds one vote by a juror with the given estimated error rate.
// The rate must lie strictly inside (0,1).
func (v *VerdictPosterior) Observe(voteYes bool, errorRate float64) error {
	if math.IsNaN(errorRate) || errorRate <= 0 || errorRate >= 1 {
		return fmt.Errorf("estimate: vote error rate %g outside (0,1)", errorRate)
	}
	w := math.Log((1 - errorRate) / errorRate)
	if voteYes {
		v.logOdds += w
	} else {
		v.logOdds -= w
	}
	v.votes++
	return nil
}

// Votes returns the number of observations folded in.
func (v *VerdictPosterior) Votes() int { return v.votes }

// LogOdds returns log(P(yes|votes) / P(no|votes)).
func (v *VerdictPosterior) LogOdds() float64 { return v.logOdds }

// PYes returns the posterior probability of the positive answer.
func (v *VerdictPosterior) PYes() float64 {
	return 1 / (1 + math.Exp(-v.logOdds))
}

// Verdict returns the maximum-a-posteriori answer and its confidence
// max(P, 1−P) ∈ [0.5, 1). With zero votes (or perfectly balanced
// evidence) it returns (true, 0.5): callers distinguish a real verdict
// from an uninformative one via Decisive.
func (v *VerdictPosterior) Verdict() (yes bool, confidence float64) {
	p := v.PYes()
	if p >= 0.5 {
		return true, p
	}
	return false, 1 - p
}

// Decisive reports whether the evidence favours one answer at all
// (non-zero log-odds): the condition for emitting a verdict when a task
// runs out of jurors before reaching its confidence target.
func (v *VerdictPosterior) Decisive() bool { return v.logOdds != 0 }
