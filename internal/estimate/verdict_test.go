package estimate

import (
	"math"
	"testing"
)

// bruteForcePYes computes P(yes | votes) directly from the product-form
// likelihood the log-odds accumulator is supposed to maintain.
func bruteForcePYes(votes []bool, rates []float64) float64 {
	yes, no := 1.0, 1.0
	for i, v := range votes {
		if v {
			yes *= 1 - rates[i]
			no *= rates[i]
		} else {
			yes *= rates[i]
			no *= 1 - rates[i]
		}
	}
	return yes / (yes + no)
}

func TestVerdictPosteriorMatchesBruteForce(t *testing.T) {
	votes := []bool{true, true, false, true, false, false, true}
	rates := []float64{0.1, 0.3, 0.2, 0.45, 0.05, 0.4, 0.25}
	var p VerdictPosterior
	for i, v := range votes {
		if err := p.Observe(v, rates[i]); err != nil {
			t.Fatal(err)
		}
	}
	want := bruteForcePYes(votes, rates)
	if got := p.PYes(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PYes = %g, brute force %g", got, want)
	}
	if p.Votes() != len(votes) {
		t.Fatalf("votes = %d, want %d", p.Votes(), len(votes))
	}
}

func TestVerdictPosteriorZeroValue(t *testing.T) {
	var p VerdictPosterior
	if got := p.PYes(); got != 0.5 {
		t.Fatalf("uniform prior PYes = %g, want 0.5", got)
	}
	yes, conf := p.Verdict()
	if !yes || conf != 0.5 {
		t.Fatalf("zero-vote verdict = (%v, %g), want (true, 0.5)", yes, conf)
	}
	if p.Decisive() {
		t.Fatal("zero votes reported decisive")
	}
}

func TestVerdictPosteriorSymmetry(t *testing.T) {
	// A yes and a no from equally reliable jurors cancel exactly.
	var p VerdictPosterior
	if err := p.Observe(true, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(false, 0.2); err != nil {
		t.Fatal(err)
	}
	if p.LogOdds() != 0 {
		t.Fatalf("cancelling votes left log-odds %g", p.LogOdds())
	}
	if p.Decisive() {
		t.Fatal("balanced evidence reported decisive")
	}
}

func TestVerdictPosteriorReliabilityWeighting(t *testing.T) {
	// One reliable yes outweighs one unreliable no.
	var p VerdictPosterior
	if err := p.Observe(true, 0.05); err != nil {
		t.Fatal(err)
	}
	if err := p.Observe(false, 0.45); err != nil {
		t.Fatal(err)
	}
	yes, conf := p.Verdict()
	if !yes || conf <= 0.5 {
		t.Fatalf("verdict = (%v, %g), want yes with confidence > 0.5", yes, conf)
	}
	// A near-coin-flip juror moves the posterior less than a sharp one.
	var sharp, dull VerdictPosterior
	sharp.Observe(true, 0.1) //nolint:errcheck
	dull.Observe(true, 0.49) //nolint:errcheck
	if sharp.PYes() <= dull.PYes() {
		t.Fatalf("sharp juror (%g) moved posterior less than dull (%g)", sharp.PYes(), dull.PYes())
	}
}

func TestVerdictPosteriorRejectsBadRates(t *testing.T) {
	var p VerdictPosterior
	for _, rate := range []float64{0, 1, -0.1, 1.5, math.NaN()} {
		if err := p.Observe(true, rate); err == nil {
			t.Errorf("rate %g accepted", rate)
		}
	}
	if p.Votes() != 0 {
		t.Fatalf("rejected observations counted: %d", p.Votes())
	}
}

func TestVerdictPosteriorDeterministicOrder(t *testing.T) {
	// Same vote sequence ⇒ bit-identical posterior (the WAL replay
	// contract). Different orders may differ in the last ulp, which is
	// exactly why replay re-observes in the recorded order.
	run := func() float64 {
		var p VerdictPosterior
		rates := []float64{0.31, 0.12, 0.44, 0.27}
		for i, r := range rates {
			if err := p.Observe(i%2 == 0, r); err != nil {
				t.Fatal(err)
			}
		}
		return p.PYes()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same sequence produced %g then %g", a, b)
	}
}
