package experiments

import (
	"fmt"
	"math"
	"time"

	"juryselect/internal/core"
	"juryselect/internal/jer"
	"juryselect/internal/randx"
	"juryselect/internal/tablefmt"
	"juryselect/internal/voting"
)

func init() {
	register("ablation-jer", runAblationJER)
	register("ablation-inc", runAblationInc)
	register("ablation-mc", runAblationMC)
	register("ablation-baselines", runAblationBaselines)
}

// runAblationJER measures the per-call latency of the three JER evaluators
// across jury sizes, exposing the DP/CBA crossover that motivates
// Algorithm 2 and the Auto policy.
func runAblationJER(cfg Config) (*Result, error) {
	src := randx.New(cfg.Seed).Split("ablation-jer")
	tb := tablefmt.New("Ablation: JER evaluator latency",
		"n", "dp (ms)", "cba (ms)", "agree")
	dpSeries := Series{Name: "DP"}
	cbaSeries := Series{Name: "CBA"}
	for _, n := range cfg.AblationJERSizes {
		rates := src.ErrorRates(n, 0.3, 0.2)
		reps := 1
		if n < 1000 {
			reps = 20
		}
		tDP, vDP, err := timeJER(rates, jer.DPAlgo, reps)
		if err != nil {
			return nil, err
		}
		tCBA, vCBA, err := timeJER(rates, jer.CBAAlgo, reps)
		if err != nil {
			return nil, err
		}
		agree := math.Abs(vDP-vCBA) < 1e-8
		dpSeries.Points = append(dpSeries.Points, Point{float64(n), tDP.Seconds() * 1e3})
		cbaSeries.Points = append(cbaSeries.Points, Point{float64(n), tCBA.Seconds() * 1e3})
		tb.AddRow(n, tDP.Seconds()*1e3, tCBA.Seconds()*1e3, fmt.Sprint(agree))
		if !agree {
			return nil, fmt.Errorf("evaluators disagree at n=%d: dp=%g cba=%g", n, vDP, vCBA)
		}
	}
	return &Result{
		ID:     "ablation-jer",
		Title:  "Ablation — DP vs CBA single-evaluation latency",
		Series: []Series{dpSeries, cbaSeries},
		Table:  tb,
		Notes: []string{
			"DP is O(n²); CBA is O(n log² n). The crossover justifies jer.Auto's policy",
			"of routing small juries to DP and large ones to CBA.",
		},
	}, nil
}

func timeJER(rates []float64, algo jer.Algorithm, reps int) (time.Duration, float64, error) {
	var v float64
	var err error
	start := time.Now()
	for i := 0; i < reps; i++ {
		v, err = jer.Compute(rates, algo)
		if err != nil {
			return 0, 0, err
		}
	}
	return time.Since(start) / time.Duration(reps), v, nil
}

// runAblationInc compares the paper-faithful AltrALG (fresh evaluation per
// prefix size) against the incremental sweep that carries the wrong-vote
// distribution across sizes. Same optimum, different total complexity.
func runAblationInc(cfg Config) (*Result, error) {
	src := randx.New(cfg.Seed).Split("ablation-inc")
	tb := tablefmt.New("Ablation: faithful vs incremental AltrALG",
		"N", "faithful (s)", "incremental (s)", "speedup", "same result")
	faithful := Series{Name: "faithful"}
	incremental := Series{Name: "incremental"}
	for _, n := range cfg.EffSizes {
		// ε concentrated near 0.45 keeps the optimal JER in a comfortably
		// representable range; with very reliable pools the optimum drops
		// below the FFT noise floor (~1e-16) and the argmin becomes
		// float-precision noise, which would make the equality check
		// vacuous. See the note below.
		cands := synthJurors(src.Split(fmt.Sprint(n)), n, 0.45, 0.05, 0, 0)
		start := time.Now()
		sf, err := core.SelectAltr(cands, core.AltrOptions{Algorithm: jer.CBAAlgo})
		if err != nil {
			return nil, err
		}
		tf := time.Since(start)
		start = time.Now()
		si, err := core.SelectAltr(cands, core.AltrOptions{Incremental: true})
		if err != nil {
			return nil, err
		}
		ti := time.Since(start)
		same := math.Abs(sf.JER-si.JER) < 1e-9
		if !same {
			return nil, fmt.Errorf("variants diverged at N=%d: %g/%d vs %g/%d",
				n, sf.JER, sf.Size(), si.JER, si.Size())
		}
		speedup := tf.Seconds() / math.Max(ti.Seconds(), 1e-9)
		faithful.Points = append(faithful.Points, Point{float64(n), tf.Seconds()})
		incremental.Points = append(incremental.Points, Point{float64(n), ti.Seconds()})
		tb.AddRow(n, tf.Seconds(), ti.Seconds(), speedup, fmt.Sprint(same))
	}
	return &Result{
		ID:     "ablation-inc",
		Title:  "Ablation — incremental prefix sweep vs per-size recomputation",
		Series: []Series{faithful, incremental},
		Table:  tb,
		Notes: []string{
			"The incremental sweep is not in the paper; it exploits that AltrALG only",
			"ever evaluates prefixes of one fixed ordering. Optimal JER values agree to",
			"1e-9; when many prefix sizes are indistinguishable at float precision the",
			"argmin size may differ between evaluators while the value does not.",
		},
	}, nil
}

// runAblationMC validates the analytic JER against empirical majority-vote
// simulation (law of large numbers).
func runAblationMC(cfg Config) (*Result, error) {
	src := randx.New(cfg.Seed).Split("ablation-mc")
	tb := tablefmt.New("Ablation: analytic JER vs voting simulation",
		"n", "analytic", "simulated", "|diff|", "3-sigma band")
	series := Series{Name: "abs-error"}
	for _, n := range []int{3, 15, 101} {
		rates := src.ErrorRates(n, 0.35, 0.1)
		analytic, err := jer.Compute(rates, jer.Auto)
		if err != nil {
			return nil, err
		}
		sim := voting.NewSimulator(src.Split(fmt.Sprintf("sim%d", n)))
		out, err := sim.Run(rates, cfg.MonteCarloTrials)
		if err != nil {
			return nil, err
		}
		diff := math.Abs(out.ErrorRate() - analytic)
		band := 3 * math.Sqrt(analytic*(1-analytic)/float64(cfg.MonteCarloTrials))
		series.Points = append(series.Points, Point{float64(n), diff})
		tb.AddRow(n, analytic, out.ErrorRate(), diff, band)
		if diff > band+1e-3 {
			return nil, fmt.Errorf("simulation diverged at n=%d: analytic %g vs simulated %g",
				n, analytic, out.ErrorRate())
		}
	}
	return &Result{
		ID:     "ablation-mc",
		Title:  "Ablation — Monte-Carlo validation of the JER model",
		Series: []Series{series},
		Table:  tb,
		Notes: []string{
			"Empirical majority-voting failure frequency must fall inside the",
			"three-sigma band of the analytic JER; the driver fails otherwise.",
		},
	}, nil
}

// runAblationBaselines quantifies what each design decision buys: AltrALG
// vs fixed-size top-k vs random under AltrM, and PayALG vs cheapest-first
// vs random under PayM.
func runAblationBaselines(cfg Config) (*Result, error) {
	src := randx.New(cfg.Seed).Split("ablation-baselines")
	n := cfg.BudgetN
	cands := synthJurors(src, n, 0.3, 0.15, 0.3, 0.2)
	tb := tablefmt.New("Ablation: solver vs baselines", "strategy", "model", "JER", "size", "cost")

	altr, err := core.SelectAltr(cands, core.AltrOptions{Incremental: true})
	if err != nil {
		return nil, err
	}
	tb.AddRow("AltrALG", "AltrM", altr.JER, altr.Size(), altr.Cost)

	k := altr.Size()
	topk, err := core.SelectTopK(cands, 3)
	if err != nil {
		return nil, err
	}
	tb.AddRow("top-3 fixed", "AltrM", topk.JER, topk.Size(), topk.Cost)

	rnd, err := core.SelectRandom(cands, minOdd(k, 21), 0, src.Split("rand"))
	if err != nil {
		return nil, err
	}
	tb.AddRow("random", "AltrM", rnd.JER, rnd.Size(), rnd.Cost)

	budget := 2.0
	pay, err := core.SelectPay(cands, core.PayOptions{Budget: budget})
	if err != nil {
		return nil, err
	}
	tb.AddRow("PayALG", "PayM B=2", pay.JER, pay.Size(), pay.Cost)

	cheap, err := core.SelectCheapestFirst(cands, budget)
	if err != nil {
		return nil, err
	}
	tb.AddRow("cheapest-first", "PayM B=2", cheap.JER, cheap.Size(), cheap.Cost)

	if altr.JER > topk.JER+1e-12 || altr.JER > rnd.JER+1e-12 {
		return nil, fmt.Errorf("AltrALG (%g) lost to a baseline (top-k %g, random %g)",
			altr.JER, topk.JER, rnd.JER)
	}
	return &Result{
		ID:    "ablation-baselines",
		Title: "Ablation — solvers vs naive baselines",
		Table: tb,
		Notes: []string{
			"AltrALG is provably optimal under AltrM, so it must dominate every baseline.",
			"PayALG usually beats cheapest-first because admission requires a JER improvement.",
		},
	}, nil
}

func minOdd(a, b int) int {
	m := a
	if b < m {
		m = b
	}
	if m%2 == 0 {
		m--
	}
	if m < 1 {
		m = 1
	}
	return m
}
