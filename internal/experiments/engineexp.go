package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"juryselect/internal/engine"
	"juryselect/internal/jer"
	"juryselect/internal/randx"
	"juryselect/internal/tablefmt"
)

func init() {
	register("ablation-engine", runAblationEngine)
}

// runAblationEngine measures the batch JER engine against the serial loop
// it replaces, on the production-shaped workload of DESIGN.md §7: score
// BatchJuries candidate juries of BatchJurySize members, where only
// BatchDistinct error-rate multisets are distinct (incoming tasks reuse
// popular candidate sets, so the memo matters). Three passes are timed:
//
//   - serial: one jer.Compute call per jury, no engine.
//   - parallel: engine worker pool, memo disabled.
//   - cached: engine worker pool, memo warm from a priming pass.
//
// The driver fails unless the parallel pass is byte-identical to the
// serial loop and the cached pass agrees to 1e-12 relative (memo-served
// values are computed in canonical sorted order) — the determinism
// contract the engine documents.
func runAblationEngine(cfg Config) (*Result, error) {
	src := randx.New(cfg.Seed).Split("ablation-engine")
	distinct := make([][]float64, cfg.BatchDistinct)
	for i := range distinct {
		distinct[i] = src.ErrorRates(cfg.BatchJurySize, 0.3, 0.15)
	}
	juries := make([][]float64, cfg.BatchJuries)
	for i := range juries {
		juries[i] = distinct[i%len(distinct)]
	}

	serialStart := time.Now()
	serial := make([]float64, len(juries))
	for i, rates := range juries {
		v, err := jer.Compute(rates, jer.Auto)
		if err != nil {
			return nil, err
		}
		serial[i] = v
	}
	tSerial := time.Since(serialStart)

	ctx := context.Background()
	parEng := engine.New(engine.Options{Workers: cfg.Workers, CacheSize: -1})
	parStart := time.Now()
	parallel := parEng.EvaluateAll(ctx, juries)
	tParallel := time.Since(parStart)

	cacheEng := engine.New(engine.Options{Workers: cfg.Workers})
	cacheEng.EvaluateAll(ctx, juries) // priming pass fills the memo
	cacheStart := time.Now()
	cached := cacheEng.EvaluateAll(ctx, juries)
	tCached := time.Since(cacheStart)

	for i := range juries {
		// Cache disabled ⇒ same member order as the serial loop ⇒ byte-
		// identical. Memo-served values are computed in canonical sorted
		// order, so they may differ from the serial loop's ordering by
		// float round-off; 1e-12 relative is far above any legitimate
		// ulp drift and far below any algorithmic divergence.
		if parallel[i].Err != nil {
			return nil, parallel[i].Err
		}
		if math.Float64bits(parallel[i].JER) != math.Float64bits(serial[i]) {
			return nil, fmt.Errorf("ablation-engine: jury %d: parallel %v != serial %v",
				i, parallel[i].JER, serial[i])
		}
		if cached[i].Err != nil {
			return nil, cached[i].Err
		}
		if diff := math.Abs(cached[i].JER - serial[i]); diff > 1e-12*math.Max(serial[i], 1e-300) {
			return nil, fmt.Errorf("ablation-engine: jury %d: cached %v != serial %v",
				i, cached[i].JER, serial[i])
		}
	}

	tb := tablefmt.New("Ablation: batch JER engine vs serial loop",
		"mode", "juries", "size", "seconds", "speedup")
	base := tSerial.Seconds()
	den := func(t time.Duration) float64 { return base / math.Max(t.Seconds(), 1e-9) }
	tb.AddRow("serial", cfg.BatchJuries, cfg.BatchJurySize, tSerial.Seconds(), 1.0)
	tb.AddRow("parallel", cfg.BatchJuries, cfg.BatchJurySize, tParallel.Seconds(), den(tParallel))
	tb.AddRow("cached", cfg.BatchJuries, cfg.BatchJurySize, tCached.Seconds(), den(tCached))

	st := cacheEng.Stats()
	return &Result{
		ID:    "ablation-engine",
		Title: "Ablation — parallel/cached batch JER scoring vs the serial loop",
		Table: tb,
		Notes: []string{
			fmt.Sprintf("%d workers (GOMAXPROCS %d); %d distinct multisets among %d juries.",
				parEng.Workers(), runtime.GOMAXPROCS(0), cfg.BatchDistinct, cfg.BatchJuries),
			fmt.Sprintf("Cached engine: %d exact computations, %d memo hits across both passes.",
				st.Evaluations, st.CacheHits),
			"Parallel values byte-identical to the serial loop; cached values (canonical",
			"member order) agree to 1e-12 relative.",
		},
	}, nil
}
