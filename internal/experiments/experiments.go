// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section 5), plus the ablation studies listed in
// DESIGN.md. Every driver is deterministic given Config.Seed and returns a
// structured Result that cmd/jurybench renders and bench_test.go exercises.
//
// The drivers intentionally mirror the paper's workload descriptions:
// synthetic individual error rates and requirements are drawn from
// truncated normal distributions with the stated means and deviations, and
// the micro-blog experiments run the full §4 pipeline (corpus → retweet
// graph → HITS/PageRank → ε,r estimation) on the synthetic corpus described
// in DESIGN.md §4.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"juryselect/internal/tablefmt"
)

// Config carries every workload parameter so benchmarks can shrink the
// paper-scale defaults. Zero values select DefaultConfig's entries.
type Config struct {
	// Seed drives all synthetic randomness.
	Seed int64

	// Fig 3(a): jury-size traits on AltrM.
	TraitN      int       // candidate pool size (paper: 1000)
	TraitMeans  []float64 // means of ε (paper: 0.1..0.9)
	TraitSigmas []float64 // deviation parameter of ε (paper legend: 0.1..0.3)

	// Fig 3(b): AltrALG efficiency.
	EffSizes  []int     // candidate counts (paper: 2000..6000)
	EffSigmas []float64 // ε deviations (paper: 0.05, 0.1)
	EffMean   float64   // ε mean (paper: 0.1)

	// Fig 3(c)/(d): PayM traits.
	BudgetN       int       // candidate pool size (paper: 1000)
	BudgetEpsMean []float64 // ε means (paper legends m(0.3)..m(0.6))
	Budgets       []float64 // budget sweep (paper: 0.1..0.5)
	ReqMean       float64   // requirement mean (see DESIGN.md §5)
	ReqSigma      float64   // requirement deviation

	// Fig 3(e)/(f): APPX vs OPT on PayM.
	OptN        int       // candidate pool (paper: 22)
	OptBudgets  []float64 // budgets (figures: 0.5..1.5 step 0.1)
	OptEpsMean  float64   // ε mean (paper: 0.2)
	OptEpsSigma float64   // ε deviation (paper: 0.05)
	OptReqMean  float64   // requirement mean (paper: 0.05)
	OptReqSigma float64   // requirement deviation (paper: 0.2)

	// Fig 3(g)/(h)/(i): micro-blog pipeline.
	TwitterUsers       int       // corpus population (scaled stand-in for 689,050)
	TwitterTweets      int       // corpus size
	TwitterPool        int       // ranked pool retained (paper: 5000)
	TwitterTopNs       []int     // fig 3(g) candidate sweep (paper: 1000..5000)
	TwitterCandidates  int       // fig 3(h)/(i) candidate count (paper: 20)
	TwitterBudgetFracs []float64 // fig 3(h) budget fractions of M (paper: 0.1%..20%)
	TwitterSizeBudgets []float64 // fig 3(i) absolute budgets

	// Ablations.
	AblationJERSizes []int // jury sizes for the DP/CBA crossover
	MonteCarloTrials int   // voting-simulation sample size

	// Workers bounds the engine worker pool used by the parallel drivers
	// (exact enumeration shards, batch JER scoring). Zero selects
	// runtime.GOMAXPROCS(0); results are identical for every value.
	Workers int

	// Batch-engine ablation: the batch-scoring workload of ablation-engine.
	BatchJuries   int // number of candidate juries scored per pass
	BatchJurySize int // jurors per candidate jury
	BatchDistinct int // distinct jury multisets (the rest repeat, for the memo)
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		TraitN:      1000,
		TraitMeans:  sweep(0.1, 0.9, 0.05),
		TraitSigmas: []float64{0.1, 0.2, 0.3},

		EffSizes:  []int{2000, 3000, 4000, 5000, 6000},
		EffSigmas: []float64{0.05, 0.1},
		EffMean:   0.1,

		BudgetN:       1000,
		BudgetEpsMean: []float64{0.3, 0.4, 0.5, 0.6},
		Budgets:       sweep(0.1, 0.5, 0.1),
		ReqMean:       0.5,
		ReqSigma:      0.2,

		OptN:        22,
		OptBudgets:  sweep(0.5, 1.5, 0.1),
		OptEpsMean:  0.2,
		OptEpsSigma: 0.05,
		OptReqMean:  0.05,
		OptReqSigma: 0.2,

		TwitterUsers:       20000,
		TwitterTweets:      120000,
		TwitterPool:        5000,
		TwitterTopNs:       []int{1000, 2000, 3000, 4000, 5000},
		TwitterCandidates:  20,
		TwitterBudgetFracs: []float64{0.001, 0.01, 0.1, 0.2},
		TwitterSizeBudgets: sweep(0.1, 1.0, 0.1),

		AblationJERSizes: []int{63, 255, 1023, 4095},
		MonteCarloTrials: 200000,

		BatchJuries:   2000,
		BatchJurySize: 51,
		BatchDistinct: 200,
	}
}

// QuickConfig returns a shrunk configuration for benchmarks and CI: the
// same sweeps with small candidate pools, so every driver finishes in
// fractions of a second while still exercising identical code paths.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.TraitN = 150
	cfg.TraitMeans = sweep(0.1, 0.9, 0.1)
	cfg.TraitSigmas = []float64{0.1, 0.3}
	cfg.EffSizes = []int{200, 400}
	cfg.EffSigmas = []float64{0.1}
	cfg.BudgetN = 200
	cfg.OptN = 14
	cfg.OptBudgets = sweep(0.5, 1.5, 0.25)
	cfg.TwitterUsers = 2000
	cfg.TwitterTweets = 10000
	cfg.TwitterPool = 500
	cfg.TwitterTopNs = []int{200, 500}
	cfg.TwitterCandidates = 12
	cfg.AblationJERSizes = []int{63, 255}
	cfg.MonteCarloTrials = 20000
	cfg.BatchJuries = 400
	cfg.BatchDistinct = 50
	return cfg
}

// withDefaults back-fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.TraitN == 0 {
		c.TraitN = d.TraitN
	}
	if len(c.TraitMeans) == 0 {
		c.TraitMeans = d.TraitMeans
	}
	if len(c.TraitSigmas) == 0 {
		c.TraitSigmas = d.TraitSigmas
	}
	if len(c.EffSizes) == 0 {
		c.EffSizes = d.EffSizes
	}
	if len(c.EffSigmas) == 0 {
		c.EffSigmas = d.EffSigmas
	}
	if c.EffMean == 0 {
		c.EffMean = d.EffMean
	}
	if c.BudgetN == 0 {
		c.BudgetN = d.BudgetN
	}
	if len(c.BudgetEpsMean) == 0 {
		c.BudgetEpsMean = d.BudgetEpsMean
	}
	if len(c.Budgets) == 0 {
		c.Budgets = d.Budgets
	}
	if c.ReqMean == 0 {
		c.ReqMean = d.ReqMean
	}
	if c.ReqSigma == 0 {
		c.ReqSigma = d.ReqSigma
	}
	if c.OptN == 0 {
		c.OptN = d.OptN
	}
	if len(c.OptBudgets) == 0 {
		c.OptBudgets = d.OptBudgets
	}
	if c.OptEpsMean == 0 {
		c.OptEpsMean = d.OptEpsMean
	}
	if c.OptEpsSigma == 0 {
		c.OptEpsSigma = d.OptEpsSigma
	}
	if c.OptReqMean == 0 {
		c.OptReqMean = d.OptReqMean
	}
	if c.OptReqSigma == 0 {
		c.OptReqSigma = d.OptReqSigma
	}
	if c.TwitterUsers == 0 {
		c.TwitterUsers = d.TwitterUsers
	}
	if c.TwitterTweets == 0 {
		c.TwitterTweets = d.TwitterTweets
	}
	if c.TwitterPool == 0 {
		c.TwitterPool = d.TwitterPool
	}
	if len(c.TwitterTopNs) == 0 {
		c.TwitterTopNs = d.TwitterTopNs
	}
	if c.TwitterCandidates == 0 {
		c.TwitterCandidates = d.TwitterCandidates
	}
	if len(c.TwitterBudgetFracs) == 0 {
		c.TwitterBudgetFracs = d.TwitterBudgetFracs
	}
	if len(c.TwitterSizeBudgets) == 0 {
		c.TwitterSizeBudgets = d.TwitterSizeBudgets
	}
	if len(c.AblationJERSizes) == 0 {
		c.AblationJERSizes = d.AblationJERSizes
	}
	if c.MonteCarloTrials == 0 {
		c.MonteCarloTrials = d.MonteCarloTrials
	}
	// c.Workers stays as given: zero means "use every core".
	if c.BatchJuries == 0 {
		c.BatchJuries = d.BatchJuries
	}
	if c.BatchJurySize == 0 {
		c.BatchJurySize = d.BatchJurySize
	}
	if c.BatchDistinct == 0 {
		c.BatchDistinct = d.BatchDistinct
	}
	return c
}

// sweep returns lo, lo+step, ..., up to and including hi (within rounding).
func sweep(lo, hi, step float64) []float64 {
	var out []float64
	for x := lo; x <= hi+step/2; x += step {
		out = append(out, round4(x))
	}
	return out
}

func round4(x float64) float64 {
	return float64(int64(x*10000+0.5)) / 10000
}

// Point is one (x, y) sample of a figure series.
type Point struct {
	X float64
	Y float64
}

// Series is a named curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Result is the structured outcome of one experiment driver.
type Result struct {
	// ID matches the experiment index of DESIGN.md (e.g. "fig3a").
	ID string
	// Title is the paper artifact reproduced.
	Title string
	// Series holds the figure curves, if the artifact is a figure.
	Series []Series
	// Table holds the rendered rows, mirroring what the paper reports.
	Table *tablefmt.Table
	// Notes records observations (e.g. paper-vs-measured commentary).
	Notes []string
	// Elapsed is the driver's wall-clock runtime.
	Elapsed time.Duration
}

// Driver runs one experiment.
type Driver func(cfg Config) (*Result, error)

// registry maps experiment IDs to drivers, populated in each driver file.
var registry = map[string]Driver{}

func register(id string, d Driver) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate driver " + id)
	}
	registry[id] = d
}

// List returns all registered experiment IDs, sorted.
func List() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the driver registered under id.
func Run(id string, cfg Config) (*Result, error) {
	d, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, List())
	}
	start := time.Now()
	res, err := d(cfg.withDefaults())
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
