package experiments

import (
	"strings"
	"testing"

	"juryselect/internal/core"
)

func TestListContainsAllExperiments(t *testing.T) {
	want := []string{
		"table2", "fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f",
		"fig3g", "fig3h", "fig3i",
		"ablation-jer", "ablation-inc", "ablation-mc", "ablation-baselines", "ablation-pair", "ablation-seeds", "ablation-wmv",
		"ablation-engine",
	}
	have := map[string]bool{}
	for _, id := range List() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", QuickConfig()); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestTable2Exact(t *testing.T) {
	res, err := Run("table2", QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Table.String()
	for _, want := range []string{"0.1740", "0.0720", "0.0704", "0.0852", "0.1038"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 output missing %s:\n%s", want, out)
		}
	}
}

func TestFig3aShape(t *testing.T) {
	cfg := QuickConfig()
	res, err := Run("fig3a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != len(cfg.TraitSigmas) {
		t.Fatalf("series count %d, want %d", len(res.Series), len(cfg.TraitSigmas))
	}
	// Qualitative check from the paper: for means well below 0.5 the
	// optimal jury is large; for means well above 0.5 it collapses.
	for _, s := range res.Series {
		var low, high float64
		for _, p := range s.Points {
			if p.X <= 0.2 {
				low = p.Y
			}
			if p.X >= 0.8 {
				high = p.Y
			}
		}
		if low <= high {
			t.Errorf("series %s: size at mean 0.2 (%g) not above size at mean 0.8 (%g)",
				s.Name, low, high)
		}
		if high > 9 {
			t.Errorf("series %s: error-prone regime should use tiny juries, got %g", s.Name, high)
		}
	}
}

func TestFig3bProducesTimings(t *testing.T) {
	cfg := QuickConfig()
	res, err := Run("fig3b", cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSeries := 2 * len(cfg.EffSigmas)
	if len(res.Series) != wantSeries {
		t.Fatalf("series count %d, want %d", len(res.Series), wantSeries)
	}
	for _, s := range res.Series {
		if len(s.Points) != len(cfg.EffSizes) {
			t.Fatalf("series %s: %d points, want %d", s.Name, len(s.Points), len(cfg.EffSizes))
		}
		for _, p := range s.Points {
			if p.Y < 0 {
				t.Fatalf("negative timing %g", p.Y)
			}
		}
	}
}

func TestFig3cCostWithinBudget(t *testing.T) {
	cfg := QuickConfig()
	res, err := Run("fig3c", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Y > p.X+1e-9 {
				t.Errorf("series %s: cost %g exceeds budget %g", s.Name, p.Y, p.X)
			}
		}
	}
}

func TestFig3dJERDecreasesWithBudget(t *testing.T) {
	cfg := QuickConfig()
	res, err := Run("fig3d", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// JER at the largest budget must not exceed JER at the smallest:
	// more budget can only widen PayALG's feasible choices given the same
	// ε·r ordering. (Not strictly monotone point-to-point for a greedy,
	// but the endpoints ordering is stable in practice.)
	for _, s := range res.Series {
		first := s.Points[0].Y
		last := s.Points[len(s.Points)-1].Y
		if last > first+1e-9 {
			t.Errorf("series %s: JER grew from %g to %g as budget rose", s.Name, first, last)
		}
	}
}

func TestFig3eAndFRelations(t *testing.T) {
	cfg := QuickConfig()
	resF, err := Run("fig3f", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var appx, opt *Series
	for i := range resF.Series {
		switch resF.Series[i].Name {
		case "APPX":
			appx = &resF.Series[i]
		case "OPT":
			opt = &resF.Series[i]
		}
	}
	if appx == nil || opt == nil {
		t.Fatal("missing APPX/OPT series")
	}
	for i := range appx.Points {
		if opt.Points[i].Y > appx.Points[i].Y+1e-9 {
			t.Errorf("budget %g: OPT JER %g exceeds APPX JER %g",
				appx.Points[i].X, opt.Points[i].Y, appx.Points[i].Y)
		}
	}
	resE, err := Run("fig3e", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range resE.Series {
		for _, p := range s.Points {
			if p.Y > p.X+1e-9 {
				t.Errorf("series %s: cost %g exceeds budget %g", s.Name, p.Y, p.X)
			}
		}
	}
}

func TestFig3gSeries(t *testing.T) {
	cfg := QuickConfig()
	res, err := Run("fig3g", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series count %d, want 4 (HT, HT-B, PR, PR-B)", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != len(cfg.TwitterTopNs) {
			t.Fatalf("series %s has %d points, want %d", s.Name, len(s.Points), len(cfg.TwitterTopNs))
		}
	}
}

func TestFig3hMetricsInRange(t *testing.T) {
	cfg := QuickConfig()
	res, err := Run("fig3h", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 1 {
				t.Errorf("series %s: metric %g outside [0,1]", s.Name, p.Y)
			}
		}
	}
}

func TestFig3iPaySizeNeverBelowOne(t *testing.T) {
	cfg := QuickConfig()
	res, err := Run("fig3i", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Y < 1 {
				t.Errorf("series %s: jury size %g < 1", s.Name, p.Y)
			}
			if p.Y != float64(int(p.Y)) || int(p.Y)%2 != 1 {
				t.Errorf("series %s: jury size %g not an odd integer", s.Name, p.Y)
			}
		}
	}
}

func TestAblations(t *testing.T) {
	cfg := QuickConfig()
	for _, id := range []string{"ablation-jer", "ablation-inc", "ablation-mc", "ablation-baselines", "ablation-pair", "ablation-seeds", "ablation-wmv", "ablation-engine"} {
		res, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.Table == nil || res.Table.String() == "" {
			t.Errorf("%s: empty table", id)
		}
	}
}

func TestBuildTwitterDataPools(t *testing.T) {
	data, err := BuildTwitterData(1000, 5000, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if data.PoolSize() != 300 {
		t.Fatalf("pool size %d, want 300", data.PoolSize())
	}
	hits, err := data.HITS(300)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := data.PageRank(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 300 || len(pr) != 300 {
		t.Fatalf("pool sizes: HITS %d PR %d, want 300", len(hits), len(pr))
	}
	// Pools must be score-descending ⇒ ε ascending.
	for i := 1; i < len(hits); i++ {
		if hits[i].ErrorRate < hits[i-1].ErrorRate {
			t.Fatal("HITS pool not ε-ascending")
		}
	}
	// Re-normalizing within a smaller subset must keep a zero-cost juror
	// present, which keeps PayM feasible at any budget (used by fig3h).
	sub, err := data.HITS(20)
	if err != nil {
		t.Fatal(err)
	}
	minCost := sub[0].Cost
	for _, j := range sub {
		if j.Cost < minCost {
			minCost = j.Cost
		}
	}
	if minCost != 0 {
		t.Errorf("subset min cost %g, want 0 (newest account is free)", minCost)
	}
	for _, pool := range [][]core.Juror{hits, pr} {
		for _, j := range pool {
			if j.ErrorRate <= 0 || j.ErrorRate >= 1 {
				t.Fatalf("juror %s: ε %g out of range", j.ID, j.ErrorRate)
			}
			if j.Cost < 0 || j.Cost > 1 {
				t.Fatalf("juror %s: cost %g out of range", j.ID, j.Cost)
			}
		}
	}
	if data.GraphStats.Nodes == 0 || data.GraphStats.Edges == 0 {
		t.Fatal("empty retweet graph")
	}
	// Power-law check: p99 in-degree far above median.
	if data.GraphStats.InDegreeP99 <= data.GraphStats.InDegreeP50 {
		t.Errorf("in-degree distribution not skewed: %+v", data.GraphStats)
	}
}

func TestConfigWithDefaultsFillsEverything(t *testing.T) {
	got := (Config{}).withDefaults()
	want := DefaultConfig()
	if got.TraitN != want.TraitN || len(got.TraitMeans) != len(want.TraitMeans) {
		t.Errorf("withDefaults incomplete: %+v", got)
	}
	if got.MonteCarloTrials != want.MonteCarloTrials {
		t.Errorf("MonteCarloTrials not defaulted")
	}
}

func TestSweepHelper(t *testing.T) {
	got := sweep(0.1, 0.5, 0.1)
	want := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	if len(got) != len(want) {
		t.Fatalf("sweep = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", got, want)
		}
	}
}
