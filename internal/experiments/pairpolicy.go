package experiments

import (
	"errors"
	"fmt"

	"juryselect/internal/core"
	"juryselect/internal/randx"
	"juryselect/internal/tablefmt"
)

func init() {
	register("ablation-pair", runAblationPair)
}

// runAblationPair quantifies the pair-slot policies of PayALG against the
// exact optimum on random small markets: the literal blocking policy of
// Algorithm 4 versus the sliding extension (DESIGN.md). For each market we
// record which policy reaches the optimum and the mean JER regret of each.
func runAblationPair(cfg Config) (*Result, error) {
	src := randx.New(cfg.Seed).Split("ablation-pair")
	const markets = 60
	n := cfg.OptN
	if n > core.MaxOptCandidates {
		n = core.MaxOptCandidates
	}
	var (
		blockOpt, slideOpt, bothOpt int
		blockRegret, slideRegret    float64
		blockWins, slideWins        int
		counted                     int
	)
	for trial := 0; trial < markets; trial++ {
		tsrc := src.Split(fmt.Sprint(trial))
		cands := make([]core.Juror, n)
		for i := range cands {
			cands[i] = core.Juror{
				ID:        fmt.Sprintf("m%d-j%d", trial, i),
				ErrorRate: tsrc.TruncNormal(0.3, 0.15, 0, 1),
				Cost:      tsrc.TruncNormal(0.2, 0.25, 0, 2),
			}
		}
		budget := 0.3 + tsrc.Float64()*1.2
		opt, err := core.SelectOptParallel(cands, budget, cfg.Workers)
		if errors.Is(err, core.ErrNoFeasibleJury) {
			continue
		}
		if err != nil {
			return nil, err
		}
		block, err := core.SelectPay(cands, core.PayOptions{Budget: budget})
		if err != nil {
			return nil, err
		}
		slide, err := core.SelectPay(cands, core.PayOptions{Budget: budget, Pairing: core.PairSliding})
		if err != nil {
			return nil, err
		}
		counted++
		const eps = 1e-12
		bOpt := block.JER <= opt.JER+eps
		sOpt := slide.JER <= opt.JER+eps
		if bOpt {
			blockOpt++
		}
		if sOpt {
			slideOpt++
		}
		if bOpt && sOpt {
			bothOpt++
		}
		blockRegret += block.JER - opt.JER
		slideRegret += slide.JER - opt.JER
		switch {
		case slide.JER < block.JER-eps:
			slideWins++
		case block.JER < slide.JER-eps:
			blockWins++
		}
	}
	if counted == 0 {
		return nil, errors.New("ablation-pair: no feasible markets generated")
	}
	tb := tablefmt.New("Ablation: PayALG pair policies vs OPT",
		"policy", "hit OPT", "mean JER regret", "head-to-head wins")
	tb.AddRow("blocking (paper)", fmt.Sprintf("%d/%d", blockOpt, counted),
		blockRegret/float64(counted), blockWins)
	tb.AddRow("sliding (ext)", fmt.Sprintf("%d/%d", slideOpt, counted),
		slideRegret/float64(counted), slideWins)
	return &Result{
		ID:    "ablation-pair",
		Title: "Ablation — PayALG pair-slot policy (blocking vs sliding) vs exact optimum",
		Table: tb,
		Notes: []string{
			fmt.Sprintf("%d random markets of %d candidates; both policies hit OPT on %d.",
				counted, n, bothOpt),
			"Neither policy dominates (greedy path dependence); sliding escapes blocked",
			"pair slots while blocking holds better-ranked candidates longer.",
		},
	}, nil
}
