package experiments

import (
	"fmt"

	"juryselect/internal/core"
	"juryselect/internal/engine"
	"juryselect/internal/randx"
	"juryselect/internal/tablefmt"
)

func init() {
	register("ablation-seeds", runAblationSeeds)
}

// runAblationSeeds re-runs the Figure 3(e)/(f) effectiveness comparison
// across ten workload seeds and reports how often PayALG (APPX) attains
// the enumerated optimum at each seed. The paper reports "4 times out of
// 11" for its single draw; this driver shows the spread of that statistic
// across draws, so EXPERIMENTS.md can judge whether our single-seed count
// is within the expected variation.
func runAblationSeeds(cfg Config) (*Result, error) {
	tb := tablefmt.New("Ablation: APPX-hits-OPT count across workload seeds",
		"seed", "eps-sigma", "hits", "budgets", "mean JER gap")
	const seeds = 10
	totalHits := 0
	var minHits, maxHits = 1 << 30, -1
	// The paper ran the workload at two ε deviations (0.05 and 0.1); sweep
	// both so the hit-count spread reflects its full setup.
	sigmas := []float64{cfg.OptEpsSigma, 2 * cfg.OptEpsSigma}
	for _, sigma := range sigmas {
		for s := int64(1); s <= seeds; s++ {
			src := randx.New(cfg.Seed + 1000*s).Split(fmt.Sprintf("fig3ef-%g", sigma))
			cands := synthJurors(src, cfg.OptN, cfg.OptEpsMean, sigma,
				cfg.OptReqMean, cfg.OptReqSigma)
			hits := 0
			gap := 0.0
			eng := engine.New(engine.Options{Workers: cfg.Workers})
			for _, b := range cfg.OptBudgets {
				appx, err := core.SelectPay(cands, core.PayOptions{Budget: b, Evaluate: eng.Evaluate})
				if err != nil {
					return nil, err
				}
				opt, err := core.SelectOptParallel(cands, b, cfg.Workers)
				if err != nil {
					return nil, err
				}
				if appx.JER <= opt.JER+1e-12 {
					hits++
				}
				gap += appx.JER - opt.JER
			}
			totalHits += hits
			if hits < minHits {
				minHits = hits
			}
			if hits > maxHits {
				maxHits = hits
			}
			tb.AddRow(fmt.Sprint(cfg.Seed+1000*s), sigma, hits, len(cfg.OptBudgets),
				gap/float64(len(cfg.OptBudgets)))
		}
	}
	runs := seeds * len(sigmas)
	return &Result{
		ID:    "ablation-seeds",
		Title: "Ablation — seed sensitivity of the Figure 3(e)/(f) APPX-vs-OPT hit count",
		Table: tb,
		Notes: []string{
			fmt.Sprintf("Hits ranged %d–%d of %d budgets across %d runs (mean %.1f).",
				minHits, maxHits, len(cfg.OptBudgets), runs, float64(totalHits)/float64(runs)),
			"The statistic is highly draw-dependent; compare against the paper's single",
			"reported draw (4 of 11) with that spread in mind — see EXPERIMENTS.md.",
		},
	}, nil
}
