package experiments

import (
	"fmt"
	"time"

	"juryselect/internal/core"
	"juryselect/internal/engine"
	"juryselect/internal/jer"
	"juryselect/internal/randx"
	"juryselect/internal/tablefmt"
)

func init() {
	register("table2", runTable2)
	register("fig3a", runFig3a)
	register("fig3b", runFig3b)
	register("fig3c", runFig3c)
	register("fig3d", runFig3d)
	register("fig3e", runFig3e)
	register("fig3f", runFig3f)
}

// runTable2 reproduces Table 2: the JER of every jury in the motivation
// example, computed exactly.
func runTable2(Config) (*Result, error) {
	juries := []struct {
		name  string
		rates []float64
	}{
		{"C", []float64{0.2}},
		{"A", []float64{0.1}},
		{"C,D,E", []float64{0.2, 0.3, 0.3}},
		{"A,B,C", []float64{0.1, 0.2, 0.2}},
		{"A,B,C,D,E", []float64{0.1, 0.2, 0.2, 0.3, 0.3}},
		{"A,B,C,D,E,F,G", []float64{0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4}},
		{"A,B,C,F,G", []float64{0.1, 0.2, 0.2, 0.4, 0.4}},
	}
	tb := tablefmt.New("Table 2: Error-rate of Example in Figure 1", "Crowd", "Jury Error Rate")
	for _, j := range juries {
		v, err := jer.Compute(j.rates, jer.Auto)
		if err != nil {
			return nil, err
		}
		tb.AddRow(j.name, v)
	}
	return &Result{
		ID:    "table2",
		Title: "Table 2 — motivation example JER values",
		Table: tb,
		Notes: []string{
			"Paper prints 0.0703 for {A..E} (exact 0.07036) and 0.0805 for {A..G};",
			"the running text gives 0.085 for {A..G} and the exact value is 0.085248,",
			"so the table cell is a typo. {A,B,C,F,G} matches at 0.104 (exact 0.10384).",
		},
	}, nil
}

// synthJurors draws n jurors with ε ~ TruncNormal(mean, sigma) on (0,1) and
// optional costs ~ TruncNormal(reqMean, reqSigma) on [0, ∞).
func synthJurors(src *randx.Source, n int, mean, sigma float64, reqMean, reqSigma float64) []core.Juror {
	rates := src.ErrorRates(n, mean, sigma)
	var reqs []float64
	if reqMean > 0 || reqSigma > 0 {
		reqs = src.Requirements(n, reqMean, reqSigma)
	}
	jurors := make([]core.Juror, n)
	for i := range jurors {
		jurors[i] = core.Juror{ID: fmt.Sprintf("j%d", i), ErrorRate: rates[i]}
		if reqs != nil {
			jurors[i].Cost = reqs[i]
		}
	}
	return jurors
}

// runFig3a reproduces Figure 3(a): the optimal jury size as the mean of the
// individual error rates sweeps 0.1..0.9, one curve per deviation.
func runFig3a(cfg Config) (*Result, error) {
	src := randx.New(cfg.Seed).Split("fig3a")
	tb := tablefmt.New("Fig 3(a): Jury Size vs Individual Error-rate",
		append([]string{"mean"}, sigmaHeaders(cfg.TraitSigmas)...)...)
	series := make([]Series, len(cfg.TraitSigmas))
	for i, sg := range cfg.TraitSigmas {
		series[i].Name = fmt.Sprintf("var(%g)", sg)
	}
	for _, mean := range cfg.TraitMeans {
		row := []interface{}{mean}
		for i, sg := range cfg.TraitSigmas {
			cands := synthJurors(src.Split(fmt.Sprintf("m%v-s%v", mean, sg)),
				cfg.TraitN, mean, sg, 0, 0)
			sel, err := core.SelectAltr(cands, core.AltrOptions{Incremental: true})
			if err != nil {
				return nil, err
			}
			series[i].Points = append(series[i].Points, Point{X: mean, Y: float64(sel.Size())})
			row = append(row, sel.Size())
		}
		tb.AddRow(row...)
	}
	return &Result{
		ID:     "fig3a",
		Title:  "Figure 3(a) — jury size vs mean individual error rate",
		Series: series,
		Table:  tb,
		Notes: []string{
			"Expected shape: large/noisy optimal sizes while mean ε < 0.5 (flat objective),",
			"collapsing toward 1 once mean ε crosses 0.5 ('the hands of the few').",
		},
	}, nil
}

func sigmaHeaders(sigmas []float64) []string {
	out := make([]string, len(sigmas))
	for i, s := range sigmas {
		out[i] = fmt.Sprintf("size var(%g)", s)
	}
	return out
}

// runFig3b reproduces Figure 3(b): AltrALG wall-clock time versus candidate
// count, with and without the Lemma 2 lower-bound check, following the
// paper's workload (ε mean 0.1).
func runFig3b(cfg Config) (*Result, error) {
	src := randx.New(cfg.Seed).Split("fig3b")
	tb := tablefmt.New("Fig 3(b): Efficiency of JSP on AltrM",
		"N", "sigma", "plain (s)", "bounded (s)")
	var series []Series
	for _, sg := range cfg.EffSigmas {
		plain := Series{Name: fmt.Sprintf("m(%g)", sg)}
		bounded := Series{Name: fmt.Sprintf("m(%g,b)", sg)}
		for _, n := range cfg.EffSizes {
			cands := synthJurors(src.Split(fmt.Sprintf("n%d-s%v", n, sg)),
				n, cfg.EffMean, sg, 0, 0)
			tPlain, err := timeAltr(cands, core.AltrOptions{Algorithm: jer.CBAAlgo})
			if err != nil {
				return nil, err
			}
			tBound, err := timeAltr(cands, core.AltrOptions{Algorithm: jer.CBAAlgo, UseLowerBound: true})
			if err != nil {
				return nil, err
			}
			plain.Points = append(plain.Points, Point{X: float64(n), Y: tPlain.Seconds()})
			bounded.Points = append(bounded.Points, Point{X: float64(n), Y: tBound.Seconds()})
			tb.AddRow(n, sg, tPlain.Seconds(), tBound.Seconds())
		}
		series = append(series, plain, bounded)
	}
	return &Result{
		ID:     "fig3b",
		Title:  "Figure 3(b) — AltrALG efficiency with/without lower-bound check",
		Series: series,
		Table:  tb,
		Notes: []string{
			"Absolute times are hardware-dependent; the paper's i7/Win7 numbers are in",
			"thousands of seconds. Compare growth and the bounded/unbounded gap only.",
			"With ε mean 0.1 the bound is rarely usable (γ ≥ 1), so the bounded variant",
			"mostly pays the O(n) checking overhead — the paper observes the same at",
			"small sizes.",
		},
	}, nil
}

func timeAltr(cands []core.Juror, opts core.AltrOptions) (time.Duration, error) {
	start := time.Now()
	_, err := core.SelectAltr(cands, opts)
	return time.Since(start), err
}

// payWorkload draws the Figure 3(c)/(d) candidate set for one ε mean.
func payWorkload(src *randx.Source, cfg Config, epsMean float64) []core.Juror {
	return synthJurors(src, cfg.BudgetN, epsMean, 0.05, cfg.ReqMean, cfg.ReqSigma)
}

// runFig3c reproduces Figure 3(c): total cost of the selected jury versus
// budget, one curve per candidate ε mean.
func runFig3c(cfg Config) (*Result, error) {
	return runBudgetSweep(cfg, "fig3c",
		"Fig 3(c): Budget vs Total Cost of Selected Jury",
		"Figure 3(c) — budget vs total cost", "total cost",
		func(sel core.Selection) float64 { return sel.Cost })
}

// runFig3d reproduces Figure 3(d): JER of the selected jury versus budget.
func runFig3d(cfg Config) (*Result, error) {
	return runBudgetSweep(cfg, "fig3d",
		"Fig 3(d): Budget vs JER",
		"Figure 3(d) — budget vs JER", "JER",
		func(sel core.Selection) float64 { return sel.JER })
}

func runBudgetSweep(cfg Config, id, tableTitle, title, metric string,
	extract func(core.Selection) float64) (*Result, error) {
	src := randx.New(cfg.Seed).Split("fig3cd")
	tb := tablefmt.New(tableTitle, "budget", "eps-mean", metric, "jury size")
	var series []Series
	// The engine memo is shared across the whole sweep: within one ε mean
	// the greedy re-evaluates the same growing sub-juries at every budget,
	// so each distinct multiset above the memo threshold is computed once.
	eng := engine.New(engine.Options{Workers: cfg.Workers})
	for _, em := range cfg.BudgetEpsMean {
		cands := payWorkload(src.Split(fmt.Sprintf("m%v", em)), cfg, em)
		s := Series{Name: fmt.Sprintf("m(%g)", em)}
		for _, b := range cfg.Budgets {
			sel, err := core.SelectPay(cands, core.PayOptions{Budget: b, Evaluate: eng.Evaluate})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: b, Y: extract(sel)})
			tb.AddRow(b, em, extract(sel), sel.Size())
		}
		series = append(series, s)
	}
	st := eng.Stats()
	notes := []string{
		"Workload per DESIGN.md §5: ε ~ N(mean, 0.05) truncated to (0,1) with mean from",
		"the legend; requirements ~ N(0.5, 0.2) truncated at 0; N = " + fmt.Sprint(cfg.BudgetN) + ".",
		fmt.Sprintf("Engine memo across the sweep: %d exact JER computations, %d hits.",
			st.Evaluations, st.CacheHits),
	}
	if id == "fig3d" {
		notes = append(notes,
			"Expected: JER falls as budget rises, and lower-ε candidate pools dominate at",
			"every budget (paper: 'a raising budget can improve jury quality').")
	}
	return &Result{ID: id, Title: title, Series: series, Table: tb, Notes: notes}, nil
}

// optWorkload draws the Figure 3(e)/(f) candidate set: the small pool for
// which exact enumeration is feasible.
func optWorkload(cfg Config) []core.Juror {
	src := randx.New(cfg.Seed).Split("fig3ef")
	return synthJurors(src, cfg.OptN, cfg.OptEpsMean, cfg.OptEpsSigma,
		cfg.OptReqMean, cfg.OptReqSigma)
}

// runFig3e reproduces Figure 3(e): total cost of PayALG (APPX) versus the
// enumerated optimum (OPT) across budgets.
func runFig3e(cfg Config) (*Result, error) {
	return runOptCompare(cfg, "fig3e",
		"Fig 3(e): APPX vs OPT on Total Cost",
		"Figure 3(e) — APPX vs OPT total cost",
		"cost", func(sel core.Selection) float64 { return sel.Cost })
}

// runFig3f reproduces Figure 3(f): JER of PayALG (APPX) versus the
// enumerated optimum (OPT) across budgets.
func runFig3f(cfg Config) (*Result, error) {
	return runOptCompare(cfg, "fig3f",
		"Fig 3(f): APPX vs OPT on JER",
		"Figure 3(f) — APPX vs OPT JER",
		"JER", func(sel core.Selection) float64 { return sel.JER })
}

func runOptCompare(cfg Config, id, tableTitle, title, metric string,
	extract func(core.Selection) float64) (*Result, error) {
	cands := optWorkload(cfg)
	tb := tablefmt.New(tableTitle, "budget", "APPX "+metric, "OPT "+metric, "APPX size", "OPT size")
	appx := Series{Name: "APPX"}
	opt := Series{Name: "OPT"}
	matches := 0
	// One engine for the whole budget sweep: PayALG's admission checks
	// revisit the same sub-juries at every budget, so the memo computes
	// each distinct multiset once; OPT enumeration shards across workers.
	eng := engine.New(engine.Options{Workers: cfg.Workers})
	for _, b := range cfg.OptBudgets {
		sa, err := core.SelectPay(cands, core.PayOptions{Budget: b, Evaluate: eng.Evaluate})
		if err != nil {
			return nil, err
		}
		so, err := core.SelectOptParallel(cands, b, cfg.Workers)
		if err != nil {
			return nil, err
		}
		if sa.JER <= so.JER+1e-12 {
			matches++
		}
		appx.Points = append(appx.Points, Point{X: b, Y: extract(sa)})
		opt.Points = append(opt.Points, Point{X: b, Y: extract(so)})
		tb.AddRow(b, extract(sa), extract(so), sa.Size(), so.Size())
	}
	st := eng.Stats()
	notes := []string{
		fmt.Sprintf("APPX achieved the optimal JER in %d of %d budgets (paper: 4 of 11).",
			matches, len(cfg.OptBudgets)),
		"OPT is sharded exact enumeration (SelectOptParallel); APPX is the PayALG greedy.",
		fmt.Sprintf("Engine memo over the budget sweep: %d exact JER computations, %d cache hits.",
			st.Evaluations, st.CacheHits),
	}
	return &Result{ID: id, Title: title,
		Series: []Series{appx, opt}, Table: tb, Notes: notes}, nil
}
