package experiments

import (
	"fmt"

	"juryselect/internal/core"
	"juryselect/internal/engine"
	"juryselect/internal/estimate"
	"juryselect/internal/graph"
	"juryselect/internal/jer"
	"juryselect/internal/randx"
	"juryselect/internal/rank"
	"juryselect/internal/stats"
	"juryselect/internal/tablefmt"
	"juryselect/internal/twitter"
)

func init() {
	register("fig3g", runFig3g)
	register("fig3h", runFig3h)
	register("fig3i", runFig3i)
}

// TwitterData is the output of the §4 pipeline on the synthetic corpus:
// per-ranker score lists (descending) plus account ages, from which juror
// sets of any size can be assembled with the §4.1.3/§4.2 normalizations
// applied over exactly the requested candidates — the paper normalizes
// within the candidate set it selects from (the 5,000-user pools in Figure
// 3(g), the top 20 in Figures 3(h)/(i)).
type TwitterData struct {
	hitsRanked []rank.Ranked
	prRanked   []rank.Ranked
	ages       map[string]float64
	// GraphStats summarises the retweet graph, for corpus verification.
	GraphStats graph.Stats
}

// BuildTwitterData runs corpus generation, graph construction (Algorithm
// 5), both rankers (Algorithms 6 and 7) and retains the top `pool` scorers
// per ranker, matching the paper's "choose the 5,000 users with highest
// scores".
func BuildTwitterData(users, tweets, pool int, seed int64) (*TwitterData, error) {
	src := randx.New(seed).Split("twitter")
	corpus := twitter.Generate(twitter.GeneratorConfig{Users: users, Tweets: tweets}, src)

	g := graph.New()
	for _, rec := range corpus.Tweets {
		for _, p := range twitter.RetweetPairs(rec) {
			if err := g.AddEdge(p.From, p.To); err != nil {
				return nil, err
			}
		}
	}
	ages := make(map[string]float64, len(corpus.Profiles))
	for _, p := range corpus.Profiles {
		ages[p.Name] = p.AccountAgeDays
	}

	auth, _, err := rank.HITS(g, rank.HITSOptions{})
	if err != nil {
		return nil, err
	}
	pr, err := rank.PageRank(g, rank.PageRankOptions{})
	if err != nil {
		return nil, err
	}
	return &TwitterData{
		hitsRanked: rank.TopK(g, auth, pool),
		prRanked:   rank.TopK(g, pr, pool),
		ages:       ages,
		GraphStats: g.ComputeStats(),
	}, nil
}

// PoolSize returns the number of retained ranked users per ranker.
func (d *TwitterData) PoolSize() int { return len(d.hitsRanked) }

// HITS assembles the top-n HITS candidates with ε and r normalized over
// exactly those n users. n is clamped to the pool size.
func (d *TwitterData) HITS(n int) ([]core.Juror, error) {
	return assembleJurors(clampRanked(d.hitsRanked, n), d.ages)
}

// PageRank assembles the top-n PageRank candidates with ε and r normalized
// over exactly those n users. n is clamped to the pool size.
func (d *TwitterData) PageRank(n int) ([]core.Juror, error) {
	return assembleJurors(clampRanked(d.prRanked, n), d.ages)
}

func clampRanked(ranked []rank.Ranked, n int) []rank.Ranked {
	if n <= 0 || n > len(ranked) {
		n = len(ranked)
	}
	return ranked[:n]
}

// assembleJurors converts ranked users into jurors with ε normalized over
// the given set (α = β = 10 as in §5.2) and r normalized from account ages
// over the same set. The §4.2 formula assigns r = 0 to the newest account,
// so a candidate set always contains at least one free juror and PayM
// selection is feasible at every non-negative budget.
func assembleJurors(ranked []rank.Ranked, ages map[string]float64) ([]core.Juror, error) {
	scores := make([]float64, len(ranked))
	ageVec := make([]float64, len(ranked))
	for i, r := range ranked {
		scores[i] = r.Score
		ageVec[i] = ages[r.User]
	}
	rates, err := estimate.ErrorRates(scores, estimate.DefaultAlpha, estimate.DefaultBeta)
	if err != nil {
		return nil, err
	}
	reqs, _, err := estimate.Requirements(ageVec)
	if err != nil {
		return nil, err
	}
	jurors := make([]core.Juror, len(ranked))
	for i, r := range ranked {
		jurors[i] = core.Juror{ID: r.User, ErrorRate: rates[i], Cost: reqs[i]}
	}
	return jurors, nil
}

// runFig3g reproduces Figure 3(g): AltrALG runtime on the HITS and
// PageRank candidate pools as the candidate count sweeps 1000..5000, with
// and without the lower-bound check (legends HT, HT-B, PR, PR-B).
func runFig3g(cfg Config) (*Result, error) {
	data, err := BuildTwitterData(cfg.TwitterUsers, cfg.TwitterTweets, cfg.TwitterPool, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tb := tablefmt.New("Fig 3(g): Efficiency of JSP on Twitter Data",
		"N", "HT (s)", "HT-B (s)", "PR (s)", "PR-B (s)")
	ht := Series{Name: "HT"}
	htb := Series{Name: "HT-B"}
	prs := Series{Name: "PR"}
	prb := Series{Name: "PR-B"}
	for _, n := range cfg.TwitterTopNs {
		if n > data.PoolSize() {
			n = data.PoolSize()
		}
		hitsPool, err := data.HITS(n)
		if err != nil {
			return nil, err
		}
		prPool, err := data.PageRank(n)
		if err != nil {
			return nil, err
		}
		t1, err := timeAltr(hitsPool, core.AltrOptions{Algorithm: jer.CBAAlgo})
		if err != nil {
			return nil, err
		}
		t2, err := timeAltr(hitsPool, core.AltrOptions{Algorithm: jer.CBAAlgo, UseLowerBound: true})
		if err != nil {
			return nil, err
		}
		t3, err := timeAltr(prPool, core.AltrOptions{Algorithm: jer.CBAAlgo})
		if err != nil {
			return nil, err
		}
		t4, err := timeAltr(prPool, core.AltrOptions{Algorithm: jer.CBAAlgo, UseLowerBound: true})
		if err != nil {
			return nil, err
		}
		x := float64(n)
		ht.Points = append(ht.Points, Point{x, t1.Seconds()})
		htb.Points = append(htb.Points, Point{x, t2.Seconds()})
		prs.Points = append(prs.Points, Point{x, t3.Seconds()})
		prb.Points = append(prb.Points, Point{x, t4.Seconds()})
		tb.AddRow(n, t1.Seconds(), t2.Seconds(), t3.Seconds(), t4.Seconds())
	}
	return &Result{
		ID:     "fig3g",
		Title:  "Figure 3(g) — AltrALG efficiency on micro-blog candidate pools",
		Series: []Series{ht, htb, prs, prb},
		Table:  tb,
		Notes: []string{
			fmt.Sprintf("Retweet graph: %d nodes, %d edges, max in-degree %d, dangling %d.",
				data.GraphStats.Nodes, data.GraphStats.Edges,
				data.GraphStats.MaxInDegree, data.GraphStats.Dangling),
			"Paper: bounding helps on PageRank data (more extreme ε after normalization)",
			"and hurts on HITS data (checking overhead dominates).",
		},
	}, nil
}

// runFig3h reproduces Figure 3(h): precision and recall of PayALG's jury
// against the enumerated optimum on the top candidates of each ranker, at
// budgets {0.1%, 1%, 10%, 20%} of M = Σ r over the candidates.
func runFig3h(cfg Config) (*Result, error) {
	data, err := BuildTwitterData(cfg.TwitterUsers, cfg.TwitterTweets, cfg.TwitterPool, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tb := tablefmt.New("Fig 3(h): Precision & Recall on Twitter Data",
		"budget", "frac of M", "HT-Prec", "HT-Rec", "PR-Prec", "PR-Rec")
	series := []Series{{Name: "HT-Prec"}, {Name: "HT-Rec"}, {Name: "PR-Prec"}, {Name: "PR-Rec"}}
	pools, err := candidatePools(data, cfg.TwitterCandidates)
	if err != nil {
		return nil, err
	}
	var jerNote float64 = -1
	eng := engine.New(engine.Options{Workers: cfg.Workers})
	for _, frac := range cfg.TwitterBudgetFracs {
		row := []interface{}{0.0, frac}
		var budgets [2]float64
		var metrics [4]float64
		for pi, pool := range pools {
			m := 0.0
			for _, j := range pool {
				m += j.Cost
			}
			budget := frac * m
			budgets[pi] = budget
			appx, err := core.SelectPay(pool, core.PayOptions{Budget: budget, Evaluate: eng.Evaluate})
			if err != nil {
				return nil, err
			}
			opt, err := core.SelectOptParallel(pool, budget, cfg.Workers)
			if err != nil {
				return nil, err
			}
			p, r := stats.PrecisionRecall(appx.IDs(), opt.IDs())
			metrics[2*pi] = p
			metrics[2*pi+1] = r
			if pi == 0 && jerNote < 0 {
				jerNote = appx.JER
			}
		}
		row[0] = budgets[0]
		for i, m := range metrics {
			series[i].Points = append(series[i].Points, Point{X: frac, Y: m})
			row = append(row, m)
		}
		tb.AddRow(row...)
	}
	return &Result{
		ID:     "fig3h",
		Title:  "Figure 3(h) — precision & recall of PayALG vs OPT",
		Series: series,
		Table:  tb,
		Notes: []string{
			fmt.Sprintf("Top %d candidates per ranker; M = Σr of the candidates.", cfg.TwitterCandidates),
			fmt.Sprintf("Representative PayALG JER at the smallest budget: %.3g (paper reports 0.00075-scale values).", jerNote),
			"Paper: HITS pools give precision/recall 1; PageRank pools score lower because",
			"many near-zero-ε candidates broaden the space of near-optimal juries.",
		},
	}, nil
}

// candidatePools assembles the top-k HITS and PageRank candidate sets with
// parameters normalized within each set, clamped so exact enumeration
// (SelectOpt) stays feasible.
func candidatePools(data *TwitterData, k int) ([2][]core.Juror, error) {
	if k > core.MaxOptCandidates {
		k = core.MaxOptCandidates
	}
	var pools [2][]core.Juror
	var err error
	pools[0], err = data.HITS(k)
	if err != nil {
		return pools, err
	}
	pools[1], err = data.PageRank(k)
	return pools, err
}

// runFig3i reproduces Figure 3(i): jury size of PayALG versus the
// enumerated optimum across absolute budgets on both ranker pools (legends
// HT-Pay, HT-TRUE, PR-Pay, PR-TRUE).
func runFig3i(cfg Config) (*Result, error) {
	data, err := BuildTwitterData(cfg.TwitterUsers, cfg.TwitterTweets, cfg.TwitterPool, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tb := tablefmt.New("Fig 3(i): Jury Size on Twitter Data",
		"budget", "HT-Pay", "HT-TRUE", "PR-Pay", "PR-TRUE")
	series := []Series{{Name: "HT-Pay"}, {Name: "HT-TRUE"}, {Name: "PR-Pay"}, {Name: "PR-TRUE"}}
	pools, err := candidatePools(data, cfg.TwitterCandidates)
	if err != nil {
		return nil, err
	}
	eng := engine.New(engine.Options{Workers: cfg.Workers})
	for _, b := range cfg.TwitterSizeBudgets {
		sizes := [4]float64{}
		for pi, pool := range pools {
			appx, err := core.SelectPay(pool, core.PayOptions{Budget: b, Evaluate: eng.Evaluate})
			if err != nil {
				return nil, err
			}
			opt, err := core.SelectOptParallel(pool, b, cfg.Workers)
			if err != nil {
				return nil, err
			}
			sizes[2*pi] = float64(appx.Size())
			sizes[2*pi+1] = float64(opt.Size())
		}
		for i := range series {
			series[i].Points = append(series[i].Points, Point{X: b, Y: sizes[i]})
		}
		tb.AddRow(b, int(sizes[0]), int(sizes[1]), int(sizes[2]), int(sizes[3]))
	}
	return &Result{
		ID:     "fig3i",
		Title:  "Figure 3(i) — jury size of PayALG vs OPT on micro-blog pools",
		Series: series,
		Table:  tb,
		Notes: []string{
			"Paper: HITS jury sizes match ground truth exactly; PageRank sizes stay close.",
		},
	}, nil
}
