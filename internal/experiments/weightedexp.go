package experiments

import (
	"fmt"
	"math"

	"juryselect/internal/jer"
	"juryselect/internal/randx"
	"juryselect/internal/tablefmt"
	"juryselect/internal/voting"
)

func init() {
	register("ablation-wmv", runAblationWMV)
}

// runAblationWMV measures how much accuracy the paper's plain Majority
// Voting leaves on the table relative to ε-weighted (Bayes-optimal)
// aggregation. The workload is a 15-member jury mixing e experts (ε = 0.1)
// with 15-e mediocre members (ε = 0.45): with few experts, plain majority
// is dominated by the mediocre majority while the weighted rule lets the
// experts' log-odds weight (log 9 ≈ 2.2 vs log(0.55/0.45) ≈ 0.2) carry the
// decision. A homogeneous control row shows the gap vanishing when
// weights degenerate to equality.
func runAblationWMV(cfg Config) (*Result, error) {
	src := randx.New(cfg.Seed).Split("ablation-wmv")
	tb := tablefmt.New("Ablation: plain vs weighted majority voting (15-member juries)",
		"experts", "analytic JER (MV)", "simulated MV", "simulated WMV", "gap")
	const (
		tasks    = 200000
		jurySize = 15
		expertE  = 0.10
		mediumE  = 0.45
	)
	var series Series
	series.Name = "WMV-gap"
	for _, experts := range []int{0, 1, 3, 5, 7} {
		rates := make([]float64, jurySize)
		for i := range rates {
			if i < experts {
				rates[i] = expertE
			} else {
				rates[i] = mediumE
			}
		}
		analytic, err := jer.Compute(rates, jer.Auto)
		if err != nil {
			return nil, err
		}
		plain, err := voting.NewSimulator(src.Split(fmt.Sprintf("plain%d", experts))).Run(rates, tasks)
		if err != nil {
			return nil, err
		}
		weighted, err := voting.NewSimulator(src.Split(fmt.Sprintf("wmv%d", experts))).RunWeighted(rates, tasks)
		if err != nil {
			return nil, err
		}
		gap := plain.ErrorRate() - weighted.ErrorRate()
		slack := 4*math.Sqrt(analytic*(1-analytic)/tasks) + 1e-3
		if weighted.ErrorRate() > plain.ErrorRate()+slack {
			return nil, fmt.Errorf("weighted aggregation worse than plain with %d experts: %g vs %g",
				experts, weighted.ErrorRate(), plain.ErrorRate())
		}
		series.Points = append(series.Points, Point{X: float64(experts), Y: gap})
		tb.AddRow(experts, analytic, plain.ErrorRate(), weighted.ErrorRate(), gap)
	}
	return &Result{
		ID:     "ablation-wmv",
		Title:  "Ablation — value of ε-aware aggregation over plain Majority Voting",
		Series: []Series{series},
		Table:  tb,
		Notes: []string{
			"Weighted majority (Nitzan–Paroush log-odds weights) is Bayes-optimal for",
			"independent votes; the paper aggregates with plain majority only. The gap",
			"peaks when a few experts sit inside a mediocre crowd and vanishes for",
			"homogeneous juries (experts = 0) where the weights are equal.",
		},
	}, nil
}
