// Package fft implements the fast Fourier transform and the polynomial
// (probability-vector) convolutions that back the paper's Convolution-Based
// Algorithm (CBA, Algorithm 2) for computing the Jury Error Rate.
//
// The package offers four entry points:
//
//   - Transform / Inverse: radix-2 iterative complex FFT.
//   - ConvolveNaive: O(len(a)·len(b)) schoolbook convolution.
//   - Convolve: size-adaptive convolution that uses the schoolbook method
//     below a crossover and the FFT method above it.
//   - ConvolveInto: Convolve writing into a caller-provided output slice
//     with all FFT temporaries drawn from a reusable Scratch arena, so a
//     steady-state caller (e.g. the jer.Evaluator kernel) allocates
//     nothing.
//
// The convolutions operate on non-negative real vectors (probability mass
// functions of wrong-vote counts); Convolve and ConvolveInto clamp tiny
// negative values that arise from floating-point round-off back to zero so
// downstream code can rely on PMF non-negativity.
package fft

import (
	"math"
	"sync"
)

// convolveCrossover is the total output length above which FFT convolution
// beats the schoolbook method. Determined empirically on amd64; correctness
// does not depend on the exact value.
const convolveCrossover = 128

// Transform computes the in-place forward FFT of a. The length of a must be
// a power of two; Transform panics otherwise.
func Transform(a []complex128) { fftInPlace(a, false) }

// Inverse computes the in-place inverse FFT of a, including the 1/n scaling.
// The length of a must be a power of two; Inverse panics otherwise.
func Inverse(a []complex128) {
	fftInPlace(a, true)
	n := complex(float64(len(a)), 0)
	for i := range a {
		a[i] /= n
	}
}

func fftInPlace(a []complex128, invert bool) {
	n := len(a)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic("fft: length is not a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		angle := 2 * math.Pi / float64(length)
		if invert {
			angle = -angle
		}
		wl := complex(math.Cos(angle), math.Sin(angle))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// nextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Scratch is a reusable arena for the complex temporaries of the FFT
// convolution path. A zero Scratch is ready to use; buffers grow to the
// largest transform seen and are then reused, so a long-lived Scratch makes
// ConvolveInto allocation-free in steady state. A Scratch is not safe for
// concurrent use; give each worker its own (NewScratch) or let the
// package-level pool hand them out (Convolve, ConvolveFFT).
type Scratch struct {
	buf  []complex128 // packed input spectrum fa = a + i·b
	prod []complex128 // pointwise spectral product
}

// NewScratch returns an empty arena. Buffers are grown on first use.
func NewScratch() *Scratch { return &Scratch{} }

// complexPair returns two length-n complex buffers backed by the arena. The
// first is zeroed (it is filled additively by the packing step); the second
// is returned dirty because the pointwise product overwrites every entry.
func (s *Scratch) complexPair(n int) (buf, prod []complex128) {
	if cap(s.buf) < n {
		s.buf = make([]complex128, n)
		s.prod = make([]complex128, n)
	}
	buf, prod = s.buf[:n], s.prod[:n]
	clear(buf)
	return buf, prod
}

// scratchPool recycles arenas for the convenience entry points that do not
// thread their own Scratch through.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// ConvolveNaive returns the linear convolution of a and b using the
// schoolbook O(len(a)·len(b)) algorithm. The result has length
// len(a)+len(b)-1. Either input being empty yields nil.
func ConvolveNaive(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(a)+len(b)-1)
	convolveNaiveInto(out, a, b)
	return out
}

// convolveNaiveInto accumulates the schoolbook convolution of a and b into
// out, which must be zeroed, have length len(a)+len(b)-1 and alias neither
// input.
func convolveNaiveInto(out, a, b []float64) {
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
}

// ConvolveFFT returns the linear convolution of a and b computed through the
// complex FFT. The result has length len(a)+len(b)-1. Either input being
// empty yields nil.
func ConvolveFFT(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(a)+len(b)-1)
	s := scratchPool.Get().(*Scratch)
	convolveFFTInto(out, a, b, s)
	scratchPool.Put(s)
	return out
}

// convolveFFTInto computes the FFT convolution of a and b into out, drawing
// every complex temporary from s. out must have length len(a)+len(b)-1 and
// alias neither input.
func convolveFFTInto(out, a, b []float64, s *Scratch) {
	n := nextPow2(len(out))
	buf, prod := s.complexPair(n)
	// Pack both real sequences into one complex buffer: fa = a + i·b.
	// One forward transform then yields the spectra of both via symmetry,
	// halving the transform count relative to the textbook formulation.
	for i, v := range a {
		buf[i] = complex(v, 0)
	}
	for i, v := range b {
		buf[i] += complex(0, v)
	}
	Transform(buf)
	// With F = FFT(a + i·b): A[k] = (F[k] + conj(F[n-k]))/2,
	// B[k] = (F[k] - conj(F[n-k]))/(2i). Multiply spectra pointwise.
	for k := 0; k < n; k++ {
		km := (n - k) & (n - 1)
		fk := buf[k]
		fkm := cconj(buf[km])
		ak := (fk + fkm) / 2
		bk := (fk - fkm) / complex(0, 2)
		prod[k] = ak * bk
	}
	Inverse(prod)
	for i := range out {
		out[i] = real(prod[i])
	}
}

func cconj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// Convolve returns the linear convolution of a and b, choosing between the
// schoolbook and FFT algorithms by size. Outputs are clamped to be
// non-negative: inputs are probability vectors, so any negative value is
// floating-point noise from the FFT path.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(a)+len(b)-1)
	s := scratchPool.Get().(*Scratch)
	ConvolveInto(out, a, b, s)
	scratchPool.Put(s)
	return out
}

// ConvolveInto is Convolve writing the result into out, which must have
// length len(a)+len(b)-1 and alias neither input. FFT temporaries come from
// s (nil draws a pooled arena), so a caller holding its own Scratch and
// output buffer performs no allocation. The values written are bit-identical
// to Convolve's for the same inputs: the branch choice, loop order and
// round-off clamping are the same code.
func ConvolveInto(out, a, b []float64, s *Scratch) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	if len(out) != len(a)+len(b)-1 {
		panic("fft: ConvolveInto output length must be len(a)+len(b)-1")
	}
	if len(a)+len(b)-1 < convolveCrossover || len(a) < 8 || len(b) < 8 {
		clear(out)
		convolveNaiveInto(out, a, b)
		return out
	}
	if s == nil {
		s = scratchPool.Get().(*Scratch)
		defer scratchPool.Put(s)
	}
	convolveFFTInto(out, a, b, s)
	for i, v := range out {
		if v < 0 {
			out[i] = 0
		}
	}
	return out
}
