// Package fft implements the fast Fourier transform and the polynomial
// (probability-vector) convolutions that back the paper's Convolution-Based
// Algorithm (CBA, Algorithm 2) for computing the Jury Error Rate.
//
// The package offers three entry points:
//
//   - Transform / Inverse: radix-2 iterative complex FFT.
//   - ConvolveNaive: O(len(a)·len(b)) schoolbook convolution.
//   - Convolve: size-adaptive convolution that uses the schoolbook method
//     below a crossover and the FFT method above it.
//
// The convolutions operate on non-negative real vectors (probability mass
// functions of wrong-vote counts); Convolve clamps tiny negative values that
// arise from floating-point round-off back to zero so downstream code can
// rely on PMF non-negativity.
package fft

import "math"

// convolveCrossover is the total output length above which FFT convolution
// beats the schoolbook method. Determined empirically on amd64; correctness
// does not depend on the exact value.
const convolveCrossover = 128

// Transform computes the in-place forward FFT of a. The length of a must be
// a power of two; Transform panics otherwise.
func Transform(a []complex128) { fftInPlace(a, false) }

// Inverse computes the in-place inverse FFT of a, including the 1/n scaling.
// The length of a must be a power of two; Inverse panics otherwise.
func Inverse(a []complex128) {
	fftInPlace(a, true)
	n := complex(float64(len(a)), 0)
	for i := range a {
		a[i] /= n
	}
}

func fftInPlace(a []complex128, invert bool) {
	n := len(a)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic("fft: length is not a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		angle := 2 * math.Pi / float64(length)
		if invert {
			angle = -angle
		}
		wl := complex(math.Cos(angle), math.Sin(angle))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// nextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ConvolveNaive returns the linear convolution of a and b using the
// schoolbook O(len(a)·len(b)) algorithm. The result has length
// len(a)+len(b)-1. Either input being empty yields nil.
func ConvolveNaive(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// ConvolveFFT returns the linear convolution of a and b computed through the
// complex FFT. The result has length len(a)+len(b)-1. Either input being
// empty yields nil.
func ConvolveFFT(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	n := nextPow2(outLen)
	// Pack both real sequences into one complex buffer: fa = a + i·b.
	// One forward transform then yields the spectra of both via symmetry,
	// halving the transform count relative to the textbook formulation.
	buf := make([]complex128, n)
	for i, v := range a {
		buf[i] = complex(v, 0)
	}
	for i, v := range b {
		buf[i] += complex(0, v)
	}
	Transform(buf)
	// With F = FFT(a + i·b): A[k] = (F[k] + conj(F[n-k]))/2,
	// B[k] = (F[k] - conj(F[n-k]))/(2i). Multiply spectra pointwise.
	prod := make([]complex128, n)
	for k := 0; k < n; k++ {
		km := (n - k) & (n - 1)
		fk := buf[k]
		fkm := cconj(buf[km])
		ak := (fk + fkm) / 2
		bk := (fk - fkm) / complex(0, 2)
		prod[k] = ak * bk
	}
	Inverse(prod)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(prod[i])
	}
	return out
}

func cconj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// Convolve returns the linear convolution of a and b, choosing between the
// schoolbook and FFT algorithms by size. Outputs are clamped to be
// non-negative: inputs are probability vectors, so any negative value is
// floating-point noise from the FFT path.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	var out []float64
	if len(a)+len(b)-1 < convolveCrossover || len(a) < 8 || len(b) < 8 {
		out = ConvolveNaive(a, b)
	} else {
		out = ConvolveFFT(a, b)
		for i, v := range out {
			if v < 0 {
				out[i] = 0
			}
		}
	}
	return out
}
