package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func slicesAlmostEqual(t *testing.T, got, want []float64, eps float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length mismatch: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if !almostEqual(got[i], want[i], eps) {
			t.Fatalf("index %d: got %g want %g", i, got[i], want[i])
		}
	}
}

func TestTransformKnownValues(t *testing.T) {
	// FFT of [1,1,1,1] is [4,0,0,0].
	a := []complex128{1, 1, 1, 1}
	Transform(a)
	want := []complex128{4, 0, 0, 0}
	for i := range a {
		if cmplx.Abs(a[i]-want[i]) > tol {
			t.Fatalf("index %d: got %v want %v", i, a[i], want[i])
		}
	}
}

func TestTransformImpulse(t *testing.T) {
	// FFT of the unit impulse is all ones.
	a := make([]complex128, 8)
	a[0] = 1
	Transform(a)
	for i := range a {
		if cmplx.Abs(a[i]-1) > tol {
			t.Fatalf("index %d: got %v want 1", i, a[i])
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 4, 8, 64, 1024} {
		a := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
			orig[i] = a[i]
		}
		Transform(a)
		Inverse(a)
		for i := range a {
			if cmplx.Abs(a[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d index %d: got %v want %v", n, i, a[i], orig[i])
			}
		}
	}
}

func TestTransformPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two length")
		}
	}()
	Transform(make([]complex128, 3))
}

func TestTransformEmptyIsNoop(t *testing.T) {
	Transform(nil) // must not panic
	Inverse(nil)
}

func TestConvolveNaiveKnown(t *testing.T) {
	// (1 + 2x)(3 + 4x) = 3 + 10x + 8x².
	got := ConvolveNaive([]float64{1, 2}, []float64{3, 4})
	slicesAlmostEqual(t, got, []float64{3, 10, 8}, tol)
}

func TestConvolveNaiveIdentity(t *testing.T) {
	a := []float64{0.25, 0.5, 0.25}
	got := ConvolveNaive(a, []float64{1})
	slicesAlmostEqual(t, got, a, tol)
}

func TestConvolveEmpty(t *testing.T) {
	if got := ConvolveNaive(nil, []float64{1}); got != nil {
		t.Fatalf("expected nil, got %v", got)
	}
	if got := ConvolveFFT([]float64{1}, nil); got != nil {
		t.Fatalf("expected nil, got %v", got)
	}
	if got := Convolve(nil, nil); got != nil {
		t.Fatalf("expected nil, got %v", got)
	}
}

func TestConvolveFFTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, pair := range [][2]int{{1, 1}, {2, 3}, {7, 9}, {64, 64}, {100, 1}, {1, 100}, {500, 301}} {
		a := make([]float64, pair[0])
		b := make([]float64, pair[1])
		for i := range a {
			a[i] = rng.Float64()
		}
		for i := range b {
			b[i] = rng.Float64()
		}
		want := ConvolveNaive(a, b)
		got := ConvolveFFT(a, b)
		slicesAlmostEqual(t, got, want, 1e-8)
	}
}

func TestConvolvePreservesMass(t *testing.T) {
	// Convolution of two PMFs is a PMF: mass 1, entries ≥ 0.
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 17, 200} {
		a := randomPMF(rng, n)
		b := randomPMF(rng, n+3)
		out := Convolve(a, b)
		sum := 0.0
		for _, v := range out {
			if v < 0 {
				t.Fatalf("negative mass %g", v)
			}
			sum += v
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Fatalf("mass %g, want 1", sum)
		}
	}
}

func randomPMF(rng *rand.Rand, n int) []float64 {
	a := make([]float64, n)
	sum := 0.0
	for i := range a {
		a[i] = rng.Float64()
		sum += a[i]
	}
	for i := range a {
		a[i] /= sum
	}
	return a
}

func TestConvolveCommutative(t *testing.T) {
	f := func(xs, ys []float64) bool {
		xs, ys = sanitize(xs, 40), sanitize(ys, 40)
		if len(xs) == 0 || len(ys) == 0 {
			return true
		}
		ab := Convolve(xs, ys)
		ba := Convolve(ys, xs)
		if len(ab) != len(ba) {
			return false
		}
		for i := range ab {
			if !almostEqual(ab[i], ba[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConvolveAssociativeProperty(t *testing.T) {
	f := func(xs, ys, zs []float64) bool {
		xs, ys, zs = sanitize(xs, 12), sanitize(ys, 12), sanitize(zs, 12)
		if len(xs) == 0 || len(ys) == 0 || len(zs) == 0 {
			return true
		}
		left := Convolve(Convolve(xs, ys), zs)
		right := Convolve(xs, Convolve(ys, zs))
		if len(left) != len(right) {
			return false
		}
		for i := range left {
			if !almostEqual(left[i], right[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// sanitize maps arbitrary quick-generated floats into small bounded
// magnitudes so round-off comparisons stay meaningful.
func sanitize(xs []float64, maxLen int) []float64 {
	if len(xs) > maxLen {
		xs = xs[:maxLen]
	}
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		out = append(out, math.Mod(math.Abs(x), 1))
	}
	return out
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func BenchmarkConvolveNaive1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomPMF(rng, 1024)
	y := randomPMF(rng, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvolveNaive(x, y)
	}
}

func BenchmarkConvolveFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randomPMF(rng, 1024)
	y := randomPMF(rng, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvolveFFT(x, y)
	}
}
