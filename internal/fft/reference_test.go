package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// dftDirect computes the DFT by the O(n²) definition, as an independent
// reference for the FFT.
func dftDirect(a []complex128) []complex128 {
	n := len(a)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := 2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += a[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

func TestTransformMatchesDirectDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		a := make([]complex128, n)
		for i := range a {
			a[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		want := dftDirect(a)
		got := make([]complex128, n)
		copy(got, a)
		Transform(got)
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-8*float64(n) {
				t.Fatalf("n=%d k=%d: fft %v vs dft %v", n, k, got[k], want[k])
			}
		}
	}
}

// TestParsevalIdentity: energy is preserved up to the 1/n convention,
// Σ|x|² = (1/n)Σ|X|².
func TestParsevalIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	n := 512
	a := make([]complex128, n)
	timeEnergy := 0.0
	for i := range a {
		a[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		timeEnergy += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
	}
	Transform(a)
	freqEnergy := 0.0
	for _, v := range a {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-8*timeEnergy {
		t.Fatalf("Parseval violated: time %.10f vs freq %.10f", timeEnergy, freqEnergy)
	}
}

// TestLinearityOfTransform: FFT(αx + βy) = αFFT(x) + βFFT(y).
func TestLinearityOfTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	n := 128
	x := make([]complex128, n)
	y := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64(), rng.Float64())
		y[i] = complex(rng.Float64(), rng.Float64())
	}
	alpha, beta := complex(2.5, -1), complex(-0.5, 3)
	combined := make([]complex128, n)
	for i := range combined {
		combined[i] = alpha*x[i] + beta*y[i]
	}
	Transform(combined)
	fx := append([]complex128(nil), x...)
	fy := append([]complex128(nil), y...)
	Transform(fx)
	Transform(fy)
	for k := 0; k < n; k++ {
		want := alpha*fx[k] + beta*fy[k]
		if cmplx.Abs(combined[k]-want) > 1e-8 {
			t.Fatalf("k=%d: %v vs %v", k, combined[k], want)
		}
	}
}
