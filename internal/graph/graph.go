// Package graph provides the directed user graph of Section 4.1.1: nodes
// are micro-blog users and an edge (u → v) records that u has retweeted v
// at least once. Each ordered pair is linked "once and only once" as the
// paper specifies, so the graph is simple (no duplicate edges); self-loops
// are rejected since a user quoting themselves carries no authority signal.
//
// The graph is append-only and optimized for the two consumers in this
// repository: ranking algorithms (internal/rank) that need forward and
// reverse adjacency, and corpus statistics.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is a simple directed graph over string-identified users.
type Graph struct {
	ids     map[string]int  // user → dense index
	names   []string        // dense index → user
	out     [][]int         // adjacency: out[u] lists v with edge u→v
	in      [][]int         // reverse adjacency
	edgeSet map[[2]int]bool // dedup: the paper links each pair exactly once
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		ids:     make(map[string]int),
		edgeSet: make(map[[2]int]bool),
	}
}

// ErrSelfLoop reports an attempted self-retweet edge.
var ErrSelfLoop = errors.New("graph: self-loop rejected")

// AddNode ensures user exists as a node and returns its dense index.
func (g *Graph) AddNode(user string) int {
	if idx, ok := g.ids[user]; ok {
		return idx
	}
	idx := len(g.names)
	g.ids[user] = idx
	g.names = append(g.names, user)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return idx
}

// AddEdge records that from retweeted to. Duplicate pairs are ignored
// (linked once and only once); self-loops return ErrSelfLoop.
func (g *Graph) AddEdge(from, to string) error {
	if from == to {
		return fmt.Errorf("%w: %q", ErrSelfLoop, from)
	}
	u := g.AddNode(from)
	v := g.AddNode(to)
	key := [2]int{u, v}
	if g.edgeSet[key] {
		return nil
	}
	g.edgeSet[key] = true
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
	return nil
}

// HasEdge reports whether the edge from→to exists.
func (g *Graph) HasEdge(from, to string) bool {
	u, ok1 := g.ids[from]
	v, ok2 := g.ids[to]
	if !ok1 || !ok2 {
		return false
	}
	return g.edgeSet[[2]int{u, v}]
}

// NumNodes returns the number of users.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumEdges returns the number of distinct retweet-relationship pairs.
func (g *Graph) NumEdges() int { return len(g.edgeSet) }

// Name returns the user name of a dense index.
func (g *Graph) Name(idx int) string { return g.names[idx] }

// Index returns the dense index for a user and whether it exists.
func (g *Graph) Index(user string) (int, bool) {
	idx, ok := g.ids[user]
	return idx, ok
}

// Nodes returns all user names in insertion order.
func (g *Graph) Nodes() []string {
	out := make([]string, len(g.names))
	copy(out, g.names)
	return out
}

// OutNeighbors returns the dense indices u links to (users u retweeted).
// The returned slice is shared; callers must not modify it.
func (g *Graph) OutNeighbors(u int) []int { return g.out[u] }

// InNeighbors returns the dense indices linking to v (users who retweeted
// v). The returned slice is shared; callers must not modify it.
func (g *Graph) InNeighbors(v int) []int { return g.in[v] }

// OutDegree returns the number of distinct users u retweeted.
func (g *Graph) OutDegree(u int) int { return len(g.out[u]) }

// InDegree returns the number of distinct users who retweeted v. High
// in-degree signals authority (§4.1.1: "the more a user's tweets are
// retweeted by other users, the more authoritative or influential the user
// is").
func (g *Graph) InDegree(v int) int { return len(g.in[v]) }

// Stats summarises graph shape; used by the experiment reports to verify
// the synthetic corpus preserves the power-law structure the paper relies
// on.
type Stats struct {
	Nodes       int
	Edges       int
	MaxInDegree int
	// InDegreeP50, InDegreeP90, InDegreeP99 are percentiles of the
	// in-degree distribution.
	InDegreeP50 int
	InDegreeP90 int
	InDegreeP99 int
	// Dangling counts nodes with no outgoing edges (PageRank sinks).
	Dangling int
}

// ComputeStats derives summary statistics for the graph.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	if s.Nodes == 0 {
		return s
	}
	degrees := make([]int, s.Nodes)
	for v := 0; v < s.Nodes; v++ {
		degrees[v] = g.InDegree(v)
		if degrees[v] > s.MaxInDegree {
			s.MaxInDegree = degrees[v]
		}
		if g.OutDegree(v) == 0 {
			s.Dangling++
		}
	}
	sort.Ints(degrees)
	pct := func(p float64) int {
		i := int(p * float64(len(degrees)-1))
		return degrees[i]
	}
	s.InDegreeP50 = pct(0.50)
	s.InDegreeP90 = pct(0.90)
	s.InDegreeP99 = pct(0.99)
	return s
}
