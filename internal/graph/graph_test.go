package graph

import (
	"errors"
	"fmt"
	"testing"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New()
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("a", "c"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("b", "c"); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d, want 3/3", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge("a", "b") || g.HasEdge("b", "a") {
		t.Fatal("edge direction broken")
	}
}

func TestAddEdgeDedup(t *testing.T) {
	// §4.1.1: "we link user1 to user2 once and only once for each pair".
	g := New()
	for i := 0; i < 5; i++ {
		if err := g.AddEdge("x", "y"); err != nil {
			t.Fatal(err)
		}
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1 after dedup", g.NumEdges())
	}
	idx, _ := g.Index("y")
	if g.InDegree(idx) != 1 {
		t.Fatalf("in-degree = %d, want 1", g.InDegree(idx))
	}
}

func TestSelfLoopRejected(t *testing.T) {
	g := New()
	if err := g.AddEdge("a", "a"); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("err = %v, want ErrSelfLoop", err)
	}
	if g.NumEdges() != 0 {
		t.Fatal("self-loop added an edge")
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := New()
	edges := [][2]string{{"a", "hub"}, {"b", "hub"}, {"c", "hub"}, {"hub", "a"}}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	hub, ok := g.Index("hub")
	if !ok {
		t.Fatal("hub missing")
	}
	if g.InDegree(hub) != 3 {
		t.Fatalf("hub in-degree = %d, want 3", g.InDegree(hub))
	}
	if g.OutDegree(hub) != 1 {
		t.Fatalf("hub out-degree = %d, want 1", g.OutDegree(hub))
	}
	in := g.InNeighbors(hub)
	if len(in) != 3 {
		t.Fatalf("in-neighbors = %v", in)
	}
	names := map[string]bool{}
	for _, u := range in {
		names[g.Name(u)] = true
	}
	for _, want := range []string{"a", "b", "c"} {
		if !names[want] {
			t.Errorf("missing in-neighbor %s", want)
		}
	}
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	i1 := g.AddNode("n")
	i2 := g.AddNode("n")
	if i1 != i2 || g.NumNodes() != 1 {
		t.Fatal("AddNode not idempotent")
	}
}

func TestIndexUnknown(t *testing.T) {
	g := New()
	if _, ok := g.Index("ghost"); ok {
		t.Fatal("unknown node found")
	}
	if g.HasEdge("ghost", "ghost2") {
		t.Fatal("edge between unknown nodes")
	}
}

func TestNodesCopy(t *testing.T) {
	g := New()
	g.AddNode("a")
	nodes := g.Nodes()
	nodes[0] = "mutated"
	if g.Name(0) != "a" {
		t.Fatal("Nodes leaked internal slice")
	}
}

func TestComputeStats(t *testing.T) {
	g := New()
	// Star: 10 spokes all pointing at one center.
	for i := 0; i < 10; i++ {
		if err := g.AddEdge(fmt.Sprintf("spoke%d", i), "center"); err != nil {
			t.Fatal(err)
		}
	}
	s := g.ComputeStats()
	if s.Nodes != 11 || s.Edges != 10 {
		t.Fatalf("stats %+v", s)
	}
	if s.MaxInDegree != 10 {
		t.Fatalf("max in-degree = %d, want 10", s.MaxInDegree)
	}
	if s.Dangling != 1 { // only the center has no out-edges
		t.Fatalf("dangling = %d, want 1", s.Dangling)
	}
	if s.InDegreeP50 != 0 {
		t.Fatalf("median in-degree = %d, want 0", s.InDegreeP50)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := New().ComputeStats()
	if s.Nodes != 0 || s.Edges != 0 {
		t.Fatalf("stats of empty graph: %+v", s)
	}
}

// TestComputeStatsDeterministic pins the property the closed-loop
// simulator relies on: a seeded edge stream always yields the same Stats,
// and the Stats are invariant under edge insertion order (they summarise
// the degree multiset, not the node indexing).
func TestComputeStatsDeterministic(t *testing.T) {
	edges := func(seed int64) [][2]string {
		// Small deterministic LCG so this test does not depend on randx.
		state := uint64(seed)
		next := func(n int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(n))
		}
		var out [][2]string
		for i := 0; i < 500; i++ {
			u, v := next(60), next(60)
			if u == v {
				continue
			}
			out = append(out, [2]string{fmt.Sprintf("u%d", u), fmt.Sprintf("u%d", v)})
		}
		return out
	}
	build := func(es [][2]string) Stats {
		g := New()
		for _, e := range es {
			if err := g.AddEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		return g.ComputeStats()
	}
	es := edges(5)
	s1, s2 := build(es), build(es)
	if s1 != s2 {
		t.Fatalf("same edges produced different stats:\n%+v\n%+v", s1, s2)
	}
	// Reverse insertion order: node indices change, stats must not.
	rev := make([][2]string, len(es))
	for i, e := range es {
		rev[len(es)-1-i] = e
	}
	if s3 := build(rev); s1 != s3 {
		t.Fatalf("insertion order changed stats:\n%+v\n%+v", s1, s3)
	}
}
