// Package insight is juryd's decision-quality observability layer: an
// incremental analytics engine over the task event stream
// (internal/tasks.EventSink) that answers the questions the serving
// metrics cannot — is the predicted Jury Error Rate calibrated against
// realized verdicts, which jurors actually respond and how fast, and
// which juror pairs agree more often than independence predicts.
//
// The engine consumes the stream identically live (hooked on the
// sharded task store, called under shard mutexes) and cold (WAL replay
// through the same apply path), and its state is strictly
// order-invariant across tasks: integer counters, integer histogram
// buckets, and fixed-point sums, with floats derived only at snapshot
// time over sorted keys. Live tail and cold replay of the same WAL
// horizon therefore produce bit-identical snapshots — the property the
// restart-mid-stream test and the CI fingerprint check pin down. The
// single documented exception is the pair-tracker admission cap: once
// the bounded pair map is full, which pairs were admitted depends on
// task close order, so deployments sizing PairCap below their co-vote
// cardinality trade fingerprint stability for memory.
//
// Events for tasks whose creation lies beyond the compaction horizon
// (restored from snapshot, so replay never sees their TaskCreated) are
// counted in UnknownTaskEvents and still feed juror-level counters, but
// contribute no calibration or agreement samples.
package insight

import (
	"sync"

	"juryselect/internal/obs"
	"juryselect/internal/tasks"
)

// DefaultPairCap bounds the co-vote pair map. 1<<14 pairs ≈ a 181-juror
// complete graph; beyond it new pairs are dropped (and counted) rather
// than grown, keeping the engine's footprint independent of crowd size.
const DefaultPairCap = 1 << 14

// jurorStats is one juror's accumulated profile. All fields are
// integers (or an obs.Histogram, whose state is integer buckets), so
// updates commute across tasks.
type jurorStats struct {
	invites  int64
	votes    int64
	yesVotes int64
	declines int64
	timeouts int64
	judged   int64 // votes on tasks that reached a verdict
	wrong    int64 // votes against the verdict
	epsSum   int64 // fixed-point Σ pinned ε across observations
	epsN     int64
	latency  obs.Histogram // invitation → vote, nanoseconds
}

// coVote is one recorded vote within an open task, in per-task
// application order (identical live and replay).
type coVote struct {
	juror string
	yes   bool
}

// openTask is the engine's working state for a task between its
// TaskCreated and TaskClosed events.
type openTask struct {
	strategy     string
	predictedJER float64
	votes        []coVote
}

// pairKey identifies an unordered juror pair canonically (A < B).
type pairKey struct {
	a, b string
}

// pairStats accumulates co-vote agreement for one pair.
type pairStats struct {
	n     int64 // tasks both voted on
	agree int64 // of those, same answer
}

// Engine is the analytics sink. It implements tasks.EventSink; attach
// it via tasks.Config.Events before Open so WAL recovery replays
// history into it, then leave it attached for the live tail. TaskEvent
// is called synchronously under task-store shard mutexes, so the
// engine's own lock is leaf-level and its methods never call back into
// the store.
type Engine struct {
	mu      sync.Mutex
	jurors  map[string]*jurorStats
	open    map[string]*openTask
	pairs   map[pairKey]*pairStats
	pairCap int

	calib      Reliability
	byStrategy map[string]*Reliability

	events       int64
	tasksCreated int64
	tasksDecided int64
	tasksExpired int64
	votesSeen    int64
	declinesSeen int64
	timeoutsSeen int64
	unknownTask  int64
	droppedPairs int64
}

// New returns an engine with the given pair-map bound; pairCap <= 0
// selects DefaultPairCap.
func New(pairCap int) *Engine {
	if pairCap <= 0 {
		pairCap = DefaultPairCap
	}
	return &Engine{
		jurors:     make(map[string]*jurorStats),
		open:       make(map[string]*openTask),
		pairs:      make(map[pairKey]*pairStats),
		pairCap:    pairCap,
		byStrategy: make(map[string]*Reliability),
	}
}

// juror returns (creating if needed) the stats row for id, folding in
// the pinned error rate carried by the triggering event.
func (e *Engine) juror(id string, eps float64) *jurorStats {
	j := e.jurors[id]
	if j == nil {
		j = &jurorStats{}
		e.jurors[id] = j
	}
	if eps > 0 {
		j.epsSum += fp(eps)
		j.epsN++
	}
	return j
}

// TaskEvent consumes one task state change. See the package comment for
// the ordering contract this reduction is built against.
func (e *Engine) TaskEvent(ev tasks.Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.events++
	switch ev.Type {
	case tasks.EvTaskCreated:
		e.tasksCreated++
		e.open[ev.Task] = &openTask{
			strategy:     ev.Strategy,
			predictedJER: ev.PredictedJER,
		}
		for _, j := range ev.Jury {
			e.juror(j.ID, j.ErrorRate).invites++
		}
	case tasks.EvJurorInvited:
		e.juror(ev.Juror, ev.ErrorRate).invites++
		if e.open[ev.Task] == nil {
			e.unknownTask++
		}
	case tasks.EvVoteRecorded:
		e.votesSeen++
		j := e.juror(ev.Juror, ev.ErrorRate)
		j.votes++
		if ev.Vote {
			j.yesVotes++
		}
		j.latency.Observe(ev.LatencyNS)
		if ot := e.open[ev.Task]; ot != nil {
			ot.votes = append(ot.votes, coVote{juror: ev.Juror, yes: ev.Vote})
		} else {
			e.unknownTask++
		}
	case tasks.EvJurorReleased:
		j := e.juror(ev.Juror, ev.ErrorRate)
		if ev.Timeout {
			e.timeoutsSeen++
			j.timeouts++
		} else {
			e.declinesSeen++
			j.declines++
		}
		if e.open[ev.Task] == nil {
			e.unknownTask++
		}
	case tasks.EvTaskClosed:
		ot := e.open[ev.Task]
		if ot == nil {
			e.unknownTask++
			return
		}
		delete(e.open, ev.Task)
		if ev.Decided {
			e.tasksDecided++
			// Production has no oracle: the posterior's own expected
			// error (1 − confidence) is the realized sample. Simlab
			// layers oracle 0/1 outcomes through its own Reliability.
			realized := 1 - ev.Confidence
			e.calib.Add(ot.predictedJER, realized)
			sr := e.byStrategy[ot.strategy]
			if sr == nil {
				sr = &Reliability{}
				e.byStrategy[ot.strategy] = sr
			}
			sr.Add(ot.predictedJER, realized)
			for _, v := range ot.votes {
				j := e.jurors[v.juror]
				j.judged++
				if v.yes != ev.Answer {
					j.wrong++
				}
			}
		} else {
			e.tasksExpired++
		}
		e.recordPairs(ot.votes)
	}
}

// recordPairs folds one closed task's vote list into the pair tracker.
// The list is in per-task application order, identical live and replay,
// so the increments are deterministic; only admission of brand-new
// pairs once the cap is reached depends on cross-task close order.
func (e *Engine) recordPairs(votes []coVote) {
	for i := 0; i < len(votes); i++ {
		for k := i + 1; k < len(votes); k++ {
			a, b := votes[i], votes[k]
			key := pairKey{a: a.juror, b: b.juror}
			if key.b < key.a {
				key.a, key.b = key.b, key.a
			}
			p := e.pairs[key]
			if p == nil {
				if len(e.pairs) >= e.pairCap {
					e.droppedPairs++
					continue
				}
				p = &pairStats{}
				e.pairs[key] = p
			}
			p.n++
			if a.yes == b.yes {
				p.agree++
			}
		}
	}
}
