package insight

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"juryselect/internal/tasks"
	"juryselect/jury"
)

// fakeClock is a settable deterministic clock shared by test goroutines.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 1, 9, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func crowd(n int) []jury.Juror {
	out := make([]jury.Juror, n)
	for i := range out {
		out[i] = jury.Juror{
			ID:        fmt.Sprintf("j%03d", i),
			ErrorRate: 0.1 + 0.3*float64(i)/float64(n),
			Cost:      0.1 + float64(i%5)*0.1,
		}
	}
	return out
}

// driveTasks runs n tasks to completion against the store: seeded
// pseudo-random votes with occasional declines, so the stream exercises
// creates, invites, votes, releases, and both close paths.
func driveTasks(t *testing.T, s *tasks.Store, rng *rand.Rand, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		v, err := s.Create(ctx, tasks.Spec{Pool: "crowd", TargetConfidence: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		truth := rng.Intn(2) == 0
		for k := 0; k < len(v.Jurors); k++ {
			cur, err := s.Get(v.ID)
			if err != nil {
				t.Fatal(err)
			}
			if cur.Status != tasks.StatusOpen && cur.Status != tasks.StatusAwaitingVotes {
				break
			}
			var juror *tasks.JurorView
			for idx := range cur.Jurors {
				if cur.Jurors[idx].State == tasks.JurorInvited {
					juror = &cur.Jurors[idx]
					break
				}
			}
			if juror == nil {
				break
			}
			if rng.Float64() < 0.15 {
				if _, err := s.Decline(ctx, v.ID, juror.ID); err != nil {
					t.Fatal(err)
				}
				continue
			}
			vote := truth
			if rng.Float64() < juror.ErrorRate {
				vote = !vote
			}
			if _, err := s.Vote(ctx, v.ID, juror.ID, vote); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// openStore opens a durable store over dir with a fresh insight engine
// attached before recovery, so WAL replay streams into it.
func openStore(t *testing.T, dir string, clk *fakeClock) (*tasks.Store, *Engine) {
	t.Helper()
	eng := New(0)
	s, err := tasks.Open(tasks.Config{
		Dir: dir, Sync: tasks.SyncOff, Now: clk.now,
		CompactEvery: -1, Events: eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, eng
}

// TestRestartMidStreamBitIdentical is the tentpole guarantee: an engine
// that live-tailed the event stream and an engine rebuilt purely by WAL
// replay render bit-identical snapshots — including when the store is
// killed and reopened mid-stream, twice.
func TestRestartMidStreamBitIdentical(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()
	rng := rand.New(rand.NewSource(42))

	s, live := openStore(t, dir, clk)
	if _, err := s.PutPool("crowd", crowd(25)); err != nil {
		t.Fatal(err)
	}
	driveTasks(t, s, rng, 8)
	fp1 := live.Snapshot().Fingerprint
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart 1: replay must land exactly where the live tail was.
	s2, replayed := openStore(t, dir, clk)
	if got := replayed.Snapshot().Fingerprint; got != fp1 {
		t.Fatalf("replay fingerprint %s != live %s", got, fp1)
	}

	// Continue on the recovered store: the replayed engine now live-tails.
	driveTasks(t, s2, rng, 8)
	fp2 := replayed.Snapshot().Fingerprint
	if fp2 == fp1 {
		t.Fatal("fingerprint unchanged after more traffic")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart 2: full cold replay of both phases matches the mixed
	// replay-then-live engine.
	s3, cold := openStore(t, dir, clk)
	defer s3.Close()
	snap := cold.Snapshot()
	if snap.Fingerprint != fp2 {
		t.Fatalf("cold replay fingerprint %s != live %s", snap.Fingerprint, fp2)
	}
	if snap.TasksCreated != 16 || snap.TasksDecided+snap.TasksExpired+int64(snap.TasksOpen) != 16 {
		t.Fatalf("task accounting off: %+v", snap)
	}
	if snap.Votes == 0 || len(snap.Jurors) == 0 {
		t.Fatalf("empty stream: %+v", snap)
	}
	if snap.Calibration.Overall.Total != snap.TasksDecided {
		t.Fatalf("calibration samples %d != decided %d",
			snap.Calibration.Overall.Total, snap.TasksDecided)
	}
}

// TestLiveConcurrentMatchesReplay drives concurrent writers at the live
// store (arbitrary cross-task interleaving into the engine) and checks
// the replayed engine still fingerprints identically — the
// order-invariance property, under -race.
func TestLiveConcurrentMatchesReplay(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()

	s, live := openStore(t, dir, clk)
	if _, err := s.PutPool("crowd", crowd(40)); err != nil {
		t.Fatal(err)
	}
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ctx := context.Background()
			for i := 0; i < 5; i++ {
				v, err := s.Create(ctx, tasks.Spec{Pool: "crowd"})
				if err != nil {
					t.Error(err)
					return
				}
				truth := rng.Intn(2) == 0
				for _, j := range v.Jurors {
					vote := truth
					if rng.Float64() < j.ErrorRate {
						vote = !vote
					}
					if _, err := s.Vote(ctx, v.ID, j.ID, vote); err != nil {
						break // task closed early under a racing vote
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	fp := live.Snapshot().Fingerprint
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, replayed := openStore(t, dir, clk)
	defer s2.Close()
	if got := replayed.Snapshot().Fingerprint; got != fp {
		t.Fatalf("concurrent live fingerprint %s != replay %s", fp, got)
	}
}

// TestSweepEventsReplayIdentically covers the timeout/expiry paths:
// juror timeouts journal as declines and expiry closes without a
// verdict, and both replay into identical insight state.
func TestSweepEventsReplayIdentically(t *testing.T) {
	dir := t.TempDir()
	clk := newFakeClock()

	s, live := openStore(t, dir, clk)
	if _, err := s.PutPool("crowd", crowd(9)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Create(ctx, tasks.Spec{
		Pool: "crowd", JurorTimeout: time.Minute, ExpiresIn: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	clk.mu.Lock()
	clk.t = clk.t.Add(2 * time.Hour) // past juror timeout and task expiry
	sweepAt := clk.t
	clk.mu.Unlock()
	released, expired, err := s.Sweep(sweepAt)
	if err != nil {
		t.Fatal(err)
	}
	if released == 0 && expired == 0 {
		t.Fatal("sweep did nothing")
	}
	snap := live.Snapshot()
	if snap.Timeouts != int64(released) || snap.TasksExpired != int64(expired) {
		t.Fatalf("sweep accounting: released=%d expired=%d snap=%+v", released, expired, snap)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, replayed := openStore(t, dir, clk)
	defer s2.Close()
	if got := replayed.Snapshot().Fingerprint; got != snap.Fingerprint {
		t.Fatalf("sweep replay fingerprint %s != live %s", got, snap.Fingerprint)
	}
}

// synthetic event helpers for engine-level tests (no store needed).

func evCreate(task string, jury ...tasks.EventJuror) tasks.Event {
	return tasks.Event{Type: tasks.EvTaskCreated, Task: task,
		Strategy: "altr", PredictedJER: 0.12, Jury: jury}
}

func evVote(task, juror string, yes bool) tasks.Event {
	return tasks.Event{Type: tasks.EvVoteRecorded, Task: task, Juror: juror,
		ErrorRate: 0.2, Vote: yes, LatencyNS: 5e6}
}

func evClose(task string, answer bool, conf float64) tasks.Event {
	return tasks.Event{Type: tasks.EvTaskClosed, Task: task,
		Decided: true, Answer: answer, Confidence: conf}
}

// TestUnknownTaskEventsTolerated models the compaction horizon: events
// for a task whose TaskCreated was folded into a snapshot still update
// juror counters but contribute no calibration or agreement samples.
func TestUnknownTaskEventsTolerated(t *testing.T) {
	e := New(0)
	e.TaskEvent(evVote("ghost", "a", true))
	e.TaskEvent(tasks.Event{Type: tasks.EvJurorReleased, Task: "ghost", Juror: "b", ErrorRate: 0.3})
	e.TaskEvent(evClose("ghost", true, 0.95))
	s := e.Snapshot()
	if s.UnknownTaskEvents != 3 {
		t.Fatalf("unknown events %d, want 3", s.UnknownTaskEvents)
	}
	if len(s.Jurors) != 2 || s.Jurors[0].Votes != 1 || s.Jurors[1].Declines != 1 {
		t.Fatalf("juror counters not updated: %+v", s.Jurors)
	}
	if s.Calibration.Overall.Total != 0 || s.Agreement.TrackedPairs != 0 {
		t.Fatal("unknown task leaked into calibration/agreement")
	}
}

// TestAgreementZScore checks the independence baseline: a pair that
// always agrees scores a large positive z, and the expected agreement
// derives from the global yes-rate marginals.
func TestAgreementZScore(t *testing.T) {
	e := New(0)
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("t%02d", i)
		yes := i%2 == 0 // both jurors split 50/50 globally but always match
		e.TaskEvent(evCreate(id,
			tasks.EventJuror{ID: "a", ErrorRate: 0.2},
			tasks.EventJuror{ID: "b", ErrorRate: 0.2}))
		e.TaskEvent(evVote(id, "a", yes))
		e.TaskEvent(evVote(id, "b", yes))
		e.TaskEvent(evClose(id, yes, 0.92))
	}
	rep := e.Snapshot().Agreement
	if rep.TrackedPairs != 1 {
		t.Fatalf("pairs %d, want 1", rep.TrackedPairs)
	}
	p := rep.Pairs[0]
	if p.CoVotes != 40 || p.Agreements != 40 || p.Rate != 1 {
		t.Fatalf("pair = %+v", p)
	}
	if math.Abs(p.Expected-0.5) > 1e-12 {
		t.Fatalf("expected agreement %g, want 0.5", p.Expected)
	}
	// (40 - 40*0.5)/sqrt(40*0.25) = 20/sqrt(10)
	if want := 20 / math.Sqrt(10); math.Abs(p.Z-want) > 1e-9 {
		t.Fatalf("z = %g, want %g", p.Z, want)
	}
}

// TestPairCapDropsNewPairs bounds the tracker: once the cap is reached,
// new pairs are counted as dropped, existing pairs keep accumulating.
func TestPairCapDropsNewPairs(t *testing.T) {
	e := New(1)
	mk := func(id, a, b string) {
		e.TaskEvent(evCreate(id,
			tasks.EventJuror{ID: a, ErrorRate: 0.2},
			tasks.EventJuror{ID: b, ErrorRate: 0.2}))
		e.TaskEvent(evVote(id, a, true))
		e.TaskEvent(evVote(id, b, true))
		e.TaskEvent(evClose(id, true, 0.92))
	}
	mk("t1", "a", "b")
	mk("t2", "c", "d") // over cap: dropped
	mk("t3", "a", "b") // existing pair still accumulates
	rep := e.Snapshot().Agreement
	if rep.TrackedPairs != 1 || rep.DroppedPairs != 1 {
		t.Fatalf("tracked=%d dropped=%d", rep.TrackedPairs, rep.DroppedPairs)
	}
	if rep.Pairs[0].CoVotes != 2 {
		t.Fatalf("co-votes %d, want 2", rep.Pairs[0].CoVotes)
	}
}

// TestJurorProfileDerivations pins the derived fields: response rate,
// mean pinned ε, and the Beta-posterior realized rate.
func TestJurorProfileDerivations(t *testing.T) {
	e := New(0)
	// Juror votes wrong once out of two judged tasks, declines once.
	for i, yes := range []bool{true, false} {
		id := fmt.Sprintf("t%d", i)
		e.TaskEvent(evCreate(id, tasks.EventJuror{ID: "a", ErrorRate: 0.2}))
		e.TaskEvent(evVote(id, "a", yes))
		e.TaskEvent(evClose(id, true, 0.9)) // answer true: the false vote is wrong
	}
	e.TaskEvent(evCreate("t9", tasks.EventJuror{ID: "a", ErrorRate: 0.2}))
	e.TaskEvent(tasks.Event{Type: tasks.EvJurorReleased, Task: "t9", Juror: "a", ErrorRate: 0.2})
	p := e.Snapshot().Jurors[0]
	if p.Judged != 2 || p.Wrong != 1 {
		t.Fatalf("judged=%d wrong=%d", p.Judged, p.Wrong)
	}
	if want := 2.0 / 3.0; math.Abs(p.ResponseRate-want) > 1e-12 {
		t.Fatalf("response rate %g, want %g", p.ResponseRate, want)
	}
	if math.Abs(p.PoolEps-0.2) > 1e-9 {
		t.Fatalf("pool eps %g, want 0.2", p.PoolEps)
	}
	// Beta posterior: (0.2*10 + 1) / (10 + 2) = 0.25.
	if want := 0.25; math.Abs(p.RealizedRate-want) > 1e-9 {
		t.Fatalf("realized rate %g, want %g", p.RealizedRate, want)
	}
	if p.Latency.Count != 2 || p.Latency.MaxNS != 5e6 {
		t.Fatalf("latency = %+v", p.Latency)
	}
}

// TestReliabilityOrderInvariance feeds the same sample multiset in two
// orders (and via a sharded merge) and requires identical reports.
func TestReliabilityOrderInvariance(t *testing.T) {
	samples := make([][2]float64, 0, 200)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		samples = append(samples, [2]float64{rng.Float64() * 0.6, rng.Float64()})
	}
	var fwd, rev Reliability
	var shards [4]Reliability
	for i, sm := range samples {
		fwd.Add(sm[0], sm[1])
		shards[i%4].Add(sm[0], sm[1])
	}
	for i := len(samples) - 1; i >= 0; i-- {
		rev.Add(samples[i][0], samples[i][1])
	}
	var merged Reliability
	for i := 3; i >= 0; i-- { // merge in reverse shard order too
		merged.Merge(&shards[i])
	}
	if fwd != rev || fwd != merged {
		t.Fatal("reliability state depends on sample order")
	}
	rep := fwd.Report()
	if rep.Total != 200 || rep.Brier <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	for i := 1; i < len(rep.Bins); i++ {
		if rep.Bins[i].Lo < rep.Bins[i-1].Hi {
			t.Fatal("bins out of order")
		}
	}
}

// TestReliabilityClamping: out-of-range predictions land in the edge
// bins instead of panicking or vanishing.
func TestReliabilityClamping(t *testing.T) {
	var r Reliability
	r.Add(-0.1, 0)
	r.Add(0.99, 1)
	rep := r.Report()
	if rep.Total != 2 || len(rep.Bins) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Bins[0].Lo != 0 || rep.Bins[1].Hi != 0.5 {
		t.Fatalf("edge bins = %+v", rep.Bins)
	}
}
