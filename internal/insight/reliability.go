package insight

import "math"

// NumBins is the reliability diagram's fixed resolution: predicted JER
// lives in [0, 0.5) by construction (Definition 4 caps jury error below
// a fair coin), so 20 bins of width 0.025 cover the range. Predictions
// at or above 0.5 — possible only through estimator drift — clamp into
// the last bin rather than falling off the diagram.
const NumBins = 20

// binWidth is the predicted-JER span of one reliability bin.
const binWidth = 0.5 / NumBins

// fpScale is the fixed-point scale for accumulated float samples. The
// engine must produce bit-identical state whether events arrive in live
// (arbitrary cross-task interleaving) or replay (WAL) order, and float
// addition does not commute; int64 addition does. Samples are converted
// once at Add time and only rendered back to float64 in Report.
const fpScale = 1e9

// fp converts a sample to fixed point. Inputs are probabilities and
// squared probability gaps, so int64 at 1e9 scale has headroom for
// billions of samples before overflow.
func fp(x float64) int64 { return int64(math.Round(x * fpScale)) }

// Reliability is an order-invariant reliability-diagram accumulator:
// each Add buckets a predicted error rate against the realized outcome
// and accumulates the Brier score term. All state is integer, so any
// permutation of the same Add calls — including a Merge of per-worker
// shards in any order — yields bit-identical state. Not safe for
// concurrent use; callers (the insight engine, one simlab replication)
// serialize access.
type Reliability struct {
	count   [NumBins]int64
	predSum [NumBins]int64 // fixed-point predicted-JER sum
	realSum [NumBins]int64 // fixed-point realized-error sum
	brier   int64          // fixed-point Σ (predicted − realized)²
	total   int64
}

// Add records one prediction/outcome pair. predicted is the
// selection-time JER; realized is the observed error in [0, 1] — a 0/1
// oracle indicator when ground truth is known (simlab), or 1−confidence
// as the posterior's own expected error when it is not (production).
func (r *Reliability) Add(predicted, realized float64) {
	b := int(predicted / binWidth)
	if b < 0 {
		b = 0
	}
	if b >= NumBins {
		b = NumBins - 1
	}
	r.count[b]++
	r.predSum[b] += fp(predicted)
	r.realSum[b] += fp(realized)
	d := predicted - realized
	r.brier += fp(d * d)
	r.total++
}

// Merge folds another accumulator into this one. Integer adds commute,
// so merging per-worker shards in any order produces identical state.
func (r *Reliability) Merge(o *Reliability) {
	for i := 0; i < NumBins; i++ {
		r.count[i] += o.count[i]
		r.predSum[i] += o.predSum[i]
		r.realSum[i] += o.realSum[i]
	}
	r.brier += o.brier
	r.total += o.total
}

// Total returns the number of samples recorded.
func (r *Reliability) Total() int64 { return r.total }

// ReliabilityBin is one occupied reliability-diagram bin: the predicted
// range it covers and the mean predicted vs realized error inside it. A
// calibrated estimator shows MeanRealized ≈ MeanPredicted in every bin.
type ReliabilityBin struct {
	Lo            float64 `json:"lo"`
	Hi            float64 `json:"hi"`
	Count         int64   `json:"count"`
	MeanPredicted float64 `json:"mean_predicted"`
	MeanRealized  float64 `json:"mean_realized"`
}

// ReliabilityReport is the rendered diagram: occupied bins in ascending
// predicted order plus the aggregate Brier score (mean squared gap
// between prediction and outcome; lower is better, 0 is perfect).
type ReliabilityReport struct {
	Total int64            `json:"total"`
	Brier float64          `json:"brier"`
	Bins  []ReliabilityBin `json:"bins"`
}

// Report renders the accumulator. Floats are derived from the integer
// state by the same arithmetic regardless of arrival order, so reports
// are as deterministic as the accumulator itself.
func (r *Reliability) Report() ReliabilityReport {
	rep := ReliabilityReport{Total: r.total, Bins: make([]ReliabilityBin, 0, NumBins)}
	if r.total > 0 {
		rep.Brier = float64(r.brier) / fpScale / float64(r.total)
	}
	for i := 0; i < NumBins; i++ {
		if r.count[i] == 0 {
			continue
		}
		n := float64(r.count[i])
		rep.Bins = append(rep.Bins, ReliabilityBin{
			Lo:            float64(i) * binWidth,
			Hi:            float64(i+1) * binWidth,
			Count:         r.count[i],
			MeanPredicted: float64(r.predSum[i]) / fpScale / n,
			MeanRealized:  float64(r.realSum[i]) / fpScale / n,
		})
	}
	return rep
}
