package insight

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"math"
	"sort"

	"juryselect/internal/estimate"
	"juryselect/internal/obs"
)

// JurorProfile is one juror's rendered profile: participation counts,
// the mean pool ε pinned at their invitations, the Beta-posterior
// realized error rate folded from verdict outcomes (same machinery as
// internal/estimate's drift pipeline), and vote-latency quantiles.
type JurorProfile struct {
	ID       string `json:"id"`
	Invites  int64  `json:"invites"`
	Votes    int64  `json:"votes"`
	YesVotes int64  `json:"yes_votes"`
	Declines int64  `json:"declines"`
	Timeouts int64  `json:"timeouts"`
	Judged   int64  `json:"judged"`
	Wrong    int64  `json:"wrong"`
	// PoolEps is the mean error rate the selector believed at
	// invitation time; RealizedRate is the posterior after folding the
	// juror's record against resolved verdicts. A persistent gap is the
	// signal the ROADMAP's availability/correlation items act on.
	PoolEps      float64     `json:"pool_eps"`
	RealizedRate float64     `json:"realized_rate"`
	ResponseRate float64     `json:"response_rate"`
	Latency      obs.Summary `json:"latency"`
}

// CalibrationReport is the JER reliability diagram: overall and broken
// down by selection strategy.
type CalibrationReport struct {
	Overall    ReliabilityReport            `json:"overall"`
	ByStrategy map[string]ReliabilityReport `json:"by_strategy"`
}

// AgreementPair is one tracked juror pair's co-vote record with its
// agreement-above-chance z-score: Expected is the agreement probability
// under independence given each juror's global yes-rate, and Z measures
// how many standard deviations the observed agreement count sits above
// it. Large positive Z across many co-votes is the correlated-bloc
// early-warning signal.
type AgreementPair struct {
	A          string  `json:"a"`
	B          string  `json:"b"`
	CoVotes    int64   `json:"co_votes"`
	Agreements int64   `json:"agreements"`
	Rate       float64 `json:"rate"`
	Expected   float64 `json:"expected"`
	Z          float64 `json:"z"`
}

// AgreementReport is the pair tracker's rendered state, highest-volume
// pairs first.
type AgreementReport struct {
	TrackedPairs int             `json:"tracked_pairs"`
	DroppedPairs int64           `json:"dropped_pairs"`
	Pairs        []AgreementPair `json:"pairs"`
}

// Snapshot is the engine's full rendered state. Field values are
// derived from order-invariant integer state by deterministic
// arithmetic over sorted keys, so two engines that consumed the same
// event multiset render byte-identical JSON — which is what Fingerprint
// hashes and the live≡replay checks compare.
type Snapshot struct {
	Events            int64             `json:"events"`
	TasksCreated      int64             `json:"tasks_created"`
	TasksDecided      int64             `json:"tasks_decided"`
	TasksExpired      int64             `json:"tasks_expired"`
	TasksOpen         int               `json:"tasks_open"`
	Votes             int64             `json:"votes"`
	Declines          int64             `json:"declines"`
	Timeouts          int64             `json:"timeouts"`
	UnknownTaskEvents int64             `json:"unknown_task_events"`
	Jurors            []JurorProfile    `json:"jurors"`
	Calibration       CalibrationReport `json:"calibration"`
	Agreement         AgreementReport   `json:"agreement"`
	Fingerprint       string            `json:"fingerprint"`
}

// Stats is the cheap counter block for /metrics: no maps are walked and
// no quantiles computed, so scraping stays O(1) in crowd size.
type Stats struct {
	Events             int64   `json:"events"`
	TasksCreated       int64   `json:"tasks_created"`
	TasksDecided       int64   `json:"tasks_decided"`
	TasksExpired       int64   `json:"tasks_expired"`
	TasksOpen          int     `json:"tasks_open"`
	Votes              int64   `json:"votes"`
	Declines           int64   `json:"declines"`
	Timeouts           int64   `json:"timeouts"`
	UnknownTaskEvents  int64   `json:"unknown_task_events"`
	JurorsTracked      int     `json:"jurors_tracked"`
	PairsTracked       int     `json:"pairs_tracked"`
	PairsDropped       int64   `json:"pairs_dropped"`
	CalibrationSamples int64   `json:"calibration_samples"`
	Brier              float64 `json:"brier"`
}

// Stats returns the counter block.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	var brier float64
	if e.calib.total > 0 {
		brier = float64(e.calib.brier) / fpScale / float64(e.calib.total)
	}
	return Stats{
		Events:             e.events,
		TasksCreated:       e.tasksCreated,
		TasksDecided:       e.tasksDecided,
		TasksExpired:       e.tasksExpired,
		TasksOpen:          len(e.open),
		Votes:              e.votesSeen,
		Declines:           e.declinesSeen,
		Timeouts:           e.timeoutsSeen,
		UnknownTaskEvents:  e.unknownTask,
		JurorsTracked:      len(e.jurors),
		PairsTracked:       len(e.pairs),
		PairsDropped:       e.droppedPairs,
		CalibrationSamples: e.calib.total,
		Brier:              brier,
	}
}

// Snapshot renders the full engine state deterministically and stamps
// its fingerprint: the SHA-256 of the snapshot's canonical JSON with
// the Fingerprint field empty.
func (e *Engine) Snapshot() *Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := &Snapshot{
		Events:            e.events,
		TasksCreated:      e.tasksCreated,
		TasksDecided:      e.tasksDecided,
		TasksExpired:      e.tasksExpired,
		TasksOpen:         len(e.open),
		Votes:             e.votesSeen,
		Declines:          e.declinesSeen,
		Timeouts:          e.timeoutsSeen,
		UnknownTaskEvents: e.unknownTask,
		Jurors:            e.jurorProfiles(),
		Calibration:       e.calibrationReport(),
		Agreement:         e.agreementReport(),
	}
	raw, err := json.Marshal(s)
	if err != nil { // struct of scalars/slices/maps: cannot fail
		panic("insight: snapshot marshal: " + err.Error())
	}
	sum := sha256.Sum256(raw)
	s.Fingerprint = hex.EncodeToString(sum[:])
	return s
}

// jurorProfiles renders every tracked juror in ID order.
func (e *Engine) jurorProfiles() []JurorProfile {
	ids := make([]string, 0, len(e.jurors))
	for id := range e.jurors {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]JurorProfile, 0, len(ids))
	for _, id := range ids {
		j := e.jurors[id]
		p := JurorProfile{
			ID:       id,
			Invites:  j.invites,
			Votes:    j.votes,
			YesVotes: j.yesVotes,
			Declines: j.declines,
			Timeouts: j.timeouts,
			Judged:   j.judged,
			Wrong:    j.wrong,
		}
		if j.epsN > 0 {
			p.PoolEps = float64(j.epsSum) / fpScale / float64(j.epsN)
		}
		p.RealizedRate = realizedRate(p.PoolEps, j.wrong, j.judged)
		if asked := j.votes + j.declines + j.timeouts; asked > 0 {
			p.ResponseRate = float64(j.votes) / float64(asked)
		}
		hs := j.latency.Snapshot()
		p.Latency = hs.Summary()
		out = append(out, p)
	}
	return out
}

// realizedRate folds a juror's verdict record into their pool prior as
// a Beta posterior. With no usable prior (a juror first seen beyond the
// compaction horizon) it falls back to the raw observed rate.
func realizedRate(prior float64, wrong, judged int64) float64 {
	r, err := estimate.PosteriorRate(prior, estimate.DefaultPriorWeight, wrong, judged)
	if err == nil {
		return r
	}
	if judged > 0 {
		return float64(wrong) / float64(judged)
	}
	return 0
}

// calibrationReport renders the overall and per-strategy diagrams.
func (e *Engine) calibrationReport() CalibrationReport {
	rep := CalibrationReport{
		Overall:    e.calib.Report(),
		ByStrategy: make(map[string]ReliabilityReport, len(e.byStrategy)),
	}
	for strat, r := range e.byStrategy {
		rep.ByStrategy[strat] = r.Report()
	}
	return rep
}

// agreementReport renders tracked pairs sorted by volume (co-votes
// descending, then pair key) — "top K by volume" reads off the prefix.
func (e *Engine) agreementReport() AgreementReport {
	rep := AgreementReport{
		TrackedPairs: len(e.pairs),
		DroppedPairs: e.droppedPairs,
		Pairs:        make([]AgreementPair, 0, len(e.pairs)),
	}
	for key, p := range e.pairs {
		ap := AgreementPair{
			A:          key.a,
			B:          key.b,
			CoVotes:    p.n,
			Agreements: p.agree,
			Rate:       float64(p.agree) / float64(p.n),
		}
		ap.Expected, ap.Z = e.agreementZ(key, p)
		rep.Pairs = append(rep.Pairs, ap)
	}
	sort.Slice(rep.Pairs, func(i, k int) bool {
		a, b := rep.Pairs[i], rep.Pairs[k]
		if a.CoVotes != b.CoVotes {
			return a.CoVotes > b.CoVotes
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	return rep
}

// agreementZ computes the pair's expected agreement probability under
// independence — p = q₁q₂ + (1−q₁)(1−q₂) from each juror's global
// yes-rate — and the z-score of the observed agreement count against
// Binomial(n, p). Degenerate marginals (a juror who always votes one
// way) make the variance 0; the z-score is reported as 0 there rather
// than ±Inf, since a constant voter carries no correlation evidence.
func (e *Engine) agreementZ(key pairKey, p *pairStats) (expected, z float64) {
	ja, jb := e.jurors[key.a], e.jurors[key.b]
	if ja == nil || jb == nil || ja.votes == 0 || jb.votes == 0 || p.n == 0 {
		return 0, 0
	}
	qa := float64(ja.yesVotes) / float64(ja.votes)
	qb := float64(jb.yesVotes) / float64(jb.votes)
	expected = qa*qb + (1-qa)*(1-qb)
	variance := float64(p.n) * expected * (1 - expected)
	if variance <= 0 {
		return expected, 0
	}
	z = (float64(p.agree) - float64(p.n)*expected) / math.Sqrt(variance)
	return expected, z
}
