package jer

import "juryselect/internal/pbdist"

// CurvePoint is the JER of one odd prefix of a juror ordering.
type CurvePoint struct {
	// Size is the (odd) jury size.
	Size int
	// JER is the exact Jury Error Rate of the first Size jurors.
	JER float64
}

// PrefixCurve returns JER for every odd prefix of rates, in one O(N²)
// incremental pass. With rates sorted ascending this is exactly the
// objective landscape AltrALG searches (Lemma 3 guarantees each prefix is
// the optimal jury of its size), so the curve exposes the size-vs-quality
// trade-off behind Figure 3(a): callers can see how flat the optimum is
// and how quickly quality degrades away from it.
func PrefixCurve(rates []float64) ([]CurvePoint, error) {
	if len(rates) == 0 {
		return nil, ErrEmptyJury
	}
	if err := pbdist.ValidateRates(rates); err != nil {
		return nil, err
	}
	sweep := NewSweep()
	curve := make([]CurvePoint, 0, (len(rates)+1)/2)
	for n := 1; n <= len(rates); n += 2 {
		for sweep.N() < n {
			if err := sweep.Extend(rates[sweep.N()]); err != nil {
				return nil, err
			}
		}
		v, err := sweep.JER()
		if err != nil {
			return nil, err
		}
		curve = append(curve, CurvePoint{Size: n, JER: v})
	}
	return curve, nil
}

// ArgMin returns the curve point with the smallest JER (the first one on
// ties). It panics on an empty curve, which PrefixCurve never returns.
func ArgMin(curve []CurvePoint) CurvePoint {
	best := curve[0]
	for _, p := range curve[1:] {
		if p.JER < best.JER {
			best = p
		}
	}
	return best
}
