package jer

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestPrefixCurveMatchesDirectEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rates := make([]float64, 41)
	for i := range rates {
		rates[i] = 0.02 + 0.9*rng.Float64()
	}
	curve, err := PrefixCurve(rates)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 21 {
		t.Fatalf("curve has %d points, want 21", len(curve))
	}
	for _, p := range curve {
		if p.Size%2 != 1 {
			t.Fatalf("even size %d on curve", p.Size)
		}
		want, err := DP(rates[:p.Size])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.JER-want) > 1e-9 {
			t.Fatalf("size %d: curve %.12f vs direct %.12f", p.Size, p.JER, want)
		}
	}
}

func TestPrefixCurveMotivationExample(t *testing.T) {
	// Sorted rates of the motivation example: curve must reproduce the
	// Table 2 odd-prefix values with the minimum at size 5.
	rates := []float64{0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4}
	curve, err := PrefixCurve(rates)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{1: 0.1, 3: 0.072, 5: 0.07036, 7: 0.085248}
	for _, p := range curve {
		if w, ok := want[p.Size]; ok && math.Abs(p.JER-w) > 1e-9 {
			t.Errorf("size %d: %.6f, want %.6f", p.Size, p.JER, w)
		}
	}
	best := ArgMin(curve)
	if best.Size != 5 || math.Abs(best.JER-0.07036) > 1e-9 {
		t.Errorf("ArgMin = %+v, want size 5 / 0.07036", best)
	}
}

func TestPrefixCurveValidation(t *testing.T) {
	if _, err := PrefixCurve(nil); !errors.Is(err, ErrEmptyJury) {
		t.Error("expected ErrEmptyJury")
	}
	if _, err := PrefixCurve([]float64{1.5}); err == nil {
		t.Error("expected error for invalid rate")
	}
}

func TestArgMinFirstOnTies(t *testing.T) {
	curve := []CurvePoint{{1, 0.3}, {3, 0.1}, {5, 0.1}, {7, 0.2}}
	if best := ArgMin(curve); best.Size != 3 {
		t.Errorf("ArgMin = %+v, want first minimum (size 3)", best)
	}
}
