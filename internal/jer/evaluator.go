package jer

import (
	"fmt"
	"sync"

	"juryselect/internal/fft"
	"juryselect/internal/pbdist"
)

// Evaluator is a reusable JER kernel: it owns the DP rolling vectors of
// Algorithm 1, the PMF ladder and convolution scratch of Algorithm 2, and
// the FFT arena those convolutions draw from. Buffers grow to the largest
// jury seen and are then reused, so a long-lived Evaluator computes JER
// with zero steady-state heap allocation on both the DP and CBA paths.
//
// The arithmetic is exactly the package-level evaluators': Compute(rates,
// algo) on a fresh Evaluator is bit-identical to jer.Compute(rates, algo),
// and reuse cannot change values (every buffer is fully overwritten before
// it is read — asserted by TestEvaluatorReuseBitIdentical).
//
// An Evaluator is not safe for concurrent use; give each worker its own
// (the batch engine keeps one per worker) or rely on the package-level pool
// behind jer.Compute.
type Evaluator struct {
	// DP rolling vectors (Algorithm 1): prev[m] = Pr(C ≥ L-1 | J_m),
	// cur[m] = Pr(C ≥ L | J_m).
	prev, cur []float64
	// CBA ladder state (Algorithm 2, iterative): tasks is the explicit
	// recursion stack, spans indexes the PMFs currently live on the
	// contiguous value stack, conv is the convolution output scratch.
	tasks []distTask
	spans []distSpan
	stack []float64
	conv  []float64
	fs    *fft.Scratch
}

// distTask is one frame of the iterative divide-and-conquer: expand the
// juror range [lo,hi), or (merge=true) convolve the two PMFs its halves
// left on the value stack.
type distTask struct {
	lo, hi int
	merge  bool
}

// distSpan locates one PMF on the contiguous value stack.
type distSpan struct {
	start, n int
}

// NewEvaluator returns an empty Evaluator; buffers grow on first use.
func NewEvaluator() *Evaluator { return &Evaluator{fs: fft.NewScratch()} }

// evaluatorPool backs the package-level Compute wrapper so one-shot callers
// get the pooled kernel without managing an Evaluator themselves.
var evaluatorPool = sync.Pool{New: func() any { return NewEvaluator() }}

// Compute evaluates JER(rates) with the chosen algorithm. It validates the
// rates (Definition 4: every ε ∈ (0,1)) before computing.
func (e *Evaluator) Compute(rates []float64, algo Algorithm) (float64, error) {
	if len(rates) == 0 {
		return 0, ErrEmptyJury
	}
	if err := pbdist.ValidateRates(rates); err != nil {
		return 0, err
	}
	return e.ComputeValidated(rates, algo)
}

// ComputeValidated is Compute without the rate validation pass, for callers
// that have already validated (and possibly canonicalized) the rates — the
// batch engine validates once per request and then uses this entry point,
// so the O(n) validation scan runs exactly once per request instead of
// twice. Passing unvalidated rates is a bug: out-of-range rates yield
// meaningless probabilities rather than an error. The empty jury is still
// rejected here because it would otherwise panic.
func (e *Evaluator) ComputeValidated(rates []float64, algo Algorithm) (float64, error) {
	n := len(rates)
	if n == 0 {
		return 0, ErrEmptyJury
	}
	switch algo {
	case Auto:
		if n <= autoCrossover {
			return e.dp(rates), nil
		}
		return e.cba(rates), nil
	case DPAlgo:
		return e.dp(rates), nil
	case CBAAlgo:
		return e.cba(rates), nil
	case EnumAlgo:
		// Off the hot path (n ≤ 25); TailEnum's own validation is accepted.
		return pbdist.TailEnum(rates, FailThreshold(n))
	default:
		return 0, fmt.Errorf("jer: unknown algorithm %d", int(algo))
	}
}

// grow returns buf resized to length n, reallocating only when capacity is
// insufficient — and then at least doubling, so a caller sweeping
// monotonically growing juries (e.g. AltrALG's prefix scan) reallocates
// O(log n) times instead of once per size. Contents are unspecified;
// callers overwrite.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		c := 2 * cap(buf)
		if c < n {
			c = n
		}
		return make([]float64, n, c)
	}
	return buf[:n]
}

// dp implements Algorithm 1 on the evaluator's rolling vectors: the
// recurrence of Lemma 1,
//
//	Pr(C ≥ L | J_m) = Pr(C ≥ L-1 | J_{m-1})·ε_m + Pr(C ≥ L | J_{m-1})·(1-ε_m)
//
// evaluated bottom-up over L = 1..(n+1)/2, O(n²) time and O(n) space
// exactly as Corollary 1 states.
func (e *Evaluator) dp(rates []float64) float64 {
	n := len(rates)
	threshold := FailThreshold(n)
	e.prev = grow(e.prev, n+1)
	e.cur = grow(e.cur, n+1)
	prev, cur := e.prev, e.cur
	for m := range prev {
		prev[m] = 1 // Pr(C ≥ 0 | J_m) = 1
	}
	for L := 1; L <= threshold; L++ {
		// Pr(C ≥ L | J_m) = 0 for m < L.
		for m := 0; m < L && m <= n; m++ {
			cur[m] = 0
		}
		for m := L; m <= n; m++ {
			eps := rates[m-1]
			cur[m] = prev[m-1]*eps + cur[m-1]*(1-eps)
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// cba implements Algorithm 2: the exact wrong-vote PMF by divide-and-conquer
// convolution, then the upper tail at the failure threshold.
func (e *Evaluator) cba(rates []float64) float64 {
	pmf := e.distribution(rates)
	return tailSum(pmf, FailThreshold(len(rates)))
}

// distribution computes the exact PMF of the number of wrong voters into
// the evaluator's value stack and returns it (length len(rates)+1, valid
// until the next evaluator call). It is the iterative form of Algorithm 2:
// the recursion "split [lo,hi) at its floor midpoint, recurse, merge by
// convolution" is driven by an explicit task stack, visiting the exact same
// merge tree in the exact same order as the recursive formulation — child
// PMFs are adjacent on a contiguous value stack and each merge convolves
// left×right into scratch, then collapses the pair in place. Same tree,
// same convolution operand order, same code under each convolution: the
// output is bit-identical to the recursive version (asserted across sizes
// 1..2048 by TestIterativeDistributionBitIdentical), with zero steady-state
// allocation instead of O(n) slices per call.
func (e *Evaluator) distribution(rates []float64) []float64 {
	n := len(rates)
	if n == 0 {
		e.stack = append(e.stack[:0], 1)
		return e.stack
	}
	e.tasks = append(e.tasks[:0], distTask{lo: 0, hi: n})
	e.spans = e.spans[:0]
	e.stack = e.stack[:0]
	for len(e.tasks) > 0 {
		t := e.tasks[len(e.tasks)-1]
		e.tasks = e.tasks[:len(e.tasks)-1]
		switch {
		case t.merge:
			// Lines 6–9 of Algorithm 2: merge the halves' PMFs, which sit
			// as the top two spans (left below right) of the value stack.
			k := len(e.spans)
			l, r := e.spans[k-2], e.spans[k-1]
			outLen := l.n + r.n - 1
			e.conv = grow(e.conv, outLen)
			fft.ConvolveInto(e.conv, e.stack[l.start:l.start+l.n],
				e.stack[r.start:r.start+r.n], e.fs)
			copy(e.stack[l.start:], e.conv)
			e.stack = e.stack[:l.start+outLen]
			e.spans = e.spans[:k-1]
			e.spans[k-2] = distSpan{start: l.start, n: outLen}
		case t.hi-t.lo == 1:
			// Lines 2–4 of Algorithm 2: a single juror's PMF.
			r := rates[t.lo]
			e.stack = append(e.stack, 1-r, r)
			e.spans = append(e.spans, distSpan{start: len(e.stack) - 2, n: 2})
		default:
			// Expand: left half first, then right, then merge — pushed in
			// reverse so they pop in recursion order.
			mid := t.lo + (t.hi-t.lo)/2
			e.tasks = append(e.tasks,
				distTask{lo: t.lo, hi: t.hi, merge: true},
				distTask{lo: mid, hi: t.hi},
				distTask{lo: t.lo, hi: mid})
		}
	}
	return e.stack
}
