package jer

import (
	"math"
	"math/big"
	"testing"

	"juryselect/internal/fft"
	"juryselect/internal/pbdist"
	"juryselect/internal/randx"
)

// recursiveDistribution is the pre-refactor formulation of Algorithm 2 —
// allocate-per-node recursion, split at the floor midpoint, merge with
// fft.Convolve — kept verbatim as the reference the iterative kernel must
// reproduce bit-for-bit.
func recursiveDistribution(rates []float64) []float64 {
	n := len(rates)
	if n == 0 {
		return []float64{1}
	}
	if n == 1 {
		return []float64{1 - rates[0], rates[0]}
	}
	mid := n / 2
	left := recursiveDistribution(rates[:mid])
	right := recursiveDistribution(rates[mid:])
	return fft.Convolve(left, right)
}

// TestIterativeDistributionBitIdentical asserts the pooled iterative CBA
// ladder reproduces the recursive implementation bit-for-bit across sizes
// 1..2048 — same merge tree, same convolution operand order, same code
// under every convolution — on one continuously reused Evaluator, so
// buffer reuse is exercised at every size transition (shrinking and
// growing).
func TestIterativeDistributionBitIdentical(t *testing.T) {
	src := randx.New(97)
	ev := NewEvaluator()
	maxN := 2048
	if testing.Short() {
		maxN = 300
	}
	for n := 1; n <= maxN; n++ {
		rates := src.ErrorRates(n, 0.3, 0.2)
		want := recursiveDistribution(rates)
		got := ev.distribution(rates)
		if len(got) != len(want) {
			t.Fatalf("n=%d: length %d, want %d", n, len(got), len(want))
		}
		for k := range want {
			if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
				t.Fatalf("n=%d k=%d: %v != %v (not bit-identical)", n, k, got[k], want[k])
			}
		}
	}
}

// TestEvaluatorReuseBitIdentical asserts a reused Evaluator returns exactly
// the values a fresh one does, for both algorithms, across interleaved
// sizes — i.e. no state leaks between calls through the pooled buffers.
func TestEvaluatorReuseBitIdentical(t *testing.T) {
	src := randx.New(131)
	reused := NewEvaluator()
	sizes := []int{1, 513, 2, 1001, 17, 3, 700, 1, 256, 1025}
	for _, algo := range []Algorithm{DPAlgo, CBAAlgo, Auto} {
		for _, n := range sizes {
			rates := src.ErrorRates(n, 0.35, 0.2)
			want, err := NewEvaluator().Compute(rates, algo)
			if err != nil {
				t.Fatal(err)
			}
			got, err := reused.Compute(rates, algo)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%v n=%d: reused %v != fresh %v", algo, n, got, want)
			}
		}
	}
}

// TestEvaluatorMatchesPackageCompute asserts the package wrapper and the
// kernel agree bit-for-bit, and that ComputeValidated equals Compute on
// valid input.
func TestEvaluatorMatchesPackageCompute(t *testing.T) {
	src := randx.New(19)
	ev := NewEvaluator()
	for _, n := range []int{1, 5, 101, 513, 601} {
		rates := src.ErrorRates(n, 0.3, 0.15)
		for _, algo := range []Algorithm{Auto, DPAlgo, CBAAlgo} {
			pkg, err := Compute(rates, algo)
			if err != nil {
				t.Fatal(err)
			}
			checked, err := ev.Compute(rates, algo)
			if err != nil {
				t.Fatal(err)
			}
			unchecked, err := ev.ComputeValidated(rates, algo)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(pkg) != math.Float64bits(checked) ||
				math.Float64bits(pkg) != math.Float64bits(unchecked) {
				t.Fatalf("algo %v n=%d: package %v, Compute %v, ComputeValidated %v",
					algo, n, pkg, checked, unchecked)
			}
		}
	}
}

// TestEvaluatorErrors asserts the kernel validates like the package entry
// points.
func TestEvaluatorErrors(t *testing.T) {
	ev := NewEvaluator()
	if _, err := ev.Compute(nil, Auto); err != ErrEmptyJury {
		t.Fatalf("empty jury: %v", err)
	}
	if _, err := ev.ComputeValidated(nil, Auto); err != ErrEmptyJury {
		t.Fatalf("empty jury unchecked: %v", err)
	}
	if _, err := ev.Compute([]float64{1.5}, Auto); err == nil {
		t.Fatal("out-of-range rate accepted")
	}
	if _, err := ev.Compute([]float64{0.2}, Algorithm(99)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// naiveSum is the uncompensated accumulation tailSum used before the
// Kahan hardening, kept for the drift comparison below.
func naiveSum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// TestTailSumCompensation builds an adversarial large-n tail — thousands
// of terms spanning many orders of magnitude — and checks the compensated
// tail sum lands within 1 ulp of an exact big.Float reference while the
// plain left-to-right sum it replaced drifts measurably further.
func TestTailSumCompensation(t *testing.T) {
	// A binomial-free adversarial PMF: geometric decay with alternating
	// magnitude jumps forces the running sum to absorb terms ~1e-16 of its
	// size, where uncompensated addition sheds a half-ulp per term.
	n := 20001
	pmf := make([]float64, n)
	for i := range pmf {
		pmf[i] = math.Exp(-0.001*float64(i)) * (1 + 0.5*math.Cos(float64(i)))
	}
	exact := new(big.Float).SetPrec(200)
	for _, v := range pmf {
		exact.Add(exact, new(big.Float).SetFloat64(v))
	}
	want, _ := exact.Float64()

	ulp := math.Nextafter(want, math.Inf(1)) - want
	kahan := pbdist.KahanSum(pmf)
	naive := naiveSum(pmf)
	kahanErr := math.Abs(kahan - want)
	naiveErr := math.Abs(naive - want)
	if kahanErr > ulp {
		t.Fatalf("compensated sum off by %g (> 1 ulp of %g)", kahanErr, want)
	}
	if naiveErr <= kahanErr {
		t.Fatalf("adversarial input not adversarial: naive err %g ≤ kahan err %g", naiveErr, kahanErr)
	}
	t.Logf("naive drift %g vs compensated %g (removed %.0f ulps)",
		naiveErr, kahanErr, (naiveErr-kahanErr)/ulp)
}
