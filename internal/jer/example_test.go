package jer_test

import (
	"fmt"

	"juryselect/internal/jer"
)

// The three jurors C, D, E of the paper's motivation example fail with
// probability 0.174 under majority voting.
func ExampleCompute() {
	v, err := jer.Compute([]float64{0.2, 0.3, 0.3}, jer.Auto)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.3f\n", v)
	// Output: 0.174
}

// The Paley–Zygmund bound is usable only when the expected number of wrong
// voters reaches the majority threshold.
func ExampleLowerBound() {
	_, usableReliable := jer.LowerBound([]float64{0.1, 0.1, 0.1})
	bound, usableNoisy := jer.LowerBound([]float64{0.9, 0.9, 0.9})
	fmt.Printf("reliable usable=%v noisy usable=%v bound>0=%v\n",
		usableReliable, usableNoisy, bound > 0)
	// Output: reliable usable=false noisy usable=true bound>0=true
}

// PrefixCurve exposes the full size-vs-JER landscape of Figure 3(a)'s
// optimization: for the motivation example the best odd prefix is size 5.
func ExamplePrefixCurve() {
	rates := []float64{0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4} // sorted ascending
	curve, err := jer.PrefixCurve(rates)
	if err != nil {
		panic(err)
	}
	best := jer.ArgMin(curve)
	fmt.Printf("best size %d at %.5f\n", best.Size, best.JER)
	// Output: best size 5 at 0.07036
}
