package jer

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzJER cross-checks the three exact evaluators of Section 3.1 — DP
// (Algorithm 1), CBA (Algorithm 2) and the naive minority enumeration —
// on fuzzer-chosen small juries. The raw bytes decode to up to 15 rates in
// (0,1); any two evaluators disagreeing beyond accumulated-round-off
// tolerance is a kernel bug.
//
// Run the seed corpus as a plain test (go test), or explore with
// go test -fuzz=FuzzJER ./internal/jer.
func FuzzJER(f *testing.F) {
	f.Add([]byte{0x80, 0x10, 0xFF})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{0x00, 0x00, 0x00})                     // extreme small rates
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF})         // extreme large rates
	f.Add([]byte{0x7F, 0x80, 0x81, 0x7E, 0x80, 0x80})   // near-1/2 rates
	f.Add(binary.LittleEndian.AppendUint64(nil, 1<<63)) // single juror
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := len(data)
		if n > 15 {
			n = 15
		}
		rates := make([]float64, n)
		for i := 0; i < n; i++ {
			// Map byte b to (0,1) strictly: (b+0.5)/256 ∈ [0.00195, 0.998].
			rates[i] = (float64(data[i]) + 0.5) / 256
		}
		dp, err := Compute(rates, DPAlgo)
		if err != nil {
			t.Fatalf("DP: %v", err)
		}
		cba, err := Compute(rates, CBAAlgo)
		if err != nil {
			t.Fatalf("CBA: %v", err)
		}
		enum, err := Compute(rates, EnumAlgo)
		if err != nil {
			t.Fatalf("Enum: %v", err)
		}
		const tol = 1e-10
		if math.Abs(dp-cba) > tol {
			t.Fatalf("rates %v: DP %v vs CBA %v", rates, dp, cba)
		}
		if math.Abs(dp-enum) > tol {
			t.Fatalf("rates %v: DP %v vs Enum %v", rates, dp, enum)
		}
		if dp < 0 || dp > 1 {
			t.Fatalf("rates %v: JER %v outside [0,1]", rates, dp)
		}
	})
}
