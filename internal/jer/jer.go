// Package jer computes the Jury Error Rate (JER) of Definition 6 in the
// paper: the probability that, under Majority Voting, at least half of a
// jury votes against the latent truth,
//
//	JER(J_n) = Pr(C ≥ (n+1)/2),
//
// where C is the Poisson–Binomial count of wrong voters with parameters
// ε_1,…,ε_n (the individual error rates).
//
// Four evaluators are provided, mirroring Section 3.1:
//
//   - Enum: the naive O(2^n) enumeration of all "Minorities" (the baseline
//     the paper rejects; retained as ground truth for tests).
//   - DP: the dynamic-programming method of Algorithm 1 — O(n²) time,
//     O(n) space.
//   - CBA: the Convolution-Based Algorithm of Algorithm 2 — divide and
//     conquer with FFT merging.
//   - MonteCarlo: a simulation estimator (not in the paper; extension used
//     to validate the analytic values empirically).
//
// LowerBound implements the Paley–Zygmund pruning bound of Lemma 2.
package jer

import (
	"errors"
	"fmt"

	"juryselect/internal/pbdist"
	"juryselect/internal/randx"
)

// ErrEmptyJury reports a JER request for zero jurors.
var ErrEmptyJury = errors.New("jer: empty jury")

// FailThreshold returns the minimum number of wrong voters that makes the
// jury fail: ceil((n+1)/2). For the odd sizes the paper assumes this is
// exactly (n+1)/2; for even sizes a tie cannot produce a wrong majority, so
// failure still requires a strict wrong majority.
func FailThreshold(n int) int { return (n + 2) / 2 }

// Algorithm selects the JER evaluation strategy.
type Algorithm int

const (
	// Auto picks DP below a size crossover and CBA above it.
	Auto Algorithm = iota
	// DPAlgo is Algorithm 1 (dynamic programming).
	DPAlgo
	// CBAAlgo is Algorithm 2 (divide & conquer convolution).
	CBAAlgo
	// EnumAlgo is the naive exponential enumeration; only valid for n ≤ 25.
	EnumAlgo
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case DPAlgo:
		return "dp"
	case CBAAlgo:
		return "cba"
	case EnumAlgo:
		return "enum"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// autoCrossover is the jury size above which Auto switches from DP to CBA.
// DP is O(n²) with a tiny constant; CBA wins for large juries.
const autoCrossover = 512

// Compute evaluates JER(rates) with the chosen algorithm. It is a thin
// wrapper over a pooled Evaluator: after the pool is warm a call performs
// no heap allocation on the DP and CBA paths. Hot loops that evaluate many
// juries should hold their own Evaluator instead (one Get/Put pair per
// call is the only overhead this wrapper adds).
func Compute(rates []float64, algo Algorithm) (float64, error) {
	e := evaluatorPool.Get().(*Evaluator)
	v, err := e.Compute(rates, algo)
	evaluatorPool.Put(e)
	return v, err
}

// DP evaluates JER with Algorithm 1. It validates input.
func DP(rates []float64) (float64, error) { return Compute(rates, DPAlgo) }

// CBA evaluates JER with Algorithm 2. It validates input.
func CBA(rates []float64) (float64, error) { return Compute(rates, CBAAlgo) }

// Enum evaluates JER by exhaustive minority enumeration (n ≤ 25).
func Enum(rates []float64) (float64, error) { return Compute(rates, EnumAlgo) }

// Distribution returns the exact PMF of the number of wrong voters using
// the divide-and-conquer convolution of Algorithm 2: the juror range is
// split at its floor midpoint, each half's PMF is obtained the same way,
// and halves merge by polynomial multiplication (convolution,
// FFT-accelerated for large blocks). The merge tree is evaluated
// iteratively on a pooled Evaluator (see Evaluator.distribution), visiting
// the same merges in the same order as the recursive formulation, so the
// values are unchanged. The result has length len(rates)+1; entry k is
// Pr(C = k). Rates must be valid; callers that accept external input
// should use Compute which validates.
func Distribution(rates []float64) []float64 {
	e := evaluatorPool.Get().(*Evaluator)
	pmf := e.distribution(rates)
	out := make([]float64, len(pmf))
	copy(out, pmf)
	evaluatorPool.Put(e)
	return out
}

// tailSum returns Σ pmf[i] for i ≥ k, clamped to [0,1]. Whichever side of
// the PMF is shorter is summed (the tail directly, or 1 − head), and the
// sum is Kahan-compensated (pbdist.KahanSum): at the paper's large jury
// sizes a plain left-to-right sum over thousands of near-cancelling
// round-off-bearing terms drifts by ~n·ulp, which compensation removes
// (see TestTailSumCompensation).
func tailSum(pmf []float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k >= len(pmf) {
		return 0
	}
	var tail float64
	if len(pmf)-k <= k {
		tail = pbdist.KahanSum(pmf[k:])
	} else {
		tail = 1 - pbdist.KahanSum(pmf[:k])
	}
	if tail < 0 {
		return 0
	}
	if tail > 1 {
		return 1
	}
	return tail
}

// LowerBound computes the Paley–Zygmund lower bound of Lemma 2:
//
//	JER(J_n) ≥ (1-γ)²μ² / ((1-γ)²μ² + σ²),  γ = ((n+1)/2)/μ,
//
// with μ = Σε_i and σ² = Σε_i(1-ε_i). The bound is only valid when
// γ ∈ (0,1), i.e. when the expected number of wrong voters already exceeds
// the failure threshold; usable reports whether that held. When usable is
// false the caller must fall back to an exact evaluation, exactly as
// Algorithm 3 does on its γ ≥ 1 branch.
func LowerBound(rates []float64) (bound float64, usable bool) {
	n := len(rates)
	if n == 0 {
		return 0, false
	}
	mu, sigma2 := 0.0, 0.0
	for _, e := range rates {
		mu += e
		sigma2 += e * (1 - e)
	}
	return LowerBoundMoments(n, mu, sigma2)
}

// LowerBoundMoments is LowerBound when μ and σ² are already known, e.g.
// maintained incrementally during a prefix sweep. It costs O(1).
func LowerBoundMoments(n int, mu, sigma2 float64) (bound float64, usable bool) {
	if n == 0 || mu <= 0 {
		return 0, false
	}
	gamma := float64(FailThreshold(n)) / mu
	if gamma <= 0 || gamma >= 1 {
		return 0, false
	}
	t := (1 - gamma) * mu
	t2 := t * t
	return t2 / (t2 + sigma2), true
}

// MonteCarlo estimates JER by simulating trials independent votings: each
// juror votes wrongly with probability ε_i and the voting fails when the
// wrong count reaches the failure threshold. The estimator is unbiased with
// standard error ≤ 1/(2√trials). Extension beyond the paper, used to
// validate the analytic evaluators against simulated crowd behaviour.
func MonteCarlo(rates []float64, trials int, src *randx.Source) (float64, error) {
	if len(rates) == 0 {
		return 0, ErrEmptyJury
	}
	if trials <= 0 {
		return 0, errors.New("jer: MonteCarlo requires trials > 0")
	}
	if err := pbdist.ValidateRates(rates); err != nil {
		return 0, err
	}
	threshold := FailThreshold(len(rates))
	fails := 0
	for t := 0; t < trials; t++ {
		wrong := 0
		for _, e := range rates {
			if src.Bernoulli(e) {
				wrong++
				if wrong >= threshold {
					break // outcome decided; skip remaining jurors
				}
			}
		}
		if wrong >= threshold {
			fails++
		}
	}
	return float64(fails) / float64(trials), nil
}

// Sweep incrementally evaluates JER over growing prefixes of a juror
// ordering. Each Extend costs O(m) where m is the current prefix length, so
// sweeping all prefixes of N jurors costs O(N²) total — asymptotically the
// same as a single DP evaluation of the full set, versus O(ΣN n log n) for
// re-running CBA at every size as Algorithm 3 does literally. This is the
// "incremental sweep" ablation of DESIGN.md.
type Sweep struct {
	dist   pbdist.Dist
	mu     float64
	sigma2 float64
}

// NewSweep returns an empty sweep.
func NewSweep() *Sweep { return &Sweep{} }

// Extend appends one juror with the given error rate.
func (s *Sweep) Extend(rate float64) error {
	if err := s.dist.Append(rate); err != nil {
		return err
	}
	s.mu += rate
	s.sigma2 += rate * (1 - rate)
	return nil
}

// N returns the current prefix length.
func (s *Sweep) N() int { return s.dist.N() }

// JER returns the Jury Error Rate of the current prefix. It costs O(n) in
// the prefix length (a tail sum over the maintained distribution).
func (s *Sweep) JER() (float64, error) {
	n := s.dist.N()
	if n == 0 {
		return 0, ErrEmptyJury
	}
	return s.dist.TailAtLeast(FailThreshold(n)), nil
}

// LowerBound returns the Lemma 2 bound for the current prefix in O(1),
// using incrementally maintained moments.
func (s *Sweep) LowerBound() (bound float64, usable bool) {
	return LowerBoundMoments(s.dist.N(), s.mu, s.sigma2)
}
