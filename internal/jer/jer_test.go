package jer

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"juryselect/internal/pbdist"
	"juryselect/internal/randx"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// epsAG are the error rates of jurors A–G from the paper's motivation
// example (Figure 1 / Table 2).
var epsAG = []float64{0.1, 0.2, 0.2, 0.3, 0.3, 0.4, 0.4}

// table2 lists the juries of Table 2 with exact JER values. Two cells of
// the printed table are rounded/typo'd in the paper (0.0703 for 0.07036;
// 0.0805 where the running text says 0.085 and the exact value is
// 0.085248); the exact values below are verified independently by the
// enumeration evaluator in TestTable2AllAlgorithmsAgree.
var table2 = []struct {
	name  string
	rates []float64
	want  float64
}{
	{"C", []float64{0.2}, 0.2},
	{"A", []float64{0.1}, 0.1},
	{"C,D,E", []float64{0.2, 0.3, 0.3}, 0.174},
	{"A,B,C", []float64{0.1, 0.2, 0.2}, 0.072},
	{"A,B,C,D,E", []float64{0.1, 0.2, 0.2, 0.3, 0.3}, 0.07036},
	{"A,B,C,D,E,F,G", epsAG, 0.085248},
	{"A,B,C,F,G", []float64{0.1, 0.2, 0.2, 0.4, 0.4}, 0.10384},
}

func TestTable2GoldenValues(t *testing.T) {
	for _, tc := range table2 {
		got, err := DP(tc.rates)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("JER(%s) = %.6f, want %.6f", tc.name, got, tc.want)
		}
	}
}

func TestTable2AllAlgorithmsAgree(t *testing.T) {
	for _, tc := range table2 {
		enum, err := Enum(tc.rates)
		if err != nil {
			t.Fatal(err)
		}
		dpv, err := DP(tc.rates)
		if err != nil {
			t.Fatal(err)
		}
		cbav, err := CBA(tc.rates)
		if err != nil {
			t.Fatal(err)
		}
		autov, err := Compute(tc.rates, Auto)
		if err != nil {
			t.Fatal(err)
		}
		for _, got := range []float64{dpv, cbav, autov} {
			if !almostEqual(got, enum, 1e-9) {
				t.Errorf("%s: algorithms disagree: enum=%.12f dp=%.12f cba=%.12f auto=%.12f",
					tc.name, enum, dpv, cbav, autov)
			}
		}
	}
}

func TestFailThreshold(t *testing.T) {
	cases := map[int]int{1: 1, 3: 2, 5: 3, 7: 4, 101: 51, 2: 2, 4: 3, 6: 4}
	for n, want := range cases {
		if got := FailThreshold(n); got != want {
			t.Errorf("FailThreshold(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestEmptyJury(t *testing.T) {
	for _, algo := range []Algorithm{Auto, DPAlgo, CBAAlgo, EnumAlgo} {
		if _, err := Compute(nil, algo); !errors.Is(err, ErrEmptyJury) {
			t.Errorf("%v: err = %v, want ErrEmptyJury", algo, err)
		}
	}
}

func TestInvalidRates(t *testing.T) {
	for _, algo := range []Algorithm{Auto, DPAlgo, CBAAlgo, EnumAlgo} {
		if _, err := Compute([]float64{0.5, 1.5}, algo); !errors.Is(err, pbdist.ErrRateOutOfRange) {
			t.Errorf("%v: err = %v, want ErrRateOutOfRange", algo, err)
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := Compute([]float64{0.5}, Algorithm(99)); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestAlgorithmString(t *testing.T) {
	for algo, want := range map[Algorithm]string{Auto: "auto", DPAlgo: "dp", CBAAlgo: "cba", EnumAlgo: "enum"} {
		if algo.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(algo), algo.String(), want)
		}
	}
	if Algorithm(42).String() != "Algorithm(42)" {
		t.Errorf("unexpected string for unknown algorithm: %q", Algorithm(42).String())
	}
}

func TestDPMatchesCBARandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = 0.01 + 0.98*rng.Float64()
		}
		dpv, err1 := DP(rates)
		cbav, err2 := CBA(rates)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(dpv, cbav, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDPMatchesEnumRandomSmall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = 0.01 + 0.98*rng.Float64()
		}
		dpv, err1 := DP(rates)
		ev, err2 := Enum(rates)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(dpv, ev, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeJuryCBA(t *testing.T) {
	// Auto must route large juries through CBA and still agree with DP.
	rng := rand.New(rand.NewSource(5))
	n := 2001
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = 0.05 + 0.5*rng.Float64()
	}
	dpv, err := DP(rates)
	if err != nil {
		t.Fatal(err)
	}
	autov, err := Compute(rates, Auto)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(dpv, autov, 1e-8) {
		t.Fatalf("dp=%.12f auto(cba)=%.12f", dpv, autov)
	}
}

func TestJERBetweenZeroAndOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = 0.01 + 0.98*rng.Float64()
		}
		v, err := Compute(rates, Auto)
		return err == nil && v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Lemma 3's key step: JER is monotone increasing in each individual ε.
func TestJERMonotoneInIndividualRate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + 2*rng.Intn(6) // odd sizes 1..11
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = 0.05 + 0.9*rng.Float64()
		}
		i := rng.Intn(n)
		lo, err1 := DP(rates)
		bumped := make([]float64, n)
		copy(bumped, rates)
		bumped[i] = bumped[i] + (0.999-bumped[i])*rng.Float64()
		hi, err2 := DP(bumped)
		if err1 != nil || err2 != nil {
			return false
		}
		return hi >= lo-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundIsLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		rates := make([]float64, n)
		for i := range rates {
			// Bias toward high error rates so γ < 1 happens often.
			rates[i] = 0.3 + 0.69*rng.Float64()
		}
		bound, usable := LowerBound(rates)
		if !usable {
			return true
		}
		exact, err := DP(rates)
		if err != nil {
			return false
		}
		return bound <= exact+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundUsability(t *testing.T) {
	// Reliable jurors: μ = 0.3 < threshold 2 ⇒ γ > 1 ⇒ unusable.
	if _, usable := LowerBound([]float64{0.1, 0.1, 0.1}); usable {
		t.Error("bound should be unusable when γ ≥ 1")
	}
	// Error-prone jurors: μ = 2.7 > threshold 2 ⇒ γ < 1 ⇒ usable.
	if _, usable := LowerBound([]float64{0.9, 0.9, 0.9}); !usable {
		t.Error("bound should be usable when γ < 1")
	}
	if _, usable := LowerBound(nil); usable {
		t.Error("bound should be unusable for empty jury")
	}
}

func TestLowerBoundMomentsMatchesLowerBound(t *testing.T) {
	rates := []float64{0.8, 0.7, 0.95}
	mu, sigma2 := 0.0, 0.0
	for _, e := range rates {
		mu += e
		sigma2 += e * (1 - e)
	}
	b1, u1 := LowerBound(rates)
	b2, u2 := LowerBoundMoments(len(rates), mu, sigma2)
	if u1 != u2 || !almostEqual(b1, b2, 1e-14) {
		t.Fatalf("mismatch: (%g,%v) vs (%g,%v)", b1, u1, b2, u2)
	}
}

func TestMonteCarloConvergesToAnalytic(t *testing.T) {
	src := randx.New(77)
	for _, tc := range []struct {
		rates []float64
	}{
		{[]float64{0.2, 0.3, 0.3}},
		{[]float64{0.1, 0.2, 0.2, 0.3, 0.3}},
		{[]float64{0.45, 0.45, 0.45, 0.45, 0.45, 0.45, 0.45}},
	} {
		exact, err := DP(tc.rates)
		if err != nil {
			t.Fatal(err)
		}
		const trials = 400000
		est, err := MonteCarlo(tc.rates, trials, src)
		if err != nil {
			t.Fatal(err)
		}
		// Three-sigma band for a Bernoulli proportion.
		sigma := math.Sqrt(exact * (1 - exact) / trials)
		if math.Abs(est-exact) > 4*sigma+1e-4 {
			t.Errorf("rates %v: MC %.5f vs exact %.5f (σ=%.5f)", tc.rates, est, exact, sigma)
		}
	}
}

func TestMonteCarloValidation(t *testing.T) {
	src := randx.New(1)
	if _, err := MonteCarlo(nil, 100, src); !errors.Is(err, ErrEmptyJury) {
		t.Error("expected ErrEmptyJury")
	}
	if _, err := MonteCarlo([]float64{0.5}, 0, src); err == nil {
		t.Error("expected error for zero trials")
	}
	if _, err := MonteCarlo([]float64{1.5}, 10, src); err == nil {
		t.Error("expected error for invalid rate")
	}
}

func TestSweepMatchesDirectEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 301
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = 0.01 + 0.98*rng.Float64()
	}
	s := NewSweep()
	for m := 1; m <= n; m++ {
		if err := s.Extend(rates[m-1]); err != nil {
			t.Fatal(err)
		}
		if s.N() != m {
			t.Fatalf("N = %d, want %d", s.N(), m)
		}
		got, err := s.JER()
		if err != nil {
			t.Fatal(err)
		}
		want, err := DP(rates[:m])
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, want, 1e-9) {
			t.Fatalf("prefix %d: sweep %.12f dp %.12f", m, got, want)
		}
	}
}

func TestSweepLowerBoundMatches(t *testing.T) {
	s := NewSweep()
	rates := []float64{0.8, 0.9, 0.7}
	for _, e := range rates {
		if err := s.Extend(e); err != nil {
			t.Fatal(err)
		}
	}
	b1, u1 := s.LowerBound()
	b2, u2 := LowerBound(rates)
	if u1 != u2 || !almostEqual(b1, b2, 1e-12) {
		t.Fatalf("sweep bound (%g,%v) vs direct (%g,%v)", b1, u1, b2, u2)
	}
}

func TestSweepEmptyJER(t *testing.T) {
	if _, err := NewSweep().JER(); !errors.Is(err, ErrEmptyJury) {
		t.Fatal("expected ErrEmptyJury from empty sweep")
	}
}

func TestDistributionZeroAndOneJuror(t *testing.T) {
	if d := Distribution(nil); len(d) != 1 || d[0] != 1 {
		t.Errorf("Distribution(nil) = %v", d)
	}
	d := Distribution([]float64{0.25})
	if len(d) != 2 || !almostEqual(d[0], 0.75, 1e-15) || !almostEqual(d[1], 0.25, 1e-15) {
		t.Errorf("Distribution([0.25]) = %v", d)
	}
}

func BenchmarkDP501(b *testing.B)   { benchAlgo(b, DPAlgo, 501) }
func BenchmarkCBA501(b *testing.B)  { benchAlgo(b, CBAAlgo, 501) }
func BenchmarkDP4001(b *testing.B)  { benchAlgo(b, DPAlgo, 4001) }
func BenchmarkCBA4001(b *testing.B) { benchAlgo(b, CBAAlgo, 4001) }

func benchAlgo(b *testing.B, algo Algorithm, n int) {
	rng := rand.New(rand.NewSource(1))
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = 0.01 + 0.98*rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(rates, algo); err != nil {
			b.Fatal(err)
		}
	}
}
