// Package learn estimates individual error rates from observed voting
// history, complementing the graph-based estimation of Section 4.
//
// The paper's framework treats ε_i as pluggable ("In fact, any other
// reasonable measures can be smoothly plugged in to our framework", §4)
// and cites Raykar et al., "Learning from crowds" (JMLR 2010) [25] and
// Ipeirotis et al. [13] for estimating worker quality from answers. This
// package provides the two standard estimators for the paper's binary
// symmetric-error model:
//
//   - FromGold: maximum-likelihood counting against tasks whose ground
//     truth is known (calibration questions).
//   - EM: expectation–maximization over tasks with *unknown* truth — the
//     binary symmetric special case of Dawid–Skene, with majority-voting
//     initialization.
//
// Both return error rates directly usable as core.Juror.ErrorRate, closing
// the loop: past votings calibrate the crowd, jury selection then picks
// the best jury for the next task.
package learn

import (
	"errors"
	"fmt"
	"math"
)

// Vote is one juror's recorded opinion on one task.
type Vote int8

const (
	// Abstain marks a missing observation (juror not asked / no reply).
	Abstain Vote = -1
	// VoteNo is a negative opinion.
	VoteNo Vote = 0
	// VoteYes is a positive opinion.
	VoteYes Vote = 1
)

// History is a tasks × jurors matrix of recorded votes. Row t holds the
// votes on task t; entry (t, i) is juror i's vote or Abstain.
type History struct {
	votes  [][]Vote
	jurors int
}

// NewHistory returns an empty history for the given number of jurors.
func NewHistory(jurors int) (*History, error) {
	if jurors <= 0 {
		return nil, errors.New("learn: history needs at least one juror")
	}
	return &History{jurors: jurors}, nil
}

// Jurors returns the number of jurors tracked.
func (h *History) Jurors() int { return h.jurors }

// Tasks returns the number of recorded tasks.
func (h *History) Tasks() int { return len(h.votes) }

// Add records one task's votes. The slice must have one entry per juror;
// entries other than Abstain, VoteNo, VoteYes are rejected. At least one
// juror must have voted.
func (h *History) Add(votes []Vote) error {
	if len(votes) != h.jurors {
		return fmt.Errorf("learn: got %d votes, history tracks %d jurors", len(votes), h.jurors)
	}
	seen := false
	for i, v := range votes {
		switch v {
		case Abstain:
		case VoteNo, VoteYes:
			seen = true
		default:
			return fmt.Errorf("learn: juror %d: invalid vote %d", i, v)
		}
	}
	if !seen {
		return errors.New("learn: task with no votes")
	}
	row := make([]Vote, len(votes))
	copy(row, votes)
	h.votes = append(h.votes, row)
	return nil
}

// epsFloor keeps estimates strictly inside (0,1), as Definition 4 requires
// and as the EM update needs to avoid absorbing states.
const epsFloor = 1e-6

func clampRate(e float64) float64 {
	if e < epsFloor {
		return epsFloor
	}
	if e > 1-epsFloor {
		return 1 - epsFloor
	}
	return e
}

// FromGold estimates ε_i by counting disagreements with known truths:
// ε̂_i = (wrong_i + 1) / (answered_i + 2) with add-one (Laplace) smoothing,
// so jurors with sparse history aren't pinned to 0 or 1. truths must have
// one entry per task, each VoteNo or VoteYes.
func FromGold(h *History, truths []Vote) ([]float64, error) {
	if h.Tasks() == 0 {
		return nil, errors.New("learn: empty history")
	}
	if len(truths) != h.Tasks() {
		return nil, fmt.Errorf("learn: %d truths for %d tasks", len(truths), h.Tasks())
	}
	for t, tr := range truths {
		if tr != VoteNo && tr != VoteYes {
			return nil, fmt.Errorf("learn: task %d: truth must be VoteNo or VoteYes", t)
		}
	}
	wrong := make([]float64, h.jurors)
	answered := make([]float64, h.jurors)
	for t, row := range h.votes {
		for i, v := range row {
			if v == Abstain {
				continue
			}
			answered[i]++
			if v != truths[t] {
				wrong[i]++
			}
		}
	}
	rates := make([]float64, h.jurors)
	for i := range rates {
		rates[i] = clampRate((wrong[i] + 1) / (answered[i] + 2))
	}
	return rates, nil
}

// EMOptions configures the EM estimator.
type EMOptions struct {
	// MaxIterations caps EM rounds; zero selects 100.
	MaxIterations int
	// Tolerance stops iteration when the log-likelihood improves by less;
	// zero selects 1e-9.
	Tolerance float64
}

// EMResult is the output of the EM estimator.
type EMResult struct {
	// ErrorRates are the estimated ε_i, in (0,1).
	ErrorRates []float64
	// Posteriors[t] is the posterior probability that task t's latent
	// truth is Yes.
	Posteriors []float64
	// Prior is the estimated marginal probability of a Yes truth.
	Prior float64
	// Iterations is the number of EM rounds performed.
	Iterations int
	// LogLikelihood is the final observed-data log-likelihood.
	LogLikelihood float64
}

// EM estimates error rates from history alone, without ground truth: the
// binary symmetric-error Dawid–Skene model. Latent truths are initialized
// from per-task majority votes, which anchors the label-switching symmetry
// (the mirrored solution ε → 1-ε has equal likelihood) to the convention
// that the crowd is better than chance on average.
//
// The observed-data log-likelihood is non-decreasing across iterations (a
// property the tests assert); convergence is declared when its improvement
// falls below Tolerance.
func EM(h *History, opts EMOptions) (*EMResult, error) {
	if h.Tasks() == 0 {
		return nil, errors.New("learn: empty history")
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 100
	}
	tol := opts.Tolerance
	if tol <= 0 {
		tol = 1e-9
	}

	tasks, jurors := h.Tasks(), h.jurors
	post := make([]float64, tasks) // q_t = P(z_t = Yes | votes)
	// Initialization: soft majority vote per task.
	for t, row := range h.votes {
		yes, total := 0, 0
		for _, v := range row {
			switch v {
			case VoteYes:
				yes++
				total++
			case VoteNo:
				total++
			}
		}
		// Soften toward 1/2 so unanimous tasks don't start at the clamp.
		post[t] = (float64(yes) + 0.5) / (float64(total) + 1)
	}

	rates := make([]float64, jurors)
	prior := 0.5
	ll := math.Inf(-1)
	iter := 0
	for ; iter < maxIter; iter++ {
		// M-step: ε_i = Σ_t P(juror i disagreed with the truth) / answered_i,
		// with Laplace smoothing; prior = mean posterior.
		for i := 0; i < jurors; i++ {
			wrong, answered := 0.0, 0.0
			for t, row := range h.votes {
				v := row[i]
				if v == Abstain {
					continue
				}
				answered++
				if v == VoteYes {
					wrong += 1 - post[t] // wrong iff truth was No
				} else {
					wrong += post[t]
				}
			}
			if answered == 0 {
				rates[i] = 0.5 // never voted: uninformative
				continue
			}
			rates[i] = clampRate((wrong + 1) / (answered + 2))
		}
		sum := 0.0
		for _, q := range post {
			sum += q
		}
		prior = clampRate(sum / float64(tasks))

		// E-step: recompute posteriors, accumulating the log-likelihood
		// log P(votes_t) = log(πA_t + (1-π)B_t) in log space for stability.
		newLL := 0.0
		for t, row := range h.votes {
			logYes := math.Log(prior)
			logNo := math.Log(1 - prior)
			for i, v := range row {
				if v == Abstain {
					continue
				}
				e := rates[i]
				if v == VoteYes {
					logYes += math.Log(1 - e)
					logNo += math.Log(e)
				} else {
					logYes += math.Log(e)
					logNo += math.Log(1 - e)
				}
			}
			m := math.Max(logYes, logNo)
			denom := m + math.Log(math.Exp(logYes-m)+math.Exp(logNo-m))
			post[t] = math.Exp(logYes - denom)
			newLL += denom
		}
		if newLL-ll < tol && iter > 0 {
			ll = newLL
			iter++
			break
		}
		ll = newLL
	}
	return &EMResult{
		ErrorRates:    rates,
		Posteriors:    post,
		Prior:         prior,
		Iterations:    iter,
		LogLikelihood: ll,
	}, nil
}
