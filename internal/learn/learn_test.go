package learn

import (
	"math"
	"testing"

	"juryselect/internal/randx"
)

// synthHistory simulates a voting history: jurors with true error rates eps
// vote on `tasks` binary tasks with alternating truths; each juror abstains
// with probability abstain. Returns the history and the truth vector.
func synthHistory(t *testing.T, eps []float64, tasks int, abstain float64, seed int64) (*History, []Vote) {
	t.Helper()
	src := randx.New(seed)
	h, err := NewHistory(len(eps))
	if err != nil {
		t.Fatal(err)
	}
	truths := make([]Vote, 0, tasks)
	for task := 0; task < tasks; task++ {
		truth := VoteYes
		if task%2 == 1 {
			truth = VoteNo
		}
		row := make([]Vote, len(eps))
		voted := false
		for i, e := range eps {
			if src.Bernoulli(abstain) {
				row[i] = Abstain
				continue
			}
			voted = true
			if src.Bernoulli(e) {
				// wrong vote
				if truth == VoteYes {
					row[i] = VoteNo
				} else {
					row[i] = VoteYes
				}
			} else {
				row[i] = truth
			}
		}
		if !voted {
			row[0] = truth // guarantee at least one vote per task
		}
		if err := h.Add(row); err != nil {
			t.Fatal(err)
		}
		truths = append(truths, truth)
	}
	return h, truths
}

func TestHistoryValidation(t *testing.T) {
	if _, err := NewHistory(0); err == nil {
		t.Error("expected error for zero jurors")
	}
	h, err := NewHistory(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Add([]Vote{VoteYes, VoteNo}); err == nil {
		t.Error("expected error for wrong vote count")
	}
	if err := h.Add([]Vote{VoteYes, 7, VoteNo}); err == nil {
		t.Error("expected error for invalid vote value")
	}
	if err := h.Add([]Vote{Abstain, Abstain, Abstain}); err == nil {
		t.Error("expected error for all-abstain task")
	}
	if err := h.Add([]Vote{VoteYes, Abstain, VoteNo}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if h.Tasks() != 1 || h.Jurors() != 3 {
		t.Errorf("counts: tasks=%d jurors=%d", h.Tasks(), h.Jurors())
	}
}

func TestHistoryAddCopiesRow(t *testing.T) {
	h, _ := NewHistory(2)
	row := []Vote{VoteYes, VoteNo}
	if err := h.Add(row); err != nil {
		t.Fatal(err)
	}
	row[0] = VoteNo
	if h.votes[0][0] != VoteYes {
		t.Fatal("Add aliased the caller's slice")
	}
}

func TestFromGoldRecoversRates(t *testing.T) {
	eps := []float64{0.05, 0.2, 0.35, 0.5}
	h, truths := synthHistory(t, eps, 4000, 0, 1)
	got, err := FromGold(h, truths)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range eps {
		if math.Abs(got[i]-want) > 0.03 {
			t.Errorf("juror %d: ε̂ = %.3f, want ≈ %.3f", i, got[i], want)
		}
	}
}

func TestFromGoldWithAbstentions(t *testing.T) {
	eps := []float64{0.1, 0.3}
	h, truths := synthHistory(t, eps, 6000, 0.5, 2)
	got, err := FromGold(h, truths)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range eps {
		if math.Abs(got[i]-want) > 0.04 {
			t.Errorf("juror %d: ε̂ = %.3f, want ≈ %.3f", i, got[i], want)
		}
	}
}

func TestFromGoldSmoothing(t *testing.T) {
	// A juror who never voted must land on the Laplace prior 1/2, inside
	// (0,1); a juror who was always right must stay above 0.
	h, _ := NewHistory(2)
	if err := h.Add([]Vote{VoteYes, Abstain}); err != nil {
		t.Fatal(err)
	}
	rates, err := FromGold(h, []Vote{VoteYes})
	if err != nil {
		t.Fatal(err)
	}
	if rates[0] <= 0 || rates[0] >= 1 || rates[1] != 0.5 {
		t.Errorf("rates = %v", rates)
	}
}

func TestFromGoldValidation(t *testing.T) {
	h, _ := NewHistory(1)
	if _, err := FromGold(h, nil); err == nil {
		t.Error("expected error for empty history")
	}
	_ = h.Add([]Vote{VoteYes})
	if _, err := FromGold(h, []Vote{VoteYes, VoteNo}); err == nil {
		t.Error("expected error for truth/task count mismatch")
	}
	if _, err := FromGold(h, []Vote{Abstain}); err == nil {
		t.Error("expected error for non-binary truth")
	}
}

func TestEMRecoversRatesWithoutTruth(t *testing.T) {
	eps := []float64{0.05, 0.15, 0.25, 0.35, 0.45}
	h, _ := synthHistory(t, eps, 3000, 0, 3)
	res, err := EM(h, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range eps {
		if math.Abs(res.ErrorRates[i]-want) > 0.05 {
			t.Errorf("juror %d: ε̂ = %.3f, want ≈ %.3f (EM without truth)", i, res.ErrorRates[i], want)
		}
	}
	if res.Prior < 0.4 || res.Prior > 0.6 {
		t.Errorf("prior = %.3f, want ≈ 0.5 for alternating truths", res.Prior)
	}
}

func TestEMPosteriorsMatchTruths(t *testing.T) {
	eps := []float64{0.1, 0.2, 0.2, 0.3, 0.3}
	h, truths := synthHistory(t, eps, 1000, 0, 4)
	res, err := EM(h, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	correct, mvCorrect := 0, 0
	for t2, q := range res.Posteriors {
		decided := VoteNo
		if q >= 0.5 {
			decided = VoteYes
		}
		if decided == truths[t2] {
			correct++
		}
		yes, no := 0, 0
		for _, v := range h.votes[t2] {
			switch v {
			case VoteYes:
				yes++
			case VoteNo:
				no++
			}
		}
		mv := VoteNo
		if yes > no {
			mv = VoteYes
		}
		if mv == truths[t2] {
			mvCorrect++
		}
	}
	// The posterior (MAP) decision rule weights reliable jurors more, so
	// it must do at least as well as unweighted majority voting (within a
	// small sampling tolerance), and the MV accuracy itself is pinned by
	// the analytic JER of this jury (0.07036 ⇒ ≈93% correct).
	if correct < mvCorrect-10 {
		t.Errorf("EM decisions (%d correct) fell below majority voting (%d correct)",
			correct, mvCorrect)
	}
	if frac := float64(correct) / float64(len(truths)); frac < 0.90 {
		t.Errorf("EM recovered only %.1f%% of truths", 100*frac)
	}
}

func TestEMLogLikelihoodNonDecreasing(t *testing.T) {
	eps := []float64{0.2, 0.4, 0.3}
	h, _ := synthHistory(t, eps, 200, 0.3, 5)
	var prev float64 = math.Inf(-1)
	// Re-run EM with increasing iteration caps; the final log-likelihood
	// must be non-decreasing in the cap (monotone EM ascent).
	for _, cap := range []int{1, 2, 3, 5, 10, 50} {
		res, err := EM(h, EMOptions{MaxIterations: cap})
		if err != nil {
			t.Fatal(err)
		}
		if res.LogLikelihood < prev-1e-9 {
			t.Fatalf("log-likelihood decreased: %g after cap %d (prev %g)",
				res.LogLikelihood, cap, prev)
		}
		prev = res.LogLikelihood
	}
}

func TestEMHandlesAbstentions(t *testing.T) {
	eps := []float64{0.1, 0.3, 0.45}
	h, _ := synthHistory(t, eps, 5000, 0.4, 6)
	res, err := EM(h, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range eps {
		if math.Abs(res.ErrorRates[i]-want) > 0.06 {
			t.Errorf("juror %d: ε̂ = %.3f, want ≈ %.3f", i, res.ErrorRates[i], want)
		}
	}
}

func TestEMRatesInOpenInterval(t *testing.T) {
	// Degenerate history: single juror always votes Yes on Yes tasks.
	h, _ := NewHistory(1)
	for i := 0; i < 50; i++ {
		if err := h.Add([]Vote{VoteYes}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := EM(h, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRates[0] <= 0 || res.ErrorRates[0] >= 1 {
		t.Errorf("rate %g escaped (0,1)", res.ErrorRates[0])
	}
}

func TestEMEmptyHistory(t *testing.T) {
	h, _ := NewHistory(2)
	if _, err := EM(h, EMOptions{}); err == nil {
		t.Error("expected error for empty history")
	}
}

func TestEMBetterThanGoldFreeBaseline(t *testing.T) {
	// EM (no truth) should approach the quality of FromGold (with truth):
	// mean absolute estimation error within 2x of the gold estimator's.
	eps := []float64{0.08, 0.18, 0.28, 0.38, 0.48}
	h, truths := synthHistory(t, eps, 2500, 0, 7)
	gold, err := FromGold(h, truths)
	if err != nil {
		t.Fatal(err)
	}
	em, err := EM(h, EMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var goldErr, emErr float64
	for i, want := range eps {
		goldErr += math.Abs(gold[i] - want)
		emErr += math.Abs(em.ErrorRates[i] - want)
	}
	if emErr > 2*goldErr+0.05 {
		t.Errorf("EM error %.4f too far above gold error %.4f", emErr, goldErr)
	}
}
