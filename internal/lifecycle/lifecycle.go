// Package lifecycle is juryd's task-lifetime observability layer: a
// per-task timeline reconstructor and latency aggregator over the task
// event stream (internal/tasks.EventSink), with a declarative SLO
// engine and a sweep-stall watchdog layered on top.
//
// The Engine consumes the stream identically live (attached via
// tasks.Config.Events before Open, called under shard mutexes) and cold
// (WAL replay through the same apply path). Its retained state is
// per-task event lists — each ordered by that task's application order,
// which the store guarantees is identical live and replay — plus
// aggregate histograms folded from one task's own record at its close
// event. Both are order-invariant across tasks, so the live tail and a
// cold replay of the same WAL horizon render byte-identical timelines
// and an identical engine fingerprint; the restart CI smoke compares a
// task's timeline byte-for-byte across a kill -9.
//
// Events for tasks created beyond the compaction horizon (restored
// from snapshot, so replay never sees their TaskCreated) are counted in
// UnknownTaskEvents and produce no timeline. Closed timelines beyond
// TaskCap are evicted lowest-ID-first — a rule that depends only on the
// set of retained IDs, never on cross-task arrival order, preserving
// the replay-identity property under memory pressure.
package lifecycle

import (
	"sort"
	"sync"
	"time"

	"juryselect/internal/obs"
	"juryselect/internal/tasks"
)

// DefaultTaskCap bounds retained closed timelines. Open tasks are never
// evicted (their timeline is still growing and the store bounds open
// cardinality operationally); 1<<16 closed timelines ≈ tens of MB at
// typical jury sizes.
const DefaultTaskCap = 1 << 16

// evKind discriminates post-create timeline events. Values order the
// JSON span kinds; keep in sync with spanKinds.
type evKind uint8

const (
	evInvite evKind = iota + 1
	evVote
	evDecline
	evTimeout
)

// taskEvent is one post-create state change retained for rendering.
type taskEvent struct {
	kind      evKind
	at        time.Time
	juror     string
	eps       float64
	vote      bool
	latencyNS int64 // vote events: journaled invitation → vote
}

// taskRecord is the engine's retained state for one task: the creation
// header plus the ordered post-create event list. Everything needed to
// render the timeline deterministically.
type taskRecord struct {
	id           string
	createdAt    time.Time
	pool         string
	strategy     string
	poolVersion  uint64
	predictedJER float64
	targetConf   float64
	jury         []tasks.EventJuror
	events       []taskEvent

	closed       bool
	closedAt     time.Time
	decided      bool
	answer       bool
	confidence   float64
	earlyStopped bool
	firstVoteNS  int64 // offset from createdAt; -1 until the first vote
}

// aggKey buckets aggregate latency state.
type aggKey struct {
	strategy string
	outcome  string // "decided" | "expired"
}

// aggregate accumulates per-(strategy, outcome) latency distributions,
// folded exclusively from a single task's record at its close event so
// the updates commute across tasks.
type aggregate struct {
	tasks        int64
	votes        int64
	invites      int64
	declines     int64
	timeouts     int64
	earlyStopped int64
	ttv          obs.Histogram // created → closed
	ttfv         obs.Histogram // created → first vote (tasks with ≥1 vote)
	inviteVote   obs.Histogram // per vote: invitation → vote
}

// Engine is the timeline sink. It implements tasks.EventSink; attach it
// via tasks.Config.Events (combine with other sinks through
// tasks.Sinks) before Open so recovery replays history into it, then
// leave it attached for the live tail. TaskEvent runs under task-store
// shard mutexes: the engine's lock is leaf-level and nothing here calls
// back into the store.
type Engine struct {
	mu      sync.Mutex
	records map[string]*taskRecord
	// closedIDs holds retained closed-task IDs in ascending order (task
	// IDs are zero-padded, so string order is creation order); eviction
	// pops the front.
	closedIDs []string
	taskCap   int
	aggs      map[aggKey]*aggregate

	slo *SLO // optional; fed time-to-verdict samples at close

	events       int64
	tasksCreated int64
	tasksDecided int64
	tasksExpired int64
	votesSeen    int64
	declinesSeen int64
	timeoutsSeen int64
	replacements int64
	unknownTask  int64
	evicted      int64
}

// New returns an engine retaining at most taskCap closed timelines;
// taskCap <= 0 selects DefaultTaskCap.
func New(taskCap int) *Engine {
	if taskCap <= 0 {
		taskCap = DefaultTaskCap
	}
	return &Engine{
		records: make(map[string]*taskRecord),
		taskCap: taskCap,
		aggs:    make(map[aggKey]*aggregate),
	}
}

// AttachSLO wires an SLO engine to receive verdict-latency and
// expired-rate samples at each task close, stamped with the journaled
// close time so WAL replay backfills the same windows a live feed would
// have filled. Call before the store opens.
func (e *Engine) AttachSLO(s *SLO) { e.slo = s }

// TaskEvent consumes one task state change. See the package comment for
// the ordering contract.
func (e *Engine) TaskEvent(ev tasks.Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.events++
	switch ev.Type {
	case tasks.EvTaskCreated:
		e.tasksCreated++
		jury := make([]tasks.EventJuror, len(ev.Jury))
		copy(jury, ev.Jury)
		e.records[ev.Task] = &taskRecord{
			id:           ev.Task,
			createdAt:    ev.At,
			pool:         ev.Pool,
			strategy:     ev.Strategy,
			poolVersion:  ev.PoolVersion,
			predictedJER: ev.PredictedJER,
			targetConf:   ev.TargetConfidence,
			jury:         jury,
			firstVoteNS:  -1,
		}
	case tasks.EvJurorInvited:
		e.replacements++
		e.append(ev.Task, taskEvent{kind: evInvite, at: ev.At, juror: ev.Juror, eps: ev.ErrorRate})
	case tasks.EvVoteRecorded:
		e.votesSeen++
		r := e.append(ev.Task, taskEvent{kind: evVote, at: ev.At, juror: ev.Juror,
			eps: ev.ErrorRate, vote: ev.Vote, latencyNS: ev.LatencyNS})
		if r != nil && r.firstVoteNS < 0 {
			r.firstVoteNS = ev.At.Sub(r.createdAt).Nanoseconds()
		}
	case tasks.EvJurorReleased:
		kind := evDecline
		if ev.Timeout {
			kind = evTimeout
			e.timeoutsSeen++
		} else {
			e.declinesSeen++
		}
		e.append(ev.Task, taskEvent{kind: kind, at: ev.At, juror: ev.Juror, eps: ev.ErrorRate})
	case tasks.EvTaskClosed:
		r := e.records[ev.Task]
		if r == nil {
			e.unknownTask++
			return
		}
		r.closed = true
		r.closedAt = ev.At
		r.decided = ev.Decided
		r.answer = ev.Answer
		r.confidence = ev.Confidence
		r.earlyStopped = ev.EarlyStopped
		if ev.Decided {
			e.tasksDecided++
		} else {
			e.tasksExpired++
		}
		e.fold(r)
		if e.slo != nil {
			e.slo.ObserveVerdict(ev.At, ev.At.Sub(r.createdAt).Nanoseconds(), ev.Decided)
		}
		e.retain(ev.Task)
	}
}

// append records a post-create event on the task, returning its record
// (nil for tasks beyond the compaction horizon).
func (e *Engine) append(task string, te taskEvent) *taskRecord {
	r := e.records[task]
	if r == nil {
		e.unknownTask++
		return nil
	}
	r.events = append(r.events, te)
	return r
}

// retain enters a freshly closed task into the bounded closed set,
// evicting the lowest retained ID while over cap. Task IDs are
// monotonic, so the sorted insert is an append in the common case.
func (e *Engine) retain(id string) {
	i := sort.SearchStrings(e.closedIDs, id)
	e.closedIDs = append(e.closedIDs, "")
	copy(e.closedIDs[i+1:], e.closedIDs[i:])
	e.closedIDs[i] = id
	for len(e.closedIDs) > e.taskCap {
		evict := e.closedIDs[0]
		e.closedIDs = e.closedIDs[1:]
		delete(e.records, evict)
		e.evicted++
	}
}

// fold adds one closed task's record to its (strategy, outcome)
// aggregate. Reads only the task's own state, so the update commutes
// with every other task's fold.
func (e *Engine) fold(r *taskRecord) {
	key := aggKey{strategy: r.strategy, outcome: outcomeOf(r)}
	a := e.aggs[key]
	if a == nil {
		a = &aggregate{}
		e.aggs[key] = a
	}
	a.tasks++
	a.invites += int64(len(r.jury))
	if r.earlyStopped {
		a.earlyStopped++
	}
	for i := range r.events {
		switch te := &r.events[i]; te.kind {
		case evInvite:
			a.invites++
		case evVote:
			a.votes++
			a.inviteVote.Observe(te.latencyNS)
		case evDecline:
			a.declines++
		case evTimeout:
			a.timeouts++
		}
	}
	a.ttv.Observe(r.closedAt.Sub(r.createdAt).Nanoseconds())
	if r.firstVoteNS >= 0 {
		a.ttfv.Observe(r.firstVoteNS)
	}
}

// outcomeOf renders a record's terminal bucket.
func outcomeOf(r *taskRecord) string {
	switch {
	case !r.closed:
		return "open"
	case r.decided:
		return "decided"
	default:
		return "expired"
	}
}
