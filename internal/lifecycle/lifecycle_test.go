package lifecycle_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"testing"
	"time"

	"juryselect/internal/lifecycle"
	"juryselect/internal/tasks"
	"juryselect/jury"
)

// testClock is a settable deterministic clock.
type testClock struct{ t time.Time }

func newTestClock() *testClock {
	return &testClock{t: time.Date(2026, 8, 1, 9, 0, 0, 0, time.UTC)}
}
func (c *testClock) now() time.Time                    { return c.t }
func (c *testClock) advance(d time.Duration) time.Time { c.t = c.t.Add(d); return c.t }

func testCrowd(n int) []jury.Juror {
	out := make([]jury.Juror, n)
	for i := range out {
		out[i] = jury.Juror{
			ID:        fmt.Sprintf("j%03d", i),
			ErrorRate: 0.1 + 0.35*float64(i)/float64(n),
			Cost:      0.1 + float64(i%5)*0.1,
		}
	}
	return out
}

func openStore(t *testing.T, dir string, clk *testClock, eng *lifecycle.Engine) *tasks.Store {
	t.Helper()
	s, err := tasks.Open(tasks.Config{
		Dir: dir, Now: clk.now, Events: eng,
		DefaultJurorTimeout: time.Minute, DefaultExpiry: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// driveWorkload runs a mixed lifecycle workload: a decided task (votes
// with latency), a declined juror with replacement, a timeout sweep,
// and an expiry.
func driveWorkload(t *testing.T, s *tasks.Store, clk *testClock) (decidedID string) {
	t.Helper()
	ctx := context.Background()
	if _, err := s.PutPool("crowd", testCrowd(25)); err != nil {
		t.Fatal(err)
	}

	v0, err := s.Create(ctx, tasks.Spec{Pool: "crowd", Question: "sky blue?"})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range v0.Jurors {
		clk.advance(2 * time.Second)
		view, err := s.Vote(ctx, v0.ID, j.ID, true)
		if err != nil {
			t.Fatal(err)
		}
		if view.Status == tasks.StatusDecided {
			break
		}
	}

	clk.advance(3 * time.Second)
	v1, err := s.Create(ctx, tasks.Spec{Pool: "crowd", TargetConfidence: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Vote(ctx, v1.ID, v1.Jurors[0].ID, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Decline(ctx, v1.ID, v1.Jurors[1].ID); err != nil {
		t.Fatal(err)
	}

	clk.advance(time.Second)
	if _, err := s.Create(ctx, tasks.Spec{Pool: "crowd", JurorTimeout: 10 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Sweep(clk.advance(15 * time.Second)); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Create(ctx, tasks.Spec{Pool: "crowd", ExpiresIn: time.Minute}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Sweep(clk.advance(2 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	return v0.ID
}

func TestTimelineRendersFullLife(t *testing.T) {
	eng := lifecycle.New(0)
	clk := newTestClock()
	s := openStore(t, "", clk, eng)
	created := clk.now()
	decidedID := driveWorkload(t, s, clk)

	tl, ok := eng.Timeline(decidedID)
	if !ok {
		t.Fatalf("no timeline for %s", decidedID)
	}
	if tl.Task != decidedID || tl.Outcome != "decided" {
		t.Fatalf("timeline = %s/%s, want %s/decided", tl.Task, tl.Outcome, decidedID)
	}
	if tl.PoolVersion != 1 {
		t.Fatalf("pool version %d, want 1 (pinned at create)", tl.PoolVersion)
	}
	if tl.Answer == nil || !*tl.Answer {
		t.Fatalf("answer %v, want yes", tl.Answer)
	}
	if tl.Fingerprint == "" {
		t.Fatal("empty fingerprint")
	}
	if tl.Spans[0].Kind != "create" || !tl.Spans[0].At.Equal(created) {
		t.Fatalf("first span = %+v", tl.Spans[0])
	}
	last := tl.Spans[len(tl.Spans)-1]
	if last.Kind != "close" || last.DurationNS != tl.TimeToVerdictNS {
		t.Fatalf("last span = %+v, ttv %d", last, tl.TimeToVerdictNS)
	}
	if tl.TimeToFirstVoteNS != (2 * time.Second).Nanoseconds() {
		t.Fatalf("time to first vote %d, want 2s", tl.TimeToFirstVoteNS)
	}
	votes := 0
	for _, sp := range tl.Spans {
		if sp.Kind == "vote" {
			votes++
			if sp.Vote == nil || !*sp.Vote {
				t.Fatalf("vote span without yes vote: %+v", sp)
			}
			if sp.DurationNS != sp.SinceCreateNS {
				// Initial jury invited at creation: invite→vote latency
				// equals offset from creation.
				t.Fatalf("vote latency %d != since-create %d", sp.DurationNS, sp.SinceCreateNS)
			}
		}
	}
	if votes != tl.Votes || votes == 0 {
		t.Fatalf("vote spans %d, header says %d", votes, tl.Votes)
	}

	if _, ok := eng.Timeline("t99999999"); ok {
		t.Fatal("timeline for unknown task")
	}
}

func TestTimelineTimeoutAndExpiryDurations(t *testing.T) {
	eng := lifecycle.New(0)
	clk := newTestClock()
	s := openStore(t, "", clk, eng)
	if _, err := s.PutPool("crowd", testCrowd(25)); err != nil {
		t.Fatal(err)
	}
	v, err := s.Create(context.Background(), tasks.Spec{Pool: "crowd", JurorTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Sweep(clk.advance(15 * time.Second)); err != nil {
		t.Fatal(err)
	}
	tl, ok := eng.Timeline(v.ID)
	if !ok {
		t.Fatal("no timeline")
	}
	if tl.Timeouts != len(v.Jurors) {
		t.Fatalf("timeouts %d, want %d", tl.Timeouts, len(v.Jurors))
	}
	for _, sp := range tl.Spans {
		switch sp.Kind {
		case "timeout":
			// Released 15s after the creation-time invitation.
			if sp.DurationNS != (15 * time.Second).Nanoseconds() {
				t.Fatalf("timeout span duration %d, want 15s", sp.DurationNS)
			}
		case "invite":
			if sp.DurationNS != 0 {
				t.Fatalf("invite span duration %d, want 0", sp.DurationNS)
			}
		}
	}
	// Every release invites a replacement while uninvited candidates
	// remain; the 25-juror pool caps the total.
	wantInvites := len(v.Jurors) + min(len(v.Jurors), 25-len(v.Jurors))
	if tl.Invites != wantInvites {
		t.Fatalf("invites %d, want %d", tl.Invites, wantInvites)
	}
}

// TestReplayBitIdentity is the tentpole property: a fresh engine fed by
// WAL replay renders every timeline and the aggregate snapshot
// byte-identically to the live engine that watched the same history.
func TestReplayBitIdentity(t *testing.T) {
	dir := t.TempDir()
	live := lifecycle.New(0)
	clk := newTestClock()
	s := openStore(t, dir, clk, live)
	driveWorkload(t, s, clk)
	ids := make([]string, 0)
	for _, v := range s.List("") {
		ids = append(ids, v.ID)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	cold := lifecycle.New(0)
	s2 := openStore(t, dir, clk, cold)
	defer s2.Close()

	liveSnap, coldSnap := live.Snapshot(), cold.Snapshot()
	if liveSnap.Fingerprint != coldSnap.Fingerprint {
		lj, _ := json.MarshalIndent(liveSnap, "", " ")
		cj, _ := json.MarshalIndent(coldSnap, "", " ")
		t.Fatalf("engine fingerprints diverge:\nlive: %s\ncold: %s", lj, cj)
	}
	for _, id := range ids {
		lt, lok := live.Timeline(id)
		ct, cok := cold.Timeline(id)
		if !lok || !cok {
			t.Fatalf("timeline %s: live ok=%v cold ok=%v", id, lok, cok)
		}
		lraw, _ := json.Marshal(lt)
		craw, _ := json.Marshal(ct)
		if !bytes.Equal(lraw, craw) {
			t.Fatalf("timeline %s diverges:\nlive: %s\ncold: %s", id, lraw, craw)
		}
	}
}

// TestReplayFeedsSLOWindows: replaying through a fresh engine backfills
// the attached SLO's windows from journaled close times.
func TestReplayFeedsSLOWindows(t *testing.T) {
	dir := t.TempDir()
	clk := newTestClock()
	eng := lifecycle.New(0)
	s := openStore(t, dir, clk, eng)
	driveWorkload(t, s, clk)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	slo := lifecycle.NewSLO([]lifecycle.Objective{
		{Name: "expired", SLI: lifecycle.SLIExpiredRate, Target: 0.99},
	}, lifecycle.DefaultBurnWindows(), clk.now, slog.New(slog.DiscardHandler))
	cold := lifecycle.New(0)
	cold.AttachSLO(slo)
	s2 := openStore(t, dir, clk, cold)
	defer s2.Close()

	status := slo.Evaluate(clk.now())
	if len(status) != 1 {
		t.Fatalf("status rows = %d", len(status))
	}
	// The workload closed decided tasks and at least one expiry; both
	// sides of the ratio must have been backfilled.
	if status[0].Good == 0 || status[0].Bad == 0 {
		t.Fatalf("backfilled totals good=%d bad=%d, want both nonzero", status[0].Good, status[0].Bad)
	}
}

func TestEngineEvictsLowestClosedID(t *testing.T) {
	eng := lifecycle.New(2)
	clk := newTestClock()
	s := openStore(t, "", clk, eng)
	ctx := context.Background()
	if _, err := s.PutPool("crowd", testCrowd(25)); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		v, err := s.Create(ctx, tasks.Spec{Pool: "crowd", ExpiresIn: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	if _, _, err := s.Sweep(clk.advance(2 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, ok := eng.Timeline(ids[0]); ok {
		t.Fatalf("lowest closed ID %s not evicted at cap 2", ids[0])
	}
	for _, id := range ids[1:] {
		if _, ok := eng.Timeline(id); !ok {
			t.Fatalf("timeline %s evicted, want retained", id)
		}
	}
	st := eng.Stats()
	if st.TimelinesEvicted != 1 || st.TimelinesRetained != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWatchdogFlagsStallsAndRecovery(t *testing.T) {
	clk := newTestClock()
	s, err := tasks.Open(tasks.Config{Now: clk.now, DefaultJurorTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutPool("crowd", testCrowd(25)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(context.Background(), tasks.Spec{Pool: "crowd"}); err != nil {
		t.Fatal(err)
	}
	wd := lifecycle.NewWatchdog(s, 30*time.Second, 10*time.Second)

	rep := wd.Check(clk.now())
	if !rep.Healthy || rep.StalledTasks != 0 {
		t.Fatalf("fresh store report = %+v", rep)
	}

	// Jurors overdue past timeout+grace with zero sweeps: stalled.
	rep = wd.Check(clk.advance(2 * time.Minute))
	if rep.Healthy || rep.StalledTasks != 1 || !rep.SweeperStalled {
		t.Fatalf("stalled report = %+v", rep)
	}
	if rep.OldestOverdueNS <= 0 || rep.LastSweepAgeNS != -1 {
		t.Fatalf("stalled report detail = %+v", rep)
	}

	// A sweep releases the overdue invites and restores health.
	if _, _, err := s.Sweep(clk.now()); err != nil {
		t.Fatal(err)
	}
	rep = wd.Check(clk.now())
	if !rep.Healthy || rep.StalledTasks != 0 || rep.SweeperStalled {
		t.Fatalf("post-sweep report = %+v", rep)
	}
	if rep.Sweeps != 1 || rep.LastSweepAgeNS != 0 {
		t.Fatalf("post-sweep progress = %+v", rep)
	}

	// Sweeper silence past the allowance re-raises the flag even with
	// nothing overdue... but fresh replacements come due again too.
	rep = wd.Check(clk.advance(10 * time.Minute))
	if !rep.SweeperStalled {
		t.Fatalf("silent-sweeper report = %+v", rep)
	}
}
