package lifecycle

import (
	"log/slog"
	"sync"
	"time"

	"juryselect/internal/obs"
)

// SLIKind names a service-level indicator stream. Each kind is a
// good/bad event feed:
//
//   - SLIVerdictLatency: one event per decided task; good when
//     creation→verdict stayed within the objective's threshold. Fed by
//     the lifecycle Engine with journaled close times, so WAL replay
//     backfills the same windows a live feed filled.
//   - SLIExpiredRate: one event per closed task; good when it decided,
//     bad when it expired undecided. Same replay-backfill property.
//   - SLIHTTP5xx: one event per served request on a non-ops endpoint;
//     bad on a 5xx status. Polled from the server's cumulative counters
//     at evaluation time — process-local by nature.
//   - SLIWALFsync: one event per WAL fsync; good when it stayed within
//     the threshold. Live-only: fsync latency is a property of this
//     process's disk, not of the journaled history.
type SLIKind string

const (
	SLIVerdictLatency SLIKind = "verdict_latency"
	SLIExpiredRate    SLIKind = "expired_rate"
	SLIHTTP5xx        SLIKind = "http_5xx"
	SLIWALFsync       SLIKind = "wal_fsync"
)

// Objective is one declarative SLO: "Target fraction of SLI events are
// good". ThresholdNS applies to the latency SLIs (verdict_latency,
// wal_fsync) and classifies each observation.
type Objective struct {
	Name        string  `json:"name"`
	SLI         SLIKind `json:"sli"`
	Target      float64 `json:"target"`
	ThresholdNS int64   `json:"threshold_ns,omitempty"`
}

// BurnWindows is the multi-window burn-rate alerting policy (the
// standard SRE-workbook shape): a fast page when BOTH short fast
// windows burn budget at ≥ FastBurn× the sustainable rate, and a slow
// ticket when both long windows burn at ≥ SlowBurn×. Requiring the
// pair suppresses both stale alerts (the short window has recovered)
// and one-spike flukes (the long window never accumulated).
type BurnWindows struct {
	FastShort time.Duration `json:"fast_short"`
	FastLong  time.Duration `json:"fast_long"`
	SlowShort time.Duration `json:"slow_short"`
	SlowLong  time.Duration `json:"slow_long"`
	FastBurn  float64       `json:"fast_burn"`
	SlowBurn  float64       `json:"slow_burn"`
}

// DefaultBurnWindows is the canonical 5m/1h fast pair at 14.4× (2% of a
// 30-day budget in one hour) and 6h/3d slow pair at 1× (sustained
// burn that exhausts the budget exactly on schedule).
func DefaultBurnWindows() BurnWindows {
	return BurnWindows{
		FastShort: 5 * time.Minute,
		FastLong:  time.Hour,
		SlowShort: 6 * time.Hour,
		SlowLong:  3 * 24 * time.Hour,
		FastBurn:  14.4,
		SlowBurn:  1.0,
	}
}

// Compress divides every window by factor, preserving the burn
// thresholds — the CI smoke runs the same policy thousands of times
// faster against a fake clock.
func (w BurnWindows) Compress(factor int) BurnWindows {
	if factor <= 1 {
		return w
	}
	f := time.Duration(factor)
	w.FastShort /= f
	w.FastLong /= f
	w.SlowShort /= f
	w.SlowLong /= f
	return w
}

// objectiveState is one objective's tracked state: the windowed
// good/bad counts, cumulative totals, and alert latches.
type objectiveState struct {
	obj        Objective
	win        *obs.WindowedCounter
	good, bad  int64
	fastActive bool
	slowActive bool
	fastTrips  int64
	slowTrips  int64
}

// SLO tracks a set of objectives as error budgets with burn-rate
// alerting. Observation methods are leaf-level (safe to call from the
// lifecycle engine under store shard mutexes and from the WAL
// committer); Evaluate is called on a timer and by the /v1/slo and
// metrics handlers.
type SLO struct {
	windows BurnWindows
	now     func() time.Time
	logger  *slog.Logger

	mu     sync.Mutex
	states []*objectiveState
}

// NewSLO builds the tracker. Targets are clamped into [0.5, 0.99999]
// so every error budget is positive and finite. now is the clock used
// for observations that carry no timestamp of their own (fsync, HTTP
// polling); nil selects the UTC wall clock. logger receives burn-alert
// transitions; nil selects slog.Default().
func NewSLO(objectives []Objective, w BurnWindows, now func() time.Time, logger *slog.Logger) *SLO {
	if now == nil {
		now = func() time.Time { return time.Now().UTC() }
	}
	if logger == nil {
		logger = slog.Default()
	}
	if w.FastShort <= 0 {
		w = DefaultBurnWindows()
	}
	// Bucket width resolves the shortest window into ≥5 buckets; the
	// ring spans the longest window plus one bucket of slack.
	width := w.FastShort / 5
	if width <= 0 {
		width = time.Millisecond
	}
	slots := int(w.SlowLong/width) + 2
	s := &SLO{windows: w, now: now, logger: logger}
	for _, obj := range objectives {
		if obj.Target < 0.5 {
			obj.Target = 0.5
		}
		if obj.Target > 0.99999 {
			obj.Target = 0.99999
		}
		s.states = append(s.states, &objectiveState{
			obj: obj,
			win: obs.NewWindowedCounter(width, slots),
		})
	}
	return s
}

// Windows returns the alerting policy in force.
func (s *SLO) Windows() BurnWindows { return s.windows }

// Observe records good/bad events at an explicit instant on every
// objective tracking the given SLI.
func (s *SLO) Observe(kind SLIKind, at time.Time, good, bad int64) {
	if good == 0 && bad == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.states {
		if st.obj.SLI != kind {
			continue
		}
		st.win.Add(at, good, bad)
		st.good += good
		st.bad += bad
	}
}

// ObserveVerdict records one task closure: the expired-rate SLI counts
// the closure itself, and the verdict-latency SLI classifies decided
// tasks against each objective's threshold. at is the journaled close
// time, so replay backfills identically.
func (s *SLO) ObserveVerdict(at time.Time, verdictNS int64, decided bool) {
	if decided {
		s.Observe(SLIExpiredRate, at, 1, 0)
	} else {
		s.Observe(SLIExpiredRate, at, 0, 1)
	}
	if !decided {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.states {
		if st.obj.SLI != SLIVerdictLatency {
			continue
		}
		if verdictNS <= st.obj.ThresholdNS {
			st.win.Add(at, 1, 0)
			st.good++
		} else {
			st.win.Add(at, 0, 1)
			st.bad++
		}
	}
}

// ObserveFsync records one WAL fsync latency, stamped with the SLO
// clock (the committer goroutine carries no event timestamp).
func (s *SLO) ObserveFsync(latencyNS int64) {
	at := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.states {
		if st.obj.SLI != SLIWALFsync {
			continue
		}
		if latencyNS <= st.obj.ThresholdNS {
			st.win.Add(at, 1, 0)
			st.good++
		} else {
			st.win.Add(at, 0, 1)
			st.bad++
		}
	}
}

// ObserveHTTP records a batch of served requests (good) and 5xx
// responses (bad), stamped with the SLO clock. The server polls its
// cumulative per-endpoint counters and feeds the deltas here, keeping
// the request hot path free of SLO bookkeeping.
func (s *SLO) ObserveHTTP(good, bad int64) {
	s.Observe(SLIHTTP5xx, s.now(), good, bad)
}

// ObjectiveStatus is one objective's evaluated state.
type ObjectiveStatus struct {
	Name        string  `json:"name"`
	SLI         SLIKind `json:"sli"`
	Target      float64 `json:"target"`
	ThresholdNS int64   `json:"threshold_ns,omitempty"`
	Good        int64   `json:"good"`
	Bad         int64   `json:"bad"`

	// Burn rates per alerting window: the window's bad fraction divided
	// by the error budget (1−Target). 1.0 = burning exactly at the rate
	// that exhausts the budget on schedule. Always finite.
	BurnFastShort float64 `json:"burn_fast_short"`
	BurnFastLong  float64 `json:"burn_fast_long"`
	BurnSlowShort float64 `json:"burn_slow_short"`
	BurnSlowLong  float64 `json:"burn_slow_long"`

	// BudgetRemaining is the slow-long window's unspent error budget
	// fraction (1 − BurnSlowLong); negative when overspent.
	BudgetRemaining float64 `json:"budget_remaining"`

	FastAlert bool  `json:"fast_alert"`
	SlowAlert bool  `json:"slow_alert"`
	FastTrips int64 `json:"fast_trips"`
	SlowTrips int64 `json:"slow_trips"`
}

// burnOver computes one window's burn rate; zero when the window holds
// no events.
func (st *objectiveState) burnOver(now time.Time, window time.Duration) float64 {
	good, bad := st.win.Totals(now, window)
	total := good + bad
	if total == 0 {
		return 0
	}
	budget := 1 - st.obj.Target // clamped positive at construction
	return (float64(bad) / float64(total)) / budget
}

// Evaluate computes every objective's burn rates at the given instant,
// latching and logging alert transitions. Called on juryd's evaluation
// ticker and by the serving handlers; transitions are deterministic in
// (window state, now), so concurrent callers agree.
func (s *SLO) Evaluate(now time.Time) []ObjectiveStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ObjectiveStatus, 0, len(s.states))
	for _, st := range s.states {
		os := ObjectiveStatus{
			Name:          st.obj.Name,
			SLI:           st.obj.SLI,
			Target:        st.obj.Target,
			ThresholdNS:   st.obj.ThresholdNS,
			Good:          st.good,
			Bad:           st.bad,
			BurnFastShort: st.burnOver(now, s.windows.FastShort),
			BurnFastLong:  st.burnOver(now, s.windows.FastLong),
			BurnSlowShort: st.burnOver(now, s.windows.SlowShort),
			BurnSlowLong:  st.burnOver(now, s.windows.SlowLong),
		}
		os.BudgetRemaining = 1 - os.BurnSlowLong

		fast := os.BurnFastShort >= s.windows.FastBurn && os.BurnFastLong >= s.windows.FastBurn
		if fast != st.fastActive {
			st.fastActive = fast
			if fast {
				st.fastTrips++
				s.logger.Warn("slo fast burn-rate alert firing",
					"objective", st.obj.Name, "sli", string(st.obj.SLI),
					"burn_short", os.BurnFastShort, "burn_long", os.BurnFastLong,
					"threshold", s.windows.FastBurn)
			} else {
				s.logger.Info("slo fast burn-rate alert resolved",
					"objective", st.obj.Name, "sli", string(st.obj.SLI))
			}
		}
		slow := os.BurnSlowShort >= s.windows.SlowBurn && os.BurnSlowLong >= s.windows.SlowBurn
		if slow != st.slowActive {
			st.slowActive = slow
			if slow {
				st.slowTrips++
				s.logger.Warn("slo slow burn-rate alert firing",
					"objective", st.obj.Name, "sli", string(st.obj.SLI),
					"burn_short", os.BurnSlowShort, "burn_long", os.BurnSlowLong,
					"threshold", s.windows.SlowBurn)
			} else {
				s.logger.Info("slo slow burn-rate alert resolved",
					"objective", st.obj.Name, "sli", string(st.obj.SLI))
			}
		}
		os.FastAlert = st.fastActive
		os.SlowAlert = st.slowActive
		os.FastTrips = st.fastTrips
		os.SlowTrips = st.slowTrips
		out = append(out, os)
	}
	return out
}

// SLOSnapshot is the /v1/slo wire form: the policy plus every
// objective's evaluated status.
type SLOSnapshot struct {
	Windows     BurnWindows       `json:"windows"`
	EvaluatedAt time.Time         `json:"evaluated_at"`
	Objectives  []ObjectiveStatus `json:"objectives"`
}

// Snapshot evaluates at the given instant and wraps the result with the
// policy in force.
func (s *SLO) Snapshot(now time.Time) *SLOSnapshot {
	return &SLOSnapshot{Windows: s.windows, EvaluatedAt: now, Objectives: s.Evaluate(now)}
}
