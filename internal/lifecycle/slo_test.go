package lifecycle_test

import (
	"bytes"
	"log/slog"
	"testing"
	"time"

	"juryselect/internal/lifecycle"
)

// compressedWindows is the default policy shrunk 1000×: fast pair
// 300ms/3.6s, slow pair 21.6s/259.2s, same burn thresholds. The CI
// smoke uses the same compression against juryd flags.
func compressedWindows() lifecycle.BurnWindows {
	return lifecycle.DefaultBurnWindows().Compress(1000)
}

func TestSLOFastBurnAlertFiresAndResolves(t *testing.T) {
	clk := newTestClock()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	w := compressedWindows()
	slo := lifecycle.NewSLO([]lifecycle.Objective{
		{Name: "verdict-p99", SLI: lifecycle.SLIVerdictLatency, Target: 0.99,
			ThresholdNS: int64(time.Second)},
	}, w, clk.now, logger)

	// All-good traffic: no alert.
	for i := 0; i < 50; i++ {
		slo.ObserveVerdict(clk.advance(w.FastShort/25), int64(time.Millisecond), true)
	}
	st := slo.Evaluate(clk.now())[0]
	if st.FastAlert || st.SlowAlert || st.FastTrips != 0 {
		t.Fatalf("healthy status = %+v", st)
	}
	if st.BudgetRemaining != 1 {
		t.Fatalf("untouched budget remaining = %g, want 1", st.BudgetRemaining)
	}

	// Total failure: every verdict blows the threshold. The bad fraction
	// hits 100× budget in both fast windows — far past 14.4×.
	for i := 0; i < 50; i++ {
		slo.ObserveVerdict(clk.advance(w.FastShort/25), int64(10*time.Second), true)
	}
	st = slo.Evaluate(clk.now())[0]
	if !st.FastAlert || st.FastTrips != 1 {
		t.Fatalf("burning status = %+v", st)
	}
	if st.BurnFastShort < w.FastBurn || st.BurnFastLong < w.FastBurn {
		t.Fatalf("burn rates %g/%g below threshold %g", st.BurnFastShort, st.BurnFastLong, w.FastBurn)
	}
	if !bytes.Contains(logBuf.Bytes(), []byte("slo fast burn-rate alert firing")) {
		t.Fatalf("no firing log line in: %s", logBuf.String())
	}

	// Recovery: good traffic pushes the short window back under the
	// threshold and the alert resolves (the long window may still burn).
	logBuf.Reset()
	for i := 0; i < 200; i++ {
		slo.ObserveVerdict(clk.advance(w.FastShort/25), int64(time.Millisecond), true)
	}
	st = slo.Evaluate(clk.now())[0]
	if st.FastAlert {
		t.Fatalf("alert still active after recovery: %+v", st)
	}
	if !bytes.Contains(logBuf.Bytes(), []byte("slo fast burn-rate alert resolved")) {
		t.Fatalf("no resolved log line in: %s", logBuf.String())
	}
}

func TestSLOBothWindowsRequired(t *testing.T) {
	// A short spike alone (empty long window) must not page: the fast
	// alert needs BOTH windows over threshold.
	clk := newTestClock()
	w := compressedWindows()
	slo := lifecycle.NewSLO([]lifecycle.Objective{
		{Name: "http", SLI: lifecycle.SLIHTTP5xx, Target: 0.999},
	}, w, clk.now, slog.New(slog.DiscardHandler))

	// Seed a long stretch of good traffic, then one bad burst: the short
	// window burns hard but the long window stays diluted.
	for i := 0; i < 100; i++ {
		slo.Observe(lifecycle.SLIHTTP5xx, clk.advance(w.FastLong/100), 100, 0)
	}
	slo.Observe(lifecycle.SLIHTTP5xx, clk.now(), 0, 60)
	st := slo.Evaluate(clk.now())[0]
	if st.BurnFastShort < w.FastBurn {
		t.Fatalf("short window burn %g, expected a spike past %g", st.BurnFastShort, w.FastBurn)
	}
	if st.FastAlert {
		t.Fatalf("one-window spike paged: %+v", st)
	}
}

func TestSLOExpiredRateAndTargetClamp(t *testing.T) {
	clk := newTestClock()
	w := compressedWindows()
	slo := lifecycle.NewSLO([]lifecycle.Objective{
		{Name: "expired", SLI: lifecycle.SLIExpiredRate, Target: 2.0}, // clamped to 0.99999
	}, w, clk.now, slog.New(slog.DiscardHandler))
	slo.ObserveVerdict(clk.now(), int64(time.Second), true)
	slo.ObserveVerdict(clk.now(), 0, false)
	st := slo.Evaluate(clk.now())[0]
	if st.Target != 0.99999 {
		t.Fatalf("target = %g, want clamp to 0.99999", st.Target)
	}
	if st.Good != 1 || st.Bad != 1 {
		t.Fatalf("totals = %d/%d, want 1/1", st.Good, st.Bad)
	}
}

func TestSLOFsyncObjective(t *testing.T) {
	clk := newTestClock()
	slo := lifecycle.NewSLO([]lifecycle.Objective{
		{Name: "fsync", SLI: lifecycle.SLIWALFsync, Target: 0.95,
			ThresholdNS: int64(10 * time.Millisecond)},
	}, compressedWindows(), clk.now, slog.New(slog.DiscardHandler))
	slo.ObserveFsync(int64(time.Millisecond))
	slo.ObserveFsync(int64(50 * time.Millisecond))
	st := slo.Evaluate(clk.now())[0]
	if st.Good != 1 || st.Bad != 1 {
		t.Fatalf("fsync totals = %d/%d, want 1/1", st.Good, st.Bad)
	}
}

func TestSLOSnapshotShape(t *testing.T) {
	clk := newTestClock()
	w := compressedWindows()
	slo := lifecycle.NewSLO([]lifecycle.Objective{
		{Name: "a", SLI: lifecycle.SLIHTTP5xx, Target: 0.999},
		{Name: "b", SLI: lifecycle.SLIExpiredRate, Target: 0.9},
	}, w, clk.now, slog.New(slog.DiscardHandler))
	snap := slo.Snapshot(clk.now())
	if snap.Windows != w || len(snap.Objectives) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if !snap.EvaluatedAt.Equal(clk.now()) {
		t.Fatalf("evaluated at %v", snap.EvaluatedAt)
	}
	for _, o := range snap.Objectives {
		// Finite, zero-valued burns on an empty tracker — the Prometheus
		// exposition rejects NaN/Inf.
		if o.BurnFastShort != 0 || o.BurnSlowLong != 0 || o.BudgetRemaining != 1 {
			t.Fatalf("empty objective status = %+v", o)
		}
	}
}
