package lifecycle

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sort"

	"juryselect/internal/obs"
)

// AggregateRow is one (strategy, outcome) latency bucket: how many
// tasks closed that way, what they spent, and the three lifecycle
// distributions — creation→verdict, creation→first-vote, and per-vote
// invitation→vote.
type AggregateRow struct {
	Strategy        string      `json:"strategy"`
	Outcome         string      `json:"outcome"`
	Tasks           int64       `json:"tasks"`
	EarlyStopped    int64       `json:"early_stopped"`
	Votes           int64       `json:"votes"`
	Invites         int64       `json:"invites"`
	Declines        int64       `json:"declines"`
	Timeouts        int64       `json:"timeouts"`
	TimeToVerdict   obs.Summary `json:"time_to_verdict"`
	TimeToFirstVote obs.Summary `json:"time_to_first_vote"`
	InviteToVote    obs.Summary `json:"invite_to_vote"`
}

// Snapshot is the engine's rendered aggregate state. Derived from
// order-invariant integer state over sorted keys, so two engines that
// consumed the same event multiset render byte-identical JSON; that is
// what Fingerprint hashes and the live≡replay checks compare.
type Snapshot struct {
	Events            int64          `json:"events"`
	TasksCreated      int64          `json:"tasks_created"`
	TasksDecided      int64          `json:"tasks_decided"`
	TasksExpired      int64          `json:"tasks_expired"`
	TasksOpen         int64          `json:"tasks_open"`
	Votes             int64          `json:"votes"`
	Declines          int64          `json:"declines"`
	Timeouts          int64          `json:"timeouts"`
	Replacements      int64          `json:"replacements"`
	UnknownTaskEvents int64          `json:"unknown_task_events"`
	TimelinesRetained int64          `json:"timelines_retained"`
	TimelinesEvicted  int64          `json:"timelines_evicted"`
	Aggregates        []AggregateRow `json:"aggregates"`
	Fingerprint       string         `json:"fingerprint"`
}

// Stats is the cheap counter block for /metrics: no maps walked, no
// quantiles computed.
type Stats struct {
	Events            int64 `json:"events"`
	TasksCreated      int64 `json:"tasks_created"`
	TasksDecided      int64 `json:"tasks_decided"`
	TasksExpired      int64 `json:"tasks_expired"`
	TasksOpen         int64 `json:"tasks_open"`
	Votes             int64 `json:"votes"`
	Declines          int64 `json:"declines"`
	Timeouts          int64 `json:"timeouts"`
	Replacements      int64 `json:"replacements"`
	UnknownTaskEvents int64 `json:"unknown_task_events"`
	TimelinesRetained int64 `json:"timelines_retained"`
	TimelinesEvicted  int64 `json:"timelines_evicted"`
}

// openCount is the number of tracked, still-open tasks. Callers hold
// e.mu. Retained records are open records plus the closed set.
func (e *Engine) openCount() int64 {
	return int64(len(e.records) - len(e.closedIDs))
}

// Stats returns the counter block.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Events:            e.events,
		TasksCreated:      e.tasksCreated,
		TasksDecided:      e.tasksDecided,
		TasksExpired:      e.tasksExpired,
		TasksOpen:         e.openCount(),
		Votes:             e.votesSeen,
		Declines:          e.declinesSeen,
		Timeouts:          e.timeoutsSeen,
		Replacements:      e.replacements,
		UnknownTaskEvents: e.unknownTask,
		TimelinesRetained: int64(len(e.records)),
		TimelinesEvicted:  e.evicted,
	}
}

// Snapshot renders the aggregate state deterministically and stamps its
// fingerprint: the SHA-256 of the snapshot's canonical JSON with the
// Fingerprint field empty.
func (e *Engine) Snapshot() *Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := &Snapshot{
		Events:            e.events,
		TasksCreated:      e.tasksCreated,
		TasksDecided:      e.tasksDecided,
		TasksExpired:      e.tasksExpired,
		TasksOpen:         e.openCount(),
		Votes:             e.votesSeen,
		Declines:          e.declinesSeen,
		Timeouts:          e.timeoutsSeen,
		Replacements:      e.replacements,
		UnknownTaskEvents: e.unknownTask,
		TimelinesRetained: int64(len(e.records)),
		TimelinesEvicted:  e.evicted,
		Aggregates:        make([]AggregateRow, 0, len(e.aggs)),
	}
	keys := make([]aggKey, 0, len(e.aggs))
	for k := range e.aggs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, k int) bool {
		if keys[i].strategy != keys[k].strategy {
			return keys[i].strategy < keys[k].strategy
		}
		return keys[i].outcome < keys[k].outcome
	})
	for _, k := range keys {
		a := e.aggs[k]
		ttv, ttfv, iv := a.ttv.Snapshot(), a.ttfv.Snapshot(), a.inviteVote.Snapshot()
		s.Aggregates = append(s.Aggregates, AggregateRow{
			Strategy:        k.strategy,
			Outcome:         k.outcome,
			Tasks:           a.tasks,
			EarlyStopped:    a.earlyStopped,
			Votes:           a.votes,
			Invites:         a.invites,
			Declines:        a.declines,
			Timeouts:        a.timeouts,
			TimeToVerdict:   ttv.Summary(),
			TimeToFirstVote: ttfv.Summary(),
			InviteToVote:    iv.Summary(),
		})
	}
	raw, err := json.Marshal(s)
	if err != nil { // struct of scalars/slices: cannot fail
		panic("lifecycle: snapshot marshal: " + err.Error())
	}
	sum := sha256.Sum256(raw)
	s.Fingerprint = hex.EncodeToString(sum[:])
	return s
}
