package lifecycle

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"time"
)

// Span is one step of a task's life. DurationNS is span-specific: the
// journaled invitation→vote latency on vote spans, invitation→release
// on decline/timeout spans (recomputed from journaled instants, so
// replay renders the identical value), creation→close on the close
// span, and zero on create/invite spans (replacements are invited at
// the instant of the release they answer — the preceding span's
// duration is the gap). SinceCreateNS places every span on the task's
// own clock.
type Span struct {
	Kind          string    `json:"kind"` // create|invite|vote|decline|timeout|close
	At            time.Time `json:"at"`
	SinceCreateNS int64     `json:"since_create_ns"`
	DurationNS    int64     `json:"duration_ns,omitempty"`
	Juror         string    `json:"juror,omitempty"`
	ErrorRate     float64   `json:"error_rate,omitempty"`
	Vote          *bool     `json:"vote,omitempty"`
}

// Timeline is one task's rendered life: the creation header (with the
// pool version selection ran against, pinned at creation), every
// subsequent juror interaction in application order, and the terminal
// outcome. Fingerprint is the SHA-256 of the timeline's canonical JSON
// with the Fingerprint field empty — byte equality across a restart is
// the replay-identity acceptance check.
type Timeline struct {
	Task             string    `json:"task"`
	Pool             string    `json:"pool"`
	Strategy         string    `json:"strategy"`
	PoolVersion      uint64    `json:"pool_version"`
	PredictedJER     float64   `json:"predicted_jer"`
	TargetConfidence float64   `json:"target_confidence"`
	CreatedAt        time.Time `json:"created_at"`
	Outcome          string    `json:"outcome"` // open|decided|expired
	Answer           *bool     `json:"answer,omitempty"`
	Confidence       float64   `json:"confidence,omitempty"`
	EarlyStopped     bool      `json:"early_stopped,omitempty"`

	Invites  int `json:"invites"`
	Votes    int `json:"votes"`
	Declines int `json:"declines"`
	Timeouts int `json:"timeouts"`

	// TimeToFirstVoteNS and TimeToVerdictNS are -1 while not yet
	// reached (no votes / still open).
	TimeToFirstVoteNS int64 `json:"time_to_first_vote_ns"`
	TimeToVerdictNS   int64 `json:"time_to_verdict_ns"`

	Spans       []Span `json:"spans"`
	Fingerprint string `json:"fingerprint"`
}

// Timeline renders the task's life, or ok=false if the engine never saw
// it open (unknown ID, beyond the compaction horizon, or evicted).
func (e *Engine) Timeline(id string) (*Timeline, bool) {
	e.mu.Lock()
	r := e.records[id]
	if r == nil {
		e.mu.Unlock()
		return nil, false
	}
	// Copy the record's mutable parts under the lock; rendering below is
	// pure. The events slice is append-only, so a length-pinned view is
	// a consistent prefix even if the live tail grows concurrently.
	rec := *r
	rec.events = r.events[:len(r.events):len(r.events)]
	e.mu.Unlock()
	return renderTimeline(&rec), true
}

// renderTimeline builds the wire form from a record copy. Deterministic
// in the record alone.
func renderTimeline(r *taskRecord) *Timeline {
	tl := &Timeline{
		Task:              r.id,
		Pool:              r.pool,
		Strategy:          r.strategy,
		PoolVersion:       r.poolVersion,
		PredictedJER:      r.predictedJER,
		TargetConfidence:  r.targetConf,
		CreatedAt:         r.createdAt,
		Outcome:           outcomeOf(r),
		Invites:           len(r.jury),
		TimeToFirstVoteNS: r.firstVoteNS,
		TimeToVerdictNS:   -1,
		Spans:             make([]Span, 0, len(r.events)+2),
	}
	if r.closed && r.decided {
		answer := r.answer
		tl.Answer = &answer
		tl.Confidence = r.confidence
		tl.EarlyStopped = r.earlyStopped
	}

	tl.Spans = append(tl.Spans, Span{Kind: "create", At: r.createdAt})
	// invitedAt tracks each juror's outstanding invitation instant so
	// decline/timeout spans can carry invitation → release durations.
	invitedAt := make(map[string]time.Time, len(r.jury))
	for _, j := range r.jury {
		invitedAt[j.ID] = r.createdAt
	}
	for i := range r.events {
		te := &r.events[i]
		sp := Span{
			At:            te.at,
			SinceCreateNS: te.at.Sub(r.createdAt).Nanoseconds(),
			Juror:         te.juror,
			ErrorRate:     te.eps,
		}
		switch te.kind {
		case evInvite:
			sp.Kind = "invite"
			tl.Invites++
			invitedAt[te.juror] = te.at
		case evVote:
			sp.Kind = "vote"
			tl.Votes++
			vote := te.vote
			sp.Vote = &vote
			sp.DurationNS = te.latencyNS
		case evDecline, evTimeout:
			if te.kind == evDecline {
				sp.Kind = "decline"
				tl.Declines++
			} else {
				sp.Kind = "timeout"
				tl.Timeouts++
			}
			if at, ok := invitedAt[te.juror]; ok {
				sp.DurationNS = te.at.Sub(at).Nanoseconds()
			}
		}
		tl.Spans = append(tl.Spans, sp)
	}
	if r.closed {
		ttv := r.closedAt.Sub(r.createdAt).Nanoseconds()
		tl.TimeToVerdictNS = ttv
		tl.Spans = append(tl.Spans, Span{
			Kind:          "close",
			At:            r.closedAt,
			SinceCreateNS: ttv,
			DurationNS:    ttv,
		})
	}

	raw, err := json.Marshal(tl)
	if err != nil { // struct of scalars/slices: cannot fail
		panic("lifecycle: timeline marshal: " + err.Error())
	}
	sum := sha256.Sum256(raw)
	tl.Fingerprint = hex.EncodeToString(sum[:])
	return tl
}
