package lifecycle

import (
	"time"

	"juryselect/internal/tasks"
)

// StallReport is the watchdog's verdict on sweep health, surfaced in
// /healthz. A task is "stalled" when an invited juror sat past
// timeout+grace without the sweeper releasing them; the sweeper itself
// is "stalled" when its last completed run is older than several
// intervals. The two signals separate "work is overdue" (sweeper dead,
// or drowning) from "nothing was due" (healthy idle).
type StallReport struct {
	StalledTasks    int   `json:"stalled_tasks"`
	OldestOverdueNS int64 `json:"oldest_overdue_ns,omitempty"`
	Sweeps          int64 `json:"sweeps"`
	SweepReleased   int64 `json:"sweep_released"`
	SweepExpired    int64 `json:"sweep_expired"`
	// LastSweepAgeNS is -1 before the first sweep completes.
	LastSweepAgeNS int64 `json:"last_sweep_age_ns"`
	SweeperStalled bool  `json:"sweeper_stalled"`
	Healthy        bool  `json:"healthy"`
}

// Watchdog flags tasks stuck past their juror timeout with no sweeper
// progress. Check is a lock-free scan (published view snapshots), cheap
// enough for every /healthz probe.
type Watchdog struct {
	store *tasks.Store
	// grace is how far past the juror timeout an invite may sit before
	// it counts as stalled — the sweeper's expected cadence plus slack.
	grace time.Duration
	// interval is the configured sweep period; zero disables the
	// sweeper-liveness check (deployments driving Sweep manually).
	interval time.Duration
}

// NewWatchdog builds a watchdog for the store. grace <= 0 defaults to
// three sweep intervals (or 30s when the interval is unknown).
func NewWatchdog(store *tasks.Store, grace, interval time.Duration) *Watchdog {
	if grace <= 0 {
		if interval > 0 {
			grace = 3 * interval
		} else {
			grace = 30 * time.Second
		}
	}
	return &Watchdog{store: store, grace: grace, interval: interval}
}

// Check evaluates sweep health at the given instant.
func (w *Watchdog) Check(now time.Time) StallReport {
	stalled, oldest := w.store.StalledInvites(now, w.grace)
	prog := w.store.SweepProgress()
	rep := StallReport{
		StalledTasks:    stalled,
		OldestOverdueNS: oldest.Nanoseconds(),
		Sweeps:          prog.Sweeps,
		SweepReleased:   prog.Released,
		SweepExpired:    prog.Expired,
		LastSweepAgeNS:  -1,
	}
	if !prog.LastSweepAt.IsZero() {
		rep.LastSweepAgeNS = now.Sub(prog.LastSweepAt).Nanoseconds()
	}
	if w.interval > 0 {
		// The sweeper is stalled once its silence exceeds both the grace
		// and three intervals — a fresh boot gets the same allowance
		// before its first tick counts against it.
		allowance := w.grace
		if 3*w.interval > allowance {
			allowance = 3 * w.interval
		}
		if rep.LastSweepAgeNS < 0 {
			rep.SweeperStalled = stalled > 0
		} else {
			rep.SweeperStalled = rep.LastSweepAgeNS > allowance.Nanoseconds()
		}
	}
	rep.Healthy = rep.StalledTasks == 0 && !rep.SweeperStalled
	return rep
}
