// Package obs is juryd's zero-dependency observability kit: lock-cheap
// latency histograms, a pooled per-request span recorder with a ring of
// recent traces, and a Prometheus text-exposition writer/parser. It sits
// below every serving package (server, tasks, simul) and allocates
// nothing on the recording paths — an Observe is three atomic adds and a
// CAS loop, a span mark is an append into a preallocated array — so the
// warm select path and the durable vote path stay on their allocation
// diets with instrumentation compiled in.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the histogram's fixed bucket count: bucket 0 holds the
// value 0 and bucket i (i ≥ 1) holds values in [2^(i-1), 2^i). 64
// buckets cover every non-negative int64, so there is no overflow bucket
// and no configuration.
const NumBuckets = 64

// Histogram is a power-of-two-bucketed histogram of non-negative int64
// samples (nanoseconds, by convention). All methods are safe for
// concurrent use and Observe never allocates: writers touch only
// atomics, readers take a point-in-time Snapshot. The zero value is
// ready to use, which is what lets servers embed arrays of histograms
// without constructor plumbing.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// bucketOf maps a sample to its bucket index: bits.Len64 is a single
// LZCNT on amd64, so bucketing costs nothing against the atomics.
func bucketOf(v int64) int { return bits.Len64(uint64(v)) & (NumBuckets - 1) }

// Observe records one sample. Negative samples (a clock step mid-
// measurement) clamp to zero rather than corrupting a bucket index.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// Snapshot returns a point-in-time copy of the counters. Buckets are
// loaded individually, so a snapshot taken under concurrent writes is
// approximately — not transactionally — consistent, which is the usual
// scrape-time contract.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Count returns the number of samples observed so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistSnapshot is an immutable copy of a Histogram, mergeable and
// queryable for quantiles.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets [NumBuckets]int64
}

// Merge folds another snapshot into this one (for aggregating per-shard
// or per-worker histograms). Max takes the larger of the two.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the exact mean of the observed samples (sum and count are
// tracked outside the buckets), or 0 for an empty snapshot.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]): the
// cumulative bucket walk finds the target bucket, then interpolates
// linearly inside its [2^(i-1), 2^i) range. The estimate is exact for
// the tracked extremes (q=1 returns Max) and otherwise within a factor
// of 2 of the true value — the resolution power-of-two buckets buy in
// exchange for fixed memory and atomic-only writes.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return s.Max
	}
	if q < 0 {
		q = 0
	}
	target := int64(q*float64(s.Count-1)) + 1 // rank in [1, Count]
	cum := int64(0)
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lo, hi := bucketBounds(i)
			if hi > s.Max {
				hi = s.Max // the top occupied bucket ends at the true max
			}
			if hi <= lo {
				return lo
			}
			frac := float64(target-cum-1) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += c
	}
	return s.Max
}

// bucketBounds returns bucket i's value range [lo, hi].
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	return int64(1) << (i - 1), int64(1)<<i - 1
}

// Summary is the standard JSON rendering of a latency histogram: the
// fixed quantile set dashboards read, in nanoseconds.
type Summary struct {
	Count  int64   `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  int64   `json:"p50_ns"`
	P90NS  int64   `json:"p90_ns"`
	P99NS  int64   `json:"p99_ns"`
	P999NS int64   `json:"p999_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// Summary renders the snapshot's standard quantile set.
func (s *HistSnapshot) Summary() Summary {
	return Summary{
		Count:  s.Count,
		MeanNS: s.Mean(),
		P50NS:  s.Quantile(0.50),
		P90NS:  s.Quantile(0.90),
		P99NS:  s.Quantile(0.99),
		P999NS: s.Quantile(0.999),
		MaxNS:  s.Max,
	}
}
