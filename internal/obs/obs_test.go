package obs

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 100, 1000, 1000, 1 << 20} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	if want := int64(0 + 1 + 2 + 3 + 100 + 1000 + 1000 + 1<<20); s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
	if s.Max != 1<<20 {
		t.Fatalf("max = %d, want %d", s.Max, 1<<20)
	}
	if got := s.Quantile(1); got != 1<<20 {
		t.Fatalf("q1 = %d, want max", got)
	}
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("q0 = %d, want 0", got)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Buckets[0] != 1 {
		t.Fatalf("negative sample not clamped: %+v", s)
	}
}

// TestHistogramQuantileAccuracy: power-of-two buckets promise estimates
// within a factor of 2; with interpolation a uniform distribution lands
// much closer. Assert the factor-of-2 contract.
func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 10000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := int64(q * 10000)
		got := s.Quantile(q)
		if got < exact/2 || got > exact*2 {
			t.Errorf("q%.3f = %d, want within 2x of %d", q, got, exact)
		}
	}
	if got := s.Quantile(1); got != 10000 {
		t.Errorf("q1 = %d, want 10000", got)
	}
	if m := s.Mean(); m < 5000 || m > 5001 {
		t.Errorf("mean = %g, want ~5000.5", m)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(10)
	a.Observe(20)
	b.Observe(1 << 30)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 3 {
		t.Fatalf("merged count = %d, want 3", sa.Count)
	}
	if sa.Max != 1<<30 {
		t.Fatalf("merged max = %d, want %d", sa.Max, 1<<30)
	}
	if sa.Sum != 30+1<<30 {
		t.Fatalf("merged sum = %d", sa.Sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var bucketed int64
	for _, c := range s.Buckets {
		bucketed += c
	}
	if bucketed != s.Count {
		t.Fatalf("buckets sum to %d, count %d", bucketed, s.Count)
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Fatalf("Observe allocates %v/op, want 0", n)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(4)
	tr := NewTrace()
	for i := 1; i <= 6; i++ {
		tr.Reset()
		tr.ID = int64(i)
		tr.Endpoint = "select_warm"
		tr.DurNS = int64(i) * 1000
		tr.Add(StageDecode, 10)
		tr.Add(StageEncode, 20)
		r.Capture(tr)
	}
	if r.Total() != 6 {
		t.Fatalf("total = %d, want 6", r.Total())
	}
	got := r.Snapshot(nil, 0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	// Newest first: IDs 6, 5, 4, 3.
	for i, want := range []int64{6, 5, 4, 3} {
		if got[i].ID != want {
			t.Fatalf("snapshot[%d].ID = %d, want %d", i, got[i].ID, want)
		}
	}
	if len(got[0].Spans) != 2 || got[0].Spans[0].Stage != StageDecode {
		t.Fatalf("spans not copied: %+v", got[0].Spans)
	}
	// Filter: min duration.
	slow := r.Snapshot(func(tr *Trace) bool { return tr.DurNS >= 5000 }, 0)
	if len(slow) != 2 {
		t.Fatalf("filtered %d, want 2", len(slow))
	}
	// Limit applies after filtering order.
	one := r.Snapshot(nil, 1)
	if len(one) != 1 || one[0].ID != 6 {
		t.Fatalf("limit 1 returned %+v", one)
	}
}

func TestTraceRingCaptureAllocs(t *testing.T) {
	r := NewTraceRing(8)
	tr := NewTrace()
	tr.Endpoint = "jer"
	tr.Add(StageDecode, 100)
	if n := testing.AllocsPerRun(100, func() { r.Capture(tr) }); n != 0 {
		t.Fatalf("Capture allocates %v/op, want 0", n)
	}
}

func TestTraceTruncation(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < MaxSpans+5; i++ {
		tr.Add(StageDecode, 1)
	}
	if len(tr.Spans) != MaxSpans || !tr.Truncated {
		t.Fatalf("spans = %d truncated = %v", len(tr.Spans), tr.Truncated)
	}
	if tr.StageNS(StageDecode) != MaxSpans {
		t.Fatalf("StageNS = %d", tr.StageNS(StageDecode))
	}
}

func TestContextTrace(t *testing.T) {
	if TraceFromContext(context.Background()) != nil {
		t.Fatal("background context carries a trace")
	}
	tr := NewTrace()
	ctx := ContextWithTrace(context.Background(), tr)
	if TraceFromContext(ctx) != tr {
		t.Fatal("trace not threaded")
	}
}

func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumStages; i++ {
		name := Stage(i).String()
		if name == "" || name == "unknown" || seen[name] {
			t.Fatalf("stage %d has bad/duplicate name %q", i, name)
		}
		seen[name] = true
	}
}

func TestPromRoundTrip(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000)
	}
	var buf bytes.Buffer
	p := NewProm(&buf)
	p.Header("juryd_requests_total", "counter", "Total requests.")
	p.Sample("juryd_requests_total", `endpoint="jer"`, 42)
	p.Sample("juryd_requests_total", `endpoint="select_warm"`, 7)
	p.Header("juryd_inflight", "gauge", "In-flight requests.")
	p.Sample("juryd_inflight", "", 3)
	p.Header("juryd_request_duration_seconds", "histogram", "Request latency.")
	p.HistogramNS("juryd_request_duration_seconds", `endpoint="jer"`, h.Snapshot())
	p.HistogramNS("juryd_request_duration_seconds", `endpoint="select_warm"`, h.Snapshot())

	fams, err := ParseProm(&buf)
	if err != nil {
		t.Fatalf("exporter output does not parse: %v", err)
	}
	reqs := fams["juryd_requests_total"]
	if reqs == nil || reqs.Type != "counter" || len(reqs.Samples) != 2 {
		t.Fatalf("requests family = %+v", reqs)
	}
	if reqs.Samples[0].Labels["endpoint"] != "jer" || reqs.Samples[0].Value != 42 {
		t.Fatalf("sample = %+v", reqs.Samples[0])
	}
	hist := fams["juryd_request_duration_seconds"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family missing: %+v", hist)
	}
	var count, inf float64
	for _, s := range hist.Samples {
		if strings.HasSuffix(s.Name, "_count") && s.Labels["endpoint"] == "jer" {
			count = s.Value
		}
		if strings.HasSuffix(s.Name, "_bucket") && s.Labels["endpoint"] == "jer" && s.Labels["le"] == "+Inf" {
			inf = s.Value
		}
	}
	if count != 1000 || inf != 1000 {
		t.Fatalf("count %v inf %v, want 1000", count, inf)
	}
}

func TestParsePromRejectsBroken(t *testing.T) {
	cases := []string{
		"juryd_orphan 1\n", // sample without TYPE
		"# TYPE juryd_x widget\njuryd_x 1\n",
		"# TYPE juryd_h histogram\n" +
			"juryd_h_bucket{le=\"1\"} 5\njuryd_h_bucket{le=\"2\"} 3\n" +
			"juryd_h_bucket{le=\"+Inf\"} 3\njuryd_h_sum 1\njuryd_h_count 3\n", // non-cumulative
		"# TYPE juryd_h histogram\n" +
			"juryd_h_bucket{le=\"1\"} 5\njuryd_h_sum 1\njuryd_h_count 5\n", // no +Inf
	}
	for i, c := range cases {
		if _, err := ParseProm(strings.NewReader(c)); err == nil {
			t.Errorf("case %d parsed, want error:\n%s", i, c)
		}
	}
}

func TestPromHistogramSeconds(t *testing.T) {
	var buf bytes.Buffer
	p := NewProm(&buf)
	p.Header("go_gc_pause_seconds", "histogram", "GC pauses.")
	bounds := []float64{1e-6, 1e-3, maxFloat * 10}
	counts := []uint64{5, 3, 1}
	p.HistogramSeconds("go_gc_pause_seconds", "", bounds, counts, 0.005)
	fams, err := ParseProm(&buf)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	f := fams["go_gc_pause_seconds"]
	if f == nil {
		t.Fatal("family missing")
	}
	var inf float64
	for _, s := range f.Samples {
		if strings.HasSuffix(s.Name, "_bucket") && s.Labels["le"] == "+Inf" {
			inf = s.Value
		}
	}
	if inf != 9 {
		t.Fatalf("+Inf = %v, want 9", inf)
	}
}

// TestHistogramExamplePercentiles pins the interpolation behaviour the
// serving metrics rely on: with all mass in one bucket the quantiles
// stay inside that bucket's bounds.
func TestHistogramExamplePercentiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(2000 + int64(i)) // all in bucket [2048,4095] or [1024,2047]
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		v := s.Quantile(q)
		if v < 1024 || v > 4095 {
			t.Fatalf("q%.2f = %d escaped the occupied buckets", q, v)
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkTraceCapture(b *testing.B) {
	r := NewTraceRing(DefaultTraceRing)
	tr := NewTrace()
	tr.Endpoint = "select_warm"
	tr.Start = time.Now()
	for i := 0; i < 6; i++ {
		tr.Add(Stage(i), int64(i)*100)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Capture(tr)
	}
}

func ExampleHistSnapshot_Summary() {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	snap := h.Snapshot()
	s := snap.Summary()
	fmt.Println(s.Count, s.MaxNS)
	// Output: 100 100000
}
