package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prom writes the Prometheus text exposition format (version 0.0.4)
// into a bytes-like writer. It is a thin sequencing helper: Header once
// per metric family, then one Sample (or HistogramNS) per series. The
// caller owns buffering and error handling via the underlying writer.
type Prom struct {
	w io.Writer
}

// NewProm returns a writer targeting w.
func NewProm(w io.Writer) *Prom { return &Prom{w: w} }

// Header emits the # HELP / # TYPE preamble for one metric family.
// typ is "counter", "gauge" or "histogram".
func (p *Prom) Header(name, typ, help string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample emits one series sample. labels is the raw label body without
// braces (e.g. `endpoint="select_warm"`), empty for an unlabelled
// series.
func (p *Prom) Sample(name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(p.w, "%s %s\n", name, formatPromValue(v))
		return
	}
	fmt.Fprintf(p.w, "%s{%s} %s\n", name, labels, formatPromValue(v))
}

// HistogramNS emits one histogram series from a nanosecond snapshot,
// converting bucket bounds to seconds. Buckets are cumulative with
// le = 2^i ns (every sample in buckets ≤ i is < 2^i ns); empty high
// buckets are elided, +Inf always emitted. Call Header(name,
// "histogram", …) once before the first series of the family.
func (p *Prom) HistogramNS(name, labels string, s HistSnapshot) {
	top := 0
	for i, c := range s.Buckets {
		if c > 0 {
			top = i
		}
	}
	cum := int64(0)
	for i := 0; i <= top; i++ {
		cum += s.Buckets[i]
		le := formatPromValue(float64(uint64(1)<<uint(i)) / 1e9)
		p.Sample(name+"_bucket", joinLabels(labels, `le="`+le+`"`), float64(cum))
	}
	p.Sample(name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(s.Count))
	p.Sample(name+"_sum", labels, float64(s.Sum)/1e9)
	p.Sample(name+"_count", labels, float64(s.Count))
}

// HistogramSeconds emits one histogram series from explicit
// second-denominated bucket bounds and per-bucket (non-cumulative)
// counts, as runtime/metrics Float64Histograms provide. bounds[i] is
// the inclusive upper bound of counts[i]; an infinite last bound is
// rendered as +Inf.
func (p *Prom) HistogramSeconds(name, labels string, bounds []float64, counts []uint64, sum float64) {
	cum := uint64(0)
	for i, c := range counts {
		cum += c
		if i >= len(bounds) {
			break
		}
		b := bounds[i]
		le := "+Inf"
		if b < maxFloat {
			le = formatPromValue(b)
		}
		p.Sample(name+"_bucket", joinLabels(labels, `le="`+le+`"`), float64(cum))
	}
	total := uint64(0)
	for _, c := range counts {
		total += c
	}
	if len(bounds) == 0 || bounds[len(bounds)-1] < maxFloat {
		p.Sample(name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(total))
	}
	p.Sample(name+"_sum", labels, sum)
	p.Sample(name+"_count", labels, float64(total))
}

const maxFloat = 1e300 // treat anything beyond as an infinite bound

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// formatPromValue renders a float the shortest round-trippable way.
func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PromSample is one parsed exposition line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one parsed metric family: its declared type and every
// sample carrying the family's name (histogram families include the
// _bucket/_sum/_count samples).
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []PromSample
}

// ParseProm parses Prometheus text exposition output and validates its
// structure: every sample belongs to a declared family, histogram
// bucket counts are cumulative and consistent with _count, and label
// syntax is well-formed. It exists for the round-trip CI test — the
// exporter's output must parse by the rules a real scraper applies.
func ParseProm(r io.Reader) (map[string]*PromFamily, error) {
	families := make(map[string]*PromFamily)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				return nil, fmt.Errorf("prom: line %d: malformed comment %q", lineNo, line)
			}
			switch fields[1] {
			case "HELP":
				f := familyFor(families, fields[2])
				if len(fields) == 4 {
					f.Help = fields[3]
				}
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("prom: line %d: malformed TYPE %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("prom: line %d: unknown type %q", lineNo, fields[3])
				}
				familyFor(families, fields[2]).Type = fields[3]
			default:
				return nil, fmt.Errorf("prom: line %d: unknown comment %q", lineNo, fields[1])
			}
			continue
		}
		sample, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: %w", lineNo, err)
		}
		fam, ok := families[familyName(sample.Name, families)]
		if !ok {
			return nil, fmt.Errorf("prom: line %d: sample %q has no TYPE declaration", lineNo, sample.Name)
		}
		fam.Samples = append(fam.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range families {
		if f.Type == "" {
			return nil, fmt.Errorf("prom: family %s has HELP but no TYPE", f.Name)
		}
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

func familyFor(m map[string]*PromFamily, name string) *PromFamily {
	f, ok := m[name]
	if !ok {
		f = &PromFamily{Name: name}
		m[name] = f
	}
	return f
}

// familyName resolves a sample name to its family: histogram samples
// carry _bucket/_sum/_count suffixes on the family name.
func familyName(sample string, families map[string]*PromFamily) string {
	if _, ok := families[sample]; ok {
		return sample
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suffix)
		if base != sample {
			if f, ok := families[base]; ok && f.Type == "histogram" {
				return base
			}
		}
	}
	return sample
}

// parsePromSample parses `name{l="v",…} value` or `name value`.
func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.Name = line[:i]
		end := strings.LastIndexByte(line, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		body := line[i+1 : end]
		for _, pair := range splitLabels(body) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return s, fmt.Errorf("malformed label %q in %q", pair, line)
			}
			s.Labels[k] = v[1 : len(v)-1]
		}
		rest = strings.TrimSpace(line[end+1:])
	} else {
		var ok bool
		s.Name, rest, ok = strings.Cut(line, " ")
		if !ok {
			return s, fmt.Errorf("no value in %q", line)
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %v", line, err)
	}
	// The exposition format permits NaN/±Inf, but every value juryd
	// exports is a finite counter, gauge, or bucket count — a non-finite
	// sample means an upstream division bug (0/0 ratios and the like),
	// so the round-trip test should catch it rather than wave it through.
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return s, fmt.Errorf("non-finite value in %q", line)
	}
	s.Value = v
	return s, nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(body string) []string {
	if body == "" {
		return nil
	}
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	return append(out, body[start:])
}

// validateHistogram checks each series of a histogram family: bucket
// counts are non-decreasing in le, and the +Inf bucket equals _count.
func validateHistogram(f *PromFamily) error {
	type series struct {
		buckets []PromSample
		count   float64
		hasCnt  bool
	}
	byKey := map[string]*series{}
	keyOf := func(s PromSample) string {
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%s;", k, s.Labels[k])
		}
		return b.String()
	}
	for _, s := range f.Samples {
		key := keyOf(s)
		sr, ok := byKey[key]
		if !ok {
			sr = &series{}
			byKey[key] = sr
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			sr.buckets = append(sr.buckets, s)
		case strings.HasSuffix(s.Name, "_count"):
			sr.count, sr.hasCnt = s.Value, true
		}
	}
	for key, sr := range byKey {
		var prev float64
		var inf float64
		var hasInf bool
		for _, b := range sr.buckets {
			if b.Value < prev {
				return fmt.Errorf("prom: %s{%s}: bucket counts not cumulative", f.Name, key)
			}
			prev = b.Value
			if b.Labels["le"] == "+Inf" {
				inf, hasInf = b.Value, true
			}
		}
		if len(sr.buckets) > 0 && !hasInf {
			return fmt.Errorf("prom: %s{%s}: missing +Inf bucket", f.Name, key)
		}
		if sr.hasCnt && hasInf && inf != sr.count {
			return fmt.Errorf("prom: %s{%s}: +Inf bucket %v != count %v", f.Name, key, inf, sr.count)
		}
	}
	return nil
}
