package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestHistogramShardedMergeUnderLoad drives concurrent recorders into
// per-shard histograms while a reader merges mid-flight snapshots, then
// checks the settled merge is exact: the insight engine and the metrics
// endpoints both rely on Merge over snapshots taken from live writers.
func TestHistogramShardedMergeUnderLoad(t *testing.T) {
	const shards, perShard = 4, 20000
	var hs [shards]Histogram
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				hs[w].Observe(int64(w+1) * int64(i))
			}
		}(w)
	}
	// Mid-flight merges must stay internally sane: bucket increments
	// trail the count increment, so bucketed mass never exceeds Count.
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for !stop.Load() {
			var m HistSnapshot
			for i := range hs {
				m.Merge(hs[i].Snapshot())
			}
			var bucketed int64
			for _, c := range m.Buckets {
				bucketed += c
			}
			if bucketed > m.Count {
				t.Errorf("mid-flight merge: %d bucketed > count %d", bucketed, m.Count)
				return
			}
		}
	}()
	wg.Wait()
	stop.Store(true)
	rg.Wait()

	var merged HistSnapshot
	for i := range hs {
		merged.Merge(hs[i].Snapshot())
	}
	if want := int64(shards * perShard); merged.Count != want {
		t.Fatalf("merged count = %d, want %d", merged.Count, want)
	}
	var bucketed, wantSum int64
	for _, c := range merged.Buckets {
		bucketed += c
	}
	if bucketed != merged.Count {
		t.Fatalf("buckets sum to %d, count %d", bucketed, merged.Count)
	}
	for w := 0; w < shards; w++ {
		wantSum += int64(w+1) * perShard * (perShard - 1) / 2
	}
	if merged.Sum != wantSum {
		t.Fatalf("merged sum = %d, want %d", merged.Sum, wantSum)
	}
	if want := int64(shards) * (perShard - 1); merged.Max != want {
		t.Fatalf("merged max = %d, want %d", merged.Max, want)
	}
	// Merging shard-by-shard in the opposite order lands on the same
	// snapshot — the commutativity the insight fingerprint depends on.
	var reversed HistSnapshot
	for i := len(hs) - 1; i >= 0; i-- {
		reversed.Merge(hs[i].Snapshot())
	}
	if reversed != merged {
		t.Fatal("merge order changed the snapshot")
	}
}

// TestPromEmptyBucketElisionRoundTrip pins the exporter's bucket layout:
// empty buckets above the top occupied one are elided, interior empty
// buckets still emit (repeating the cumulative count), +Inf always
// appears — and the result survives the scraper-grade parser.
func TestPromEmptyBucketElisionRoundTrip(t *testing.T) {
	var h Histogram
	h.Observe(1)       // bucket 1
	h.Observe(1 << 20) // bucket 21, everything between stays empty
	var buf bytes.Buffer
	p := NewProm(&buf)
	p.Header("juryd_gap_seconds", "histogram", "Gappy latencies.")
	p.HistogramNS("juryd_gap_seconds", "", h.Snapshot())

	out := buf.String()
	fams, err := ParseProm(strings.NewReader(out))
	if err != nil {
		t.Fatalf("elided output does not parse: %v\n%s", err, out)
	}
	var buckets, infVal, count float64
	for _, s := range fams["juryd_gap_seconds"].Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			buckets++
			if s.Labels["le"] == "+Inf" {
				infVal = s.Value
			}
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
		}
	}
	// Buckets 0..21 emit (interior empties included), bucket 22..63 are
	// elided, plus the mandatory +Inf line.
	if buckets != 23 {
		t.Errorf("bucket lines = %g, want 23:\n%s", buckets, out)
	}
	if infVal != 2 || count != 2 {
		t.Errorf("+Inf %g / count %g, want 2/2", infVal, count)
	}

	// An empty histogram degenerates to the single +Inf bucket... which
	// still must satisfy the cumulative checks.
	var empty Histogram
	buf.Reset()
	p = NewProm(&buf)
	p.Header("juryd_empty_seconds", "histogram", "No samples yet.")
	p.HistogramNS("juryd_empty_seconds", "", empty.Snapshot())
	if _, err := ParseProm(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("empty histogram does not parse: %v\n%s", err, buf.String())
	}
}

// TestParsePromRejectsNonFinite: juryd never exports NaN or ±Inf — every
// value is a counter, gauge, or bucket count — so the parser treats a
// non-finite sample as a broken exposition (a 0/0 ratio upstream).
func TestParsePromRejectsNonFinite(t *testing.T) {
	for _, v := range []string{"NaN", "nan", "+Inf", "-Inf", "Inf"} {
		in := fmt.Sprintf("# HELP juryd_x x\n# TYPE juryd_x gauge\njuryd_x %s\n", v)
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("value %s parsed, want non-finite rejection", v)
		}
		labeled := fmt.Sprintf("# HELP juryd_x x\n# TYPE juryd_x gauge\njuryd_x{shard=\"0\"} %s\n", v)
		if _, err := ParseProm(strings.NewReader(labeled)); err == nil {
			t.Errorf("labeled value %s parsed, want non-finite rejection", v)
		}
	}
	// +Inf stays legal where it belongs: as a le label value.
	ok := "# HELP juryd_h h\n# TYPE juryd_h histogram\n" +
		"juryd_h_bucket{le=\"+Inf\"} 1\njuryd_h_sum 1\njuryd_h_count 1\n"
	if _, err := ParseProm(strings.NewReader(ok)); err != nil {
		t.Errorf("le=+Inf label rejected: %v", err)
	}
}
