package obs

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Stage identifies one internal phase of a request. Stages are recorded
// as contiguous segments: each mark attributes the time since the
// previous mark to its stage, so a request's spans partition its
// handler time (modulo unmarked gaps).
type Stage uint8

const (
	// StageQueueWait is time spent in admission control waiting for an
	// inflight slot.
	StageQueueWait Stage = iota
	// StageDecode is request-body read + JSON decode.
	StageDecode
	// StageSnapshot is request validation and pool-snapshot resolution.
	StageSnapshot
	// StageCacheProbe is the select response cache lookup.
	StageCacheProbe
	// StageEngine is the JER engine evaluation (selection or JER).
	StageEngine
	// StageStore is the task store mutation: journal append + in-memory
	// apply + durability wait (StageWALWait, when present, is the
	// durability-wait share of it).
	StageStore
	// StageWALWait is the WAL append→durable wait inside a store
	// mutation, recorded by the task store when the request is traced.
	StageWALWait
	// StageEncode is response encoding and the write to the socket.
	StageEncode

	numStages
)

// NumStages is the number of defined stages, for sizing per-stage
// histogram arrays.
const NumStages = int(numStages)

var stageNames = [NumStages]string{
	"queue_wait", "decode", "snapshot", "cache_probe",
	"engine", "store", "wal_wait", "encode",
}

// String returns the stage's snake_case name (also its label value in
// the Prometheus exposition).
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// MarshalText renders the stage name into JSON trace dumps.
func (s Stage) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a stage name back, so trace dumps round-trip
// through clients that re-decode them.
func (s *Stage) UnmarshalText(b []byte) error {
	for i, name := range stageNames {
		if name == string(b) {
			*s = Stage(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown stage %q", b)
}

// Span is one stage segment of a trace.
type Span struct {
	Stage Stage `json:"stage"`
	DurNS int64 `json:"dur_ns"`
}

// MaxSpans caps a trace's span count. A request that marks more (a huge
// batch) sets Truncated instead of growing the slice: trace recording
// must never allocate on the request path.
const MaxSpans = 64

// Trace is one request's span record. A Trace is owned by a single
// request goroutine while live (Add is not synchronized); captured
// copies in a TraceRing are immutable.
type Trace struct {
	ID       int64  `json:"id"`
	Endpoint string `json:"endpoint"`
	// TaskID is the decision task a lifecycle request touched (create,
	// get, vote), so a slow verdict can be filtered out of the ring and
	// followed end to end; empty for non-task requests.
	TaskID    string    `json:"task_id,omitempty"`
	Status    int       `json:"status"`
	Start     time.Time `json:"start"`
	DurNS     int64     `json:"dur_ns"`
	Spans     []Span    `json:"spans"`
	Truncated bool      `json:"truncated,omitempty"`
}

// NewTrace returns a trace with its span storage preallocated, for
// pooling.
func NewTrace() *Trace { return &Trace{Spans: make([]Span, 0, MaxSpans)} }

// Add appends one span, dropping (and flagging) past MaxSpans.
func (t *Trace) Add(st Stage, durNS int64) {
	if len(t.Spans) == cap(t.Spans) {
		t.Truncated = true
		return
	}
	t.Spans = append(t.Spans, Span{Stage: st, DurNS: durNS})
}

// Reset clears the trace for reuse, keeping the span storage.
func (t *Trace) Reset() {
	t.ID, t.Endpoint, t.Status, t.DurNS = 0, "", 0, 0
	t.TaskID = ""
	t.Start = time.Time{}
	t.Spans = t.Spans[:0]
	t.Truncated = false
}

// StageNS sums the durations of the given stage across the trace's
// spans (a batch request marks a stage once per item).
func (t *Trace) StageNS(st Stage) int64 {
	var total int64
	for _, sp := range t.Spans {
		if sp.Stage == st {
			total += sp.DurNS
		}
	}
	return total
}

// traceKey threads a *Trace through a context. Only sampled (or
// slow-captured) requests pay the context allocation; the untraced path
// never calls ContextWithTrace.
type traceKey struct{}

// ContextWithTrace returns a context carrying the trace, for layers
// (the task store's durability wait) that record spans without seeing
// the request writer.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFromContext returns the context's trace, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// DefaultTraceRing is the trace ring's default capacity.
const DefaultTraceRing = 256

// TraceRing is a fixed-size ring of recently captured traces. Capture
// copies the trace into a preallocated entry under a short mutex — no
// allocation, no contention with uncaptured requests (which never touch
// the ring). Readers get fresh copies, newest first.
type TraceRing struct {
	mu      sync.Mutex
	entries []Trace
	next    int   // entries[next] is overwritten by the next capture
	wrapped bool  // every entry holds a real trace
	total   int64 // captures since creation
}

// NewTraceRing returns a ring holding up to n traces (n ≤ 0 selects
// DefaultTraceRing). Every entry's span storage is preallocated.
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = DefaultTraceRing
	}
	r := &TraceRing{entries: make([]Trace, n)}
	for i := range r.entries {
		r.entries[i].Spans = make([]Span, 0, MaxSpans)
	}
	return r
}

// Capture copies the trace into the ring.
func (r *TraceRing) Capture(t *Trace) {
	r.mu.Lock()
	e := &r.entries[r.next]
	spans := e.Spans[:0]
	*e = *t
	e.Spans = append(spans, t.Spans...)
	r.next++
	if r.next == len(r.entries) {
		r.next, r.wrapped = 0, true
	}
	r.total++
	r.mu.Unlock()
}

// Total returns the number of traces captured since creation (captures,
// not residents — the ring holds at most its capacity).
func (r *TraceRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns up to limit captured traces, newest first, that pass
// the filter (nil accepts all). The returned traces are deep copies —
// safe to hold across further captures.
func (r *TraceRing) Snapshot(filter func(*Trace) bool, limit int) []Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.wrapped {
		n = len(r.entries)
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]Trace, 0, limit)
	for i := 0; i < n && len(out) < limit; i++ {
		// Walk backwards from the most recent entry.
		idx := (r.next - 1 - i + len(r.entries)) % len(r.entries)
		e := &r.entries[idx]
		if filter != nil && !filter(e) {
			continue
		}
		c := *e
		c.Spans = append([]Span(nil), e.Spans...)
		out = append(out, c)
	}
	return out
}
