package obs

import (
	"sync"
	"time"
)

// WindowedCounter tracks good/bad event counts in fixed-width time
// buckets arranged as a ring, so a caller can ask "how many good and bad
// events landed in the last W?" for any W up to the ring's horizon. It
// is the primitive under the SLO engine's multi-window burn-rate
// evaluation: one counter per objective, queried at several window
// widths against an explicit clock, so tests and CI drive it with fake
// timestamps and get deterministic answers.
//
// Events are attributed to the bucket their timestamp falls in, not the
// bucket current at the call: WAL replay backfills historical windows by
// feeding journaled event times, and the live tail extends the same
// ring. An event older than the ring's horizon (its bucket has been
// recycled by a newer one) is dropped — the windows it would land in are
// no longer queryable anyway.
type WindowedCounter struct {
	mu     sync.Mutex
	width  int64 // bucket width in nanoseconds
	slots  []windowSlot
	offers int64 // events offered, drops included
	drops  int64 // events older than the ring horizon
}

// windowSlot is one ring bucket: the absolute bucket index it currently
// holds (unix-nanos / width; -1 when never written) and its counts.
type windowSlot struct {
	idx  int64
	good int64
	bad  int64
}

// NewWindowedCounter returns a counter with n buckets of the given
// width. The queryable horizon is n×width; both arguments are clamped
// to sane minimums so a zero-ish configuration still works.
func NewWindowedCounter(width time.Duration, n int) *WindowedCounter {
	if width <= 0 {
		width = time.Second
	}
	if n < 2 {
		n = 2
	}
	w := &WindowedCounter{width: width.Nanoseconds(), slots: make([]windowSlot, n)}
	for i := range w.slots {
		w.slots[i].idx = -1
	}
	return w
}

// Width returns the bucket width.
func (w *WindowedCounter) Width() time.Duration { return time.Duration(w.width) }

// Horizon returns the queryable span (bucket width × bucket count).
func (w *WindowedCounter) Horizon() time.Duration {
	return time.Duration(w.width * int64(len(w.slots)))
}

// Add records good and bad events at the given instant. Safe for
// concurrent use; never allocates.
func (w *WindowedCounter) Add(at time.Time, good, bad int64) {
	if good == 0 && bad == 0 {
		return
	}
	idx := at.UnixNano() / w.width
	w.mu.Lock()
	defer w.mu.Unlock()
	w.offers += good + bad
	slot := &w.slots[int(idx%int64(len(w.slots)))]
	if slot.idx != idx {
		if idx < slot.idx {
			// Older than the ring horizon: its bucket was recycled.
			w.drops += good + bad
			return
		}
		slot.idx = idx
		slot.good, slot.bad = 0, 0
	}
	slot.good += good
	slot.bad += bad
}

// Totals sums the good/bad counts over the window ending at now: every
// bucket whose span overlaps (now-window, now]. Buckets are whole — the
// oldest partially covered bucket counts fully, so a ratio over the
// window is accurate to one bucket width (size the width to the
// smallest window queried).
func (w *WindowedCounter) Totals(now time.Time, window time.Duration) (good, bad int64) {
	if window <= 0 {
		return 0, 0
	}
	nowIdx := now.UnixNano() / w.width
	cutoff := now.Add(-window).UnixNano()
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.slots {
		s := &w.slots[i]
		if s.idx < 0 || s.idx > nowIdx {
			continue // empty, or a bucket from the "future" of this query's clock
		}
		if (s.idx+1)*w.width <= cutoff {
			continue // bucket ends before the window starts
		}
		good += s.good
		bad += s.bad
	}
	return good, bad
}

// Dropped returns how many events were discarded for being older than
// the ring horizon — a replay that outruns the configured windows shows
// up here instead of vanishing silently.
func (w *WindowedCounter) Dropped() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.drops
}
