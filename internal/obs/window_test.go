package obs

import (
	"sync"
	"testing"
	"time"
)

var windowEpoch = time.Unix(1_700_000_000, 0).UTC()

func TestWindowedCounterBasic(t *testing.T) {
	w := NewWindowedCounter(time.Minute, 10)
	now := windowEpoch
	w.Add(now, 3, 1)
	good, bad := w.Totals(now, time.Minute)
	if good != 3 || bad != 1 {
		t.Fatalf("Totals = (%d, %d), want (3, 1)", good, bad)
	}
	// Same bucket accumulates.
	w.Add(now.Add(10*time.Second), 2, 0)
	good, bad = w.Totals(now.Add(10*time.Second), time.Minute)
	if good != 5 || bad != 1 {
		t.Fatalf("Totals = (%d, %d), want (5, 1)", good, bad)
	}
}

func TestWindowedCounterWindowing(t *testing.T) {
	w := NewWindowedCounter(time.Minute, 10)
	base := windowEpoch.Truncate(time.Minute)
	for i := 0; i < 5; i++ {
		w.Add(base.Add(time.Duration(i)*time.Minute), 1, 1)
	}
	now := base.Add(4*time.Minute + 30*time.Second)
	// A 2-minute window ending mid-bucket covers buckets 3 and 4 fully
	// plus the partially overlapped bucket 2 (whole-bucket resolution).
	good, bad := w.Totals(now, 2*time.Minute)
	if good != 3 || bad != 3 {
		t.Fatalf("2m Totals = (%d, %d), want (3, 3)", good, bad)
	}
	// The full horizon covers everything.
	good, bad = w.Totals(now, 10*time.Minute)
	if good != 5 || bad != 5 {
		t.Fatalf("10m Totals = (%d, %d), want (5, 5)", good, bad)
	}
}

func TestWindowedCounterRecyclesOldBuckets(t *testing.T) {
	w := NewWindowedCounter(time.Minute, 4)
	base := windowEpoch.Truncate(time.Minute)
	w.Add(base, 7, 0)
	// 4 buckets later the same ring slot is reused for the new bucket.
	later := base.Add(4 * time.Minute)
	w.Add(later, 1, 0)
	good, _ := w.Totals(later, 4*time.Minute)
	if good != 1 {
		t.Fatalf("Totals after recycle = %d, want 1 (old bucket gone)", good)
	}
	// An event older than the horizon is dropped, not misfiled.
	w.Add(base, 9, 9)
	good, bad := w.Totals(later, 4*time.Minute)
	if good != 1 || bad != 0 {
		t.Fatalf("Totals after stale add = (%d, %d), want (1, 0)", good, bad)
	}
	if w.Dropped() != 18 {
		t.Fatalf("Dropped = %d, want 18", w.Dropped())
	}
}

func TestWindowedCounterReplayBackfill(t *testing.T) {
	// Historical timestamps fed in order (WAL replay) populate the same
	// windows a live feed at those instants would have.
	live := NewWindowedCounter(30*time.Second, 20)
	replay := NewWindowedCounter(30*time.Second, 20)
	base := windowEpoch
	stamps := []time.Duration{0, 10 * time.Second, 65 * time.Second, 200 * time.Second}
	for _, d := range stamps {
		live.Add(base.Add(d), 1, 0)
	}
	for _, d := range stamps {
		replay.Add(base.Add(d), 1, 0)
	}
	now := base.Add(4 * time.Minute)
	for _, win := range []time.Duration{time.Minute, 5 * time.Minute} {
		lg, lb := live.Totals(now, win)
		rg, rb := replay.Totals(now, win)
		if lg != rg || lb != rb {
			t.Fatalf("window %v: live (%d,%d) != replay (%d,%d)", win, lg, lb, rg, rb)
		}
	}
}

func TestWindowedCounterFutureBucketsExcluded(t *testing.T) {
	// A query with an earlier clock than some recorded events must not
	// count them (the SLO engine evaluates with an injectable clock that
	// can lag a replayed event stream).
	w := NewWindowedCounter(time.Minute, 10)
	base := windowEpoch.Truncate(time.Minute)
	w.Add(base, 1, 0)
	w.Add(base.Add(3*time.Minute), 1, 0)
	good, _ := w.Totals(base.Add(time.Minute), 5*time.Minute)
	if good != 1 {
		t.Fatalf("Totals with lagging clock = %d, want 1", good)
	}
}

func TestWindowedCounterConcurrent(t *testing.T) {
	w := NewWindowedCounter(time.Millisecond, 64)
	base := windowEpoch
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				w.Add(base.Add(time.Duration(i%10)*time.Millisecond), 1, 0)
			}
		}(g)
	}
	wg.Wait()
	good, bad := w.Totals(base.Add(10*time.Millisecond), 64*time.Millisecond)
	if good != 8000 || bad != 0 {
		t.Fatalf("Totals = (%d, %d), want (8000, 0)", good, bad)
	}
}
