package pbdist_test

import (
	"fmt"

	"juryselect/internal/pbdist"
)

// The number of wrong voters among three jurors with heterogeneous error
// rates follows the Poisson–Binomial law; its upper tail at the majority
// threshold is the Jury Error Rate.
func ExampleDist_TailAtLeast() {
	d := pbdist.MustNew([]float64{0.2, 0.3, 0.3})
	fmt.Printf("P(C>=2) = %.3f\n", d.TailAtLeast(2))
	// Output: P(C>=2) = 0.174
}

// Append and Pop maintain the exact distribution incrementally — the
// mechanism behind the exact OPT enumerator's depth-first search.
func ExampleDist_Pop() {
	var d pbdist.Dist
	_ = d.Append(0.2)
	_ = d.Append(0.5)
	before := d.TailAtLeast(1)
	_ = d.Append(0.9)
	_ = d.Pop() // back to {0.2, 0.5}
	fmt.Printf("restored=%v\n", d.TailAtLeast(1) == before)
	// Output: restored=true
}
