// Package pbdist implements the Poisson–Binomial distribution: the law of
// the number of successes among independent Bernoulli trials with
// heterogeneous probabilities.
//
// In the paper's terminology the trials are jurors, a "success" is a wrong
// vote, and the trial probabilities are the individual error rates ε_i
// (Definition 4). The Carelessness C of Definition 5 — the number of wrong
// jurors in a voting — is exactly Poisson–Binomial distributed, and the Jury
// Error Rate of Definition 6 is the upper tail Pr(C ≥ (n+1)/2).
//
// The package provides an exact PMF maintained by sequential convolution,
// incremental extension (Append) and retraction (Pop) used by the exact
// OPT enumerator, tail sums, moments, and a brute-force enumeration
// evaluator used as ground truth in tests.
package pbdist

import (
	"errors"
	"fmt"
	"math"
)

// ErrRateOutOfRange reports an individual error rate outside (0,1).
var ErrRateOutOfRange = errors.New("pbdist: error rate outside (0,1)")

// ValidateRates checks that every rate lies in the open interval (0,1) as
// Definition 4 requires, and that none is NaN.
func ValidateRates(rates []float64) error {
	for i, e := range rates {
		if math.IsNaN(e) || e <= 0 || e >= 1 {
			return fmt.Errorf("%w: rates[%d] = %g", ErrRateOutOfRange, i, e)
		}
	}
	return nil
}

// Dist is the exact distribution of the number of successes among the trials
// appended so far. The zero value is the distribution of zero trials (point
// mass at 0 successes); it is ready to use.
type Dist struct {
	// pmf[k] = Pr(C = k) over the current trials. Invariant: len(pmf) =
	// number of trials + 1 once initialized; nil means "no trials yet".
	pmf []float64
	// rates records the probabilities of the appended trials, enabling Pop.
	rates []float64
}

// New returns the distribution of len(rates) trials with the given success
// probabilities. It returns an error if any rate is outside (0,1).
func New(rates []float64) (*Dist, error) {
	if err := ValidateRates(rates); err != nil {
		return nil, err
	}
	d := &Dist{}
	for _, e := range rates {
		d.appendUnchecked(e)
	}
	return d, nil
}

// MustNew is New that panics on invalid rates; for tests and literals.
func MustNew(rates []float64) *Dist {
	d, err := New(rates)
	if err != nil {
		panic(err)
	}
	return d
}

// N returns the number of trials currently in the distribution.
func (d *Dist) N() int { return len(d.rates) }

// Append adds one trial with success probability p.
func (d *Dist) Append(p float64) error {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return fmt.Errorf("%w: %g", ErrRateOutOfRange, p)
	}
	d.appendUnchecked(p)
	return nil
}

func (d *Dist) appendUnchecked(p float64) {
	n := len(d.rates)
	if d.pmf == nil {
		d.pmf = make([]float64, 1, 16)
		d.pmf[0] = 1
	}
	// In-place convolution with [1-p, p], walking downward so each source
	// entry is consumed before being overwritten.
	d.pmf = append(d.pmf, 0)
	q := 1 - p
	for k := n + 1; k >= 1; k-- {
		d.pmf[k] = d.pmf[k]*q + d.pmf[k-1]*p
	}
	d.pmf[0] *= q
	d.rates = append(d.rates, p)
}

// Pop removes the most recently appended trial, restoring the distribution
// to its previous state by deconvolution. It returns an error when no trials
// remain.
//
// Deconvolution divides by either p or 1-p; to stay numerically stable the
// recursion runs forward (dividing by 1-p) when p < 1/2 and backward
// (dividing by p) otherwise, so the divisor is always ≥ 1/2.
func (d *Dist) Pop() error {
	n := len(d.rates)
	if n == 0 {
		return errors.New("pbdist: Pop on empty distribution")
	}
	p := d.rates[n-1]
	q := 1 - p
	pmf := d.pmf
	if p < 0.5 {
		// Forward: prev[0] = pmf[0]/q; prev[k] = (pmf[k] - prev[k-1]·p)/q.
		prev := 0.0
		for k := 0; k < n; k++ {
			prev = (pmf[k] - prev*p) / q
			pmf[k] = prev
		}
	} else {
		// Backward: prev[n-1] = pmf[n]/p; prev[k-1] = (pmf[k] - prev[k]·q)/p.
		// The original pmf[k-1] must be saved before the slot is overwritten
		// with the recovered value, hence the cur/next shuffle.
		prev := 0.0
		next := pmf[n]
		for k := n; k >= 1; k-- {
			cur := next
			next = pmf[k-1]
			prev = (cur - prev*q) / p
			pmf[k-1] = prev
		}
	}
	// Clamp round-off noise.
	for k := 0; k < n; k++ {
		if pmf[k] < 0 {
			pmf[k] = 0
		}
	}
	d.pmf = pmf[:n]
	d.rates = d.rates[:n-1]
	return nil
}

// PMF returns a copy of the probability mass function: entry k is
// Pr(C = k). For zero trials the result is [1].
func (d *Dist) PMF() []float64 {
	if d.pmf == nil {
		return []float64{1}
	}
	out := make([]float64, len(d.pmf))
	copy(out, d.pmf)
	return out
}

// Prob returns Pr(C = k), with 0 for k outside [0, N].
func (d *Dist) Prob(k int) float64 {
	if d.pmf == nil {
		if k == 0 {
			return 1
		}
		return 0
	}
	if k < 0 || k >= len(d.pmf) {
		return 0
	}
	return d.pmf[k]
}

// TailAtLeast returns Pr(C ≥ k). For k ≤ 0 it returns 1; for k > N it
// returns 0. With k = (n+1)/2 this is exactly the Jury Error Rate of
// Definition 6.
func (d *Dist) TailAtLeast(k int) float64 {
	if k <= 0 {
		return 1
	}
	if d.pmf == nil || k >= len(d.pmf) {
		return 0
	}
	// Sum the smaller side for accuracy, exploiting total mass 1. The sum
	// is Kahan-compensated: plain accumulation over thousands of PMF
	// entries drifts by O(n) ulps, which matters when solvers compare
	// near-tied tails (see TestTailAtLeastCompensation).
	var tail float64
	if len(d.pmf)-k <= k {
		tail = KahanSum(d.pmf[k:])
	} else {
		tail = 1 - KahanSum(d.pmf[:k])
	}
	if tail < 0 {
		return 0
	}
	if tail > 1 {
		return 1
	}
	return tail
}

// KahanSum returns the compensated (Kahan) sum of xs: the running error of
// each addition is recovered and fed back, keeping the total rounding
// error O(1) ulps instead of growing with len(xs). It is the summation
// primitive behind every tail sum in this module (here and in jer).
func KahanSum(xs []float64) float64 {
	sum, comp := 0.0, 0.0
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns E[C] = Σ ε_i.
func (d *Dist) Mean() float64 {
	sum := 0.0
	for _, p := range d.rates {
		sum += p
	}
	return sum
}

// Variance returns Var[C] = Σ ε_i(1-ε_i).
func (d *Dist) Variance() float64 {
	sum := 0.0
	for _, p := range d.rates {
		sum += p * (1 - p)
	}
	return sum
}

// Rates returns a copy of the trial probabilities in append order.
func (d *Dist) Rates() []float64 {
	out := make([]float64, len(d.rates))
	copy(out, d.rates)
	return out
}

// Clone returns an independent deep copy of the distribution.
func (d *Dist) Clone() *Dist {
	c := &Dist{}
	if d.pmf != nil {
		c.pmf = make([]float64, len(d.pmf))
		copy(c.pmf, d.pmf)
	}
	c.rates = make([]float64, len(d.rates))
	copy(c.rates, d.rates)
	return c
}

// TailEnum computes Pr(C ≥ k) for the given rates by enumerating all 2^n
// outcomes. It is exponential and exists purely as ground truth for tests
// and for the paper's "naive method" baseline (Section 2.1.2); n is capped
// at 25 to bound runtime.
func TailEnum(rates []float64, k int) (float64, error) {
	if err := ValidateRates(rates); err != nil {
		return 0, err
	}
	n := len(rates)
	if n > 25 {
		return 0, fmt.Errorf("pbdist: TailEnum supports at most 25 trials, got %d", n)
	}
	if k <= 0 {
		return 1, nil
	}
	if k > n {
		return 0, nil
	}
	total := 0.0
	for mask := 0; mask < 1<<uint(n); mask++ {
		// Count the set bits first; skip probability work for small sets.
		c := popcount(mask)
		if c < k {
			continue
		}
		p := 1.0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				p *= rates[i]
			} else {
				p *= 1 - rates[i]
			}
		}
		total += p
	}
	return total, nil
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// NormalTailApprox returns the normal approximation with continuity
// correction to Pr(C ≥ k): 1 - Φ((k - 1/2 - μ)/σ). It is an extension used
// for sanity checks and fast screening on very large juries; the paper's
// algorithms never rely on it.
func NormalTailApprox(rates []float64, k int) float64 {
	mu, varSum := 0.0, 0.0
	for _, p := range rates {
		mu += p
		varSum += p * (1 - p)
	}
	if varSum == 0 {
		if float64(k) <= mu {
			return 1
		}
		return 0
	}
	z := (float64(k) - 0.5 - mu) / math.Sqrt(varSum)
	return 0.5 * math.Erfc(z/math.Sqrt2)
}
