package pbdist

import (
	"errors"
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestZeroValueIsPointMass(t *testing.T) {
	var d Dist
	if d.N() != 0 {
		t.Fatalf("N = %d, want 0", d.N())
	}
	if got := d.Prob(0); got != 1 {
		t.Fatalf("Prob(0) = %g, want 1", got)
	}
	if got := d.Prob(1); got != 0 {
		t.Fatalf("Prob(1) = %g, want 0", got)
	}
	if got := d.TailAtLeast(0); got != 1 {
		t.Fatalf("TailAtLeast(0) = %g, want 1", got)
	}
	if got := d.TailAtLeast(1); got != 0 {
		t.Fatalf("TailAtLeast(1) = %g, want 0", got)
	}
	pmf := d.PMF()
	if len(pmf) != 1 || pmf[0] != 1 {
		t.Fatalf("PMF = %v, want [1]", pmf)
	}
}

func TestSingleTrial(t *testing.T) {
	d := MustNew([]float64{0.3})
	if !almostEqual(d.Prob(0), 0.7, 1e-12) || !almostEqual(d.Prob(1), 0.3, 1e-12) {
		t.Fatalf("PMF = %v, want [0.7 0.3]", d.PMF())
	}
}

func TestMotivationExampleCDE(t *testing.T) {
	// Paper Section 1: jurors C, D, E with ε = 0.2, 0.3, 0.3 give
	// Pr(C ≥ 2) = 0.174.
	d := MustNew([]float64{0.2, 0.3, 0.3})
	if got := d.TailAtLeast(2); !almostEqual(got, 0.174, 1e-12) {
		t.Fatalf("JER(C,D,E) = %.6f, want 0.174", got)
	}
}

func TestMotivationExampleABC(t *testing.T) {
	// Jurors A, B, C with ε = 0.1, 0.2, 0.2 give Pr(C ≥ 2) = 0.072.
	d := MustNew([]float64{0.1, 0.2, 0.2})
	if got := d.TailAtLeast(2); !almostEqual(got, 0.072, 1e-12) {
		t.Fatalf("JER(A,B,C) = %.6f, want 0.072", got)
	}
}

func TestPMFSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 7, 50, 301} {
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = 0.001 + 0.998*rng.Float64()
		}
		d := MustNew(rates)
		sum := 0.0
		for _, v := range d.PMF() {
			if v < 0 {
				t.Fatalf("n=%d: negative mass %g", n, v)
			}
			sum += v
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Fatalf("n=%d: total mass %g", n, sum)
		}
	}
}

func TestAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 2, 3, 5, 9, 12} {
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = 0.05 + 0.9*rng.Float64()
		}
		d := MustNew(rates)
		for k := 0; k <= n+1; k++ {
			want, err := TailEnum(rates, k)
			if err != nil {
				t.Fatal(err)
			}
			if got := d.TailAtLeast(k); !almostEqual(got, want, 1e-10) {
				t.Fatalf("n=%d k=%d: Dist %.12f enum %.12f", n, k, got, want)
			}
		}
	}
}

func TestMoments(t *testing.T) {
	rates := []float64{0.1, 0.2, 0.25, 0.4}
	d := MustNew(rates)
	wantMean := 0.1 + 0.2 + 0.25 + 0.4
	wantVar := 0.1*0.9 + 0.2*0.8 + 0.25*0.75 + 0.4*0.6
	if !almostEqual(d.Mean(), wantMean, 1e-12) {
		t.Errorf("Mean = %g, want %g", d.Mean(), wantMean)
	}
	if !almostEqual(d.Variance(), wantVar, 1e-12) {
		t.Errorf("Variance = %g, want %g", d.Variance(), wantVar)
	}
	// Cross-check against the PMF directly.
	pmf := d.PMF()
	m, m2 := 0.0, 0.0
	for k, p := range pmf {
		m += float64(k) * p
		m2 += float64(k) * float64(k) * p
	}
	if !almostEqual(m, wantMean, 1e-10) {
		t.Errorf("PMF mean = %g, want %g", m, wantMean)
	}
	if !almostEqual(m2-m*m, wantVar, 1e-10) {
		t.Errorf("PMF var = %g, want %g", m2-m*m, wantVar)
	}
}

func TestAppendPopRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	d := MustNew([]float64{0.2, 0.7, 0.5})
	before := d.PMF()
	// Push/pop a variety of rates, including ones near both ends where
	// deconvolution stability matters.
	for _, p := range []float64{0.01, 0.5, 0.99, 0.3, 0.849, rng.Float64()*0.98 + 0.01} {
		if err := d.Append(p); err != nil {
			t.Fatal(err)
		}
		if err := d.Pop(); err != nil {
			t.Fatal(err)
		}
		after := d.PMF()
		for k := range before {
			if !almostEqual(after[k], before[k], 1e-10) {
				t.Fatalf("p=%g k=%d: %g != %g", p, k, after[k], before[k])
			}
		}
	}
}

func TestDeepAppendPopStack(t *testing.T) {
	// Simulate the DFS usage pattern of the OPT enumerator: many nested
	// push/pop pairs must keep the distribution exact.
	rng := rand.New(rand.NewSource(41))
	base := []float64{0.3, 0.6}
	d := MustNew(base)
	var stack []float64
	for step := 0; step < 2000; step++ {
		if len(stack) == 0 || (len(stack) < 20 && rng.Intn(2) == 0) {
			p := 0.02 + 0.96*rng.Float64()
			stack = append(stack, p)
			if err := d.Append(p); err != nil {
				t.Fatal(err)
			}
		} else {
			stack = stack[:len(stack)-1]
			if err := d.Pop(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for range stack {
		if err := d.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	want := MustNew(base).PMF()
	got := d.PMF()
	for k := range want {
		if !almostEqual(got[k], want[k], 1e-8) {
			t.Fatalf("k=%d: %g != %g after long push/pop walk", k, got[k], want[k])
		}
	}
}

func TestPopEmptyErrors(t *testing.T) {
	var d Dist
	if err := d.Pop(); err == nil {
		t.Fatal("expected error popping empty distribution")
	}
}

func TestValidation(t *testing.T) {
	for _, bad := range [][]float64{{0}, {1}, {-0.1}, {1.1}, {math.NaN()}, {0.5, 2}} {
		if _, err := New(bad); !errors.Is(err, ErrRateOutOfRange) {
			t.Errorf("New(%v): err = %v, want ErrRateOutOfRange", bad, err)
		}
	}
	var d Dist
	if err := d.Append(0); !errors.Is(err, ErrRateOutOfRange) {
		t.Errorf("Append(0): err = %v, want ErrRateOutOfRange", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := MustNew([]float64{0.2, 0.4})
	c := d.Clone()
	if err := c.Append(0.9); err != nil {
		t.Fatal(err)
	}
	if d.N() != 2 || c.N() != 3 {
		t.Fatalf("clone not independent: d.N=%d c.N=%d", d.N(), c.N())
	}
	if !almostEqual(d.TailAtLeast(2), MustNew([]float64{0.2, 0.4}).TailAtLeast(2), 1e-12) {
		t.Fatal("original mutated by clone append")
	}
}

func TestRatesCopy(t *testing.T) {
	d := MustNew([]float64{0.2, 0.4})
	r := d.Rates()
	r[0] = 0.99
	if d.Rates()[0] != 0.2 {
		t.Fatal("Rates leaked internal slice")
	}
}

func TestTailEnumBounds(t *testing.T) {
	if _, err := TailEnum(make([]float64, 26), 1); err == nil {
		t.Fatal("expected error for n > 25")
	}
	got, err := TailEnum([]float64{0.5}, 0)
	if err != nil || got != 1 {
		t.Fatalf("TailEnum(k=0) = %g, %v; want 1, nil", got, err)
	}
	got, err = TailEnum([]float64{0.5}, 2)
	if err != nil || got != 0 {
		t.Fatalf("TailEnum(k=2) = %g, %v; want 0, nil", got, err)
	}
}

func TestTailMonotoneInK(t *testing.T) {
	d := MustNew([]float64{0.1, 0.5, 0.9, 0.33, 0.72})
	prev := 1.0
	for k := 0; k <= 6; k++ {
		cur := d.TailAtLeast(k)
		if cur > prev+1e-12 {
			t.Fatalf("tail increased at k=%d: %g > %g", k, cur, prev)
		}
		prev = cur
	}
}

// Property: identically-distributed trials reduce to the Binomial law.
func TestBinomialSpecialCase(t *testing.T) {
	const n, p = 12, 0.3
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = p
	}
	d := MustNew(rates)
	for k := 0; k <= n; k++ {
		want := binomPMF(n, k, p)
		if got := d.Prob(k); !almostEqual(got, want, 1e-10) {
			t.Fatalf("k=%d: got %g want %g", k, got, want)
		}
	}
}

func binomPMF(n, k int, p float64) float64 {
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
}

// Property: appending a trial never decreases the tail at a fixed k
// (an extra potentially-wrong juror can only add wrong votes).
func TestAppendTailMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = 0.02 + 0.96*rng.Float64()
		}
		d := MustNew(rates)
		k := 1 + rng.Intn(n)
		before := d.TailAtLeast(k)
		if err := d.Append(0.02 + 0.96*rng.Float64()); err != nil {
			return false
		}
		after := d.TailAtLeast(k)
		return after >= before-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dist tail equals enumeration tail on random small instances.
func TestQuickTailMatchesEnum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = 0.02 + 0.96*rng.Float64()
		}
		k := rng.Intn(n + 2)
		d := MustNew(rates)
		want, err := TailEnum(rates, k)
		if err != nil {
			return false
		}
		return almostEqual(d.TailAtLeast(k), want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalTailApproxReasonable(t *testing.T) {
	// For a large homogeneous jury the normal approximation should be close.
	const n, p = 1001, 0.3
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = p
	}
	d := MustNew(rates)
	k := (n + 1) / 2
	exact := d.TailAtLeast(k)
	approx := NormalTailApprox(rates, k)
	if math.Abs(exact-approx) > 1e-3 {
		t.Errorf("normal approx %g vs exact %g", approx, exact)
	}
}

func TestNormalTailApproxDegenerate(t *testing.T) {
	if got := NormalTailApprox(nil, 0); got != 1 {
		t.Errorf("empty rates k=0: got %g want 1", got)
	}
	if got := NormalTailApprox(nil, 1); got != 0 {
		t.Errorf("empty rates k=1: got %g want 0", got)
	}
}

func BenchmarkAppend1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	rates := make([]float64, 1000)
	for i := range rates {
		rates[i] = 0.01 + 0.98*rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var d Dist
		for _, p := range rates {
			_ = d.Append(p)
		}
	}
}

// TestTailAtLeastCompensation asserts the compensated tail sum tracks an
// exact big.Float reference within 1 ulp on an adversarial large-n rate
// set where the uncompensated accumulation it replaced drifts by many
// ulps. The PMF of 8191 heterogeneous jurors spreads mass over thousands
// of entries across ~30 orders of magnitude — exactly the shape that
// accumulates O(n)-ulp error in a plain left-to-right sum.
func TestTailAtLeastCompensation(t *testing.T) {
	n := 8191
	rates := make([]float64, n)
	rng := rand.New(rand.NewSource(71))
	for i := range rates {
		rates[i] = 0.05 + 0.9*rng.Float64()
	}
	d, err := New(rates)
	if err != nil {
		t.Fatal(err)
	}
	k := (n + 2) / 2 // the JER threshold, deep in the distribution's bulk
	got := d.TailAtLeast(k)

	exact := new(big.Float).SetPrec(200)
	for _, v := range d.pmf[k:] {
		exact.Add(exact, new(big.Float).SetFloat64(v))
	}
	want, _ := exact.Float64()
	ulp := math.Nextafter(want, math.Inf(1)) - want
	if math.Abs(got-want) > ulp {
		t.Fatalf("compensated tail %v off exact %v by %g (> 1 ulp)", got, want, math.Abs(got-want))
	}
	naive := 0.0
	for _, v := range d.pmf[k:] {
		naive += v
	}
	if drift := math.Abs(naive - want); drift <= ulp {
		t.Logf("note: naive drift %g within 1 ulp on this rate set", drift)
	} else {
		t.Logf("removed naive drift of %.0f ulps", math.Abs(naive-want)/ulp)
	}
	if math.Abs(naive-want) < math.Abs(got-want) {
		t.Fatalf("naive sum closer than compensated: %g vs %g", math.Abs(naive-want), math.Abs(got-want))
	}
}
