// Package pool implements the versioned live juror-pool store behind
// juryd: a directory of named pools with copy-on-write snapshots
// published through one atomic pointer. Reads (the selection hot path)
// are lock-free; writes serialize on a mutex, rebuild the affected pool,
// and publish a new immutable snapshot.
//
// The package sits below both internal/server (which serves pool CRUD
// over HTTP) and internal/tasks (which journals every pool mutation to
// its write-ahead log): extracting it from the server package is what
// lets the durable task store wrap pool writes without an import cycle.
// For recovery, writes accept explicit timestamps (PutAt, PatchAt) so a
// WAL replay republishes byte-identical snapshots, and Export/Restore
// round-trip the full store state for snapshot compaction.
package pool

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"juryselect/internal/core"
	"juryselect/internal/estimate"
	"juryselect/jury"
)

// Store errors surfaced on the pool CRUD endpoints.
var (
	// ErrPoolNotFound reports a request against a pool name the store
	// does not hold.
	ErrPoolNotFound = errors.New("pool: not found")
	// ErrUnknownJuror reports a patch update addressing a juror ID not in
	// the pool and carrying no error rate to insert it with.
	ErrUnknownJuror = errors.New("pool: unknown juror")
	// ErrNoUpdates reports an empty patch.
	ErrNoUpdates = errors.New("pool: patch carries no updates")
	// ErrDuplicateJuror reports a Put whose juror set repeats an ID.
	// Unlike the solvers (where duplicate IDs merely make reports
	// ambiguous), the pool store addresses jurors by ID on the PATCH
	// path, so uniqueness is required at ingest.
	ErrDuplicateJuror = errors.New("pool: duplicate juror id")
)

// PoolJuror is one candidate in a live pool: the model juror plus the
// cumulative voting record the PATCH path folds into its error rate.
type PoolJuror struct {
	jury.Juror
	// WrongVotes and TotalVotes accumulate the observed outcomes applied
	// via JurorUpdate.Votes. A direct ErrorRate set resets them: the new
	// rate is a fresh prior.
	WrongVotes int64
	TotalVotes int64
}

// Pool is one immutable snapshot of a named juror pool. Snapshots are
// never mutated after publication: an update builds a new Pool and swaps
// the store's directory pointer, so a reader holding a *Pool sees one
// consistent version for as long as it keeps the pointer, with no lock
// held.
type Pool struct {
	// Name is the pool's identifier in the store.
	Name string
	// Version increments on every successful Put or Patch, starting at 1.
	// It never resets for a given name — not even across Delete and
	// re-Put — so clients can order every snapshot they ever observed
	// under that name.
	Version uint64
	// UpdatedAt is the time the snapshot was published.
	UpdatedAt time.Time
	// jurors holds the pool members in insertion order.
	jurors []PoolJuror
	// sorted is the ε-ascending view selection reads. It is validated at
	// ingest, so SelectAltruisticSnapshot runs without re-validation.
	sorted []jury.Juror
	// intervals caches the per-juror credible intervals GET responses
	// report. They are a pure function of the immutable member list, so
	// they are computed at most once per snapshot, on first use — the
	// write path (PUT/PATCH) never pays for them, and repeated GETs
	// reuse the slice.
	intervalsOnce sync.Once
	intervals     []RateInterval
}

// RateInterval bounds one juror's estimate uncertainty.
type RateInterval struct{ Lo, Hi float64 }

// CredibleIntervals returns the central 95% credible interval of each
// member's Beta-posterior error rate, in insertion order. Safe for
// concurrent use; the computation runs once per snapshot and costs
// ~10 µs per juror (two safeguarded-Newton quantile inversions), so the
// first full GET of a very large pool pays time comparable to encoding
// its response JSON, and subsequent GETs pay nothing.
func (p *Pool) CredibleIntervals() []RateInterval {
	p.intervalsOnce.Do(func() {
		out := make([]RateInterval, len(p.jurors))
		for i, m := range p.jurors {
			// The pair (posterior mean, prior weight + observed votes)
			// determines the Beta posterior exactly; pool rates are
			// validated in (0,1) at ingest, so this cannot fail.
			lo, hi, err := estimate.CredibleInterval(m.ErrorRate,
				estimate.DefaultPriorWeight+float64(m.TotalVotes), estimate.DefaultCredibleLevel)
			if err == nil {
				out[i] = RateInterval{Lo: lo, Hi: hi}
			}
		}
		p.intervals = out
	})
	return p.intervals
}

// Size returns the number of jurors in the snapshot.
func (p *Pool) Size() int { return len(p.jurors) }

// Jurors returns the pool members in insertion order. The slice is shared
// with the snapshot and must not be mutated.
func (p *Pool) Jurors() []PoolJuror { return p.jurors }

// Sorted returns the validated, ε-ascending candidate view. The slice is
// shared with the snapshot and must not be mutated; it feeds
// jury.Engine.SelectAltruisticSnapshot directly.
func (p *Pool) Sorted() []jury.Juror { return p.sorted }

// VoteObservation is a batch of observed voting outcomes for one juror:
// Total tasks whose truth resolved, Wrong of them voted against it.
type VoteObservation struct {
	Wrong int64 `json:"wrong"`
	Total int64 `json:"total"`
}

// JurorUpdate is one incremental change inside a Patch. Exactly one
// interpretation applies, checked in this order:
//
//   - Remove drops the juror.
//   - For an ID not in the pool, ErrorRate must be set; the juror is
//     inserted (Cost defaults to 0).
//   - ErrorRate, when set, replaces the rate and resets the voting
//     record (the new rate is a fresh prior); Cost, when set, replaces
//     the requirement.
//   - Votes folds observed outcomes into the current rate via
//     estimate.PosteriorRate, with the prior weighted by
//     estimate.DefaultPriorWeight plus the record accumulated so far —
//     so a long-observed juror's estimate is dominated by its record,
//     and applying batches one at a time equals one concatenated batch.
type JurorUpdate struct {
	ID        string           `json:"id"`
	ErrorRate *float64         `json:"error_rate,omitempty"`
	Cost      *float64         `json:"cost,omitempty"`
	Votes     *VoteObservation `json:"votes,omitempty"`
	Remove    bool             `json:"remove,omitempty"`
}

// Store is a versioned directory of named juror pools with copy-on-write
// snapshots. Reads (Get, List) are lock-free: they atomically load the
// current directory pointer and index it, so the selection hot path never
// contends with writers. Writes (Put, Patch, Delete) serialize on a
// mutex, rebuild the affected pool, copy the directory, and publish it
// with one atomic pointer swap.
type Store struct {
	mu  sync.Mutex // serializes writers
	dir atomic.Pointer[map[string]*Pool]
	// lastVersion is the per-name version high-water mark, retained
	// across Delete so a re-created pool continues the sequence instead
	// of restarting at 1 (guarded by mu).
	lastVersion map[string]uint64
}

// NewStore returns an empty Store.
func NewStore() *Store {
	s := &Store{lastVersion: make(map[string]uint64)}
	dir := make(map[string]*Pool)
	s.dir.Store(&dir)
	return s
}

// Get returns the current snapshot of the named pool. The returned Pool
// is immutable; it stays consistent however long the caller holds it.
func (s *Store) Get(name string) (*Pool, bool) {
	p, ok := (*s.dir.Load())[name]
	return p, ok
}

// List returns the current snapshot of every pool, sorted by name.
func (s *Store) List() []*Pool {
	dir := *s.dir.Load()
	out := make([]*Pool, 0, len(dir))
	for _, p := range dir {
		out = append(out, p)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Name < out[k].Name })
	return out
}

// Len returns the number of pools.
func (s *Store) Len() int { return len(*s.dir.Load()) }

// Put replaces (or creates) the named pool with the given jurors,
// validating every juror at ingest. Voting records start empty: a full
// replacement is a fresh estimate of the whole crowd. The version
// continues from the pool's previous snapshot.
func (s *Store) Put(name string, jurors []jury.Juror) (*Pool, error) {
	return s.PutAt(name, jurors, time.Now().UTC())
}

// PutAt is Put with an explicit publication time, the form WAL replay
// uses to republish snapshots byte-identical to the original writes.
func (s *Store) PutAt(name string, jurors []jury.Juror, at time.Time) (*Pool, error) {
	if err := core.ValidateCandidates(jurors); err != nil {
		return nil, err
	}
	seen := make(map[string]struct{}, len(jurors))
	members := make([]PoolJuror, len(jurors))
	for i, j := range jurors {
		if _, dup := seen[j.ID]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateJuror, j.ID)
		}
		seen[j.ID] = struct{}{}
		members[i] = PoolJuror{Juror: j}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.publish(name, s.lastVersion[name]+1, members, at), nil
}

// Patch applies incremental updates to the named pool and publishes the
// next version. The whole patch is atomic: any invalid update rejects the
// patch and leaves the current snapshot in place.
func (s *Store) Patch(name string, updates []JurorUpdate) (*Pool, error) {
	return s.PatchAt(name, updates, time.Now().UTC())
}

// PatchAt is Patch with an explicit publication time (see PutAt).
func (s *Store) PatchAt(name string, updates []JurorUpdate, at time.Time) (*Pool, error) {
	if len(updates) == 0 {
		return nil, ErrNoUpdates
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.Get(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrPoolNotFound, name)
	}
	// Copy-on-write: mutate a private copy, publish it only when every
	// update validated.
	members := append([]PoolJuror(nil), cur.jurors...)
	index := make(map[string]int, len(members))
	for i, m := range members {
		index[m.ID] = i
	}
	for _, up := range updates {
		i, exists := index[up.ID]
		switch {
		case up.Remove:
			if !exists {
				return nil, fmt.Errorf("%w: %q", ErrUnknownJuror, up.ID)
			}
			members = append(members[:i], members[i+1:]...)
			delete(index, up.ID)
			for k := i; k < len(members); k++ {
				index[members[k].ID] = k
			}
			continue
		case !exists:
			if up.ErrorRate == nil {
				return nil, fmt.Errorf("%w: %q (set error_rate to insert)", ErrUnknownJuror, up.ID)
			}
			members = append(members, PoolJuror{Juror: jury.Juror{ID: up.ID}})
			i = len(members) - 1
			index[up.ID] = i
		}
		m := &members[i]
		if up.ErrorRate != nil {
			m.ErrorRate = *up.ErrorRate
			m.WrongVotes, m.TotalVotes = 0, 0
		}
		if up.Cost != nil {
			m.Cost = *up.Cost
		}
		if v := up.Votes; v != nil {
			weight := estimate.DefaultPriorWeight + float64(m.TotalVotes)
			rate, err := estimate.PosteriorRate(m.ErrorRate, weight, v.Wrong, v.Total)
			if err != nil {
				return nil, fmt.Errorf("pool: juror %q: %w", up.ID, err)
			}
			m.ErrorRate = rate
			m.WrongVotes += v.Wrong
			m.TotalVotes += v.Total
		}
		if err := m.Juror.Validate(); err != nil {
			return nil, err
		}
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("pool: patch would empty pool %q: %w", name, core.ErrNoCandidates)
	}
	return s.publish(name, cur.Version+1, members, at), nil
}

// Delete removes the named pool. It reports whether the pool existed.
func (s *Store) Delete(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.dir.Load()
	if _, ok := old[name]; !ok {
		return false
	}
	next := make(map[string]*Pool, len(old)-1)
	for k, v := range old {
		if k != name {
			next[k] = v
		}
	}
	s.dir.Store(&next)
	return true
}

// publish builds the immutable snapshot for members and swaps it into a
// copied directory. Callers hold s.mu and have validated members.
func (s *Store) publish(name string, version uint64, members []PoolJuror, at time.Time) *Pool {
	cands := make([]jury.Juror, len(members))
	for i, m := range members {
		cands[i] = m.Juror
	}
	p := &Pool{
		Name:      name,
		Version:   version,
		UpdatedAt: at,
		jurors:    members,
		sorted:    core.SortedByErrorRate(cands),
	}
	s.lastVersion[name] = version
	old := *s.dir.Load()
	next := make(map[string]*Pool, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = p
	s.dir.Store(&next)
	return p
}

// JurorState is the snapshot-serialization form of one pool member.
type JurorState struct {
	ID         string  `json:"id"`
	ErrorRate  float64 `json:"error_rate"`
	Cost       float64 `json:"cost,omitempty"`
	WrongVotes int64   `json:"wrong_votes,omitempty"`
	TotalVotes int64   `json:"total_votes,omitempty"`
}

// PoolState is the snapshot-serialization form of one pool.
type PoolState struct {
	Name      string       `json:"name"`
	Version   uint64       `json:"version"`
	UpdatedAt time.Time    `json:"updated_at"`
	Jurors    []JurorState `json:"jurors"`
}

// State is the full serializable store state: every pool plus the
// per-name version high-water marks (which survive pool deletion and so
// are not derivable from the live pools alone).
type State struct {
	Pools []PoolState `json:"pools"`
	// LastVersions carries the version floor of every name ever written,
	// including deleted pools.
	LastVersions map[string]uint64 `json:"last_versions,omitempty"`
}

// Export captures the complete store state for snapshotting. The result
// is deterministic: pools sorted by name, members in insertion order.
func (s *Store) Export() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	pools := s.List()
	st := State{Pools: make([]PoolState, len(pools))}
	for i, p := range pools {
		ps := PoolState{Name: p.Name, Version: p.Version, UpdatedAt: p.UpdatedAt,
			Jurors: make([]JurorState, len(p.jurors))}
		for k, m := range p.jurors {
			ps.Jurors[k] = JurorState{ID: m.ID, ErrorRate: m.ErrorRate, Cost: m.Cost,
				WrongVotes: m.WrongVotes, TotalVotes: m.TotalVotes}
		}
		st.Pools[i] = ps
	}
	if len(s.lastVersion) > 0 {
		st.LastVersions = make(map[string]uint64, len(s.lastVersion))
		for k, v := range s.lastVersion {
			st.LastVersions[k] = v
		}
	}
	return st
}

// Restore replaces the store contents with an exported state. Used once,
// on recovery, before the store is shared; it validates every member the
// same way the write path does.
func (s *Store) Restore(st State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := make(map[string]*Pool, len(st.Pools))
	last := make(map[string]uint64, len(st.LastVersions))
	for k, v := range st.LastVersions {
		last[k] = v
	}
	for _, ps := range st.Pools {
		members := make([]PoolJuror, len(ps.Jurors))
		cands := make([]jury.Juror, len(ps.Jurors))
		for i, js := range ps.Jurors {
			j := jury.Juror{ID: js.ID, ErrorRate: js.ErrorRate, Cost: js.Cost}
			if err := j.Validate(); err != nil {
				return fmt.Errorf("pool: restoring %q: %w", ps.Name, err)
			}
			members[i] = PoolJuror{Juror: j, WrongVotes: js.WrongVotes, TotalVotes: js.TotalVotes}
			cands[i] = j
		}
		dir[ps.Name] = &Pool{
			Name:      ps.Name,
			Version:   ps.Version,
			UpdatedAt: ps.UpdatedAt,
			jurors:    members,
			sorted:    core.SortedByErrorRate(cands),
		}
		if last[ps.Name] < ps.Version {
			last[ps.Name] = ps.Version
		}
	}
	s.lastVersion = last
	s.dir.Store(&dir)
	return nil
}
