// Package randx provides the deterministic random-number substrate used by
// every synthetic workload in this repository.
//
// All experiment drivers accept an explicit seed so that every table and
// figure reproduced from the paper is replayable bit-for-bit. The package
// wraps math/rand with the distributions the paper's evaluation section
// needs: truncated normals on an interval (individual error rates ε ∈ (0,1),
// payment requirements r ≥ 0), Zipf/power-law variates (retweet popularity of
// micro-blog users), and a splittable seed scheme so independent subsystems
// (corpus generation, juror sampling, voting simulation) draw from
// independent streams.
package randx

import (
	"math"
	"math/rand"
)

// Source is a deterministic random stream. It is a thin wrapper around
// *rand.Rand that adds the distribution helpers required by the jury
// selection workloads.
type Source struct {
	rng *rand.Rand
}

// New returns a Source seeded with seed. Two Sources constructed with the
// same seed yield identical streams.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream from the parent. The derivation
// mixes the parent seed stream with the label so that distinct labels yield
// decorrelated children, and repeated calls with the same label on identical
// parents yield identical children.
func (s *Source) Split(label string) *Source {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	h ^= s.rng.Uint64()
	return New(int64(h))
}

// Float64 returns a uniform variate in [0,1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform integer in [0,n). It panics if n <= 0, matching
// math/rand semantics.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Perm returns a uniformly random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Normal returns a normal variate with the given mean and standard
// deviation, generated with the Box–Muller transform. It intentionally does
// not use rand.NormFloat64 so the stream layout is stable across Go releases.
func (s *Source) Normal(mean, stddev float64) float64 {
	// Box–Muller: u1 must be strictly positive for the logarithm.
	var u1 float64
	for u1 == 0 {
		u1 = s.rng.Float64()
	}
	u2 := s.rng.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// TruncNormal returns a normal(mean, stddev) variate conditioned on the open
// interval (lo, hi), drawn by rejection. The evaluation section of the paper
// generates individual error rates from normal distributions but ε must lie
// in (0,1) (Definition 4), so truncation is the faithful reading.
//
// Rejection can stall when the interval carries negligible mass (e.g. mean
// 0.9 far outside (0, 0.1)); after maxRejects draws the sample is clamped to
// the nearest representable interior point. This keeps workload generation
// total and deterministic while being measure-theoretically indistinguishable
// from true truncation for every configuration used in the experiments.
func (s *Source) TruncNormal(mean, stddev, lo, hi float64) float64 {
	if !(lo < hi) {
		panic("randx: TruncNormal requires lo < hi")
	}
	if stddev <= 0 {
		// Degenerate distribution: clamp the point mass into the interval.
		return clampOpen(mean, lo, hi)
	}
	const maxRejects = 1024
	for i := 0; i < maxRejects; i++ {
		x := s.Normal(mean, stddev)
		if x > lo && x < hi {
			return x
		}
	}
	return clampOpen(s.Normal(mean, stddev), lo, hi)
}

// clampOpen nudges x into the open interval (lo, hi).
func clampOpen(x, lo, hi float64) float64 {
	eps := (hi - lo) * 1e-9
	if x <= lo {
		return lo + eps
	}
	if x >= hi {
		return hi - eps
	}
	return x
}

// ErrorRates draws n individual error rates from TruncNormal(mean, stddev)
// restricted to (0,1). This is the synthetic-workload generator used by
// Figures 3(a)–3(f).
func (s *Source) ErrorRates(n int, mean, stddev float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.TruncNormal(mean, stddev, 0, 1)
	}
	return out
}

// Requirements draws n payment requirements from TruncNormal(mean, stddev)
// restricted to [0, ∞). Definition 8 only demands r ≥ 0, so the upper side
// is unbounded; we truncate at a generous ceiling to keep rejection total.
func (s *Source) Requirements(n int, mean, stddev float64) []float64 {
	const ceiling = 1e9
	out := make([]float64, n)
	for i := range out {
		r := s.TruncNormal(mean, stddev, 0, ceiling)
		if r < 0 {
			r = 0
		}
		out[i] = r
	}
	return out
}

// Zipf returns integer variates in [1, n] with probability proportional to
// 1/rank^exponent. It uses inversion on the precomputed CDF; construct one
// Zipf per distribution and reuse it.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a Zipf distribution over ranks 1..n with the given
// exponent (> 0). Micro-blog retweet popularity is power-law distributed
// (paper §4.1.3), and the synthetic corpus generator relies on this type.
func NewZipf(src *Source, n int, exponent float64) *Zipf {
	if n <= 0 {
		panic("randx: NewZipf requires n > 0")
	}
	if exponent <= 0 {
		panic("randx: NewZipf requires exponent > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), exponent)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf, src: src}
}

// Draw returns a rank in [1, n].
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	// Binary search for the first CDF entry ≥ u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// Geometric returns a variate k ≥ 1 with Pr(k) = p(1-p)^(k-1): the number of
// Bernoulli(p) trials up to and including the first success. Used for
// retweet-chain lengths in the synthetic corpus.
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("randx: Geometric requires p in (0,1]")
	}
	if p == 1 {
		return 1
	}
	u := s.Float64()
	// Inversion: k = ceil(log(1-u)/log(1-p)).
	k := int(math.Ceil(math.Log(1-u) / math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.Float64() < p
}
