package randx

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(99)
	b := New(99)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed sources diverged")
		}
	}
}

func TestSplitDeterministicAndDistinct(t *testing.T) {
	a1 := New(5).Split("jurors")
	a2 := New(5).Split("jurors")
	b := New(5).Split("tweets")
	same, diff := true, false
	for i := 0; i < 100; i++ {
		x, y, z := a1.Float64(), a2.Float64(), b.Float64()
		if x != y {
			same = false
		}
		if x != z {
			diff = true
		}
	}
	if !same {
		t.Error("identical splits diverged")
	}
	if !diff {
		t.Error("differently labelled splits produced identical streams")
	}
}

func TestNormalMoments(t *testing.T) {
	src := New(1)
	const n = 200000
	mean, stddev := 2.5, 1.5
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := src.Normal(mean, stddev)
		sum += x
		sumSq += x * x
	}
	gotMean := sum / n
	gotVar := sumSq/n - gotMean*gotMean
	if math.Abs(gotMean-mean) > 0.02 {
		t.Errorf("mean = %g, want ≈ %g", gotMean, mean)
	}
	if math.Abs(gotVar-stddev*stddev) > 0.05 {
		t.Errorf("var = %g, want ≈ %g", gotVar, stddev*stddev)
	}
}

func TestTruncNormalStaysInInterval(t *testing.T) {
	src := New(2)
	for i := 0; i < 50000; i++ {
		x := src.TruncNormal(0.5, 0.3, 0, 1)
		if x <= 0 || x >= 1 {
			t.Fatalf("sample %g escaped (0,1)", x)
		}
	}
}

func TestTruncNormalExtremeMeanClamped(t *testing.T) {
	// Mean far outside the interval: rejection exhausts and clamps, but the
	// result must still be interior.
	src := New(3)
	for i := 0; i < 100; i++ {
		x := src.TruncNormal(50, 0.01, 0, 1)
		if x <= 0 || x >= 1 {
			t.Fatalf("clamped sample %g escaped (0,1)", x)
		}
	}
}

func TestTruncNormalZeroStdDev(t *testing.T) {
	src := New(4)
	if x := src.TruncNormal(0.5, 0, 0, 1); x != 0.5 {
		t.Errorf("degenerate interior mean: got %g want 0.5", x)
	}
	if x := src.TruncNormal(2, 0, 0, 1); x <= 0 || x >= 1 {
		t.Errorf("degenerate exterior mean not clamped: %g", x)
	}
}

func TestTruncNormalPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lo >= hi")
		}
	}()
	New(5).TruncNormal(0, 1, 1, 0)
}

func TestErrorRatesRangeAndCount(t *testing.T) {
	src := New(6)
	rates := src.ErrorRates(5000, 0.2, 0.1)
	if len(rates) != 5000 {
		t.Fatalf("len = %d, want 5000", len(rates))
	}
	for _, e := range rates {
		if e <= 0 || e >= 1 {
			t.Fatalf("rate %g out of (0,1)", e)
		}
	}
}

func TestRequirementsNonNegative(t *testing.T) {
	src := New(7)
	reqs := src.Requirements(5000, 0.05, 0.2)
	for _, r := range reqs {
		if r < 0 {
			t.Fatalf("requirement %g negative", r)
		}
	}
}

func TestZipfRanksInRange(t *testing.T) {
	src := New(8)
	z := NewZipf(src, 100, 1.2)
	counts := make([]int, 101)
	for i := 0; i < 100000; i++ {
		r := z.Draw()
		if r < 1 || r > 100 {
			t.Fatalf("rank %d out of [1,100]", r)
		}
		counts[r]++
	}
	// Power law: rank 1 must dominate rank 10 which must dominate rank 100.
	if !(counts[1] > counts[10] && counts[10] > counts[100]) {
		t.Errorf("counts not power-law shaped: c1=%d c10=%d c100=%d",
			counts[1], counts[10], counts[100])
	}
}

func TestZipfFrequenciesMatchTheory(t *testing.T) {
	src := New(9)
	const n, exp = 50, 1.0
	z := NewZipf(src, n, exp)
	const draws = 300000
	counts := make([]float64, n+1)
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	// Theoretical p(rank) = (1/rank) / H_n.
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	for _, rank := range []int{1, 2, 5, 10} {
		want := (1 / float64(rank)) / h
		got := counts[rank] / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("rank %d: freq %g want ≈ %g", rank, got, want)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n   int
		exp float64
	}{{0, 1}, {-1, 1}, {10, 0}, {10, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %g) did not panic", tc.n, tc.exp)
				}
			}()
			NewZipf(New(1), tc.n, tc.exp)
		}()
	}
}

func TestGeometricMean(t *testing.T) {
	src := New(10)
	const p = 0.4
	const n = 200000
	sum := 0
	for i := 0; i < n; i++ {
		k := src.Geometric(p)
		if k < 1 {
			t.Fatalf("geometric variate %d < 1", k)
		}
		sum += k
	}
	got := float64(sum) / n
	want := 1 / p
	if math.Abs(got-want) > 0.02 {
		t.Errorf("mean = %g, want ≈ %g", got, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	src := New(11)
	if k := src.Geometric(1); k != 1 {
		t.Errorf("Geometric(1) = %d, want 1", k)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p out of range")
		}
	}()
	src.Geometric(0)
}

func TestBernoulliFrequency(t *testing.T) {
	src := New(12)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if src.Bernoulli(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("frequency = %g, want ≈ 0.3", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := New(13)
	p := src.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
