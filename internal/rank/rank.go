// Package rank implements the user-ranking algorithms of Section 4.1.2:
// HITS (Algorithm 6) and PageRank (Algorithm 7) over the retweet graph.
// Both return per-user quality ("confidence") scores that internal/estimate
// translates into individual error rates.
package rank

import (
	"errors"
	"math"
	"sort"

	"juryselect/internal/graph"
)

// ErrEmptyGraph reports ranking over a graph with no nodes.
var ErrEmptyGraph = errors.New("rank: empty graph")

// Norm selects the normalization applied to HITS score vectors each
// iteration. The paper's Algorithm 6 says only "Normalize"; L2 is
// Kleinberg's original choice and the default.
type Norm int

const (
	// L2 normalizes by the Euclidean norm.
	L2 Norm = iota
	// L1 normalizes by the sum of entries.
	L1
)

// HITSOptions configures the HITS computation.
type HITSOptions struct {
	// Iterations caps the number of authority/hub update rounds. Zero
	// selects the default of 50, which is far past convergence for the
	// graphs in this repository.
	Iterations int
	// Tolerance stops iteration early when the L1 change of the authority
	// vector falls below it. Zero selects 1e-10.
	Tolerance float64
	// Norm selects the per-iteration normalization (default L2).
	Norm Norm
}

// HITS runs Algorithm 6 and returns each user's authority score, which the
// paper adopts as the quality score. Hub scores are returned alongside for
// completeness. Score order matches the graph's dense node indices.
func HITS(g *graph.Graph, opts HITSOptions) (authority, hub []float64, err error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, nil, ErrEmptyGraph
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 50
	}
	tol := opts.Tolerance
	if tol <= 0 {
		tol = 1e-10
	}
	authority = make([]float64, n)
	hub = make([]float64, n)
	next := make([]float64, n)
	// Line 1: initialize scores and hubs to 1.
	for i := range authority {
		authority[i] = 1
		hub[i] = 1
	}
	for it := 0; it < iters; it++ {
		// Lines 3–7: Score[v] += Hub[u] over edges (u,v), then normalize.
		for i := range next {
			next[i] = 0
		}
		for v := 0; v < n; v++ {
			for _, u := range g.InNeighbors(v) {
				next[v] += hub[u]
			}
		}
		normalize(next, opts.Norm)
		delta := l1Diff(next, authority)
		copy(authority, next)
		// Lines 8–12: Hub[u] += Score[v] over edges (u,v), then normalize.
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			for _, v := range g.OutNeighbors(u) {
				next[u] += authority[v]
			}
		}
		normalize(next, opts.Norm)
		copy(hub, next)
		if delta < tol {
			break
		}
	}
	return authority, hub, nil
}

// DanglingPolicy controls how PageRank treats nodes without out-edges.
type DanglingPolicy int

const (
	// Redistribute spreads dangling mass uniformly over all nodes each
	// iteration (the standard correction). Default.
	Redistribute DanglingPolicy = iota
	// Ignore drops dangling mass, replicating Algorithm 7's literal
	// pseudocode; scores then sum to less than one.
	Ignore
)

// PageRankOptions configures the PageRank computation.
type PageRankOptions struct {
	// Damping is the damping factor d; zero selects the customary 0.85.
	Damping float64
	// Iterations caps the number of rounds; zero selects 100.
	Iterations int
	// Tolerance stops iteration early when the L1 change falls below it;
	// zero selects 1e-12.
	Tolerance float64
	// Dangling selects the sink-node policy.
	Dangling DanglingPolicy
}

// PageRank runs Algorithm 7 and returns each user's PageRank score, in
// dense node-index order.
func PageRank(g *graph.Graph, opts PageRankOptions) ([]float64, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	d := opts.Damping
	if d <= 0 || d >= 1 {
		d = 0.85
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 100
	}
	tol := opts.Tolerance
	if tol <= 0 {
		tol = 1e-12
	}
	score := make([]float64, n)
	next := make([]float64, n)
	// Lines 3–7: Score[user] = 1/n; Out and In_Set come from the graph.
	for i := range score {
		score[i] = 1 / float64(n)
	}
	base := (1 - d) / float64(n)
	for it := 0; it < iters; it++ {
		danglingMass := 0.0
		if opts.Dangling == Redistribute {
			for u := 0; u < n; u++ {
				if g.OutDegree(u) == 0 {
					danglingMass += score[u]
				}
			}
		}
		for v := 0; v < n; v++ {
			// Line 10: New_Score[v] = (1-d)/n + d·Σ_{u ∈ In(v)} Score[u]/Out[u].
			sum := 0.0
			for _, u := range g.InNeighbors(v) {
				sum += score[u] / float64(g.OutDegree(u))
			}
			next[v] = base + d*(sum+danglingMass/float64(n))
		}
		delta := l1Diff(next, score)
		score, next = next, score
		if delta < tol {
			break
		}
	}
	return score, nil
}

func normalize(v []float64, norm Norm) {
	var z float64
	switch norm {
	case L1:
		for _, x := range v {
			z += x
		}
	default:
		for _, x := range v {
			z += x * x
		}
		z = math.Sqrt(z)
	}
	if z == 0 {
		return
	}
	for i := range v {
		v[i] /= z
	}
}

func l1Diff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}

// Ranked pairs a user name with a quality score.
type Ranked struct {
	User  string
	Score float64
}

// TopK returns the k highest-scoring users (all users when k ≤ 0 or k >
// #nodes), sorted by descending score with ties broken by user name. This
// mirrors the paper's "choose the 5,000 users with highest scores".
func TopK(g *graph.Graph, scores []float64, k int) []Ranked {
	n := g.NumNodes()
	all := make([]Ranked, n)
	for i := 0; i < n; i++ {
		all[i] = Ranked{User: g.Name(i), Score: scores[i]}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].User < all[j].User
	})
	if k <= 0 || k > n {
		k = n
	}
	return all[:k]
}
