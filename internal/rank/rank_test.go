package rank

import (
	"errors"
	"math"
	"testing"

	"juryselect/internal/graph"
)

// chainGraph builds a -> b -> c.
func chainGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// starGraph builds n spokes all retweeting "celebrity".
func starGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < n; i++ {
		if err := g.AddEdge(spokeName(i), "celebrity"); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func spokeName(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestHITSAuthorityConcentratesOnCelebrity(t *testing.T) {
	g := starGraph(t, 10)
	auth, hub, err := HITS(g, HITSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	celeb, _ := g.Index("celebrity")
	for v := 0; v < g.NumNodes(); v++ {
		if v == celeb {
			continue
		}
		if auth[celeb] <= auth[v] {
			t.Fatalf("celebrity authority %g not maximal (node %s has %g)",
				auth[celeb], g.Name(v), auth[v])
		}
		if hub[v] <= hub[celeb] {
			t.Fatalf("spoke hub %g not above celebrity hub %g", hub[v], hub[celeb])
		}
	}
}

func TestHITSScoresNonNegative(t *testing.T) {
	g := chainGraph(t)
	auth, hub, err := HITS(g, HITSOptions{Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := range auth {
		if auth[i] < 0 || hub[i] < 0 || math.IsNaN(auth[i]) || math.IsNaN(hub[i]) {
			t.Fatalf("invalid scores at %d: auth=%g hub=%g", i, auth[i], hub[i])
		}
	}
}

func TestHITSL1NormSumsToOne(t *testing.T) {
	g := starGraph(t, 5)
	auth, _, err := HITS(g, HITSOptions{Norm: L1})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, a := range auth {
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("L1-normalized authority sums to %g, want 1", sum)
	}
}

func TestHITSEmptyGraph(t *testing.T) {
	if _, _, err := HITS(graph.New(), HITSOptions{}); !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("err = %v, want ErrEmptyGraph", err)
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	// With Redistribute, PageRank is a probability distribution.
	g := starGraph(t, 10)
	pr, err := PageRank(g, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, s := range pr {
		if s < 0 {
			t.Fatalf("negative PageRank %g", s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PageRank sums to %g, want 1", sum)
	}
}

func TestPageRankCelebrityWins(t *testing.T) {
	g := starGraph(t, 10)
	pr, err := PageRank(g, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	celeb, _ := g.Index("celebrity")
	for v := 0; v < g.NumNodes(); v++ {
		if v != celeb && pr[celeb] <= pr[v] {
			t.Fatalf("celebrity PR %g not maximal", pr[celeb])
		}
	}
}

func TestPageRankIgnoreDanglingLosesMass(t *testing.T) {
	g := starGraph(t, 5) // celebrity is a sink
	pr, err := PageRank(g, PageRankOptions{Dangling: Ignore})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, s := range pr {
		sum += s
	}
	if sum >= 1 {
		t.Fatalf("Ignore policy should lose mass; sum = %g", sum)
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	// On a directed cycle every node must receive the same score.
	g := graph.New()
	nodes := []string{"a", "b", "c", "d"}
	for i := range nodes {
		if err := g.AddEdge(nodes[i], nodes[(i+1)%len(nodes)]); err != nil {
			t.Fatal(err)
		}
	}
	pr, err := PageRank(g, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pr); i++ {
		if math.Abs(pr[i]-pr[0]) > 1e-9 {
			t.Fatalf("cycle not uniform: %v", pr)
		}
	}
	if math.Abs(pr[0]-0.25) > 1e-9 {
		t.Fatalf("cycle score %g, want 0.25", pr[0])
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	if _, err := PageRank(graph.New(), PageRankOptions{}); !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("err = %v, want ErrEmptyGraph", err)
	}
}

func TestPageRankDampingDefaultApplied(t *testing.T) {
	g := chainGraph(t)
	// Damping outside (0,1) falls back to 0.85; must not panic or NaN.
	for _, d := range []float64{0, 1, -3, 2} {
		pr, err := PageRank(g, PageRankOptions{Damping: d})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range pr {
			if math.IsNaN(s) {
				t.Fatalf("NaN score with damping %g", d)
			}
		}
	}
}

func TestTopK(t *testing.T) {
	g := starGraph(t, 6)
	pr, err := PageRank(g, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	top := TopK(g, pr, 3)
	if len(top) != 3 {
		t.Fatalf("len = %d, want 3", len(top))
	}
	if top[0].User != "celebrity" {
		t.Fatalf("top user = %s, want celebrity", top[0].User)
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Score < top[i].Score {
			t.Fatal("not sorted descending")
		}
	}
	// k ≤ 0 returns everyone.
	if got := TopK(g, pr, 0); len(got) != g.NumNodes() {
		t.Fatalf("TopK(0) = %d entries, want all %d", len(got), g.NumNodes())
	}
	// Oversized k clamps.
	if got := TopK(g, pr, 100); len(got) != g.NumNodes() {
		t.Fatalf("TopK(100) = %d entries, want %d", len(got), g.NumNodes())
	}
}

func TestHITSAndPageRankAgreeOnHead(t *testing.T) {
	// §4.1.2: "most top ranking users discovered by Pagerank overlaps with
	// the ones identified by HITS". On a two-celebrity graph both must
	// put the celebrities first.
	g := graph.New()
	for i := 0; i < 8; i++ {
		if err := g.AddEdge(spokeName(i), "celebA"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if err := g.AddEdge(spokeName(i), "celebB"); err != nil {
			t.Fatal(err)
		}
	}
	auth, _, err := HITS(g, HITSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := PageRank(g, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	topH := TopK(g, auth, 2)
	topP := TopK(g, pr, 2)
	wantTop := map[string]bool{"celebA": true, "celebB": true}
	for _, r := range append(topH, topP...) {
		if !wantTop[r.User] {
			t.Fatalf("unexpected head user %q (HITS %v, PR %v)", r.User, topH, topP)
		}
	}
}
