package rank

import (
	"math"
	"testing"

	"juryselect/internal/graph"
)

// TestPageRankAnalyticTwoNode checks PageRank against the hand-solved
// fixed point of the two-node graph a → b with damping 0.85 and dangling
// redistribution:
//
//	a = 0.15/2 + 0.85·(b/2)
//	b = 0.15/2 + 0.85·(a + b/2)
//
// which solves to a = 0.3508771…, b = 0.6491228… (sum 1).
func TestPageRankAnalyticTwoNode(t *testing.T) {
	g := graph.New()
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	pr, err := PageRank(g, PageRankOptions{Iterations: 500, Tolerance: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	ia, _ := g.Index("a")
	ib, _ := g.Index("b")
	wantA := 0.075 / (1 - 0.425 - 0.425*0.85/0.575)
	// Solve directly instead: a(1 - 0.62826087) = 0.13043478.
	wantA = 0.13043478260869565 / 0.3717391304347826
	wantB := 1 - wantA
	if math.Abs(pr[ia]-wantA) > 1e-9 || math.Abs(pr[ib]-wantB) > 1e-9 {
		t.Fatalf("PageRank = (%.10f, %.10f), want (%.10f, %.10f)",
			pr[ia], pr[ib], wantA, wantB)
	}
}

// TestHITSAnalyticBipartite checks HITS on the complete bipartite graph
// K_{2,3} (two hubs each linking to three authorities): all authorities
// must share one score and all hubs another, with L2 norms 1.
func TestHITSAnalyticBipartite(t *testing.T) {
	g := graph.New()
	for _, hub := range []string{"h1", "h2"} {
		for _, auth := range []string{"a1", "a2", "a3"} {
			if err := g.AddEdge(hub, auth); err != nil {
				t.Fatal(err)
			}
		}
	}
	auth, hub, err := HITS(g, HITSOptions{Iterations: 100, Tolerance: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	// Authorities: three equal entries with L2 norm 1 ⇒ 1/√3 each.
	// Hubs: two equal entries ⇒ 1/√2 each.
	wantAuth := 1 / math.Sqrt(3)
	wantHub := 1 / math.Sqrt(2)
	for _, name := range []string{"a1", "a2", "a3"} {
		i, _ := g.Index(name)
		if math.Abs(auth[i]-wantAuth) > 1e-9 {
			t.Errorf("authority(%s) = %.10f, want %.10f", name, auth[i], wantAuth)
		}
	}
	for _, name := range []string{"h1", "h2"} {
		i, _ := g.Index(name)
		if math.Abs(hub[i]-wantHub) > 1e-9 {
			t.Errorf("hub(%s) = %.10f, want %.10f", name, hub[i], wantHub)
		}
	}
}

// TestPageRankConvergesFromAnyStart verifies the iteration reaches the
// same fixed point regardless of iteration budget granularity (i.e. the
// tolerance-based early exit is consistent with running to the cap).
func TestPageRankConvergesFromAnyStart(t *testing.T) {
	g := graph.New()
	edges := [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}, {"a", "c"}, {"d", "a"}}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	loose, err := PageRank(g, PageRankOptions{Iterations: 1000, Tolerance: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := PageRank(g, PageRankOptions{Iterations: 10000, Tolerance: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	for i := range loose {
		if math.Abs(loose[i]-capped[i]) > 1e-10 {
			t.Fatalf("node %d: %g vs %g", i, loose[i], capped[i])
		}
	}
}
