// Package server is the network-facing subsystem of the reproduction: an
// HTTP/JSON service ("juryd") that answers the paper's decision-making
// primitive online. A requester posts a question's candidate crowd — or
// names a live pool — and the service returns the minimum-JER jury at
// that moment (cf. Cao et al., PVLDB 2012, and the serving framing of
// Mahmud et al., arXiv:1404.2013).
//
// The pieces:
//
//   - poolstore.go: aliases to internal/pool — the versioned directory
//     of juror pools with copy-on-write snapshots behind one atomic
//     pointer, so selections read a consistent pool without taking locks
//     on the hot path while PUT/PATCH writers publish new versions
//     (observed votes re-estimate error rates via
//     estimate.PosteriorRate).
//   - server.go: the handlers (POST /v1/jer, POST /v1/select, pool CRUD
//     under /v1/pools), bounded-queue admission with 429 load-shedding,
//     and per-request deadlines propagated as context.
//   - tasks.go: the decision-task lifecycle endpoints (POST /v1/tasks,
//     GET /v1/tasks[/{id}], POST /v1/tasks/{id}/votes) fronting
//     internal/tasks — the WAL-backed store with sequential early-stop
//     voting and juror replacement. When a task store is configured,
//     pool mutations are journaled through it so recovery replays pools
//     and tasks together.
//   - metrics.go: /healthz and /metrics (expvar counters: requests,
//     shed, errors, the engine's evaluation/cache/inflight stats, and
//     the task-store gauges + WAL counters).
//
// cmd/juryd wires the package to flags, initial pool files, WAL
// recovery, the juror-timeout sweeper, and a SIGTERM graceful drain.
package server

import (
	"encoding/json"
	"time"

	"juryselect/internal/dataio"
)

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// JERRequest is the body of POST /v1/jer.
type JERRequest struct {
	// ErrorRates are the individual error rates of the jury to evaluate.
	ErrorRates []float64 `json:"error_rates"`
	// TimeoutMS optionally overrides the server's default per-request
	// deadline, clamped to the configured maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// JERResponse is the body of a successful POST /v1/jer.
type JERResponse struct {
	JER  float64 `json:"jer"`
	Size int     `json:"size"`
}

// SelectRequest is the body of POST /v1/select. Exactly one of Pool and
// Candidates must be set.
type SelectRequest struct {
	// Pool names a stored pool; the selection runs on its current
	// snapshot and the response reports the snapshot version.
	Pool string `json:"pool,omitempty"`
	// Candidates is an inline candidate set for one-shot requests.
	Candidates []dataio.JurorJSON `json:"candidates,omitempty"`
	// Model is "altr" (default) or "pay".
	Model string `json:"model,omitempty"`
	// Budget is the pay model's budget B.
	Budget float64 `json:"budget,omitempty"`
	// Exact requests exact enumeration instead of the PayALG greedy
	// (pay model, at most jury.MaxExactCandidates candidates).
	Exact bool `json:"exact,omitempty"`
	// TimeoutMS optionally overrides the default per-request deadline,
	// clamped to the configured maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchSelectRequest is the body of POST /v1/select/batch: up to the
// server's batch cap of independent selects resolved in one round trip.
// TimeoutMS bounds the whole batch; per-item timeout_ms fields are
// ignored.
type BatchSelectRequest struct {
	Selects   []SelectRequest `json:"selects"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
}

// BatchSelectResponse is the body of a successful POST /v1/select/batch.
// Results[i] corresponds to Selects[i] and is either a SelectResponse or
// an errorResponse ({"error": ...}); item failures never fail the batch.
type BatchSelectResponse struct {
	Results []json.RawMessage `json:"results"`
}

// SelectResponse is the body of a successful POST /v1/select. Selection
// is the same shape cmd/juryselect -json emits; PoolVersion identifies
// the exact snapshot the jury was selected from.
type SelectResponse struct {
	Selection   dataio.SelectionJSON `json:"selection"`
	Pool        string               `json:"pool,omitempty"`
	PoolVersion uint64               `json:"pool_version,omitempty"`
}

// PoolJurorJSON is the wire form of one live-pool member: the juror, its
// accumulated voting record, and the uncertainty of the estimate. RateLo
// and RateHi bound the central 95% credible interval of the Beta
// posterior the PATCH path maintains (estimate.CredibleInterval over the
// posterior mean and its pseudo-count weight), so clients can distinguish
// a juror whose ε = 0.2 rests on ten virtual prior tasks from one whose
// rests on a thousand observed votes.
type PoolJurorJSON struct {
	ID         string  `json:"id"`
	ErrorRate  float64 `json:"error_rate"`
	RateLo     float64 `json:"rate_lo,omitempty"`
	RateHi     float64 `json:"rate_hi,omitempty"`
	Cost       float64 `json:"cost,omitempty"`
	WrongVotes int64   `json:"wrong_votes,omitempty"`
	TotalVotes int64   `json:"total_votes,omitempty"`
}

// PoolResponse describes one pool snapshot. GET /v1/pools/{name} includes
// Jurors; the GET /v1/pools listing and the PUT/PATCH acknowledgements
// omit them.
type PoolResponse struct {
	Name      string          `json:"name"`
	Version   uint64          `json:"version"`
	Size      int             `json:"size"`
	UpdatedAt string          `json:"updated_at"`
	Jurors    []PoolJurorJSON `json:"jurors,omitempty"`
}

// PoolListResponse is the body of GET /v1/pools.
type PoolListResponse struct {
	Pools []PoolResponse `json:"pools"`
}

// PutJurorsRequest is the body of PUT /v1/pools/{name}/jurors: the full
// replacement juror set.
type PutJurorsRequest struct {
	Jurors []dataio.JurorJSON `json:"jurors"`
}

// VotesJSON is a batch of observed voting outcomes for one juror.
type VotesJSON struct {
	// Wrong counts votes cast against the resolved truth.
	Wrong int64 `json:"wrong"`
	// Total counts votes on tasks whose truth resolved.
	Total int64 `json:"total"`
}

// JurorUpdateJSON is one update inside PATCH /v1/pools/{name}/jurors.
// See JurorUpdate for the semantics; pointer fields distinguish "absent"
// from zero values.
type JurorUpdateJSON struct {
	ID        string     `json:"id"`
	ErrorRate *float64   `json:"error_rate,omitempty"`
	Cost      *float64   `json:"cost,omitempty"`
	Votes     *VotesJSON `json:"votes,omitempty"`
	Remove    bool       `json:"remove,omitempty"`
}

// PatchJurorsRequest is the body of PATCH /v1/pools/{name}/jurors.
type PatchJurorsRequest struct {
	Updates []JurorUpdateJSON `json:"updates"`
}

// poolResponse builds the wire form of a snapshot.
func poolResponse(p *Pool, includeJurors bool) PoolResponse {
	out := PoolResponse{
		Name:      p.Name,
		Version:   p.Version,
		Size:      p.Size(),
		UpdatedAt: p.UpdatedAt.Format(time.RFC3339Nano),
	}
	if includeJurors {
		intervals := p.CredibleIntervals()
		out.Jurors = make([]PoolJurorJSON, p.Size())
		for i, m := range p.Jurors() {
			out.Jurors[i] = PoolJurorJSON{
				ID:         m.ID,
				ErrorRate:  m.ErrorRate,
				RateLo:     intervals[i].Lo,
				RateHi:     intervals[i].Hi,
				Cost:       m.Cost,
				WrongVotes: m.WrongVotes,
				TotalVotes: m.TotalVotes,
			}
		}
	}
	return out
}
