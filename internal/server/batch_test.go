package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"juryselect/internal/tasks"
)

// TestSelectBatchParity posts a mixed batch — valid selects across
// strategies plus per-item failures — and checks every result against
// the single endpoint: item i's bytes must equal POST /v1/select with
// the same request (modulo the trailing newline the single response
// carries), including the error items.
func TestSelectBatchParity(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	defer hs.Close()
	putPool(t, hs.URL, "crowd", testJurors(21))
	if s == nil {
		t.Fatal("no server")
	}

	selects := []SelectRequest{
		{Pool: "crowd"},
		{Pool: "crowd", Model: "pay", Budget: 2},
		{Pool: "crowd", Model: "pay", Budget: 1.5, Exact: true},
		{Pool: "ghost"},                   // 404 as a single
		{Pool: "crowd", Model: "alchemy"}, // 400 as a single
		{Pool: "crowd"},                   // repeat: served from cache
	}
	var batch BatchSelectResponse
	code, body := postSelect(s.Handler(), "/v1/select/batch", BatchSelectRequest{Selects: selects})
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(selects) {
		t.Fatalf("%d results for %d selects", len(batch.Results), len(selects))
	}
	for i, req := range selects {
		_, single := postSelect(s.Handler(), "/v1/select", req)
		got := append(append([]byte(nil), batch.Results[i]...), '\n')
		if !bytes.Equal(got, single) {
			t.Errorf("item %d (%+v):\nbatch  %s\nsingle %s", i, req, got, single)
		}
	}
}

// TestSelectBatchLimits covers the batch envelope's own validation.
func TestSelectBatchLimits(t *testing.T) {
	s, hs := newTestServer(t, Config{MaxBatchItems: 2})
	defer hs.Close()
	putPool(t, hs.URL, "crowd", testJurors(9))

	code, body := postSelect(s.Handler(), "/v1/select/batch", BatchSelectRequest{})
	if code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d: %s", code, body)
	}
	three := BatchSelectRequest{Selects: []SelectRequest{{Pool: "crowd"}, {Pool: "crowd"}, {Pool: "crowd"}}}
	code, body = postSelect(s.Handler(), "/v1/select/batch", three)
	if code != http.StatusBadRequest || !bytes.Contains(body, []byte("at most 2")) {
		t.Fatalf("oversized batch: status %d: %s", code, body)
	}
	two := BatchSelectRequest{Selects: []SelectRequest{{Pool: "crowd"}, {Pool: "crowd"}}}
	if code, body = postSelect(s.Handler(), "/v1/select/batch", two); code != http.StatusOK {
		t.Fatalf("full batch: status %d: %s", code, body)
	}
}

// TestTaskVoteBatchHTTP exercises POST /v1/tasks/{id}/votes/batch over
// the wire: a unanimous batch early-stops the task mid-batch and the
// overflow comes back skipped, not failed; a batch against the closed
// task is all-skipped; item validation errors stay per-item; an unknown
// task fails the whole batch with 404.
func TestTaskVoteBatchHTTP(t *testing.T) {
	hs := newTaskServer(t, 101)
	defer hs.Close()

	var created TaskResponse
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks",
		TaskCreateRequest{Pool: "crowd", TargetConfidence: 0.9}, http.StatusCreated, &created)
	task := created.Task
	yes := true
	req := TaskVoteBatchRequest{}
	for _, j := range task.Jurors {
		req.Votes = append(req.Votes, TaskVoteRequest{JurorID: j.ID, Vote: &yes})
	}
	// A malformed leading item must not derail the rest. (It leads
	// because items after the early stop are skipped unexamined.)
	req.Votes[0] = TaskVoteRequest{JurorID: task.Jurors[0].ID}

	var resp TaskVoteBatchResponse
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks/"+task.ID+"/votes/batch", req, http.StatusOK, &resp)
	if len(resp.Results) != len(req.Votes) {
		t.Fatalf("%d results for %d votes", len(resp.Results), len(req.Votes))
	}
	applied, skipped, failed := 0, 0, 0
	for i, r := range resp.Results {
		switch {
		case r.Applied:
			applied++
		case r.Skipped:
			skipped++
		case r.Error != "":
			failed++
		default:
			t.Fatalf("result %d carries no outcome: %+v", i, r)
		}
	}
	if failed != 1 || resp.Results[0].Error == "" {
		t.Fatalf("want exactly the malformed item failed, got %d failures: %+v", failed, resp.Results)
	}
	if resp.Task.Status != tasks.StatusDecided || resp.Task.Verdict == nil || !resp.Task.Verdict.Answer {
		t.Fatalf("unanimous yes batch should decide the task: %+v", resp.Task)
	}
	if skipped == 0 {
		t.Fatalf("early stop should skip the batch tail: applied=%d skipped=%d", applied, skipped)
	}
	if applied+skipped+failed != len(req.Votes) {
		t.Fatalf("outcomes don't partition the batch: %d+%d+%d != %d", applied, skipped, failed, len(req.Votes))
	}

	// The task is closed: a follow-up batch is all-skipped and reports
	// the final view.
	var again TaskVoteBatchResponse
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks/"+task.ID+"/votes/batch",
		TaskVoteBatchRequest{Votes: []TaskVoteRequest{{JurorID: task.Jurors[0].ID, Vote: &yes}}},
		http.StatusOK, &again)
	if !again.Results[0].Skipped {
		t.Fatalf("vote on closed task should be skipped: %+v", again.Results[0])
	}
	if again.Task.Status != tasks.StatusDecided {
		t.Fatalf("all-skipped batch should still return the task view: %+v", again.Task)
	}

	// Envelope validation and unknown-task failure.
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks/"+task.ID+"/votes/batch",
		TaskVoteBatchRequest{}, http.StatusBadRequest, nil)
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks/ghost/votes/batch",
		TaskVoteBatchRequest{Votes: []TaskVoteRequest{{JurorID: "j000", Vote: &yes}}},
		http.StatusNotFound, nil)
}
