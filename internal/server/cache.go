package server

import (
	"math"
	"sync"
	"sync/atomic"
)

// The selection cache exploits the paper's central algebraic fact: a
// selection is a pure function of (pool contents, strategy, parameters).
// Pool contents are identified exactly by (name, version) — the
// copy-on-write store bumps the version on every PUT/PATCH and the
// per-name version high-water mark survives DELETE, so a (name, version)
// pair can never denote two different juror sets. Keying the cache on
// (name, version, strategy, canonicalized params) therefore makes
// invalidation structural: a write publishes a new version, fresh
// requests build fresh keys, and entries for dead versions simply age
// out of the LRU. There is no invalidation path to get wrong.
//
// The cached value is the selection's fully encoded JSON response, so a
// warm select does one snapshot read, one cache probe and one Write —
// no engine call, no sort, no encoder — and the probe itself does not
// allocate.

// selectKind canonicalizes the (model, exact) request pair.
type selectKind uint8

const (
	kindAltr selectKind = iota
	kindPay
	kindPayExact
)

// selectKey identifies one cacheable selection: the pool snapshot
// (name, version) and the canonical strategy parameters. TimeoutMS is
// deliberately absent — it bounds the computation, not the result.
type selectKey struct {
	pool    string
	version uint64
	kind    selectKind
	budget  float64
}

// hash mixes the key into a shard index. FNV-1a over the name plus a
// splitmix-style scramble of the version keeps sibling versions of one
// pool on different shards; it runs without allocating.
func (k selectKey) hash() uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.pool); i++ {
		h ^= uint64(k.pool[i])
		h *= 1099511628211
	}
	h ^= k.version + 0x9e3779b97f4a7c15
	h ^= uint64(k.kind) << 56
	h ^= math.Float64bits(k.budget)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// cacheEntry is one LRU node: the key (for eviction bookkeeping) and the
// pre-encoded response bytes, threaded on an intrusive recency list.
type cacheEntry struct {
	key        selectKey
	raw        []byte
	prev, next *cacheEntry
}

// flight is one in-progress computation of a cold key. Followers block
// on done and read raw/err; the cache never stores errors, so a failed
// flight leaves the key cold for the next request.
type flight struct {
	done chan struct{}
	raw  []byte
	err  error
}

// cacheShard is one lock domain: an LRU map plus the in-flight table for
// per-key singleflight.
type cacheShard struct {
	mu      sync.Mutex
	entries map[selectKey]*cacheEntry
	flights map[selectKey]*flight
	// head/tail are sentinels of the recency list (head.next is MRU).
	head, tail cacheEntry
}

func (sh *cacheShard) init() {
	sh.entries = make(map[selectKey]*cacheEntry)
	sh.flights = make(map[selectKey]*flight)
	sh.head.next = &sh.tail
	sh.tail.prev = &sh.head
}

// moveToFront marks e most-recently-used. Caller holds sh.mu.
func (sh *cacheShard) moveToFront(e *cacheEntry) {
	if sh.head.next == e {
		return
	}
	e.prev.next = e.next
	e.next.prev = e.prev
	sh.pushFront(e)
}

func (sh *cacheShard) pushFront(e *cacheEntry) {
	e.prev = &sh.head
	e.next = sh.head.next
	sh.head.next.prev = e
	sh.head.next = e
}

// selectCacheShards is the lock-striping width. 16 shards keep probe
// contention negligible at the concurrency levels admission control
// admits, while the per-shard maps stay small enough to be cheap.
const selectCacheShards = 16

// DefaultSelectCacheEntries bounds the cache. 4096 entries cover
// hundreds of pools × the handful of live (version, params) pairs each
// has at any moment; at roughly 1 KiB of encoded response per jury the
// worst case is a few MiB.
const DefaultSelectCacheEntries = 4096

// selectCache is the version-keyed response cache: a sharded LRU of
// pre-encoded select responses with per-key singleflight for cold keys.
type selectCache struct {
	shards   [selectCacheShards]cacheShard
	perShard int

	hits      atomic.Int64 // probes served from a resident entry
	misses    atomic.Int64 // computations actually performed (flight leaders)
	collapsed atomic.Int64 // requests that joined another request's flight
}

// newSelectCache returns a cache bounded to max entries in total.
// max <= 0 selects DefaultSelectCacheEntries.
func newSelectCache(max int) *selectCache {
	if max <= 0 {
		max = DefaultSelectCacheEntries
	}
	per := (max + selectCacheShards - 1) / selectCacheShards
	if per < 1 {
		per = 1
	}
	c := &selectCache{perShard: per}
	for i := range c.shards {
		c.shards[i].init()
	}
	return c
}

func (c *selectCache) shard(k selectKey) *cacheShard {
	return &c.shards[k.hash()%selectCacheShards]
}

// get probes the cache. A hit returns the encoded response bytes, which
// are immutable and safe to write concurrently. The warm path — hash,
// one mutex, one map lookup, pointer surgery — performs no allocation.
func (c *selectCache) get(k selectKey) ([]byte, bool) {
	sh := c.shard(k)
	sh.mu.Lock()
	e, ok := sh.entries[k]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	sh.moveToFront(e)
	sh.mu.Unlock()
	c.hits.Add(1)
	return e.raw, true
}

// do computes the value for a cold key exactly once under concurrent
// stampede: the first caller runs compute while followers block until it
// finishes and share its result. A successful result is inserted into
// the LRU; an error is returned to every waiter and not cached.
//
// do re-probes under the shard lock before starting a flight, so a
// get-miss that lost a race with a completing flight still coalesces.
func (c *selectCache) do(k selectKey, compute func() ([]byte, error)) ([]byte, error) {
	sh := c.shard(k)
	sh.mu.Lock()
	if e, ok := sh.entries[k]; ok {
		sh.moveToFront(e)
		sh.mu.Unlock()
		c.hits.Add(1)
		return e.raw, nil
	}
	if f, ok := sh.flights[k]; ok {
		sh.mu.Unlock()
		c.collapsed.Add(1)
		<-f.done
		return f.raw, f.err
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[k] = f
	sh.mu.Unlock()

	c.misses.Add(1)
	f.raw, f.err = compute()
	sh.mu.Lock()
	delete(sh.flights, k)
	if f.err == nil {
		sh.insert(k, f.raw, c.perShard)
	}
	sh.mu.Unlock()
	close(f.done)
	return f.raw, f.err
}

// insert adds a fresh entry, evicting from the LRU tail past capacity.
// Caller holds sh.mu.
func (sh *cacheShard) insert(k selectKey, raw []byte, capacity int) {
	if e, ok := sh.entries[k]; ok {
		// A concurrent flight for the same key can only have produced the
		// same bytes; keep the resident entry.
		sh.moveToFront(e)
		return
	}
	e := &cacheEntry{key: k, raw: raw}
	sh.entries[k] = e
	sh.pushFront(e)
	if len(sh.entries) > capacity {
		victim := sh.tail.prev
		victim.prev.next = &sh.tail
		sh.tail.prev = victim.prev
		delete(sh.entries, victim.key)
	}
}

// len reports the resident entry count (all shards).
func (c *selectCache) len() int {
	n := 0
	for _, v := range c.shardLens() {
		n += v
	}
	return n
}

// shardLens reports each shard's resident entry count, for the
// per-shard gauges in /metrics: a skewed distribution means one shard's
// LRU is evicting while others sit idle (hot pools hashing together).
func (c *selectCache) shardLens() []int {
	out := make([]int, selectCacheShards)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		out[i] = len(sh.entries)
		sh.mu.Unlock()
	}
	return out
}
