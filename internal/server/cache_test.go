package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"juryselect/jury"
)

// postSelect exercises the handler directly (no TCP): returns status and
// the exact response bytes as they would hit the wire.
func postSelect(h http.Handler, path string, body any) (int, []byte) {
	raw, err := json.Marshal(body)
	if err != nil {
		panic(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// TestSelectCacheParityUnderMutation is the invalidation correctness
// proof: a cached server and an uncached server share one live store;
// a randomized sequence of PUT/PATCH/DELETE mutations interleaves with
// selects, and after every mutation each strategy's cached response —
// cold fill and warm hit alike — must be byte-identical to the freshly
// computed uncached select at the same pool version. Version-keying is
// the only invalidation mechanism under test: no entry is ever purged.
func TestSelectCacheParityUnderMutation(t *testing.T) {
	eng := jury.NewEngine(jury.BatchOptions{})
	store := NewStore()
	cached := New(Config{Store: store, Engine: eng})
	uncached := New(Config{Store: store, Engine: eng, SelectCacheEntries: -1})

	rng := rand.New(rand.NewSource(7))
	randomJurors := func(n int) []jury.Juror {
		out := make([]jury.Juror, n)
		for i := range out {
			out[i] = jury.Juror{
				ID:        fmt.Sprintf("j%03d", i),
				ErrorRate: 0.02 + 0.46*rng.Float64(),
				Cost:      0.1 + rng.Float64(),
			}
		}
		return out
	}
	pools := []string{"alpha", "beta"}
	for _, name := range pools {
		if _, err := store.Put(name, randomJurors(4+rng.Intn(8))); err != nil {
			t.Fatal(err)
		}
	}
	params := []SelectRequest{
		{Model: "altr"},
		{Model: "pay", Budget: 1.0},
		{Model: "pay", Budget: 2.5},
		{Model: "pay", Budget: 2.0, Exact: true},
	}

	for step := 0; step < 100; step++ {
		name := pools[rng.Intn(len(pools))]
		switch op := rng.Intn(8); {
		case op == 0: // full replacement
			if _, err := store.Put(name, randomJurors(4+rng.Intn(8))); err != nil {
				t.Fatal(err)
			}
		case op == 1: // delete (selects must agree on the 404 too)
			store.Delete(name)
		default: // incremental patch
			p, ok := store.Get(name)
			if !ok {
				if _, err := store.Put(name, randomJurors(4+rng.Intn(8))); err != nil {
					t.Fatal(err)
				}
				break
			}
			members := p.Jurors()
			rate := 0.02 + 0.46*rng.Float64()
			up := JurorUpdate{ID: members[rng.Intn(len(members))].ID, ErrorRate: &rate}
			if _, err := store.Patch(name, []JurorUpdate{up}); err != nil {
				t.Fatal(err)
			}
		}

		for _, pr := range params {
			req := pr
			req.Pool = name
			codeC, bodyC := postSelect(cached.Handler(), "/v1/select", req)
			codeU, bodyU := postSelect(uncached.Handler(), "/v1/select", req)
			if codeC != codeU {
				t.Fatalf("step %d %s %+v: cached status %d, uncached %d", step, name, pr, codeC, codeU)
			}
			if !bytes.Equal(bodyC, bodyU) {
				t.Fatalf("step %d %s %+v: cached response diverges from uncached:\ncached   %s\nuncached %s",
					step, name, pr, bodyC, bodyU)
			}
			// The warm hit must serve the very same bytes.
			codeW, bodyW := postSelect(cached.Handler(), "/v1/select", req)
			if codeW != codeC || !bytes.Equal(bodyW, bodyC) {
				t.Fatalf("step %d %s %+v: warm hit diverges from cold fill", step, name, pr)
			}
		}
	}
	if cached.cache.hits.Load() == 0 || cached.cache.misses.Load() == 0 {
		t.Fatalf("parity loop exercised no cache traffic: hits=%d misses=%d",
			cached.cache.hits.Load(), cached.cache.misses.Load())
	}
}

// TestSelectCacheStalenessUnderRace runs concurrent selects against a
// pool under continuous patching and verifies no response is torn or
// stale: whatever snapshot version a response embeds, its bytes must
// equal the select computed fresh from exactly that immutable snapshot.
// (Run under -race in CI.)
func TestSelectCacheStalenessUnderRace(t *testing.T) {
	s := New(Config{})
	store := s.Store()
	expected := make(map[uint64][]byte) // version -> uncached altr response bytes
	record := func(p *Pool) {
		raw, err := s.computeSelectRaw(context.Background(),
			selectPlan{req: &SelectRequest{Pool: "crowd"}, model: "altr", kind: kindAltr, pool: p})
		if err != nil {
			t.Errorf("computing expected bytes at version %d: %v", p.Version, err)
			return
		}
		expected[p.Version] = raw
	}
	p, err := store.Put("crowd", testJurors(15))
	if err != nil {
		t.Fatal(err)
	}
	record(p)

	type observation struct {
		version uint64
		body    []byte
	}
	const (
		selectors          = 4
		selectsPerSelector = 150
		patches            = 60
	)
	obs := make([][]observation, selectors)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < selectors; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < selectsPerSelector; i++ {
				code, body := postSelect(s.Handler(), "/v1/select", SelectRequest{Pool: "crowd"})
				if code != http.StatusOK {
					t.Errorf("selector %d: status %d: %s", g, code, body)
					return
				}
				var resp SelectResponse
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Errorf("selector %d: %v", g, err)
					return
				}
				obs[g] = append(obs[g], observation{version: resp.PoolVersion, body: body})
			}
		}(g)
	}
	// One patcher mutates while the selectors read; it records the
	// expected bytes of every version it publishes. The snapshots Patch
	// returns are immutable, so the recorded bytes are exact for that
	// version no matter how far the pool has moved on.
	close(start)
	for i := 0; i < patches; i++ {
		rate := 0.05 + 0.4*float64(i%10)/10
		p, err := store.Patch("crowd", []JurorUpdate{{ID: "j007", ErrorRate: &rate}})
		if err != nil {
			t.Fatal(err)
		}
		record(p)
	}
	wg.Wait()

	checked := 0
	for g := range obs {
		for _, o := range obs[g] {
			want, ok := expected[o.version]
			if !ok {
				t.Fatalf("response embeds version %d that was never published", o.version)
			}
			if !bytes.Equal(o.body, want) {
				t.Fatalf("version %d: served bytes diverge from that snapshot's select:\nserved %s\nwant   %s",
					o.version, o.body, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no observations checked")
	}
}

// TestSelectCacheStampede sends M concurrent selects for one cold
// (version, params) key and asserts the engine ran exactly once: the
// flight leader computes, everyone else either joins the flight or hits
// the entry it inserted. The engine memo is disabled so every uncoalesced
// select would add its own evaluations to the counter.
func TestSelectCacheStampede(t *testing.T) {
	const m = 24
	baselineEng := jury.NewEngine(jury.BatchOptions{CacheSize: -1})
	base := New(Config{Engine: baselineEng})
	if _, err := base.Store().Put("crowd", testJurors(24)); err != nil {
		t.Fatal(err)
	}
	req := SelectRequest{Pool: "crowd", Model: "pay", Budget: 3}
	if code, body := postSelect(base.Handler(), "/v1/select", req); code != http.StatusOK {
		t.Fatalf("baseline select: status %d: %s", code, body)
	}
	baseline := baselineEng.Stats().Evaluations
	if baseline == 0 {
		t.Fatal("baseline pay select performed no engine evaluations; the stampede assertion would be vacuous")
	}

	eng := jury.NewEngine(jury.BatchOptions{CacheSize: -1})
	s := New(Config{Engine: eng})
	if _, err := s.Store().Put("crowd", testJurors(24)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	codes := make([]int, m)
	bodies := make([][]byte, m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			codes[i], bodies[i] = postSelect(s.Handler(), "/v1/select", req)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < m; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d served different bytes than request 0", i)
		}
	}
	if got := eng.Stats().Evaluations; got != baseline {
		t.Fatalf("stampede of %d selects ran %d engine evaluations, want the single-select %d", m, got, baseline)
	}
	misses, hits, collapsed := s.cache.misses.Load(), s.cache.hits.Load(), s.cache.collapsed.Load()
	if misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 computation", misses)
	}
	if hits+collapsed != m-1 {
		t.Fatalf("hits (%d) + collapsed (%d) = %d, want %d followers", hits, collapsed, hits+collapsed, m-1)
	}
}

// TestSelectCacheDisabled covers the opt-out: every select computes.
func TestSelectCacheDisabled(t *testing.T) {
	s := New(Config{SelectCacheEntries: -1})
	if s.cache != nil {
		t.Fatal("negative SelectCacheEntries should disable the cache")
	}
	if _, err := s.Store().Put("crowd", testJurors(9)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if code, body := postSelect(s.Handler(), "/v1/select", SelectRequest{Pool: "crowd"}); code != http.StatusOK {
			t.Fatalf("status %d: %s", code, body)
		}
	}
}

// TestSelectCacheLRUEviction bounds residency: walking more distinct
// keys than the cache holds evicts oldest-first instead of growing.
func TestSelectCacheLRUEviction(t *testing.T) {
	c := newSelectCache(32)
	raw := []byte("{}\n")
	for v := uint64(0); v < 500; v++ {
		k := selectKey{pool: "p", version: v, kind: kindAltr}
		if _, err := c.do(k, func() ([]byte, error) { return raw, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// Per-shard capacity is ceil(32/16) = 2, so residency is bounded by
	// 2 per shard even though 500 keys passed through.
	if n := c.len(); n > 32 {
		t.Fatalf("cache holds %d entries, configured bound 32", n)
	}
	if c.len() == 0 {
		t.Fatal("cache evicted everything")
	}
}

// BenchmarkSelectCacheHit is the CI zero-alloc guard for the warm
// cached-select probe: hash, shard lock, map lookup, LRU bump.
func BenchmarkSelectCacheHit(b *testing.B) {
	c := newSelectCache(0)
	k := selectKey{pool: "bench-pool", version: 17, kind: kindPay, budget: 2.5}
	raw := bytes.Repeat([]byte("x"), 512)
	if _, err := c.do(k, func() ([]byte, error) { return raw, nil }); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.get(k); !ok {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkServerSelectWarm measures the full handler path of a warm
// select — decode, snapshot read, cache probe, raw write — without TCP.
// This is the ISSUE 6 sub-10µs target path.
func BenchmarkServerSelectWarm(b *testing.B) {
	s := New(Config{})
	if _, err := s.Store().Put("crowd", testJurors(101)); err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(SelectRequest{Pool: "crowd"})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	// Prime the key.
	if code, resp := postSelect(h, "/v1/select", SelectRequest{Pool: "crowd"}); code != http.StatusOK {
		b.Fatalf("prime: status %d: %s", code, resp)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/select", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}
