package server

import (
	"fmt"
	"net/http"
	"strconv"

	"juryselect/internal/insight"
)

// requireInsight guards the /v1/insight endpoints: without an analytics
// engine they do not exist, mirroring requireTasks.
func (s *Server) requireInsight(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.insight == nil {
			s.fail(w, &httpError{status: http.StatusNotFound,
				msg: fmt.Sprintf("%s: insight engine not configured", r.URL.Path)})
			return
		}
		h(w, r)
	}
}

// insightLimit parses the optional ?limit query (0 = unlimited).
func insightLimit(r *http.Request) (int, error) {
	v := r.URL.Query().Get("limit")
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, badRequest("limit must be a non-negative integer, got %q", v)
	}
	return n, nil
}

// insightJurorsResponse is the body of GET /v1/insight/jurors.
type insightJurorsResponse struct {
	Jurors []insight.JurorProfile `json:"jurors"`
	// Total is the tracked-juror count before the limit was applied.
	Total       int    `json:"total"`
	Fingerprint string `json:"fingerprint"`
}

// handleInsightJurors serves GET /v1/insight/jurors: every tracked
// juror's profile in ID order. ?limit=N truncates the list.
func (s *Server) handleInsightJurors(w http.ResponseWriter, r *http.Request) {
	limit, err := insightLimit(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	snap := s.insight.Snapshot()
	out := insightJurorsResponse{
		Jurors:      snap.Jurors,
		Total:       len(snap.Jurors),
		Fingerprint: snap.Fingerprint,
	}
	if limit > 0 && limit < len(out.Jurors) {
		out.Jurors = out.Jurors[:limit]
	}
	writeJSON(w, http.StatusOK, out)
}

// insightCalibrationResponse is the body of GET /v1/insight/calibration:
// the JER reliability diagram plus the engine fingerprint the CI smoke
// compares across a restart to prove live ≡ replay.
type insightCalibrationResponse struct {
	TasksDecided int64                     `json:"tasks_decided"`
	TasksExpired int64                     `json:"tasks_expired"`
	Calibration  insight.CalibrationReport `json:"calibration"`
	Fingerprint  string                    `json:"fingerprint"`
}

// handleInsightCalibration serves GET /v1/insight/calibration.
func (s *Server) handleInsightCalibration(w http.ResponseWriter, r *http.Request) {
	snap := s.insight.Snapshot()
	writeJSON(w, http.StatusOK, insightCalibrationResponse{
		TasksDecided: snap.TasksDecided,
		TasksExpired: snap.TasksExpired,
		Calibration:  snap.Calibration,
		Fingerprint:  snap.Fingerprint,
	})
}

// insightAgreementResponse is the body of GET /v1/insight/agreement.
type insightAgreementResponse struct {
	Agreement   insight.AgreementReport `json:"agreement"`
	Fingerprint string                  `json:"fingerprint"`
}

// handleInsightAgreement serves GET /v1/insight/agreement: tracked
// juror pairs by co-vote volume with agreement-above-chance z-scores.
// ?limit=N keeps the top-N pairs.
func (s *Server) handleInsightAgreement(w http.ResponseWriter, r *http.Request) {
	limit, err := insightLimit(r)
	if err != nil {
		s.fail(w, err)
		return
	}
	snap := s.insight.Snapshot()
	out := insightAgreementResponse{
		Agreement:   snap.Agreement,
		Fingerprint: snap.Fingerprint,
	}
	if limit > 0 && limit < len(out.Agreement.Pairs) {
		out.Agreement.Pairs = out.Agreement.Pairs[:limit]
	}
	writeJSON(w, http.StatusOK, out)
}
