package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"juryselect/internal/insight"
	"juryselect/internal/obs"
	"juryselect/jury"
)

// flatJurors returns a pool whose error rates are close enough that
// the JER-minimizing jury is a multi-juror majority — testJurors' best
// juror (ε 0.05) beats any majority over its steep spread, which would
// leave decided tasks with a single vote and no co-vote pairs.
func flatJurors(n int) []jury.Juror {
	out := make([]jury.Juror, n)
	for i := range out {
		out[i] = jury.Juror{
			ID:        fmt.Sprintf("p%03d", i),
			ErrorRate: 0.1 + 0.3*float64(i)/float64(n),
			Cost:      1,
		}
	}
	return out
}

// decideTask drives one task over HTTP to a unanimous verdict and
// returns its view. target_confidence 1 disables early stop, so every
// jury member votes — co-vote pairs need at least two votes per task.
func decideTask(t *testing.T, baseURL string) TaskResponse {
	t.Helper()
	var created TaskResponse
	doTaskJSON(t, http.MethodPost, baseURL+"/v1/tasks",
		map[string]any{"pool": "panel", "target_confidence": 1}, http.StatusCreated, &created)
	for _, j := range created.Task.Jurors {
		var view TaskResponse
		doTaskJSON(t, http.MethodPost, baseURL+"/v1/tasks/"+created.Task.ID+"/votes",
			map[string]any{"juror_id": j.ID, "vote": true}, http.StatusOK, &view)
		if view.Task.Verdict != nil {
			break
		}
	}
	return created
}

// TestInsightEndpoints drives tasks to verdicts over HTTP and checks the
// three /v1/insight views: juror profiles with live counters, calibration
// bins holding every decided task, and co-vote pairs — all stamped with
// one consistent fingerprint.
func TestInsightEndpoints(t *testing.T) {
	_, hs := newDurableTaskServer(t, Config{})
	decideTask(t, hs.URL)
	decideTask(t, hs.URL)

	var jr insightJurorsResponse
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/insight/jurors", nil, http.StatusOK, &jr)
	if jr.Total == 0 || len(jr.Jurors) != jr.Total {
		t.Fatalf("jurors = %+v", jr)
	}
	var votes int64
	for _, p := range jr.Jurors {
		votes += p.Votes
		if p.Invites == 0 {
			t.Errorf("juror %s has profile but no invites", p.ID)
		}
		if p.Votes > 0 && p.Latency.Count != p.Votes {
			t.Errorf("juror %s: %d votes but latency count %d", p.ID, p.Votes, p.Latency.Count)
		}
	}
	if votes == 0 {
		t.Fatal("no votes recorded across profiles")
	}

	var cal insightCalibrationResponse
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/insight/calibration", nil, http.StatusOK, &cal)
	if cal.TasksDecided != 2 || cal.Calibration.Overall.Total != 2 {
		t.Fatalf("calibration = %+v", cal)
	}
	if len(cal.Calibration.Overall.Bins) == 0 {
		t.Fatal("calibration has no occupied bins")
	}
	if _, ok := cal.Calibration.ByStrategy["altr"]; !ok {
		t.Fatalf("no altr strategy breakdown: %+v", cal.Calibration.ByStrategy)
	}
	if cal.Fingerprint != jr.Fingerprint {
		t.Errorf("fingerprint mismatch across endpoints: %s vs %s", cal.Fingerprint, jr.Fingerprint)
	}

	var ag insightAgreementResponse
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/insight/agreement", nil, http.StatusOK, &ag)
	if ag.Agreement.TrackedPairs == 0 || len(ag.Agreement.Pairs) != ag.Agreement.TrackedPairs {
		t.Fatalf("agreement = %+v", ag.Agreement)
	}
	// Unanimous yes votes: every tracked pair agreed every time.
	for _, p := range ag.Agreement.Pairs {
		if p.Rate != 1 {
			t.Errorf("pair %s/%s rate %g, want 1 (unanimous votes)", p.A, p.B, p.Rate)
		}
	}

	// ?limit truncates without changing the fingerprint or the total.
	var limited insightJurorsResponse
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/insight/jurors?limit=1", nil, http.StatusOK, &limited)
	if len(limited.Jurors) != 1 || limited.Total != jr.Total || limited.Fingerprint != jr.Fingerprint {
		t.Fatalf("limited jurors = %+v", limited)
	}
	var badLimit map[string]any
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/insight/jurors?limit=-1", nil, http.StatusBadRequest, &badLimit)

	// The /metrics insight block tracks the same counters.
	var m struct {
		Insight *insight.Stats `json:"insight"`
	}
	doTaskJSON(t, http.MethodGet, hs.URL+"/metrics", nil, http.StatusOK, &m)
	if m.Insight == nil || m.Insight.TasksDecided != 2 || m.Insight.Votes != votes {
		t.Fatalf("metrics insight block = %+v (want 2 decided, %d votes)", m.Insight, votes)
	}
}

// TestInsightNotConfigured: a server without an engine answers 404 on
// the insight routes, mirroring the task-store guard.
func TestInsightNotConfigured(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out map[string]any
	if st := do(t, http.MethodGet, ts.URL+"/v1/insight/calibration", nil, &out); st != http.StatusNotFound {
		t.Fatalf("status %d, want 404", st)
	}
}

// TestInsightPromSeries checks the Prometheus exposition carries the
// insight families with parseable, consistent values.
func TestInsightPromSeries(t *testing.T) {
	_, hs := newDurableTaskServer(t, Config{})
	decideTask(t, hs.URL)

	resp, err := http.Get(hs.URL + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for fam, typ := range map[string]string{
		"juryd_insight_events_total":              "counter",
		"juryd_insight_tasks_total":               "counter",
		"juryd_insight_jurors_tracked":            "gauge",
		"juryd_insight_pairs_tracked":             "gauge",
		"juryd_insight_calibration_samples_total": "counter",
		"juryd_insight_brier_score":               "gauge",
		"juryd_select_cache_hit_ratio":            "gauge",
		"juryd_select_cache_shard_entries":        "gauge",
	} {
		f, ok := fams[fam]
		if !ok {
			t.Errorf("missing family %s", fam)
			continue
		}
		if f.Type != typ {
			t.Errorf("family %s: type %s, want %s", fam, f.Type, typ)
		}
	}
	var decided float64
	for _, s := range fams["juryd_insight_tasks_total"].Samples {
		if s.Labels["outcome"] == "decided" {
			decided = s.Value
		}
	}
	if decided != 1 {
		t.Errorf("decided tasks series = %g, want 1", decided)
	}
	if n := len(fams["juryd_select_cache_shard_entries"].Samples); n != selectCacheShards {
		t.Errorf("shard entry series = %d, want %d", n, selectCacheShards)
	}
}

// TestSelectCacheDerivedMetrics pins the satellite: hit_ratio derives
// from the raw counters and shard_entries sums to entries.
func TestSelectCacheDerivedMetrics(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	if _, err := srv.Store().Put("crowd", testJurors(7)); err != nil {
		t.Fatal(err)
	}
	doJSON(t, ts.URL+"/v1/select", `{"pool":"crowd"}`, http.StatusOK)
	doJSON(t, ts.URL+"/v1/select", `{"pool":"crowd"}`, http.StatusOK)
	doJSON(t, ts.URL+"/v1/select", `{"pool":"crowd"}`, http.StatusOK)

	var m struct {
		SelectCache *selectCacheMetrics `json:"select_cache"`
	}
	if st := do(t, http.MethodGet, ts.URL+"/metrics", nil, &m); st != http.StatusOK {
		t.Fatalf("metrics status %d", st)
	}
	sc := m.SelectCache
	if sc == nil {
		t.Fatal("no select_cache block")
	}
	if sc.Hits != 2 || sc.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", sc.Hits, sc.Misses)
	}
	if want := 2.0 / 3.0; sc.HitRatio != want {
		t.Errorf("hit_ratio %g, want %g", sc.HitRatio, want)
	}
	sum := 0
	for _, n := range sc.ShardEntries {
		sum += n
	}
	if len(sc.ShardEntries) != selectCacheShards || sum != sc.Entries {
		t.Errorf("shard_entries %v (sum %d) vs entries %d", sc.ShardEntries, sum, sc.Entries)
	}
}

// TestDebugTracesTaskIDFilter pins the satellite: lifecycle requests
// carry their task ID in the captured trace, and ?task_id= isolates one
// task's requests.
func TestDebugTracesTaskIDFilter(t *testing.T) {
	_, hs := newDurableTaskServer(t, Config{TraceEvery: 1})
	first := decideTask(t, hs.URL)
	second := decideTask(t, hs.URL)
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/tasks/"+first.Task.ID, nil, http.StatusOK, nil)

	var out debugTracesResponse
	doTaskJSON(t, http.MethodGet, hs.URL+"/debug/traces?task_id="+first.Task.ID,
		nil, http.StatusOK, &out)
	if len(out.Traces) == 0 {
		t.Fatal("no traces for task_id filter")
	}
	sawEndpoints := map[string]bool{}
	for _, tr := range out.Traces {
		if tr.TaskID != first.Task.ID {
			t.Errorf("trace %d: task_id %q leaked through filter for %q", tr.ID, tr.TaskID, first.Task.ID)
		}
		sawEndpoints[tr.Endpoint] = true
	}
	for _, ep := range []string{"task_create", "task_vote", "task_get"} {
		if !sawEndpoints[ep] {
			t.Errorf("task lifecycle endpoint %s missing from filtered traces: %v", ep, sawEndpoints)
		}
	}

	// The filter composes with endpoint=.
	var votes debugTracesResponse
	doTaskJSON(t, http.MethodGet,
		hs.URL+"/debug/traces?task_id="+second.Task.ID+"&endpoint=task_vote",
		nil, http.StatusOK, &votes)
	if len(votes.Traces) == 0 {
		t.Fatal("no task_vote traces for second task")
	}
	for _, tr := range votes.Traces {
		if tr.Endpoint != "task_vote" || tr.TaskID != second.Task.ID {
			t.Errorf("trace = endpoint %q task %q, want task_vote on %q", tr.Endpoint, tr.TaskID, second.Task.ID)
		}
	}

	// Non-task traffic captures with no task ID attached.
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/select",
		map[string]string{"pool": "crowd"}, http.StatusOK, nil)
	var selects debugTracesResponse
	doTaskJSON(t, http.MethodGet, hs.URL+"/debug/traces?endpoint=select_miss",
		nil, http.StatusOK, &selects)
	for _, tr := range selects.Traces {
		if tr.TaskID != "" {
			t.Errorf("select trace carries task_id %q", tr.TaskID)
		}
	}
}

// jsonRoundTrip guards the Trace.TaskID wire shape: present on task
// traces, elided otherwise.
func TestTraceTaskIDElidedWhenEmpty(t *testing.T) {
	raw, err := json.Marshal(obs.Trace{ID: 1, Endpoint: "jer"})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["task_id"]; ok {
		t.Error("empty task_id should be elided from trace JSON")
	}
}
