package server

import (
	"fmt"
	"net/http"
	"time"
)

// requireLifecycle guards the timeline endpoints: without a lifecycle
// engine they do not exist, mirroring requireTasks and requireInsight.
func (s *Server) requireLifecycle(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.lifecycle == nil {
			s.fail(w, &httpError{status: http.StatusNotFound,
				msg: fmt.Sprintf("%s: lifecycle engine not configured", r.URL.Path)})
			return
		}
		h(w, r)
	}
}

// requireSLO guards GET /v1/slo.
func (s *Server) requireSLO(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.slo == nil {
			s.fail(w, &httpError{status: http.StatusNotFound,
				msg: fmt.Sprintf("%s: slo tracker not configured", r.URL.Path)})
			return
		}
		h(w, r)
	}
}

// handleTaskTimeline serves GET /v1/tasks/{id}/timeline: the task's
// reconstructed life as ordered spans, with durations, the pinned pool
// version, and the outcome. The rendering is deterministic in the
// event history, so the same request against a restarted juryd (whose
// engine was rebuilt from WAL replay) returns byte-identical JSON —
// the CI smoke compares exactly that.
func (s *Server) handleTaskTimeline(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	setTraceTask(w, id)
	tl, ok := s.lifecycle.Timeline(id)
	if !ok {
		s.fail(w, &httpError{status: http.StatusNotFound,
			msg: fmt.Sprintf("no timeline for task %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, tl)
}

// handleLifecycle serves GET /v1/lifecycle: aggregate time-to-verdict,
// time-to-first-vote and invite→vote distributions keyed by (strategy,
// outcome), plus the engine fingerprint.
func (s *Server) handleLifecycle(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.lifecycle.Snapshot())
}

// handleSLO serves GET /v1/slo: every objective's burn rates and alert
// state, evaluated at request time.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.slo.Snapshot(time.Now().UTC()))
}

// PollSLO feeds the http_5xx SLI from the server's cumulative
// per-endpoint counters: every non-ops request served since the last
// poll counts good, every non-ops 5xx counts bad. Ops endpoints are
// excluded so a draining /healthz returning 503 (the probe working as
// designed) cannot burn availability budget. cmd/juryd calls this on
// the SLO evaluation ticker; the request hot path carries no SLO
// bookkeeping at all.
func (s *Server) PollSLO() {
	if s.slo == nil {
		return
	}
	var served, bad int64
	for i := range s.eps {
		if endpoint(i).ops() {
			continue
		}
		served += s.eps[i].requests.Load()
		bad += s.eps[i].errors5xx.Load()
	}
	good := served - bad
	s.sloPoll.mu.Lock()
	dGood, dBad := good-s.sloPoll.good, bad-s.sloPoll.bad
	s.sloPoll.good, s.sloPoll.bad = good, bad
	s.sloPoll.mu.Unlock()
	// The requests counter increments at admission and errors5xx at
	// completion, so a poll can land between the two and momentarily
	// undercount one side; the next poll's delta absorbs it.
	if dGood < 0 {
		dGood = 0
	}
	if dBad < 0 {
		dBad = 0
	}
	s.slo.ObserveHTTP(dGood, dBad)
}
