package server

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"juryselect/internal/insight"
	"juryselect/internal/lifecycle"
	"juryselect/internal/tasks"
)

// newLifecycleServer builds a durable task server wired the way
// cmd/juryd wires it: insight and lifecycle engines share the store's
// event sink (attached before Open so replay would feed them too), the
// SLO tracker rides the lifecycle engine, and a watchdog watches the
// store.
func newLifecycleServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	ins := insight.New(0)
	lce := lifecycle.New(0)
	slo := lifecycle.NewSLO([]lifecycle.Objective{
		{Name: "availability", SLI: lifecycle.SLIHTTP5xx, Target: 0.999},
		{Name: "verdict-p99", SLI: lifecycle.SLIVerdictLatency, Target: 0.99,
			ThresholdNS: int64(time.Hour)},
	}, lifecycle.DefaultBurnWindows(), nil, slog.New(slog.DiscardHandler))
	lce.AttachSLO(slo)
	store, err := tasks.Open(tasks.Config{
		Dir: t.TempDir(), Sync: tasks.SyncAlways, Events: tasks.Sinks(ins, lce),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() }) //nolint:errcheck
	if _, err := store.PutPool("crowd", testJurors(7)); err != nil {
		t.Fatal(err)
	}
	srv := New(Config{
		Tasks: store, Insight: ins, Lifecycle: lce, SLO: slo,
		Watchdog: lifecycle.NewWatchdog(store, 0, time.Second),
	})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

// TestTimelineEndpoint drives one task to a verdict over HTTP and reads
// its reconstructed life back: ordered spans, the pinned pool version,
// the outcome, and a stable fingerprint (two reads render byte-identical
// JSON — the property the CI smoke compares across a kill -9 restart).
func TestTimelineEndpoint(t *testing.T) {
	_, hs := newLifecycleServer(t)
	var created TaskResponse
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks",
		map[string]string{"pool": "crowd"}, http.StatusCreated, &created)
	for _, j := range created.Task.Jurors {
		var tr TaskResponse
		doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks/"+created.Task.ID+"/votes",
			map[string]any{"juror_id": j.ID, "vote": true}, http.StatusOK, &tr)
		if tr.Task.Status != tasks.StatusOpen {
			break
		}
	}

	var tl lifecycle.Timeline
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/tasks/"+created.Task.ID+"/timeline",
		nil, http.StatusOK, &tl)
	if tl.Task != created.Task.ID || tl.Outcome != "decided" {
		t.Fatalf("timeline = %s/%s, want %s/decided", tl.Task, tl.Outcome, created.Task.ID)
	}
	if tl.PoolVersion == 0 || tl.Fingerprint == "" {
		t.Errorf("timeline missing provenance: version=%d fingerprint=%q", tl.PoolVersion, tl.Fingerprint)
	}
	if len(tl.Spans) < 2 || tl.Spans[0].Kind != "create" || tl.Spans[len(tl.Spans)-1].Kind != "close" {
		t.Errorf("spans = %+v, want create..close", tl.Spans)
	}
	if tl.Votes == 0 || tl.TimeToVerdictNS < 0 {
		t.Errorf("votes=%d ttv=%d, want a decided task's counts", tl.Votes, tl.TimeToVerdictNS)
	}

	// Unknown task: 404 from the handler, not an empty timeline.
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/tasks/nope/timeline", nil, http.StatusNotFound, nil)

	// Rendering is deterministic: a second read returns identical bytes.
	read := func() []byte {
		resp, err := http.Get(hs.URL + "/v1/tasks/" + created.Task.ID + "/timeline")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := read(), read(); !bytes.Equal(a, b) {
		t.Errorf("timeline not deterministic:\n%s\n%s", a, b)
	}

	// The aggregate view folds the closed task under its strategy.
	var snap lifecycle.Snapshot
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/lifecycle", nil, http.StatusOK, &snap)
	if snap.TasksDecided != 1 || len(snap.Aggregates) == 0 || snap.Fingerprint == "" {
		t.Errorf("lifecycle snapshot = %+v, want one decided task with aggregates", snap)
	}

	// The SLO tracker saw the verdict through the lifecycle engine.
	var sloSnap lifecycle.SLOSnapshot
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/slo", nil, http.StatusOK, &sloSnap)
	for _, o := range sloSnap.Objectives {
		if o.SLI == lifecycle.SLIVerdictLatency && o.Good+o.Bad != 1 {
			t.Errorf("verdict objective saw %d/%d events, want 1 total", o.Good, o.Bad)
		}
	}
}

// TestLifecycleEndpointsRequireEngine pins the guard: without a
// lifecycle engine or SLO tracker the routes do not exist.
func TestLifecycleEndpointsRequireEngine(t *testing.T) {
	_, hs := newDurableTaskServer(t, Config{})
	for _, path := range []string{"/v1/tasks/t00000000/timeline", "/v1/lifecycle", "/v1/slo"} {
		doTaskJSON(t, http.MethodGet, hs.URL+path, nil, http.StatusNotFound, nil)
	}
}

// TestHealthzStallBlock checks the watchdog surface: a healthy store
// reports a stall block with healthy=true; servers without a watchdog
// omit it.
func TestHealthzStallBlock(t *testing.T) {
	_, hs := newLifecycleServer(t)
	var h struct {
		Status string                 `json:"status"`
		Stall  *lifecycle.StallReport `json:"stall"`
	}
	doTaskJSON(t, http.MethodGet, hs.URL+"/healthz", nil, http.StatusOK, &h)
	if h.Stall == nil || !h.Stall.Healthy || h.Status != "ok" {
		t.Fatalf("healthz = %+v, want healthy stall block", h)
	}

	_, plain := newTestServer(t, Config{})
	var h2 map[string]any
	if st := do(t, http.MethodGet, plain.URL+"/healthz", nil, &h2); st != http.StatusOK {
		t.Fatalf("healthz status %d", st)
	}
	if _, ok := h2["stall"]; ok {
		t.Error("healthz without a watchdog should omit the stall block")
	}
}

// TestPollSLOCountsOnlyNonOpsTraffic feeds the http_5xx SLI straight
// from the endpoint counters and checks the ops exclusion: probe and
// scrape traffic (including a draining healthz 503) never burns
// availability budget.
func TestPollSLOCountsOnlyNonOpsTraffic(t *testing.T) {
	slo := lifecycle.NewSLO([]lifecycle.Objective{
		{Name: "availability", SLI: lifecycle.SLIHTTP5xx, Target: 0.999},
	}, lifecycle.DefaultBurnWindows(), nil, slog.New(slog.DiscardHandler))
	s := New(Config{SLO: slo})

	s.eps[epPoolList].requests.Add(3)
	s.eps[epSelectMiss].requests.Add(2)
	s.eps[epSelectMiss].errors5xx.Add(1)
	s.eps[epOpsHealthz].requests.Add(50)
	s.eps[epOpsHealthz].errors5xx.Add(50) // draining probes: all 503
	s.PollSLO()

	st := slo.Evaluate(time.Now().UTC())[0]
	if st.Good != 4 || st.Bad != 1 {
		t.Fatalf("availability saw %d/%d, want 4 good / 1 bad (ops excluded)", st.Good, st.Bad)
	}

	// A second poll with no new traffic adds nothing.
	s.PollSLO()
	st = slo.Evaluate(time.Now().UTC())[0]
	if st.Good != 4 || st.Bad != 1 {
		t.Fatalf("idle poll moved totals to %d/%d", st.Good, st.Bad)
	}
}

// TestOpsEndpointsInstrumented pins satellite 1: the four ops routes
// book under their own endpoint group with live latency histograms.
func TestOpsEndpointsInstrumented(t *testing.T) {
	_, hs := newDurableTaskServer(t, Config{})
	for _, path := range []string{"/healthz", "/metrics", "/metrics/prometheus", "/debug/traces"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var m struct {
		Endpoints map[string]endpointStats `json:"endpoints"`
	}
	doTaskJSON(t, http.MethodGet, hs.URL+"/metrics", nil, http.StatusOK, &m)
	for _, name := range []string{"ops_healthz", "ops_metrics", "ops_metrics_prom", "ops_debug_traces"} {
		st := m.Endpoints[name]
		if st.Requests == 0 || st.Latency.Count == 0 {
			t.Errorf("endpoint %s: requests=%d latency.count=%d, want instrumented",
				name, st.Requests, st.Latency.Count)
		}
	}
}
