package server

import (
	"expvar"
	"net/http"
	"runtime"
	"runtime/debug"
	runtimemetrics "runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"juryselect/internal/insight"
	"juryselect/internal/lifecycle"
	"juryselect/internal/obs"
)

// metrics holds the server's counters: expvar vars owned by the Server
// rather than published to the process-global expvar registry, so many
// servers can coexist in one process (tests, embedded uses). /metrics
// serves them as one JSON document, folding in the engine's counters as
// gauges at scrape time.
type metrics struct {
	requests     expvar.Int // HTTP requests accepted by any /v1 handler
	selections   expvar.Int // successful select items (single + batch)
	batchSelects expvar.Int // successful /v1/select/batch responses
	jerServed    expvar.Int // successful /v1/jer responses
	poolWrites   expvar.Int // successful pool PUT/PATCH/DELETE
	taskCreates  expvar.Int // successful POST /v1/tasks
	taskVotes    expvar.Int // successful votes/declines (single + batch)
	batchVotes   expvar.Int // successful /v1/tasks/{id}/votes/batch responses
	taskVerdicts expvar.Int // votes that closed a task with a verdict
	shed         expvar.Int // requests rejected 429 by admission control
	errors       expvar.Int // 5xx responses (sheds count only under shed)

	queued   atomic.Int64 // requests waiting for an inflight slot
	draining atomic.Bool  // drain signal for /healthz
}

// healthResponse is the body of GET /healthz. The WAL fields appear
// only when the server fronts a task store: commit-queue depth is the
// early congestion signal (records appended but not yet durable), and
// the last-recovery duration tells an operator what a restart costs.
type healthResponse struct {
	Status   string `json:"status"` // "ok" or "draining"
	Pools    int    `json:"pools"`
	Inflight int    `json:"inflight"`
	Queued   int    `json:"queued"`

	WALCommitQueueDepth *int64 `json:"wal_commit_queue_depth,omitempty"`
	LastRecoveryNS      *int64 `json:"last_recovery_ns,omitempty"`

	// Stall is the sweep watchdog's verdict, present when one is
	// configured: tasks stuck past their juror timeout with no sweeper
	// progress flip Status to "degraded" (still 200 — the process serves;
	// an operator should look at the sweeper).
	Stall *lifecycle.StallReport `json:"stall,omitempty"`
}

// handleHealthz serves GET /healthz: 200 while serving, 503 once the
// process is draining, so load balancers stop routing new work while
// in-flight requests finish.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{
		Status:   "ok",
		Pools:    s.store.Len(),
		Inflight: len(s.sem),
		Queued:   int(s.m.queued.Load()),
	}
	if s.tasks != nil {
		depth := s.tasks.Stats().WAL.QueueDepth
		recovery := s.tasks.Recovery().Duration.Nanoseconds()
		resp.WALCommitQueueDepth = &depth
		resp.LastRecoveryNS = &recovery
	}
	if s.watchdog != nil {
		rep := s.watchdog.Check(time.Now().UTC())
		resp.Stall = &rep
		if !rep.Healthy {
			resp.Status = "degraded"
		}
	}
	status := http.StatusOK
	if s.m.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// metricsResponse is the body of GET /metrics: the server counters plus
// the engine's evaluation/cache/inflight gauges (Engine.CacheStats and
// Stats), and the admission-control occupancy.
type metricsResponse struct {
	Requests     int64 `json:"requests"`
	Selections   int64 `json:"selections"`
	BatchSelects int64 `json:"batch_selects"`
	JERServed    int64 `json:"jer_served"`
	PoolWrites   int64 `json:"pool_writes"`
	BatchVotes   int64 `json:"batch_votes"`
	Shed         int64 `json:"shed"`
	// Errors counts 5xx responses. Before PR 8 it also counted 429
	// sheds, double-booking them against Shed; now a response is either
	// shed or an error, never both. Errors4xx/Errors5xx split the
	// client/server halves (4xx excludes 429).
	Errors    int64 `json:"errors"`
	Errors4xx int64 `json:"errors_4xx"`
	Errors5xx int64 `json:"errors_5xx"`

	Inflight    int   `json:"inflight"`
	MaxInflight int   `json:"max_inflight"`
	Queued      int64 `json:"queued"`
	MaxQueue    int   `json:"max_queue"`

	EngineEvaluations int64 `json:"engine_evaluations"`
	EngineCacheHits   int64 `json:"engine_cache_hits"`
	EngineInflight    int64 `json:"engine_inflight"`
	EngineWorkers     int   `json:"engine_workers"`

	Pools int `json:"pools"`

	// SelectCache reports the version-keyed selection cache's counters
	// when the cache is enabled; omitted otherwise.
	SelectCache *selectCacheMetrics `json:"select_cache,omitempty"`

	// Tasks reports the task-store gauges and WAL counters when the
	// server fronts a task store; omitted otherwise.
	Tasks *taskMetrics `json:"tasks,omitempty"`

	// Insight reports the decision-quality analytics counters when an
	// insight engine is attached; omitted otherwise. Counters only — the
	// full profiles/diagrams live behind /v1/insight/*.
	Insight *insight.Stats `json:"insight,omitempty"`

	// Lifecycle reports the timeline engine's counters when one is
	// attached; omitted otherwise. Counters only — full timelines and
	// aggregates live behind /v1/tasks/{id}/timeline and /v1/lifecycle.
	Lifecycle *lifecycle.Stats `json:"lifecycle,omitempty"`

	// SLO reports every objective's burn rates and alert state, evaluated
	// at scrape time; omitted when no tracker is configured.
	SLO *lifecycle.SLOSnapshot `json:"slo,omitempty"`

	// Endpoints maps every instrumented route to its request/error
	// counts and latency summary; Stages maps each internal request
	// stage (queue wait, decode, engine, WAL wait, …) to its latency
	// summary across all requests that passed through it.
	Endpoints map[string]endpointStats `json:"endpoints"`
	Stages    map[string]obs.Summary   `json:"stages"`

	// Runtime is the process block: scheduler and heap gauges.
	Runtime runtimeStats `json:"runtime"`

	// Build identifies the running binary; UptimeSeconds is the age of
	// this Server (and in juryd, of the process — one Server per process).
	Build         buildStats `json:"build"`
	UptimeSeconds float64    `json:"uptime_seconds"`
}

// buildStats identifies the binary serving the metrics: module version,
// Go runtime, and the VCS revision stamped by `go build` when the
// module was built inside a checkout.
type buildStats struct {
	Version     string `json:"version"`
	GoVersion   string `json:"go_version"`
	VCSRevision string `json:"vcs_revision"`
	VCSModified bool   `json:"vcs_modified"`
}

// buildInfo reads the binary's embedded build metadata once; the
// per-scrape cost is a struct copy.
var buildInfo = sync.OnceValue(func() buildStats {
	b := buildStats{
		Version:     "unknown",
		GoVersion:   runtime.Version(),
		VCSRevision: "unknown",
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if bi.Main.Version != "" {
		b.Version = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			b.VCSRevision = kv.Value
		case "vcs.modified":
			b.VCSModified = kv.Value == "true"
		}
	}
	return b
})

// endpointStats is one endpoint's JSON block.
type endpointStats struct {
	Requests  int64       `json:"requests"`
	Errors4xx int64       `json:"errors_4xx"`
	Errors5xx int64       `json:"errors_5xx"`
	Latency   obs.Summary `json:"latency"`
}

// runtimeStats is the process-level block of /metrics.
type runtimeStats struct {
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	NumGC          uint32  `json:"num_gc"`
	GCPauseP99NS   float64 `json:"gc_pause_p99_ns"`
}

// selectCacheMetrics is the selection cache's observability block.
// Hits counts probes served from a resident entry, Misses counts
// computations actually performed (flight leaders), Collapsed counts
// requests that joined another request's in-flight computation instead
// of recomputing — the stampedes the singleflight absorbed.
type selectCacheMetrics struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Collapsed int64 `json:"collapsed"`
	Entries   int   `json:"entries"`
	// HitRatio is hits / (hits + misses + collapsed) — the fraction of
	// probes that skipped the engine entirely; 0 before any probe.
	HitRatio float64 `json:"hit_ratio"`
	// ShardEntries is the resident entry count per cache shard. A skewed
	// distribution means hot pools are hashing onto one shard's LRU.
	ShardEntries []int `json:"shard_entries"`
}

// taskMetrics is the durable task subsystem's observability block: the
// lifecycle gauges (how many tasks sit in each state) and the
// write-ahead-log counters (append volume, group-commit fsync latency,
// and what the last boot replayed).
type taskMetrics struct {
	Open          int   `json:"open"`
	AwaitingVotes int   `json:"awaiting_votes"`
	Decided       int   `json:"decided"`
	Expired       int   `json:"expired"`
	Creates       int64 `json:"creates"`
	Votes         int64 `json:"votes"`
	Verdicts      int64 `json:"verdicts"`

	WALAppends       int64 `json:"wal_appends"`
	WALFsyncs        int64 `json:"wal_fsyncs"`
	WALFsyncP99NS    int64 `json:"wal_fsync_p99_ns"`
	WALReplayRecords int64 `json:"wal_replay_records"`
	WALCompactions   int64 `json:"wal_compactions"`
	// WALFsync and WALDurableWait summarize the full latency
	// distributions behind WALFsyncP99NS (which is kept for dashboard
	// compatibility, now derived from WALFsync): the fsync call itself,
	// and the append→durable wait a writer experiences.
	WALFsync       obs.Summary `json:"wal_fsync"`
	WALDurableWait obs.Summary `json:"wal_durable_wait"`

	// Write-path concurrency health (PR 7): Shards is the configured
	// shard count and ShardContention the running count of mutations
	// that found their shard's mutex held — near zero when traffic
	// spreads across tasks, climbing when it piles onto one.
	Shards          int   `json:"shards"`
	ShardContention int64 `json:"shard_contention"`
	// WALCommitQueueDepth is the pipelined committer's backlog (records
	// appended but not yet durable) at scrape time.
	WALCommitQueueDepth int64 `json:"wal_commit_queue_depth"`
	// WALFsyncBatchHist buckets records acknowledged per fsync: bucket
	// i counts fsyncs covering ≤ 2^i records, last bucket open-ended.
	// Load concentrating in bucket 0 means the group commit is not
	// grouping.
	WALFsyncBatchHist []int64 `json:"wal_fsync_batch_hist"`
	// WALReplayNS is the wall-clock cost of the last boot's recovery
	// (snapshot load + replay).
	WALReplayNS int64 `json:"wal_replay_ns"`
}

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	var tm *taskMetrics
	if s.tasks != nil {
		ts := s.tasks.Stats()
		tm = &taskMetrics{
			Open:             ts.Open,
			AwaitingVotes:    ts.AwaitingVotes,
			Decided:          ts.Decided,
			Expired:          ts.Expired,
			Creates:          s.m.taskCreates.Value(),
			Votes:            s.m.taskVotes.Value(),
			Verdicts:         s.m.taskVerdicts.Value(),
			WALAppends:       ts.WAL.Appends,
			WALFsyncs:        ts.WAL.Fsyncs,
			WALFsyncP99NS:    ts.WAL.FsyncP99NS,
			WALReplayRecords: ts.WAL.ReplayRecords,
			WALCompactions:   ts.Compactions,

			Shards:              ts.Shards,
			ShardContention:     ts.ShardContention,
			WALCommitQueueDepth: ts.WAL.QueueDepth,
			WALFsyncBatchHist:   ts.WAL.FsyncBatchSizes[:],
			WALReplayNS:         s.tasks.Recovery().Duration.Nanoseconds(),
		}
		tm.WALFsync = ts.WAL.FsyncHist.Summary()
		tm.WALDurableWait = ts.WAL.DurableWaitHist.Summary()
	}
	var cm *selectCacheMetrics
	if s.cache != nil {
		shardLens := s.cache.shardLens()
		entries := 0
		for _, n := range shardLens {
			entries += n
		}
		cm = &selectCacheMetrics{
			Hits:         s.cache.hits.Load(),
			Misses:       s.cache.misses.Load(),
			Collapsed:    s.cache.collapsed.Load(),
			Entries:      entries,
			ShardEntries: shardLens,
		}
		if probes := cm.Hits + cm.Misses + cm.Collapsed; probes > 0 {
			cm.HitRatio = float64(cm.Hits) / float64(probes)
		}
	}
	var im *insight.Stats
	if s.insight != nil {
		st := s.insight.Stats()
		im = &st
	}
	var lm *lifecycle.Stats
	if s.lifecycle != nil {
		st := s.lifecycle.Stats()
		lm = &st
	}
	var sloSnap *lifecycle.SLOSnapshot
	if s.slo != nil {
		sloSnap = s.slo.Snapshot(time.Now().UTC())
	}
	eps := make(map[string]endpointStats, int(numEndpoints))
	var errors4xx, errors5xx int64
	for i := range s.eps {
		em := &s.eps[i]
		e4, e5 := em.errors4xx.Load(), em.errors5xx.Load()
		errors4xx += e4
		errors5xx += e5
		snap := em.lat.Snapshot()
		eps[endpointNames[i]] = endpointStats{
			Requests:  em.requests.Load(),
			Errors4xx: e4,
			Errors5xx: e5,
			Latency:   snap.Summary(),
		}
	}
	stages := make(map[string]obs.Summary, obs.NumStages)
	for i := range s.stages {
		snap := s.stages[i].Snapshot()
		stages[obs.Stage(i).String()] = snap.Summary()
	}
	writeJSON(w, http.StatusOK, metricsResponse{
		Requests:          s.m.requests.Value(),
		Selections:        s.m.selections.Value(),
		BatchSelects:      s.m.batchSelects.Value(),
		JERServed:         s.m.jerServed.Value(),
		PoolWrites:        s.m.poolWrites.Value(),
		BatchVotes:        s.m.batchVotes.Value(),
		Shed:              s.m.shed.Value(),
		Errors:            s.m.errors.Value(),
		Errors4xx:         errors4xx,
		Errors5xx:         errors5xx,
		Inflight:          len(s.sem),
		MaxInflight:       s.maxInflight,
		Queued:            s.m.queued.Load(),
		MaxQueue:          s.maxQueue,
		EngineEvaluations: st.Evaluations,
		EngineCacheHits:   st.CacheHits,
		EngineInflight:    st.Inflight,
		EngineWorkers:     s.eng.Workers(),
		Pools:             s.store.Len(),
		SelectCache:       cm,
		Tasks:             tm,
		Insight:           im,
		Lifecycle:         lm,
		SLO:               sloSnap,
		Endpoints:         eps,
		Stages:            stages,
		Runtime:           sampleRuntime(),
		Build:             buildInfo(),
		UptimeSeconds:     time.Since(s.start).Seconds(),
	})
}

// gcPauses reads the runtime's GC pause histogram (seconds).
func gcPauses() *runtimemetrics.Float64Histogram {
	samples := []runtimemetrics.Sample{{Name: "/gc/pauses:seconds"}}
	runtimemetrics.Read(samples)
	if samples[0].Value.Kind() != runtimemetrics.KindFloat64Histogram {
		return nil
	}
	return samples[0].Value.Float64Histogram()
}

// float64HistQuantile estimates the q-quantile of a runtime/metrics
// histogram by cumulative bucket walk, returning the matched bucket's
// upper bound (or the last finite bound for the top bucket).
func float64HistQuantile(h *runtimemetrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	lastFinite := 0.0
	for i, c := range h.Counts {
		cum += c
		var hi float64
		if i+1 < len(h.Buckets) {
			hi = h.Buckets[i+1]
		}
		if hi > 0 && hi < maxFiniteBound {
			lastFinite = hi
		}
		if cum >= target {
			if hi >= maxFiniteBound || hi == 0 {
				return lastFinite
			}
			return hi
		}
	}
	return lastFinite
}

const maxFiniteBound = 1e300

// sampleRuntime collects the process gauges for /metrics.
func sampleRuntime() runtimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return runtimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		NumGC:          ms.NumGC,
		GCPauseP99NS:   float64HistQuantile(gcPauses(), 0.99) * 1e9,
	}
}
