package server

import (
	"expvar"
	"net/http"
	"sync/atomic"
)

// metrics holds the server's counters: expvar vars owned by the Server
// rather than published to the process-global expvar registry, so many
// servers can coexist in one process (tests, embedded uses). /metrics
// serves them as one JSON document, folding in the engine's counters as
// gauges at scrape time.
type metrics struct {
	requests     expvar.Int // HTTP requests accepted by any /v1 handler
	selections   expvar.Int // successful select items (single + batch)
	batchSelects expvar.Int // successful /v1/select/batch responses
	jerServed    expvar.Int // successful /v1/jer responses
	poolWrites   expvar.Int // successful pool PUT/PATCH/DELETE
	taskCreates  expvar.Int // successful POST /v1/tasks
	taskVotes    expvar.Int // successful votes/declines (single + batch)
	batchVotes   expvar.Int // successful /v1/tasks/{id}/votes/batch responses
	taskVerdicts expvar.Int // votes that closed a task with a verdict
	shed         expvar.Int // requests rejected 429 by admission control
	errors       expvar.Int // 5xx and 429 responses

	queued   atomic.Int64 // requests waiting for an inflight slot
	draining atomic.Bool  // drain signal for /healthz
}

// healthResponse is the body of GET /healthz.
type healthResponse struct {
	Status   string `json:"status"` // "ok" or "draining"
	Pools    int    `json:"pools"`
	Inflight int    `json:"inflight"`
	Queued   int    `json:"queued"`
}

// handleHealthz serves GET /healthz: 200 while serving, 503 once the
// process is draining, so load balancers stop routing new work while
// in-flight requests finish.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{
		Status:   "ok",
		Pools:    s.store.Len(),
		Inflight: len(s.sem),
		Queued:   int(s.m.queued.Load()),
	}
	status := http.StatusOK
	if s.m.draining.Load() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// metricsResponse is the body of GET /metrics: the server counters plus
// the engine's evaluation/cache/inflight gauges (Engine.CacheStats and
// Stats), and the admission-control occupancy.
type metricsResponse struct {
	Requests     int64 `json:"requests"`
	Selections   int64 `json:"selections"`
	BatchSelects int64 `json:"batch_selects"`
	JERServed    int64 `json:"jer_served"`
	PoolWrites   int64 `json:"pool_writes"`
	BatchVotes   int64 `json:"batch_votes"`
	Shed         int64 `json:"shed"`
	Errors       int64 `json:"errors"`

	Inflight    int   `json:"inflight"`
	MaxInflight int   `json:"max_inflight"`
	Queued      int64 `json:"queued"`
	MaxQueue    int   `json:"max_queue"`

	EngineEvaluations int64 `json:"engine_evaluations"`
	EngineCacheHits   int64 `json:"engine_cache_hits"`
	EngineInflight    int64 `json:"engine_inflight"`
	EngineWorkers     int   `json:"engine_workers"`

	Pools int `json:"pools"`

	// SelectCache reports the version-keyed selection cache's counters
	// when the cache is enabled; omitted otherwise.
	SelectCache *selectCacheMetrics `json:"select_cache,omitempty"`

	// Tasks reports the task-store gauges and WAL counters when the
	// server fronts a task store; omitted otherwise.
	Tasks *taskMetrics `json:"tasks,omitempty"`
}

// selectCacheMetrics is the selection cache's observability block.
// Hits counts probes served from a resident entry, Misses counts
// computations actually performed (flight leaders), Collapsed counts
// requests that joined another request's in-flight computation instead
// of recomputing — the stampedes the singleflight absorbed.
type selectCacheMetrics struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Collapsed int64 `json:"collapsed"`
	Entries   int   `json:"entries"`
}

// taskMetrics is the durable task subsystem's observability block: the
// lifecycle gauges (how many tasks sit in each state) and the
// write-ahead-log counters (append volume, group-commit fsync latency,
// and what the last boot replayed).
type taskMetrics struct {
	Open          int   `json:"open"`
	AwaitingVotes int   `json:"awaiting_votes"`
	Decided       int   `json:"decided"`
	Expired       int   `json:"expired"`
	Creates       int64 `json:"creates"`
	Votes         int64 `json:"votes"`
	Verdicts      int64 `json:"verdicts"`

	WALAppends       int64 `json:"wal_appends"`
	WALFsyncs        int64 `json:"wal_fsyncs"`
	WALFsyncP99NS    int64 `json:"wal_fsync_p99_ns"`
	WALReplayRecords int64 `json:"wal_replay_records"`
	WALCompactions   int64 `json:"wal_compactions"`

	// Write-path concurrency health (PR 7): Shards is the configured
	// shard count and ShardContention the running count of mutations
	// that found their shard's mutex held — near zero when traffic
	// spreads across tasks, climbing when it piles onto one.
	Shards          int   `json:"shards"`
	ShardContention int64 `json:"shard_contention"`
	// WALCommitQueueDepth is the pipelined committer's backlog (records
	// appended but not yet durable) at scrape time.
	WALCommitQueueDepth int64 `json:"wal_commit_queue_depth"`
	// WALFsyncBatchHist buckets records acknowledged per fsync: bucket
	// i counts fsyncs covering ≤ 2^i records, last bucket open-ended.
	// Load concentrating in bucket 0 means the group commit is not
	// grouping.
	WALFsyncBatchHist []int64 `json:"wal_fsync_batch_hist"`
	// WALReplayNS is the wall-clock cost of the last boot's recovery
	// (snapshot load + replay).
	WALReplayNS int64 `json:"wal_replay_ns"`
}

// handleMetrics serves GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.eng.Stats()
	var tm *taskMetrics
	if s.tasks != nil {
		ts := s.tasks.Stats()
		tm = &taskMetrics{
			Open:             ts.Open,
			AwaitingVotes:    ts.AwaitingVotes,
			Decided:          ts.Decided,
			Expired:          ts.Expired,
			Creates:          s.m.taskCreates.Value(),
			Votes:            s.m.taskVotes.Value(),
			Verdicts:         s.m.taskVerdicts.Value(),
			WALAppends:       ts.WAL.Appends,
			WALFsyncs:        ts.WAL.Fsyncs,
			WALFsyncP99NS:    ts.WAL.FsyncP99NS,
			WALReplayRecords: ts.WAL.ReplayRecords,
			WALCompactions:   ts.Compactions,

			Shards:              ts.Shards,
			ShardContention:     ts.ShardContention,
			WALCommitQueueDepth: ts.WAL.QueueDepth,
			WALFsyncBatchHist:   ts.WAL.FsyncBatchSizes[:],
			WALReplayNS:         s.tasks.Recovery().Duration.Nanoseconds(),
		}
	}
	var cm *selectCacheMetrics
	if s.cache != nil {
		cm = &selectCacheMetrics{
			Hits:      s.cache.hits.Load(),
			Misses:    s.cache.misses.Load(),
			Collapsed: s.cache.collapsed.Load(),
			Entries:   s.cache.len(),
		}
	}
	writeJSON(w, http.StatusOK, metricsResponse{
		Requests:          s.m.requests.Value(),
		Selections:        s.m.selections.Value(),
		BatchSelects:      s.m.batchSelects.Value(),
		JERServed:         s.m.jerServed.Value(),
		PoolWrites:        s.m.poolWrites.Value(),
		BatchVotes:        s.m.batchVotes.Value(),
		Shed:              s.m.shed.Value(),
		Errors:            s.m.errors.Value(),
		Inflight:          len(s.sem),
		MaxInflight:       s.maxInflight,
		Queued:            s.m.queued.Load(),
		MaxQueue:          s.maxQueue,
		EngineEvaluations: st.Evaluations,
		EngineCacheHits:   st.CacheHits,
		EngineInflight:    st.Inflight,
		EngineWorkers:     s.eng.Workers(),
		Pools:             s.store.Len(),
		SelectCache:       cm,
		Tasks:             tm,
	})
}
