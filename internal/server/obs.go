package server

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"juryselect/internal/obs"
)

// endpoint identifies one instrumented route for per-endpoint counters
// and latency histograms. A warm select (served from the version-keyed
// response cache) is its own endpoint: it is two orders of magnitude
// cheaper than a miss, and folding both into one histogram would bury
// the miss tail under the warm flood.
type endpoint uint8

const (
	epJER endpoint = iota
	epSelectMiss
	epSelectWarm
	epSelectBatch
	epPoolList
	epPoolGet
	epPoolPut
	epPoolPatch
	epPoolDelete
	epTaskCreate
	epTaskList
	epTaskGet
	epTaskVote
	epTaskVoteBatch
	epInsightJurors
	epInsightCalibration
	epInsightAgreement
	epTaskTimeline
	epLifecycle
	epSLO

	// Ops endpoints form their own group at the end of the enum: they
	// are instrumented like any other route, but the http_5xx SLI
	// excludes them (a 503 from a draining /healthz is the probe doing
	// its job, not an availability failure). epOpsFirst marks the
	// boundary the SLI poll tests against.
	epOpsHealthz
	epOpsMetrics
	epOpsMetricsProm
	epOpsDebugTraces

	numEndpoints

	epOpsFirst = epOpsHealthz
)

var endpointNames = [numEndpoints]string{
	"jer", "select_miss", "select_warm", "select_batch",
	"pool_list", "pool_get", "pool_put", "pool_patch", "pool_delete",
	"task_create", "task_list", "task_get", "task_vote", "task_vote_batch",
	"insight_jurors", "insight_calibration", "insight_agreement",
	"task_timeline", "lifecycle", "slo",
	"ops_healthz", "ops_metrics", "ops_metrics_prom", "ops_debug_traces",
}

// ops reports whether the endpoint belongs to the operational group
// (health probes, scrapes, trace dumps).
func (e endpoint) ops() bool { return e >= epOpsFirst && e < numEndpoints }

func (e endpoint) String() string {
	if int(e) < len(endpointNames) {
		return endpointNames[e]
	}
	return "unknown"
}

// endpointMetrics is one endpoint's always-on observability: request and
// error counts plus the full latency distribution. Everything is
// atomics — scrapes never contend with the serving path.
type endpointMetrics struct {
	requests  atomic.Int64
	errors4xx atomic.Int64
	errors5xx atomic.Int64
	lat       obs.Histogram
}

// reqWriter wraps the ResponseWriter for one instrumented request: it
// captures the response status and carries the request's span recorder.
// Writers are pooled and every field is either reset or overwritten per
// request, so the instrumented path allocates nothing.
type reqWriter struct {
	http.ResponseWriter
	srv         *Server
	tr          obs.Trace
	last        time.Time // previous stage mark; spans are contiguous segments
	ep          endpoint
	status      int
	wroteHeader bool
	sampled     bool // chosen by 1-in-N sampling for the trace ring
}

var reqWriterPool = sync.Pool{New: func() any {
	return &reqWriter{tr: obs.Trace{Spans: make([]obs.Span, 0, obs.MaxSpans)}}
}}

func (rw *reqWriter) WriteHeader(code int) {
	if !rw.wroteHeader {
		rw.status = code
		rw.wroteHeader = true
	}
	rw.ResponseWriter.WriteHeader(code)
}

func (rw *reqWriter) Write(b []byte) (int, error) {
	rw.wroteHeader = true
	return rw.ResponseWriter.Write(b)
}

// instrument wraps a handler with the request counter, the per-endpoint
// latency histogram, stage recording, and trace capture. The wrapped
// handler sees a *reqWriter; stage marks reach it via the mark helper.
func (s *Server) instrument(ep endpoint, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.m.requests.Add(1)
		rw := reqWriterPool.Get().(*reqWriter)
		rw.ResponseWriter = w
		rw.srv = s
		rw.ep = ep
		rw.status = http.StatusOK
		rw.wroteHeader = false
		rw.tr.Reset()
		now := time.Now()
		rw.tr.Start = now
		rw.last = now
		rw.sampled = s.traceEvery > 0 && s.traceSeq.Add(1)%int64(s.traceEvery) == 0
		h(rw, r)
		rw.finish()
		rw.ResponseWriter = nil
		rw.srv = nil
		reqWriterPool.Put(rw)
	}
}

// finish folds the completed request into the metrics and, when sampled
// or slow, into the trace ring.
func (rw *reqWriter) finish() {
	s := rw.srv
	durNS := time.Since(rw.tr.Start).Nanoseconds()
	em := &s.eps[rw.ep]
	em.requests.Add(1)
	em.lat.Observe(durNS)
	switch {
	case rw.status >= 500:
		em.errors5xx.Add(1)
		s.m.errors.Add(1)
	case rw.status == http.StatusTooManyRequests:
		// Shed is its own counter, incremented where the shed decision is
		// made (admit); counting it again here as a client error would
		// repeat the double-count this split removes.
	case rw.status >= 400:
		em.errors4xx.Add(1)
	}
	for _, sp := range rw.tr.Spans {
		s.stages[sp.Stage].Observe(sp.DurNS)
	}
	slow := s.slowNS > 0 && durNS >= s.slowNS
	if !rw.sampled && !slow {
		return
	}
	rw.tr.ID = s.traceTotal.Add(1)
	rw.tr.Endpoint = endpointNames[rw.ep]
	rw.tr.Status = rw.status
	rw.tr.DurNS = durNS
	s.ring.Capture(&rw.tr)
	if slow && s.logger != nil {
		s.logger.Warn("slow request",
			"endpoint", endpointNames[rw.ep],
			"status", rw.status,
			"dur_ms", durNS/1e6,
			"trace_id", rw.tr.ID,
		)
	}
}

// mark records a stage segment: the time since the previous mark (or
// the request start) is attributed to st. A no-op for un-instrumented
// writers (benchmark harnesses calling handlers directly).
func mark(w http.ResponseWriter, st obs.Stage) {
	rw, ok := w.(*reqWriter)
	if !ok {
		return
	}
	now := time.Now()
	rw.tr.Add(st, now.Sub(rw.last).Nanoseconds())
	rw.last = now
}

// setEndpoint reclassifies the request mid-flight — a select that hit
// the response cache books under select_warm, not select_miss.
func setEndpoint(w http.ResponseWriter, ep endpoint) {
	if rw, ok := w.(*reqWriter); ok {
		rw.ep = ep
	}
}

// setTraceTask tags the request's trace with the decision task it
// touched, so /debug/traces?task_id= follows one verdict end to end.
func setTraceTask(w http.ResponseWriter, id string) {
	if rw, ok := w.(*reqWriter); ok {
		rw.tr.TaskID = id
	}
}

// traceCtx threads the request's trace into the context for layers that
// record spans without seeing the writer (the task store's durability
// wait). Only traced requests pay the context allocation: when tracing
// is fully disabled (no sampling, no slow-log), the ctx passes through
// untouched and the request path stays allocation-free.
func (s *Server) traceCtx(ctx context.Context, w http.ResponseWriter) context.Context {
	rw, ok := w.(*reqWriter)
	if !ok || !(rw.sampled || s.slowNS > 0) {
		return ctx
	}
	return obs.ContextWithTrace(ctx, &rw.tr)
}

// debugTracesResponse is the body of GET /debug/traces.
type debugTracesResponse struct {
	// Total counts traces captured since start (captures, not residents).
	Total  int64       `json:"total"`
	Traces []obs.Trace `json:"traces"`
}

// handleDebugTraces serves GET /debug/traces: recently captured request
// traces, newest first. Query parameters: endpoint=NAME keeps one
// endpoint, task_id=ID keeps one decision task's lifecycle requests,
// min_ms=N keeps requests at least that slow, limit=N caps the result
// (default 32).
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 32
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.fail(w, badRequest("limit must be a positive integer, got %q", v))
			return
		}
		limit = n
	}
	var minNS int64
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			s.fail(w, badRequest("min_ms must be a non-negative integer, got %q", v))
			return
		}
		minNS = ms * 1e6
	}
	ep := q.Get("endpoint")
	taskID := q.Get("task_id")
	var filter func(*obs.Trace) bool
	if ep != "" || taskID != "" || minNS > 0 {
		filter = func(t *obs.Trace) bool {
			return (ep == "" || t.Endpoint == ep) &&
				(taskID == "" || t.TaskID == taskID) &&
				t.DurNS >= minNS
		}
	}
	writeJSON(w, http.StatusOK, debugTracesResponse{
		Total:  s.ring.Total(),
		Traces: s.ring.Snapshot(filter, limit),
	})
}

// slogLogger resolves the configured logger, defaulting to the process
// slog logger so slow-request warnings are never silently dropped.
func slogLogger(l *slog.Logger) *slog.Logger {
	if l != nil {
		return l
	}
	return slog.Default()
}
