package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"juryselect/internal/insight"
	"juryselect/internal/obs"
	"juryselect/internal/tasks"
)

// newDurableTaskServer builds a server over a WAL-backed task store with
// a seeded pool and an attached insight engine, returning the server for
// direct field access.
func newDurableTaskServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Insight == nil {
		cfg.Insight = insight.New(0)
	}
	store, err := tasks.Open(tasks.Config{
		Dir: t.TempDir(), Sync: tasks.SyncAlways, Events: cfg.Insight,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() }) //nolint:errcheck
	if _, err := store.PutPool("crowd", testJurors(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.PutPool("panel", flatJurors(7)); err != nil {
		t.Fatal(err)
	}
	cfg.Tasks = store
	srv := New(cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

// requireKeys fails for every key missing from the decoded JSON object.
func requireKeys(t *testing.T, obj map[string]json.RawMessage, where string, keys ...string) {
	t.Helper()
	for _, k := range keys {
		if _, ok := obj[k]; !ok {
			t.Errorf("%s: missing key %q", where, k)
		}
	}
}

// TestMetricsGoldenKeys pins the /metrics JSON shape: the exact key set
// dashboards scrape. A key rename or removal is a breaking change and
// must fail here first.
func TestMetricsGoldenKeys(t *testing.T) {
	_, hs := newDurableTaskServer(t, Config{})
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/select",
		map[string]string{"pool": "crowd"}, http.StatusOK, nil)

	var top map[string]json.RawMessage
	doTaskJSON(t, http.MethodGet, hs.URL+"/metrics", nil, http.StatusOK, &top)
	requireKeys(t, top, "/metrics",
		"requests", "selections", "batch_selects", "jer_served", "pool_writes",
		"batch_votes", "shed", "errors", "errors_4xx", "errors_5xx",
		"inflight", "max_inflight", "queued", "max_queue",
		"engine_evaluations", "engine_cache_hits", "engine_inflight", "engine_workers",
		"pools", "select_cache", "tasks", "insight", "endpoints", "stages", "runtime",
		"build", "uptime_seconds")

	var build map[string]json.RawMessage
	if err := json.Unmarshal(top["build"], &build); err != nil {
		t.Fatal(err)
	}
	requireKeys(t, build, "build", "version", "go_version", "vcs_revision", "vcs_modified")

	var sc map[string]json.RawMessage
	if err := json.Unmarshal(top["select_cache"], &sc); err != nil {
		t.Fatal(err)
	}
	requireKeys(t, sc, "select_cache",
		"hits", "misses", "collapsed", "entries", "hit_ratio", "shard_entries")

	var ins map[string]json.RawMessage
	if err := json.Unmarshal(top["insight"], &ins); err != nil {
		t.Fatal(err)
	}
	requireKeys(t, ins, "insight",
		"events", "tasks_created", "tasks_decided", "tasks_expired", "tasks_open",
		"votes", "declines", "timeouts", "unknown_task_events",
		"jurors_tracked", "pairs_tracked", "pairs_dropped",
		"calibration_samples", "brier")

	var eps map[string]map[string]json.RawMessage
	if err := json.Unmarshal(top["endpoints"], &eps); err != nil {
		t.Fatal(err)
	}
	if len(eps) != int(numEndpoints) {
		t.Errorf("endpoints block has %d entries, want %d", len(eps), numEndpoints)
	}
	for _, name := range endpointNames {
		ep, ok := eps[name]
		if !ok {
			t.Errorf("endpoints: missing %q", name)
			continue
		}
		requireKeys(t, ep, "endpoints."+name, "requests", "errors_4xx", "errors_5xx", "latency")
		var lat map[string]json.RawMessage
		if err := json.Unmarshal(ep["latency"], &lat); err != nil {
			t.Fatal(err)
		}
		requireKeys(t, lat, "endpoints."+name+".latency",
			"count", "mean_ns", "p50_ns", "p90_ns", "p99_ns", "p999_ns", "max_ns")
	}

	var stages map[string]json.RawMessage
	if err := json.Unmarshal(top["stages"], &stages); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < obs.NumStages; i++ {
		if _, ok := stages[obs.Stage(i).String()]; !ok {
			t.Errorf("stages: missing %q", obs.Stage(i).String())
		}
	}

	var tm map[string]json.RawMessage
	if err := json.Unmarshal(top["tasks"], &tm); err != nil {
		t.Fatal(err)
	}
	requireKeys(t, tm, "tasks",
		"wal_appends", "wal_fsyncs", "wal_fsync_p99_ns", "wal_fsync", "wal_durable_wait",
		"wal_commit_queue_depth", "wal_fsync_batch_hist", "wal_replay_ns")

	var rt map[string]json.RawMessage
	if err := json.Unmarshal(top["runtime"], &rt); err != nil {
		t.Fatal(err)
	}
	requireKeys(t, rt, "runtime", "goroutines", "heap_alloc_bytes", "num_gc", "gc_pause_p99_ns")
}

// TestEndpointLatencyHistograms requires every exercised /v1 endpoint to
// export a latency summary with a live count — the tentpole's core
// acceptance check, driven over HTTP.
func TestEndpointLatencyHistograms(t *testing.T) {
	_, hs := newDurableTaskServer(t, Config{})

	// One request per instrumented family; select twice so the cache
	// serves the second as select_warm.
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/jer",
		map[string]any{"error_rates": []float64{0.1, 0.2, 0.3}}, http.StatusOK, nil)
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/select",
		map[string]string{"pool": "crowd"}, http.StatusOK, nil)
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/select",
		map[string]string{"pool": "crowd"}, http.StatusOK, nil)
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/select/batch",
		map[string]any{"selects": []map[string]string{{"pool": "crowd"}}}, http.StatusOK, nil)
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/pools", nil, http.StatusOK, nil)
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/pools/crowd", nil, http.StatusOK, nil)
	var created TaskResponse
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks",
		map[string]string{"pool": "crowd"}, http.StatusCreated, &created)
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/tasks", nil, http.StatusOK, nil)
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/tasks/"+created.Task.ID, nil, http.StatusOK, nil)
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks/"+created.Task.ID+"/votes",
		map[string]any{"juror_id": created.Task.Jurors[0].ID, "vote": true}, http.StatusOK, nil)

	var m struct {
		Endpoints map[string]endpointStats `json:"endpoints"`
		Stages    map[string]obs.Summary   `json:"stages"`
	}
	doTaskJSON(t, http.MethodGet, hs.URL+"/metrics", nil, http.StatusOK, &m)
	for _, ep := range []string{"jer", "select_miss", "select_warm", "select_batch",
		"pool_list", "pool_get", "task_create", "task_list", "task_get", "task_vote"} {
		st := m.Endpoints[ep]
		if st.Requests == 0 || st.Latency.Count == 0 || st.Latency.P99NS == 0 {
			t.Errorf("endpoint %s: requests=%d latency=%+v, want live histogram", ep, st.Requests, st.Latency)
		}
		if st.Latency.P50NS > st.Latency.P99NS || st.Latency.P99NS > st.Latency.MaxNS {
			t.Errorf("endpoint %s: quantiles out of order: %+v", ep, st.Latency)
		}
	}
	// The vote went through a SyncAlways WAL, so the store stage (and the
	// always-on decode/encode/engine stages) must have samples.
	for _, stage := range []string{"decode", "engine", "store", "encode", "cache_probe"} {
		if m.Stages[stage].Count == 0 {
			t.Errorf("stage %s: no samples", stage)
		}
	}
}

// TestErrorsSplitByClass verifies the PR 8 counter split: client errors
// land in errors_4xx, the legacy errors counter is strictly 5xx, and a
// shed counts once under shed — not again as an error (the double-count
// this split removes).
func TestErrorsSplitByClass(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Two client errors: a malformed select and a missing pool.
	doJSON(t, ts.URL+"/v1/select", `{"pool":"nope"}`, http.StatusNotFound)
	doJSON(t, ts.URL+"/v1/select", `{`, http.StatusBadRequest)

	var m struct {
		Errors    int64                    `json:"errors"`
		Errors4xx int64                    `json:"errors_4xx"`
		Errors5xx int64                    `json:"errors_5xx"`
		Shed      int64                    `json:"shed"`
		Endpoints map[string]endpointStats `json:"endpoints"`
	}
	if st := do(t, http.MethodGet, ts.URL+"/metrics", nil, &m); st != http.StatusOK {
		t.Fatalf("metrics status %d", st)
	}
	if m.Errors4xx != 2 || m.Errors != 0 || m.Errors5xx != 0 {
		t.Errorf("errors_4xx=%d errors=%d errors_5xx=%d, want 2/0/0", m.Errors4xx, m.Errors, m.Errors5xx)
	}
	if got := m.Endpoints["select_miss"].Errors4xx; got != 2 {
		t.Errorf("select_miss errors_4xx = %d, want 2", got)
	}
}

// doJSON posts a raw body and checks only the status.
func doJSON(t *testing.T, url, body string, wantStatus int) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
}

// TestHealthzReportsWALState checks the PR 8 healthz additions: commit
// queue depth and last-recovery duration with a task store, absent
// without one.
func TestHealthzReportsWALState(t *testing.T) {
	_, hs := newDurableTaskServer(t, Config{})
	var h map[string]json.RawMessage
	doTaskJSON(t, http.MethodGet, hs.URL+"/healthz", nil, http.StatusOK, &h)
	requireKeys(t, h, "/healthz", "status", "pools", "inflight", "queued",
		"wal_commit_queue_depth", "last_recovery_ns")

	_, plain := newTestServer(t, Config{})
	var h2 map[string]json.RawMessage
	if st := do(t, http.MethodGet, plain.URL+"/healthz", nil, &h2); st != http.StatusOK {
		t.Fatalf("healthz status %d", st)
	}
	if _, ok := h2["wal_commit_queue_depth"]; ok {
		t.Error("healthz without a task store should omit wal_commit_queue_depth")
	}
}

// TestPrometheusExportParses drives traffic through every subsystem and
// requires /metrics/prometheus to parse under the scraper rules obs
// implements: declared types for every family, cumulative histogram
// buckets, +Inf == _count.
func TestPrometheusExportParses(t *testing.T) {
	_, hs := newDurableTaskServer(t, Config{})
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/select",
		map[string]string{"pool": "crowd"}, http.StatusOK, nil)
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/select",
		map[string]string{"pool": "crowd"}, http.StatusOK, nil)
	var created TaskResponse
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks",
		map[string]string{"pool": "crowd"}, http.StatusCreated, &created)
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks/"+created.Task.ID+"/votes",
		map[string]any{"juror_id": created.Task.Jurors[0].ID, "vote": true}, http.StatusOK, nil)

	resp, err := http.Get(hs.URL + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	fams, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	for fam, typ := range map[string]string{
		"juryd_requests_total":             "counter",
		"juryd_errors_total":               "counter",
		"juryd_shed_total":                 "counter",
		"juryd_request_duration_seconds":   "histogram",
		"juryd_stage_duration_seconds":     "histogram",
		"juryd_wal_fsync_duration_seconds": "histogram",
		"juryd_wal_durable_wait_seconds":   "histogram",
		"juryd_wal_commit_queue_depth":     "gauge",
		"juryd_goroutines":                 "gauge",
		"juryd_heap_alloc_bytes":           "gauge",
		"juryd_build_info":                 "gauge",
		"juryd_uptime_seconds":             "gauge",
	} {
		f, ok := fams[fam]
		if !ok {
			t.Errorf("missing family %s", fam)
			continue
		}
		if f.Type != typ {
			t.Errorf("family %s: type %s, want %s", fam, f.Type, typ)
		}
	}
	// The warm select must be its own labelled series.
	var sawWarm bool
	for _, s := range fams["juryd_request_duration_seconds"].Samples {
		if s.Labels["endpoint"] == "select_warm" {
			sawWarm = true
		}
	}
	if !sawWarm {
		t.Error("no select_warm series in juryd_request_duration_seconds")
	}
	// The build-info gauge carries the binary's identity as labels with a
	// constant value of 1 — the standard Prometheus build_info shape.
	bis := fams["juryd_build_info"].Samples
	if len(bis) != 1 || bis[0].Value != 1 ||
		bis[0].Labels["version"] == "" || bis[0].Labels["go"] == "" || bis[0].Labels["revision"] == "" {
		t.Errorf("juryd_build_info = %+v, want one sample of 1 with version/go/revision labels", bis)
	}
}

// TestDebugTracesStageBreakdown samples every request and requires a
// durable vote's trace to carry the stage spans, including the WAL
// durability wait recorded two layers down in the task store.
func TestDebugTracesStageBreakdown(t *testing.T) {
	_, hs := newDurableTaskServer(t, Config{TraceEvery: 1})
	var created TaskResponse
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks",
		map[string]string{"pool": "crowd"}, http.StatusCreated, &created)
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks/"+created.Task.ID+"/votes",
		map[string]any{"juror_id": created.Task.Jurors[0].ID, "vote": true}, http.StatusOK, nil)

	var out debugTracesResponse
	doTaskJSON(t, http.MethodGet, hs.URL+"/debug/traces?endpoint=task_vote", nil, http.StatusOK, &out)
	if len(out.Traces) != 1 {
		t.Fatalf("got %d task_vote traces, want 1", len(out.Traces))
	}
	tr := out.Traces[0]
	if tr.Status != http.StatusOK || tr.DurNS <= 0 {
		t.Errorf("trace = %+v, want 200 with positive duration", tr)
	}
	have := map[obs.Stage]bool{}
	for _, sp := range tr.Spans {
		have[sp.Stage] = true
	}
	for _, st := range []obs.Stage{obs.StageDecode, obs.StageWALWait, obs.StageStore, obs.StageEncode} {
		if !have[st] {
			t.Errorf("task_vote trace missing %s span: %+v", st, tr.Spans)
		}
	}
	if tr.StageNS(obs.StageStore) <= 0 {
		t.Errorf("store stage duration %d, want > 0", tr.StageNS(obs.StageStore))
	}

	// The endpoint filter must actually filter.
	var all debugTracesResponse
	doTaskJSON(t, http.MethodGet, hs.URL+"/debug/traces", nil, http.StatusOK, &all)
	if len(all.Traces) < 2 {
		t.Errorf("unfiltered traces = %d, want at least create+vote", len(all.Traces))
	}
}

// TestWarmSelectAllocations is the overhead guard at test granularity:
// with tracing disabled, the fully instrumented warm select must stay
// within the PR 7 allocation budget — instrumentation adds zero.
func TestWarmSelectAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector degrades sync.Pool reuse; allocation counts are not meaningful")
	}
	srv := New(Config{})
	if _, err := srv.Store().Put("crowd", testJurors(101)); err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	body := `{"pool":"crowd"}`
	rdr := strings.NewReader("")
	req := httptest.NewRequest(http.MethodPost, "/v1/select", nil)
	w := &allocWriter{h: make(http.Header)}
	run := func() {
		rdr.Reset(body)
		req.Body = io.NopCloser(rdr)
		req.ContentLength = int64(len(body))
		w.status = 0
		h.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("status %d", w.status)
		}
	}
	run() // prime the cache
	// The PR 7 baseline is 16 allocs/op for the warm select
	// (BENCH_PR7.json); instrumentation must not add any.
	if got := testing.AllocsPerRun(200, run); got > 16 {
		t.Errorf("warm select allocates %.1f/op, budget 16 (instrumentation must add 0)", got)
	}
}

type allocWriter struct {
	h      http.Header
	status int
}

func (w *allocWriter) Header() http.Header         { return w.h }
func (w *allocWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *allocWriter) WriteHeader(status int)      { w.status = status }

// TestMetricsScrapeUnderLoad hammers selects, votes and pool writes
// while scraping every observability endpoint — the -race guard for the
// scrape paths reading histograms and the trace ring mid-write.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	_, hs := newDurableTaskServer(t, Config{TraceEvery: 3, TraceRingSize: 32})
	var created TaskResponse
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks",
		map[string]string{"pool": "crowd"}, http.StatusCreated, &created)

	const iters = 30
	var wg sync.WaitGroup
	hammer := func(f func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f(i)
			}
		}()
	}
	hammer(func(int) {
		doTaskJSON(t, http.MethodPost, hs.URL+"/v1/select",
			map[string]string{"pool": "crowd"}, http.StatusOK, nil)
	})
	hammer(func(i int) {
		// Votes on an already-closed task still exercise the full path;
		// accept the conflict statuses the lifecycle produces.
		body, _ := json.Marshal(map[string]any{
			"juror_id": created.Task.Jurors[i%len(created.Task.Jurors)].ID, "vote": i%2 == 0})
		resp, err := http.Post(hs.URL+"/v1/tasks/"+created.Task.ID+"/votes",
			"application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
	})
	hammer(func(i int) {
		doTaskJSON(t, http.MethodPatch, hs.URL+"/v1/pools/crowd/jurors",
			map[string]any{"updates": []map[string]any{{"id": "j000", "error_rate": 0.1 + float64(i%5)/100}}},
			http.StatusOK, nil)
	})
	for _, path := range []string{"/metrics", "/metrics/prometheus", "/debug/traces", "/healthz"} {
		path := path
		hammer(func(int) {
			resp, err := http.Get(hs.URL + path)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		})
	}
	wg.Wait()

	// The exposition must still parse after the dust settles.
	resp, err := http.Get(hs.URL + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := obs.ParseProm(resp.Body); err != nil {
		t.Fatalf("exposition does not parse after load: %v", err)
	}
}
