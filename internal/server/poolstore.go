package server

import (
	"juryselect/internal/pool"
)

// The live juror-pool store moved to internal/pool so the durable task
// subsystem (internal/tasks) can journal pool mutations without an
// import cycle through this package. The aliases below keep the server
// API — and every caller that spells these names as server.X — intact.

// Store is the versioned copy-on-write juror-pool directory.
type Store = pool.Store

// Pool is one immutable pool snapshot.
type Pool = pool.Pool

// PoolJuror is one live-pool member with its voting record.
type PoolJuror = pool.PoolJuror

// JurorUpdate is one incremental change inside a Patch.
type JurorUpdate = pool.JurorUpdate

// VoteObservation is a batch of observed voting outcomes for one juror.
type VoteObservation = pool.VoteObservation

// NewStore returns an empty Store.
func NewStore() *Store { return pool.NewStore() }

// Store errors surfaced on the pool CRUD endpoints.
var (
	// ErrPoolNotFound reports a request against a pool name the store
	// does not hold.
	ErrPoolNotFound = pool.ErrPoolNotFound
	// ErrUnknownJuror reports a patch update addressing a juror ID not in
	// the pool and carrying no error rate to insert it with.
	ErrUnknownJuror = pool.ErrUnknownJuror
	// ErrNoUpdates reports an empty patch.
	ErrNoUpdates = pool.ErrNoUpdates
	// ErrDuplicateJuror reports a Put whose juror set repeats an ID.
	ErrDuplicateJuror = pool.ErrDuplicateJuror
)
