package server

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"juryselect/internal/estimate"
	"juryselect/jury"
)

func testJurors(n int) []jury.Juror {
	out := make([]jury.Juror, n)
	for i := range out {
		out[i] = jury.Juror{
			ID:        fmt.Sprintf("j%03d", i),
			ErrorRate: 0.05 + 0.9*float64(i)/float64(n),
			Cost:      0.1 + float64(i%7)*0.05,
		}
	}
	return out
}

func f64(v float64) *float64 { return &v }

func TestStorePutCreatesVersionedPool(t *testing.T) {
	s := NewStore()
	p, err := s.Put("crowd", testJurors(5))
	if err != nil {
		t.Fatal(err)
	}
	if p.Version != 1 || p.Size() != 5 {
		t.Fatalf("got version %d size %d, want 1/5", p.Version, p.Size())
	}
	// Replacement bumps the version; it never resets.
	p2, err := s.Put("crowd", testJurors(3))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Version != 2 || p2.Size() != 3 {
		t.Fatalf("got version %d size %d, want 2/3", p2.Version, p2.Size())
	}
	// The first snapshot is unaffected.
	if p.Version != 1 || p.Size() != 5 {
		t.Fatalf("old snapshot mutated: version %d size %d", p.Version, p.Size())
	}
}

func TestStorePutRejectsInvalidJurors(t *testing.T) {
	s := NewStore()
	cases := [][]jury.Juror{
		nil,
		{{ID: "bad", ErrorRate: 0}},
		{{ID: "bad", ErrorRate: 1}},
		{{ID: "bad", ErrorRate: math.NaN()}},
		{{ID: "bad", ErrorRate: 0.5, Cost: -1}},
	}
	for i, jurors := range cases {
		if _, err := s.Put("crowd", jurors); err == nil {
			t.Errorf("case %d: invalid jurors accepted", i)
		}
	}
	if s.Len() != 0 {
		t.Errorf("failed puts left %d pools", s.Len())
	}
}

func TestStoreSortedViewIsSorted(t *testing.T) {
	s := NewStore()
	jurors := []jury.Juror{
		{ID: "c", ErrorRate: 0.3},
		{ID: "a", ErrorRate: 0.1},
		{ID: "b", ErrorRate: 0.2},
	}
	p, err := s.Put("crowd", jurors)
	if err != nil {
		t.Fatal(err)
	}
	sorted := p.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].ErrorRate > sorted[i].ErrorRate {
			t.Fatalf("sorted view out of order: %v", sorted)
		}
	}
	// Insertion order preserved on the member view.
	if got := p.Jurors()[0].ID; got != "c" {
		t.Errorf("insertion order lost: first member %q", got)
	}
}

func TestStorePatchSetRemoveInsert(t *testing.T) {
	s := NewStore()
	if _, err := s.Put("crowd", testJurors(4)); err != nil {
		t.Fatal(err)
	}
	p, err := s.Patch("crowd", []JurorUpdate{
		{ID: "j000", ErrorRate: f64(0.42)},
		{ID: "j001", Remove: true},
		{ID: "new", ErrorRate: f64(0.2), Cost: f64(0.9)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Version != 2 || p.Size() != 4 {
		t.Fatalf("got version %d size %d, want 2/4", p.Version, p.Size())
	}
	byID := map[string]PoolJuror{}
	for _, m := range p.Jurors() {
		byID[m.ID] = m
	}
	if byID["j000"].ErrorRate != 0.42 {
		t.Errorf("direct set: ε = %g, want 0.42", byID["j000"].ErrorRate)
	}
	if _, ok := byID["j001"]; ok {
		t.Error("removed juror still present")
	}
	if got := byID["new"]; got.ErrorRate != 0.2 || got.Cost != 0.9 {
		t.Errorf("inserted juror = %+v", got)
	}
}

func TestStorePatchVotesReestimateRate(t *testing.T) {
	s := NewStore()
	if _, err := s.Put("crowd", []jury.Juror{{ID: "a", ErrorRate: 0.3}, {ID: "b", ErrorRate: 0.4}}); err != nil {
		t.Fatal(err)
	}
	p, err := s.Patch("crowd", []JurorUpdate{
		{ID: "a", Votes: &VoteObservation{Wrong: 0, Total: 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var a PoolJuror
	for _, m := range p.Jurors() {
		if m.ID == "a" {
			a = m
		}
	}
	want, err := estimate.PosteriorRate(0.3, estimate.DefaultPriorWeight, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if a.ErrorRate != want {
		t.Errorf("posterior ε = %g, want %g", a.ErrorRate, want)
	}
	if a.WrongVotes != 0 || a.TotalVotes != 20 {
		t.Errorf("vote record = %d/%d, want 0/20", a.WrongVotes, a.TotalVotes)
	}

	// A second batch weights the prior by the accumulated record: the
	// result equals one concatenated batch from the original prior.
	p, err = s.Patch("crowd", []JurorUpdate{
		{ID: "a", Votes: &VoteObservation{Wrong: 3, Total: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range p.Jurors() {
		if m.ID == "a" {
			a = m
		}
	}
	oneShot, err := estimate.PosteriorRate(0.3, estimate.DefaultPriorWeight, 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.ErrorRate-oneShot) > 1e-15 {
		t.Errorf("sequential batches ε = %g, one-shot %g", a.ErrorRate, oneShot)
	}
	// A direct rate set resets the record: the new rate is a fresh prior.
	p, err = s.Patch("crowd", []JurorUpdate{{ID: "a", ErrorRate: f64(0.25)}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range p.Jurors() {
		if m.ID == "a" && (m.WrongVotes != 0 || m.TotalVotes != 0) {
			t.Errorf("vote record not reset: %d/%d", m.WrongVotes, m.TotalVotes)
		}
	}
}

func TestStorePatchRejections(t *testing.T) {
	s := NewStore()
	if _, err := s.Put("crowd", testJurors(2)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		pool string
		ups  []JurorUpdate
	}{
		{"missing pool", "ghost", []JurorUpdate{{ID: "x", ErrorRate: f64(0.1)}}},
		{"no updates", "crowd", nil},
		{"unknown id without rate", "crowd", []JurorUpdate{{ID: "ghost", Cost: f64(1)}}},
		{"remove unknown", "crowd", []JurorUpdate{{ID: "ghost", Remove: true}}},
		{"invalid rate", "crowd", []JurorUpdate{{ID: "j000", ErrorRate: f64(1.5)}}},
		{"invalid votes", "crowd", []JurorUpdate{{ID: "j000", Votes: &VoteObservation{Wrong: 5, Total: 2}}}},
		{"would empty pool", "crowd", []JurorUpdate{{ID: "j000", Remove: true}, {ID: "j001", Remove: true}}},
	}
	for _, tc := range cases {
		before, _ := s.Get("crowd")
		if _, err := s.Patch(tc.pool, tc.ups); err == nil {
			t.Errorf("%s: patch accepted", tc.name)
		}
		// A rejected patch must be fully atomic: same snapshot published.
		after, _ := s.Get("crowd")
		if before != after {
			t.Errorf("%s: rejected patch published a new snapshot", tc.name)
		}
	}
}

func TestStoreDelete(t *testing.T) {
	s := NewStore()
	if _, err := s.Put("crowd", testJurors(2)); err != nil {
		t.Fatal(err)
	}
	if !s.Delete("crowd") {
		t.Fatal("delete reported missing pool")
	}
	if s.Delete("crowd") {
		t.Fatal("double delete reported success")
	}
	if _, ok := s.Get("crowd"); ok {
		t.Fatal("deleted pool still readable")
	}
}

func TestStoreListSortedByName(t *testing.T) {
	s := NewStore()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := s.Put(name, testJurors(2)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.List()
	if len(got) != 3 || got[0].Name != "alpha" || got[1].Name != "mid" || got[2].Name != "zeta" {
		names := make([]string, len(got))
		for i, p := range got {
			names[i] = p.Name
		}
		t.Fatalf("list order %v", names)
	}
}

// TestStoreConcurrentReadersSeeConsistentSnapshots hammers Get/Patch/Put
// concurrently (run with -race): every snapshot a reader observes must be
// internally consistent — version, member count, and sorted view all from
// one publication.
func TestStoreConcurrentReadersSeeConsistentSnapshots(t *testing.T) {
	s := NewStore()
	if _, err := s.Put("crowd", testJurors(9)); err != nil {
		t.Fatal(err)
	}
	const writers, readers, rounds = 2, 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				_, err := s.Patch("crowd", []JurorUpdate{
					{ID: fmt.Sprintf("j%03d", (w*rounds+i)%9), Votes: &VoteObservation{Wrong: int64(i % 2), Total: 1}},
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastVersion uint64
			for i := 0; i < rounds; i++ {
				p, ok := s.Get("crowd")
				if !ok {
					t.Error("pool vanished")
					return
				}
				if p.Version < lastVersion {
					t.Errorf("version went backwards: %d after %d", p.Version, lastVersion)
					return
				}
				lastVersion = p.Version
				if len(p.Sorted()) != p.Size() {
					t.Errorf("torn snapshot: %d sorted vs %d members", len(p.Sorted()), p.Size())
					return
				}
				for k := 1; k < len(p.Sorted()); k++ {
					if p.Sorted()[k-1].ErrorRate > p.Sorted()[k].ErrorRate {
						t.Error("torn snapshot: sorted view out of order")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	p, _ := s.Get("crowd")
	if want := uint64(1 + writers*rounds); p.Version != want {
		t.Errorf("final version %d, want %d", p.Version, want)
	}
}

func TestStoreErrorsAreTyped(t *testing.T) {
	s := NewStore()
	if _, err := s.Patch("ghost", []JurorUpdate{{ID: "x"}}); !errors.Is(err, ErrPoolNotFound) {
		t.Errorf("missing pool error = %v", err)
	}
	if _, err := s.Put("crowd", testJurors(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Patch("crowd", nil); !errors.Is(err, ErrNoUpdates) {
		t.Errorf("empty patch error = %v", err)
	}
	if _, err := s.Patch("crowd", []JurorUpdate{{ID: "ghost", Cost: f64(1)}}); !errors.Is(err, ErrUnknownJuror) {
		t.Errorf("unknown juror error = %v", err)
	}
}

func BenchmarkPoolSnapshot(b *testing.B) {
	s := NewStore()
	if _, err := s.Put("crowd", testJurors(1001)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, ok := s.Get("crowd")
		if !ok || p.Size() != 1001 {
			b.Fatal("bad snapshot")
		}
	}
}

func BenchmarkPoolPatch(b *testing.B) {
	s := NewStore()
	if _, err := s.Put("crowd", testJurors(101)); err != nil {
		b.Fatal(err)
	}
	up := []JurorUpdate{{ID: "j050", Votes: &VoteObservation{Wrong: 1, Total: 4}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Patch("crowd", up); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStorePutRejectsDuplicateIDs(t *testing.T) {
	s := NewStore()
	_, err := s.Put("crowd", []jury.Juror{
		{ID: "a", ErrorRate: 0.1},
		{ID: "b", ErrorRate: 0.2},
		{ID: "a", ErrorRate: 0.3},
	})
	if !errors.Is(err, ErrDuplicateJuror) {
		t.Fatalf("duplicate-id put error = %v, want ErrDuplicateJuror", err)
	}
	if s.Len() != 0 {
		t.Fatal("rejected put published a pool")
	}
}

func TestStoreVersionSurvivesDeleteAndRecreate(t *testing.T) {
	s := NewStore()
	if _, err := s.Put("crowd", testJurors(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Patch("crowd", []JurorUpdate{{ID: "j000", ErrorRate: f64(0.2)}}); err != nil {
		t.Fatal(err)
	}
	if !s.Delete("crowd") {
		t.Fatal("delete failed")
	}
	p, err := s.Put("crowd", testJurors(2))
	if err != nil {
		t.Fatal(err)
	}
	// The sequence continues past the deleted pool's v2: a client that
	// cached v2 must see the re-created pool as newer, not stale.
	if p.Version != 3 {
		t.Fatalf("re-created pool version %d, want 3", p.Version)
	}
}
