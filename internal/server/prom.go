package server

import (
	"bytes"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"juryselect/internal/obs"
)

// timeNowUTC is the scrape-time clock for SLO evaluation.
func timeNowUTC() time.Time { return time.Now().UTC() }

// boolGauge renders a flag as a 0/1 gauge value.
func boolGauge(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// handleMetricsProm serves GET /metrics/prometheus: the same counters
// as /metrics in the Prometheus text exposition format (0.0.4), for
// scrapers. The JSON endpoint stays authoritative and unchanged; this
// endpoint adds the label-structured view — per-endpoint request and
// latency families, per-stage latencies, WAL histograms, and process
// gauges — without any client library dependency.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	buf := bufPool.Get().(*bytes.Buffer)
	defer putBuf(buf)
	p := obs.NewProm(buf)

	p.Header("juryd_requests_total", "counter", "Requests by endpoint.")
	for i := range s.eps {
		p.Sample("juryd_requests_total", `endpoint="`+endpointNames[i]+`"`,
			float64(s.eps[i].requests.Load()))
	}
	p.Header("juryd_errors_total", "counter", "Error responses by endpoint and class (4xx excludes shed 429s).")
	for i := range s.eps {
		em := &s.eps[i]
		p.Sample("juryd_errors_total", `endpoint="`+endpointNames[i]+`",class="4xx"`,
			float64(em.errors4xx.Load()))
		p.Sample("juryd_errors_total", `endpoint="`+endpointNames[i]+`",class="5xx"`,
			float64(em.errors5xx.Load()))
	}
	p.Header("juryd_shed_total", "counter", "Requests shed 429 by admission control.")
	p.Sample("juryd_shed_total", "", float64(s.m.shed.Value()))

	p.Header("juryd_request_duration_seconds", "histogram", "Request latency by endpoint.")
	for i := range s.eps {
		snap := s.eps[i].lat.Snapshot()
		if snap.Count == 0 {
			continue // a family's series may appear later; an all-zero histogram says nothing
		}
		p.HistogramNS("juryd_request_duration_seconds", `endpoint="`+endpointNames[i]+`"`, snap)
	}
	p.Header("juryd_stage_duration_seconds", "histogram", "Internal stage latency across requests.")
	for i := range s.stages {
		snap := s.stages[i].Snapshot()
		if snap.Count == 0 {
			continue
		}
		p.HistogramNS("juryd_stage_duration_seconds", `stage="`+obs.Stage(i).String()+`"`, snap)
	}

	p.Header("juryd_inflight", "gauge", "Evaluation requests currently executing.")
	p.Sample("juryd_inflight", "", float64(len(s.sem)))
	p.Header("juryd_queued", "gauge", "Requests waiting for an inflight slot.")
	p.Sample("juryd_queued", "", float64(s.m.queued.Load()))
	p.Header("juryd_pools", "gauge", "Resident juror pools.")
	p.Sample("juryd_pools", "", float64(s.store.Len()))
	p.Header("juryd_selections_total", "counter", "Successful select items (single and batch).")
	p.Sample("juryd_selections_total", "", float64(s.m.selections.Value()))

	est := s.eng.Stats()
	p.Header("juryd_engine_evaluations_total", "counter", "JER evaluations computed by the engine.")
	p.Sample("juryd_engine_evaluations_total", "", float64(est.Evaluations))
	p.Header("juryd_engine_cache_hits_total", "counter", "Engine evaluation cache hits.")
	p.Sample("juryd_engine_cache_hits_total", "", float64(est.CacheHits))

	if s.cache != nil {
		hits := s.cache.hits.Load()
		misses := s.cache.misses.Load()
		collapsed := s.cache.collapsed.Load()
		p.Header("juryd_select_cache_events_total", "counter", "Select response cache events.")
		p.Sample("juryd_select_cache_events_total", `event="hit"`, float64(hits))
		p.Sample("juryd_select_cache_events_total", `event="miss"`, float64(misses))
		p.Sample("juryd_select_cache_events_total", `event="collapsed"`, float64(collapsed))
		p.Header("juryd_select_cache_hit_ratio", "gauge", "Fraction of cache probes served from a resident entry.")
		var ratio float64
		if probes := hits + misses + collapsed; probes > 0 {
			ratio = float64(hits) / float64(probes)
		}
		p.Sample("juryd_select_cache_hit_ratio", "", ratio)
		p.Header("juryd_select_cache_entries", "gauge", "Resident select cache entries.")
		p.Sample("juryd_select_cache_entries", "", float64(s.cache.len()))
		p.Header("juryd_select_cache_shard_entries", "gauge", "Resident select cache entries per shard.")
		for i, n := range s.cache.shardLens() {
			p.Sample("juryd_select_cache_shard_entries", `shard="`+strconv.Itoa(i)+`"`, float64(n))
		}
	}

	if s.tasks != nil {
		ts := s.tasks.Stats()
		p.Header("juryd_tasks", "gauge", "Tasks by lifecycle status.")
		p.Sample("juryd_tasks", `status="open"`, float64(ts.Open))
		p.Sample("juryd_tasks", `status="awaiting_votes"`, float64(ts.AwaitingVotes))
		p.Sample("juryd_tasks", `status="decided"`, float64(ts.Decided))
		p.Sample("juryd_tasks", `status="expired"`, float64(ts.Expired))
		p.Header("juryd_wal_appends_total", "counter", "WAL records appended.")
		p.Sample("juryd_wal_appends_total", "", float64(ts.WAL.Appends))
		p.Header("juryd_wal_fsyncs_total", "counter", "WAL fsync calls.")
		p.Sample("juryd_wal_fsyncs_total", "", float64(ts.WAL.Fsyncs))
		p.Header("juryd_wal_commit_queue_depth", "gauge", "Appended records not yet durable.")
		p.Sample("juryd_wal_commit_queue_depth", "", float64(ts.WAL.QueueDepth))
		if ts.WAL.FsyncHist.Count > 0 {
			p.Header("juryd_wal_fsync_duration_seconds", "histogram", "WAL fsync call latency.")
			p.HistogramNS("juryd_wal_fsync_duration_seconds", "", ts.WAL.FsyncHist)
		}
		if ts.WAL.DurableWaitHist.Count > 0 {
			p.Header("juryd_wal_durable_wait_seconds", "histogram", "Append-to-durable wait seen by writers.")
			p.HistogramNS("juryd_wal_durable_wait_seconds", "", ts.WAL.DurableWaitHist)
		}
	}

	if s.insight != nil {
		ist := s.insight.Stats()
		p.Header("juryd_insight_events_total", "counter", "Task events consumed by the insight engine.")
		p.Sample("juryd_insight_events_total", "", float64(ist.Events))
		p.Header("juryd_insight_tasks_total", "counter", "Tasks observed by the insight engine, by outcome.")
		p.Sample("juryd_insight_tasks_total", `outcome="decided"`, float64(ist.TasksDecided))
		p.Sample("juryd_insight_tasks_total", `outcome="expired"`, float64(ist.TasksExpired))
		p.Header("juryd_insight_jurors_tracked", "gauge", "Jurors with insight profiles.")
		p.Sample("juryd_insight_jurors_tracked", "", float64(ist.JurorsTracked))
		p.Header("juryd_insight_pairs_tracked", "gauge", "Co-vote pairs tracked for agreement analysis.")
		p.Sample("juryd_insight_pairs_tracked", "", float64(ist.PairsTracked))
		p.Header("juryd_insight_pairs_dropped_total", "counter", "Co-vote pairs dropped at the tracker cap.")
		p.Sample("juryd_insight_pairs_dropped_total", "", float64(ist.PairsDropped))
		p.Header("juryd_insight_calibration_samples_total", "counter", "Verdicts folded into the JER reliability diagram.")
		p.Sample("juryd_insight_calibration_samples_total", "", float64(ist.CalibrationSamples))
		p.Header("juryd_insight_brier_score", "gauge", "Brier score of predicted JER against realized error.")
		p.Sample("juryd_insight_brier_score", "", ist.Brier)
	}

	if s.lifecycle != nil {
		lst := s.lifecycle.Stats()
		p.Header("juryd_lifecycle_events_total", "counter", "Task events consumed by the lifecycle engine.")
		p.Sample("juryd_lifecycle_events_total", "", float64(lst.Events))
		p.Header("juryd_lifecycle_tasks_total", "counter", "Tasks observed by the lifecycle engine, by outcome.")
		p.Sample("juryd_lifecycle_tasks_total", `outcome="decided"`, float64(lst.TasksDecided))
		p.Sample("juryd_lifecycle_tasks_total", `outcome="expired"`, float64(lst.TasksExpired))
		p.Header("juryd_lifecycle_replacements_total", "counter", "Replacement invites observed after task creation.")
		p.Sample("juryd_lifecycle_replacements_total", "", float64(lst.Replacements))
		p.Header("juryd_lifecycle_timelines_retained", "gauge", "Task timelines resident in the engine.")
		p.Sample("juryd_lifecycle_timelines_retained", "", float64(lst.TimelinesRetained))
		p.Header("juryd_lifecycle_timelines_evicted_total", "counter", "Closed timelines evicted at the retention cap.")
		p.Sample("juryd_lifecycle_timelines_evicted_total", "", float64(lst.TimelinesEvicted))
	}

	if s.slo != nil {
		// Evaluate once and fan the statuses into the families: burn-rate
		// gauges per window, 0/1 alert gauges, and trip counters. Every
		// value is finite by construction (burn is 0 on an empty window),
		// which the exposition parser requires.
		statuses := s.slo.Evaluate(timeNowUTC())
		p.Header("juryd_slo_events_total", "counter", "SLI events by objective and classification.")
		for _, st := range statuses {
			p.Sample("juryd_slo_events_total", `objective="`+st.Name+`",class="good"`, float64(st.Good))
			p.Sample("juryd_slo_events_total", `objective="`+st.Name+`",class="bad"`, float64(st.Bad))
		}
		p.Header("juryd_slo_target", "gauge", "Objective target (good fraction).")
		for _, st := range statuses {
			p.Sample("juryd_slo_target", `objective="`+st.Name+`"`, st.Target)
		}
		p.Header("juryd_slo_burn_rate", "gauge", "Error-budget burn rate by objective and alerting window.")
		for _, st := range statuses {
			p.Sample("juryd_slo_burn_rate", `objective="`+st.Name+`",window="fast_short"`, st.BurnFastShort)
			p.Sample("juryd_slo_burn_rate", `objective="`+st.Name+`",window="fast_long"`, st.BurnFastLong)
			p.Sample("juryd_slo_burn_rate", `objective="`+st.Name+`",window="slow_short"`, st.BurnSlowShort)
			p.Sample("juryd_slo_burn_rate", `objective="`+st.Name+`",window="slow_long"`, st.BurnSlowLong)
		}
		p.Header("juryd_slo_budget_remaining", "gauge", "Unspent error budget over the slow-long window.")
		for _, st := range statuses {
			p.Sample("juryd_slo_budget_remaining", `objective="`+st.Name+`"`, st.BudgetRemaining)
		}
		p.Header("juryd_slo_alert", "gauge", "Burn-rate alert state (1 = firing).")
		for _, st := range statuses {
			p.Sample("juryd_slo_alert", `objective="`+st.Name+`",severity="fast"`, boolGauge(st.FastAlert))
			p.Sample("juryd_slo_alert", `objective="`+st.Name+`",severity="slow"`, boolGauge(st.SlowAlert))
		}
		p.Header("juryd_slo_alert_trips_total", "counter", "Burn-rate alert activations since start.")
		for _, st := range statuses {
			p.Sample("juryd_slo_alert_trips_total", `objective="`+st.Name+`",severity="fast"`, float64(st.FastTrips))
			p.Sample("juryd_slo_alert_trips_total", `objective="`+st.Name+`",severity="slow"`, float64(st.SlowTrips))
		}
	}

	bi := buildInfo()
	p.Header("juryd_build_info", "gauge", "Build metadata of the running binary; value is always 1.")
	p.Sample("juryd_build_info",
		`version="`+bi.Version+`",go="`+bi.GoVersion+`",revision="`+bi.VCSRevision+`"`, 1)
	p.Header("juryd_uptime_seconds", "gauge", "Seconds since this server was constructed.")
	p.Sample("juryd_uptime_seconds", "", time.Since(s.start).Seconds())

	p.Header("juryd_traces_total", "counter", "Request traces captured into the debug ring.")
	p.Sample("juryd_traces_total", "", float64(s.ring.Total()))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.Header("juryd_goroutines", "gauge", "Live goroutines.")
	p.Sample("juryd_goroutines", "", float64(runtime.NumGoroutine()))
	p.Header("juryd_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.")
	p.Sample("juryd_heap_alloc_bytes", "", float64(ms.HeapAlloc))
	if gc := gcPauses(); gc != nil {
		p.Header("juryd_gc_pause_seconds", "histogram", "Stop-the-world GC pause durations.")
		var sum float64
		for i, c := range gc.Counts {
			// Approximate the sum with bucket lower bounds; the runtime
			// does not track an exact pause sum at this granularity.
			if c > 0 && i < len(gc.Buckets) && gc.Buckets[i] > 0 && gc.Buckets[i] < maxFiniteBound {
				sum += float64(c) * gc.Buckets[i]
			}
		}
		p.HistogramSeconds("juryd_gc_pause_seconds", "", gc.Buckets[1:], gc.Counts, sum)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes()) //nolint:errcheck
}
