//go:build race

package server

// raceEnabled reports that this test binary runs under the race
// detector, which deliberately degrades sync.Pool reuse — allocation
// guards are meaningless there and skip themselves.
const raceEnabled = true
