package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"juryselect/internal/core"
	"juryselect/internal/dataio"
	"juryselect/internal/insight"
	"juryselect/internal/lifecycle"
	"juryselect/internal/obs"
	"juryselect/internal/pbdist"
	"juryselect/internal/tasks"
	"juryselect/jury"
)

// Defaults for the zero Config.
const (
	// DefaultMaxQueue is the admission queue bound: evaluation requests
	// beyond MaxInflight wait here; beyond it they are shed with 429.
	DefaultMaxQueue = 64
	// DefaultTimeout is the per-request deadline when the request does
	// not carry one.
	DefaultTimeout = 5 * time.Second
	// DefaultMaxTimeout caps the deadline a request may ask for.
	DefaultMaxTimeout = 30 * time.Second
	// DefaultMaxBodyBytes bounds request bodies (candidate sets of about
	// 100k jurors still fit).
	DefaultMaxBodyBytes = 8 << 20
	// DefaultMaxBatchItems caps how many selects (or votes) one batch
	// request may carry.
	DefaultMaxBatchItems = 256
)

// Config configures a Server. The zero value selects sensible defaults.
type Config struct {
	// Engine is the shared JER engine; nil constructs a default one.
	Engine *jury.Engine
	// Store is the pool store; nil constructs an empty one. When Tasks
	// is set this must be the task store's pool store (or nil, which
	// adopts it automatically).
	Store *Store
	// Tasks is the durable decision-task store. When set, the /v1/tasks
	// endpoints are served and every pool mutation is journaled through
	// it, so a restarted juryd replays pools and tasks together.
	Tasks *tasks.Store
	// Insight is the decision-quality analytics engine. Attach the same
	// engine to the task store (tasks.Config.Events) before Open, so WAL
	// replay and the live tail both feed it; when set, the /v1/insight
	// endpoints are served and /metrics gains an insight block.
	Insight *insight.Engine
	// Lifecycle is the task-timeline reconstructor. Attach it to the task
	// store (tasks.Config.Events, alongside Insight via tasks.Sinks)
	// before Open, so WAL replay rebuilds every timeline on boot; when
	// set, GET /v1/tasks/{id}/timeline and GET /v1/lifecycle are served
	// and /metrics gains a lifecycle block.
	Lifecycle *lifecycle.Engine
	// SLO is the error-budget tracker. When set, GET /v1/slo is served,
	// /metrics gains an slo block, and /metrics/prometheus exports
	// juryd_slo_* series. Feed it via Lifecycle (AttachSLO), the task
	// store's FsyncObserver, and PollSLO on the evaluation ticker.
	SLO *lifecycle.SLO
	// Watchdog flags tasks stuck past their juror timeout with no sweeper
	// progress; when set, /healthz gains a stall block.
	Watchdog *lifecycle.Watchdog
	// MaxInflight bounds concurrently executing evaluation requests
	// (/v1/jer and /v1/select). Zero selects runtime.GOMAXPROCS(0):
	// selection saturates a core, so admitting more in parallel only
	// queues them inside the engine with worse tail latency.
	MaxInflight int
	// MaxQueue bounds how many admitted requests may wait for an
	// inflight slot before the server sheds with 429. Zero selects
	// DefaultMaxQueue; negative disables queueing (immediate shed).
	MaxQueue int
	// DefaultTimeout is the per-request deadline applied when the
	// request carries none. Zero selects DefaultTimeout.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied deadlines. Zero selects
	// DefaultMaxTimeout.
	MaxTimeout time.Duration
	// MaxBodyBytes bounds request bodies. Zero selects
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// SelectCacheEntries bounds the version-keyed selection response
	// cache (total entries, LRU-evicted). Selections are pure functions
	// of (pool version, strategy, params), so the cache serves repeat
	// selects against an unchanged pool without touching the engine or
	// the encoder. Zero selects DefaultSelectCacheEntries; negative
	// disables the cache.
	SelectCacheEntries int
	// MaxBatchItems caps the item count of one POST /v1/select/batch or
	// POST /v1/tasks/{id}/votes/batch request. Zero selects
	// DefaultMaxBatchItems.
	MaxBatchItems int
	// SlowRequest logs (and always traces) requests that take at least
	// this long. Zero disables the slow-request log.
	SlowRequest time.Duration
	// TraceEvery samples every Nth request into the trace ring served at
	// GET /debug/traces (1 = every request). Zero disables sampling;
	// slow requests are still captured when SlowRequest is set.
	TraceEvery int
	// TraceRingSize bounds the trace ring (0 = obs.DefaultTraceRing).
	TraceRingSize int
	// Logger receives slow-request warnings; nil selects slog.Default().
	Logger *slog.Logger
}

// Server serves jury selection over HTTP/JSON. Construct with New, mount
// Handler on an http.Server, and share one Server across all connections;
// all methods are safe for concurrent use.
type Server struct {
	eng       *jury.Engine
	store     *Store
	tasks     *tasks.Store
	insight   *insight.Engine
	lifecycle *lifecycle.Engine
	slo       *lifecycle.SLO
	watchdog  *lifecycle.Watchdog
	start     time.Time // process-local construction instant; uptime origin

	maxInflight int
	maxQueue    int
	defTimeout  time.Duration
	maxTimeout  time.Duration
	maxBody     int64
	maxBatch    int

	cache *selectCache  // version-keyed select responses; nil = disabled
	sem   chan struct{} // inflight slots for evaluation requests
	m     metrics
	mux   *http.ServeMux

	// Observability (PR 8): always-on per-endpoint and per-stage latency
	// histograms, plus the sampled trace ring behind /debug/traces.
	eps        [numEndpoints]endpointMetrics
	stages     [obs.NumStages]obs.Histogram
	ring       *obs.TraceRing
	traceSeq   atomic.Int64 // request counter driving 1-in-N sampling
	traceTotal atomic.Int64 // trace IDs
	traceEvery int
	slowNS     int64
	logger     *slog.Logger

	// sloPoll holds the cumulative totals the last http_5xx SLI poll ran
	// against, so PollSLO feeds only the delta since the previous call.
	sloPoll struct {
		mu        sync.Mutex
		good, bad int64
	}
}

// New returns a Server with the given configuration.
func New(cfg Config) *Server {
	s := &Server{
		eng:         cfg.Engine,
		store:       cfg.Store,
		tasks:       cfg.Tasks,
		insight:     cfg.Insight,
		lifecycle:   cfg.Lifecycle,
		slo:         cfg.SLO,
		watchdog:    cfg.Watchdog,
		start:       time.Now(),
		maxInflight: cfg.MaxInflight,
		maxQueue:    cfg.MaxQueue,
		defTimeout:  cfg.DefaultTimeout,
		maxTimeout:  cfg.MaxTimeout,
		maxBody:     cfg.MaxBodyBytes,
	}
	if s.tasks != nil {
		// One pool directory and one engine serve selects and tasks: the
		// task store's are authoritative so its journal covers every
		// mutation the handlers apply.
		if s.store == nil {
			s.store = s.tasks.Pools()
		}
		if s.eng == nil {
			s.eng = s.tasks.Engine()
		}
	}
	if s.eng == nil {
		s.eng = jury.NewEngine(jury.BatchOptions{})
	}
	if s.store == nil {
		s.store = NewStore()
	}
	if s.maxInflight <= 0 {
		s.maxInflight = runtime.GOMAXPROCS(0)
	}
	if s.maxQueue == 0 {
		s.maxQueue = DefaultMaxQueue
	} else if s.maxQueue < 0 {
		s.maxQueue = 0
	}
	if s.defTimeout <= 0 {
		s.defTimeout = DefaultTimeout
	}
	if s.maxTimeout <= 0 {
		s.maxTimeout = DefaultMaxTimeout
	}
	if s.maxBody <= 0 {
		s.maxBody = DefaultMaxBodyBytes
	}
	s.maxBatch = cfg.MaxBatchItems
	if s.maxBatch <= 0 {
		s.maxBatch = DefaultMaxBatchItems
	}
	if cfg.SelectCacheEntries >= 0 {
		s.cache = newSelectCache(cfg.SelectCacheEntries)
	}
	s.sem = make(chan struct{}, s.maxInflight)
	s.slowNS = cfg.SlowRequest.Nanoseconds()
	s.traceEvery = cfg.TraceEvery
	s.ring = obs.NewTraceRing(cfg.TraceRingSize)
	s.logger = slogLogger(cfg.Logger)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jer", s.instrument(epJER, s.handleJER))
	s.mux.HandleFunc("POST /v1/select", s.instrument(epSelectMiss, s.handleSelect))
	s.mux.HandleFunc("POST /v1/select/batch", s.instrument(epSelectBatch, s.handleSelectBatch))
	s.mux.HandleFunc("GET /v1/pools", s.instrument(epPoolList, s.handlePoolList))
	s.mux.HandleFunc("GET /v1/pools/{name}", s.instrument(epPoolGet, s.handlePoolGet))
	s.mux.HandleFunc("PUT /v1/pools/{name}/jurors", s.instrument(epPoolPut, s.handlePoolPut))
	s.mux.HandleFunc("PATCH /v1/pools/{name}/jurors", s.instrument(epPoolPatch, s.handlePoolPatch))
	s.mux.HandleFunc("DELETE /v1/pools/{name}", s.instrument(epPoolDelete, s.handlePoolDelete))
	s.mux.HandleFunc("POST /v1/tasks", s.instrument(epTaskCreate, s.requireTasks(s.handleTaskCreate)))
	s.mux.HandleFunc("GET /v1/tasks", s.instrument(epTaskList, s.requireTasks(s.handleTaskList)))
	s.mux.HandleFunc("GET /v1/tasks/{id}", s.instrument(epTaskGet, s.requireTasks(s.handleTaskGet)))
	s.mux.HandleFunc("POST /v1/tasks/{id}/votes", s.instrument(epTaskVote, s.requireTasks(s.handleTaskVote)))
	s.mux.HandleFunc("POST /v1/tasks/{id}/votes/batch", s.instrument(epTaskVoteBatch, s.requireTasks(s.handleTaskVoteBatch)))
	s.mux.HandleFunc("GET /v1/insight/jurors", s.instrument(epInsightJurors, s.requireInsight(s.handleInsightJurors)))
	s.mux.HandleFunc("GET /v1/insight/calibration", s.instrument(epInsightCalibration, s.requireInsight(s.handleInsightCalibration)))
	s.mux.HandleFunc("GET /v1/insight/agreement", s.instrument(epInsightAgreement, s.requireInsight(s.handleInsightAgreement)))
	s.mux.HandleFunc("GET /v1/tasks/{id}/timeline", s.instrument(epTaskTimeline, s.requireLifecycle(s.handleTaskTimeline)))
	s.mux.HandleFunc("GET /v1/lifecycle", s.instrument(epLifecycle, s.requireLifecycle(s.handleLifecycle)))
	s.mux.HandleFunc("GET /v1/slo", s.instrument(epSLO, s.requireSLO(s.handleSLO)))
	// Ops routes ride the same instrumentation as the /v1 families (PR
	// 10): scrapes and probes get latency histograms and trace sampling
	// for free, and the pooled reqWriter keeps the added alloc count at
	// zero.
	s.mux.HandleFunc("GET /healthz", s.instrument(epOpsHealthz, s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument(epOpsMetrics, s.handleMetrics))
	s.mux.HandleFunc("GET /metrics/prometheus", s.instrument(epOpsMetricsProm, s.handleMetricsProm))
	s.mux.HandleFunc("GET /debug/traces", s.instrument(epOpsDebugTraces, s.handleDebugTraces))
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store returns the server's pool store, e.g. for initial pool loading.
func (s *Server) Store() *Store { return s.store }

// Engine returns the server's shared JER engine.
func (s *Server) Engine() *jury.Engine { return s.eng }

// SetDraining flips the health signal: while draining, /healthz returns
// 503 so load balancers stop routing here, while in-flight and queued
// requests complete. cmd/juryd sets it on SIGTERM before http shutdown.
func (s *Server) SetDraining(v bool) { s.m.draining.Store(v) }

// httpError is an error with a dedicated HTTP status.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// OverloadedMsg is the error body of a 429 shed by admission control.
// Batch endpoints embed it as a per-item {"error": ...} value, so batch
// clients match against it to recognize a shed item.
const OverloadedMsg = "server overloaded, retry later"

// errShed is returned by admit when the queue is full.
var errShed = &httpError{status: http.StatusTooManyRequests, msg: OverloadedMsg}

// admit reserves an inflight slot for an evaluation request, queueing up
// to maxQueue waiters and shedding beyond that. On success the returned
// release must be called when the evaluation finishes.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	release = func() { <-s.sem }
	select {
	case s.sem <- struct{}{}:
		return release, nil
	default:
	}
	if int(s.m.queued.Add(1)) > s.maxQueue {
		s.m.queued.Add(-1)
		s.m.shed.Add(1)
		return nil, errShed
	}
	defer s.m.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// deadline resolves the effective per-request timeout: the request's
// timeout_ms when given (clamped to the configured maximum), otherwise
// the server default.
func (s *Server) deadline(timeoutMS int64) (time.Duration, error) {
	if timeoutMS < 0 {
		return 0, badRequest("timeout_ms must be positive, got %d", timeoutMS)
	}
	d := s.defTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.maxTimeout {
			d = s.maxTimeout
		}
	}
	return d, nil
}

// bufPool recycles the request-read and response-encode buffers across
// requests: the steady-state serving paths (selects, votes) otherwise
// re-allocate a body-sized buffer per call. Buffers that ballooned past
// maxPooledBuf (a giant PUT) are dropped instead of pinned forever.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBuf = 1 << 20

func putBuf(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledBuf {
		buf.Reset()
		bufPool.Put(buf)
	}
}

// decode parses a JSON request body with a size bound and strict fields.
// The body is read into a pooled buffer; exceeding the size bound is a
// 413, not a 400 — the request was well-formed, just too big.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	buf := bufPool.Get().(*bytes.Buffer)
	defer putBuf(buf)
	if _, err := buf.ReadFrom(r.Body); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &httpError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds the %d-byte limit", mbe.Limit)}
		}
		return badRequest("reading request body: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return badRequest("decoding request body: %v", err)
	}
	mark(w, obs.StageDecode)
	return nil
}

// writeJSON encodes a JSON response through a pooled buffer, so an
// encoding failure surfaces as a clean 500 instead of a torn 2xx body.
func writeJSON(w http.ResponseWriter, status int, body any) {
	buf := bufPool.Get().(*bytes.Buffer)
	defer putBuf(buf)
	if err := json.NewEncoder(buf).Encode(body); err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
		return
	}
	writeRawJSON(w, status, buf.Bytes())
}

// writeRawJSON writes a pre-encoded JSON body (the cached-select and
// batch splice paths).
func writeRawJSON(w http.ResponseWriter, status int, raw []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(raw) //nolint:errcheck // headers are already out
	mark(w, obs.StageEncode)
}

// fail maps an error to its HTTP status and writes the JSON error body.
func (s *Server) fail(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	switch {
	case errors.As(err, &he):
		status = he.status
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrPoolNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrUnknownJuror), errors.Is(err, ErrNoUpdates),
		errors.Is(err, jury.ErrNoCandidates), errors.Is(err, jury.ErrEmptyJury),
		errors.Is(err, pbdist.ErrRateOutOfRange):
		status = http.StatusBadRequest
	case errors.Is(err, tasks.ErrTaskNotFound):
		status = http.StatusNotFound
	case errors.Is(err, tasks.ErrTaskClosed), errors.Is(err, tasks.ErrAlreadyVoted),
		errors.Is(err, tasks.ErrJurorReleased):
		status = http.StatusConflict
	case errors.Is(err, tasks.ErrNotInvited), errors.Is(err, tasks.ErrInvalidSpec):
		status = http.StatusBadRequest
	case errors.Is(err, jury.ErrNoFeasibleJury):
		status = http.StatusUnprocessableEntity
	}
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// handleJER serves POST /v1/jer: the exact JER of one jury.
func (s *Server) handleJER(w http.ResponseWriter, r *http.Request) {
	var req JERRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if len(req.ErrorRates) == 0 {
		s.fail(w, badRequest("error_rates must be non-empty"))
		return
	}
	d, err := s.deadline(req.TimeoutMS)
	if err != nil {
		s.fail(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		s.fail(w, err)
		return
	}
	mark(w, obs.StageQueueWait)
	defer release()
	v, err := s.eng.JERContext(ctx, req.ErrorRates)
	if err != nil {
		s.fail(w, err)
		return
	}
	mark(w, obs.StageEngine)
	s.m.jerServed.Add(1)
	writeJSON(w, http.StatusOK, JERResponse{JER: v, Size: len(req.ErrorRates)})
}

// selectPlan is one validated select: the parsed request plus its
// resolved candidate source. A named pool resolves to its current
// snapshot at parse time, once: everything downstream — including the
// response's pool_version and the cache key — reads that one immutable
// snapshot, no matter how many PATCHes land meanwhile.
type selectPlan struct {
	req   *SelectRequest
	model string
	kind  selectKind
	pool  *Pool        // nil for inline candidates
	cands []jury.Juror // inline candidates, validated; nil when pool is set
}

// parseSelect validates one select request and resolves its candidate
// source. It performs no evaluation work and takes no admission slot.
func (s *Server) parseSelect(req *SelectRequest) (selectPlan, error) {
	p := selectPlan{req: req, model: req.Model}
	if p.model == "" {
		p.model = "altr"
	}
	if p.model != "altr" && p.model != "pay" {
		return p, badRequest("unknown model %q (want altr or pay)", p.model)
	}
	switch {
	case req.Pool != "" && req.Candidates != nil:
		return p, badRequest("pool and candidates are mutually exclusive")
	case req.Pool != "":
		pool, ok := s.store.Get(req.Pool)
		if !ok {
			return p, fmt.Errorf("%w: %q", ErrPoolNotFound, req.Pool)
		}
		p.pool = pool
	case len(req.Candidates) > 0:
		p.cands = make([]jury.Juror, len(req.Candidates))
		for i, c := range req.Candidates {
			p.cands[i] = c.Juror()
		}
		// Inline candidates are client input: validate at the boundary so
		// malformed jurors answer 400, before a queue slot is spent.
		if err := core.ValidateCandidates(p.cands); err != nil {
			return p, badRequest("%v", err)
		}
	default:
		return p, badRequest("request must name a pool or carry candidates")
	}
	switch {
	case p.model == "pay" && req.Budget < 0:
		return p, badRequest("budget must be non-negative, got %g", req.Budget)
	case p.model == "altr" && (req.Budget != 0 || req.Exact):
		// Silently ignoring these and echoing the budget back would let a
		// client believe a constraint was applied when it was not.
		return p, badRequest("budget and exact apply only to model \"pay\"")
	}
	switch {
	case p.model == "altr":
		p.kind = kindAltr
	case req.Exact:
		p.kind = kindPayExact
		n := len(p.cands)
		if p.pool != nil {
			n = len(p.pool.Sorted())
		}
		if n > jury.MaxExactCandidates {
			return p, badRequest("exact enumeration accepts at most %d candidates, got %d",
				jury.MaxExactCandidates, n)
		}
	default:
		p.kind = kindPay
	}
	return p, nil
}

// computeSelectRaw runs the engine for one plan and returns the fully
// encoded JSON response — byte-identical to what writeJSON would emit
// for the same SelectResponse, so cached and uncached responses are
// indistinguishable on the wire.
func (s *Server) computeSelectRaw(ctx context.Context, p selectPlan) ([]byte, error) {
	var sel jury.Selection
	var err error
	switch {
	case p.kind == kindAltr && p.pool != nil:
		// The snapshot is validated and ε-sorted at ingest: the hot path
		// runs with no re-validation, no sort, and no lock.
		sel, err = s.eng.SelectAltruisticSnapshot(ctx, p.pool.Sorted())
	case p.kind == kindAltr:
		sel, err = s.eng.SelectAltruisticSnapshot(ctx, core.SortedByErrorRate(p.cands))
	default: // pay
		cands := p.cands
		if p.pool != nil {
			cands = p.pool.Sorted()
		}
		if p.kind == kindPayExact {
			sel, err = s.eng.SelectExactContext(ctx, cands, p.req.Budget)
		} else {
			sel, err = s.eng.SelectBudgetedContext(ctx, cands, p.req.Budget)
		}
	}
	if err != nil {
		return nil, err
	}
	resp := SelectResponse{Selection: dataio.NewSelectionJSON(p.model, p.req.Budget, sel)}
	if p.pool != nil {
		resp.Pool = p.pool.Name
		resp.PoolVersion = p.pool.Version
	}
	raw, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// selectRaw resolves one plan to response bytes, reporting whether the
// version-keyed cache served it. Pool-backed selects go through the
// cache: a warm key returns resident bytes without touching admission
// control, the engine, or the encoder; a cold key computes once under
// singleflight with only the flight leader holding an admission slot.
// Inline-candidate selects (arbitrary client payloads, no version to
// key on) always compute. w carries the stage recorder; a follower
// collapsed onto another flight books its wait as engine time.
func (s *Server) selectRaw(ctx context.Context, w http.ResponseWriter, p selectPlan) ([]byte, bool, error) {
	if p.pool != nil && s.cache != nil {
		key := selectKey{pool: p.pool.Name, version: p.pool.Version, kind: p.kind, budget: p.req.Budget}
		if raw, ok := s.cache.get(key); ok {
			mark(w, obs.StageCacheProbe)
			return raw, true, nil
		}
		raw, err := s.cache.do(key, func() ([]byte, error) {
			release, err := s.admit(ctx)
			if err != nil {
				return nil, err
			}
			mark(w, obs.StageQueueWait)
			defer release()
			return s.computeSelectRaw(ctx, p)
		})
		mark(w, obs.StageEngine)
		return raw, false, err
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, false, err
	}
	mark(w, obs.StageQueueWait)
	defer release()
	raw, err := s.computeSelectRaw(ctx, p)
	mark(w, obs.StageEngine)
	return raw, false, err
}

// handleSelect serves POST /v1/select: pick the minimum-JER jury from a
// named pool snapshot or an inline candidate set.
func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req SelectRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	d, err := s.deadline(req.TimeoutMS)
	if err != nil {
		s.fail(w, err)
		return
	}
	plan, err := s.parseSelect(&req)
	if err != nil {
		s.fail(w, err)
		return
	}
	mark(w, obs.StageSnapshot)
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	raw, hit, err := s.selectRaw(ctx, w, plan)
	if err != nil {
		s.fail(w, err)
		return
	}
	if hit {
		setEndpoint(w, epSelectWarm)
	}
	s.m.selections.Add(1)
	writeRawJSON(w, http.StatusOK, raw)
}

// handleSelectBatch serves POST /v1/select/batch: N selects in one
// round trip, each resolved independently through the same parse →
// cache → compute path as /v1/select. Per-item results are spliced from
// their pre-encoded bytes — a batch of warm keys never touches an
// encoder. Item failures are per-item {"error": ...} objects, not a
// batch failure, so one bad select cannot void its neighbours' work.
func (s *Server) handleSelectBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSelectRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if len(req.Selects) == 0 {
		s.fail(w, badRequest("selects must be non-empty"))
		return
	}
	if len(req.Selects) > s.maxBatch {
		s.fail(w, badRequest("batch accepts at most %d selects, got %d", s.maxBatch, len(req.Selects)))
		return
	}
	d, err := s.deadline(req.TimeoutMS)
	if err != nil {
		s.fail(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()

	buf := bufPool.Get().(*bytes.Buffer)
	defer putBuf(buf)
	buf.WriteString(`{"results":[`)
	for i := range req.Selects {
		if i > 0 {
			buf.WriteByte(',')
		}
		plan, err := s.parseSelect(&req.Selects[i])
		var raw []byte
		if err == nil {
			raw, _, err = s.selectRaw(ctx, w, plan)
		}
		if err != nil {
			item, merr := json.Marshal(errorResponse{Error: err.Error()})
			if merr != nil {
				item = []byte(`{"error":"encoding item error"}`)
			}
			buf.Write(item)
			continue
		}
		s.m.selections.Add(1)
		buf.Write(bytes.TrimRight(raw, "\n"))
	}
	buf.WriteString("]}\n")
	s.m.batchSelects.Add(1)
	writeRawJSON(w, http.StatusOK, buf.Bytes())
}

// handlePoolList serves GET /v1/pools.
func (s *Server) handlePoolList(w http.ResponseWriter, r *http.Request) {
	pools := s.store.List()
	out := PoolListResponse{Pools: make([]PoolResponse, len(pools))}
	for i, p := range pools {
		out.Pools[i] = poolResponse(p, false)
	}
	writeJSON(w, http.StatusOK, out)
}

// handlePoolGet serves GET /v1/pools/{name}.
func (s *Server) handlePoolGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	p, ok := s.store.Get(name)
	if !ok {
		s.fail(w, fmt.Errorf("%w: %q", ErrPoolNotFound, name))
		return
	}
	writeJSON(w, http.StatusOK, poolResponse(p, true))
}

// handlePoolPut serves PUT /v1/pools/{name}/jurors: full replacement
// (creating the pool when absent).
func (s *Server) handlePoolPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req PutJurorsRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	jurors := make([]jury.Juror, len(req.Jurors))
	for i, j := range req.Jurors {
		jurors[i] = j.Juror()
	}
	p, err := s.putPool(name, jurors)
	if err != nil {
		s.fail(w, badRequest("%v", err))
		return
	}
	mark(w, obs.StageStore)
	s.m.poolWrites.Add(1)
	writeJSON(w, http.StatusOK, poolResponse(p, false))
}

// handlePoolPatch serves PATCH /v1/pools/{name}/jurors: incremental
// updates, including folding observed votes into error rates.
func (s *Server) handlePoolPatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req PatchJurorsRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	ups := make([]JurorUpdate, len(req.Updates))
	for i, u := range req.Updates {
		ups[i] = JurorUpdate{ID: u.ID, ErrorRate: u.ErrorRate, Cost: u.Cost, Remove: u.Remove}
		if u.Votes != nil {
			ups[i].Votes = &VoteObservation{Wrong: u.Votes.Wrong, Total: u.Votes.Total}
		}
	}
	p, err := s.patchPool(name, ups)
	if err != nil {
		if errors.Is(err, ErrPoolNotFound) {
			s.fail(w, err)
		} else {
			s.fail(w, badRequest("%v", err))
		}
		return
	}
	mark(w, obs.StageStore)
	s.m.poolWrites.Add(1)
	writeJSON(w, http.StatusOK, poolResponse(p, false))
}

// handlePoolDelete serves DELETE /v1/pools/{name}.
func (s *Server) handlePoolDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	existed, err := s.deletePool(name)
	if err != nil {
		s.fail(w, err)
		return
	}
	if !existed {
		s.fail(w, fmt.Errorf("%w: %q", ErrPoolNotFound, name))
		return
	}
	mark(w, obs.StageStore)
	s.m.poolWrites.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

// putPool, patchPool and deletePool route pool mutations through the
// task store's write-ahead log when one is configured — the durability
// contract: every mutation a restarted juryd must replay goes through
// one journal — and straight to the in-memory store otherwise.
func (s *Server) putPool(name string, jurors []jury.Juror) (*Pool, error) {
	if s.tasks != nil {
		return s.tasks.PutPool(name, jurors)
	}
	return s.store.Put(name, jurors)
}

func (s *Server) patchPool(name string, ups []JurorUpdate) (*Pool, error) {
	if s.tasks != nil {
		return s.tasks.PatchPool(name, ups)
	}
	return s.store.Patch(name, ups)
}

func (s *Server) deletePool(name string) (bool, error) {
	if s.tasks != nil {
		return s.tasks.DeletePool(name)
	}
	return s.store.Delete(name), nil
}
