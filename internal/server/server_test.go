package server

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"juryselect/internal/dataio"
	"juryselect/jury"
)

// newTestServer starts an httptest server over a fresh Server with the
// given config and returns both.
func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// do issues a JSON request and decodes the response body into out (when
// non-nil), returning the status code.
func do(t testing.TB, method, url string, body, out any) int {
	t.Helper()
	var r io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		r = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s %s response (%d): %v\n%s", method, url, resp.StatusCode, err, raw)
		}
	}
	return resp.StatusCode
}

func putPool(t testing.TB, base, name string, jurors []jury.Juror) {
	t.Helper()
	req := PutJurorsRequest{}
	for _, j := range jurors {
		req.Jurors = append(req.Jurors, dataio.JurorJSON{ID: j.ID, ErrorRate: j.ErrorRate, Cost: j.Cost})
	}
	if code := do(t, http.MethodPut, base+"/v1/pools/"+name+"/jurors", req, nil); code != http.StatusOK {
		t.Fatalf("PUT pool: status %d", code)
	}
}

func TestJEREndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rates := []float64{0.1, 0.2, 0.3}
	var resp JERResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/jer", JERRequest{ErrorRates: rates}, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want, err := jury.JER(rates)
	if err != nil {
		t.Fatal(err)
	}
	if resp.JER != want || resp.Size != 3 {
		t.Errorf("got %+v, want JER %g size 3", resp, want)
	}
}

func TestJEREndpointRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body any
	}{
		{"empty rates", JERRequest{}},
		{"rate at 1", JERRequest{ErrorRates: []float64{0.2, 1.0}}},
		{"rate at 0", JERRequest{ErrorRates: []float64{0.0}}},
		{"negative timeout", JERRequest{ErrorRates: []float64{0.2}, TimeoutMS: -5}},
		{"unknown field", map[string]any{"rates": []float64{0.2}}},
	}
	for _, tc := range cases {
		var errResp errorResponse
		if code := do(t, http.MethodPost, ts.URL+"/v1/jer", tc.body, &errResp); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, code, errResp.Error)
		}
	}
}

func TestSelectFromInlineCandidates(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cands := testJurors(9)
	req := SelectRequest{}
	for _, j := range cands {
		req.Candidates = append(req.Candidates, dataio.JurorJSON{ID: j.ID, ErrorRate: j.ErrorRate, Cost: j.Cost})
	}
	var resp SelectResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/select", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want, err := jury.SelectAltruistic(cands)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Selection.JER != want.JER || resp.Selection.Size != want.Size() {
		t.Errorf("got JER %g size %d, want %g/%d", resp.Selection.JER, resp.Selection.Size, want.JER, want.Size())
	}
	if resp.Pool != "" || resp.PoolVersion != 0 {
		t.Errorf("inline selection reported pool %q v%d", resp.Pool, resp.PoolVersion)
	}
	if resp.Selection.Model != "altr" {
		t.Errorf("model %q", resp.Selection.Model)
	}
}

func TestSelectFromPoolReportsVersion(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putPool(t, ts.URL, "crowd", testJurors(9))
	var resp SelectResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/select", SelectRequest{Pool: "crowd"}, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Pool != "crowd" || resp.PoolVersion != 1 {
		t.Errorf("got pool %q v%d, want crowd v1", resp.Pool, resp.PoolVersion)
	}
	want, err := jury.SelectAltruistic(testJurors(9))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Selection.JER != want.JER {
		t.Errorf("pool selection JER %g, want %g", resp.Selection.JER, want.JER)
	}
}

func TestSelectPayRespectsBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putPool(t, ts.URL, "crowd", testJurors(9))
	var resp SelectResponse
	req := SelectRequest{Pool: "crowd", Model: "pay", Budget: 0.5}
	if code := do(t, http.MethodPost, ts.URL+"/v1/select", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Selection.Cost > 0.5+1e-12 {
		t.Errorf("cost %g over budget", resp.Selection.Cost)
	}
	if resp.Selection.Size%2 != 1 {
		t.Errorf("even jury size %d", resp.Selection.Size)
	}
	// Exact enumeration must be at least as good as the greedy.
	var exact SelectResponse
	req.Exact = true
	if code := do(t, http.MethodPost, ts.URL+"/v1/select", req, &exact); code != http.StatusOK {
		t.Fatalf("exact status %d", code)
	}
	if exact.Selection.JER > resp.Selection.JER+1e-12 {
		t.Errorf("exact %g worse than greedy %g", exact.Selection.JER, resp.Selection.JER)
	}
}

func TestSelectRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putPool(t, ts.URL, "crowd", testJurors(30))
	inline := []any{map[string]any{"id": "a", "error_rate": 0.2}}
	cases := []struct {
		name string
		body any
		want int
	}{
		{"no source", SelectRequest{}, http.StatusBadRequest},
		{"both sources", map[string]any{"pool": "crowd", "candidates": inline}, http.StatusBadRequest},
		{"missing pool", SelectRequest{Pool: "ghost"}, http.StatusNotFound},
		{"bad model", SelectRequest{Pool: "crowd", Model: "quantum"}, http.StatusBadRequest},
		{"budget under altr", SelectRequest{Pool: "crowd", Budget: 0.5}, http.StatusBadRequest},
		{"exact under altr", SelectRequest{Pool: "crowd", Exact: true}, http.StatusBadRequest},
		{"negative budget", SelectRequest{Pool: "crowd", Model: "pay", Budget: -1}, http.StatusBadRequest},
		{"exact too large", SelectRequest{Pool: "crowd", Model: "pay", Budget: 1, Exact: true}, http.StatusBadRequest},
		{"invalid inline juror", map[string]any{"candidates": []any{map[string]any{"id": "x", "error_rate": 2.0}}}, http.StatusBadRequest},
		{"infeasible budget", SelectRequest{Pool: "crowd", Model: "pay", Budget: 0.001}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		var errResp errorResponse
		if code := do(t, http.MethodPost, ts.URL+"/v1/select", tc.body, &errResp); code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.want, errResp.Error)
		}
	}
}

func TestPoolCRUDRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putPool(t, ts.URL, "crowd", []jury.Juror{
		{ID: "a", ErrorRate: 0.1}, {ID: "b", ErrorRate: 0.2}, {ID: "c", ErrorRate: 0.45},
	})

	var pool PoolResponse
	if code := do(t, http.MethodGet, ts.URL+"/v1/pools/crowd", nil, &pool); code != http.StatusOK {
		t.Fatalf("GET pool: status %d", code)
	}
	if pool.Version != 1 || pool.Size != 3 || len(pool.Jurors) != 3 {
		t.Fatalf("pool = %+v", pool)
	}

	// Fold votes: c answered 50 tasks, none wrong — its estimate drops.
	patch := PatchJurorsRequest{Updates: []JurorUpdateJSON{
		{ID: "c", Votes: &VotesJSON{Wrong: 0, Total: 50}},
	}}
	var patched PoolResponse
	if code := do(t, http.MethodPatch, ts.URL+"/v1/pools/crowd/jurors", patch, &patched); code != http.StatusOK {
		t.Fatalf("PATCH: status %d", code)
	}
	if patched.Version != 2 {
		t.Errorf("patched version %d, want 2", patched.Version)
	}
	if code := do(t, http.MethodGet, ts.URL+"/v1/pools/crowd", nil, &pool); code != http.StatusOK {
		t.Fatal("GET after patch failed")
	}
	for _, j := range pool.Jurors {
		if j.ID == "c" {
			if j.ErrorRate >= 0.45 {
				t.Errorf("votes did not re-estimate: ε = %g", j.ErrorRate)
			}
			if j.TotalVotes != 50 || j.WrongVotes != 0 {
				t.Errorf("vote record %d/%d", j.WrongVotes, j.TotalVotes)
			}
		}
	}

	var list PoolListResponse
	if code := do(t, http.MethodGet, ts.URL+"/v1/pools", nil, &list); code != http.StatusOK {
		t.Fatal("list failed")
	}
	if len(list.Pools) != 1 || list.Pools[0].Name != "crowd" || list.Pools[0].Jurors != nil {
		t.Errorf("list = %+v", list)
	}

	if code := do(t, http.MethodDelete, ts.URL+"/v1/pools/crowd", nil, nil); code != http.StatusNoContent {
		t.Errorf("DELETE status %d", code)
	}
	if code := do(t, http.MethodGet, ts.URL+"/v1/pools/crowd", nil, nil); code != http.StatusNotFound {
		t.Errorf("GET after delete status %d", code)
	}
}

func TestPoolGetReportsCredibleInterval(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putPool(t, ts.URL, "crowd", []jury.Juror{
		{ID: "fresh", ErrorRate: 0.2}, {ID: "seasoned", ErrorRate: 0.2},
	})
	patch := PatchJurorsRequest{Updates: []JurorUpdateJSON{
		{ID: "seasoned", Votes: &VotesJSON{Wrong: 100, Total: 500}},
	}}
	if code := do(t, http.MethodPatch, ts.URL+"/v1/pools/crowd/jurors", patch, nil); code != http.StatusOK {
		t.Fatalf("PATCH: status %d", code)
	}
	var pool PoolResponse
	if code := do(t, http.MethodGet, ts.URL+"/v1/pools/crowd", nil, &pool); code != http.StatusOK {
		t.Fatalf("GET pool: status %d", code)
	}
	widths := map[string]float64{}
	for _, j := range pool.Jurors {
		if !(0 <= j.RateLo && j.RateLo < j.ErrorRate && j.ErrorRate < j.RateHi && j.RateHi <= 1) {
			t.Errorf("juror %s: interval [%g, %g] does not bracket ε = %g", j.ID, j.RateLo, j.RateHi, j.ErrorRate)
		}
		widths[j.ID] = j.RateHi - j.RateLo
	}
	// 500 observed votes dominate the 10-task prior: the seasoned juror's
	// interval must be much tighter than the fresh juror's.
	if widths["seasoned"] >= widths["fresh"]/2 {
		t.Errorf("interval widths fresh=%g seasoned=%g: votes did not tighten the estimate",
			widths["fresh"], widths["seasoned"])
	}
}

func TestVoteDriftChangesSelection(t *testing.T) {
	// The paper's online framing end to end: an initially mediocre juror
	// builds a strong voting record, the PATCH path re-estimates it, and
	// the next selection picks a different jury.
	_, ts := newTestServer(t, Config{})
	putPool(t, ts.URL, "crowd", []jury.Juror{
		{ID: "good1", ErrorRate: 0.10},
		{ID: "good2", ErrorRate: 0.12},
		{ID: "good3", ErrorRate: 0.14},
		{ID: "sleeper", ErrorRate: 0.40},
	})
	var before SelectResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/select", SelectRequest{Pool: "crowd"}, &before); code != http.StatusOK {
		t.Fatal("select failed")
	}
	for _, j := range before.Selection.Jurors {
		if j.ID == "sleeper" {
			t.Fatal("sleeper selected before its record")
		}
	}
	patch := PatchJurorsRequest{Updates: []JurorUpdateJSON{
		{ID: "sleeper", Votes: &VotesJSON{Wrong: 0, Total: 2000}},
	}}
	if code := do(t, http.MethodPatch, ts.URL+"/v1/pools/crowd/jurors", patch, nil); code != http.StatusOK {
		t.Fatal("patch failed")
	}
	var after SelectResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/select", SelectRequest{Pool: "crowd"}, &after); code != http.StatusOK {
		t.Fatal("select failed")
	}
	if after.PoolVersion != 2 {
		t.Errorf("selection ran on version %d, want 2", after.PoolVersion)
	}
	found := false
	for _, j := range after.Selection.Jurors {
		found = found || j.ID == "sleeper"
	}
	if !found {
		t.Errorf("sleeper still unselected after 2000 correct votes: %+v", after.Selection.Jurors)
	}
	if after.Selection.JER >= before.Selection.JER {
		t.Errorf("JER did not improve: %g → %g", before.Selection.JER, after.Selection.JER)
	}
}

func TestAdmissionShedsWith429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1, MaxQueue: -1})
	// Occupy the only inflight slot; queueing is disabled, so the next
	// evaluation request must shed immediately.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	var errResp errorResponse
	code := do(t, http.MethodPost, ts.URL+"/v1/jer", JERRequest{ErrorRates: []float64{0.2}}, &errResp)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", code, errResp.Error)
	}
	var m metricsResponse
	if do(t, http.MethodGet, ts.URL+"/metrics", nil, &m); m.Shed != 1 {
		t.Errorf("shed counter %d, want 1", m.Shed)
	}
	// Pool reads stay available under shed: only evaluations queue.
	if code := do(t, http.MethodGet, ts.URL+"/v1/pools", nil, nil); code != http.StatusOK {
		t.Errorf("pool list sheds: %d", code)
	}
}

func TestQueuedRequestHonoursDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 8})
	s.sem <- struct{}{} // slot stays busy past the request's deadline
	defer func() { <-s.sem }()
	var errResp errorResponse
	code := do(t, http.MethodPost, ts.URL+"/v1/jer",
		JERRequest{ErrorRates: []float64{0.2}, TimeoutMS: 30}, &errResp)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", code, errResp.Error)
	}
}

func TestHealthzAndDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var h healthResponse
	if code := do(t, http.MethodGet, ts.URL+"/healthz", nil, &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz = %d %+v", code, h)
	}
	s.SetDraining(true)
	if code := do(t, http.MethodGet, ts.URL+"/healthz", nil, &h); code != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining healthz = %d %+v", code, h)
	}
	s.SetDraining(false)
	if code := do(t, http.MethodGet, ts.URL+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz after drain cleared = %d", code)
	}
}

func TestMetricsCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putPool(t, ts.URL, "crowd", testJurors(20))
	for i := 0; i < 3; i++ {
		if code := do(t, http.MethodPost, ts.URL+"/v1/select", SelectRequest{Pool: "crowd"}, nil); code != http.StatusOK {
			t.Fatal("select failed")
		}
	}
	do(t, http.MethodPost, ts.URL+"/v1/jer", JERRequest{ErrorRates: []float64{0.1, 0.2, 0.3}}, nil)
	var m metricsResponse
	if code := do(t, http.MethodGet, ts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatal("metrics failed")
	}
	if m.Selections != 3 || m.JERServed != 1 || m.PoolWrites != 1 || m.Pools != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.Requests < 5 {
		t.Errorf("requests = %d, want ≥ 5", m.Requests)
	}
	if m.EngineEvaluations == 0 {
		t.Error("engine evaluations not surfaced")
	}
}

// TestConcurrentSelectsDuringPatches is the service-level linearizability
// check (run under -race): selections hammer a pool while a writer
// publishes new versions, and every response must be internally
// consistent with exactly one pool version — every returned juror carries
// that version's error rate, and the reported JER is the exact JER of the
// returned jury. A torn read (a selection spanning two versions) would
// mix rates across versions and fail the table check.
func TestConcurrentSelectsDuringPatches(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInflight: 4, MaxQueue: 1 << 20})
	base := testJurors(15)
	putPool(t, ts.URL, "crowd", base)

	const rounds = 60
	const selectors = 4

	// rateByVersion[v] is the full id→ε table of pool version v. The
	// single writer mutates one juror per patch, so every version's table
	// is known exactly.
	rateByVersion := make([]map[string]float64, rounds+2)
	table := make(map[string]float64, len(base))
	for _, j := range base {
		table[j.ID] = j.ErrorRate
	}
	clone := func(m map[string]float64) map[string]float64 {
		out := make(map[string]float64, len(m))
		for k, v := range m {
			out[k] = v
		}
		return out
	}
	rateByVersion[1] = clone(table)
	// Precompute every patch so the writer goroutine shares nothing with
	// the checkers except the server.
	type patchStep struct {
		id   string
		rate float64
	}
	steps := make([]patchStep, rounds)
	for i := range steps {
		id := base[i%len(base)].ID
		rate := 0.05 + 0.9*math.Mod(float64(i)*0.618033988749895, 1)
		steps[i] = patchStep{id: id, rate: rate}
		table[id] = rate
		rateByVersion[i+2] = clone(table)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the writer
		defer wg.Done()
		for _, st := range steps {
			rate := st.rate
			patch := PatchJurorsRequest{Updates: []JurorUpdateJSON{{ID: st.id, ErrorRate: &rate}}}
			if code := do(t, http.MethodPatch, ts.URL+"/v1/pools/crowd/jurors", patch, nil); code != http.StatusOK {
				t.Errorf("patch status %d", code)
				return
			}
		}
	}()
	for w := 0; w < selectors; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				var resp SelectResponse
				code := do(t, http.MethodPost, ts.URL+"/v1/select", SelectRequest{Pool: "crowd"}, &resp)
				if code != http.StatusOK {
					t.Errorf("select status %d", code)
					return
				}
				v := resp.PoolVersion
				if v < 1 || int(v) >= len(rateByVersion) {
					t.Errorf("impossible pool version %d", v)
					return
				}
				want := rateByVersion[v]
				var rates []float64
				for _, j := range resp.Selection.Jurors {
					if wr, ok := want[j.ID]; !ok || wr != j.ErrorRate {
						t.Errorf("torn read: juror %s has ε=%g, version %d says %g",
							j.ID, j.ErrorRate, v, wr)
						return
					}
					rates = append(rates, j.ErrorRate)
				}
				exact, err := jury.JER(rates)
				if err != nil {
					t.Error(err)
					return
				}
				// The snapshot path evaluates via the incremental sweep,
				// whose rounding differs from a fresh evaluation only in
				// the last ulps; a torn read mixes rates differing by
				// ~0.01–0.9, far above this tolerance.
				if math.Abs(exact-resp.Selection.JER) > 1e-12 {
					t.Errorf("reported JER %g is not the exact JER %g of the returned jury",
						resp.Selection.JER, exact)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestRequestBodyTooLargeIs413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 128})
	big := JERRequest{ErrorRates: make([]float64, 200)}
	for i := range big.ErrorRates {
		big.ErrorRates[i] = 0.25
	}
	var errResp errorResponse
	if code := do(t, http.MethodPost, ts.URL+"/v1/jer", big, &errResp); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d (%s)", code, errResp.Error)
	}
	if !strings.Contains(errResp.Error, "128-byte limit") {
		t.Errorf("error does not mention the limit: %q", errResp.Error)
	}
}

func BenchmarkServerSelect(b *testing.B) {
	_, ts := newTestServer(b, Config{})
	putPool(b, ts.URL, "crowd", testJurors(101))
	body, err := json.Marshal(SelectRequest{Pool: "crowd"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/select", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

func BenchmarkServerJER(b *testing.B) {
	_, ts := newTestServer(b, Config{})
	rates := make([]float64, 101)
	for i := range rates {
		rates[i] = 0.1 + 0.5*float64(i)/101
	}
	body, err := json.Marshal(JERRequest{ErrorRates: rates})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/jer", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}
