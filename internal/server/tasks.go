package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"juryselect/internal/obs"
	"juryselect/internal/tasks"
)

// TaskCreateRequest is the body of POST /v1/tasks: a decision-making
// task posed to a jury selected from a live pool.
type TaskCreateRequest struct {
	// Pool names the juror pool to select from.
	Pool string `json:"pool"`
	// Question is the task's free-text payload (opaque to the service).
	Question string `json:"question,omitempty"`
	// Strategy is "altr" (default) or "pay".
	Strategy string `json:"strategy,omitempty"`
	// Budget is the pay model's budget B (pay strategy only).
	Budget float64 `json:"budget,omitempty"`
	// TargetConfidence closes the task early once the posterior verdict
	// confidence crosses it, in (0.5, 1]. Exactly 1 disables early stop
	// (fixed-jury voting); zero selects the server default (0.9).
	TargetConfidence float64 `json:"target_confidence,omitempty"`
	// MaxInvites caps total invitations including the initial jury
	// (0 = twice the initial jury).
	MaxInvites int `json:"max_invites,omitempty"`
	// JurorTimeoutMS releases a non-responding juror after this long
	// (0 = server default).
	JurorTimeoutMS int64 `json:"juror_timeout_ms,omitempty"`
	// ExpiresInMS closes the whole task without a verdict after this
	// long (0 = server default).
	ExpiresInMS int64 `json:"expires_in_ms,omitempty"`
	// TimeoutMS optionally overrides the per-request deadline for the
	// jury selection, clamped to the configured maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// TaskResponse wraps a task view: the body of POST /v1/tasks (201),
// GET /v1/tasks/{id} and POST /v1/tasks/{id}/votes.
type TaskResponse struct {
	Task tasks.View `json:"task"`
}

// TaskListResponse is the body of GET /v1/tasks.
type TaskListResponse struct {
	Tasks []tasks.View `json:"tasks"`
}

// TaskVoteRequest is the body of POST /v1/tasks/{id}/votes: either a
// vote or an explicit decline (which releases the juror and invites the
// next-best replacement).
type TaskVoteRequest struct {
	JurorID string `json:"juror_id"`
	Vote    *bool  `json:"vote,omitempty"`
	Decline bool   `json:"decline,omitempty"`
}

// handleTaskCreate serves POST /v1/tasks: select a jury and open the
// task. Selection is the expensive step, so creation passes through the
// same admission control as /v1/select.
func (s *Server) handleTaskCreate(w http.ResponseWriter, r *http.Request) {
	var req TaskCreateRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	d, err := s.deadline(req.TimeoutMS)
	if err != nil {
		s.fail(w, err)
		return
	}
	if req.JurorTimeoutMS < 0 || req.ExpiresInMS < 0 {
		s.fail(w, badRequest("juror_timeout_ms and expires_in_ms must be non-negative"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		s.fail(w, err)
		return
	}
	mark(w, obs.StageQueueWait)
	defer release()
	view, err := s.tasks.Create(s.traceCtx(ctx, w), tasks.Spec{
		Pool:             req.Pool,
		Question:         req.Question,
		Strategy:         req.Strategy,
		Budget:           req.Budget,
		TargetConfidence: req.TargetConfidence,
		MaxInvites:       req.MaxInvites,
		JurorTimeout:     time.Duration(req.JurorTimeoutMS) * time.Millisecond,
		ExpiresIn:        time.Duration(req.ExpiresInMS) * time.Millisecond,
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	mark(w, obs.StageStore)
	setTraceTask(w, view.ID)
	s.m.taskCreates.Add(1)
	writeJSON(w, http.StatusCreated, TaskResponse{Task: view})
}

// handleTaskList serves GET /v1/tasks[?status=...].
func (s *Server) handleTaskList(w http.ResponseWriter, r *http.Request) {
	status := tasks.Status(r.URL.Query().Get("status"))
	switch status {
	case "", tasks.StatusOpen, tasks.StatusAwaitingVotes, tasks.StatusDecided, tasks.StatusExpired:
	default:
		s.fail(w, badRequest("unknown status %q", status))
		return
	}
	views := s.tasks.List(status)
	writeJSON(w, http.StatusOK, TaskListResponse{Tasks: views})
}

// handleTaskGet serves GET /v1/tasks/{id}.
func (s *Server) handleTaskGet(w http.ResponseWriter, r *http.Request) {
	setTraceTask(w, r.PathValue("id"))
	view, err := s.tasks.Get(r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, TaskResponse{Task: view})
}

// handleTaskVote serves POST /v1/tasks/{id}/votes: one juror's vote (or
// decline) applied to the posterior, returning the updated task — which
// may have just decided (sequential early stop) or invited a
// replacement. O(1) per call, so it bypasses evaluation admission.
func (s *Server) handleTaskVote(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	setTraceTask(w, id)
	var req TaskVoteRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if req.JurorID == "" {
		s.fail(w, badRequest("juror_id must be set"))
		return
	}
	var (
		view tasks.View
		err  error
	)
	ctx := s.traceCtx(r.Context(), w)
	switch {
	case req.Decline && req.Vote != nil:
		s.fail(w, badRequest("vote and decline are mutually exclusive"))
		return
	case req.Decline:
		view, err = s.tasks.Decline(ctx, id, req.JurorID)
	case req.Vote != nil:
		view, err = s.tasks.Vote(ctx, id, req.JurorID, *req.Vote)
	default:
		s.fail(w, badRequest("body must carry vote or decline"))
		return
	}
	if err != nil {
		s.fail(w, err)
		return
	}
	mark(w, obs.StageStore)
	s.m.taskVotes.Add(1)
	if view.Status == tasks.StatusDecided && view.Verdict != nil {
		s.m.taskVerdicts.Add(1)
	}
	writeJSON(w, http.StatusOK, TaskResponse{Task: view})
}

// TaskVoteBatchRequest is the body of POST /v1/tasks/{id}/votes/batch:
// several jurors' votes (or declines) on one task in a single round
// trip, applied in order.
type TaskVoteBatchRequest struct {
	Votes []TaskVoteRequest `json:"votes"`
}

// TaskVoteBatchResult is one batch item's outcome. Exactly one of
// Applied, Skipped, or Error describes it: Skipped marks votes that
// arrived after the task closed (sequential early stop decided it
// mid-batch) — expected under the paper's voting model, not a failure.
type TaskVoteBatchResult struct {
	JurorID string `json:"juror_id"`
	Applied bool   `json:"applied,omitempty"`
	Skipped bool   `json:"skipped,omitempty"`
	Error   string `json:"error,omitempty"`
}

// TaskVoteBatchResponse is the body of a successful batch vote: the
// per-item outcomes and the task view after the last applied item.
type TaskVoteBatchResponse struct {
	Results []TaskVoteBatchResult `json:"results"`
	Task    tasks.View            `json:"task"`
}

// handleTaskVoteBatch serves POST /v1/tasks/{id}/votes/batch: apply a
// batch of votes sequentially — the store's early-stop semantics are
// order-dependent, so the batch preserves the client's order exactly.
// Once the task closes (a vote decided it, or it was already closed),
// the remaining items are skipped without touching the store. Item
// validation failures are per-item errors; only an unknown task fails
// the whole batch.
func (s *Server) handleTaskVoteBatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	setTraceTask(w, id)
	var req TaskVoteBatchRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if len(req.Votes) == 0 {
		s.fail(w, badRequest("votes must be non-empty"))
		return
	}
	if len(req.Votes) > s.maxBatch {
		s.fail(w, badRequest("batch accepts at most %d votes, got %d", s.maxBatch, len(req.Votes)))
		return
	}
	resp := TaskVoteBatchResponse{Results: make([]TaskVoteBatchResult, len(req.Votes))}
	ctx := s.traceCtx(r.Context(), w)
	var (
		view    tasks.View
		applied bool
		closed  bool
	)
	for i, v := range req.Votes {
		res := TaskVoteBatchResult{JurorID: v.JurorID}
		switch {
		case closed:
			res.Skipped = true
		case v.JurorID == "":
			res.Error = "juror_id must be set"
		case v.Decline && v.Vote != nil:
			res.Error = "vote and decline are mutually exclusive"
		case !v.Decline && v.Vote == nil:
			res.Error = "body must carry vote or decline"
		default:
			var err error
			if v.Decline {
				view, err = s.tasks.Decline(ctx, id, v.JurorID)
			} else {
				view, err = s.tasks.Vote(ctx, id, v.JurorID, *v.Vote)
			}
			switch {
			case errors.Is(err, tasks.ErrTaskNotFound):
				s.fail(w, err)
				return
			case errors.Is(err, tasks.ErrTaskClosed):
				res.Skipped = true
				closed = true
			case err != nil:
				res.Error = err.Error()
			default:
				applied = true
				res.Applied = true
				s.m.taskVotes.Add(1)
				if view.Status == tasks.StatusDecided && view.Verdict != nil {
					s.m.taskVerdicts.Add(1)
					closed = true
				}
			}
		}
		resp.Results[i] = res
	}
	if !applied {
		v, err := s.tasks.Get(id)
		if err != nil {
			s.fail(w, err)
			return
		}
		view = v
	}
	resp.Task = view
	mark(w, obs.StageStore)
	s.m.batchVotes.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// requireTasks guards the task routes when the server was built without
// a task store.
func (s *Server) requireTasks(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.tasks == nil {
			s.fail(w, &httpError{status: http.StatusNotFound,
				msg: fmt.Sprintf("%s: task store not configured", r.URL.Path)})
			return
		}
		h(w, r)
	}
}
