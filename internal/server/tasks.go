package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"juryselect/internal/tasks"
)

// TaskCreateRequest is the body of POST /v1/tasks: a decision-making
// task posed to a jury selected from a live pool.
type TaskCreateRequest struct {
	// Pool names the juror pool to select from.
	Pool string `json:"pool"`
	// Question is the task's free-text payload (opaque to the service).
	Question string `json:"question,omitempty"`
	// Strategy is "altr" (default) or "pay".
	Strategy string `json:"strategy,omitempty"`
	// Budget is the pay model's budget B (pay strategy only).
	Budget float64 `json:"budget,omitempty"`
	// TargetConfidence closes the task early once the posterior verdict
	// confidence crosses it, in (0.5, 1]. Exactly 1 disables early stop
	// (fixed-jury voting); zero selects the server default (0.9).
	TargetConfidence float64 `json:"target_confidence,omitempty"`
	// MaxInvites caps total invitations including the initial jury
	// (0 = twice the initial jury).
	MaxInvites int `json:"max_invites,omitempty"`
	// JurorTimeoutMS releases a non-responding juror after this long
	// (0 = server default).
	JurorTimeoutMS int64 `json:"juror_timeout_ms,omitempty"`
	// ExpiresInMS closes the whole task without a verdict after this
	// long (0 = server default).
	ExpiresInMS int64 `json:"expires_in_ms,omitempty"`
	// TimeoutMS optionally overrides the per-request deadline for the
	// jury selection, clamped to the configured maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// TaskResponse wraps a task view: the body of POST /v1/tasks (201),
// GET /v1/tasks/{id} and POST /v1/tasks/{id}/votes.
type TaskResponse struct {
	Task tasks.View `json:"task"`
}

// TaskListResponse is the body of GET /v1/tasks.
type TaskListResponse struct {
	Tasks []tasks.View `json:"tasks"`
}

// TaskVoteRequest is the body of POST /v1/tasks/{id}/votes: either a
// vote or an explicit decline (which releases the juror and invites the
// next-best replacement).
type TaskVoteRequest struct {
	JurorID string `json:"juror_id"`
	Vote    *bool  `json:"vote,omitempty"`
	Decline bool   `json:"decline,omitempty"`
}

// handleTaskCreate serves POST /v1/tasks: select a jury and open the
// task. Selection is the expensive step, so creation passes through the
// same admission control as /v1/select.
func (s *Server) handleTaskCreate(w http.ResponseWriter, r *http.Request) {
	var req TaskCreateRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	d, err := s.deadline(req.TimeoutMS)
	if err != nil {
		s.fail(w, err)
		return
	}
	if req.JurorTimeoutMS < 0 || req.ExpiresInMS < 0 {
		s.fail(w, badRequest("juror_timeout_ms and expires_in_ms must be non-negative"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer release()
	view, err := s.tasks.Create(ctx, tasks.Spec{
		Pool:             req.Pool,
		Question:         req.Question,
		Strategy:         req.Strategy,
		Budget:           req.Budget,
		TargetConfidence: req.TargetConfidence,
		MaxInvites:       req.MaxInvites,
		JurorTimeout:     time.Duration(req.JurorTimeoutMS) * time.Millisecond,
		ExpiresIn:        time.Duration(req.ExpiresInMS) * time.Millisecond,
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	s.m.taskCreates.Add(1)
	writeJSON(w, http.StatusCreated, TaskResponse{Task: view})
}

// handleTaskList serves GET /v1/tasks[?status=...].
func (s *Server) handleTaskList(w http.ResponseWriter, r *http.Request) {
	status := tasks.Status(r.URL.Query().Get("status"))
	switch status {
	case "", tasks.StatusOpen, tasks.StatusAwaitingVotes, tasks.StatusDecided, tasks.StatusExpired:
	default:
		s.fail(w, badRequest("unknown status %q", status))
		return
	}
	views := s.tasks.List(status)
	writeJSON(w, http.StatusOK, TaskListResponse{Tasks: views})
}

// handleTaskGet serves GET /v1/tasks/{id}.
func (s *Server) handleTaskGet(w http.ResponseWriter, r *http.Request) {
	view, err := s.tasks.Get(r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, TaskResponse{Task: view})
}

// handleTaskVote serves POST /v1/tasks/{id}/votes: one juror's vote (or
// decline) applied to the posterior, returning the updated task — which
// may have just decided (sequential early stop) or invited a
// replacement. O(1) per call, so it bypasses evaluation admission.
func (s *Server) handleTaskVote(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req TaskVoteRequest
	if err := s.decode(w, r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if req.JurorID == "" {
		s.fail(w, badRequest("juror_id must be set"))
		return
	}
	var (
		view tasks.View
		err  error
	)
	switch {
	case req.Decline && req.Vote != nil:
		s.fail(w, badRequest("vote and decline are mutually exclusive"))
		return
	case req.Decline:
		view, err = s.tasks.Decline(id, req.JurorID)
	case req.Vote != nil:
		view, err = s.tasks.Vote(id, req.JurorID, *req.Vote)
	default:
		s.fail(w, badRequest("body must carry vote or decline"))
		return
	}
	if err != nil {
		s.fail(w, err)
		return
	}
	s.m.taskVotes.Add(1)
	if view.Status == tasks.StatusDecided && view.Verdict != nil {
		s.m.taskVerdicts.Add(1)
	}
	writeJSON(w, http.StatusOK, TaskResponse{Task: view})
}

// requireTasks guards the task routes when the server was built without
// a task store.
func (s *Server) requireTasks(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.tasks == nil {
			s.fail(w, &httpError{status: http.StatusNotFound,
				msg: fmt.Sprintf("%s: task store not configured", r.URL.Path)})
			return
		}
		h(w, r)
	}
}
