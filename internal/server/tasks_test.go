package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"juryselect/internal/dataio"
	"juryselect/internal/tasks"
)

// jurorJSONFor builds one wire-form juror.
func jurorJSONFor(id string, rate, cost float64) dataio.JurorJSON {
	return dataio.JurorJSON{ID: id, ErrorRate: rate, Cost: cost}
}

// newTaskServer builds a server fronting a memory-only task store with a
// seeded pool.
func newTaskServer(t *testing.T, n int) *httptest.Server {
	t.Helper()
	ts, err := tasks.Open(tasks.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Tasks: ts})
	if _, err := ts.PutPool("crowd", testJurors(n)); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs
}

func doTaskJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e errorResponse
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTaskLifecycleOverHTTP drives create → votes → early-stop verdict
// through the wire protocol.
func TestTaskLifecycleOverHTTP(t *testing.T) {
	hs := newTaskServer(t, 25)

	var created TaskResponse
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks", TaskCreateRequest{
		Pool: "crowd", Question: "is the rumor true?", TargetConfidence: 0.95,
	}, http.StatusCreated, &created)
	task := created.Task
	if task.Status != tasks.StatusOpen || len(task.Jurors) == 0 || task.PoolVersion != 1 {
		t.Fatalf("created task = %+v", task)
	}

	// Unanimous yes votes early-stop before the jury is exhausted.
	var last TaskResponse
	votes := 0
	yes := true
	for _, j := range task.Jurors {
		doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks/"+task.ID+"/votes",
			TaskVoteRequest{JurorID: j.ID, Vote: &yes}, http.StatusOK, &last)
		votes++
		if last.Task.Status == tasks.StatusDecided {
			break
		}
	}
	if last.Task.Status != tasks.StatusDecided || last.Task.Verdict == nil {
		t.Fatalf("task never decided: %+v", last.Task)
	}
	if !last.Task.Verdict.Answer || !last.Task.Verdict.EarlyStopped {
		t.Fatalf("verdict = %+v", last.Task.Verdict)
	}
	if votes >= len(task.Jurors) {
		t.Fatalf("early stop never fired: %d votes for a %d-jury", votes, len(task.Jurors))
	}

	// GET reflects the decided state; list filters by status.
	var got TaskResponse
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/tasks/"+task.ID, nil, http.StatusOK, &got)
	if got.Task.Status != tasks.StatusDecided || got.Task.VotesSpent != votes {
		t.Fatalf("GET after verdict = %+v", got.Task)
	}
	var list TaskListResponse
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/tasks?status=decided", nil, http.StatusOK, &list)
	if len(list.Tasks) != 1 || list.Tasks[0].ID != task.ID {
		t.Fatalf("decided list = %+v", list.Tasks)
	}

	// /metrics exposes the lifecycle gauges and vote counters.
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Tasks == nil {
		t.Fatal("metrics missing task block")
	}
	if m.Tasks.Decided != 1 || m.Tasks.Creates != 1 || m.Tasks.Votes != int64(votes) || m.Tasks.Verdicts != 1 {
		t.Fatalf("task metrics = %+v", m.Tasks)
	}
}

// TestTaskDeclineInvitesReplacementOverHTTP: a decline releases the
// juror and the response already carries the replacement invitation.
func TestTaskDeclineInvitesReplacementOverHTTP(t *testing.T) {
	hs := newTaskServer(t, 25)
	var created TaskResponse
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks", TaskCreateRequest{Pool: "crowd"},
		http.StatusCreated, &created)
	task := created.Task

	var after TaskResponse
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks/"+task.ID+"/votes",
		TaskVoteRequest{JurorID: task.Jurors[0].ID, Decline: true}, http.StatusOK, &after)
	if len(after.Task.Jurors) != len(task.Jurors)+1 {
		t.Fatalf("no replacement: %d jurors", len(after.Task.Jurors))
	}
	if after.Task.Jurors[0].State != tasks.JurorDeclined {
		t.Fatalf("declined juror state %q", after.Task.Jurors[0].State)
	}
	if after.Task.Declines != 1 {
		t.Fatalf("declines = %d", after.Task.Declines)
	}
}

// TestTaskEndpointErrors maps lifecycle failures onto HTTP statuses.
func TestTaskEndpointErrors(t *testing.T) {
	hs := newTaskServer(t, 9)
	yes := true

	// Unknown pool and invalid parameters are 400s; unknown task is 404.
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks",
		TaskCreateRequest{Pool: ""}, http.StatusBadRequest, nil)
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks",
		TaskCreateRequest{Pool: "crowd", TargetConfidence: 0.3}, http.StatusBadRequest, nil)
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks",
		TaskCreateRequest{Pool: "ghost"}, http.StatusNotFound, nil)
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/tasks/ghost", nil, http.StatusNotFound, nil)
	doTaskJSON(t, http.MethodGet, hs.URL+"/v1/tasks?status=bogus", nil, http.StatusBadRequest, nil)

	var created TaskResponse
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks", TaskCreateRequest{Pool: "crowd"},
		http.StatusCreated, &created)
	id := created.Task.ID
	votesURL := hs.URL + "/v1/tasks/" + id + "/votes"

	// Malformed vote bodies.
	doTaskJSON(t, http.MethodPost, votesURL, TaskVoteRequest{Vote: &yes}, http.StatusBadRequest, nil)
	doTaskJSON(t, http.MethodPost, votesURL, TaskVoteRequest{JurorID: "x"}, http.StatusBadRequest, nil)
	doTaskJSON(t, http.MethodPost, votesURL,
		TaskVoteRequest{JurorID: "x", Vote: &yes, Decline: true}, http.StatusBadRequest, nil)

	// Lifecycle conflicts.
	doTaskJSON(t, http.MethodPost, votesURL,
		TaskVoteRequest{JurorID: "stranger", Vote: &yes}, http.StatusBadRequest, nil)
	j0 := created.Task.Jurors[0].ID
	doTaskJSON(t, http.MethodPost, votesURL, TaskVoteRequest{JurorID: j0, Vote: &yes}, http.StatusOK, nil)
	doTaskJSON(t, http.MethodPost, votesURL, TaskVoteRequest{JurorID: j0, Vote: &yes}, http.StatusConflict, nil)
}

// TestTasksRoutesAbsentWithoutStore: a server built without a task store
// 404s the task routes but serves everything else.
func TestTasksRoutesAbsentWithoutStore(t *testing.T) {
	srv := New(Config{})
	if _, err := srv.Store().Put("crowd", testJurors(5)); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks", TaskCreateRequest{Pool: "crowd"},
		http.StatusNotFound, nil)
	resp, err := http.Post(hs.URL+"/v1/select", "application/json",
		bytes.NewReader([]byte(`{"pool":"crowd"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select without tasks: status %d", resp.StatusCode)
	}
}

// TestPoolWritesJournaledThroughTaskStore: with a durable task store
// behind the server, a pool PUT + PATCH sequence recovers across a
// simulated crash, versions intact.
func TestPoolWritesJournaledThroughTaskStore(t *testing.T) {
	dir := t.TempDir()
	open := func() (*tasks.Store, *httptest.Server) {
		ts, err := tasks.Open(tasks.Config{Dir: dir, Sync: tasks.SyncOff})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(New(Config{Tasks: ts}).Handler())
		return ts, hs
	}
	_, hs := open()
	put := PutJurorsRequest{}
	for i := 0; i < 6; i++ {
		put.Jurors = append(put.Jurors, jurorJSONFor(fmt.Sprintf("j%02d", i), 0.1+0.05*float64(i), 0.2))
	}
	doTaskJSON(t, http.MethodPut, hs.URL+"/v1/pools/crowd/jurors", put, http.StatusOK, nil)
	doTaskJSON(t, http.MethodPatch, hs.URL+"/v1/pools/crowd/jurors", PatchJurorsRequest{
		Updates: []JurorUpdateJSON{{ID: "j00", Votes: &VotesJSON{Wrong: 1, Total: 4}}},
	}, http.StatusOK, nil)
	hs.Close() // no task-store Close: simulated crash

	ts2, hs2 := open()
	defer hs2.Close()
	if ts2.Recovery().Records != 2 {
		t.Fatalf("replayed %d records, want 2", ts2.Recovery().Records)
	}
	var pr PoolResponse
	doTaskJSON(t, http.MethodGet, hs2.URL+"/v1/pools/crowd", nil, http.StatusOK, &pr)
	if pr.Version != 2 || pr.Size != 6 {
		t.Fatalf("recovered pool = %+v", pr)
	}
	for _, j := range pr.Jurors {
		if j.ID == "j00" && j.TotalVotes != 4 {
			t.Fatalf("recovered vote record = %+v", j)
		}
	}
}

// TestTaskMetricsExposeWritePathHealth asserts the PR 7 observability
// block: shard configuration and contention, the pipelined committer's
// queue depth and fsync batch-size histogram, and the last boot's replay
// duration all surface on /metrics.
func TestTaskMetricsExposeWritePathHealth(t *testing.T) {
	dir := t.TempDir()
	open := func() (*tasks.Store, *httptest.Server) {
		ts, err := tasks.Open(tasks.Config{Dir: dir, Sync: tasks.SyncBatch})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(New(Config{Tasks: ts}).Handler())
		return ts, hs
	}
	st, hs := open()
	doTaskJSON(t, http.MethodPut, hs.URL+"/v1/pools/crowd/jurors", PutJurorsRequest{Jurors: []dataio.JurorJSON{
		jurorJSONFor("j00", 0.1, 0), jurorJSONFor("j01", 0.2, 0), jurorJSONFor("j02", 0.3, 0),
	}}, http.StatusOK, nil)
	var created TaskResponse
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks", TaskCreateRequest{Pool: "crowd"}, http.StatusCreated, &created)
	yes := true
	doTaskJSON(t, http.MethodPost, hs.URL+"/v1/tasks/"+created.Task.ID+"/votes",
		TaskVoteRequest{JurorID: created.Task.Jurors[0].ID, Vote: &yes}, http.StatusOK, nil)

	var m metricsResponse
	doTaskJSON(t, http.MethodGet, hs.URL+"/metrics", nil, http.StatusOK, &m)
	if m.Tasks == nil {
		t.Fatal("no tasks metrics block")
	}
	if m.Tasks.Shards == 0 {
		t.Errorf("shards = 0, want the configured shard count")
	}
	if m.Tasks.ShardContention < 0 {
		t.Errorf("shard_contention = %d", m.Tasks.ShardContention)
	}
	if len(m.Tasks.WALFsyncBatchHist) == 0 {
		t.Error("wal_fsync_batch_hist absent")
	}
	var fsyncsBucketed int64
	for _, n := range m.Tasks.WALFsyncBatchHist {
		fsyncsBucketed += n
	}
	if fsyncsBucketed == 0 || fsyncsBucketed != m.Tasks.WALFsyncs {
		t.Errorf("batch histogram sums to %d, want wal_fsyncs %d (>0)", fsyncsBucketed, m.Tasks.WALFsyncs)
	}
	if m.Tasks.WALCommitQueueDepth < 0 {
		t.Errorf("wal_commit_queue_depth = %d", m.Tasks.WALCommitQueueDepth)
	}
	hs.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// A reboot replays the log; the recovery cost must surface.
	st2, hs2 := open()
	defer hs2.Close()
	defer st2.Close() //nolint:errcheck
	doTaskJSON(t, http.MethodGet, hs2.URL+"/metrics", nil, http.StatusOK, &m)
	if m.Tasks.WALReplayRecords == 0 {
		t.Fatal("reboot replayed nothing")
	}
	if m.Tasks.WALReplayNS <= 0 {
		t.Errorf("wal_replay_ns = %d, want > 0", m.Tasks.WALReplayNS)
	}
}
