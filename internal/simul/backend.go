package simul

import (
	"context"
	"errors"
	"fmt"

	"juryselect/internal/server"
	"juryselect/jury"
)

// selectOutcome is what a selection round-trip yields, whichever backend
// served it.
type selectOutcome struct {
	// IDs and EstRates are the selected jurors and the estimated error
	// rates the selection was computed over.
	IDs      []string
	EstRates []float64
	// PredictedJER is the JER of the selected jury under the estimates —
	// what the system believes its failure probability is.
	PredictedJER float64
	// Cost is the jury's total payment requirement.
	Cost float64
	// PoolVersion is the pool snapshot the selection read (0 inline).
	PoolVersion uint64
	// Retried counts 429-shed attempts absorbed before this outcome
	// (HTTP backend only).
	Retried int
	// LatencyNS is the round-trip time of the final attempt (HTTP
	// backend only; excluded from the deterministic metrics).
	LatencyNS int64
}

// errStepShed reports that the service shed the selection request even
// after the backend's Retry-After backoff budget. The simulator records
// the step as shed and moves on — overload degrades coverage, never
// aborts the run.
var errStepShed = errors.New("simul: selection shed by admission control")

// backend is the system under test: the live juror-pool plus selection
// service the closed loop drives. The local backend embeds the service's
// own store and engine in-process; the HTTP backend speaks the juryd wire
// protocol. Both expose identical semantics, which is what makes the
// in-process and HTTP trajectories comparable step by step.
type backend interface {
	// PutPool publishes the full juror set as the named pool.
	PutPool(ctx context.Context, name string, jurors []jury.Juror) error
	// Patch applies incremental updates (rate resets, churn, votes).
	Patch(ctx context.Context, name string, ups []server.JurorUpdate) error
	// Select picks the minimum-JER jury from the named pool under the
	// scenario's strategy. Returns errStepShed when admission control
	// rejected the request past the retry budget.
	Select(ctx context.Context, name string, sc Scenario) (selectOutcome, error)
	// DeletePool drops the pool (end-of-replication cleanup).
	DeletePool(ctx context.Context, name string) error
	// Close releases client resources.
	Close() error
}

// localBackend runs the service stack in-process: the same versioned
// copy-on-write pool store and shared JER engine juryd serves from, minus
// HTTP. Its Select mirrors internal/server.handleSelect's dispatch
// exactly, so a scenario replayed over HTTP selects identical juries.
type localBackend struct {
	store *server.Store
	eng   *jury.Engine
}

// newLocalBackend builds an in-process backend with a fresh store. The
// engine is shared across replications (it is safe for concurrent use and
// its memo accelerates repeated JER work).
func newLocalBackend(eng *jury.Engine) *localBackend {
	return &localBackend{store: server.NewStore(), eng: eng}
}

func (lb *localBackend) PutPool(_ context.Context, name string, jurors []jury.Juror) error {
	_, err := lb.store.Put(name, jurors)
	return err
}

func (lb *localBackend) Patch(_ context.Context, name string, ups []server.JurorUpdate) error {
	_, err := lb.store.Patch(name, ups)
	return err
}

func (lb *localBackend) Select(ctx context.Context, name string, sc Scenario) (selectOutcome, error) {
	pool, ok := lb.store.Get(name)
	if !ok {
		return selectOutcome{}, fmt.Errorf("simul: pool %q not in store", name)
	}
	var (
		sel jury.Selection
		err error
	)
	switch sc.Strategy {
	case StrategyPay:
		sel, err = lb.eng.SelectBudgetedContext(ctx, pool.Sorted(), sc.Budget)
	case StrategyExact:
		if len(pool.Sorted()) > jury.MaxExactCandidates {
			return selectOutcome{}, fmt.Errorf("simul: exact strategy accepts at most %d candidates, got %d",
				jury.MaxExactCandidates, len(pool.Sorted()))
		}
		sel, err = lb.eng.SelectExactContext(ctx, pool.Sorted(), sc.Budget)
	default: // altr
		sel, err = lb.eng.SelectAltruisticSnapshot(ctx, pool.Sorted())
	}
	if err != nil {
		return selectOutcome{}, err
	}
	return outcomeFromSelection(sel, pool.Version), nil
}

func (lb *localBackend) DeletePool(_ context.Context, name string) error {
	lb.store.Delete(name)
	return nil
}

func (lb *localBackend) Close() error { return nil }

// outcomeFromSelection flattens a Selection into the backend-neutral
// outcome shape.
func outcomeFromSelection(sel jury.Selection, version uint64) selectOutcome {
	out := selectOutcome{
		IDs:          make([]string, len(sel.Jurors)),
		EstRates:     make([]float64, len(sel.Jurors)),
		PredictedJER: sel.JER,
		Cost:         sel.Cost,
		PoolVersion:  version,
	}
	for i, j := range sel.Jurors {
		out.IDs[i] = j.ID
		out.EstRates[i] = j.ErrorRate
	}
	return out
}
