package simul

import (
	"context"
	"errors"
	"fmt"

	"juryselect/internal/server"
	"juryselect/internal/tasks"
	"juryselect/jury"
)

// selectOutcome is what a selection round-trip yields, whichever backend
// served it.
type selectOutcome struct {
	// IDs and EstRates are the selected jurors and the estimated error
	// rates the selection was computed over.
	IDs      []string
	EstRates []float64
	// PredictedJER is the JER of the selected jury under the estimates —
	// what the system believes its failure probability is.
	PredictedJER float64
	// Cost is the jury's total payment requirement.
	Cost float64
	// PoolVersion is the pool snapshot the selection read (0 inline).
	PoolVersion uint64
	// Retried counts 429-shed attempts absorbed before this outcome
	// (HTTP backend only).
	Retried int
	// LatencyNS is the round-trip time of the final attempt (HTTP
	// backend only; excluded from the deterministic metrics).
	LatencyNS int64
}

// errStepShed reports that the service shed the selection request even
// after the backend's Retry-After backoff budget. The simulator records
// the step as shed and moves on — overload degrades coverage, never
// aborts the run.
var errStepShed = errors.New("simul: selection shed by admission control")

// invitee is one invited juror as the task lifecycle sees it: the ID to
// drive votes with and the estimated rate the posterior weighs.
type invitee struct {
	ID   string
	Rate float64
}

// taskOutcome is a created decision task.
type taskOutcome struct {
	ID string
	// Invited is the initial jury in invitation order.
	Invited []invitee
	// PredictedJER and Cost describe the initial selection.
	PredictedJER float64
	Cost         float64
	// PoolVersion is the snapshot the jury was selected from.
	PoolVersion uint64
	// Retried and LatencyNS mirror selectOutcome (HTTP backend only).
	Retried   int
	LatencyNS int64
}

// voteOp is one item of a TaskVoteBatch call: a vote or a decline.
type voteOp struct {
	JurorID string
	Vote    bool // meaningful only when Decline is false
	Decline bool
}

// voteResult is one batch item's outcome, mirroring the wire form:
// Applied means the store recorded it, Skipped means the task closed
// before the item's turn (expected under early stop), Err carries a
// per-item rejection.
type voteResult struct {
	Applied bool
	Skipped bool
	Err     string
}

// taskProgress is the task state after one vote or decline.
type taskProgress struct {
	// Closed reports a terminal status; Decided distinguishes a verdict
	// from an undecided expiry.
	Closed  bool
	Decided bool
	// VerdictYes and Confidence describe the verdict when Decided.
	VerdictYes   bool
	Confidence   float64
	EarlyStopped bool
	VotesSpent   int
	Declines     int
	// Invited is the full invitation list in order — it grows when a
	// decline pulled in a replacement; the caller feeds the new tail
	// into its vote queue.
	Invited []invitee
}

// progressFromView flattens a task view into the backend-neutral shape.
func progressFromView(v tasks.View) taskProgress {
	p := taskProgress{
		Closed:     v.Status == tasks.StatusDecided || v.Status == tasks.StatusExpired,
		Decided:    v.Status == tasks.StatusDecided,
		VotesSpent: v.VotesSpent,
		Declines:   v.Declines,
		Invited:    make([]invitee, len(v.Jurors)),
	}
	for i, j := range v.Jurors {
		p.Invited[i] = invitee{ID: j.ID, Rate: j.ErrorRate}
	}
	if v.Verdict != nil {
		p.VerdictYes = v.Verdict.Answer
		p.Confidence = v.Verdict.Confidence
		p.EarlyStopped = v.Verdict.EarlyStopped
	}
	return p
}

// backend is the system under test: the live juror-pool plus selection
// service the closed loop drives. The local backend embeds the service's
// own store and engine in-process; the HTTP backend speaks the juryd wire
// protocol. Both expose identical semantics, which is what makes the
// in-process and HTTP trajectories comparable step by step.
type backend interface {
	// PutPool publishes the full juror set as the named pool.
	PutPool(ctx context.Context, name string, jurors []jury.Juror) error
	// Patch applies incremental updates (rate resets, churn, votes).
	Patch(ctx context.Context, name string, ups []server.JurorUpdate) error
	// Select picks the minimum-JER jury from the named pool under the
	// scenario's strategy. Returns errStepShed when admission control
	// rejected the request past the retry budget.
	Select(ctx context.Context, name string, sc Scenario) (selectOutcome, error)
	// CreateTask opens a decision task on the named pool (task
	// lifecycle). Returns errStepShed like Select.
	CreateTask(ctx context.Context, name string, sc Scenario) (taskOutcome, error)
	// TaskVote records one juror's vote on an open task.
	TaskVote(ctx context.Context, id, juror string, voteYes bool) (taskProgress, error)
	// TaskDecline releases a non-responding juror (the simulator's
	// deterministic stand-in for a wall-clock timeout), pulling in the
	// next-best replacement.
	TaskDecline(ctx context.Context, id, juror string) (taskProgress, error)
	// TaskVoteBatch applies a whole invitation round in order with the
	// semantics of POST /v1/tasks/{id}/votes/batch: items after the task
	// closes are skipped, and the returned progress reflects the task
	// after the last applied item. Results correspond 1:1 to ops.
	TaskVoteBatch(ctx context.Context, id string, ops []voteOp) ([]voteResult, taskProgress, error)
	// DeletePool drops the pool (end-of-replication cleanup).
	DeletePool(ctx context.Context, name string) error
	// Close releases client resources.
	Close() error
}

// localBackend runs the service stack in-process: the same versioned
// copy-on-write pool store, memory-mode task store and shared JER
// engine juryd serves from, minus HTTP. Its Select mirrors
// internal/server.handleSelect's dispatch exactly, and its task ops are
// the very store methods the /v1/tasks handlers call, so a scenario
// replayed over HTTP walks an identical trajectory.
type localBackend struct {
	store *server.Store
	tasks *tasks.Store
	eng   *jury.Engine
}

// newLocalBackend builds an in-process backend with a fresh store. The
// engine is shared across replications (it is safe for concurrent use and
// its memo accelerates repeated JER work). shards overrides the task
// store's shard count (zero = default); trajectories must not depend on
// it — see Options.TaskShards.
func newLocalBackend(eng *jury.Engine, shards int) *localBackend {
	ts, err := tasks.Open(tasks.Config{Engine: eng, Shards: shards})
	if err != nil {
		// Memory-mode Open touches no disk; it cannot fail today. Guard
		// anyway so a future failure mode is loud.
		panic(fmt.Sprintf("simul: opening memory task store: %v", err))
	}
	return &localBackend{store: ts.Pools(), tasks: ts, eng: eng}
}

func (lb *localBackend) PutPool(_ context.Context, name string, jurors []jury.Juror) error {
	_, err := lb.tasks.PutPool(name, jurors)
	return err
}

func (lb *localBackend) Patch(_ context.Context, name string, ups []server.JurorUpdate) error {
	_, err := lb.tasks.PatchPool(name, ups)
	return err
}

func (lb *localBackend) CreateTask(ctx context.Context, name string, sc Scenario) (taskOutcome, error) {
	view, err := lb.tasks.Create(ctx, tasks.Spec{
		Pool:             name,
		Strategy:         sc.Strategy,
		Budget:           sc.Budget,
		TargetConfidence: sc.TargetConfidence,
	})
	if err != nil {
		return taskOutcome{}, err
	}
	out := taskOutcome{
		ID:           view.ID,
		Invited:      make([]invitee, len(view.Jurors)),
		PredictedJER: view.PredictedJER,
		PoolVersion:  view.PoolVersion,
	}
	for i, j := range view.Jurors {
		out.Invited[i] = invitee{ID: j.ID, Rate: j.ErrorRate}
		out.Cost += j.Cost
	}
	return out, nil
}

func (lb *localBackend) TaskVote(ctx context.Context, id, juror string, voteYes bool) (taskProgress, error) {
	view, err := lb.tasks.Vote(ctx, id, juror, voteYes)
	if err != nil {
		return taskProgress{}, err
	}
	return progressFromView(view), nil
}

func (lb *localBackend) TaskDecline(ctx context.Context, id, juror string) (taskProgress, error) {
	view, err := lb.tasks.Decline(ctx, id, juror)
	if err != nil {
		return taskProgress{}, err
	}
	return progressFromView(view), nil
}

// TaskVoteBatch mirrors internal/server.handleTaskVoteBatch exactly —
// sequential application, skip-after-close, per-item errors — so the
// in-process and HTTP backends report identical batch outcomes.
func (lb *localBackend) TaskVoteBatch(ctx context.Context, id string, ops []voteOp) ([]voteResult, taskProgress, error) {
	results := make([]voteResult, len(ops))
	var (
		view    tasks.View
		applied bool
		closed  bool
	)
	for i, op := range ops {
		if closed {
			results[i].Skipped = true
			continue
		}
		var err error
		if op.Decline {
			view, err = lb.tasks.Decline(ctx, id, op.JurorID)
		} else {
			view, err = lb.tasks.Vote(ctx, id, op.JurorID, op.Vote)
		}
		switch {
		case errors.Is(err, tasks.ErrTaskNotFound):
			return nil, taskProgress{}, err
		case errors.Is(err, tasks.ErrTaskClosed):
			results[i].Skipped = true
			closed = true
		case err != nil:
			results[i].Err = err.Error()
		default:
			applied = true
			results[i].Applied = true
			if view.Status == tasks.StatusDecided && view.Verdict != nil {
				closed = true
			}
		}
	}
	if !applied {
		v, err := lb.tasks.Get(id)
		if err != nil {
			return nil, taskProgress{}, err
		}
		view = v
	}
	return results, progressFromView(view), nil
}

func (lb *localBackend) Select(ctx context.Context, name string, sc Scenario) (selectOutcome, error) {
	pool, ok := lb.store.Get(name)
	if !ok {
		return selectOutcome{}, fmt.Errorf("simul: pool %q not in store", name)
	}
	var (
		sel jury.Selection
		err error
	)
	switch sc.Strategy {
	case StrategyPay:
		sel, err = lb.eng.SelectBudgetedContext(ctx, pool.Sorted(), sc.Budget)
	case StrategyExact:
		if len(pool.Sorted()) > jury.MaxExactCandidates {
			return selectOutcome{}, fmt.Errorf("simul: exact strategy accepts at most %d candidates, got %d",
				jury.MaxExactCandidates, len(pool.Sorted()))
		}
		sel, err = lb.eng.SelectExactContext(ctx, pool.Sorted(), sc.Budget)
	default: // altr
		sel, err = lb.eng.SelectAltruisticSnapshot(ctx, pool.Sorted())
	}
	if err != nil {
		return selectOutcome{}, err
	}
	return outcomeFromSelection(sel, pool.Version), nil
}

func (lb *localBackend) DeletePool(_ context.Context, name string) error {
	_, err := lb.tasks.DeletePool(name)
	return err
}

func (lb *localBackend) Close() error { return nil }

// outcomeFromSelection flattens a Selection into the backend-neutral
// outcome shape.
func outcomeFromSelection(sel jury.Selection, version uint64) selectOutcome {
	out := selectOutcome{
		IDs:          make([]string, len(sel.Jurors)),
		EstRates:     make([]float64, len(sel.Jurors)),
		PredictedJER: sel.JER,
		Cost:         sel.Cost,
		PoolVersion:  version,
	}
	for i, j := range sel.Jurors {
		out.IDs[i] = j.ID
		out.EstRates[i] = j.ErrorRate
	}
	return out
}
