package simul

import (
	"context"
	"reflect"
	"testing"
)

// TestBatchHTTPMatchesInProcess is the batch-protocol parity contract:
// with Options.Batch set, the in-process backend's batch task walk and
// the HTTP backend's real POST /v1/tasks/{id}/votes/batch round trips
// (plus select coalescing through /v1/select/batch) walk the exact same
// decision trajectory. Batch mode draws a whole round upfront, so its
// trajectories legitimately differ from sequential mode — the contract
// is determinism at the same setting, across transports.
func TestBatchHTTPMatchesInProcess(t *testing.T) {
	scenarios := []Scenario{
		{Name: "batch-task-parity", Seed: 41, Steps: 25, Population: 14, Replications: 2,
			Lifecycle: LifecycleTask, Availability: 0.75},
		{Name: "batch-task-parity-fixed", Seed: 41, Steps: 15, Population: 14, Replications: 1,
			Lifecycle: LifecycleTask, TargetConfidence: 1, Availability: 0.9,
			Drift: DriftSpec{Model: DriftWalk, Sigma: 0.02}, ChurnPerStep: 0.5},
		{Name: "batch-select-parity", Seed: 13, Steps: 30, Population: 12, Replications: 2,
			Drift: DriftSpec{Model: DriftWalk, Sigma: 0.02}, ChurnPerStep: 0.7, Availability: 0.8},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			local, err := Run(context.Background(), sc, Options{Mode: ModeInProcess, Batch: true, Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			ts := newTaskJuryd(t)
			remote, err := Run(context.Background(), sc, Options{
				Mode: ModeHTTP, Addr: ts.URL, Client: ts.Client(), Batch: true, Trace: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if remote.Summary.TotalShed != 0 {
				t.Fatalf("unloaded juryd shed %d requests", remote.Summary.TotalShed)
			}
			for i := range local.Replications {
				lr, rr := local.Replications[i], remote.Replications[i]
				if !reflect.DeepEqual(lr.Trace, rr.Trace) {
					t.Fatalf("rep %d: batch traces diverge between modes", i)
				}
				if lr.TotalVotes != rr.TotalVotes || lr.TotalDeclines != rr.TotalDeclines ||
					lr.Replacements != rr.Replacements || lr.EarlyStopped != rr.EarlyStopped ||
					lr.Accuracy != rr.Accuracy {
					t.Fatalf("rep %d: batch aggregates diverge:\nlocal  %+v\nremote %+v", i, lr, rr)
				}
			}
		})
	}
}

// TestBatchSequentialDivergenceIsBounded documents the batch/sequential
// relationship on the task lifecycle: both settings decide the same
// questions from the same worlds, so aggregate accuracy should be in the
// same ballpark even though the per-step vote trajectories differ (batch
// draws whole rounds upfront).
func TestBatchSequentialDivergenceIsBounded(t *testing.T) {
	sc := Scenario{Name: "batch-vs-seq", Seed: 7, Steps: 40, Population: 14,
		Replications: 2, Lifecycle: LifecycleTask, Availability: 0.8}
	seq, err := Run(context.Background(), sc, Options{Mode: ModeInProcess})
	if err != nil {
		t.Fatal(err)
	}
	bat, err := Run(context.Background(), sc, Options{Mode: ModeInProcess, Batch: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Summary.Accuracy == 0 || bat.Summary.Accuracy == 0 {
		t.Fatalf("degenerate runs: seq %+v bat %+v", seq.Summary, bat.Summary)
	}
	if diff := seq.Summary.Accuracy - bat.Summary.Accuracy; diff > 0.3 || diff < -0.3 {
		t.Fatalf("batch accuracy diverges wildly from sequential: seq %.3f bat %.3f",
			seq.Summary.Accuracy, bat.Summary.Accuracy)
	}
}
