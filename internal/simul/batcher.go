package simul

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"juryselect/internal/server"
)

// selectBatcher coalesces concurrent single selects — issued by
// independent replication workers — into POST /v1/select/batch round
// trips, group-commit style: the first arrival leads a flight and
// carries every request pending at takeoff; arrivals during a flight
// park and form the next one. Selection is a pure function of (pool
// version, strategy, params), so riding in a batch cannot change any
// caller's result — only how many round trips carry it.
type selectBatcher struct {
	base   string
	client *http.Client
	max    int // items per flight

	mu      sync.Mutex
	leading bool
	pending []*batchCall
}

// batchCall is one parked select: its request, and the result the
// flight leader deposits before closing done.
type batchCall struct {
	ctx  context.Context
	req  server.SelectRequest
	done chan struct{}
	resp server.SelectResponse
	err  error
}

// newSelectBatcher returns a batcher posting to the juryd at base.
// max <= 0 selects the server's default batch cap.
func newSelectBatcher(base string, client *http.Client) *selectBatcher {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &selectBatcher{base: base, client: client, max: server.DefaultMaxBatchItems}
}

// do submits one select and blocks until its flight lands. A shed item
// surfaces as retryAfterError, exactly like a single select's 429, so
// the caller's retry loop needs no batch awareness.
func (sb *selectBatcher) do(ctx context.Context, req server.SelectRequest) (server.SelectResponse, error) {
	c := &batchCall{ctx: ctx, req: req, done: make(chan struct{})}
	sb.mu.Lock()
	sb.pending = append(sb.pending, c)
	if sb.leading {
		sb.mu.Unlock()
		select {
		case <-c.done:
			return c.resp, c.err
		case <-ctx.Done():
			// The flight will still land and deposit a result nobody
			// reads; abandoning it here keeps cancellation prompt.
			return server.SelectResponse{}, ctx.Err()
		}
	}
	sb.leading = true
	for {
		batch := sb.pending
		if len(batch) > sb.max {
			batch = batch[:sb.max:sb.max]
			sb.pending = sb.pending[sb.max:]
		} else {
			sb.pending = nil
		}
		sb.mu.Unlock()
		sb.flight(batch)
		sb.mu.Lock()
		if len(sb.pending) == 0 {
			sb.leading = false
			sb.mu.Unlock()
			// The leader's own call rode the first flight; done is closed.
			<-c.done
			return c.resp, c.err
		}
		// Requests parked during the flight: stay leader and fly them too,
		// or they would wait for an arrival that may never come.
	}
}

// flight performs one batch round trip and deposits per-call results.
func (sb *selectBatcher) flight(batch []*batchCall) {
	defer func() {
		for _, c := range batch {
			close(c.done)
		}
	}()
	fail := func(err error) {
		for _, c := range batch {
			c.err = err
		}
	}
	req := server.BatchSelectRequest{Selects: make([]server.SelectRequest, len(batch))}
	for i, c := range batch {
		req.Selects[i] = c.req
	}
	raw, err := json.Marshal(req)
	if err != nil {
		fail(err)
		return
	}
	// The flight borrows the first rider's context: all replication
	// workers derive from one run context, so cancelling any of them
	// means the run is ending for everyone aboard.
	httpReq, err := http.NewRequestWithContext(batch[0].ctx, http.MethodPost, sb.base+"/v1/select/batch", bytes.NewReader(raw))
	if err != nil {
		fail(err)
		return
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := sb.client.Do(httpReq)
	if err != nil {
		fail(err)
		return
	}
	defer httpResp.Body.Close()
	body, err := io.ReadAll(httpResp.Body)
	if err != nil {
		fail(err)
		return
	}
	if httpResp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("simul: POST /v1/select/batch: status %d: %s", httpResp.StatusCode, body))
		return
	}
	var resp server.BatchSelectResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		fail(fmt.Errorf("simul: decoding batch select response: %w", err))
		return
	}
	if len(resp.Results) != len(batch) {
		fail(fmt.Errorf("simul: batch select: %d results for %d selects", len(resp.Results), len(batch)))
		return
	}
	for i, c := range batch {
		var item struct {
			server.SelectResponse
			Error string `json:"error"`
		}
		if err := json.Unmarshal(resp.Results[i], &item); err != nil {
			c.err = fmt.Errorf("simul: decoding batch select item: %w", err)
			continue
		}
		switch {
		case item.Error == server.OverloadedMsg:
			// A shed item inside a 200 batch is the same admission-control
			// signal as a single select's 429 (the batch response carries
			// no per-item Retry-After, so use the default backoff).
			c.err = retryAfterError{delay: 50 * time.Millisecond}
		case item.Error != "":
			c.err = fmt.Errorf("simul: batch select item: %s", item.Error)
		default:
			c.resp = item.SelectResponse
		}
	}
}
