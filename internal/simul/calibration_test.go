package simul

import (
	"bytes"
	"context"
	"testing"
)

// TestOracleCalibrationDriftGap pins the simlab side of the insight
// story on a scaled-down drift preset: the oracle-truth reliability
// report is bit-identical at any worker count, its sample total accounts
// for exactly the decided steps, and swapping the posterior estimator
// for the oracle closes an accuracy gap the calibration report makes
// visible.
func TestOracleCalibrationDriftGap(t *testing.T) {
	sc, err := Preset("drift")
	if err != nil {
		t.Fatal(err)
	}
	sc.Steps = 120
	sc.Replications = 3
	sc = sc.Normalize()

	run := func(estimator string, workers int) *Report {
		s := sc
		s.Estimator = estimator
		rep, err := Run(context.Background(), s, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	posterior := run(EstimatorPosterior, 1)
	wide := run(EstimatorPosterior, 4)
	a, err := posterior.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := wide.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("worker count changed the calibration report:\n%s\n----\n%s", clip(a), clip(b))
	}

	cal := posterior.Summary.OracleCalibration
	if cal == nil || len(cal.Bins) == 0 {
		t.Fatalf("summary calibration missing or empty: %+v", cal)
	}
	var decided, perRep int64
	for _, r := range posterior.Replications {
		decided += int64(r.Decided)
		if r.OracleCalibration == nil {
			t.Fatalf("replication %d has no calibration report", r.Replication)
		}
		perRep += r.OracleCalibration.Total
	}
	if cal.Total != decided || perRep != decided {
		t.Fatalf("calibration totals %d (summary) / %d (per-rep), want %d decided steps",
			cal.Total, perRep, decided)
	}
	var binned int64
	for _, bin := range cal.Bins {
		binned += bin.Count
		if bin.MeanRealized < 0 || bin.MeanRealized > 1 {
			t.Errorf("bin [%g,%g): mean realized %g outside [0,1]", bin.Lo, bin.Hi, bin.MeanRealized)
		}
	}
	if binned != cal.Total {
		t.Fatalf("bins hold %d samples, total says %d", binned, cal.Total)
	}

	// The estimator gap: selection over the true rates must not lose to
	// selection over the posterior's estimates, and both calibration
	// reports carry a comparable Brier score for the EXPERIMENTS table.
	oracle := run(EstimatorOracle, 2)
	if oracle.Summary.OracleCalibration == nil {
		t.Fatal("oracle run has no calibration report")
	}
	if gap := oracle.Summary.Accuracy - posterior.Summary.Accuracy; gap < 0 {
		t.Errorf("oracle estimator accuracy %g below posterior %g",
			oracle.Summary.Accuracy, posterior.Summary.Accuracy)
	}
}
