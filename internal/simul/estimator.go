package simul

import (
	"fmt"
	"sort"

	"juryselect/internal/estimate"
	"juryselect/internal/learn"
	"juryselect/internal/server"
	"juryselect/jury"
)

// estEntry is the estimator's belief about one juror.
type estEntry struct {
	Rate         float64
	Wrong, Total int64
}

// voteRecord is one resolved question's observed voting, kept for the EM
// policy (votes are indexed by juror ID so churn does not invalidate the
// history).
type voteRecord struct {
	truth bool
	votes map[string]bool
}

// estimator maintains the system's belief about juror error rates under
// one of the three policies, and emits the pool updates that publish that
// belief to the backend. It mirrors exactly the state the backend pool
// holds: the posterior policy applies the same estimate.PosteriorRate
// chain the PATCH handler applies server-side, so the mirror and the
// served pool never diverge — the property that lets the simulator score
// baselines and calibration locally in both modes.
type estimator struct {
	sc      Scenario
	est     map[string]*estEntry
	records []voteRecord // EM policy only
}

func newEstimator(sc Scenario) *estimator {
	return &estimator{sc: sc, est: make(map[string]*estEntry)}
}

// initialPool returns the estimated juror set that seeds the backend
// pool, and primes the mirror.
func (e *estimator) initialPool(w *world) []jury.Juror {
	out := make([]jury.Juror, len(w.jurors))
	for i, j := range w.jurors {
		rate := e.sc.initialEstimate(j)
		e.est[j.ID] = &estEntry{Rate: rate}
		out[i] = jury.Juror{ID: j.ID, ErrorRate: rate, Cost: j.Cost}
	}
	return out
}

// rateOf returns the current estimated rate of a juror.
func (e *estimator) rateOf(id string) (float64, error) {
	en, ok := e.est[id]
	if !ok {
		return 0, fmt.Errorf("simul: no estimate for juror %q", id)
	}
	return en.Rate, nil
}

// driftUpdates republishes rates after a ground-truth move. Only the
// oracle policy sees drift directly; the others discover it through
// votes.
func (e *estimator) driftUpdates(w *world) []server.JurorUpdate {
	if e.sc.Estimator != EstimatorOracle {
		return nil
	}
	ups := make([]server.JurorUpdate, 0, len(w.jurors))
	for _, j := range w.jurors {
		rate := j.TrueRate
		e.est[j.ID] = &estEntry{Rate: rate}
		ups = append(ups, server.JurorUpdate{ID: j.ID, ErrorRate: &rate})
	}
	return ups
}

// churnUpdates maps world churn onto pool updates: leavers are removed,
// joiners inserted with the policy's initial estimate.
func (e *estimator) churnUpdates(events []churnEvent) []server.JurorUpdate {
	var ups []server.JurorUpdate
	for _, ev := range events {
		delete(e.est, ev.Left)
		ups = append(ups, server.JurorUpdate{ID: ev.Left, Remove: true})
		rate := e.sc.initialEstimate(ev.Joined)
		cost := ev.Joined.Cost
		e.est[ev.Joined.ID] = &estEntry{Rate: rate}
		ups = append(ups, server.JurorUpdate{ID: ev.Joined.ID, ErrorRate: &rate, Cost: &cost})
	}
	return ups
}

// observeVotes folds one resolved question into the estimator and
// returns the pool updates publishing the new belief. ids and votes are
// the responders and their votes; truth is the question's resolved
// answer.
func (e *estimator) observeVotes(step int, truth bool, ids []string, votes []bool, w *world) ([]server.JurorUpdate, error) {
	switch e.sc.Estimator {
	case EstimatorOracle:
		return nil, nil

	case EstimatorPosterior:
		ups := make([]server.JurorUpdate, 0, len(ids))
		for i, id := range ids {
			en, ok := e.est[id]
			if !ok {
				return nil, fmt.Errorf("simul: vote from unknown juror %q", id)
			}
			var wrong int64
			if votes[i] != truth {
				wrong = 1
			}
			// Same chain the pool store's PATCH path runs: prior weight
			// grows with the accumulated record, so batches compose.
			weight := estimate.DefaultPriorWeight + float64(en.Total)
			rate, err := estimate.PosteriorRate(en.Rate, weight, wrong, 1)
			if err != nil {
				return nil, err
			}
			en.Rate = rate
			en.Wrong += wrong
			en.Total++
			ups = append(ups, server.JurorUpdate{
				ID:    id,
				Votes: &server.VoteObservation{Wrong: wrong, Total: 1},
			})
		}
		return ups, nil

	case EstimatorEM:
		rec := voteRecord{truth: truth, votes: make(map[string]bool, len(ids))}
		for i, id := range ids {
			rec.votes[id] = votes[i]
		}
		e.records = append(e.records, rec)
		if (step+1)%e.sc.EMEvery != 0 {
			return nil, nil
		}
		return e.refreshEM(w)

	default:
		return nil, fmt.Errorf("simul: unknown estimator %q", e.sc.Estimator)
	}
}

// refreshEM re-estimates every observed juror's rate with the
// Dawid–Skene EM over the accumulated history and publishes the result
// as fresh priors (an ErrorRate set resets the pool's vote record, which
// matches the semantics: EM re-reads the whole history each refresh).
func (e *estimator) refreshEM(w *world) ([]server.JurorUpdate, error) {
	if len(e.records) == 0 {
		return nil, nil
	}
	h, err := learn.NewHistory(len(w.jurors))
	if err != nil {
		return nil, err
	}
	answered := make([]int, len(w.jurors))
	for _, rec := range e.records {
		row := make([]learn.Vote, len(w.jurors))
		any := false
		for i, j := range w.jurors {
			v, ok := rec.votes[j.ID]
			switch {
			case !ok:
				row[i] = learn.Abstain
			case v:
				row[i] = learn.VoteYes
				answered[i]++
				any = true
			default:
				row[i] = learn.VoteNo
				answered[i]++
				any = true
			}
		}
		if !any {
			continue // every voter on this task has since churned away
		}
		if err := h.Add(row); err != nil {
			return nil, err
		}
	}
	if h.Tasks() == 0 {
		return nil, nil
	}
	res, err := learn.EM(h, learn.EMOptions{})
	if err != nil {
		return nil, err
	}
	var ups []server.JurorUpdate
	for i, j := range w.jurors {
		if answered[i] == 0 {
			continue // never observed: keep the current estimate
		}
		rate := res.ErrorRates[i]
		e.est[j.ID] = &estEntry{Rate: rate}
		ups = append(ups, server.JurorUpdate{ID: j.ID, ErrorRate: &rate})
	}
	return ups, nil
}

// estimatedRatesOf maps juror IDs to the mirror's current estimates, in
// the given order.
func (e *estimator) estimatedRatesOf(ids []string) ([]float64, error) {
	rates := make([]float64, len(ids))
	for i, id := range ids {
		r, err := e.rateOf(id)
		if err != nil {
			return nil, err
		}
		rates[i] = r
	}
	return rates, nil
}

// selectRandom is the uninformed baseline: a uniformly random odd jury of
// FixedSize drawn from the current crowd.
func (e *estimator) selectRandom(w *world, eng *jury.Engine) (selectOutcome, error) {
	perm := w.pick.Perm(len(w.jurors))
	ids := make([]string, e.sc.FixedSize)
	cost := 0.0
	for i := 0; i < e.sc.FixedSize; i++ {
		j := w.jurors[perm[i]]
		ids[i] = j.ID
		cost += j.Cost
	}
	return e.baselineOutcome(ids, cost, eng)
}

// selectDegree is the popularity baseline every micro-blog requester can
// run without any estimation machinery: ask the FixedSize most-retweeted
// users (ties by ID). It ignores both ε estimates and jury-size
// optimization.
func (e *estimator) selectDegree(w *world, eng *jury.Engine) (selectOutcome, error) {
	idx := make([]int, len(w.jurors))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ja, jb := w.jurors[idx[a]], w.jurors[idx[b]]
		if ja.Degree != jb.Degree {
			return ja.Degree > jb.Degree
		}
		return ja.ID < jb.ID
	})
	ids := make([]string, e.sc.FixedSize)
	cost := 0.0
	for i := 0; i < e.sc.FixedSize; i++ {
		j := w.jurors[idx[i]]
		ids[i] = j.ID
		cost += j.Cost
	}
	return e.baselineOutcome(ids, cost, eng)
}

// baselineOutcome scores a locally selected jury under the current
// estimates so baselines report the same predicted-JER metric the
// backend-served strategies do.
func (e *estimator) baselineOutcome(ids []string, cost float64, eng *jury.Engine) (selectOutcome, error) {
	rates, err := e.estimatedRatesOf(ids)
	if err != nil {
		return selectOutcome{}, err
	}
	predicted, err := eng.JER(rates)
	if err != nil {
		return selectOutcome{}, err
	}
	return selectOutcome{IDs: ids, EstRates: rates, PredictedJER: predicted, Cost: cost}, nil
}
