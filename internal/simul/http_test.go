package simul

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"juryselect/internal/server"
	"juryselect/internal/tasks"
	"juryselect/jury"
)

// newJuryd boots an httptest juryd with the given config.
func newJuryd(t testing.TB, cfg server.Config) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newTaskJuryd boots an httptest juryd fronting a memory-mode task
// store, the server shape the task-lifecycle scenarios require.
func newTaskJuryd(t testing.TB) *httptest.Server {
	t.Helper()
	store, err := tasks.Open(tasks.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return newJuryd(t, server.Config{Tasks: store})
}

// TestHTTPMatchesInProcess is the closed-loop parity contract: the same
// scenario driven over HTTP against a live juryd walks the exact same
// decision trajectory as the in-process run — same selected jury sizes,
// same decisions, same regret and calibration, step by step — because
// both modes consume the same random streams and the service applies the
// same estimate math the simulator mirrors.
func TestHTTPMatchesInProcess(t *testing.T) {
	scenarios := []Scenario{
		{Name: "parity-static", Seed: 13, Steps: 30, Population: 12, Replications: 2},
		{Name: "parity-drift-churn", Seed: 13, Steps: 30, Population: 12, Replications: 2,
			Drift: DriftSpec{Model: DriftWalk, Sigma: 0.02}, ChurnPerStep: 0.7, Availability: 0.8},
		{Name: "parity-pay", Seed: 13, Steps: 20, Population: 12, Replications: 1,
			Strategy: StrategyPay, Budget: 1.5},
		{Name: "parity-oracle", Seed: 13, Steps: 20, Population: 12, Replications: 1,
			Estimator: EstimatorOracle, Drift: DriftSpec{Model: DriftShift}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			local, err := Run(context.Background(), sc, Options{Mode: ModeInProcess, Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			ts := newJuryd(t, server.Config{})
			remote, err := Run(context.Background(), sc, Options{
				Mode: ModeHTTP, Addr: ts.URL, Client: ts.Client(), Trace: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if remote.Summary.TotalShed != 0 {
				t.Fatalf("unloaded juryd shed %d requests", remote.Summary.TotalShed)
			}
			for i := range local.Replications {
				lr, rr := local.Replications[i], remote.Replications[i]
				if !reflect.DeepEqual(lr.Trace, rr.Trace) {
					t.Fatalf("rep %d: traces diverge between modes", i)
				}
				if lr.Accuracy != rr.Accuracy || lr.MeanRegret != rr.MeanRegret ||
					lr.MeanCalibration != rr.MeanCalibration || lr.TotalSpend != rr.TotalSpend ||
					lr.FinalPoolVersion != rr.FinalPoolVersion {
					t.Fatalf("rep %d: aggregates diverge:\nlocal  %+v\nremote %+v", i, lr, rr)
				}
			}
		})
	}
}

// TestTaskLifecycleHTTPMatchesInProcess extends the parity contract to
// the durable task subsystem: create → sequential votes/declines →
// verdict over the wire must walk the same per-step trajectory — votes
// spent, declines, replacements, early stops — as the in-process task
// store, because both expose identical invitation orders and the
// simulator draws its randomness lazily in that order.
func TestTaskLifecycleHTTPMatchesInProcess(t *testing.T) {
	scenarios := []Scenario{
		{Name: "task-parity", Seed: 41, Steps: 25, Population: 14, Replications: 2,
			Lifecycle: LifecycleTask, Availability: 0.75},
		{Name: "task-parity-fixed", Seed: 41, Steps: 15, Population: 14, Replications: 1,
			Lifecycle: LifecycleTask, TargetConfidence: 1, Availability: 0.9,
			Drift: DriftSpec{Model: DriftWalk, Sigma: 0.02}, ChurnPerStep: 0.5},
		{Name: "task-parity-pay", Seed: 41, Steps: 15, Population: 14, Replications: 1,
			Lifecycle: LifecycleTask, Strategy: StrategyPay, Budget: 1.5, Availability: 0.8},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			local, err := Run(context.Background(), sc, Options{Mode: ModeInProcess, Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			ts := newTaskJuryd(t)
			remote, err := Run(context.Background(), sc, Options{
				Mode: ModeHTTP, Addr: ts.URL, Client: ts.Client(), Trace: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if remote.Summary.TotalShed != 0 {
				t.Fatalf("unloaded juryd shed %d requests", remote.Summary.TotalShed)
			}
			for i := range local.Replications {
				lr, rr := local.Replications[i], remote.Replications[i]
				if !reflect.DeepEqual(lr.Trace, rr.Trace) {
					t.Fatalf("rep %d: task traces diverge between modes", i)
				}
				if lr.TotalVotes != rr.TotalVotes || lr.TotalDeclines != rr.TotalDeclines ||
					lr.Replacements != rr.Replacements || lr.EarlyStopped != rr.EarlyStopped ||
					lr.Accuracy != rr.Accuracy {
					t.Fatalf("rep %d: task aggregates diverge:\nlocal  %+v\nremote %+v", i, lr, rr)
				}
			}
		})
	}
}

// TestOverloadShedsGracefully drives juryd past its admission bound: one
// inflight slot, no queue, and background hammer clients keeping that
// slot hot with expensive selects over a large pool, while the simulator
// runs its closed loop against the same instance. The requirement is
// graceful degradation — the run completes without error, 429s are
// absorbed as Retry-After backoffs or recorded as shed steps, and the
// step accounting still partitions.
func TestOverloadShedsGracefully(t *testing.T) {
	// The select cache would absorb the hammer (every round trip after
	// the first is a version-keyed hit that bypasses admission), so this
	// test disables it: overload shedding is about uncacheable work.
	srv := server.New(server.Config{MaxInflight: 1, MaxQueue: -1, SelectCacheEntries: -1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// The hammer pool makes each slot occupancy O(N²)-expensive while
	// request parsing stays trivial, so the admission slot is busy for
	// nearly the whole hammer round trip.
	hammer := make([]jury.Juror, 4001)
	for i := range hammer {
		hammer[i] = jury.Juror{ID: fmt.Sprintf("h%04d", i), ErrorRate: 0.1 + 0.00005*float64(i)}
	}
	if _, err := srv.Store().Put("hammer", hammer); err != nil {
		t.Fatal(err)
	}
	hctx, hcancel := context.WithCancel(context.Background())
	defer hcancel()
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := []byte(`{"pool":"hammer"}`)
			for hctx.Err() == nil {
				req, err := http.NewRequestWithContext(hctx, http.MethodPost, ts.URL+"/v1/select", bytes.NewReader(body))
				if err != nil {
					return
				}
				resp, err := ts.Client().Do(req)
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}()
	}

	sc := Scenario{Name: "overload", Seed: 17, Steps: 10, Population: 30, Replications: 2}
	rep, err := Run(context.Background(), sc, Options{
		Mode: ModeHTTP, Addr: ts.URL, Client: ts.Client(), Workers: 2,
		ShedRetries: 2, MaxRetryAfter: 50 * time.Millisecond,
	})
	hcancel()
	wg.Wait()
	if err != nil {
		t.Fatalf("overloaded run must degrade, not fail: %v", err)
	}
	for _, r := range rep.Replications {
		if r.Decided+r.Undecided+r.Shed != r.Steps {
			t.Errorf("rep %d: step partition broken: %+v", r.Replication, r)
		}
	}
	if rep.Summary.TotalRetries == 0 && rep.Summary.TotalShed == 0 {
		t.Error("admission control never triggered: the hammer failed to overload the server")
	}
	t.Logf("shed %d steps (rate %.2f), %d retries absorbed",
		rep.Summary.TotalShed, rep.Summary.ShedRate, rep.Summary.TotalRetries)
}

// TestDeadBackendFailsFast: the first replication error cancels the
// rest instead of letting every replication time out in turn.
func TestDeadBackendFailsFast(t *testing.T) {
	ts := newJuryd(t, server.Config{})
	ts.Close() // nothing listens here any more
	sc := Scenario{Name: "dead", Seed: 29, Steps: 10, Population: 10, Replications: 16}
	start := time.Now()
	_, err := Run(context.Background(), sc, Options{
		Mode: ModeHTTP, Addr: ts.URL, Workers: 4,
		Client: &http.Client{Timeout: 2 * time.Second},
	})
	if err == nil {
		t.Fatal("run against a dead server succeeded")
	}
	// 16 replications × a 2s client timeout each would take ≥8s through
	// 4 workers if errors didn't cancel the rest.
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Errorf("error took %s to surface: replications were not cancelled", elapsed)
	}
}

// TestHTTPReportsLatency: HTTP-mode reports carry a latency summary.
func TestHTTPReportsLatency(t *testing.T) {
	ts := newJuryd(t, server.Config{})
	sc := Scenario{Name: "latency", Seed: 19, Steps: 10, Population: 10, Replications: 1}
	rep, err := Run(context.Background(), sc, Options{Mode: ModeHTTP, Addr: ts.URL, Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	lat := rep.Replications[0].Latency
	if lat == nil || lat.Count != 10 || lat.P99NS < lat.P50NS || lat.MaxNS <= 0 {
		t.Fatalf("latency summary = %+v", lat)
	}
}
