package simul

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"juryselect/internal/dataio"
	"juryselect/internal/server"
	"juryselect/jury"
)

// httpBackend drives a live juryd over its wire protocol: pool CRUD for
// churn and vote folding, POST /v1/select for every question. It is the
// load-generator half of the closed loop — the same traffic shape a
// requester service would put on juryd in production.
//
// Overload handling: a 429 from admission control is not an error. The
// backend honours the Retry-After header (capped) for up to MaxShedRetries
// attempts; a request still shed after that surfaces as errStepShed, which
// the simulator records and skips. Everything else about the loop keeps
// running, so an overloaded juryd degrades the simulator's coverage, not
// its liveness.
type httpBackend struct {
	base   string
	client *http.Client

	// batcher, when set, coalesces this backend's selects with other
	// replications' into POST /v1/select/batch round trips (batch mode).
	batcher *selectBatcher

	// MaxShedRetries bounds the 429 retry budget per request.
	maxShedRetries int
	// maxRetryAfter caps a server-suggested backoff.
	maxRetryAfter time.Duration
}

const (
	defaultShedRetries   = 3
	defaultMaxRetryAfter = 500 * time.Millisecond
)

// newHTTPBackend returns a backend speaking to a juryd at base
// (e.g. "http://127.0.0.1:8080").
func newHTTPBackend(base string, client *http.Client) *httpBackend {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &httpBackend{
		base:           base,
		client:         client,
		maxShedRetries: defaultShedRetries,
		maxRetryAfter:  defaultMaxRetryAfter,
	}
}

// doJSON issues one JSON request and decodes the response into out when
// the status matches want.
func (hb *httpBackend) doJSON(ctx context.Context, method, path string, body, out any, want int) (int, error) {
	var r io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		r = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, hb.base+path, r)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hb.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode != want {
		if resp.StatusCode == http.StatusTooManyRequests {
			return resp.StatusCode, retryAfterError{delay: parseRetryAfter(resp, hb.maxRetryAfter)}
		}
		return resp.StatusCode, fmt.Errorf("simul: %s %s: status %d: %s", method, path, resp.StatusCode, raw)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, fmt.Errorf("simul: decoding %s %s response: %w", method, path, err)
		}
	}
	return resp.StatusCode, nil
}

// retryAfterError carries the server-suggested backoff of a 429.
type retryAfterError struct{ delay time.Duration }

func (e retryAfterError) Error() string { return "simul: 429 shed" }

// parseRetryAfter reads the Retry-After header (delta-seconds form),
// clamped into (0, max].
func parseRetryAfter(resp *http.Response, max time.Duration) time.Duration {
	d := 50 * time.Millisecond
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	if d > max {
		d = max
	}
	return d
}

func (hb *httpBackend) PutPool(ctx context.Context, name string, jurors []jury.Juror) error {
	req := server.PutJurorsRequest{Jurors: make([]dataio.JurorJSON, len(jurors))}
	for i, j := range jurors {
		req.Jurors[i] = dataio.JurorJSON{ID: j.ID, ErrorRate: j.ErrorRate, Cost: j.Cost}
	}
	_, err := hb.doJSON(ctx, http.MethodPut, "/v1/pools/"+name+"/jurors", req, nil, http.StatusOK)
	return err
}

func (hb *httpBackend) Patch(ctx context.Context, name string, ups []server.JurorUpdate) error {
	req := server.PatchJurorsRequest{Updates: make([]server.JurorUpdateJSON, len(ups))}
	for i, u := range ups {
		req.Updates[i] = server.JurorUpdateJSON{ID: u.ID, ErrorRate: u.ErrorRate, Cost: u.Cost, Remove: u.Remove}
		if u.Votes != nil {
			req.Updates[i].Votes = &server.VotesJSON{Wrong: u.Votes.Wrong, Total: u.Votes.Total}
		}
	}
	_, err := hb.doJSON(ctx, http.MethodPatch, "/v1/pools/"+name+"/jurors", req, nil, http.StatusOK)
	return err
}

func (hb *httpBackend) Select(ctx context.Context, name string, sc Scenario) (selectOutcome, error) {
	req := server.SelectRequest{Pool: name}
	switch sc.Strategy {
	case StrategyPay:
		req.Model = "pay"
		req.Budget = sc.Budget
	case StrategyExact:
		req.Model = "pay"
		req.Budget = sc.Budget
		req.Exact = true
	default:
		req.Model = "altr"
	}
	var retried int
	for attempt := 0; ; attempt++ {
		var resp server.SelectResponse
		var err error
		start := time.Now()
		if hb.batcher != nil {
			resp, err = hb.batcher.do(ctx, req)
		} else {
			_, err = hb.doJSON(ctx, http.MethodPost, "/v1/select", req, &resp, http.StatusOK)
		}
		latency := time.Since(start).Nanoseconds()
		if err == nil {
			out := selectOutcome{
				IDs:          make([]string, len(resp.Selection.Jurors)),
				EstRates:     make([]float64, len(resp.Selection.Jurors)),
				PredictedJER: resp.Selection.JER,
				Cost:         resp.Selection.Cost,
				PoolVersion:  resp.PoolVersion,
				Retried:      retried,
				LatencyNS:    latency,
			}
			for i, j := range resp.Selection.Jurors {
				out.IDs[i] = j.ID
				out.EstRates[i] = j.ErrorRate
			}
			return out, nil
		}
		ra, shed := err.(retryAfterError)
		if !shed {
			return selectOutcome{}, err
		}
		retried++
		if attempt >= hb.maxShedRetries {
			return selectOutcome{Retried: retried, LatencyNS: latency}, errStepShed
		}
		select {
		case <-time.After(ra.delay):
		case <-ctx.Done():
			return selectOutcome{}, ctx.Err()
		}
	}
}

func (hb *httpBackend) CreateTask(ctx context.Context, name string, sc Scenario) (taskOutcome, error) {
	req := server.TaskCreateRequest{
		Pool:             name,
		Strategy:         sc.Strategy,
		Budget:           sc.Budget,
		TargetConfidence: sc.TargetConfidence,
	}
	var retried int
	for attempt := 0; ; attempt++ {
		var resp server.TaskResponse
		start := time.Now()
		_, err := hb.doJSON(ctx, http.MethodPost, "/v1/tasks", req, &resp, http.StatusCreated)
		latency := time.Since(start).Nanoseconds()
		if err == nil {
			out := taskOutcome{
				ID:           resp.Task.ID,
				Invited:      make([]invitee, len(resp.Task.Jurors)),
				PredictedJER: resp.Task.PredictedJER,
				PoolVersion:  resp.Task.PoolVersion,
				Retried:      retried,
				LatencyNS:    latency,
			}
			for i, j := range resp.Task.Jurors {
				out.Invited[i] = invitee{ID: j.ID, Rate: j.ErrorRate}
				out.Cost += j.Cost
			}
			return out, nil
		}
		ra, shed := err.(retryAfterError)
		if !shed {
			return taskOutcome{}, err
		}
		retried++
		if attempt >= hb.maxShedRetries {
			return taskOutcome{Retried: retried, LatencyNS: latency}, errStepShed
		}
		select {
		case <-time.After(ra.delay):
		case <-ctx.Done():
			return taskOutcome{}, ctx.Err()
		}
	}
}

func (hb *httpBackend) TaskVote(ctx context.Context, id, juror string, voteYes bool) (taskProgress, error) {
	v := voteYes
	var resp server.TaskResponse
	_, err := hb.doJSON(ctx, http.MethodPost, "/v1/tasks/"+id+"/votes",
		server.TaskVoteRequest{JurorID: juror, Vote: &v}, &resp, http.StatusOK)
	if err != nil {
		return taskProgress{}, err
	}
	return progressFromView(resp.Task), nil
}

func (hb *httpBackend) TaskDecline(ctx context.Context, id, juror string) (taskProgress, error) {
	var resp server.TaskResponse
	_, err := hb.doJSON(ctx, http.MethodPost, "/v1/tasks/"+id+"/votes",
		server.TaskVoteRequest{JurorID: juror, Decline: true}, &resp, http.StatusOK)
	if err != nil {
		return taskProgress{}, err
	}
	return progressFromView(resp.Task), nil
}

func (hb *httpBackend) TaskVoteBatch(ctx context.Context, id string, ops []voteOp) ([]voteResult, taskProgress, error) {
	req := server.TaskVoteBatchRequest{Votes: make([]server.TaskVoteRequest, len(ops))}
	for i, op := range ops {
		req.Votes[i] = server.TaskVoteRequest{JurorID: op.JurorID, Decline: op.Decline}
		if !op.Decline {
			v := op.Vote
			req.Votes[i].Vote = &v
		}
	}
	var resp server.TaskVoteBatchResponse
	_, err := hb.doJSON(ctx, http.MethodPost, "/v1/tasks/"+id+"/votes/batch", req, &resp, http.StatusOK)
	if err != nil {
		return nil, taskProgress{}, err
	}
	if len(resp.Results) != len(ops) {
		return nil, taskProgress{}, fmt.Errorf("simul: batch vote: %d results for %d votes", len(resp.Results), len(ops))
	}
	results := make([]voteResult, len(resp.Results))
	for i, r := range resp.Results {
		results[i] = voteResult{Applied: r.Applied, Skipped: r.Skipped, Err: r.Error}
	}
	return results, progressFromView(resp.Task), nil
}

func (hb *httpBackend) DeletePool(ctx context.Context, name string) error {
	code, err := hb.doJSON(ctx, http.MethodDelete, "/v1/pools/"+name, nil, nil, http.StatusNoContent)
	if code == http.StatusNotFound {
		return nil // already gone: cleanup is idempotent
	}
	return err
}

func (hb *httpBackend) Close() error {
	hb.client.CloseIdleConnections()
	return nil
}
