package simul

import (
	"encoding/json"
	"math"
	"sort"

	"juryselect/internal/insight"
	"juryselect/internal/obs"
)

// ReportSchema identifies the metrics JSON format.
const ReportSchema = "juryselect-simul/v1"

// StepRecord is the full per-step trace entry, emitted when tracing is
// enabled. The decision-accuracy trajectory tests compare these between
// the in-process and HTTP modes.
type StepRecord struct {
	Step         int     `json:"step"`
	PoolVersion  uint64  `json:"pool_version,omitempty"`
	JurySize     int     `json:"jury_size"`
	Responders   int     `json:"responders"`
	Decided      bool    `json:"decided"`
	Correct      bool    `json:"correct"`
	Shed         bool    `json:"shed,omitempty"`
	PredictedJER float64 `json:"predicted_jer"`
	TrueJER      float64 `json:"true_jer"`
	OracleJER    float64 `json:"oracle_jer"`
	Regret       float64 `json:"regret"`
	Calibration  float64 `json:"calibration"`
	Spend        float64 `json:"spend"`
	// Task-lifecycle fields (zero in select mode): how many votes the
	// sequential protocol actually paid for, how many invitees declined
	// (and were replaced), and whether/how confidently the task closed
	// before exhausting its jury.
	VotesSpent   int     `json:"votes_spent,omitempty"`
	Declines     int     `json:"declines,omitempty"`
	EarlyStopped bool    `json:"early_stopped,omitempty"`
	Confidence   float64 `json:"confidence,omitempty"`
}

// Window aggregates a contiguous run of steps: the unit of the
// convergence trajectories in EXPERIMENTS.md.
type Window struct {
	// StartStep and EndStep bound the window as [start, end).
	StartStep int `json:"start_step"`
	EndStep   int `json:"end_step"`
	// Decided counts steps where a majority decision was delivered;
	// Correct counts those matching the latent truth; Shed counts steps
	// lost to admission control.
	Decided int `json:"decided"`
	Correct int `json:"correct"`
	Shed    int `json:"shed,omitempty"`
	// Accuracy is Correct over attempted (non-shed) steps: an undecided
	// question (tie or no turnout) counts against the system.
	Accuracy float64 `json:"accuracy"`
	// MeanRegret and MeanCalibration average the per-step selection
	// regret (true JER of the chosen jury minus the oracle jury's) and
	// JER calibration error (|predicted − true|) over non-shed steps.
	MeanRegret      float64 `json:"mean_regret"`
	MeanCalibration float64 `json:"mean_calibration"`
}

// LatencySummary summarises HTTP select round-trip times. Wall-clock
// measurements: present only in HTTP mode and outside the deterministic
// part of the report.
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  int64   `json:"p50_ns"`
	P95NS  int64   `json:"p95_ns"`
	P99NS  int64   `json:"p99_ns"`
	MaxNS  int64   `json:"max_ns"`
}

// summarizeHist builds a LatencySummary from the replication's latency
// histogram, or nil when nothing was measured (in-process runs record no
// wall-clock latency, keeping the deterministic report byte-stable).
// Count, mean and max are exact; the percentiles carry the histogram's
// factor-of-2 bucket resolution — the trade for recording fixed-size
// state instead of an unbounded sample slice on a hot loop.
func summarizeHist(h *obs.Histogram) *LatencySummary {
	s := h.Snapshot()
	if s.Count == 0 {
		return nil
	}
	return &LatencySummary{
		Count:  int(s.Count),
		MeanNS: s.Mean(),
		P50NS:  s.Quantile(0.50),
		P95NS:  s.Quantile(0.95),
		P99NS:  s.Quantile(0.99),
		MaxNS:  s.Max,
	}
}

// CountSummary summarises a small integer distribution exactly: sorted
// nearest-rank quantiles over the full sample, so the report stays
// bit-identical across runs and worker counts (unlike the power-of-2
// histogram buckets, which would quantize a jury-sized count space).
type CountSummary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int     `json:"p50"`
	P90   int     `json:"p90"`
	Max   int     `json:"max"`
}

// summarizeCounts builds a CountSummary, or nil for an empty sample.
func summarizeCounts(xs []int) *CountSummary {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	sum := 0
	for _, x := range sorted {
		sum += x
	}
	rank := func(q float64) int {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	return &CountSummary{
		Count: len(sorted),
		Mean:  float64(sum) / float64(len(sorted)),
		P50:   rank(0.50),
		P90:   rank(0.90),
		Max:   sorted[len(sorted)-1],
	}
}

// RepResult is one replication's outcome.
type RepResult struct {
	Replication int `json:"replication"`
	Steps       int `json:"steps"`
	// Decided, Correct, Undecided and Shed partition the steps:
	// Decided + Undecided + Shed == Steps, Correct ≤ Decided.
	Decided   int `json:"decided"`
	Correct   int `json:"correct"`
	Undecided int `json:"undecided"`
	Shed      int `json:"shed"`
	// Retries counts 429 responses absorbed by Retry-After backoff
	// (HTTP mode; includes retries that eventually succeeded).
	Retries int `json:"retries,omitempty"`
	// Accuracy is Correct over attempted (non-shed) steps.
	Accuracy float64 `json:"accuracy"`
	// MeanRegret and MeanCalibration average over non-shed steps.
	MeanRegret      float64 `json:"mean_regret"`
	MeanCalibration float64 `json:"mean_calibration"`
	MeanJurySize    float64 `json:"mean_jury_size"`
	TotalSpend      float64 `json:"total_spend"`
	// Task-lifecycle tallies (omitted in select mode): votes actually
	// collected, invitations declined, replacement jurors pulled in,
	// tasks closed by sequential early stop, and the mean votes one
	// verdict cost — the pay-as-you-go headline number.
	TotalVotes     int     `json:"total_votes,omitempty"`
	TotalDeclines  int     `json:"total_declines,omitempty"`
	Replacements   int     `json:"replacements,omitempty"`
	EarlyStopped   int     `json:"early_stopped,omitempty"`
	MeanVotesSpent float64 `json:"mean_votes_spent,omitempty"`
	// VerdictVotes totals the votes spent on steps that reached a
	// verdict, and VotesToVerdict is their exact distribution — the
	// simulation's time-to-verdict, measured in the protocol's own clock
	// (sequential responses collected), since the simulator has no wall
	// time. Compare against MeanJurySize: a fixed jury pays every seat,
	// sequential early stop closes as soon as confidence is reached.
	VerdictVotes   int           `json:"verdict_votes,omitempty"`
	VotesToVerdict *CountSummary `json:"votes_to_verdict,omitempty"`
	// FinalPoolVersion is the backend pool version after the last step —
	// the number of published pool snapshots the run produced.
	FinalPoolVersion uint64 `json:"final_pool_version,omitempty"`
	// OracleCalibration bins each decided step's selection-time predicted
	// JER against its oracle outcome (0 = the majority matched the latent
	// truth, 1 = it did not) — the simlab counterpart of the production
	// insight engine's reliability diagram, which only ever sees posterior
	// confidence. Present whenever at least one step decided.
	OracleCalibration *insight.ReliabilityReport `json:"oracle_calibration,omitempty"`
	Windows           []Window                   `json:"windows"`
	Latency           *LatencySummary            `json:"latency,omitempty"`
	Trace             []StepRecord               `json:"trace,omitempty"`

	// oracleCalib keeps the raw integer bins so summarize can merge
	// replications exactly; the exported report is derived from it.
	oracleCalib insight.Reliability
}

// oracleReliability folds each decided step of a replication trace into
// reliability bins: predicted JER against the oracle 0/1 outcome.
// Undecided and shed steps carry no outcome and are skipped.
func oracleReliability(records []StepRecord) insight.Reliability {
	var rel insight.Reliability
	for _, r := range records {
		if r.Shed || !r.Decided {
			continue
		}
		realized := 0.0
		if !r.Correct {
			realized = 1
		}
		rel.Add(r.PredictedJER, realized)
	}
	return rel
}

// attachOracleCalibration derives the exported calibration report from
// the replication's trace records.
func (r *RepResult) attachOracleCalibration(records []StepRecord) {
	r.oracleCalib = oracleReliability(records)
	if r.oracleCalib.Total() > 0 {
		rep := r.oracleCalib.Report()
		r.OracleCalibration = &rep
	}
}

// Summary aggregates across replications.
type Summary struct {
	Replications    int     `json:"replications"`
	Accuracy        float64 `json:"accuracy"` // mean of replication accuracies
	MeanRegret      float64 `json:"mean_regret"`
	MeanCalibration float64 `json:"mean_calibration"`
	// WindowAccuracy is the per-window accuracy averaged across
	// replications: the convergence trajectory.
	WindowAccuracy []float64 `json:"window_accuracy"`
	// FirstWindowAccuracy and LastWindowAccuracy expose the trajectory's
	// endpoints for quick convergence checks.
	FirstWindowAccuracy float64 `json:"first_window_accuracy"`
	LastWindowAccuracy  float64 `json:"last_window_accuracy"`
	TotalShed           int     `json:"total_shed"`
	TotalRetries        int     `json:"total_retries,omitempty"`
	// ShedRate is shed steps over all steps in all replications.
	ShedRate float64 `json:"shed_rate"`
	// MeanVotesSpent and EarlyStopRate summarise the task lifecycle
	// (omitted in select mode): average votes per attempted task across
	// replications, and the fraction of decided tasks that closed before
	// exhausting their jury.
	MeanVotesSpent float64 `json:"mean_votes_spent,omitempty"`
	EarlyStopRate  float64 `json:"early_stop_rate,omitempty"`
	// MeanVotesToVerdict is votes spent per verdict pooled across
	// replications — the time-to-verdict headline in the simulation's
	// response clock. MeanJurySize is the selected jury size (what a
	// fixed jury would pay); MeanVotesSaved is their gap, the sequential
	// early-stop saving per verdict.
	MeanVotesToVerdict float64 `json:"mean_votes_to_verdict,omitempty"`
	MeanJurySize       float64 `json:"mean_jury_size,omitempty"`
	MeanVotesSaved     float64 `json:"mean_votes_saved,omitempty"`
	// OracleCalibration merges every replication's reliability bins. The
	// merge is commutative integer arithmetic, so the report is identical
	// at any worker count.
	OracleCalibration *insight.ReliabilityReport `json:"oracle_calibration,omitempty"`
}

// Report is the complete metrics document a run produces. In in-process
// mode it is a pure function of (Scenario, seed): bit-identical across
// runs and worker counts. In HTTP mode the latency summaries (and, under
// overload, shed counts) reflect wall-clock behaviour.
type Report struct {
	Schema       string      `json:"schema"`
	Mode         string      `json:"mode"`
	Scenario     Scenario    `json:"scenario"`
	Summary      Summary     `json:"summary"`
	Replications []RepResult `json:"replications"`
}

// Marshal renders the report as indented JSON with a trailing newline.
// Encoding is deterministic: struct-ordered keys and shortest
// round-trip float formatting.
func (r *Report) Marshal() ([]byte, error) {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// summarize builds the cross-replication summary.
func summarize(sc Scenario, reps []RepResult) Summary {
	s := Summary{Replications: len(reps)}
	if len(reps) == 0 {
		return s
	}
	var windows int
	var totalVotes, earlyStopped, decidedTasks, attempted, verdictVotes int
	var jurySized int
	for _, r := range reps {
		s.Accuracy += r.Accuracy
		s.MeanRegret += r.MeanRegret
		s.MeanCalibration += r.MeanCalibration
		s.TotalShed += r.Shed
		s.TotalRetries += r.Retries
		totalVotes += r.TotalVotes
		earlyStopped += r.EarlyStopped
		decidedTasks += r.Decided
		attempted += r.Steps - r.Shed
		verdictVotes += r.VerdictVotes
		if r.MeanJurySize > 0 {
			s.MeanJurySize += r.MeanJurySize
			jurySized++
		}
		if len(r.Windows) > windows {
			windows = len(r.Windows)
		}
	}
	n := float64(len(reps))
	s.Accuracy /= n
	s.MeanRegret /= n
	s.MeanCalibration /= n
	s.ShedRate = float64(s.TotalShed) / (n * float64(sc.Steps))
	if totalVotes > 0 && attempted > 0 {
		s.MeanVotesSpent = float64(totalVotes) / float64(attempted)
	}
	if earlyStopped > 0 && decidedTasks > 0 {
		s.EarlyStopRate = float64(earlyStopped) / float64(decidedTasks)
	}
	if jurySized > 0 {
		s.MeanJurySize /= float64(jurySized)
	}
	if verdictVotes > 0 && decidedTasks > 0 {
		s.MeanVotesToVerdict = float64(verdictVotes) / float64(decidedTasks)
		if s.MeanJurySize > s.MeanVotesToVerdict {
			s.MeanVotesSaved = s.MeanJurySize - s.MeanVotesToVerdict
		}
	}
	var calib insight.Reliability
	for i := range reps {
		calib.Merge(&reps[i].oracleCalib)
	}
	if calib.Total() > 0 {
		rep := calib.Report()
		s.OracleCalibration = &rep
	}

	s.WindowAccuracy = make([]float64, windows)
	counts := make([]int, windows)
	for _, r := range reps {
		for i, w := range r.Windows {
			s.WindowAccuracy[i] += w.Accuracy
			counts[i]++
		}
	}
	for i := range s.WindowAccuracy {
		if counts[i] > 0 {
			s.WindowAccuracy[i] /= float64(counts[i])
		}
	}
	if windows > 0 {
		s.FirstWindowAccuracy = s.WindowAccuracy[0]
		s.LastWindowAccuracy = s.WindowAccuracy[windows-1]
	}
	return s
}
