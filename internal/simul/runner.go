package simul

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"juryselect/jury"
)

// Run modes.
const (
	// ModeInProcess drives the service stack in-process: the same pool
	// store and JER engine juryd serves from, without HTTP.
	ModeInProcess = "inprocess"
	// ModeHTTP drives a live juryd over its wire protocol.
	ModeHTTP = "http"
)

// Options configures a run.
type Options struct {
	// Mode is ModeInProcess (default) or ModeHTTP.
	Mode string
	// Addr is the juryd base URL (e.g. "http://127.0.0.1:8080");
	// required in HTTP mode.
	Addr string
	// Workers bounds how many replications run concurrently; zero
	// selects runtime.GOMAXPROCS(0). Replications are independent, so
	// the fan-out scales near-linearly until it saturates the cores (or,
	// in HTTP mode, the served juryd — which is the point of the
	// overload scenarios).
	Workers int
	// Trace includes the full per-step record stream in the report.
	Trace bool
	// Batch switches to the batch wire protocol: task votes post whole
	// invitation rounds through POST /v1/tasks/{id}/votes/batch, and in
	// HTTP mode concurrent selects from replication workers coalesce
	// into POST /v1/select/batch round trips. Batch mode draws a round's
	// availability and votes upfront, so its trajectories differ from
	// single-shot mode — but stay deterministic and identical between
	// the in-process and HTTP backends at the same setting.
	Batch bool
	// Client overrides the HTTP client (tests; HTTP mode only).
	Client *http.Client
	// TaskShards overrides the in-process task store's shard count
	// (zero = store default). Simulated trajectories are shard-count
	// invariant — the parity tests run the same scenario at 1 shard
	// (the PR 6 global-lock model) and the sharded default and demand
	// identical reports.
	TaskShards int
	// Engine overrides the shared JER engine (tests and benchmarks).
	Engine *jury.Engine
	// ShedRetries bounds how many 429 responses one select absorbs via
	// Retry-After backoff before the step is recorded as shed; zero
	// selects the default (HTTP mode only).
	ShedRetries int
	// MaxRetryAfter caps a server-suggested backoff; zero selects the
	// default (HTTP mode only).
	MaxRetryAfter time.Duration
}

// Run executes every replication of the scenario and assembles the
// metrics report. Replications fan out across a bounded worker pool;
// results are assembled in replication order, so the report is
// independent of scheduling.
func Run(ctx context.Context, sc Scenario, opts Options) (*Report, error) {
	sc = sc.Normalize()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	mode := opts.Mode
	if mode == "" {
		mode = ModeInProcess
	}
	if mode != ModeInProcess && mode != ModeHTTP {
		return nil, fmt.Errorf("simul: unknown mode %q (want %s or %s)", mode, ModeInProcess, ModeHTTP)
	}
	if mode == ModeHTTP && opts.Addr == "" {
		return nil, fmt.Errorf("simul: HTTP mode requires an address")
	}
	eng := opts.Engine
	if eng == nil {
		eng = jury.NewEngine(jury.BatchOptions{})
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > sc.Replications {
		workers = sc.Replications
	}

	// One batcher spans every replication worker: select coalescing only
	// pays off across concurrent backends sharing round trips.
	var sb *selectBatcher
	if mode == ModeHTTP && opts.Batch {
		sb = newSelectBatcher(opts.Addr, opts.Client)
	}
	newBackend := func() backend {
		if mode == ModeHTTP {
			hb := newHTTPBackend(opts.Addr, opts.Client)
			hb.batcher = sb
			if opts.ShedRetries > 0 {
				hb.maxShedRetries = opts.ShedRetries
			}
			if opts.MaxRetryAfter > 0 {
				hb.maxRetryAfter = opts.MaxRetryAfter
			}
			return hb
		}
		// A fresh store per replication keeps pool histories independent;
		// the engine (and its memo) is shared, like in the real service.
		return newLocalBackend(eng, opts.TaskShards)
	}

	// Fail fast: the first replication error cancels the rest (their
	// in-flight HTTP requests abort through the request context), so a
	// dead juryd surfaces immediately instead of after every remaining
	// replication times out in turn.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	results := make([]RepResult, sc.Replications)
	errs := make([]error, sc.Replications)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for wkr := 0; wkr < workers; wkr++ {
		go func() {
			defer wg.Done()
			for {
				rep := int(next.Add(1) - 1)
				if rep >= sc.Replications || runCtx.Err() != nil {
					return
				}
				be := newBackend()
				res, err := runReplication(runCtx, sc, rep, be, eng, opts.Batch, opts.Trace)
				be.Close() //nolint:errcheck
				results[rep], errs[rep] = res, err
				if err != nil {
					cancelRun()
				}
			}
		}()
	}
	wg.Wait()
	// Prefer the root-cause error over the cancellations it induced.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return &Report{
		Schema:       ReportSchema,
		Mode:         mode,
		Scenario:     sc,
		Summary:      summarize(sc, results),
		Replications: results,
	}, nil
}
