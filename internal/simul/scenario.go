// Package simul is a deterministic, seeded, discrete-event micro-blog
// crowd simulator and closed-loop load generator for the jury-selection
// stack. It animates the online setting the paper assumes but never
// exercises end to end: questions arrive continuously, jurors' true error
// rates are latent and drifting, jurors join and leave the crowd, and the
// system must keep selecting minimum-JER juries while re-estimating ε
// from the votes it observes.
//
// A Scenario declares the crowd and the regime: population, ground-truth
// error-rate distribution (truncated-normal or the §4 micro-blog
// estimation pipeline over a synthetic corpus), a drift model (static /
// random-walk / regime-shift, cf. Burghardt et al., "The Myopia of
// Crowds"), churn (join/leave, mapped to pool PATCH operations),
// availability (the probability a selected juror actually votes, cf.
// Mahmud et al., "Optimizing the Selection of Strangers"), a selection
// strategy (altr / pay / exact / random / degree baseline) and an
// estimation policy (oracle ε, Beta-posterior from observed votes, or EM
// over the vote history).
//
// Each step the simulator drifts and churns the ground truth, selects a
// jury from the live pool, samples availability and votes from the true
// rates, aggregates the majority decision, folds the observations back
// into the estimator, and records decision accuracy, regret against the
// oracle-ε jury, JER calibration error and spend. The same scenario can
// run in-process (against jury.Engine and the versioned pool store) or
// over HTTP against a live juryd — the randomness is consumed
// identically, so the two modes produce the same decision trajectory,
// modulo requests the service sheds under overload.
//
// Determinism contract: same Scenario + seed ⇒ bit-identical metrics
// (Report.MarshalDeterministic), for every worker count. HTTP-mode
// latency summaries are measured wall-clock and sit outside the
// deterministic part.
package simul

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// Strategy names accepted by Scenario.Strategy.
const (
	StrategyAltr   = "altr"   // AltrALG over estimated rates (Algorithm 3)
	StrategyPay    = "pay"    // PayALG greedy under Scenario.Budget (Algorithm 4)
	StrategyExact  = "exact"  // exact enumeration under Scenario.Budget
	StrategyRandom = "random" // uniformly random odd jury of FixedSize
	StrategyDegree = "degree" // FixedSize most-popular jurors (degree baseline)
)

// Estimator names accepted by Scenario.Estimator.
const (
	EstimatorOracle    = "oracle"    // selection sees the true ε at every step
	EstimatorPosterior = "posterior" // Beta-posterior folding of observed votes
	EstimatorEM        = "em"        // periodic Dawid–Skene EM over the vote history
)

// Source names accepted by Scenario.Source.
const (
	SourceNormal    = "normal"    // truncated-normal ε, Zipf popularity
	SourceMicroblog = "microblog" // §4 pipeline over a synthetic retweet corpus
)

// Lifecycle names accepted by Scenario.Lifecycle.
const (
	// LifecycleSelect (the default) is the PR-4 loop: one stateless
	// /v1/select per question, all selected jurors vote at once.
	LifecycleSelect = "select"
	// LifecycleTask drives the durable decision-task subsystem: per
	// question a task is created (POST /v1/tasks), invited jurors vote
	// or decline one at a time (availability draws decide which),
	// non-responders are replaced by the next-best candidate, and the
	// task closes by sequential early stop — or when the jury is
	// exhausted.
	LifecycleTask = "task"
)

// Drift model names accepted by DriftSpec.Model.
const (
	DriftStatic = "static" // frozen ground truth
	DriftWalk   = "walk"   // per-step Gaussian random walk on every ε
	DriftShift  = "shift"  // one regime shift: a fraction of jurors redrawn
)

// DriftSpec declares how the ground-truth error rates evolve.
type DriftSpec struct {
	// Model is static (default), walk, or shift.
	Model string `json:"model,omitempty"`
	// Sigma is the per-step standard deviation of the random walk
	// (default 0.01; walk model only).
	Sigma float64 `json:"sigma,omitempty"`
	// ShiftStep is the step at which the regime shift lands (shift
	// model only). Zero selects the default Steps/2 — a shift at the
	// very first step is therefore not expressible; shift the initial
	// rate distribution instead.
	ShiftStep int `json:"shift_step,omitempty"`
	// ShiftFraction is the fraction of the population redrawn at the
	// shift (default 0.3; shift model only).
	ShiftFraction float64 `json:"shift_fraction,omitempty"`
	// ShiftMean and ShiftStddev parameterize the post-shift error-rate
	// distribution (defaults 0.45 and 0.05; shift model only).
	ShiftMean   float64 `json:"shift_mean,omitempty"`
	ShiftStddev float64 `json:"shift_stddev,omitempty"`
	// Min and Max clamp every true rate into (Min, Max) after drift
	// (defaults 0.02 and 0.6) so drifting jurors stay valid model inputs
	// while still being allowed to cross the 0.5 usefulness boundary.
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
}

// Scenario declares one simulated crowd regime. The zero value of every
// optional field selects the documented default; Normalize applies them.
type Scenario struct {
	// Name labels the scenario in reports and pool names.
	Name string `json:"name"`
	// Seed drives every random stream; replication r derives its own
	// independent streams from (Seed, r).
	Seed int64 `json:"seed"`
	// Steps is the number of decision tasks (questions) simulated.
	Steps int `json:"steps"`
	// Population is the crowd size (held constant under churn: every
	// leaver is replaced by a fresh joiner).
	Population int `json:"population"`

	// Source picks the ground-truth generator: normal (default) or
	// microblog (§4 pipeline over a synthetic corpus).
	Source string `json:"source,omitempty"`
	// RateMean and RateStddev parameterize the truncated-normal ε
	// distribution (defaults 0.25 and 0.12; normal source, churn joiners
	// and shift redraws).
	RateMean   float64 `json:"rate_mean,omitempty"`
	RateStddev float64 `json:"rate_stddev,omitempty"`
	// CostMean and CostStddev parameterize payment requirements
	// (defaults 0.2 and 0.1).
	CostMean   float64 `json:"cost_mean,omitempty"`
	CostStddev float64 `json:"cost_stddev,omitempty"`
	// CorpusTweets is the synthetic corpus size for the microblog source
	// (default 5·Population).
	CorpusTweets int `json:"corpus_tweets,omitempty"`

	// Drift declares the ground-truth evolution.
	Drift DriftSpec `json:"drift,omitempty"`
	// ChurnPerStep is the expected number of juror replacements per step
	// (fractional values Bernoulli-round; default 0).
	ChurnPerStep float64 `json:"churn_per_step,omitempty"`
	// Availability is the probability a selected juror actually votes
	// (default 1). Absent voters shrink the effective jury; an even or
	// empty turnout can leave the question undecided.
	Availability float64 `json:"availability,omitempty"`

	// Strategy picks the selection algorithm (default altr).
	Strategy string `json:"strategy,omitempty"`
	// Budget is the pay-model budget (pay and exact strategies).
	Budget float64 `json:"budget,omitempty"`
	// FixedSize is the jury size used by the random and degree baselines
	// (odd; default 5).
	FixedSize int `json:"fixed_size,omitempty"`

	// Lifecycle picks the serving path per question: select (default,
	// one-shot selection) or task (the durable task store's sequential
	// voting with early stop and juror replacement).
	Lifecycle string `json:"lifecycle,omitempty"`
	// TargetConfidence is the task lifecycle's early-stop threshold in
	// (0.5, 1]; exactly 1 disables early stop (fixed-jury voting).
	// Default 0.9.
	TargetConfidence float64 `json:"target_confidence,omitempty"`

	// Estimator picks the estimation policy (default posterior).
	Estimator string `json:"estimator,omitempty"`
	// PriorRate is the initial ε estimate assigned to every juror under
	// the posterior and em policies (default 0.3).
	PriorRate float64 `json:"prior_rate,omitempty"`
	// EMEvery is the EM refresh period in steps (default 25; em only).
	EMEvery int `json:"em_every,omitempty"`

	// WindowSteps is the metrics window width (default max(1, Steps/10)).
	WindowSteps int `json:"window_steps,omitempty"`
	// Replications is the number of independent replications (default 1).
	Replications int `json:"replications,omitempty"`
}

// Normalize returns a copy with every defaultable zero field filled in.
func (sc Scenario) Normalize() Scenario {
	if sc.Name == "" {
		sc.Name = "scenario"
	}
	if sc.Source == "" {
		sc.Source = SourceNormal
	}
	if sc.RateMean == 0 {
		sc.RateMean = 0.25
	}
	if sc.RateStddev == 0 {
		sc.RateStddev = 0.12
	}
	if sc.CostMean == 0 {
		sc.CostMean = 0.2
	}
	if sc.CostStddev == 0 {
		sc.CostStddev = 0.1
	}
	if sc.CorpusTweets == 0 {
		sc.CorpusTweets = 5 * sc.Population
	}
	if sc.Drift.Model == "" {
		sc.Drift.Model = DriftStatic
	}
	if sc.Drift.Sigma == 0 {
		sc.Drift.Sigma = 0.01
	}
	if sc.Drift.ShiftStep == 0 {
		sc.Drift.ShiftStep = sc.Steps / 2
	}
	if sc.Drift.ShiftFraction == 0 {
		sc.Drift.ShiftFraction = 0.3
	}
	if sc.Drift.ShiftMean == 0 {
		sc.Drift.ShiftMean = 0.45
	}
	if sc.Drift.ShiftStddev == 0 {
		sc.Drift.ShiftStddev = 0.05
	}
	if sc.Drift.Min == 0 {
		sc.Drift.Min = 0.02
	}
	if sc.Drift.Max == 0 {
		sc.Drift.Max = 0.6
	}
	if sc.Availability == 0 {
		sc.Availability = 1
	}
	if sc.Strategy == "" {
		sc.Strategy = StrategyAltr
	}
	if sc.FixedSize == 0 {
		sc.FixedSize = 5
	}
	if sc.Lifecycle == "" {
		sc.Lifecycle = LifecycleSelect
	}
	if sc.TargetConfidence == 0 {
		sc.TargetConfidence = 0.9
	}
	if sc.Estimator == "" {
		sc.Estimator = EstimatorPosterior
	}
	if sc.PriorRate == 0 {
		sc.PriorRate = 0.3
	}
	if sc.EMEvery == 0 {
		sc.EMEvery = 25
	}
	if sc.WindowSteps == 0 {
		sc.WindowSteps = sc.Steps / 10
		if sc.WindowSteps < 1 {
			sc.WindowSteps = 1
		}
	}
	if sc.Replications == 0 {
		sc.Replications = 1
	}
	return sc
}

// Validate checks a normalized scenario. Call Normalize first.
func (sc Scenario) Validate() error {
	if sc.Steps <= 0 {
		return errors.New("simul: steps must be positive")
	}
	if sc.Population < 3 {
		return errors.New("simul: population must be at least 3")
	}
	switch sc.Source {
	case SourceNormal, SourceMicroblog:
	default:
		return fmt.Errorf("simul: unknown source %q (want %s or %s)", sc.Source, SourceNormal, SourceMicroblog)
	}
	if bad(sc.RateMean) || sc.RateMean <= 0 || sc.RateMean >= 1 {
		return fmt.Errorf("simul: rate_mean %g outside (0,1)", sc.RateMean)
	}
	if bad(sc.RateStddev) || sc.RateStddev < 0 {
		return fmt.Errorf("simul: rate_stddev %g must be non-negative", sc.RateStddev)
	}
	if bad(sc.CostMean) || sc.CostMean < 0 || bad(sc.CostStddev) || sc.CostStddev < 0 {
		return errors.New("simul: cost parameters must be non-negative")
	}
	switch sc.Drift.Model {
	case DriftStatic, DriftWalk, DriftShift:
	default:
		return fmt.Errorf("simul: unknown drift model %q", sc.Drift.Model)
	}
	if bad(sc.Drift.Sigma) || sc.Drift.Sigma < 0 {
		return fmt.Errorf("simul: drift sigma %g must be non-negative", sc.Drift.Sigma)
	}
	if sc.Drift.ShiftFraction < 0 || sc.Drift.ShiftFraction > 1 || bad(sc.Drift.ShiftFraction) {
		return fmt.Errorf("simul: shift_fraction %g outside [0,1]", sc.Drift.ShiftFraction)
	}
	if sc.Drift.Model == DriftShift && (sc.Drift.ShiftStep <= 0 || sc.Drift.ShiftStep >= sc.Steps) {
		return fmt.Errorf("simul: shift_step %d outside (0, steps): the shift would never fire", sc.Drift.ShiftStep)
	}
	if !(0 < sc.Drift.Min && sc.Drift.Min < sc.Drift.Max && sc.Drift.Max < 1) {
		return fmt.Errorf("simul: drift bounds (%g, %g) must satisfy 0 < min < max < 1", sc.Drift.Min, sc.Drift.Max)
	}
	if bad(sc.ChurnPerStep) || sc.ChurnPerStep < 0 || sc.ChurnPerStep > float64(sc.Population) {
		return fmt.Errorf("simul: churn_per_step %g outside [0, population]", sc.ChurnPerStep)
	}
	if bad(sc.Availability) || sc.Availability <= 0 || sc.Availability > 1 {
		return fmt.Errorf("simul: availability %g outside (0,1]", sc.Availability)
	}
	switch sc.Strategy {
	case StrategyAltr, StrategyPay, StrategyExact, StrategyRandom, StrategyDegree:
	default:
		return fmt.Errorf("simul: unknown strategy %q", sc.Strategy)
	}
	if bad(sc.Budget) || sc.Budget < 0 {
		return fmt.Errorf("simul: budget %g must be non-negative", sc.Budget)
	}
	if sc.FixedSize <= 0 || sc.FixedSize%2 == 0 || sc.FixedSize > sc.Population {
		return fmt.Errorf("simul: fixed_size %d must be odd and within the population", sc.FixedSize)
	}
	switch sc.Lifecycle {
	case LifecycleSelect:
	case LifecycleTask:
		if sc.Strategy != StrategyAltr && sc.Strategy != StrategyPay {
			return fmt.Errorf("simul: task lifecycle supports strategies %s and %s, not %q",
				StrategyAltr, StrategyPay, sc.Strategy)
		}
	default:
		return fmt.Errorf("simul: unknown lifecycle %q (want %s or %s)", sc.Lifecycle, LifecycleSelect, LifecycleTask)
	}
	if bad(sc.TargetConfidence) || sc.TargetConfidence <= 0.5 || sc.TargetConfidence > 1 {
		return fmt.Errorf("simul: target_confidence %g outside (0.5, 1]", sc.TargetConfidence)
	}
	switch sc.Estimator {
	case EstimatorOracle, EstimatorPosterior, EstimatorEM:
	default:
		return fmt.Errorf("simul: unknown estimator %q", sc.Estimator)
	}
	if bad(sc.PriorRate) || sc.PriorRate <= 0 || sc.PriorRate >= 1 {
		return fmt.Errorf("simul: prior_rate %g outside (0,1)", sc.PriorRate)
	}
	if sc.EMEvery <= 0 {
		return errors.New("simul: em_every must be positive")
	}
	if sc.WindowSteps <= 0 {
		return errors.New("simul: window_steps must be positive")
	}
	if sc.Replications <= 0 {
		return errors.New("simul: replications must be positive")
	}
	return nil
}

func bad(x float64) bool { return math.IsNaN(x) || math.IsInf(x, 0) }

// ReadScenario decodes a scenario from JSON (strict fields), normalizes
// and validates it.
func ReadScenario(r io.Reader) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("simul: decoding scenario: %w", err)
	}
	sc = sc.Normalize()
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// Presets returns the named built-in scenarios, the regimes the
// EXPERIMENTS tables and the CI smoke use. Each is already normalized.
func Presets() map[string]Scenario {
	// The shared crowd shape: mean ε 0.4 with spread 0.1 keeps the
	// optimal jury clearly better than chance but far from perfect, so
	// accuracy trajectories neither saturate at 1 nor drown in noise.
	m := map[string]Scenario{
		"convergence": {
			Name: "convergence", Seed: 1, Steps: 800, Population: 60,
			RateMean: 0.4, RateStddev: 0.1,
			Replications: 4,
		},
		"drift": {
			Name: "drift", Seed: 1, Steps: 800, Population: 60,
			RateMean: 0.4, RateStddev: 0.1,
			Drift:        DriftSpec{Model: DriftWalk, Sigma: 0.015},
			Replications: 4,
		},
		"shift": {
			Name: "shift", Seed: 1, Steps: 800, Population: 60,
			RateMean: 0.4, RateStddev: 0.1,
			Drift:        DriftSpec{Model: DriftShift},
			Replications: 4,
		},
		"churn": {
			Name: "churn", Seed: 1, Steps: 800, Population: 60,
			RateMean: 0.4, RateStddev: 0.1,
			ChurnPerStep: 1.5,
			Replications: 4,
		},
		"flaky": {
			Name: "flaky", Seed: 1, Steps: 800, Population: 60,
			RateMean: 0.4, RateStddev: 0.1,
			Availability: 0.7,
			Replications: 4,
		},
		"budget": {
			Name: "budget", Seed: 1, Steps: 400, Population: 60,
			RateMean: 0.4, RateStddev: 0.1,
			Strategy: StrategyPay, Budget: 1.0,
			Replications: 4,
		},
		"microblog": {
			Name: "microblog", Seed: 1, Steps: 300, Population: 80,
			Source:       SourceMicroblog,
			Replications: 2,
		},
		"smoke": {
			Name: "smoke", Seed: 1, Steps: 40, Population: 15,
			RateMean: 0.4, RateStddev: 0.1,
			ChurnPerStep: 0.5,
			Drift:        DriftSpec{Model: DriftWalk},
			Replications: 2,
		},
		// The decision-task lifecycle: sequential early-stop voting with
		// 80% juror availability, so declines and next-best replacement
		// are exercised on most tasks.
		"task": {
			Name: "task", Seed: 1, Steps: 400, Population: 60,
			RateMean: 0.4, RateStddev: 0.1,
			Availability: 0.8,
			Lifecycle:    LifecycleTask, TargetConfidence: 0.9,
			Replications: 4,
		},
		"task-smoke": {
			Name: "task-smoke", Seed: 1, Steps: 40, Population: 15,
			RateMean: 0.4, RateStddev: 0.1,
			Availability: 0.7,
			Lifecycle:    LifecycleTask, TargetConfidence: 0.9,
			Replications: 2,
		},
	}
	for k, sc := range m {
		m[k] = sc.Normalize()
	}
	return m
}

// Preset returns one named preset.
func Preset(name string) (Scenario, error) {
	sc, ok := Presets()[name]
	if !ok {
		return Scenario{}, fmt.Errorf("simul: unknown preset %q", name)
	}
	return sc, nil
}
