package simul

import (
	"context"
	"errors"
	"fmt"

	"juryselect/internal/core"
	"juryselect/internal/obs"
	"juryselect/internal/server"
	"juryselect/jury"
)

// runReplication drives one replication's closed loop: per step it
// drifts and churns the ground truth, publishes the estimator's view to
// the backend pool, selects a jury, samples availability and votes from
// the true rates, aggregates the majority decision, scores the step
// against the per-step oracle, and folds the observations back into the
// estimator.
//
// Every random draw comes from the replication's world streams in a
// fixed order, and the backend consumes none — so the in-process and
// HTTP backends walk identical trajectories until the first shed
// request.
func runReplication(ctx context.Context, sc Scenario, rep int, be backend, eng *jury.Engine, batch, trace bool) (RepResult, error) {
	if sc.Lifecycle == LifecycleTask {
		return runTaskReplication(ctx, sc, rep, be, eng, batch, trace)
	}
	w, err := newWorld(sc, rep)
	if err != nil {
		return RepResult{}, err
	}
	est := newEstimator(sc)
	poolName := fmt.Sprintf("sim-%s-r%d", sc.Name, rep)
	if err := be.PutPool(ctx, poolName, est.initialPool(w)); err != nil {
		return RepResult{}, err
	}
	defer be.DeletePool(context.WithoutCancel(ctx), poolName) //nolint:errcheck // best-effort cleanup

	res := RepResult{Replication: rep, Steps: sc.Steps}
	var (
		records        []StepRecord // always built; exported only when tracing
		latHist        obs.Histogram
		sumRegret      float64
		sumCalibration float64
		sumJurySize    int
		scored         int // non-shed steps
	)
	for step := 0; step < sc.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return RepResult{}, err
		}

		// 1. Ground truth evolves; the estimator publishes what its
		// policy is allowed to see.
		var ups []server.JurorUpdate
		if w.applyDrift(step) {
			ups = est.driftUpdates(w)
		}
		ups = append(ups, est.churnUpdates(w.applyChurn())...)
		if len(ups) > 0 {
			if err := be.Patch(ctx, poolName, ups); err != nil {
				return RepResult{}, fmt.Errorf("simul: step %d: %w", step, err)
			}
		}

		// 2. A question arrives with a latent binary truth.
		truth := w.truth.Bernoulli(0.5)

		// 3. Select the jury.
		var (
			out  selectOutcome
			shed bool
		)
		switch sc.Strategy {
		case StrategyRandom:
			out, err = est.selectRandom(w, eng)
		case StrategyDegree:
			out, err = est.selectDegree(w, eng)
		default:
			out, err = be.Select(ctx, poolName, sc)
			if errors.Is(err, errStepShed) {
				shed, err = true, nil
			}
		}
		if err != nil {
			return RepResult{}, fmt.Errorf("simul: step %d: %w", step, err)
		}
		res.Retries += out.Retried
		if out.LatencyNS > 0 && !shed {
			// Shed attempts are fast rejections; folding them in would
			// deflate the latency summary exactly when the service is
			// overloaded.
			latHist.Observe(out.LatencyNS)
		}
		if out.PoolVersion > res.FinalPoolVersion {
			res.FinalPoolVersion = out.PoolVersion
		}

		rec := StepRecord{Step: step, Shed: shed, PoolVersion: out.PoolVersion}
		if shed {
			// Overload: the question goes unanswered. Record and move on
			// — the vote streams for this step are simply never drawn, so
			// the replication stays deterministic given the shed pattern.
			res.Shed++
			records = append(records, rec)
			continue
		}

		// 4. Availability: who actually votes (Mahmud et al.'s point —
		// the selected are not always the responding).
		responders := make([]string, 0, len(out.IDs))
		for _, id := range out.IDs {
			if w.avail.Bernoulli(sc.Availability) {
				responders = append(responders, id)
			}
		}

		// 5. Votes from the TRUE rates; majority decision.
		votes := make([]bool, len(responders))
		yes := 0
		for i, id := range responders {
			j, ok := w.find(id)
			if !ok {
				return RepResult{}, fmt.Errorf("simul: step %d: responder %q vanished", step, id)
			}
			v := truth
			if w.votes.Bernoulli(j.TrueRate) {
				v = !truth
			}
			votes[i] = v
			if v {
				yes++
			}
		}
		no := len(responders) - yes
		decided := yes != no // zero responders or a tie leave it undecided
		correct := decided && ((yes > no) == truth)

		// 6. Score against the per-step oracle: the same selection family
		// run over the TRUE rates.
		trueRates, err := w.trueRatesOf(out.IDs)
		if err != nil {
			return RepResult{}, fmt.Errorf("simul: step %d: %w", step, err)
		}
		trueJER, err := eng.JER(trueRates)
		if err != nil {
			return RepResult{}, err
		}
		oracleJER, err := oracleJER(sc, w, eng)
		if err != nil {
			return RepResult{}, fmt.Errorf("simul: step %d: oracle: %w", step, err)
		}

		scored++
		sumJurySize += len(out.IDs)
		sumRegret += trueJER - oracleJER
		calib := out.PredictedJER - trueJER
		if calib < 0 {
			calib = -calib
		}
		sumCalibration += calib
		res.TotalSpend += out.Cost
		switch {
		case correct:
			res.Correct++
			res.Decided++
		case decided:
			res.Decided++
		default:
			res.Undecided++
		}

		rec.JurySize = len(out.IDs)
		rec.Responders = len(responders)
		rec.Decided = decided
		rec.Correct = correct
		rec.PredictedJER = out.PredictedJER
		rec.TrueJER = trueJER
		rec.OracleJER = oracleJER
		rec.Regret = trueJER - oracleJER
		rec.Calibration = calib
		rec.Spend = out.Cost
		records = append(records, rec)

		// 7. Close the loop: the truth resolves and the observed votes
		// update the estimator (and, through it, the live pool).
		vups, err := est.observeVotes(step, truth, responders, votes, w)
		if err != nil {
			return RepResult{}, fmt.Errorf("simul: step %d: %w", step, err)
		}
		if len(vups) > 0 {
			if err := be.Patch(ctx, poolName, vups); err != nil {
				return RepResult{}, fmt.Errorf("simul: step %d: folding votes: %w", step, err)
			}
		}
	}

	if attempted := sc.Steps - res.Shed; attempted > 0 {
		res.Accuracy = float64(res.Correct) / float64(attempted)
	}
	if scored > 0 {
		res.MeanRegret = sumRegret / float64(scored)
		res.MeanCalibration = sumCalibration / float64(scored)
		res.MeanJurySize = float64(sumJurySize) / float64(scored)
	}
	res.Windows = windowize(sc, records)
	res.attachOracleCalibration(records)
	res.Latency = summarizeHist(&latHist)
	if trace {
		res.Trace = records
	}
	return res, nil
}

// oracleJER selects with the scenario's strategy family over the TRUE
// rates and returns the resulting jury's exact JER — the per-step
// benchmark the regret metric is measured against. Baselines are scored
// against the altruistic optimum: their whole point is quantifying the
// price of not optimizing.
func oracleJER(sc Scenario, w *world, eng *jury.Engine) (float64, error) {
	cands := w.oracleCandidates()
	var sel jury.Selection
	var err error
	switch sc.Strategy {
	case StrategyPay:
		sel, err = core.SelectPay(cands, core.PayOptions{Budget: sc.Budget})
	case StrategyExact:
		sel, err = core.SelectOpt(cands, sc.Budget)
	default:
		sel, err = core.SelectAltr(cands, core.AltrOptions{Incremental: true})
	}
	if err != nil {
		return 0, err
	}
	// Re-evaluate through the shared engine memo so the repeated
	// oracle juries of a static crowd cost one computation, and the
	// value is byte-stable with the trueJER computed the same way.
	return eng.JER(sel.Rates())
}

// windowize aggregates the trace into fixed-width windows. It requires
// the trace, which runReplication always builds internally before
// optionally discarding it.
func windowize(sc Scenario, trace []StepRecord) []Window {
	if len(trace) == 0 {
		return nil
	}
	var out []Window
	for start := 0; start < sc.Steps; start += sc.WindowSteps {
		end := start + sc.WindowSteps
		if end > sc.Steps {
			end = sc.Steps
		}
		w := Window{StartStep: start, EndStep: end}
		var regret, calib float64
		scored := 0
		for _, r := range trace {
			if r.Step < start || r.Step >= end {
				continue
			}
			if r.Shed {
				w.Shed++
				continue
			}
			scored++
			if r.Decided {
				w.Decided++
			}
			if r.Correct {
				w.Correct++
			}
			regret += r.Regret
			calib += r.Calibration
		}
		if attempted := (end - start) - w.Shed; attempted > 0 {
			w.Accuracy = float64(w.Correct) / float64(attempted)
		}
		if scored > 0 {
			w.MeanRegret = regret / float64(scored)
			w.MeanCalibration = calib / float64(scored)
		}
		out = append(out, w)
	}
	return out
}
