package simul

import (
	"bytes"
	"context"
	"math"
	"testing"
)

// tinyScenarios is the table the determinism tests sweep: one scenario
// per mechanism (drift models, churn, availability, strategies,
// estimators, sources) so a nondeterminism regression in any of them
// breaks the bit-identity assertion.
func tinyScenarios() []Scenario {
	return []Scenario{
		{Name: "static-posterior", Seed: 7, Steps: 30, Population: 12, Replications: 2},
		{Name: "walk-posterior", Seed: 7, Steps: 30, Population: 12, Replications: 2,
			Drift: DriftSpec{Model: DriftWalk, Sigma: 0.02}},
		{Name: "shift-oracle", Seed: 7, Steps: 30, Population: 12, Replications: 2,
			Drift: DriftSpec{Model: DriftShift}, Estimator: EstimatorOracle},
		{Name: "churn-posterior", Seed: 7, Steps: 30, Population: 12, Replications: 2,
			ChurnPerStep: 0.8},
		{Name: "flaky-posterior", Seed: 7, Steps: 30, Population: 12, Replications: 2,
			Availability: 0.6},
		{Name: "pay-greedy", Seed: 7, Steps: 25, Population: 12, Replications: 2,
			Strategy: StrategyPay, Budget: 1.2},
		{Name: "exact-small", Seed: 7, Steps: 10, Population: 10, Replications: 1,
			Strategy: StrategyExact, Budget: 1.2},
		{Name: "random-baseline", Seed: 7, Steps: 30, Population: 12, Replications: 2,
			Strategy: StrategyRandom},
		{Name: "degree-baseline", Seed: 7, Steps: 30, Population: 12, Replications: 2,
			Strategy: StrategyDegree},
		{Name: "em-refresh", Seed: 7, Steps: 30, Population: 12, Replications: 2,
			Estimator: EstimatorEM, EMEvery: 10},
		{Name: "microblog-src", Seed: 7, Steps: 20, Population: 40, Replications: 1,
			Source: SourceMicroblog},
		{Name: "task-early-stop", Seed: 7, Steps: 25, Population: 12, Replications: 2,
			Lifecycle: LifecycleTask, Availability: 0.7},
		{Name: "task-fixed-jury", Seed: 7, Steps: 25, Population: 12, Replications: 2,
			Lifecycle: LifecycleTask, TargetConfidence: 1},
		{Name: "task-pay", Seed: 7, Steps: 20, Population: 12, Replications: 2,
			Lifecycle: LifecycleTask, Strategy: StrategyPay, Budget: 1.2, Availability: 0.8},
	}
}

// TestMetricsBitIdentical is the determinism contract: same scenario +
// seed ⇒ bit-identical metrics JSON, run over run.
func TestMetricsBitIdentical(t *testing.T) {
	for _, sc := range tinyScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			run := func() []byte {
				rep, err := Run(context.Background(), sc, Options{Trace: true})
				if err != nil {
					t.Fatal(err)
				}
				raw, err := rep.Marshal()
				if err != nil {
					t.Fatal(err)
				}
				return raw
			}
			a, b := run(), run()
			if !bytes.Equal(a, b) {
				t.Fatalf("metrics JSON differs between identical runs:\n%s\n----\n%s", clip(a), clip(b))
			}
		})
	}
}

// TestMetricsWorkerCountInvariant: the replication fan-out must not leak
// scheduling into the metrics.
func TestMetricsWorkerCountInvariant(t *testing.T) {
	sc := Scenario{Name: "fanout", Seed: 3, Steps: 25, Population: 12, Replications: 6,
		Drift: DriftSpec{Model: DriftWalk}, ChurnPerStep: 0.5}
	run := func(workers int) []byte {
		rep, err := Run(context.Background(), sc, Options{Workers: workers, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := rep.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	serial, parallel := run(1), run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("worker count changed the metrics:\n%s\n----\n%s", clip(serial), clip(parallel))
	}
}

func clip(b []byte) []byte {
	if len(b) > 2000 {
		return b[:2000]
	}
	return b
}

// TestTaskEarlyStopSpendsFewerVotes is the pay-as-you-go claim taken
// online: at the same scenario, sequential early stop (target 0.9)
// must spend meaningfully fewer votes per verdict than fixed-jury
// voting (target 1) while staying within a few accuracy points of it —
// and the availability gap must actually exercise decline/replacement.
func TestTaskEarlyStopSpendsFewerVotes(t *testing.T) {
	base := Scenario{Name: "spend", Seed: 11, Steps: 120, Population: 30,
		RateMean: 0.4, RateStddev: 0.1, Availability: 0.8,
		Lifecycle: LifecycleTask, Replications: 2}
	run := func(target float64) *Report {
		sc := base
		sc.TargetConfidence = target
		rep, err := Run(context.Background(), sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	early, fixed := run(0.9), run(1)
	if early.Summary.MeanVotesSpent <= 0 || fixed.Summary.MeanVotesSpent <= 0 {
		t.Fatalf("vote accounting missing: early %g fixed %g",
			early.Summary.MeanVotesSpent, fixed.Summary.MeanVotesSpent)
	}
	if early.Summary.MeanVotesSpent >= fixed.Summary.MeanVotesSpent {
		t.Fatalf("early stop spent %.2f votes/task, fixed jury %.2f — no saving",
			early.Summary.MeanVotesSpent, fixed.Summary.MeanVotesSpent)
	}
	if early.Summary.EarlyStopRate == 0 {
		t.Fatal("no task ever early-stopped at target 0.9")
	}
	if fixed.Summary.EarlyStopRate != 0 {
		t.Fatalf("fixed-jury run early-stopped with rate %g", fixed.Summary.EarlyStopRate)
	}
	if diff := fixed.Summary.Accuracy - early.Summary.Accuracy; diff > 0.1 {
		t.Fatalf("early stop gave up %.3f accuracy (early %.3f vs fixed %.3f)",
			diff, early.Summary.Accuracy, fixed.Summary.Accuracy)
	}
	// 20% no-shows must surface as declines and replacements.
	var declines, replacements int
	for _, r := range early.Replications {
		declines += r.TotalDeclines
		replacements += r.Replacements
	}
	if declines == 0 || replacements == 0 {
		t.Fatalf("availability 0.8 produced %d declines, %d replacements", declines, replacements)
	}
	t.Logf("votes/task: early-stop %.2f vs fixed %.2f (accuracy %.3f vs %.3f, early-stop rate %.2f)",
		early.Summary.MeanVotesSpent, fixed.Summary.MeanVotesSpent,
		early.Summary.Accuracy, fixed.Summary.Accuracy, early.Summary.EarlyStopRate)
}

// TestTimeToVerdictReporting checks the PR 10 report block: the exact
// votes-to-verdict distribution per replication (the simulation's
// time-to-verdict, counted in sequential responses), and the pooled
// summary that EXPERIMENTS compares against the fixed-jury cost.
func TestTimeToVerdictReporting(t *testing.T) {
	base := Scenario{Name: "ttv", Seed: 11, Steps: 120, Population: 30,
		RateMean: 0.4, RateStddev: 0.1, Availability: 0.8,
		Lifecycle: LifecycleTask, Replications: 2}
	run := func(target float64) *Report {
		sc := base
		sc.TargetConfidence = target
		rep, err := Run(context.Background(), sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	early, fixed := run(0.9), run(1)

	for _, r := range early.Replications {
		tv := r.VotesToVerdict
		if tv == nil || tv.Count != r.Decided {
			t.Fatalf("rep %d: votes_to_verdict %+v, want one sample per decided task (%d)",
				r.Replication, tv, r.Decided)
		}
		if got := tv.Mean * float64(tv.Count); math.Abs(got-float64(r.VerdictVotes)) > 1e-9 {
			t.Fatalf("rep %d: mean %.4f × count %d != verdict votes %d",
				r.Replication, tv.Mean, tv.Count, r.VerdictVotes)
		}
		if tv.P50 > tv.P90 || tv.P90 > tv.Max {
			t.Fatalf("rep %d: quantiles out of order: %+v", r.Replication, tv)
		}
	}
	es, fs := early.Summary, fixed.Summary
	if es.MeanVotesToVerdict <= 0 || es.MeanJurySize <= 0 {
		t.Fatalf("summary missing time-to-verdict: %+v", es)
	}
	if es.MeanVotesToVerdict >= fs.MeanVotesToVerdict {
		t.Fatalf("early stop took %.2f votes/verdict, fixed jury %.2f — no speedup",
			es.MeanVotesToVerdict, fs.MeanVotesToVerdict)
	}
	if es.MeanVotesSaved <= 0 {
		t.Fatalf("early stop saved %.2f votes/verdict vs its %0.2f-seat jury, want > 0",
			es.MeanVotesSaved, es.MeanJurySize)
	}
	t.Logf("time-to-verdict: early-stop %.2f vs fixed %.2f votes (jury %.2f, saved %.2f)",
		es.MeanVotesToVerdict, fs.MeanVotesToVerdict, es.MeanJurySize, es.MeanVotesSaved)
}

// TestTaskStepAccounting: the task lifecycle preserves the partition
// invariants and emits the task-specific trace fields.
func TestTaskStepAccounting(t *testing.T) {
	sc := Scenario{Name: "task-acct", Seed: 23, Steps: 40, Population: 14,
		Lifecycle: LifecycleTask, Availability: 0.7, Replications: 2}
	rep, err := Run(context.Background(), sc, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Replications {
		if r.Decided+r.Undecided+r.Shed != r.Steps {
			t.Fatalf("rep %d: partition broken: %+v", r.Replication, r)
		}
		var votes int
		for _, s := range r.Trace {
			if s.Shed {
				continue
			}
			if s.VotesSpent < 0 || s.VotesSpent > s.JurySize+s.Declines {
				t.Fatalf("step %d: votes %d outside [0, %d]", s.Step, s.VotesSpent, s.JurySize+s.Declines)
			}
			if s.Decided && s.Confidence < 0.5 {
				t.Fatalf("step %d: decided with confidence %g", s.Step, s.Confidence)
			}
			votes += s.VotesSpent
		}
		if votes != r.TotalVotes {
			t.Fatalf("rep %d: trace votes %d != total %d", r.Replication, votes, r.TotalVotes)
		}
	}
}

// TestStepAccounting: the per-replication partition invariants hold.
func TestStepAccounting(t *testing.T) {
	sc := Scenario{Name: "acct", Seed: 11, Steps: 40, Population: 15, Replications: 3,
		ChurnPerStep: 0.5, Availability: 0.5}
	rep, err := Run(context.Background(), sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Replications {
		if r.Decided+r.Undecided+r.Shed != r.Steps {
			t.Errorf("rep %d: %d decided + %d undecided + %d shed != %d steps",
				r.Replication, r.Decided, r.Undecided, r.Shed, r.Steps)
		}
		if r.Correct > r.Decided {
			t.Errorf("rep %d: correct %d > decided %d", r.Replication, r.Correct, r.Decided)
		}
		if r.Shed != 0 {
			t.Errorf("rep %d: in-process run shed %d steps", r.Replication, r.Shed)
		}
		if len(r.Windows) == 0 {
			t.Errorf("rep %d: no windows", r.Replication)
		}
		if r.Latency != nil {
			t.Errorf("rep %d: in-process run reported latency", r.Replication)
		}
	}
	if rep.Summary.Accuracy <= 0.5 {
		t.Errorf("availability-0.5 crowd should still beat coin flipping, accuracy = %g", rep.Summary.Accuracy)
	}
}

// TestPosteriorBeatsRandomAndConverges reproduces the paper-shaped
// headline at test scale: posterior-estimated altruistic selection is
// more accurate than the random and degree baselines, and its regret
// shrinks as votes accumulate.
func TestPosteriorBeatsRandomAndConverges(t *testing.T) {
	base := Scenario{Seed: 5, Steps: 120, Population: 25, Replications: 3}
	run := func(name, strategy, estimator string) *Report {
		sc := base
		sc.Name, sc.Strategy, sc.Estimator = name, strategy, estimator
		rep, err := Run(context.Background(), sc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	posterior := run("posterior", StrategyAltr, EstimatorPosterior)
	oracle := run("oracle", StrategyAltr, EstimatorOracle)
	random := run("random", StrategyRandom, EstimatorPosterior)
	degree := run("degree", StrategyDegree, EstimatorPosterior)

	if posterior.Summary.Accuracy <= random.Summary.Accuracy {
		t.Errorf("posterior accuracy %.3f not above random %.3f",
			posterior.Summary.Accuracy, random.Summary.Accuracy)
	}
	if posterior.Summary.Accuracy <= degree.Summary.Accuracy {
		t.Errorf("posterior accuracy %.3f not above degree %.3f",
			posterior.Summary.Accuracy, degree.Summary.Accuracy)
	}
	if oracle.Summary.Accuracy < posterior.Summary.Accuracy-0.05 {
		t.Errorf("oracle accuracy %.3f below posterior %.3f: oracle must upper-bound",
			oracle.Summary.Accuracy, posterior.Summary.Accuracy)
	}
	// Convergence: regret in the last window of the run is below the
	// first window's (estimates tighten as votes accumulate).
	firstRegret, lastRegret := windowRegretEnds(posterior)
	if lastRegret >= firstRegret {
		t.Errorf("posterior regret did not shrink: first-window %.5f, last-window %.5f",
			firstRegret, lastRegret)
	}
	// And the oracle has (near-)zero regret by construction.
	if oracle.Summary.MeanRegret > 1e-12 {
		t.Errorf("oracle regret %g, want 0", oracle.Summary.MeanRegret)
	}
}

// windowRegretEnds averages the first- and last-window mean regret
// across replications.
func windowRegretEnds(rep *Report) (first, last float64) {
	for _, r := range rep.Replications {
		n := len(r.Windows)
		first += r.Windows[0].MeanRegret
		last += r.Windows[n-1].MeanRegret
	}
	n := float64(len(rep.Replications))
	return first / n, last / n
}

func TestScenarioValidation(t *testing.T) {
	valid := Scenario{Name: "ok", Steps: 10, Population: 5}.Normalize()
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Scenario){
		"no steps":       func(s *Scenario) { s.Steps = 0 },
		"tiny crowd":     func(s *Scenario) { s.Population = 2 },
		"bad source":     func(s *Scenario) { s.Source = "csv" },
		"bad drift":      func(s *Scenario) { s.Drift.Model = "chaos" },
		"bad bounds":     func(s *Scenario) { s.Drift.Min = 0.9 },
		"bad strategy":   func(s *Scenario) { s.Strategy = "best" },
		"even fixed":     func(s *Scenario) { s.FixedSize = 4 },
		"bad estimator":  func(s *Scenario) { s.Estimator = "magic" },
		"bad avail":      func(s *Scenario) { s.Availability = 1.5 },
		"negative churn": func(s *Scenario) { s.ChurnPerStep = -1 },
		"bad prior":      func(s *Scenario) { s.PriorRate = 1 },
		"shift never fires": func(s *Scenario) {
			s.Drift.Model = DriftShift
			s.Drift.ShiftStep = s.Steps // one past the last step
		},
	} {
		sc := valid
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestPresetsAreValid(t *testing.T) {
	for name, sc := range Presets() {
		if err := sc.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
	if _, err := Preset("no-such"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestReadScenario(t *testing.T) {
	sc, err := ReadScenario(bytes.NewReader([]byte(`{
		"name": "file", "seed": 4, "steps": 20, "population": 10,
		"drift": {"model": "walk", "sigma": 0.02}, "churn_per_step": 0.5
	}`)))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Drift.Model != DriftWalk || sc.Replications != 1 || sc.WindowSteps != 2 {
		t.Errorf("scenario = %+v", sc)
	}
	if _, err := ReadScenario(bytes.NewReader([]byte(`{"steps": 0}`))); err == nil {
		t.Error("invalid scenario accepted")
	}
	if _, err := ReadScenario(bytes.NewReader([]byte(`{"stepz": 5}`))); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestMixSeedDecorrelates(t *testing.T) {
	seen := map[int64]bool{}
	for rep := 0; rep < 100; rep++ {
		s := mixSeed(42, rep)
		if seen[s] {
			t.Fatalf("duplicate replication seed at rep %d", rep)
		}
		seen[s] = true
	}
	if mixSeed(1, 0) == mixSeed(2, 0) {
		t.Error("scenario seeds collide")
	}
}

// TestMetricsShardCountInvariant: the task store's shard count is a
// concurrency knob, not a semantics knob. The same task-lifecycle
// scenario run against the PR 6 global-lock configuration (1 shard) and
// the sharded default must produce bit-identical reports.
func TestMetricsShardCountInvariant(t *testing.T) {
	sc := Scenario{Name: "shard-parity", Seed: 11, Steps: 25, Population: 12, Replications: 3,
		Lifecycle: LifecycleTask, Availability: 0.7, ChurnPerStep: 0.3}
	run := func(shards int) []byte {
		rep, err := Run(context.Background(), sc, Options{TaskShards: shards, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := rep.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	global, def, wide := run(1), run(0), run(64)
	if !bytes.Equal(global, def) {
		t.Fatalf("1-shard and default-shard reports differ:\n%s\n----\n%s", clip(global), clip(def))
	}
	if !bytes.Equal(def, wide) {
		t.Fatalf("default and 64-shard reports differ:\n%s\n----\n%s", clip(def), clip(wide))
	}
}
