package simul

import (
	"context"
	"errors"
	"fmt"

	"juryselect/internal/obs"
	"juryselect/internal/server"
	"juryselect/jury"
)

// runTaskReplication drives one replication of the task lifecycle: per
// step it evolves the ground truth exactly like the select loop, then
// animates the durable task store's sequential protocol instead of a
// one-shot selection — create a task, walk the invitation queue in
// order, draw availability per invitee (a non-responder declines, which
// is the deterministic stand-in for the juror timeout and pulls in the
// next-best replacement), post votes drawn from the TRUE rates, and
// stop as soon as the task closes (early stop or jury exhaustion). The
// estimator folds observed votes against the task's VERDICT — the only
// label the real system ever gets — rather than the latent truth.
//
// Randomness is drawn lazily in invitation order from the same streams
// the select loop uses, and both backends expose identical invitation
// orders, so the in-process and HTTP trajectories are step-identical
// until the first shed request.
func runTaskReplication(ctx context.Context, sc Scenario, rep int, be backend, eng *jury.Engine, batch, trace bool) (RepResult, error) {
	w, err := newWorld(sc, rep)
	if err != nil {
		return RepResult{}, err
	}
	est := newEstimator(sc)
	poolName := fmt.Sprintf("sim-%s-r%d", sc.Name, rep)
	if err := be.PutPool(ctx, poolName, est.initialPool(w)); err != nil {
		return RepResult{}, err
	}
	defer be.DeletePool(context.WithoutCancel(ctx), poolName) //nolint:errcheck // best-effort cleanup

	res := RepResult{Replication: rep, Steps: sc.Steps}
	var (
		records        []StepRecord
		latHist        obs.Histogram
		sumRegret      float64
		sumCalibration float64
		sumJurySize    int
		scored         int
		verdictVotes   []int
	)
	for step := 0; step < sc.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return RepResult{}, err
		}

		// 1. Ground truth evolves; the estimator publishes what its
		// policy is allowed to see.
		var pups []server.JurorUpdate
		if w.applyDrift(step) {
			pups = est.driftUpdates(w)
		}
		pups = append(pups, est.churnUpdates(w.applyChurn())...)
		if len(pups) > 0 {
			if err := be.Patch(ctx, poolName, pups); err != nil {
				return RepResult{}, fmt.Errorf("simul: step %d: %w", step, err)
			}
		}

		// 2. A question arrives with a latent binary truth.
		truth := w.truth.Bernoulli(0.5)

		// 3. Open the task (jury selection inside the store).
		out, err := be.CreateTask(ctx, poolName, sc)
		shed := false
		if errors.Is(err, errStepShed) {
			shed, err = true, nil
		}
		if err != nil {
			return RepResult{}, fmt.Errorf("simul: step %d: %w", step, err)
		}
		res.Retries += out.Retried
		if out.LatencyNS > 0 && !shed {
			latHist.Observe(out.LatencyNS)
		}
		if out.PoolVersion > res.FinalPoolVersion {
			res.FinalPoolVersion = out.PoolVersion
		}
		rec := StepRecord{Step: step, Shed: shed, PoolVersion: out.PoolVersion}
		if shed {
			res.Shed++
			records = append(records, rec)
			continue
		}

		// 4. Walk the invitation queue: availability decides vote vs
		// decline; declines pull replacements onto the queue's tail. The
		// walk ends the moment the task closes. Sequential mode draws and
		// posts one invitee at a time, so early stop leaves the rest of
		// the queue untouched — votes never drawn, never paid. Batch mode
		// draws a whole round upfront and posts it in one round trip;
		// votes landing after an early stop come back skipped.
		queue := append([]invitee(nil), out.Invited...)
		var (
			responders []string
			votesCast  []bool
			final      taskProgress
		)
		walk := walkQueueSequential
		if batch {
			walk = walkQueueBatch
		}
		queue, responders, votesCast, final, err = walk(ctx, sc, w, be, out.ID, truth, queue)
		if err != nil {
			return RepResult{}, fmt.Errorf("simul: step %d: %w", step, err)
		}
		decided := final.Decided
		correct := decided && final.VerdictYes == truth

		// 5. Score against the per-step oracle on the INITIAL selection
		// (replacements are a degraded-crowd response, not a new
		// selection decision).
		initialIDs := make([]string, len(out.Invited))
		for i, j := range out.Invited {
			initialIDs[i] = j.ID
		}
		trueRates, err := w.trueRatesOf(initialIDs)
		if err != nil {
			return RepResult{}, fmt.Errorf("simul: step %d: %w", step, err)
		}
		trueJER, err := eng.JER(trueRates)
		if err != nil {
			return RepResult{}, err
		}
		oJER, err := oracleJER(sc, w, eng)
		if err != nil {
			return RepResult{}, fmt.Errorf("simul: step %d: oracle: %w", step, err)
		}

		scored++
		sumJurySize += len(out.Invited)
		sumRegret += trueJER - oJER
		calib := out.PredictedJER - trueJER
		if calib < 0 {
			calib = -calib
		}
		sumCalibration += calib
		res.TotalSpend += out.Cost
		res.TotalVotes += final.VotesSpent
		res.TotalDeclines += final.Declines
		res.Replacements += len(queue) - len(out.Invited)
		if final.EarlyStopped {
			res.EarlyStopped++
		}
		switch {
		case correct:
			res.Correct++
			res.Decided++
		case decided:
			res.Decided++
		default:
			res.Undecided++
		}
		if decided {
			// Time-to-verdict in the simulation's clock: sequential
			// responses collected before the task closed.
			res.VerdictVotes += final.VotesSpent
			verdictVotes = append(verdictVotes, final.VotesSpent)
		}

		rec.JurySize = len(out.Invited)
		rec.Responders = len(responders)
		rec.Decided = decided
		rec.Correct = correct
		rec.PredictedJER = out.PredictedJER
		rec.TrueJER = trueJER
		rec.OracleJER = oJER
		rec.Regret = trueJER - oJER
		rec.Calibration = calib
		rec.Spend = out.Cost
		rec.VotesSpent = final.VotesSpent
		rec.Declines = final.Declines
		rec.EarlyStopped = final.EarlyStopped
		rec.Confidence = final.Confidence
		records = append(records, rec)

		// 6. Close the loop: the verdict — not the latent truth — is the
		// label the estimator learns from, exactly as a deployed
		// requester would. Undecided tasks teach nothing.
		if decided {
			vups, err := est.observeVotes(step, final.VerdictYes, responders, votesCast, w)
			if err != nil {
				return RepResult{}, fmt.Errorf("simul: step %d: %w", step, err)
			}
			if len(vups) > 0 {
				if err := be.Patch(ctx, poolName, vups); err != nil {
					return RepResult{}, fmt.Errorf("simul: step %d: folding votes: %w", step, err)
				}
			}
		}
	}

	if attempted := sc.Steps - res.Shed; attempted > 0 {
		res.Accuracy = float64(res.Correct) / float64(attempted)
	}
	if scored > 0 {
		res.MeanRegret = sumRegret / float64(scored)
		res.MeanCalibration = sumCalibration / float64(scored)
		res.MeanJurySize = float64(sumJurySize) / float64(scored)
		res.MeanVotesSpent = float64(res.TotalVotes) / float64(scored)
	}
	res.Windows = windowize(sc, records)
	res.attachOracleCalibration(records)
	res.VotesToVerdict = summarizeCounts(verdictVotes)
	res.Latency = summarizeHist(&latHist)
	if trace {
		res.Trace = records
	}
	return res, nil
}

// walkQueueSequential animates one task's invitation queue one invitee
// per round trip, drawing availability and votes lazily — the draw for
// invitee i happens only if the task is still open when their turn
// comes. Returns the grown queue, the jurors whose votes were recorded
// (with the votes), and the final task progress.
func walkQueueSequential(ctx context.Context, sc Scenario, w *world, be backend, id string, truth bool, queue []invitee) ([]invitee, []string, []bool, taskProgress, error) {
	var (
		responders []string
		votesCast  []bool
		final      taskProgress
	)
	for i := 0; i < len(queue); i++ {
		j := queue[i]
		var prog taskProgress
		var err error
		if w.avail.Bernoulli(sc.Availability) {
			wj, ok := w.find(j.ID)
			if !ok {
				return queue, nil, nil, final, fmt.Errorf("invitee %q vanished", j.ID)
			}
			v := truth
			if w.votes.Bernoulli(wj.TrueRate) {
				v = !truth
			}
			prog, err = be.TaskVote(ctx, id, j.ID, v)
			if err != nil {
				return queue, nil, nil, final, fmt.Errorf("vote: %w", err)
			}
			responders = append(responders, j.ID)
			votesCast = append(votesCast, v)
		} else {
			prog, err = be.TaskDecline(ctx, id, j.ID)
			if err != nil {
				return queue, nil, nil, final, fmt.Errorf("decline: %w", err)
			}
		}
		if len(prog.Invited) > len(queue) {
			queue = append(queue, prog.Invited[len(queue):]...)
		}
		final = prog
		if prog.Closed {
			break
		}
	}
	return queue, responders, votesCast, final, nil
}

// walkQueueBatch animates the queue in rounds: every not-yet-visited
// invitee's availability and vote are drawn upfront (in queue order,
// from the same streams sequential mode uses) and posted as one
// TaskVoteBatch; replacements invited by the round's declines form the
// next round. Drawing a round upfront consumes more stream draws than
// the lazy sequential walk, so batch mode is its own deterministic
// trajectory — identical between the in-process and HTTP backends, but
// not comparable step-for-step with sequential mode. Only votes the
// store actually recorded count as responses; votes skipped by an
// early stop mid-batch were never cast.
func walkQueueBatch(ctx context.Context, sc Scenario, w *world, be backend, id string, truth bool, queue []invitee) ([]invitee, []string, []bool, taskProgress, error) {
	var (
		responders []string
		votesCast  []bool
		final      taskProgress
	)
	for start := 0; start < len(queue); {
		round := queue[start:]
		ops := make([]voteOp, len(round))
		for i, j := range round {
			if w.avail.Bernoulli(sc.Availability) {
				wj, ok := w.find(j.ID)
				if !ok {
					return queue, nil, nil, final, fmt.Errorf("invitee %q vanished", j.ID)
				}
				v := truth
				if w.votes.Bernoulli(wj.TrueRate) {
					v = !truth
				}
				ops[i] = voteOp{JurorID: j.ID, Vote: v}
			} else {
				ops[i] = voteOp{JurorID: j.ID, Decline: true}
			}
		}
		results, prog, err := be.TaskVoteBatch(ctx, id, ops)
		if err != nil {
			return queue, nil, nil, final, fmt.Errorf("batch vote: %w", err)
		}
		for k, r := range results {
			if r.Err != "" {
				return queue, nil, nil, final, fmt.Errorf("batch vote item %q: %s", ops[k].JurorID, r.Err)
			}
			if r.Applied && !ops[k].Decline {
				responders = append(responders, ops[k].JurorID)
				votesCast = append(votesCast, ops[k].Vote)
			}
		}
		start = len(queue)
		if len(prog.Invited) > len(queue) {
			queue = append(queue, prog.Invited[len(queue):]...)
		}
		final = prog
		if prog.Closed {
			break
		}
	}
	return queue, responders, votesCast, final, nil
}
