package simul

import (
	"fmt"

	"juryselect/internal/graph"
	"juryselect/internal/randx"
	"juryselect/internal/twitter"
	"juryselect/jury"
	"juryselect/microblog"
)

// worldJuror is one member of the ground-truth crowd: the latent state the
// paper's online setting assumes and the simulator animates. TrueRate is
// hidden from the selection system — it only ever sees estimates.
type worldJuror struct {
	ID string
	// TrueRate is the juror's actual individual error rate at this step.
	TrueRate float64
	// Cost is the payment requirement (static; the paper derives it from
	// account age, which moves on a much slower clock than reliability).
	Cost float64
	// Degree is the juror's micro-blog popularity (in-degree for the
	// corpus source, a Zipf draw for the normal source): the attribute
	// the degree baseline selects on.
	Degree int
}

// world is the mutable ground truth of one replication: the crowd, its
// drift and churn processes, and the independent random streams every
// simulated mechanism draws from. Streams are split per concern so that,
// e.g., measuring latency or skipping a shed step never perturbs the vote
// sequence — the property behind the in-process/HTTP trajectory parity.
type world struct {
	sc     Scenario
	jurors []worldJuror
	nextID int

	drift *randx.Source // rate evolution
	churn *randx.Source // leave/join process and joiner attributes
	truth *randx.Source // latent answers of arriving questions
	avail *randx.Source // does a selected juror actually vote?
	votes *randx.Source // vote correctness draws
	pick  *randx.Source // random-baseline jury draws

	churnZipf *randx.Zipf // popularity of churn joiners
}

// mixSeed derives the replication seed from the scenario seed, so
// replications are decorrelated yet independent of execution order (the
// parallel runner may finish them in any order). splitmix64 finalizer.
func mixSeed(seed int64, rep int) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(rep+1)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// newWorld builds the ground-truth crowd for one replication of a
// normalized, validated scenario.
func newWorld(sc Scenario, rep int) (*world, error) {
	root := randx.New(mixSeed(sc.Seed, rep))
	w := &world{
		sc:    sc,
		drift: root.Split("drift"),
		churn: root.Split("churn"),
		truth: root.Split("truth"),
		avail: root.Split("avail"),
		votes: root.Split("votes"),
		pick:  root.Split("pick"),
	}
	w.churnZipf = randx.NewZipf(w.churn, sc.Population, 1.1)

	init := root.Split("init")
	switch sc.Source {
	case SourceMicroblog:
		if err := w.populateFromCorpus(init); err != nil {
			return nil, err
		}
	default:
		w.populateNormal(init)
	}
	return w, nil
}

// populateNormal draws the crowd from the scenario's truncated-normal
// distributions, with Zipf popularity independent of reliability — the
// regime where the degree baseline has no signal at all.
func (w *world) populateNormal(src *randx.Source) {
	sc := w.sc
	zipf := randx.NewZipf(src, sc.Population, 1.1)
	w.jurors = make([]worldJuror, sc.Population)
	for i := range w.jurors {
		w.jurors[i] = worldJuror{
			ID:       fmt.Sprintf("j%05d", i),
			TrueRate: src.TruncNormal(sc.RateMean, sc.RateStddev, sc.Drift.Min, sc.Drift.Max),
			Cost:     w.drawCost(src),
			Degree:   sc.Population + 1 - zipf.Draw(),
		}
	}
}

// populateFromCorpus runs the §4 estimation pipeline over a synthetic
// retweet corpus and adopts its output as ground truth: authority-ranked
// users get linearly spread true rates inside the drift bounds (so the
// authority ordering is real, as the paper's effectiveness experiments
// assume), costs come from normalized account ages, and Degree is the
// user's actual retweet in-degree — here the degree baseline has genuine
// signal and still loses to JER optimization.
func (w *world) populateFromCorpus(src *randx.Source) error {
	sc := w.sc
	tweets, profiles := microblog.SyntheticCorpus(sc.Population, sc.CorpusTweets, src.Int63())
	res, err := microblog.Candidates(tweets, profiles, microblog.Options{
		Normalization: microblog.Linear,
	})
	if err != nil {
		return fmt.Errorf("simul: corpus pipeline: %w", err)
	}
	g := graph.New()
	for _, tw := range tweets {
		for _, pair := range twitter.RetweetPairs(tw) {
			if err := g.AddEdge(pair.From, pair.To); err != nil {
				return err
			}
		}
	}
	n := len(res.Candidates)
	if n > sc.Population {
		n = sc.Population
	}
	if n < 3 || n < sc.FixedSize {
		return fmt.Errorf("simul: corpus yielded only %d ranked users (need max(3, fixed_size))", n)
	}
	w.jurors = make([]worldJuror, n)
	for i, c := range res.Candidates[:n] {
		deg := 0
		if idx, ok := g.Index(c.ID); ok {
			deg = g.InDegree(idx)
		}
		// The Linear normalization spreads ε over (0,1); map it affinely
		// into the drift bounds so every juror is a valid, live candidate.
		rate := sc.Drift.Min + c.ErrorRate*(sc.Drift.Max-sc.Drift.Min)
		w.jurors[i] = worldJuror{
			ID:       c.ID,
			TrueRate: clampOpenInterval(rate, sc.Drift.Min, sc.Drift.Max),
			Cost:     c.Cost,
			Degree:   deg,
		}
	}
	return nil
}

func (w *world) drawCost(src *randx.Source) float64 {
	c := src.TruncNormal(w.sc.CostMean, w.sc.CostStddev, 0, 1e9)
	if c < 0 {
		c = 0
	}
	return c
}

// clampOpenInterval nudges x strictly inside (lo, hi).
func clampOpenInterval(x, lo, hi float64) float64 {
	eps := (hi - lo) * 1e-9
	if x <= lo {
		return lo + eps
	}
	if x >= hi {
		return hi - eps
	}
	return x
}

// applyDrift advances the ground truth one step and reports whether any
// rate changed (the oracle estimator re-publishes rates only then).
func (w *world) applyDrift(step int) bool {
	sc := w.sc
	switch sc.Drift.Model {
	case DriftWalk:
		for i := range w.jurors {
			delta := w.drift.Normal(0, sc.Drift.Sigma)
			w.jurors[i].TrueRate = clampOpenInterval(w.jurors[i].TrueRate+delta, sc.Drift.Min, sc.Drift.Max)
		}
		return len(w.jurors) > 0
	case DriftShift:
		if step != sc.Drift.ShiftStep {
			return false
		}
		changed := false
		for i := range w.jurors {
			if w.drift.Bernoulli(sc.Drift.ShiftFraction) {
				w.jurors[i].TrueRate = w.drift.TruncNormal(
					sc.Drift.ShiftMean, sc.Drift.ShiftStddev, sc.Drift.Min, sc.Drift.Max)
				changed = true
			}
		}
		return changed
	default:
		return false
	}
}

// churnEvent is one juror replacement: Left departs, Joined arrives.
type churnEvent struct {
	Left   string
	Joined worldJuror
}

// applyChurn replaces an expected ChurnPerStep jurors with fresh joiners
// and returns the events (for the estimator to mirror into the pool).
// Population size is conserved, so selection never runs out of crowd.
func (w *world) applyChurn() []churnEvent {
	lambda := w.sc.ChurnPerStep
	if lambda <= 0 {
		return nil
	}
	count := int(lambda)
	if frac := lambda - float64(count); frac > 0 && w.churn.Bernoulli(frac) {
		count++
	}
	var events []churnEvent
	for k := 0; k < count; k++ {
		victim := w.churn.Intn(len(w.jurors))
		left := w.jurors[victim].ID
		joined := worldJuror{
			ID:       fmt.Sprintf("c%06d", w.nextID),
			TrueRate: w.churn.TruncNormal(w.sc.RateMean, w.sc.RateStddev, w.sc.Drift.Min, w.sc.Drift.Max),
			Cost:     w.drawCost(w.churn),
			Degree:   w.sc.Population + 1 - w.churnZipf.Draw(),
		}
		w.nextID++
		w.jurors[victim] = joined
		events = append(events, churnEvent{Left: left, Joined: joined})
	}
	return events
}

// find returns the world juror with the given ID.
func (w *world) find(id string) (worldJuror, bool) {
	for _, j := range w.jurors {
		if j.ID == id {
			return j, true
		}
	}
	return worldJuror{}, false
}

// trueRatesOf maps selected juror IDs to their current true error rates.
func (w *world) trueRatesOf(ids []string) ([]float64, error) {
	rates := make([]float64, len(ids))
	for i, id := range ids {
		j, ok := w.find(id)
		if !ok {
			return nil, fmt.Errorf("simul: selected juror %q no longer in world", id)
		}
		rates[i] = j.TrueRate
	}
	return rates, nil
}

// oracleCandidates returns the current crowd as validated jury.Juror
// candidates carrying TRUE rates — the input to the per-step oracle
// selection the regret metric compares against.
func (w *world) oracleCandidates() []jury.Juror {
	out := make([]jury.Juror, len(w.jurors))
	for i, j := range w.jurors {
		out[i] = jury.Juror{ID: j.ID, ErrorRate: j.TrueRate, Cost: j.Cost}
	}
	return out
}

// initialEstimate is the ε the estimation policy publishes for a juror it
// has never observed.
func (sc Scenario) initialEstimate(j worldJuror) float64 {
	if sc.Estimator == EstimatorOracle {
		return j.TrueRate
	}
	return sc.PriorRate
}
