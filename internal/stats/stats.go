// Package stats provides the small statistical utilities the experiment
// harness needs: summary statistics over float series, set-overlap
// precision/recall for comparing the heuristic jury against the exact
// optimum (Figure 3(h)), and fixed-width histogram binning for workload
// diagnostics.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a series.
type Summary struct {
	Count    int
	Mean     float64
	Variance float64 // population variance
	StdDev   float64
	Min      float64
	Max      float64
	Median   float64
}

// Summarize computes a Summary. It returns an error for an empty series or
// one containing NaN.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, errors.New("stats: empty series")
	}
	s := Summary{Count: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		if math.IsNaN(x) {
			return Summary{}, errors.New("stats: NaN in series")
		}
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	ss := 0.0
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Variance = ss / float64(len(xs))
	s.StdDev = math.Sqrt(s.Variance)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s, nil
}

// PrecisionRecall compares a predicted set against a reference ("truth")
// set by membership:
//
//	precision = |pred ∩ truth| / |pred|
//	recall    = |pred ∩ truth| / |truth|
//
// This is the metric of Figure 3(h), where pred is PayALG's jury and truth
// is the enumerated optimum. Empty sets yield zero for the corresponding
// ratio.
func PrecisionRecall(pred, truth []string) (precision, recall float64) {
	if len(pred) == 0 && len(truth) == 0 {
		return 1, 1 // both empty: perfect agreement
	}
	tset := make(map[string]bool, len(truth))
	for _, id := range truth {
		tset[id] = true
	}
	inter := 0
	seen := make(map[string]bool, len(pred))
	for _, id := range pred {
		if seen[id] {
			continue
		}
		seen[id] = true
		if tset[id] {
			inter++
		}
	}
	if len(seen) > 0 {
		precision = float64(inter) / float64(len(seen))
	}
	if len(tset) > 0 {
		recall = float64(inter) / float64(len(tset))
	}
	return precision, recall
}

// Histogram bins xs into count equal-width bins spanning [min, max].
type Histogram struct {
	// Edges has count+1 entries; bin i covers [Edges[i], Edges[i+1]).
	Edges []float64
	// Counts has count entries.
	Counts []int
}

// NewHistogram builds a histogram with the given number of bins. The last
// bin is closed on the right so max lands inside it.
func NewHistogram(xs []float64, bins int) (Histogram, error) {
	if bins <= 0 {
		return Histogram{}, errors.New("stats: bins must be positive")
	}
	s, err := Summarize(xs)
	if err != nil {
		return Histogram{}, err
	}
	h := Histogram{Edges: make([]float64, bins+1), Counts: make([]int, bins)}
	width := (s.Max - s.Min) / float64(bins)
	if width == 0 {
		width = 1 // all-identical series: everything lands in bin 0
	}
	for i := range h.Edges {
		h.Edges[i] = s.Min + float64(i)*width
	}
	for _, x := range xs {
		i := int((x - s.Min) / width)
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
	}
	return h, nil
}
