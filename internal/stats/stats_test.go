package stats

import (
	"math"
	"testing"
)

func TestSummarizeKnown(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Variance-1.25) > 1e-12 {
		t.Errorf("variance %g, want 1.25", s.Variance)
	}
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Errorf("median %g, want 2.5", s.Median)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s, err := Summarize([]float64{9, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 5 {
		t.Errorf("median %g, want 5", s.Median)
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("expected error for empty series")
	}
	if _, err := Summarize([]float64{1, math.NaN()}); err == nil {
		t.Error("expected error for NaN")
	}
}

func TestPrecisionRecall(t *testing.T) {
	cases := []struct {
		pred, truth []string
		p, r        float64
	}{
		{[]string{"a", "b", "c"}, []string{"a", "b", "c"}, 1, 1},
		{[]string{"a", "b"}, []string{"a", "b", "c", "d"}, 1, 0.5},
		{[]string{"a", "x", "y", "z"}, []string{"a", "b"}, 0.25, 0.5},
		{[]string{"x"}, []string{"a"}, 0, 0},
		{nil, nil, 1, 1},
		{nil, []string{"a"}, 0, 0},
		{[]string{"a"}, nil, 0, 0},
		{[]string{"a", "a", "b"}, []string{"a"}, 0.5, 1}, // duplicates collapse
	}
	for _, tc := range cases {
		p, r := PrecisionRecall(tc.pred, tc.truth)
		if math.Abs(p-tc.p) > 1e-12 || math.Abs(r-tc.r) > 1e-12 {
			t.Errorf("PrecisionRecall(%v, %v) = (%g, %g), want (%g, %g)",
				tc.pred, tc.truth, p, r, tc.p, tc.r)
		}
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 0.1, 0.2, 0.9, 1.0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Counts) != 2 || len(h.Edges) != 3 {
		t.Fatalf("histogram shape: %+v", h)
	}
	if h.Counts[0] != 3 || h.Counts[1] != 2 {
		t.Fatalf("counts = %v, want [3 2]", h.Counts)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h, err := NewHistogram([]float64{5, 5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("degenerate histogram lost mass: %v", h.Counts)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("expected error for zero bins")
	}
	if _, err := NewHistogram(nil, 2); err == nil {
		t.Error("expected error for empty series")
	}
}
