// Package tablefmt renders plain-text tables for the benchmark harness.
// The experiment drivers print the same rows and series the paper's tables
// and figures report; this package keeps that output aligned and stable so
// EXPERIMENTS.md can quote it verbatim.
package tablefmt

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and writes an aligned text rendering.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat renders floats compactly: scientific for very small non-zero
// magnitudes (JER values can reach 1e-10 on Twitter data), fixed otherwise.
func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av < 1e-4:
		return fmt.Sprintf("%.3e", v)
	case av >= 1e6:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table to w. It is a single-shot renderer;
// errors from the underlying writer are returned.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.headers {
		if len(h) > widths[i] {
			widths[i] = len(h)
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.title)
	}
	if len(t.headers) > 0 {
		writeRow(&b, t.headers, widths)
		sep := make([]string, cols)
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(&b, sep, widths)
	}
	for _, r := range t.rows {
		writeRow(&b, r, widths)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	// strings.Builder never errors.
	_ = t.Render(&b)
	return b.String()
}

func writeRow(b *strings.Builder, cells []string, widths []int) {
	for i, c := range cells {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(c)
		if pad := widths[i] - len(c); pad > 0 && i < len(widths)-1 {
			b.WriteString(strings.Repeat(" ", pad))
		}
	}
	b.WriteByte('\n')
}
