package tablefmt

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 0.07036)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "name") || !strings.Contains(out, "value") {
		t.Errorf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "0.0704") {
		t.Errorf("missing formatted float:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestFloatFormatting(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		0.2:      "0.2000",
		1e-10:    "1.000e-10",
		-3e-7:    "-3.000e-07",
		12345678: "1.235e+07",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestTableNoTitleNoHeaders(t *testing.T) {
	tb := New("")
	tb.AddRow("only", "cells", 42)
	out := tb.String()
	if strings.Contains(out, "==") {
		t.Errorf("unexpected title in:\n%s", out)
	}
	if !strings.Contains(out, "only") || !strings.Contains(out, "42") {
		t.Errorf("row missing:\n%s", out)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := New("", "col", "x")
	tb.AddRow("longervalue", 1)
	tb.AddRow("s", 2)
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// Data rows: the second column must start at the same offset.
	r1, r2 := lines[len(lines)-2], lines[len(lines)-1]
	if strings.Index(r1, "1") != strings.Index(r2, "2") {
		t.Errorf("columns misaligned:\n%s\n%s", r1, r2)
	}
}
