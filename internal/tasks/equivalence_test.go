package tasks

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestShardedStoreEquivalence is the sharding property test: a
// randomized concurrent create/vote/decline workload against the
// sharded store must be trace-equivalent to the PR 5 global-lock
// configuration. Concretely, after the workload:
//
//   - per-task operation order and early-stop skip semantics are exactly
//     what the live store responded with (votes raced past a verdict were
//     rejected, not silently dropped), and
//   - recovering the WAL under ANY shard count — 1 shard behaves as the
//     old single-mutex store, timer-driven commit included — rebuilds a
//     byte-identical fingerprint.
//
// Runs in the -race matrix for internal/tasks, so it also serves as the
// data-race probe for the lock-free read paths.
func TestShardedStoreEquivalence(t *testing.T) {
	const (
		goroutines    = 8
		tasksPerG     = 12
		votesPerTask  = 7 // > jury size for some tasks → exercises closed-task rejects
		declineEveryN = 3
	)
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Sync: SyncBatch, BatchInterval: 200 * time.Microsecond,
		Shards: 8, DefaultJurorTimeout: time.Minute, DefaultExpiry: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutPool("crowd", crowdJurors(25)); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < tasksPerG; i++ {
				spec := Spec{Pool: "crowd", TargetConfidence: 0.9}
				if rng.Intn(2) == 0 {
					spec.TargetConfidence = 1 // fixed jury: no early stop
				}
				v, err := s.Create(ctx, spec)
				if err != nil {
					errs <- err
					return
				}
				for k := 0; k < votesPerTask && k < len(v.Jurors); k++ {
					j := v.Jurors[k]
					var opErr error
					if k%declineEveryN == declineEveryN-1 {
						_, opErr = s.Decline(context.Background(), v.ID, j.ID)
					} else {
						_, opErr = s.Vote(context.Background(), v.ID, j.ID, rng.Intn(4) != 0)
					}
					// ErrTaskClosed is the early-stop skip: the posterior
					// crossed the target and later jurors' votes are refused.
					// ErrJurorReleased can follow a decline's replacement
					// shuffle. Anything else is a real failure.
					if opErr != nil && !errors.Is(opErr, ErrTaskClosed) && !errors.Is(opErr, ErrJurorReleased) {
						errs <- opErr
						return
					}
				}
			}
		}(int64(g) * 7919)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	live := storeFingerprint(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover the same WAL under three configurations spanning the
	// old and new concurrency models. Every one must rebuild the exact
	// bytes the live sharded store was serving.
	for _, cfg := range []struct {
		name string
		conf Config
	}{
		{"global-lock", Config{Dir: dir, Shards: 1, TimerCommit: true, Sync: SyncBatch,
			DefaultJurorTimeout: time.Minute, DefaultExpiry: time.Hour}},
		{"sharded-default", Config{Dir: dir, Sync: SyncBatch,
			DefaultJurorTimeout: time.Minute, DefaultExpiry: time.Hour}},
		{"sharded-wide", Config{Dir: dir, Shards: 256, Sync: SyncBatch,
			DefaultJurorTimeout: time.Minute, DefaultExpiry: time.Hour}},
	} {
		r, err := Open(cfg.conf)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		got := storeFingerprint(t, r)
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if string(got) != string(live) {
			t.Errorf("%s recovery diverged from the live sharded store (%d vs %d bytes)",
				cfg.name, len(got), len(live))
		}
	}
}

// TestShardedConcurrentReads hammers the lock-free read paths (Get,
// List, Stats) while writers mutate, under -race: the COW snapshot
// publication must never expose a torn view.
func TestShardedConcurrentReads(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Sync: SyncOff, Shards: 4,
		DefaultJurorTimeout: time.Minute, DefaultExpiry: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck
	if _, err := s.PutPool("crowd", crowdJurors(15)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, v := range s.List("") {
					got, err := s.Get(v.ID)
					if err != nil {
						t.Error(err)
						return
					}
					// A view must be internally consistent: votes_spent is
					// the count of jurors in the voted state.
					voted := 0
					for _, j := range got.Jurors {
						if j.State == JurorVoted {
							voted++
						}
					}
					if voted != got.VotesSpent {
						t.Errorf("torn view %s: %d voted jurors, votes_spent %d", got.ID, voted, got.VotesSpent)
						return
					}
				}
				s.Stats()
			}
		}()
	}
	for i := 0; i < 40; i++ {
		v, err := s.Create(ctx, Spec{Pool: "crowd"})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range v.Jurors {
			if _, err := s.Vote(context.Background(), v.ID, j.ID, true); err != nil && !errors.Is(err, ErrTaskClosed) {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	readers.Wait()
}
