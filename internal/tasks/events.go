package tasks

import "time"

// The task event stream is the store's decision-level observability
// feed: one Event per semantic state change (task opened, juror invited,
// vote recorded, juror released, task closed), emitted from inside the
// same apply functions that execute both live mutations and WAL replay.
// That placement is the whole contract: a sink attached via
// Config.Events before Open sees the identical event sequence whether
// the store is serving live traffic or replaying the journal, so any
// order-invariant reduction over the stream (internal/insight) is
// rebuildable from the WAL alone.
//
// Delivery guarantees:
//
//   - Per task, events arrive in application order (live emission holds
//     the task's shard mutex; replay is single-threaded in WAL order).
//   - Across tasks, live delivery interleaves arbitrarily — shards
//     mutate concurrently — while replay delivers in global WAL order.
//     A sink that must match replay state bit-for-bit therefore has to
//     be order-invariant across tasks (commutative integer updates).
//   - Events for tasks restored from a compaction snapshot are NOT
//     re-emitted: compaction folds history the journal no longer
//     carries. A sink rebuilt by replay covers the retained WAL horizon
//     only (votes on snapshot-restored tasks still arrive, prefixed by
//     no TaskCreated — sinks should ignore tasks they never saw open).
//
// Sinks are called synchronously under the shard mutex and must not
// call back into the Store.

// EventType discriminates Event payloads.
type EventType uint8

const (
	// EvTaskCreated: a task opened with its initial jury invited.
	EvTaskCreated EventType = iota + 1
	// EvJurorInvited: a replacement juror was invited after a release.
	EvJurorInvited
	// EvVoteRecorded: an invited juror's vote was applied.
	EvVoteRecorded
	// EvJurorReleased: an invited juror declined or timed out.
	EvJurorReleased
	// EvTaskClosed: the task reached a terminal status.
	EvTaskClosed
)

// EventJuror is one invited juror within a TaskCreated event: the ID and
// the error-rate estimate selection pinned at invitation time.
type EventJuror struct {
	ID        string
	ErrorRate float64
}

// Event is one task state change. Fields beyond Type/Task/At are
// populated per type; the struct is passed by value and, except for the
// Jury slice on TaskCreated, allocation-free.
type Event struct {
	Type EventType
	Task string
	At   time.Time

	// TaskCreated.
	Pool             string
	Strategy         string
	PredictedJER     float64
	TargetConfidence float64
	// PoolVersion is the pool version selection ran against, pinned in
	// the create record — a timeline names the exact pool state that
	// chose its jury without a lookup racing subsequent patches.
	PoolVersion uint64
	Jury        []EventJuror

	// JurorInvited, VoteRecorded, JurorReleased.
	Juror     string
	ErrorRate float64
	// Vote and LatencyNS (invitation → vote, from journaled timestamps,
	// so replay recomputes the identical value) are set on VoteRecorded.
	Vote      bool
	LatencyNS int64
	// Timeout distinguishes a juror-timeout release from an explicit
	// decline (JurorReleased).
	Timeout bool

	// TaskClosed.
	Decided      bool
	Answer       bool
	Confidence   float64
	EarlyStopped bool
}

// EventSink consumes the task event stream. Implementations must be
// safe for concurrent use (live events arrive from many shards at once)
// and must not call back into the emitting Store.
type EventSink interface {
	TaskEvent(ev Event)
}

// multiSink fans one event stream out to several sinks, in order.
type multiSink []EventSink

func (m multiSink) TaskEvent(ev Event) {
	for _, s := range m {
		s.TaskEvent(ev)
	}
}

// Sinks combines several event sinks into one, delivering every event
// to each non-nil sink in argument order. It lets cmd/juryd attach the
// insight and lifecycle engines to the same store without either
// knowing about the other; nil arguments are skipped, and a result
// covering zero sinks is nil (emission disabled entirely).
func Sinks(sinks ...EventSink) EventSink {
	out := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}

// emitCreated publishes a TaskCreated event for an applied create record.
func (s *Store) emitCreated(t *task, rec *record) {
	if s.events == nil {
		return
	}
	jury := make([]EventJuror, len(rec.Jury))
	for i, j := range rec.Jury {
		jury[i] = EventJuror{ID: j.ID, ErrorRate: j.ErrorRate}
	}
	s.events.TaskEvent(Event{
		Type:             EvTaskCreated,
		Task:             t.id,
		At:               rec.At,
		Pool:             rec.Spec.Pool,
		Strategy:         rec.Spec.Strategy,
		PredictedJER:     rec.PredictedJER,
		TargetConfidence: rec.Spec.TargetConfidence,
		PoolVersion:      rec.PoolVersion,
		Jury:             jury,
	})
}

// emitClosed publishes the terminal event for a task that just closed.
func (s *Store) emitClosed(t *task, at time.Time) {
	if s.events == nil {
		return
	}
	ev := Event{Type: EvTaskClosed, Task: t.id, At: at}
	if t.verdict != nil {
		ev.Decided = true
		ev.Answer = t.verdict.Answer
		ev.Confidence = t.verdict.Confidence
		ev.EarlyStopped = t.verdict.EarlyStopped
	}
	s.events.TaskEvent(ev)
}
