package tasks

import (
	"encoding/json"
	"fmt"
	"time"

	"juryselect/internal/pool"
)

// WAL record types. Every record is a mutation that already passed
// validation: replay applies records mechanically and deterministically.
// Decisions driven by wall-clock time (a juror timing out, a task
// expiring) are journaled as their own records, so replay never
// re-consults a clock — the property behind byte-identical recovery.
const (
	recPoolPut    = "pool_put"
	recPoolPatch  = "pool_patch"
	recPoolDelete = "pool_delete"
	recTaskCreate = "task_create"
	recVote       = "vote"
	recDecline    = "decline"
	recExpire     = "expire"
)

// recJuror is the journaled form of one selected juror: the estimate and
// cost selection saw, pinned so replay does not depend on later pool
// drift.
type recJuror struct {
	ID        string  `json:"id"`
	ErrorRate float64 `json:"rate"`
	Cost      float64 `json:"cost,omitempty"`
}

// record is one WAL entry. A single struct with omitempty fields keeps
// the framing simple and the log greppable; Type discriminates.
type record struct {
	Type string    `json:"t"`
	At   time.Time `json:"at,omitzero"`

	// Pool mutations.
	Pool    string             `json:"pool,omitempty"`
	Jurors  []pool.JurorState  `json:"jurors,omitempty"`
	Updates []pool.JurorUpdate `json:"updates,omitempty"`

	// Task mutations.
	Task         string     `json:"task,omitempty"`
	Seq          uint64     `json:"seq,omitempty"`
	Spec         *Spec      `json:"spec,omitempty"`
	Jury         []recJuror `json:"jury,omitempty"`
	PoolVersion  uint64     `json:"pool_version,omitempty"`
	PredictedJER float64    `json:"predicted_jer,omitempty"`
	Juror        string     `json:"juror,omitempty"`
	Vote         *bool      `json:"vote,omitempty"`
	Timeout      bool       `json:"timeout,omitempty"`
}

// encodeRecord marshals a record for the WAL.
func encodeRecord(rec record) ([]byte, error) {
	raw, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("tasks: encoding %s record: %w", rec.Type, err)
	}
	return raw, nil
}

// decodeRecord unmarshals one WAL payload.
func decodeRecord(payload []byte) (record, error) {
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("tasks: decoding wal record: %w", err)
	}
	if rec.Type == "" {
		return rec, fmt.Errorf("tasks: wal record missing type")
	}
	return rec, nil
}
